// Firewall scenario: the workload that motivates the paper's firewall rule
// sets. Loads the FW02 policy (160 rules ending in a default deny), runs a
// mixed traffic trace through ExpCuts, and reports the permit/deny split,
// which rules fire most, and the simulated line-rate headroom on the NP.
package main

import (
	"fmt"
	"log"
	"sort"

	"repro"
)

func main() {
	policy, err := repro.StandardRuleSet("FW02")
	if err != nil {
		log.Fatal(err)
	}
	fw, err := repro.NewExpCuts(policy, repro.ExpCutsConfig{Headroom: repro.PaperHeadroom})
	if err != nil {
		log.Fatal(err)
	}

	// 100k packets: 70% traffic aimed at policy rules (legitimate and
	// blocked flows), 30% background scan noise.
	trace, err := repro.GenerateTrace(policy, 100000, 2026, 0.7)
	if err != nil {
		log.Fatal(err)
	}

	hits := make(map[int]int)
	permits, denies := 0, 0
	for _, h := range trace.Headers {
		match := fw.Classify(h)
		if match < 0 {
			// Cannot happen: the policy ends in a default deny.
			log.Fatalf("header %v escaped the default deny", h)
		}
		hits[match]++
		if policy.Rules[match].Action == repro.ActionPermit {
			permits++
		} else {
			denies++
		}
	}

	fmt.Printf("firewall policy %s: %d rules, ExpCuts depth %d, %.2f MB SRAM\n",
		policy.Name, policy.Len(), fw.Depth(), float64(fw.MemoryBytes())/1e6)
	fmt.Printf("traffic: %d packets -> %d permitted (%.1f%%), %d denied\n\n",
		trace.Len(), permits, float64(permits)*100/float64(trace.Len()), denies)

	type hit struct{ rule, count int }
	top := make([]hit, 0, len(hits))
	for r, c := range hits {
		top = append(top, hit{r, c})
	}
	sort.Slice(top, func(i, j int) bool { return top[i].count > top[j].count })
	fmt.Println("hottest rules:")
	for _, h := range top[:5] {
		fmt.Printf("  #%-4d %6d hits  %v\n", h.rule, h.count, &policy.Rules[h.rule])
	}

	// What line rate does this policy sustain on the modelled IXP2850?
	res, err := repro.SimulateApplication(fw, trace.Headers[:2000], repro.DefaultAppConfig(), 25000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsimulated NP throughput (71 threads, 64-byte packets): %.1f Gbps\n",
		res.ThroughputMbps/1000)
}
