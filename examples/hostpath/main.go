// Host data path: the library running as a software classifier on a
// general-purpose machine rather than on the NP model. Raw 64-byte
// Ethernet/IPv4 frames are parsed back to 5-tuples, classified through a
// flow cache by a pool of goroutines with packet ordering preserved, and
// the policy is updated mid-stream without dropping or reordering a single
// packet.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro"
)

func main() {
	policy, err := repro.StandardRuleSet("FW01")
	if err != nil {
		log.Fatal(err)
	}

	// Dynamic policy: generations swap atomically under the engine.
	mgr, err := repro.NewUpdateManager(policy, func(rs *repro.RuleSet) (repro.Classifier, error) {
		return repro.NewExpCuts(rs, repro.ExpCutsConfig{})
	})
	if err != nil {
		log.Fatal(err)
	}

	// The wire: flow-structured traffic (a Zipf draw over 2000 distinct
	// flows — packets repeat within flows, which is what makes the flow
	// cache pay off) rendered to raw frames, as the Rx ring would deliver
	// them.
	flowSet, err := repro.GenerateTrace(policy, 2000, 11, 0.85)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(12))
	zipf := rand.NewZipf(rng, 1.2, 1, uint64(flowSet.Len()-1))
	frames := make([][]byte, 40000)
	for i := range frames {
		frames[i] = repro.BuildFrame(flowSet.Headers[zipf.Uint64()])
	}

	// Rx: parse frames back to headers (checksums verified).
	headers := make([]repro.Header, len(frames))
	for i, f := range frames {
		h, err := repro.ParseFrame(f)
		if err != nil {
			log.Fatalf("frame %d: %v", i, err)
		}
		headers[i] = h
	}

	// Classify the first half, hot-update the policy, classify the rest.
	// The engine preserves arrival order across worker goroutines.
	classify := func(hs []repro.Header) (permits, denies, noMatch int) {
		cache, err := repro.NewFlowCache(mgr, 1024)
		if err != nil {
			log.Fatal(err)
		}
		var lastSeq uint64
		first := true
		// Shards must stay 1 here: the hand-built flow cache is a single
		// mutable structure, and the engine's shard loops would otherwise
		// call it concurrently (Shards defaults to GOMAXPROCS). Sharded
		// setups let the engine own per-shard caches via FlowCacheFlows.
		_, err = repro.RunEngine(cache, repro.EngineConfig{Workers: 1, Shards: 1, PreserveOrder: true}, hs,
			func(r repro.EngineResult) {
				if !first && r.Seq != lastSeq+1 {
					log.Fatalf("packet reordered: %d after %d", r.Seq, lastSeq)
				}
				first = false
				lastSeq = r.Seq
				snap, _ := mgr.Snapshot()
				switch {
				case r.Match < 0:
					noMatch++
				case snap[r.Match].Action == repro.ActionDeny:
					denies++
				default:
					permits++
				}
			})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  cache hit rate %.1f%%\n", cache.HitRate()*100)
		return
	}

	fmt.Printf("policy %s generation %d (%d rules)\n", policy.Name, mgr.Generation(), policy.Len())
	fmt.Println("first half:")
	p1, d1, n1 := classify(headers[:len(headers)/2])
	fmt.Printf("  permits %d  denies %d  no-match %d\n", p1, d1, n1)

	// Hot update: block a prolific source prefix at top priority.
	block := repro.Rule{
		SrcIP:   repro.Prefix{Addr: 0, Len: 1}, // the low half of the address space
		SrcPort: repro.PortRange{Lo: 0, Hi: 65535},
		DstPort: repro.PortRange{Lo: 0, Hi: 65535},
		Proto:   repro.ProtoMatch{Wildcard: true},
		Action:  repro.ActionDeny,
	}
	if err := mgr.Apply([]repro.UpdateOp{repro.InsertRuleAt(0, block)}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nhot update applied: generation %d now blocks 0.0.0.0/1 at top priority\n\n", mgr.Generation())

	fmt.Println("second half:")
	p2, d2, n2 := classify(headers[len(headers)/2:])
	fmt.Printf("  permits %d  denies %d  no-match %d\n", p2, d2, n2)
	if d2 <= d1 {
		log.Fatal("the block rule should have increased the deny share")
	}
	fmt.Println("\nno packet was dropped or reordered across the update.")
}
