// Core-router scenario: flow classification for QoS on a backbone ACL.
// Classifies a trace against the CR03 rule set with all three of the
// paper's algorithms, checks they agree packet-for-packet, maps matches to
// traffic classes, and compares the algorithms' memory and simulated
// throughput — a miniature of the paper's Figure 9 on one rule set.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	acl, err := repro.StandardRuleSet("CR03")
	if err != nil {
		log.Fatal(err)
	}
	trace, err := repro.GenerateTrace(acl, 50000, 7, 0.9)
	if err != nil {
		log.Fatal(err)
	}

	ec, err := repro.NewExpCuts(acl, repro.ExpCutsConfig{Headroom: repro.PaperHeadroom})
	if err != nil {
		log.Fatal(err)
	}
	hc, err := repro.NewHiCuts(acl, repro.HiCutsConfig{Headroom: repro.PaperHeadroom})
	if err != nil {
		log.Fatal(err)
	}
	hs, err := repro.NewHSM(acl, repro.HSMConfig{})
	if err != nil {
		log.Fatal(err)
	}

	// Per-class byte accounting using ExpCuts, cross-checked against the
	// other two classifiers.
	classBytes := make(map[repro.Action]int64)
	for _, h := range trace.Headers {
		m := ec.Classify(h)
		if got := hc.Classify(h); got != m {
			log.Fatalf("HiCuts disagrees with ExpCuts on %v: %d vs %d", h, got, m)
		}
		if got := hs.Classify(h); got != m {
			log.Fatalf("HSM disagrees with ExpCuts on %v: %d vs %d", h, got, m)
		}
		if m >= 0 {
			classBytes[acl.Rules[m].Action] += 64
		} else {
			classBytes[repro.Action(255)] += 64 // best-effort
		}
	}

	fmt.Printf("backbone ACL %s: %d rules; all three classifiers agree on %d packets\n\n",
		acl.Name, acl.Len(), trace.Len())
	fmt.Println("traffic classes (64-byte packets):")
	for class, bytes := range classBytes {
		name := class.String()
		if class == repro.Action(255) {
			name = "best-effort"
		}
		fmt.Printf("  %-11s %8d KB\n", name, bytes/1000)
	}

	fmt.Println("\nalgorithm comparison on this ACL (simulated IXP2850, 71 threads):")
	cfg := repro.DefaultNPConfig()
	cfg.SRAM.Headroom = repro.PaperHeadroom
	for _, cl := range []repro.TracedClassifier{ec, hc, hs} {
		res, err := repro.SimulateThroughput(cl, trace.Headers[:2000], cfg, 25000)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-8s %6.2f MB SRAM   %7.0f Mbps\n",
			cl.Name(), float64(cl.MemoryBytes())/1e6, res.ThroughputMbps)
	}
}
