// Quickstart: build an ExpCuts classifier over a handful of hand-written
// rules, classify a few packets, and print what the decision tree looks
// like in SRAM terms.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// A miniature edge policy: web and DNS into a server subnet, SSH from
	// one management host, default deny.
	rs := repro.NewRuleSet("quickstart", []repro.Rule{
		{
			DstIP:   repro.Prefix{Addr: ip(192, 168, 1, 0), Len: 24},
			SrcPort: repro.PortRange{Lo: 0, Hi: 65535},
			DstPort: repro.PortRange{Lo: 80, Hi: 80},
			Proto:   repro.ProtoMatch{Value: repro.ProtoTCP},
			Action:  repro.ActionPermit,
		},
		{
			DstIP:   repro.Prefix{Addr: ip(192, 168, 1, 0), Len: 24},
			SrcPort: repro.PortRange{Lo: 0, Hi: 65535},
			DstPort: repro.PortRange{Lo: 53, Hi: 53},
			Proto:   repro.ProtoMatch{Value: repro.ProtoUDP},
			Action:  repro.ActionPermit,
		},
		{
			SrcIP:   repro.Prefix{Addr: ip(10, 0, 0, 7), Len: 32},
			DstIP:   repro.Prefix{Addr: ip(192, 168, 1, 0), Len: 24},
			SrcPort: repro.PortRange{Lo: 0, Hi: 65535},
			DstPort: repro.PortRange{Lo: 22, Hi: 22},
			Proto:   repro.ProtoMatch{Value: repro.ProtoTCP},
			Action:  repro.ActionPermit,
		},
		{
			SrcPort: repro.PortRange{Lo: 0, Hi: 65535},
			DstPort: repro.PortRange{Lo: 0, Hi: 65535},
			Proto:   repro.ProtoMatch{Wildcard: true},
			Action:  repro.ActionDeny,
		},
	})

	tree, err := repro.NewExpCuts(rs, repro.ExpCutsConfig{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ExpCuts over %d rules: depth %d (explicit), %d internal nodes, %d bytes SRAM\n\n",
		rs.Len(), tree.Depth(), tree.Stats().Nodes, tree.MemoryBytes())

	packets := []repro.Header{
		{SrcIP: ip(203, 0, 113, 9), DstIP: ip(192, 168, 1, 10), SrcPort: 49152, DstPort: 80, Proto: repro.ProtoTCP},
		{SrcIP: ip(203, 0, 113, 9), DstIP: ip(192, 168, 1, 10), SrcPort: 49152, DstPort: 53, Proto: repro.ProtoUDP},
		{SrcIP: ip(10, 0, 0, 7), DstIP: ip(192, 168, 1, 1), SrcPort: 50000, DstPort: 22, Proto: repro.ProtoTCP},
		{SrcIP: ip(10, 0, 0, 8), DstIP: ip(192, 168, 1, 1), SrcPort: 50000, DstPort: 22, Proto: repro.ProtoTCP},
		{SrcIP: ip(203, 0, 113, 9), DstIP: ip(8, 8, 8, 8), SrcPort: 1234, DstPort: 4444, Proto: repro.ProtoUDP},
	}
	for _, h := range packets {
		match := tree.Classify(h)
		verdict := "no-match"
		if match >= 0 {
			verdict = fmt.Sprintf("rule %d (%s)", match, rs.Rules[match].Action)
		}
		fmt.Printf("%-55v -> %s\n", h, verdict)
	}
}

func ip(a, b, c, d byte) uint32 {
	return uint32(a)<<24 | uint32(b)<<16 | uint32(c)<<8 | uint32(d)
}
