// NP application demo: the paper's Figure 5 system end to end. Maps the
// full packet application onto the modelled IXP2850 (Table 3), sweeps the
// classification stage from 1 to 9 microengines to show the Figure 7
// speedup, and contrasts the multiprocessing mapping with context
// pipelining (Table 2).
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/nptrace"
	"repro/internal/pipeline"
)

func main() {
	rs, err := repro.StandardRuleSet("CR04")
	if err != nil {
		log.Fatal(err)
	}
	tree, err := repro.NewExpCuts(rs, repro.ExpCutsConfig{Headroom: repro.PaperHeadroom})
	if err != nil {
		log.Fatal(err)
	}
	trace, err := repro.GenerateTrace(rs, 2000, 1, 0.9)
	if err != nil {
		log.Fatal(err)
	}
	progs := make([]nptrace.Program, len(trace.Headers))
	for i, h := range trace.Headers {
		progs[i] = tree.Program(h)
	}

	app := pipeline.DefaultAppConfig()
	fmt.Println("IXP2850 application (Figure 5 / Table 3):")
	for _, a := range app.Allocation() {
		fmt.Printf("  %-11s %d MEs\n", a.Role, a.MEs)
	}
	fmt.Printf("rule set %s, ExpCuts image %.2f MB across 4 SRAM channels\n\n",
		rs.Name, float64(tree.MemoryBytes())/1e6)

	fmt.Println("scaling the classification stage (multiprocessing, Figure 7):")
	for _, mes := range []int{1, 3, 5, 7, 9} {
		cfg := app
		cfg.ClassifyMEs = mes
		r, err := pipeline.RunMultiprocessing(cfg, progs, 20000)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %d MEs (%2d threads): %7.0f Mbps\n", mes, cfg.Threads(), r.ThroughputMbps)
	}

	fmt.Println("\ntask partitioning at 9 MEs (Table 2):")
	mp, err := pipeline.RunMultiprocessing(app, progs, 20000)
	if err != nil {
		log.Fatal(err)
	}
	cp, err := pipeline.RunContextPipelining(app, progs, 20000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  multiprocessing:    %7.0f Mbps\n", mp.ThroughputMbps)
	fmt.Printf("  context pipelining: %7.0f Mbps (bottleneck stage %d)\n",
		cp.ThroughputMbps, cp.BottleneckStage)
	fmt.Println("\nmultiprocessing wins for classification: every ME runs the whole")
	fmt.Println("lookup, so there is no stage imbalance and no ring hand-off cost.")
}
