package repro

import (
	"testing"

	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/obs"
)

// benchCtx keeps the per-iteration cost of the experiment benchmarks
// manageable; EXPERIMENTS.md numbers come from cmd/pcbench with the full
// context.
var benchCtx = experiments.Context{TraceLen: 400, Packets: 6000, Seed: 1, MatchFraction: 0.9}

// BenchmarkFig6SpaceAggregation regenerates Figure 6 (ExpCuts memory with
// vs without hierarchical space aggregation) and reports the CR04
// aggregation ratio.
func BenchmarkFig6SpaceAggregation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig6(benchCtx)
		if err != nil {
			b.Fatal(err)
		}
		last := rows[len(rows)-1]
		b.ReportMetric(last.Ratio, "aggRatio(CR04)")
		b.ReportMetric(float64(last.WithAggBytes)/1e6, "aggMB(CR04)")
	}
}

// BenchmarkFig7Speedup regenerates Figure 7 (throughput vs threads on
// CR04) and reports the 71-thread point.
func BenchmarkFig7Speedup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig7(benchCtx)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[len(rows)-1].ThroughputMbps, "Mbps@71thr")
		b.ReportMetric(rows[len(rows)-1].Speedup, "speedup@71thr")
	}
}

// BenchmarkFig8LinearSearch regenerates Figure 8 (throughput vs rules
// linearly searched) and reports the 8-rule point the paper highlights.
func BenchmarkFig8LinearSearch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig8(benchCtx)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Rules == 8 {
				b.ReportMetric(r.ThroughputMbps, "Mbps@8rules")
			}
		}
	}
}

// BenchmarkFig9Comparison regenerates Figure 9 (ExpCuts vs HiCuts vs HSM on
// all seven rule sets) and reports the CR04 column.
func BenchmarkFig9Comparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig9(benchCtx)
		if err != nil {
			b.Fatal(err)
		}
		last := rows[len(rows)-1]
		b.ReportMetric(last.ExpCutsMbps, "ExpCuts(CR04)")
		b.ReportMetric(last.HiCutsMbps, "HiCuts(CR04)")
		b.ReportMetric(last.HSMMbps, "HSM(CR04)")
	}
}

// BenchmarkTab2Mapping regenerates Table 2 (multiprocessing vs context
// pipelining).
func BenchmarkTab2Mapping(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Tab2(benchCtx)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].ThroughputMbps, "multiMbps")
		b.ReportMetric(rows[1].ThroughputMbps, "pipelineMbps")
	}
}

// BenchmarkTab5Channels regenerates Table 5 (throughput vs SRAM channels).
func BenchmarkTab5Channels(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Tab5(benchCtx)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].ThroughputMbps, "Mbps@1ch")
		b.ReportMetric(rows[3].ThroughputMbps, "Mbps@4ch")
	}
}

// BenchmarkAblationStride sweeps the cutting stride w.
func BenchmarkAblationStride(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationStride(benchCtx)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[len(rows)-1].ThroughputMbps, "Mbps@w8")
	}
}

// BenchmarkAblationHABS sweeps the HABS width v.
func BenchmarkAblationHABS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationHABS(benchCtx)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(rows[len(rows)-1].MemoryBytes)/1e6, "MB@v5")
	}
}

// BenchmarkAblationPopCount compares POP_COUNT against RISC emulation.
func BenchmarkAblationPopCount(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationPopCount(benchCtx)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].ThroughputMbps/rows[1].ThroughputMbps, "hw/riscSpeedup")
	}
}

// BenchmarkAblationBinth sweeps HiCuts binth.
func BenchmarkAblationBinth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationBinth(benchCtx)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].ThroughputMbps, "Mbps@binth1")
	}
}

// BenchmarkAblationSharing compares node-sharing scopes.
func BenchmarkAblationSharing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationSharing(benchCtx)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(rows[1].Nodes)/float64(rows[0].Nodes), "siblings/globalNodes")
	}
}

// --- Native single-packet micro-benchmarks (Go-level, not NP cycles) ---

func benchSet(b *testing.B) (*RuleSet, []Header) {
	b.Helper()
	rs, err := StandardRuleSet("CR04")
	if err != nil {
		b.Fatal(err)
	}
	tr, err := GenerateTrace(rs, 4096, 9, 0.9)
	if err != nil {
		b.Fatal(err)
	}
	return rs, tr.Headers
}

// BenchmarkExpCutsClassify measures the native Go ExpCuts lookup on CR04.
func BenchmarkExpCutsClassify(b *testing.B) {
	rs, headers := benchSet(b)
	tree, err := NewExpCuts(rs, ExpCutsConfig{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree.Classify(headers[i&4095])
	}
}

// BenchmarkHiCutsClassify measures the native HiCuts lookup on CR04.
func BenchmarkHiCutsClassify(b *testing.B) {
	rs, headers := benchSet(b)
	tree, err := NewHiCuts(rs, HiCutsConfig{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree.Classify(headers[i&4095])
	}
}

// BenchmarkHSMClassify measures the native HSM lookup on CR04.
func BenchmarkHSMClassify(b *testing.B) {
	rs, headers := benchSet(b)
	cl, err := NewHSM(rs, HSMConfig{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cl.Classify(headers[i&4095])
	}
}

// BenchmarkRFCClassify measures the native RFC lookup on CR04.
func BenchmarkRFCClassify(b *testing.B) {
	rs, headers := benchSet(b)
	cl, err := NewRFC(rs, RFCConfig{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cl.Classify(headers[i&4095])
	}
}

// BenchmarkLinearClassify measures the linear-search floor on CR04.
func BenchmarkLinearClassify(b *testing.B) {
	rs, headers := benchSet(b)
	cl := NewLinear(rs)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cl.Classify(headers[i&4095])
	}
}

// BenchmarkExpCutsBuild measures full ExpCuts construction on CR04.
func BenchmarkExpCutsBuild(b *testing.B) {
	rs, _ := benchSet(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewExpCuts(rs, ExpCutsConfig{}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Serving fast path (the tracked baseline behind BENCH_PR3.json) ---

// serveBenchSet builds the 1k-rule ACL set the serving baseline tracks and
// a trace over it.
func serveBenchSet(b *testing.B) (*RuleSet, []Header) {
	b.Helper()
	rs, err := experiments.ServeRuleSet(1)
	if err != nil {
		b.Fatal(err)
	}
	tr, err := GenerateTrace(rs, 4096, 11, 0.9)
	if err != nil {
		b.Fatal(err)
	}
	return rs, tr.Headers
}

// benchServeEngine drives the ordered engine over the ACL1K trace at the
// given batch size and reports end-to-end throughput in Mpkt/s. A non-nil
// metrics attaches the observability layer exactly as pcclass -metrics
// wires it.
func benchServeEngine(b *testing.B, batchSize int, metrics *engine.Metrics) {
	rs, headers := serveBenchSet(b)
	tree, err := NewExpCuts(rs, ExpCutsConfig{})
	if err != nil {
		b.Fatal(err)
	}
	cfg := engine.DefaultConfig()
	cfg.BatchSize = batchSize
	cfg.Metrics = metrics
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunEngine(tree, cfg, headers, func(EngineResult) {}); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N*len(headers))/b.Elapsed().Seconds()/1e6, "Mpps")
}

// BenchmarkServePerPacket is the serving baseline's denominator: the
// ordered engine dispatching one packet per job (BatchSize 1) on ExpCuts
// over the 1k-rule ACL set.
func BenchmarkServePerPacket(b *testing.B) {
	benchServeEngine(b, 1, nil)
}

// BenchmarkServeBatched is the serving fast path: the same engine, same
// ordering guarantee, dispatching the default 64-packet batches.
func BenchmarkServeBatched(b *testing.B) {
	benchServeEngine(b, engine.DefaultBatchSize, nil)
}

// BenchmarkServeBatchedMetrics is BenchmarkServeBatched with the
// observability layer live: a registered Metrics and an armed event ring,
// the configuration pcclass -metrics serves with. Comparing its Mpps
// against BenchmarkServeBatched shows the instrumentation cost the
// benchjson -metrics-overhead gate bounds at 2%.
func BenchmarkServeBatchedMetrics(b *testing.B) {
	m := engine.NewMetrics(engine.DefaultMetricsShards)
	m.SetEvents(obs.NewRing(obs.DefaultRingSize))
	m.Register(obs.NewRegistry())
	benchServeEngine(b, engine.DefaultBatchSize, m)
}

// BenchmarkServeClassifyBatch measures the raw level-synchronous batched
// walk (no engine, no channels) — the allocation column is the regression
// gate: steady state must be 0 allocs/op.
func BenchmarkServeClassifyBatch(b *testing.B) {
	rs, headers := serveBenchSet(b)
	tree, err := NewExpCuts(rs, ExpCutsConfig{})
	if err != nil {
		b.Fatal(err)
	}
	batch := headers[:engine.DefaultBatchSize]
	out := make([]int, len(batch))
	tree.ClassifyBatch(batch, out) // warm the pooled scratch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree.ClassifyBatch(batch, out)
	}
	b.StopTimer()
	perOp := b.Elapsed().Seconds() / float64(b.N) / float64(len(batch))
	b.ReportMetric(perOp*1e9, "ns/pkt")
}

// BenchmarkServePipelined is BenchmarkServeBatched with the engine
// routing every batch through the software-pipelined stage walk at the
// whole-batch group size (the BENCH_PR8.json configuration).
func BenchmarkServePipelined(b *testing.B) {
	rs, headers := serveBenchSet(b)
	tree, err := NewExpCuts(rs, ExpCutsConfig{})
	if err != nil {
		b.Fatal(err)
	}
	cfg := engine.DefaultConfig()
	cfg.BatchSize = engine.DefaultBatchSize
	cfg.PipelineGroup = engine.DefaultBatchSize
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunEngine(tree, cfg, headers, func(EngineResult) {}); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N*len(headers))/b.Elapsed().Seconds()/1e6, "Mpps")
}

// BenchmarkServeClassifyBatchPipelined measures the raw software-
// pipelined stage walk (no engine) next to BenchmarkServeClassifyBatch's
// level-synchronous reading — the allocation column is the regression
// gate: steady state must be 0 allocs/op.
func BenchmarkServeClassifyBatchPipelined(b *testing.B) {
	rs, headers := serveBenchSet(b)
	tree, err := NewExpCuts(rs, ExpCutsConfig{})
	if err != nil {
		b.Fatal(err)
	}
	batch := headers[:engine.DefaultBatchSize]
	out := make([]int, len(batch))
	tree.ClassifyBatchPipelined(batch, out, len(batch), false) // warm the pooled scratch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree.ClassifyBatchPipelined(batch, out, len(batch), false)
	}
	b.StopTimer()
	perOp := b.Elapsed().Seconds() / float64(b.N) / float64(len(batch))
	b.ReportMetric(perOp*1e9, "ns/pkt")
}

// BenchmarkNPSimulate measures the discrete-event simulator itself
// (simulated packets per wall-clock second).
func BenchmarkNPSimulate(b *testing.B) {
	rs, headers := benchSet(b)
	tree, err := NewExpCuts(rs, ExpCutsConfig{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SimulateThroughput(tree, headers[:256], DefaultNPConfig(), 5000); err != nil {
			b.Fatal(err)
		}
	}
}
