// Command pcclass classifies a packet trace against a rule set with a
// chosen algorithm and reports per-action counts, agreement with the
// linear-search oracle, and the classifier's memory/access statistics.
//
// Usage:
//
//	pcclass -rules cr04.rules -trace cr04.trace -algo expcuts
//	pcclass -ruleset CR04 -gen 10000 -algo hsm -verify
//	pcclass -ruleset FW01 -gen 100000 -workers 8 -timeout 2s -overload shed
//
// With -workers > 0 the trace runs through the hardened parallel engine:
// classifier panics are contained per-packet, -timeout bounds the whole
// run, and -overload picks back-pressure vs. tail-drop under load.
// -shards and -flowcache also route through the engine, serving the
// trace on flow-affinity shards (packets of a flow stay on one shard,
// each with a private flow cache); -build-workers parallelizes
// expcuts/hicuts tree construction under the same build budget.
//
// Builds are resource-governed: -build-timeout and -build-maxnodes set a
// buildgov budget, so a hostile rule set aborts with a typed error
// instead of hanging the command. With -ladder the single -algo build is
// replaced by a degradation ladder (e.g. expcuts,hicuts,hsm,linear):
// rungs are tried best-first under the budget and the report says which
// rung ended up serving.
//
// With -tenants N the trace is served through the multi-tenant engine:
// N tenants each own an independent build of the rule set (through their
// own ladder under their own budget copy), the trace splits round-robin
// across them, and the report carries per-tenant counts and the rung
// each tenant ended up serving from.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro/internal/buildgov"
	"repro/internal/engine"
	"repro/internal/expcuts"
	"repro/internal/hicuts"
	"repro/internal/hsm"
	"repro/internal/hypercuts"
	"repro/internal/linear"
	"repro/internal/obs"
	"repro/internal/pktgen"
	"repro/internal/rfc"
	"repro/internal/rmi"
	"repro/internal/rulegen"
	"repro/internal/rules"
	"repro/internal/tenant"
	"repro/internal/update"
)

type classifier interface {
	Name() string
	Classify(h rules.Header) int
	MemoryBytes() int
}

// batchClassifier is the optional batched contract (engine.BatchClassifier
// shape); every repository classifier implements it.
type batchClassifier interface {
	ClassifyBatch(hs []rules.Header, out []int)
}

// pipelinedClassifier is the optional staged-walk contract
// (engine.PipelinedClassifier shape); ExpCuts and the update manager
// implement it.
type pipelinedClassifier interface {
	ClassifyBatchPipelined(hs []rules.Header, out []int, group int, affine bool)
}

func main() {
	// "pcclass serve" is the live-traffic front end (pcap replay and the
	// UDP classification server); everything else is the classic
	// trace-file mode below.
	if len(os.Args) > 1 && os.Args[1] == "serve" {
		serveMain(os.Args[2:])
		return
	}
	var (
		rulesFile = flag.String("rules", "", "rule set file (ClassBench-style)")
		standard  = flag.String("ruleset", "", "standard set name (FW01..CR04) instead of -rules")
		traceFile = flag.String("trace", "", "trace file from pcgen")
		gen       = flag.Int("gen", 0, "generate a trace of this length instead of -trace")
		seed      = flag.Int64("seed", 1, "generated-trace seed")
		algo      = flag.String("algo", "expcuts", "expcuts, hicuts, hypercuts, hsm, rfc, rmi, linear")
		verify    = flag.Bool("verify", false, "cross-check every result against linear search")
		workers   = flag.Int("workers", 0, "classify through the parallel engine with this many workers (0 = sequential)")
		shards    = flag.Int("shards", 0, "engine: flow-affinity serving shards (0 = GOMAXPROCS when the engine runs; implies the engine)")
		flowCache = flag.Int("flowcache", 0, "engine: per-shard flow-cache capacity in flows (0 = off; implies the engine)")
		queue     = flag.Int("queue", 0, "engine dispatch ring depth (default 256)")
		unordered = flag.Bool("unordered", false, "engine: emit results in completion order instead of arrival order")
		overload  = flag.String("overload", "block", "engine overload policy: block (back-pressure) or shed (tail-drop)")
		timeout   = flag.Duration("timeout", 0, "engine: per-run deadline (0 = none)")
		tenantsN  = flag.Int("tenants", 0, "serve through the multi-tenant engine with this many tenants (each owning its own build of the rule set; trace split round-robin; implies the engine)")

		buildTimeout  = flag.Duration("build-timeout", 0, "build budget: wall-clock bound (0 = none)")
		buildMaxNodes = flag.Int("build-maxnodes", 0, "build budget: node/table-row bound (0 = none)")
		buildWorkers  = flag.Int("build-workers", 0, "parallel subtree construction workers for expcuts/hicuts (0/1 = sequential)")
		ladderNames   = flag.String("ladder", "", "build through this degradation ladder (comma-separated rungs, best first) instead of -algo")

		batch      = flag.Int("batch", 0, "batch size: engine dispatch granularity with -workers, ClassifyBatch chunking when sequential (0 = default/per-packet)")
		pipelined  = flag.Bool("pipeline", false, "classify batches through the software-pipelined stage walk (engine paths and the sequential batched path)")
		group      = flag.Int("group", engine.PipelineAuto, "stage group size for -pipeline (-1 = auto from GOMAXPROCS)")
		affine     = flag.Bool("affine", false, "with -pipeline: shard-affine counting-sorted walk order")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the classify phase")
		memProfile = flag.String("memprofile", "", "write a heap profile after classification")

		metricsAddr = flag.String("metrics", "", "serve Prometheus /metrics, /debug/vars and /events on this addr (e.g. 127.0.0.1:9915)")
		metricsHold = flag.Duration("metrics-hold", 0, "keep the process (and -metrics endpoint) alive this long after the report")
		flightFile  = flag.String("flight", "", "write the event flight recorder as JSON to this file on exit ('-' for stderr)")
	)
	flag.Parse()

	// Observability plumbing: one registry, one flight-recorder ring.
	// Everything downstream takes these as optional and stays on its
	// uninstrumented path when they are nil.
	var (
		ring *obs.Ring
		reg  *obs.Registry
		em   *engine.Metrics
	)
	if *metricsAddr != "" || *flightFile != "" {
		ring = obs.NewRing(obs.DefaultRingSize)
		reg = obs.NewRegistry()
		reg.SetEvents(ring)
		reg.EnableExpvar()
		em = engine.NewMetrics(engine.DefaultMetricsShards)
		em.SetEvents(ring)
		em.Register(reg)
		stop := obs.DumpOnSIGQUIT(ring, os.Stderr)
		defer stop()
		if *flightFile != "" {
			defer func() {
				w := os.Stderr
				if *flightFile != "-" {
					f, err := os.Create(*flightFile)
					if err != nil {
						fmt.Fprintln(os.Stderr, "pcclass: flight recorder:", err)
						return
					}
					defer f.Close()
					w = f
				}
				if err := ring.WriteJSON(w); err != nil {
					fmt.Fprintln(os.Stderr, "pcclass: flight recorder:", err)
				}
			}()
		}
		if *metricsAddr != "" {
			srv, err := reg.Serve(*metricsAddr)
			if err != nil {
				fatal(err)
			}
			defer srv.Close()
			fmt.Printf("metrics       http://%s/metrics (flight recorder at /events)\n", srv.Addr())
		}
	}

	rs, err := loadRules(*rulesFile, *standard)
	if err != nil {
		fatal(err)
	}
	headers, err := loadTrace(rs, *traceFile, *gen, *seed)
	if err != nil {
		fatal(err)
	}

	var budget *buildgov.Budget
	if *buildTimeout > 0 || *buildMaxNodes > 0 {
		budget = &buildgov.Budget{Timeout: *buildTimeout, MaxNodes: *buildMaxNodes, Events: ring}
	}
	start := time.Now()
	var cl classifier
	if *ladderNames != "" {
		cl, err = buildLadder(strings.Split(*ladderNames, ","), rs, budget, ring, reg)
	} else {
		cl, err = build(*algo, rs, budget, *buildWorkers)
	}
	if err != nil {
		fatal(err)
	}
	buildTime := time.Since(start)
	if t, ok := cl.(*expcuts.Tree); ok && reg != nil {
		reg.Register(buildStatsCollector(t))
	}

	oracle := linear.New(rs)
	counts := map[string]int{}
	mismatches := 0
	tally := func(h rules.Header, match int) {
		if *verify && match != oracle.Classify(h) {
			mismatches++
		}
		switch {
		case match < 0:
			counts["no-match"]++
		default:
			counts[rs.Rules[match].Action.String()]++
		}
	}

	if *workers < 0 {
		fatal(fmt.Errorf("-workers must be >= 0 (0 = sequential), got %d", *workers))
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "pcclass:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "pcclass:", err)
			}
		}()
	}

	var engineStats engine.Stats
	var engineErr error
	var tenantStats engine.TenantStats
	var tenantReg *tenant.Registry
	useEngine := *workers > 0 || *shards > 0 || *flowCache > 0 || *tenantsN > 1
	start = time.Now()
	if useEngine {
		ecfg := engine.Config{
			Workers:        *workers,
			Shards:         *shards,
			FlowCacheFlows: *flowCache,
			QueueDepth:     *queue,
			PreserveOrder:  !*unordered,
			BatchSize:      *batch,
			Metrics:        em,
		}
		if *pipelined {
			ecfg.PipelineGroup = *group
			ecfg.PipelineAffine = *affine
		}
		switch *overload {
		case "block":
			ecfg.Overload = engine.OverloadBlock
		case "shed":
			ecfg.Overload = engine.OverloadShed
		default:
			fatal(fmt.Errorf("unknown overload policy %q (block, shed)", *overload))
		}
		ctx := context.Background()
		if *timeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, *timeout)
			defer cancel()
		}
		if *tenantsN > 1 {
			// Multi-tenant mode: each tenant owns its own generation of the
			// same rule set (built through its own ladder under its own
			// budget copy), and the trace is split round-robin across them.
			tenantReg = tenant.NewRegistry(tenant.Options{Events: ring})
			tcfg := tenant.Config{
				Budget:         budget,
				ShedOnOverload: *overload == "shed",
				Update:         update.Config{ValidateSamples: -1, Events: ring},
			}
			if *ladderNames != "" {
				tcfg.Ladder = strings.Split(*ladderNames, ",")
			}
			for i := 1; i <= *tenantsN; i++ {
				if _, err := tenantReg.Add(tenant.ID(i), rs, tcfg); err != nil {
					fatal(err)
				}
			}
			if reg != nil {
				tenantReg.Register(reg)
			}
			pkts := make([]engine.TenantPacket, len(headers))
			for i, h := range headers {
				pkts[i] = engine.TenantPacket{Tenant: uint32(i%*tenantsN + 1), Header: h}
			}
			start = time.Now() // time serving, not the N tenant builds above
			tenantStats, engineErr = engine.RunTenants(ctx, tenantReg, ecfg, pkts, func(r engine.TenantResult) {
				if r.Err != nil {
					return // shed, canceled or panicked: reported via stats
				}
				tally(r.Header, r.Match)
			})
			engineStats = tenantStats.Stats
			tenantReg.Absorb(tenantStats)
		} else {
			engineStats, engineErr = engine.RunContext(ctx, cl, ecfg, headers, func(r engine.Result) {
				if r.Err != nil {
					return // shed, canceled or panicked: reported via stats
				}
				tally(r.Header, r.Match)
			})
		}
		if engineErr != nil && !errors.Is(engineErr, context.DeadlineExceeded) {
			fatal(engineErr)
		}
	} else if pc, ok := cl.(pipelinedClassifier); ok && *pipelined && *batch > 1 {
		// Sequential pipelined path: same chunking as the batched path,
		// but each chunk walks the staged two-phase pipeline.
		g := *group
		if g == engine.PipelineAuto {
			g = engine.AutoPipelineGroup()
		}
		matches := make([]int, *batch)
		for i := 0; i < len(headers); i += *batch {
			chunk := headers[i:min(i+*batch, len(headers))]
			pc.ClassifyBatchPipelined(chunk, matches[:len(chunk)], g, *affine)
			for k, h := range chunk {
				tally(h, matches[k])
			}
		}
	} else if bc, ok := cl.(batchClassifier); ok && *batch > 1 {
		// Sequential batched path: classify fixed-size chunks through
		// ClassifyBatch, reusing one match buffer.
		matches := make([]int, *batch)
		for i := 0; i < len(headers); i += *batch {
			chunk := headers[i:min(i+*batch, len(headers))]
			bc.ClassifyBatch(chunk, matches[:len(chunk)])
			for k, h := range chunk {
				tally(h, matches[k])
			}
		}
	} else {
		for _, h := range headers {
			tally(h, cl.Classify(h))
		}
	}
	classifyTime := time.Since(start)

	fmt.Printf("rule set      %s (%d rules)\n", rs.Name, rs.Len())
	fmt.Printf("classifier    %s (built in %v, %.2f MB SRAM)\n",
		cl.Name(), buildTime.Round(time.Millisecond), float64(cl.MemoryBytes())/1e6)
	fmt.Printf("packets       %d in %v (%.2f Mpkt/s native Go)\n",
		len(headers), classifyTime.Round(time.Millisecond),
		float64(len(headers))/classifyTime.Seconds()/1e6)
	if useEngine {
		if engineStats.Shards > 1 || *flowCache > 0 {
			fmt.Printf("engine        %d flow-affinity shards (flow cache %d flows/shard), %s overload, order %v\n",
				engineStats.Shards, *flowCache, *overload, !*unordered)
		} else {
			fmt.Printf("engine        %d workers, %s overload, order %v\n",
				*workers, *overload, !*unordered)
		}
		fmt.Printf("  classified %d  shed %d  panics %d  canceled %d  max-reorder %d\n",
			engineStats.Packets, engineStats.Shed, engineStats.Panics,
			engineStats.Canceled, engineStats.MaxReorder)
		if engineErr != nil {
			fmt.Printf("  run cut short: %v\n", engineErr)
		}
		if tenantReg != nil {
			fmt.Printf("tenants       %d, %s overload each\n", *tenantsN, *overload)
			for _, id := range tenantReg.IDs() {
				rt := tenantReg.Get(id)
				c := rt.Counts()
				algo, lvl := rt.DescribeAlgorithm()
				fmt.Printf("  tenant %-4v %s (level %d)  offered %d  classified %d  shed %d  panics %d\n",
					id, algo, lvl, c.Offered, c.Classified, c.Shed, c.Panicked)
			}
		}
	}
	for _, action := range []string{"permit", "deny", "class0", "class1", "class2", "class3", "no-match"} {
		if counts[action] > 0 {
			fmt.Printf("  %-9s %d\n", action, counts[action])
		}
	}
	if *verify {
		if mismatches > 0 {
			fmt.Printf("VERIFY FAILED: %d mismatches against linear search\n", mismatches)
			os.Exit(1)
		}
		fmt.Println("verify        all results match linear search")
	}
	if *metricsHold > 0 {
		time.Sleep(*metricsHold)
	}
}

// buildStatsCollector exposes the ExpCuts build-time statistics — the
// paper's Table/Figure quantities — as pc_build_* gauges. Build stats
// are immutable after construction, so the collector just re-reads them
// on each scrape.
func buildStatsCollector(t *expcuts.Tree) obs.Collector {
	return func(emit func(obs.Sample)) {
		st := t.Stats()
		gauge := func(name, help string, v float64) {
			emit(obs.Sample{Name: name, Help: help, Type: "gauge", Value: v})
		}
		gauge("pc_build_nodes", "Unique internal nodes in the serving ExpCuts tree.", float64(st.Nodes))
		gauge("pc_build_depth", "Explicit tree depth of the serving ExpCuts tree.", float64(st.Depth))
		gauge("pc_build_memory_bytes", "Serialized SRAM footprint of the serving classifier.", float64(t.MemoryBytes()))
		gauge("pc_build_worst_case_accesses", "Worst-case SRAM accesses per lookup.", float64(st.WorstCaseAccesses))
		// Per-level stage fill of the software-pipelined walk: how many
		// walk slots entered each level. The level-over-level decay is the
		// software reading of per-stage bank occupancy; all-zero when the
		// pipelined walk has not served.
		for lvl, entries := range t.StageFill() {
			emit(obs.Sample{
				Name:   "pc_pipeline_stage_entries_total",
				Help:   "Walk slots entering each tree level via the software-pipelined walk.",
				Type:   "counter",
				Labels: []obs.Label{{Key: "level", Value: fmt.Sprintf("%d", lvl)}},
				Value:  float64(entries),
			})
		}
	}
}

func loadRules(file, standard string) (*rules.RuleSet, error) {
	if standard != "" {
		return rulegen.Standard(standard)
	}
	if file == "" {
		return nil, fmt.Errorf("need -rules or -ruleset")
	}
	f, err := os.Open(file)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return rules.Parse(file, f)
}

func loadTrace(rs *rules.RuleSet, file string, gen int, seed int64) ([]rules.Header, error) {
	if gen > 0 {
		tr, err := pktgen.Generate(rs, pktgen.Config{Count: gen, Seed: seed, MatchFraction: pktgen.DefaultMatchFraction})
		if err != nil {
			return nil, err
		}
		return tr.Headers, nil
	}
	if file == "" {
		return nil, fmt.Errorf("need -trace or -gen")
	}
	f, err := os.Open(file)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []rules.Header
	sc := bufio.NewScanner(f)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		var src, dst string
		var sp, dp, proto int
		if _, err := fmt.Sscanf(line, "%s %s %d %d %d", &src, &dst, &sp, &dp, &proto); err != nil {
			return nil, fmt.Errorf("trace line %d: %v", lineNo, err)
		}
		s, err := rules.ParseIP(src)
		if err != nil {
			return nil, fmt.Errorf("trace line %d: %v", lineNo, err)
		}
		d, err := rules.ParseIP(dst)
		if err != nil {
			return nil, fmt.Errorf("trace line %d: %v", lineNo, err)
		}
		out = append(out, rules.Header{
			SrcIP: s, DstIP: d,
			SrcPort: uint16(sp), DstPort: uint16(dp), Proto: uint8(proto),
		})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

func build(algo string, rs *rules.RuleSet, budget *buildgov.Budget, buildWorkers int) (classifier, error) {
	ctx := context.Background()
	switch algo {
	case "expcuts":
		return expcuts.NewCtx(ctx, rs, expcuts.Config{BuildWorkers: buildWorkers}, budget)
	case "hicuts":
		return hicuts.NewCtx(ctx, rs, hicuts.Config{BuildWorkers: buildWorkers}, budget)
	case "hypercuts":
		return hypercuts.NewCtx(ctx, rs, hypercuts.Config{}, budget)
	case "hsm":
		return hsm.NewCtx(ctx, rs, hsm.Config{}, budget)
	case "rfc":
		return rfc.NewCtx(ctx, rs, rfc.Config{}, budget)
	case "rmi":
		return rmi.NewCtx(ctx, rs, rmi.Config{}, budget)
	case "linear":
		return linear.New(rs), nil
	}
	return nil, fmt.Errorf("unknown algorithm %q (expcuts, hicuts, hypercuts, hsm, rfc, rmi, linear)", algo)
}

// laddered adapts an update.Manager to the local classifier interface
// and forwards DescribeAlgorithm so the engine attributes runs to the
// serving rung.
type laddered struct{ m *update.Manager }

func (l laddered) Classify(h rules.Header) int { return l.m.Classify(h) }
func (l laddered) ClassifyBatch(hs []rules.Header, out []int) {
	l.m.ClassifyBatch(hs, out)
}
func (l laddered) MemoryBytes() int { return l.m.MemoryBytes() }
func (l laddered) Name() string {
	algo, level := l.m.DescribeAlgorithm()
	return fmt.Sprintf("ladder:%s (degradation level %d)", algo, level)
}
func (l laddered) DescribeAlgorithm() (string, int) { return l.m.DescribeAlgorithm() }

func buildLadder(names []string, rs *rules.RuleSet, budget *buildgov.Budget, ring *obs.Ring, reg *obs.Registry) (classifier, error) {
	rungs, err := update.LadderFromNames(names, budget)
	if err != nil {
		return nil, err
	}
	m, err := update.NewManagerLadder(rs, rungs, update.Config{MaxBuildAttempts: 1, Events: ring})
	if err != nil {
		return nil, err
	}
	m.Register(reg)
	if h := m.Health(); h.BudgetTrips > 0 {
		fmt.Printf("ladder        %d budget-tripped build(s) before settling\n", h.BudgetTrips)
	}
	return laddered{m: m}, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pcclass:", err)
	os.Exit(1)
}
