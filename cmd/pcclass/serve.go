// pcclass serve: the real packet I/O front end. Two sources feed the
// same sharded streaming engine (engine.RunStream):
//
//	pcclass serve -ruleset CR04 -pcap trace.pcap -verify
//	pcclass serve -ruleset CR04 -listen 127.0.0.1:9920 -duration 10s
//
// -pcap replays a classic libpcap capture (native reader, no cgo)
// through wire decode and reports throughput, decode errors and —
// with -verify — oracle-exact agreement with linear search. -listen
// serves the UDP request/reply protocol (see internal/pcapio) until
// -duration elapses or SIGINT/SIGTERM arrives, echoing one verdict per
// request, then prints the conservation accounting. pcload is the
// matching load generator.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/buildgov"
	"repro/internal/engine"
	"repro/internal/iofront"
	"repro/internal/linear"
	"repro/internal/obs"
	"repro/internal/pcapio"
	"repro/internal/rules"
)

func serveMain(args []string) {
	fs := flag.NewFlagSet("pcclass serve", flag.ExitOnError)
	var (
		rulesFile = fs.String("rules", "", "rule set file (ClassBench-style)")
		standard  = fs.String("ruleset", "", "standard set name (FW01..CR04) instead of -rules")
		algo      = fs.String("algo", "expcuts", "expcuts, hicuts, hypercuts, hsm, rfc, rmi, linear")
		ladder    = fs.String("ladder", "", "build through this degradation ladder instead of -algo")

		pcapFile = fs.String("pcap", "", "replay this libpcap capture file and exit")
		verify   = fs.Bool("verify", false, "with -pcap: cross-check every verdict against linear search")

		listen   = fs.String("listen", "", "serve the UDP request/reply protocol on this address")
		duration = fs.Duration("duration", 0, "with -listen: serve this long, then report (0 = until SIGINT/SIGTERM)")
		flush    = fs.Duration("flush", 0, "with -listen: batch flush interval for idle traffic (default 500µs)")
		quiet    = fs.Bool("quiet", false, "with -listen: classify but do not echo verdicts")

		shards    = fs.Int("shards", 0, "flow-affinity serving shards (0 = GOMAXPROCS)")
		flowCache = fs.Int("flowcache", 0, "per-shard flow-cache capacity in flows (0 = off)")
		queue     = fs.Int("queue", 0, "engine dispatch ring depth (default 256)")
		batch     = fs.Int("batch", 0, "engine dispatch batch size (default 64)")
		overload  = fs.String("overload", "block", "overload policy: block (back-pressure) or shed (tail-drop)")

		buildTimeout  = fs.Duration("build-timeout", 0, "build budget: wall-clock bound (0 = none)")
		buildMaxNodes = fs.Int("build-maxnodes", 0, "build budget: node/table-row bound (0 = none)")

		metricsAddr = fs.String("metrics", "", "serve Prometheus /metrics on this addr while serving traffic")
	)
	fs.Parse(args)

	if (*pcapFile == "") == (*listen == "") {
		fatal(fmt.Errorf("serve needs exactly one of -pcap or -listen"))
	}

	var (
		reg *obs.Registry
		em  *engine.Metrics
	)
	if *metricsAddr != "" {
		reg = obs.NewRegistry()
		em = engine.NewMetrics(engine.DefaultMetricsShards)
		em.Register(reg)
		srv, err := reg.Serve(*metricsAddr)
		if err != nil {
			fatal(err)
		}
		defer srv.Close()
		fmt.Printf("metrics       http://%s/metrics\n", srv.Addr())
	}

	rs, err := loadRules(*rulesFile, *standard)
	if err != nil {
		fatal(err)
	}
	var budget *buildgov.Budget
	if *buildTimeout > 0 || *buildMaxNodes > 0 {
		budget = &buildgov.Budget{Timeout: *buildTimeout, MaxNodes: *buildMaxNodes}
	}
	start := time.Now()
	var cl classifier
	if *ladder != "" {
		cl, err = buildLadder(strings.Split(*ladder, ","), rs, budget, nil, reg)
	} else {
		cl, err = build(*algo, rs, budget, 0)
	}
	if err != nil {
		fatal(err)
	}
	fmt.Printf("rule set      %s (%d rules)\n", rs.Name, rs.Len())
	fmt.Printf("classifier    %s (built in %v, %.2f MB SRAM)\n",
		cl.Name(), time.Since(start).Round(time.Millisecond), float64(cl.MemoryBytes())/1e6)

	ecfg := engine.Config{
		Shards:         *shards,
		FlowCacheFlows: *flowCache,
		QueueDepth:     *queue,
		BatchSize:      *batch,
		PreserveOrder:  true,
		Metrics:        em,
	}
	switch *overload {
	case "block":
		ecfg.Overload = engine.OverloadBlock
	case "shed":
		ecfg.Overload = engine.OverloadShed
	default:
		fatal(fmt.Errorf("unknown overload policy %q (block, shed)", *overload))
	}

	if *pcapFile != "" {
		replayPcap(*pcapFile, rs, cl, ecfg, *verify)
		return
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *duration > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *duration)
		defer cancel()
	}
	rep, err := iofront.ListenAndServe(ctx, *listen, cl, iofront.ServerConfig{
		Engine:        ecfg,
		FlushInterval: *flush,
		Echo:          !*quiet,
	}, os.Stdout)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("received      %d datagrams (%d decode errors)\n", rep.Received, rep.DecodeErrors)
	fmt.Printf("  classified %d  shed %d  canceled %d  panics %d  replies %d\n",
		rep.Classified, rep.Shed, rep.Canceled, rep.Panics, rep.Replies)
	fmt.Println("accounting    exact (received = decode-errors + classified + shed + canceled + panics)")
}

// replayPcap streams a capture file through the engine as fast as it
// will classify, optionally checking each verdict against the oracle.
func replayPcap(path string, rs *rules.RuleSet, cl classifier, ecfg engine.Config, verify bool) {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	// One syscall per buffer, not per 80-byte record.
	src, err := pcapio.NewPcapSource(bufio.NewReaderSize(f, 1<<20))
	if err != nil {
		fatal(err)
	}
	oracle := linear.New(rs)
	mismatches := 0
	classified := 0
	start := time.Now()
	st, err := engine.RunStream(context.Background(), cl, ecfg, src, func(r engine.Result) {
		if r.Err != nil {
			return // shed or canceled: reported via stats
		}
		classified++
		if verify && r.Match != oracle.Classify(r.Header) {
			mismatches++
		}
	})
	elapsed := time.Since(start)
	if err != nil {
		fatal(err)
	}
	if err := src.Err(); err != nil {
		fatal(err)
	}
	fmt.Printf("pcap          %s: %d records, %d decode errors\n", path, src.Records, src.DecodeErrors)
	fmt.Printf("packets       %d in %v (%.2f Mpkt/s)\n", st.Packets, elapsed.Round(time.Millisecond),
		float64(st.Packets)/elapsed.Seconds()/1e6)
	fmt.Printf("  classified %d  shed %d  max-reorder %d over %d shards\n",
		classified, st.Shed, st.MaxReorder, st.Shards)
	if verify {
		if mismatches > 0 {
			fmt.Printf("VERIFY FAILED: %d mismatches against linear search\n", mismatches)
			os.Exit(1)
		}
		fmt.Println("verify        all replayed verdicts match linear search")
	}
}
