// Command pcinspect builds a classifier over a rule set and dumps its
// structural anatomy: tree shape, per-level node counts, per-channel SRAM
// words, worst-case access bound, and rule-set statistics. With -save it
// writes the serialized SRAM image to a file (the artifact a control plane
// would load into the chips), which LoadImage can read back.
//
// Usage:
//
//	pcinspect -ruleset CR04 -algo expcuts
//	pcinspect -ruleset FW03 -algo hicuts -save fw03.img
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/expcuts"
	"repro/internal/hicuts"
	"repro/internal/hsm"
	"repro/internal/hypercuts"
	"repro/internal/memlayout"
	"repro/internal/rfc"
	"repro/internal/rulegen"
	"repro/internal/rules"
)

func main() {
	var (
		standard = flag.String("ruleset", "CR04", "standard set name (FW01..CR04)")
		file     = flag.String("rules", "", "rule set file instead of -ruleset")
		algo     = flag.String("algo", "expcuts", "expcuts, hicuts, hypercuts, hsm, rfc")
		save     = flag.String("save", "", "write the serialized SRAM image to this file")
	)
	flag.Parse()

	rs, err := loadRules(*file, *standard)
	if err != nil {
		fatal(err)
	}
	st := rules.ComputeStats(rs)
	fmt.Print(st)
	fmt.Println()

	var image *memlayout.Image
	switch *algo {
	case "expcuts":
		tree, err := expcuts.New(rs, expcuts.Config{})
		if err != nil {
			fatal(err)
		}
		s := tree.Stats()
		fmt.Printf("ExpCuts: depth %d (explicit), %d nodes, worst case %d accesses\n",
			s.Depth, s.Nodes, s.WorstCaseAccesses)
		fmt.Printf("  aggregated %d words, full %d words (ratio %.1f%%), avg unique children %.2f\n",
			s.MemoryWordsAggregated, s.MemoryWordsFull,
			float64(s.MemoryWordsAggregated)*100/float64(s.MemoryWordsFull), s.AvgUniqueChildren)
		fmt.Println("  nodes per level:")
		for lvl, n := range s.NodesPerLevel {
			fmt.Printf("    level %2d: %d\n", lvl, n)
		}
		image = tree.Image()
	case "hicuts":
		tree, err := hicuts.New(rs, hicuts.Config{})
		if err != nil {
			fatal(err)
		}
		s := tree.Stats()
		fmt.Printf("HiCuts: %d nodes (%d leaves), depth %d, max leaf %d rules, worst case %d accesses, %d words\n",
			s.Nodes, s.Leaves, s.MaxDepth, s.MaxLeafRules, s.WorstCaseAccesses, s.MemoryWords)
		image = tree.Image()
	case "hypercuts":
		tree, err := hypercuts.New(rs, hypercuts.Config{})
		if err != nil {
			fatal(err)
		}
		s := tree.Stats()
		fmt.Printf("HyperCuts: %d nodes (%d leaves, %d multi-dim), depth %d, max leaf %d rules, worst case %d accesses, %d words\n",
			s.Nodes, s.Leaves, s.MultiDimNodes, s.MaxDepth, s.MaxLeafRules, s.WorstCaseAccesses, s.MemoryWords)
		image = tree.Image()
	case "hsm":
		cl, err := hsm.New(rs, hsm.Config{})
		if err != nil {
			fatal(err)
		}
		s := cl.Stats()
		fmt.Printf("HSM: worst case %d accesses, %d words\n", s.WorstCaseAccesses, s.MemoryWords)
		for d := 0; d < rules.NumDims; d++ {
			fmt.Printf("  %-8s %5d segments, %5d classes\n", rules.Dim(d), s.Segments[d], s.Classes[d])
		}
		fmt.Printf("  IP classes %d, port classes %d, combined classes %d\n",
			s.IPClasses, s.PortClasses, s.CombinedClasses)
		image = cl.Image()
	case "rfc":
		cl, err := rfc.New(rs, rfc.Config{})
		if err != nil {
			fatal(err)
		}
		s := cl.Stats()
		fmt.Printf("RFC: %d fixed accesses, %d words\n", s.WorstCaseAccesses, s.MemoryWords)
		fmt.Printf("  phase-0 classes per chunk: %v\n", s.Phase0Classes)
		image = cl.Image()
	default:
		fatal(fmt.Errorf("unknown algorithm %q", *algo))
	}

	words := image.ChannelWords()
	fmt.Println("SRAM channel occupancy:")
	for c, w := range words {
		fmt.Printf("  SRAM#%d: %8d words (%6.2f MB of %d MB)\n",
			c, w, float64(w*4)/1e6, memlayout.ChannelBytes>>20)
	}
	if !image.FitsHardware() {
		fmt.Println("  WARNING: image exceeds a channel's 8 MB SRAM chip")
	}

	if *save != "" {
		f, err := os.Create(*save)
		if err != nil {
			fatal(err)
		}
		if err := image.Save(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("image written to %s (%d bytes)\n", *save, image.TotalBytes())
	}
}

func loadRules(file, standard string) (*rules.RuleSet, error) {
	if file == "" {
		return rulegen.Standard(standard)
	}
	f, err := os.Open(file)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return rules.Parse(file, f)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pcinspect:", err)
	os.Exit(1)
}
