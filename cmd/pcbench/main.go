// Command pcbench regenerates the paper's tables and figures (and the
// repository's ablations) and prints them in paper-style rows.
//
// Usage:
//
//	pcbench -experiment all
//	pcbench -experiment fig6,fig9 -packets 50000
//
// Experiments: fig6 fig7 fig8 fig9 tab2 tab4 tab5
// stride habs popcount binth sharing extended ladder serve scaling
// pipeline obs churn tenants rulescale all
//
// The ladder experiment walks every rule set (standard + pathological)
// through the degradation ladder given by -ladder under the build budget
// given by -build-timeout / -build-maxnodes, and prints which rung ended
// up serving each run.
//
// The serve experiment measures engine throughput per-packet versus
// batched (-batch sets the batch size) on the 1k-rule ACL set; it is the
// driver behind the tracked BENCH_PR3.json baseline. The scaling
// experiment measures the flow-affinity sharded engine across -shards
// shard counts (the BENCH_PR4.json curve). The obs experiment prices
// the observability layer itself: metrics-off versus metrics-on
// throughput on the batched and sharded paths (the benchjson
// -metrics-overhead gate runs the same measurement). The churn
// experiment serves the same set while a delta-layer updater pushes live
// edits (-churn-shards sets the shard count) and reports concurrent
// serving Mpps next to sustained updates/sec (the BENCH_PR6.json rows).
// The tenants experiment measures hostile-tenant isolation: a victim
// tenant's Mpps solo versus co-resident with a WildcardStorm tenant
// churning its own delta layer (-tenants-shards sets the shard count;
// the BENCH_PR7.json rows). The rulescale experiment measures build
// time, memory and critical-path Mpps per algorithm on the deterministic
// ACL presets across -rulescale-sizes rule counts, each build under
// buildgov.ScaledBudget — budget-tripped tree builds print as zero-Mpps
// rows (the BENCH_PR9.json matrix). The pipeline experiment sweeps the
// software-pipelined stage walk across -groups group sizes and
// -pipeline-shards shard counts against the level-synchronous baseline
// (the BENCH_PR8.json rows); -pipeline with -group additionally routes
// the serve and scaling experiments through the staged walk, so any
// serving comparison can be read pipelined. -cpuprofile and -memprofile
// write pprof profiles covering the selected experiments.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro/internal/buildgov"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/obs"
)

func main() {
	var (
		which    = flag.String("experiment", "all", "comma-separated experiment list (fig6 fig7 fig8 fig9 tab2 tab4 tab5 stride habs popcount binth sharing extended ladder serve scaling pipeline obs churn tenants rulescale all)")
		packets  = flag.Int("packets", 25000, "packets per simulation")
		traceLen = flag.Int("trace", 2000, "distinct headers per trace")
		seed     = flag.Int64("seed", 1, "trace seed")
		extSet   = flag.String("set", "CR04", "rule set for the extended comparison")

		buildTimeout  = flag.Duration("build-timeout", 500*time.Millisecond, "ladder: wall-clock budget per build attempt (0 = unlimited)")
		buildMaxNodes = flag.Int("build-maxnodes", 0, "ladder: node/table-row budget per build attempt (0 = unlimited)")
		ladderNames   = flag.String("ladder", "expcuts,hicuts,hsm,linear", "ladder: degradation rungs, best first")

		batch         = flag.Int("batch", 0, "serve/scaling/obs: engine batch size (0 = engine default)")
		shardList     = flag.String("shards", "1,2,4,8", "scaling: comma-separated shard counts")
		pipelined     = flag.Bool("pipeline", false, "serve/scaling: route classification through the software-pipelined stage walk")
		group         = flag.Int("group", engine.PipelineAuto, "stage group size for -pipeline (-1 = auto from GOMAXPROCS)")
		affine        = flag.Bool("affine", false, "pipeline: shard-affine counting-sorted walk order")
		pipeShardList = flag.String("pipeline-shards", "1,2,4", "pipeline: comma-separated shard counts for the sweep")
		groupList     = flag.String("groups", "", "pipeline: comma-separated stage group sizes for the sweep (empty = derived from batch)")
		obsShards     = flag.Int("obs-shards", 4, "obs: shard count for the sharded overhead row")
		churnShards   = flag.Int("churn-shards", 4, "churn: shard count for the live-update run")
		tenantsShards = flag.Int("tenants-shards", 4, "tenants: shard count for the isolation run")
		scaleSizes    = flag.String("rulescale-sizes", "1000,10000,100000", "rulescale: comma-separated ACL rule counts")
		scaleAlgos    = flag.String("rulescale-algos", "expcuts,hsm,linear,rmi", "rulescale: comma-separated algorithms")
		cpuProfile    = flag.String("cpuprofile", "", "write a CPU profile covering the selected experiments")
		memProfile    = flag.String("memprofile", "", "write a heap profile after the selected experiments")

		metricsAddr = flag.String("metrics", "", "serve /metrics, /debug/vars and /events on this addr while experiments run (process-level introspection; experiment engines stay uninstrumented so their numbers match the metrics-off baselines)")
	)
	flag.Parse()

	if *metricsAddr != "" {
		reg := obs.NewRegistry()
		reg.SetEvents(obs.NewRing(obs.DefaultRingSize))
		reg.EnableExpvar()
		srv, err := reg.Serve(*metricsAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pcbench:", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Printf("metrics on http://%s/metrics\n\n", srv.Addr())
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pcbench:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "pcbench:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "pcbench:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "pcbench:", err)
			}
		}()
	}

	ctx := experiments.Context{TraceLen: *traceLen, Packets: *packets, Seed: *seed}
	if *pipelined {
		ctx.PipelineGroup = *group
		ctx.PipelineAffine = *affine
	}

	type driver struct {
		name string
		run  func() (string, error)
	}
	drivers := []driver{
		{"fig6", func() (string, error) {
			rows, err := experiments.Fig6(ctx)
			return experiments.RenderFig6(rows), err
		}},
		{"fig7", func() (string, error) {
			rows, err := experiments.Fig7(ctx)
			return experiments.RenderFig7(rows), err
		}},
		{"fig8", func() (string, error) {
			rows, err := experiments.Fig8(ctx)
			return experiments.RenderFig8(rows), err
		}},
		{"fig9", func() (string, error) {
			rows, err := experiments.Fig9(ctx)
			return experiments.RenderFig9(rows), err
		}},
		{"tab2", func() (string, error) {
			rows, err := experiments.Tab2(ctx)
			return experiments.RenderTab2(rows), err
		}},
		{"tab4", func() (string, error) {
			rows, err := experiments.Tab4(ctx)
			return experiments.RenderTab4(rows), err
		}},
		{"tab5", func() (string, error) {
			rows, err := experiments.Tab5(ctx)
			return experiments.RenderTab5(rows), err
		}},
		{"stride", func() (string, error) {
			rows, err := experiments.AblationStride(ctx)
			return experiments.RenderAblationStride(rows), err
		}},
		{"habs", func() (string, error) {
			rows, err := experiments.AblationHABS(ctx)
			return experiments.RenderAblationHABS(rows), err
		}},
		{"popcount", func() (string, error) {
			rows, err := experiments.AblationPopCount(ctx)
			return experiments.RenderAblationPopCount(rows), err
		}},
		{"binth", func() (string, error) {
			rows, err := experiments.AblationBinth(ctx)
			return experiments.RenderAblationBinth(rows), err
		}},
		{"sharing", func() (string, error) {
			rows, err := experiments.AblationSharing(ctx)
			return experiments.RenderAblationSharing(rows), err
		}},
		{"extended", func() (string, error) {
			rows, err := experiments.Extended(ctx, *extSet)
			return experiments.RenderExtended(rows, *extSet), err
		}},
		{"ladder", func() (string, error) {
			var budget *buildgov.Budget
			if *buildTimeout > 0 || *buildMaxNodes > 0 {
				budget = &buildgov.Budget{Timeout: *buildTimeout, MaxNodes: *buildMaxNodes}
			}
			names := strings.Split(*ladderNames, ",")
			rows, err := experiments.Ladder(ctx, names, budget)
			if err != nil {
				return "", err
			}
			return experiments.RenderLadder(rows, names, budget), nil
		}},
		{"serve", func() (string, error) {
			rows, err := experiments.Serve(ctx, *batch)
			if err != nil {
				return "", err
			}
			return experiments.RenderServe(rows, *batch), nil
		}},
		{"scaling", func() (string, error) {
			counts, err := parseIntList(*shardList, "shard count")
			if err != nil {
				return "", err
			}
			rows, err := experiments.ServeScaling(ctx, *batch, counts)
			if err != nil {
				return "", err
			}
			return experiments.RenderScaling(rows, *batch), nil
		}},
		{"pipeline", func() (string, error) {
			counts, err := parseIntList(*pipeShardList, "shard count")
			if err != nil {
				return "", err
			}
			var groups []int
			if *groupList != "" {
				if groups, err = parseIntList(*groupList, "group size"); err != nil {
					return "", err
				}
			}
			rows, fill, err := experiments.Pipeline(ctx, *batch, groups, counts, *affine)
			if err != nil {
				return "", err
			}
			return experiments.RenderPipeline(rows, fill, *batch), nil
		}},
		{"obs", func() (string, error) {
			rows, err := experiments.MetricsOverhead(ctx, *batch, *obsShards)
			if err != nil {
				return "", err
			}
			return experiments.RenderMetricsOverhead(rows, *batch, *obsShards), nil
		}},
		{"churn", func() (string, error) {
			rows, err := experiments.Churn(ctx, *batch, *churnShards)
			if err != nil {
				return "", err
			}
			return experiments.RenderChurn(rows, *batch, *churnShards), nil
		}},
		{"tenants", func() (string, error) {
			rows, err := experiments.Tenants(ctx, *batch, *tenantsShards)
			if err != nil {
				return "", err
			}
			return experiments.RenderTenants(rows, *batch, *tenantsShards), nil
		}},
		{"rulescale", func() (string, error) {
			sizes, err := parseIntList(*scaleSizes, "rule count")
			if err != nil {
				return "", err
			}
			algos := strings.Split(*scaleAlgos, ",")
			for i := range algos {
				algos[i] = strings.TrimSpace(algos[i])
			}
			rows, err := experiments.RuleScale(ctx, sizes, algos)
			if err != nil {
				return "", err
			}
			return experiments.RenderRuleScale(rows), nil
		}},
	}

	want := map[string]bool{}
	for _, name := range strings.Split(*which, ",") {
		want[strings.TrimSpace(name)] = true
	}
	all := want["all"]

	ran := 0
	for _, d := range drivers {
		if !all && !want[d.name] {
			continue
		}
		start := time.Now()
		out, err := d.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "pcbench: %s: %v\n", d.name, err)
			os.Exit(1)
		}
		fmt.Println(out)
		fmt.Printf("(%s completed in %.1fs)\n\n", d.name, time.Since(start).Seconds())
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "pcbench: no experiment matched %q\n", *which)
		os.Exit(2)
	}
}

// parseIntList parses a comma-separated list of positive integers
// (the -shards, -pipeline-shards and -groups flags).
func parseIntList(s, what string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		var n int
		if _, err := fmt.Sscanf(strings.TrimSpace(part), "%d", &n); err != nil || n < 1 {
			return nil, fmt.Errorf("invalid %s %q", what, part)
		}
		out = append(out, n)
	}
	return out, nil
}
