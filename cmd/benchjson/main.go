// Command benchjson runs the serving fast-path comparison (the hardened
// engine per-packet versus batched on the 1k-rule ACL set) and writes a
// machine-readable baseline. The checked-in BENCH_PR3.json at the repo
// root is one such run; CI regenerates the numbers so regressions show up
// as a diff against it.
//
// Usage:
//
//	benchjson [-out BENCH_PR3.json] [-batch 64] [-packets 25000] [-seed 1]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/engine"
	"repro/internal/experiments"
)

// baseline is the file format: enough run metadata to interpret the rows
// (a 1-core container and a 16-core server produce very different absolute
// Mpps; the speedup column is the portable number).
type baseline struct {
	Benchmark  string `json:"benchmark"`
	Generated  string `json:"generated"`
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	RuleSet    string `json:"rule_set"`
	Rules      int    `json:"rules"`
	Packets    int    `json:"packets"`
	BatchSize  int    `json:"batch_size"`
	Rows       []row  `json:"rows"`
}

type row struct {
	Algo          string  `json:"algo"`
	PerPacketMpps float64 `json:"per_packet_mpps"`
	BatchedMpps   float64 `json:"batched_mpps"`
	Speedup       float64 `json:"speedup"`
}

func main() {
	out := flag.String("out", "BENCH_PR3.json", "output file ('-' for stdout)")
	batch := flag.Int("batch", engine.DefaultBatchSize, "engine batch size for the batched runs")
	packets := flag.Int("packets", 0, "packets per timed run (0 = experiment default)")
	seed := flag.Int64("seed", 1, "trace and rule-set seed")
	flag.Parse()

	ctx := experiments.DefaultContext()
	ctx.Seed = *seed
	if *packets > 0 {
		ctx.Packets = *packets
	}
	rows, err := experiments.Serve(ctx, *batch)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}

	b := baseline{
		Benchmark:  "serve-fast-path",
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		RuleSet:    "ACL1K",
		Rules:      experiments.ServeRuleSize,
		Packets:    ctx.Packets,
		BatchSize:  *batch,
	}
	for _, r := range rows {
		b.Rows = append(b.Rows, row{
			Algo:          r.Algo,
			PerPacketMpps: round2(r.PerPacketMpps),
			BatchedMpps:   round2(r.BatchedMpps),
			Speedup:       round2(r.Speedup),
		})
	}

	enc, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "-" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d algorithms, batch=%d)\n", *out, len(b.Rows), *batch)
}

// round2 keeps the checked-in baseline diffable: two decimals carry all
// the signal a throughput comparison has.
func round2(v float64) float64 {
	return float64(int(v*100+0.5)) / 100
}
