// Command benchjson runs the serving fast-path comparison (the hardened
// engine per-packet versus batched on the 1k-rule ACL set) and writes a
// machine-readable baseline. The checked-in BENCH_PR3.json and
// BENCH_PR4.json at the repo root are such runs; CI regenerates the
// numbers so regressions show up as a diff against them.
//
// With -scaling the file also carries the multi-core serving curve:
// batched ExpCuts at 1/2/4/8 shards, with measured wall-clock Mpps and
// the critical-path projection (packets / busiest shard's classify
// time). With -churn it carries the live-update rows (BENCH_PR6.json):
// serving Mpps quiet versus under sustained delta-layer edits, plus the
// absorbed updates/sec. With -tenants it carries the hostile-tenant
// isolation rows (BENCH_PR7.json): the victim tenant's Mpps solo versus
// co-resident with a churning WildcardStorm tenant, and the isolation
// ratio between them. With -pipeline it carries the software-pipelined
// walk sweep (BENCH_PR8.json): group size x shard count against the
// level-synchronous baseline, plus the per-level stage-fill histogram.
// With -rulescale it carries the scaling-by-rule-count matrix
// (BENCH_PR9.json): build time, resident bytes and critical-path Mpps for
// each algorithm at 1k/10k/100k ACL rules under buildgov.ScaledBudget,
// with budget-tripped tree builds recorded as zero-throughput rows — plus
// the headline gate that the learned RQ-RMI rung beats the best tree
// rung's critical path at the largest size. With -iofrontend it carries
// the packet I/O front-end sweep (BENCH_PR10.json): the in-process
// loopback UDP serve/load pair, with round-trip latency quantiles, shed
// rate and loss per target rate, gated generously on rate/latency (the
// loopback measures syscall cost, not the classifier) and strictly on
// decode_errors == 0. With -check FILE the tool
// instead re-measures the
// rows the file tracks and exits non-zero if anything regressed against
// FILE beyond -tolerance — the benchstat-style gate CI runs (the
// isolation ratio, the pipelined-vs-sync speedup and the rmi-vs-tree
// lead are additionally gated by absolute floors).
//
// Usage:
//
//	benchjson [-out BENCH_PR4.json] [-scaling] [-churn] [-tenants] [-pipeline] [-rulescale] [-iofrontend] [-batch 64] [-packets 25000] [-seed 1]
//	benchjson -check BENCH_PR3.json [-tolerance 0.25]
//	benchjson -check BENCH_PR6.json [-tolerance 0.25]
//	benchjson -check BENCH_PR7.json [-tolerance 0.25]
//	benchjson -check BENCH_PR8.json [-tolerance 0.25]
//	benchjson -check BENCH_PR9.json [-tolerance 0.25]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/rulegen"
)

// baseline is the file format: enough run metadata to interpret the rows
// (a 1-core container and a 16-core server produce very different absolute
// Mpps; the speedup columns are the portable numbers).
type baseline struct {
	Benchmark   string `json:"benchmark"`
	Generated   string `json:"generated"`
	GoVersion   string `json:"go_version"`
	GOMAXPROCS  int    `json:"gomaxprocs"`
	CPU         string `json:"cpu,omitempty"`
	RuleSet     string `json:"rule_set"`
	Rules       int    `json:"rules"`
	RuleSetSeed int64  `json:"rule_set_seed"`
	Packets     int    `json:"packets"`
	BatchSize   int    `json:"batch_size"`
	Rows        []row  `json:"rows"`
	// Scaling is the multi-core serving curve (present with -scaling).
	Scaling     []scalingRow `json:"scaling,omitempty"`
	ScalingNote string       `json:"scaling_note,omitempty"`
	// MetricsOverhead records what the obs layer costs (metrics-on over
	// metrics-off throughput) on the paths the baselines track.
	MetricsOverhead []overheadRow `json:"metrics_overhead,omitempty"`
	// Churn is the live-update comparison (present with -churn): serving
	// throughput quiet versus under sustained delta-layer edits, plus the
	// absorbed updates/sec.
	Churn       []churnRow `json:"churn,omitempty"`
	ChurnShards int        `json:"churn_shards,omitempty"`
	ChurnNote   string     `json:"churn_note,omitempty"`
	// Tenants is the hostile-tenant isolation comparison (present with
	// -tenants): the victim tenant's throughput solo versus co-resident
	// with a churning WildcardStorm tenant (BENCH_PR7.json).
	Tenants       []tenantRow `json:"tenants,omitempty"`
	TenantsShards int         `json:"tenants_shards,omitempty"`
	TenantsNote   string      `json:"tenants_note,omitempty"`
	// Pipeline is the software-pipelined walk sweep (present with
	// -pipeline): group size x shard count, with group 0 rows carrying the
	// level-synchronous baseline each speedup is measured against
	// (BENCH_PR8.json).
	Pipeline     []pipelineRow `json:"pipeline,omitempty"`
	PipelineNote string        `json:"pipeline_note,omitempty"`
	// StageFill is the per-level live-slot fraction observed during the
	// pipelined windows, normalized to level 0.
	StageFill []float64 `json:"stage_fill,omitempty"`
	// RuleScale is the scaling-by-rule-count matrix (present with
	// -rulescale): per-algorithm build time, memory and critical-path Mpps
	// at each ACL preset size, under buildgov.ScaledBudget (BENCH_PR9.json).
	RuleScale     []ruleScaleRow `json:"rule_scale,omitempty"`
	RuleScaleNote string         `json:"rule_scale_note,omitempty"`
	// IOFrontend is the packet I/O front-end latency sweep (present with
	// -iofrontend): the in-process loopback UDP serve/load pair, one row
	// per target rate, carrying round-trip latency quantiles and shed/loss
	// accounting (BENCH_PR10.json).
	IOFrontend     []ioFrontendRow `json:"iofrontend,omitempty"`
	IOFrontendNote string          `json:"iofrontend_note,omitempty"`
}

type row struct {
	Algo          string  `json:"algo"`
	PerPacketMpps float64 `json:"per_packet_mpps"`
	BatchedMpps   float64 `json:"batched_mpps"`
	Speedup       float64 `json:"speedup"`
	// GOMAXPROCS actually in effect while this row was measured.
	GOMAXPROCS int `json:"gomaxprocs"`
}

type scalingRow struct {
	Shards           int     `json:"shards"`
	GOMAXPROCS       int     `json:"gomaxprocs"`
	MeasuredMpps     float64 `json:"measured_mpps"`
	CriticalPathMpps float64 `json:"critical_path_mpps"`
	Speedup          float64 `json:"speedup"`
}

type overheadRow struct {
	Path    string  `json:"path"`
	OffMpps float64 `json:"metrics_off_mpps"`
	OnMpps  float64 `json:"metrics_on_mpps"`
	Ratio   float64 `json:"ratio"`
}

type churnRow struct {
	Mode          string  `json:"mode"`
	ServingMpps   float64 `json:"serving_mpps"`
	UpdatesPerSec float64 `json:"updates_per_sec"`
	Compactions   uint64  `json:"compactions"`
	GOMAXPROCS    int     `json:"gomaxprocs"`
}

type tenantRow struct {
	Mode           string  `json:"mode"`
	VictimMpps     float64 `json:"victim_mpps"`
	VictimNsPerPkt float64 `json:"victim_ns_per_pkt"`
	AggregateMpps  float64 `json:"aggregate_mpps"`
	UpdatesPerSec  float64 `json:"updates_per_sec"`
	IsolationRatio float64 `json:"isolation_ratio,omitempty"`
	VictimAlgo     string  `json:"victim_algo"`
	HostileAlgo    string  `json:"hostile_algo,omitempty"`
	GOMAXPROCS     int     `json:"gomaxprocs"`
}

type pipelineRow struct {
	Shards           int     `json:"shards"`
	Group            int     `json:"group"` // 0 = level-synchronous baseline
	Affine           bool    `json:"affine,omitempty"`
	MeasuredMpps     float64 `json:"measured_mpps"`
	CriticalPathMpps float64 `json:"critical_path_mpps"`
	SpeedupVsSync    float64 `json:"speedup_vs_sync"`
	GOMAXPROCS       int     `json:"gomaxprocs"`
}

type ioFrontendRow struct {
	RatePPS      int     `json:"rate_pps"` // 0 = unpaced
	Sent         int     `json:"sent"`
	Replies      int     `json:"replies"`
	Lost         int     `json:"lost"`
	DecodeErrors int     `json:"decode_errors"`
	AchievedPPS  float64 `json:"achieved_pps"`
	ShedRate     float64 `json:"shed_rate"`
	P50Us        float64 `json:"p50_us"`
	P99Us        float64 `json:"p99_us"`
	P999Us       float64 `json:"p999_us"`
	MeanUs       float64 `json:"mean_us"`
	GOMAXPROCS   int     `json:"gomaxprocs"`
}

type ruleScaleRow struct {
	Algo             string  `json:"algo"`
	Rules            int     `json:"rules"`
	RuleSet          string  `json:"rule_set"`
	BuildMs          float64 `json:"build_ms"`
	MemoryBytes      int     `json:"memory_bytes,omitempty"`
	CriticalPathMpps float64 `json:"critical_path_mpps"`
	// BuildError marks a budget-tripped build; such rows carry zero
	// throughput and are the point, not a measurement failure.
	BuildError string `json:"build_error,omitempty"`
	GOMAXPROCS int    `json:"gomaxprocs"`
}

// pipelineSpeedupFloor is the self-relative gate -check applies when a
// baseline carries pipeline rows: the best single-shard pipelined
// group's critical-path Mpps must beat the level-synchronous walk's
// critical path measured in the same invocation by at least this ratio.
// Both sides of the ratio come from interleaved windows seconds apart
// and the critical path excludes the dispatcher/emitter goroutines the
// walk shares cores with, so it holds where the cross-run tolerance
// needs 25% — a pipelined walk that stops beating sync is a regression
// in the tentpole itself, whatever the host is doing.
const pipelineSpeedupFloor = 1.05

// pipelineHeadlineFloor is the absolute single-shard pipelined Mpps the
// written baseline must demonstrate: 1.15x the PR4 5.6 Mpps batched
// headline. It is checked against the best single-shard pipelined
// critical-path projection across the generation samples — the same
// reading scaling_note establishes as the classification signal on a
// few-core host, where the dispatcher and emitter goroutines compete
// with the classify worker for cores and wall-clock measures the
// machine, not the walk. Generation re-measures once before failing,
// like the tenants isolation floor.
const pipelineHeadlineFloor = 6.44

// tenantIsolationFloor is the victim-Mpps ratio (hostile/solo) below
// which the -check gate fails: the acceptance criterion is ≤ 10%
// degradation, checked here with noise slack at 15%.
const tenantIsolationFloor = 0.85

// rmiLeadFloor is the rmi-vs-best-tree critical-path ratio the rulescale
// gate requires at the largest measured size. Budget-tripped tree builds
// score zero Mpps, so the gate normally reads "rmi classifies where the
// trees cannot be built at all"; should the trees someday fit their
// scaled budgets at 100k, rmi must still match the best of them. The gate
// is self-relative (both sides measured in the same invocation) so it
// holds at 1.0 where the cross-run tolerance needs 25%.
const rmiLeadFloor = 1.0

// genSamples is how many times baseline generation samples the serve
// comparison, folding per-algo minima into the written file. The gate is
// one-sided (only downward moves fail a -check), so the baseline must
// record throughput this host achieves RELIABLY, not the luckiest window
// one invocation caught — a lucky baseline turns every future check into
// a coin toss on a noisy shared host.
const genSamples = 3

// checkAttempts is how many times a failing throughput comparison is
// re-measured before -check gives up. Same reasoning as checkOverhead's
// single retry: a shared host's load regime shifts between invocations,
// and a real regression fails every attempt while a noise dip does not.
// The per-row maximum across attempts is what is compared.
const checkAttempts = 3

// ioFrontendPPSTol and ioFrontendLatTol are the front-end gate's
// tolerances, deliberately far looser than the shared throughput
// tolerance: loopback round trips are dominated by per-syscall and
// timer-wake cost, which is a property of the host (under sandboxed
// kernels, two orders of magnitude above bare metal — and observed to
// swing more than 2x between runs minutes apart on the same box), not of
// the classification path. The gate exists to catch the front end
// getting structurally slower — a batching regression, a per-packet
// allocation, a lost flush — which shows up as order-of-magnitude
// multiples, not percents. Achieved rate may halve and latency
// quantiles may grow 9x (one decimal order) before the gate trips.
// Decode errors are the exception: well-formed pktgen traffic must
// decode exactly, so any nonzero count fails regardless of tolerance.
const (
	ioFrontendPPSTol = 0.5
	ioFrontendLatTol = 9.0
)

// foldIOFrontendRows runs the loopback sweep n times and folds the
// conservative reading of each rate point: the minimum achieved rate and
// the maximum latency quantiles — what the host does RELIABLY on both
// axes, since the check gate is one-sided in opposite directions for the
// two. The first sample runs the adaptive sweep (unpaced capacity, then
// half of it); its rates are pinned for the rest, so every sample's rows
// fold against the same targets. Any sample with decode errors fails
// generation outright.
func foldIOFrontendRows(ctx experiments.Context, n int) ([]experiments.IOFrontendRow, error) {
	var folded []experiments.IOFrontendRow
	var rates []int
	for i := 0; i < n; i++ {
		rows, err := experiments.IOFrontend(ctx, rates)
		if err != nil {
			return nil, err
		}
		if rates == nil {
			for _, r := range rows {
				rates = append(rates, r.RatePPS)
			}
		}
		for _, r := range rows {
			if r.DecodeErrors > 0 {
				return nil, fmt.Errorf("iofrontend: %d decode errors at rate %d: well-formed traffic must decode exactly",
					r.DecodeErrors, r.RatePPS)
			}
		}
		if folded == nil {
			folded = rows
			continue
		}
		for j := range folded {
			if rows[j].AchievedPPS < folded[j].AchievedPPS {
				folded[j].AchievedPPS = rows[j].AchievedPPS
			}
			if rows[j].ShedRate > folded[j].ShedRate {
				folded[j].ShedRate = rows[j].ShedRate
			}
			if rows[j].Lost > folded[j].Lost {
				folded[j].Lost = rows[j].Lost
			}
			if rows[j].P50Us > folded[j].P50Us {
				folded[j].P50Us = rows[j].P50Us
			}
			if rows[j].P99Us > folded[j].P99Us {
				folded[j].P99Us = rows[j].P99Us
			}
			if rows[j].P999Us > folded[j].P999Us {
				folded[j].P999Us = rows[j].P999Us
			}
			if rows[j].MeanUs > folded[j].MeanUs {
				folded[j].MeanUs = rows[j].MeanUs
			}
		}
	}
	return folded, nil
}

// minServeRows folds per-algorithm minima over n Serve invocations.
func minServeRows(ctx experiments.Context, batch, n int) ([]experiments.ServeRow, error) {
	var folded []experiments.ServeRow
	for i := 0; i < n; i++ {
		rows, err := experiments.Serve(ctx, batch)
		if err != nil {
			return nil, err
		}
		if folded == nil {
			folded = rows
			continue
		}
		for j := range folded {
			if rows[j].PerPacketMpps < folded[j].PerPacketMpps {
				folded[j].PerPacketMpps = rows[j].PerPacketMpps
			}
			if rows[j].BatchedMpps < folded[j].BatchedMpps {
				folded[j].BatchedMpps = rows[j].BatchedMpps
			}
		}
	}
	for j := range folded {
		folded[j].Speedup = folded[j].BatchedMpps / folded[j].PerPacketMpps
	}
	return folded, nil
}

// minPipelineRows folds per-cell minima over n Pipeline sweeps and
// recomputes each speedup from the folded minima, so the written
// baseline records what the host achieves reliably. The stage-fill
// histogram is deterministic (a property of the tree and trace, not the
// clock) and comes from the first sweep.
func minPipelineRows(ctx experiments.Context, batch int, groups, shards []int, n int) ([]experiments.PipelineRow, []float64, float64, error) {
	var folded []experiments.PipelineRow
	var fill []float64
	var headline float64
	for i := 0; i < n; i++ {
		rows, f, err := experiments.Pipeline(ctx, batch, groups, shards, false)
		if err != nil {
			return nil, nil, 0, err
		}
		// The headline floor is a capability check, not a reliability
		// floor, so it takes the best sample rather than the fold.
		if best := bestSingleShardPipelined(rows); best > headline {
			headline = best
		}
		if folded == nil {
			folded, fill = rows, f
			continue
		}
		for j := range folded {
			if rows[j].MeasuredMpps < folded[j].MeasuredMpps {
				folded[j].MeasuredMpps = rows[j].MeasuredMpps
			}
			if rows[j].CriticalPathMpps < folded[j].CriticalPathMpps {
				folded[j].CriticalPathMpps = rows[j].CriticalPathMpps
			}
		}
	}
	sync := map[int]float64{}
	for _, r := range folded {
		if r.Group == 0 {
			sync[r.Shards] = r.MeasuredMpps
		}
	}
	for j := range folded {
		if folded[j].Group == 0 {
			folded[j].SpeedupVsSync = 1
		} else if s := sync[folded[j].Shards]; s > 0 {
			folded[j].SpeedupVsSync = folded[j].MeasuredMpps / s
		}
	}
	return folded, fill, headline, nil
}

// bestSingleShardPipelined returns the highest single-shard pipelined
// critical-path Mpps in rows (see pipelineHeadlineFloor for why the
// projection rather than wall-clock), or 0 when there is none.
func bestSingleShardPipelined(rows []experiments.PipelineRow) float64 {
	var best float64
	for _, r := range rows {
		if r.Shards == 1 && r.Group > 0 && r.CriticalPathMpps > best {
			best = r.CriticalPathMpps
		}
	}
	return best
}

// minRuleScaleRows folds per-cell throughput minima over n RuleScale
// sweeps (fastest build time is kept — build cost is recorded context,
// not a gated floor, and the minimum is the stable reading of it).
// Budget-trip outcomes are deterministic for a fixed budget shape, so the
// fold only ever combines rows with matching build outcomes.
func minRuleScaleRows(ctx experiments.Context, sizes []int, algos []string, n int) ([]experiments.RuleScaleRow, error) {
	var folded []experiments.RuleScaleRow
	for i := 0; i < n; i++ {
		rows, err := experiments.RuleScale(ctx, sizes, algos)
		if err != nil {
			return nil, err
		}
		if folded == nil {
			folded = rows
			continue
		}
		for j := range folded {
			if rows[j].CriticalPathMpps < folded[j].CriticalPathMpps {
				folded[j].CriticalPathMpps = rows[j].CriticalPathMpps
			}
			if rows[j].BuildMs < folded[j].BuildMs {
				folded[j].BuildMs = rows[j].BuildMs
			}
		}
	}
	return folded, nil
}

// rmiLead returns rmi's critical-path Mpps at the largest rule count in
// rows divided by the best tree rung's (expcuts or hsm) at that same
// size. Budget-tripped builds carry zero Mpps. When no tree rung was
// measured (or every tree tripped), the divisor is zero and the lead is
// +Inf — rmi classifying at a scale where no tree exists is the maximal
// win, which is exactly how the gate should read it.
func rmiLead(rows []experiments.RuleScaleRow) (lead float64, size int) {
	for _, r := range rows {
		if r.Rules > size {
			size = r.Rules
		}
	}
	var rmiMpps, treeMpps float64
	for _, r := range rows {
		if r.Rules != size {
			continue
		}
		switch r.Algo {
		case "rmi":
			rmiMpps = r.CriticalPathMpps
		case "expcuts", "hsm":
			if r.CriticalPathMpps > treeMpps {
				treeMpps = r.CriticalPathMpps
			}
		}
	}
	if treeMpps == 0 {
		if rmiMpps > 0 {
			return math.Inf(1), size
		}
		return 0, size
	}
	return rmiMpps / treeMpps, size
}

func main() {
	out := flag.String("out", "BENCH_PR3.json", "output file ('-' for stdout)")
	batch := flag.Int("batch", engine.DefaultBatchSize, "engine batch size for the batched runs")
	packets := flag.Int("packets", 0, "packets per timed run (0 = experiment default)")
	seed := flag.Int64("seed", 1, "trace and rule-set seed")
	scaling := flag.Bool("scaling", false, "also measure the 1/2/4/8-shard scaling curve")
	check := flag.String("check", "", "baseline file to compare against instead of writing one")
	tolerance := flag.Float64("tolerance", 0.25, "relative batched-Mpps regression allowed by -check")
	overheadTol := flag.Float64("metrics-overhead", 0.02,
		"max throughput the obs layer may cost (-check fails when metrics-on/metrics-off < 1-this); negative skips the overhead gate")
	overheadShards := flag.Int("overhead-shards", 4, "shard count for the sharded-critical overhead row")
	churn := flag.Bool("churn", false, "also measure serving throughput under sustained delta-layer updates")
	churnShards := flag.Int("churn-shards", 4, "shard count for the churn rows")
	tenants := flag.Bool("tenants", false, "also measure hostile-tenant isolation (victim Mpps solo vs beside a churning WildcardStorm tenant)")
	tenantsShards := flag.Int("tenants-shards", 4, "shard count for the tenants rows")
	pipeline := flag.Bool("pipeline", false, "also sweep the software-pipelined walk (group size x shard count vs the level-sync baseline)")
	rulescale := flag.Bool("rulescale", false, "also measure the scaling-by-rule-count matrix (1k/10k/100k ACL rules x algorithm under ScaledBudget)")
	iofrontend := flag.Bool("iofrontend", false, "also measure the loopback UDP serve/load round-trip latency sweep")
	flag.Parse()

	ctx := experiments.DefaultContext()
	ctx.Seed = *seed
	if *packets > 0 {
		ctx.Packets = *packets
	}

	if *check != "" {
		if err := checkBaseline(*check, ctx, *batch, *tolerance); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		if err := checkOverhead(ctx, *batch, *overheadShards, *overheadTol); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		if err := checkChurn(*check, ctx, *batch, *tolerance); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		if err := checkTenants(*check, ctx, *batch, *tolerance); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		if err := checkPipeline(*check, ctx, *batch, *tolerance); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		if err := checkRuleScale(*check, ctx, *tolerance); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		if err := checkIOFrontend(*check, ctx); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		return
	}

	// A -pipeline, -rulescale or -iofrontend baseline tracks only its own
	// sweep: the serve comparison is already gated by BENCH_PR3/PR4, and
	// re-recording it at whatever speed the host happens to run during
	// this generation would just duplicate that gate with a fresher,
	// flakier floor.
	var rows []experiments.ServeRow
	if !*pipeline && !*rulescale && !*iofrontend {
		var err error
		rows, err = minServeRows(ctx, *batch, genSamples)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
	}

	b := baseline{
		Benchmark:   "serve-fast-path",
		Generated:   time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		CPU:         cpuModel(),
		RuleSet:     "ACL1K",
		Rules:       experiments.ServeRuleSize,
		RuleSetSeed: *seed,
		Packets:     ctx.Packets,
		BatchSize:   *batch,
	}
	for _, r := range rows {
		b.Rows = append(b.Rows, row{
			Algo:          r.Algo,
			PerPacketMpps: round2(r.PerPacketMpps),
			BatchedMpps:   round2(r.BatchedMpps),
			Speedup:       round2(r.Speedup),
			GOMAXPROCS:    runtime.GOMAXPROCS(0),
		})
	}
	if *scaling {
		b.Benchmark = "serve-scaling"
		curve, err := experiments.ServeScaling(ctx, *batch, []int{1, 2, 4, 8})
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		for _, r := range curve {
			b.Scaling = append(b.Scaling, scalingRow{
				Shards:           r.Shards,
				GOMAXPROCS:       r.Gomaxprocs,
				MeasuredMpps:     round2(r.MeasuredMpps),
				CriticalPathMpps: round2(r.CriticalPathMpps),
				Speedup:          round2(r.Speedup),
			})
		}
		b.ScalingNote = "critical_path_mpps projects one core per shard (packets / busiest " +
			"shard's classification time); measured_mpps is wall-clock on this host and is " +
			"bounded by gomaxprocs, so on few cores the projection is the scaling signal"
	}
	if *churn {
		b.Benchmark = "serve-churn"
		rows, err := experiments.Churn(ctx, *batch, *churnShards)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		for _, r := range rows {
			b.Churn = append(b.Churn, churnRow{
				Mode:          r.Mode,
				ServingMpps:   round2(r.ServingMpps),
				UpdatesPerSec: round2(r.UpdatesPerSec),
				Compactions:   r.Compactions,
				GOMAXPROCS:    runtime.GOMAXPROCS(0),
			})
		}
		b.ChurnShards = *churnShards
		b.ChurnNote = "quiet and churn rows share one engine + update.Manager stack; the churn " +
			"updater pushes semantically neutral single-op deltas as fast as the manager absorbs " +
			"them, with background compactions folding mid-run, so the Mpps gap is the price of " +
			"live updates on the serving path"
	}
	if *tenants {
		b.Benchmark = "serve-tenants"
		rows, err := experiments.Tenants(ctx, *batch, *tenantsShards)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		// The written baseline must prove the ≤10% acceptance band; one
		// re-measure rules out a host-noise dip before failing generation.
		for _, r := range rows {
			if r.Mode == "hostile" && r.IsolationRatio < 0.9 {
				fmt.Fprintf(os.Stderr, "benchjson: isolation ratio %.2f below 0.9; re-measuring once to rule out host noise\n", r.IsolationRatio)
				rows, err = experiments.Tenants(ctx, *batch, *tenantsShards)
				if err != nil {
					fmt.Fprintln(os.Stderr, "benchjson:", err)
					os.Exit(1)
				}
				break
			}
		}
		for _, r := range rows {
			b.Tenants = append(b.Tenants, tenantRow{
				Mode:           r.Mode,
				VictimMpps:     round2(r.VictimMpps),
				VictimNsPerPkt: round2(r.VictimNsPerPkt),
				AggregateMpps:  round2(r.AggregateMpps),
				UpdatesPerSec:  round2(r.UpdatesPerSec),
				IsolationRatio: round2(r.IsolationRatio),
				VictimAlgo:     r.VictimAlgo,
				HostileAlgo:    r.HostileAlgo,
				GOMAXPROCS:     runtime.GOMAXPROCS(0),
			})
		}
		b.TenantsShards = *tenantsShards
		b.TenantsNote = "victim_mpps rows serve the victim tenant's pure ACL1K stream through the " +
			"tenant engine; the hostile row adds a co-resident WildcardStorm tenant pinned to " +
			"linear by its tripped build budget, with a flapping updater churning its delta layer " +
			"throughout, so isolation_ratio (hostile/solo victim Mpps) is the fraction of victim " +
			"throughput tenancy preserved (acceptance: >= 0.9; -check floor 0.85); aggregate_mpps " +
			"mixes 1/16 hostile packets into the stream"
		for _, r := range rows {
			if r.Mode == "hostile" && r.IsolationRatio < 0.9 {
				fmt.Fprintf(os.Stderr, "benchjson: isolation ratio %.2f below the 0.9 acceptance floor\n", r.IsolationRatio)
				os.Exit(1)
			}
		}
	}
	if *pipeline {
		b.Benchmark = "serve-pipeline"
		rows, fill, headline, err := minPipelineRows(ctx, *batch, nil, nil, genSamples)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		// The written baseline must demonstrate the headline: best
		// single-shard pipelined critical path at or above the absolute
		// floor. One re-measure rules out a host-noise dip before
		// generation fails.
		if headline < pipelineHeadlineFloor {
			fmt.Fprintf(os.Stderr, "benchjson: single-shard pipelined %.2f Mpps below the %.2f floor; re-measuring once to rule out host noise\n",
				headline, pipelineHeadlineFloor)
			rows, fill, headline, err = minPipelineRows(ctx, *batch, nil, nil, genSamples)
			if err != nil {
				fmt.Fprintln(os.Stderr, "benchjson:", err)
				os.Exit(1)
			}
		}
		if headline < pipelineHeadlineFloor {
			fmt.Fprintf(os.Stderr, "benchjson: single-shard pipelined %.2f Mpps below the %.2f Mpps headline floor\n",
				headline, pipelineHeadlineFloor)
			os.Exit(1)
		}
		fmt.Printf("pipeline headline: single-shard pipelined critical path %.2f Mpps (floor %.2f)\n",
			headline, pipelineHeadlineFloor)
		for _, r := range rows {
			b.Pipeline = append(b.Pipeline, pipelineRow{
				Shards:           r.Shards,
				Group:            r.Group,
				Affine:           r.Affine,
				MeasuredMpps:     round2(r.MeasuredMpps),
				CriticalPathMpps: round2(r.CriticalPathMpps),
				SpeedupVsSync:    round2(r.SpeedupVsSync),
				GOMAXPROCS:       runtime.GOMAXPROCS(0),
			})
		}
		for _, f := range fill {
			b.StageFill = append(b.StageFill, round2(f))
		}
		b.PipelineNote = "group 0 rows are the level-synchronous batched walk; pipelined rows run the " +
			"same arena with the staged two-phase walk at that group size, interleaved rep-by-rep " +
			"with their sync baseline so speedup_vs_sync is noise-cancelled; stage_fill is the " +
			"fraction of walk slots still live entering each tree level, the software reading of " +
			"per-microengine bank occupancy"
	}
	if *rulescale {
		b.Benchmark = "serve-rulescale"
		rows, err := minRuleScaleRows(ctx, nil, nil, genSamples)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		// The written baseline must demonstrate the headline: rmi's
		// critical path at or above the best tree rung's at the largest
		// size. One re-measure rules out a host-noise dip before
		// generation fails.
		lead, largest := rmiLead(rows)
		if lead < rmiLeadFloor {
			fmt.Fprintf(os.Stderr, "benchjson: rmi lead %.2fx at %d rules below the %.2fx floor; re-measuring once to rule out host noise\n",
				lead, largest, rmiLeadFloor)
			rows, err = minRuleScaleRows(ctx, nil, nil, genSamples)
			if err != nil {
				fmt.Fprintln(os.Stderr, "benchjson:", err)
				os.Exit(1)
			}
			lead, largest = rmiLead(rows)
		}
		if lead < rmiLeadFloor {
			fmt.Fprintf(os.Stderr, "benchjson: rmi critical path is only %.2fx the best tree rung's at %d rules (floor %.2fx)\n",
				lead, largest, rmiLeadFloor)
			os.Exit(1)
		}
		fmt.Printf("rulescale headline: rmi vs best tree at %d rules = %s (floor %.2fx)\n",
			largest, leadString(lead), rmiLeadFloor)
		for _, r := range rows {
			b.RuleScale = append(b.RuleScale, ruleScaleRow{
				Algo:             r.Algo,
				Rules:            r.Rules,
				RuleSet:          r.RuleSet,
				BuildMs:          round2(r.BuildMs),
				MemoryBytes:      r.MemoryBytes,
				CriticalPathMpps: round2(r.CriticalPathMpps),
				BuildError:       r.BuildError,
				GOMAXPROCS:       runtime.GOMAXPROCS(0),
			})
		}
		b.RuleScaleNote = "each cell builds its algorithm on the deterministic ACL preset of that size " +
			"under buildgov.ScaledBudget(rules) and measures packets / busiest shard's classify time " +
			"on one shard; rows with build_error are budget-tripped tree builds kept at zero Mpps — " +
			"the decision trees super-linear in rule overlap cannot be built inside a sane resource " +
			"envelope at 10k+ ACL rules, which is the learned-index rung's reason to exist; the gate " +
			"requires rmi >= the best tree rung at the largest size"
	}
	if *iofrontend {
		b.Benchmark = "serve-iofrontend"
		b.RuleSet = "CR04"
		if rs, err := rulegen.Standard("CR04"); err == nil {
			b.Rules = rs.Len()
		}
		rows, err := foldIOFrontendRows(ctx, genSamples)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		for _, r := range rows {
			b.IOFrontend = append(b.IOFrontend, ioFrontendRow{
				RatePPS:      r.RatePPS,
				Sent:         r.Sent,
				Replies:      r.Replies,
				Lost:         r.Lost,
				DecodeErrors: r.DecodeErrors,
				AchievedPPS:  round2(r.AchievedPPS),
				ShedRate:     round2(r.ShedRate),
				P50Us:        round2(r.P50Us),
				P99Us:        round2(r.P99Us),
				P999Us:       round2(r.P999Us),
				MeanUs:       round2(r.MeanUs),
				GOMAXPROCS:   runtime.GOMAXPROCS(0),
			})
		}
		b.IOFrontendNote = "in-process loopback UDP serve/load pair on CR04 ExpCuts: each row sends " +
			"rule-directed pktgen traffic at rate_pps (0 = unpaced) through the full receive path — " +
			"datagram in, segment assembly, wire decode, sharded streaming engine, verdict echo — and " +
			"folds round-trip latency into a log-linear histogram; quantiles are the max and " +
			"achieved_pps the min over the generation samples (the conservative reading on each axis); " +
			"absolute numbers are dominated by the host's per-syscall cost, so the check gate is " +
			"generous on rate and latency and strict only on decode_errors == 0"
	}
	if *overheadTol >= 0 {
		over, err := experiments.MetricsOverhead(ctx, *batch, *overheadShards)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		for _, r := range over {
			b.MetricsOverhead = append(b.MetricsOverhead, overheadRow{
				Path:    r.Path,
				OffMpps: round2(r.OffMpps),
				OnMpps:  round2(r.OnMpps),
				Ratio:   round2(r.Ratio),
			})
		}
	}

	enc, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "-" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d algorithms, batch=%d, %d scaling rows)\n",
		*out, len(b.Rows), *batch, len(b.Scaling))
}

// checkBaseline re-measures the serve comparison and fails if any
// algorithm's batched throughput dropped more than tol relative to the
// baseline file. Only downward moves fail: these runs share a host with
// CI noise, so the gate is one-sided.
func checkBaseline(path string, ctx experiments.Context, batch int, tol float64) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base baseline
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("parsing %s: %w", path, err)
	}
	if base.BatchSize != 0 {
		batch = base.BatchSize
	}
	if base.Packets != 0 {
		ctx.Packets = base.Packets
	}
	if base.RuleSetSeed != 0 {
		ctx.Seed = base.RuleSetSeed
	}
	// A regression must survive every attempt: each re-measurement folds
	// the per-algorithm maximum, so a noise dip clears on a later attempt
	// while a real regression stays under the bar all checkAttempts times.
	best := map[string]float64{}
	var failures []string
	for attempt := 0; attempt < checkAttempts; attempt++ {
		rows, err := experiments.Serve(ctx, batch)
		if err != nil {
			return err
		}
		for _, got := range rows {
			if got.BatchedMpps > best[got.Algo] {
				best[got.Algo] = got.BatchedMpps
			}
		}
		failures = failures[:0]
		for _, want := range base.Rows {
			if want.BatchedMpps == 0 {
				continue
			}
			got, ok := best[want.Algo]
			if !ok {
				continue
			}
			ratio := got / want.BatchedMpps
			fmt.Printf("%-8s batched %.2f Mpps vs baseline %.2f (%.0f%%)\n",
				want.Algo, got, want.BatchedMpps, ratio*100)
			if ratio < 1-tol {
				failures = append(failures,
					fmt.Sprintf("%s batched %.2f Mpps < %.2f baseline - %.0f%% tolerance",
						want.Algo, got, want.BatchedMpps, tol*100))
			}
		}
		if len(failures) == 0 {
			fmt.Printf("ok: no algorithm regressed more than %.0f%% vs %s\n", tol*100, path)
			return nil
		}
		if attempt < checkAttempts-1 {
			fmt.Printf("throughput under baseline; re-measuring to rule out host noise (attempt %d/%d)\n",
				attempt+2, checkAttempts)
		}
	}
	return fmt.Errorf("throughput regressed vs %s on all %d attempts:\n  %s",
		path, checkAttempts, strings.Join(failures, "\n  "))
}

// checkOverhead re-measures the obs-layer cost and fails when the
// metrics-on/metrics-off throughput ratio drops below 1-tol on either
// tracked path. Unlike the baseline comparison this gate is
// self-contained — both readings come from the same process seconds
// apart, so it holds to a tight 2% default where the cross-run gate
// needs 25%. A breach gets re-measured up to checkAttempts times before
// the gate fails: a genuine regression exceeds the budget every time,
// while a host-level noise spike (the CI runner paging, a co-tenant
// burst) rarely survives several independent 25-pair measurements. A
// negative tol skips the gate.
func checkOverhead(ctx experiments.Context, batch, shards int, tol float64) error {
	if tol < 0 {
		return nil
	}
	var failures []string
	for attempt := 0; attempt < checkAttempts; attempt++ {
		rows, err := experiments.MetricsOverhead(ctx, batch, shards)
		if err != nil {
			return err
		}
		failures = failures[:0]
		for _, r := range rows {
			fmt.Printf("%-16s metrics-off %.2f Mpps, metrics-on %.2f (%.1f%% overhead)\n",
				r.Path, r.OffMpps, r.OnMpps, 100*(1-r.Ratio))
			if r.Ratio < 1-tol {
				failures = append(failures,
					fmt.Sprintf("%s: metrics-on %.2f Mpps is %.1f%% below metrics-off %.2f (budget %.0f%%)",
						r.Path, r.OnMpps, 100*(1-r.Ratio), r.OffMpps, tol*100))
			}
		}
		if len(failures) == 0 {
			fmt.Printf("ok: observability overhead within %.0f%% on both paths\n", tol*100)
			return nil
		}
		if attempt < checkAttempts-1 {
			fmt.Printf("overhead budget exceeded; re-measuring to rule out host noise (attempt %d/%d)\n",
				attempt+2, checkAttempts)
		}
	}
	return fmt.Errorf("observability overhead exceeds budget on all %d attempts:\n  %s",
		checkAttempts, strings.Join(failures, "\n  "))
}

// checkChurn re-measures the live-update comparison when the baseline
// file carries churn rows and fails if concurrent serving throughput or
// the sustained update-absorption rate dropped more than tol relative to
// the baseline. Files without churn rows (BENCH_PR3/PR4) skip the gate,
// so one -check invocation works against every tracked baseline.
func checkChurn(path string, ctx experiments.Context, batch int, tol float64) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base baseline
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("parsing %s: %w", path, err)
	}
	if len(base.Churn) == 0 {
		return nil
	}
	if base.BatchSize != 0 {
		batch = base.BatchSize
	}
	if base.Packets != 0 {
		ctx.Packets = base.Packets
	}
	if base.RuleSetSeed != 0 {
		ctx.Seed = base.RuleSetSeed
	}
	shards := base.ChurnShards
	if shards == 0 {
		shards = 4
	}
	// Fold per-mode maxima across attempts, as in checkBaseline: only a
	// drop that survives every re-measurement is a regression.
	bestMpps := map[string]float64{}
	bestUpdates := map[string]float64{}
	var failures []string
	for attempt := 0; attempt < checkAttempts; attempt++ {
		rows, err := experiments.Churn(ctx, batch, shards)
		if err != nil {
			return err
		}
		for _, got := range rows {
			if got.ServingMpps > bestMpps[got.Mode] {
				bestMpps[got.Mode] = got.ServingMpps
			}
			if got.UpdatesPerSec > bestUpdates[got.Mode] {
				bestUpdates[got.Mode] = got.UpdatesPerSec
			}
		}
		failures = failures[:0]
		for _, want := range base.Churn {
			if want.ServingMpps > 0 {
				got := bestMpps[want.Mode]
				ratio := got / want.ServingMpps
				fmt.Printf("churn/%-6s serving %.2f Mpps vs baseline %.2f (%.0f%%)\n",
					want.Mode, got, want.ServingMpps, ratio*100)
				if ratio < 1-tol {
					failures = append(failures,
						fmt.Sprintf("%s serving %.2f Mpps < %.2f baseline - %.0f%% tolerance",
							want.Mode, got, want.ServingMpps, tol*100))
				}
			}
			if want.UpdatesPerSec > 0 {
				got := bestUpdates[want.Mode]
				ratio := got / want.UpdatesPerSec
				fmt.Printf("churn/%-6s updates %.0f/s vs baseline %.0f (%.0f%%)\n",
					want.Mode, got, want.UpdatesPerSec, ratio*100)
				if ratio < 1-tol {
					failures = append(failures,
						fmt.Sprintf("%s updates %.0f/s < %.0f baseline - %.0f%% tolerance",
							want.Mode, got, want.UpdatesPerSec, tol*100))
				}
			}
		}
		if len(failures) == 0 {
			fmt.Printf("ok: churn rows within %.0f%% of %s\n", tol*100, path)
			return nil
		}
		if attempt < checkAttempts-1 {
			fmt.Printf("churn gate under baseline; re-measuring to rule out host noise (attempt %d/%d)\n",
				attempt+2, checkAttempts)
		}
	}
	return fmt.Errorf("live-update performance regressed vs %s on all %d attempts:\n  %s",
		path, checkAttempts, strings.Join(failures, "\n  "))
}

// checkTenants re-measures hostile-tenant isolation when the baseline
// carries tenants rows. Two gates: victim throughput must not regress
// more than tol against the baseline (either row), and the re-measured
// isolation ratio must stay above tenantIsolationFloor — the latter is
// an absolute floor, not a relative one, because the ratio is the
// acceptance criterion itself. Files without tenants rows skip the gate.
func checkTenants(path string, ctx experiments.Context, batch int, tol float64) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base baseline
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("parsing %s: %w", path, err)
	}
	if len(base.Tenants) == 0 {
		return nil
	}
	if base.BatchSize != 0 {
		batch = base.BatchSize
	}
	if base.Packets != 0 {
		ctx.Packets = base.Packets
	}
	if base.RuleSetSeed != 0 {
		ctx.Seed = base.RuleSetSeed
	}
	shards := base.TenantsShards
	if shards == 0 {
		shards = 4
	}
	// Like checkBaseline: fold per-mode maxima (and the max isolation
	// ratio) across attempts so only a regression that survives every
	// re-measurement fails the gate. The victim-algo check is not folded —
	// degradation is deterministic, so any attempt observing a degraded
	// victim fails immediately.
	bestMpps := map[string]float64{}
	var bestIso float64
	var failures []string
	for attempt := 0; attempt < checkAttempts; attempt++ {
		rows, err := experiments.Tenants(ctx, batch, shards)
		if err != nil {
			return err
		}
		for _, got := range rows {
			if got.VictimMpps > bestMpps[got.Mode] {
				bestMpps[got.Mode] = got.VictimMpps
			}
			if got.Mode == "hostile" {
				if got.IsolationRatio > bestIso {
					bestIso = got.IsolationRatio
				}
				if got.VictimAlgo != "expcuts" {
					return fmt.Errorf("tenant isolation broken vs %s: victim degraded to %q beside the hostile tenant",
						path, got.VictimAlgo)
				}
			}
		}
		failures = failures[:0]
		for _, want := range base.Tenants {
			if want.VictimMpps == 0 {
				continue
			}
			got, ok := bestMpps[want.Mode]
			if !ok {
				continue
			}
			ratio := got / want.VictimMpps
			fmt.Printf("tenants/%-7s victim %.2f Mpps vs baseline %.2f (%.0f%%)\n",
				want.Mode, got, want.VictimMpps, ratio*100)
			if ratio < 1-tol {
				failures = append(failures,
					fmt.Sprintf("%s victim %.2f Mpps < %.2f baseline - %.0f%% tolerance",
						want.Mode, got, want.VictimMpps, tol*100))
			}
		}
		fmt.Printf("tenants/hostile isolation ratio %.2f (floor %.2f)\n", bestIso, tenantIsolationFloor)
		if bestIso < tenantIsolationFloor {
			failures = append(failures,
				fmt.Sprintf("isolation ratio %.2f below the %.2f floor: the hostile tenant "+
					"costs the victim more than the tenancy contract allows",
					bestIso, tenantIsolationFloor))
		}
		if len(failures) == 0 {
			fmt.Printf("ok: tenants rows within %.0f%% of %s and isolation above %.2f\n",
				tol*100, path, tenantIsolationFloor)
			return nil
		}
		if attempt < checkAttempts-1 {
			fmt.Printf("tenants gate under baseline; re-measuring to rule out host noise (attempt %d/%d)\n",
				attempt+2, checkAttempts)
		}
	}
	return fmt.Errorf("tenant isolation regressed vs %s on all %d attempts:\n  %s",
		path, checkAttempts, strings.Join(failures, "\n  "))
}

// checkPipeline re-measures the software-pipelining sweep when the
// baseline carries pipeline rows. Two gates, as for tenants: each row's
// measured Mpps must stay within tol of the baseline (one-sided,
// max-folded across attempts), and the best single-shard pipelined
// group must beat its interleaved level-sync baseline by at least
// pipelineSpeedupFloor — the self-relative reading is immune to the
// host being globally slower or faster than when the baseline was
// written. Files without pipeline rows skip the gate.
func checkPipeline(path string, ctx experiments.Context, batch int, tol float64) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base baseline
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("parsing %s: %w", path, err)
	}
	if len(base.Pipeline) == 0 {
		return nil
	}
	if base.BatchSize != 0 {
		batch = base.BatchSize
	}
	if base.Packets != 0 {
		ctx.Packets = base.Packets
	}
	if base.RuleSetSeed != 0 {
		ctx.Seed = base.RuleSetSeed
	}
	// Re-measure the exact cells the baseline tracks.
	var groups, shards []int
	seenGroup := map[int]bool{}
	seenShards := map[int]bool{}
	for _, r := range base.Pipeline {
		if r.Group > 0 && !seenGroup[r.Group] {
			seenGroup[r.Group] = true
			groups = append(groups, r.Group)
		}
		if !seenShards[r.Shards] {
			seenShards[r.Shards] = true
			shards = append(shards, r.Shards)
		}
	}
	type cell struct{ shards, group int }
	bestMpps := map[cell]float64{}
	var bestSync float64
	var failures []string
	for attempt := 0; attempt < checkAttempts; attempt++ {
		rows, _, err := experiments.Pipeline(ctx, batch, groups, shards, false)
		if err != nil {
			return err
		}
		// The self-relative gate compares critical paths within this
		// attempt's interleaved windows (max-folded across attempts).
		var syncCrit, pipeCrit float64
		for _, got := range rows {
			c := cell{got.Shards, got.Group}
			if got.MeasuredMpps > bestMpps[c] {
				bestMpps[c] = got.MeasuredMpps
			}
			if got.Shards == 1 {
				if got.Group == 0 {
					syncCrit = got.CriticalPathMpps
				} else if got.CriticalPathMpps > pipeCrit {
					pipeCrit = got.CriticalPathMpps
				}
			}
		}
		if syncCrit > 0 && pipeCrit/syncCrit > bestSync {
			bestSync = pipeCrit / syncCrit
		}
		failures = failures[:0]
		for _, want := range base.Pipeline {
			if want.MeasuredMpps == 0 {
				continue
			}
			got := bestMpps[cell{want.Shards, want.Group}]
			ratio := got / want.MeasuredMpps
			fmt.Printf("pipeline/shards=%d/group=%-4d %.2f Mpps vs baseline %.2f (%.0f%%)\n",
				want.Shards, want.Group, got, want.MeasuredMpps, ratio*100)
			if ratio < 1-tol {
				failures = append(failures,
					fmt.Sprintf("shards=%d group=%d measured %.2f Mpps < %.2f baseline - %.0f%% tolerance",
						want.Shards, want.Group, got, want.MeasuredMpps, tol*100))
			}
		}
		fmt.Printf("pipeline single-shard best critical-path speedup vs sync %.2fx (floor %.2fx)\n",
			bestSync, pipelineSpeedupFloor)
		if bestSync < pipelineSpeedupFloor {
			failures = append(failures,
				fmt.Sprintf("best single-shard pipelined group's critical path is only %.2fx the "+
					"level-sync walk's measured in the same invocation (floor %.2fx): the staged "+
					"walk stopped paying for itself",
					bestSync, pipelineSpeedupFloor))
		}
		if len(failures) == 0 {
			fmt.Printf("ok: pipeline rows within %.0f%% of %s and speedup above %.2fx\n",
				tol*100, path, pipelineSpeedupFloor)
			return nil
		}
		if attempt < checkAttempts-1 {
			fmt.Printf("pipeline gate under baseline; re-measuring to rule out host noise (attempt %d/%d)\n",
				attempt+2, checkAttempts)
		}
	}
	return fmt.Errorf("software-pipelined walk regressed vs %s on all %d attempts:\n  %s",
		path, checkAttempts, strings.Join(failures, "\n  "))
}

// checkRuleScale re-measures the scaling-by-rule-count matrix when the
// baseline carries rule_scale rows. Two gates, as for pipeline: each
// built row's critical-path Mpps must stay within tol of the baseline
// (one-sided, max-folded across attempts), and rmi must keep its
// rmiLeadFloor lead over the best tree rung at the largest size — the
// lead is self-relative within each attempt, so it holds regardless of
// how the host compares to baseline day. A baseline build_error row is a
// determinism check rather than a throughput one: the same budget shape
// must still trip the same build (a tree that suddenly builds at 100k
// means the budget or the generator changed, which deserves a fresh
// baseline, not a silent pass). Files without rule_scale rows skip the
// gate.
func checkRuleScale(path string, ctx experiments.Context, tol float64) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base baseline
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("parsing %s: %w", path, err)
	}
	if len(base.RuleScale) == 0 {
		return nil
	}
	if base.Packets != 0 {
		ctx.Packets = base.Packets
	}
	if base.RuleSetSeed != 0 {
		ctx.Seed = base.RuleSetSeed
	}
	// Re-measure the exact cells the baseline tracks.
	var sizes []int
	var algos []string
	seenSize := map[int]bool{}
	seenAlgo := map[string]bool{}
	for _, r := range base.RuleScale {
		if !seenSize[r.Rules] {
			seenSize[r.Rules] = true
			sizes = append(sizes, r.Rules)
		}
		if !seenAlgo[r.Algo] {
			seenAlgo[r.Algo] = true
			algos = append(algos, r.Algo)
		}
	}
	type cell struct {
		algo  string
		rules int
	}
	bestMpps := map[cell]float64{}
	tripped := map[cell]bool{}
	var bestLead float64
	var leadSize int
	var failures []string
	for attempt := 0; attempt < checkAttempts; attempt++ {
		rows, err := experiments.RuleScale(ctx, sizes, algos)
		if err != nil {
			return err
		}
		for _, got := range rows {
			c := cell{got.Algo, got.Rules}
			if got.CriticalPathMpps > bestMpps[c] {
				bestMpps[c] = got.CriticalPathMpps
			}
			tripped[c] = got.BuildError != ""
		}
		if lead, size := rmiLead(rows); lead > bestLead {
			bestLead, leadSize = lead, size
		}
		failures = failures[:0]
		for _, want := range base.RuleScale {
			c := cell{want.Algo, want.Rules}
			if want.BuildError != "" {
				outcome := "budget trip"
				if !tripped[c] {
					outcome = "BUILT — baseline expects a trip"
					failures = append(failures,
						fmt.Sprintf("%s at %d rules built under a budget the baseline records as tripping: "+
							"ScaledBudget or the ACL generator changed; regenerate %s",
							want.Algo, want.Rules, path))
				}
				fmt.Printf("rulescale/%-7s %7d rules: %s\n", want.Algo, want.Rules, outcome)
				continue
			}
			got := bestMpps[c]
			if tripped[c] {
				failures = append(failures,
					fmt.Sprintf("%s at %d rules tripped its budget where the baseline built it", want.Algo, want.Rules))
				continue
			}
			if want.CriticalPathMpps == 0 {
				continue
			}
			ratio := got / want.CriticalPathMpps
			fmt.Printf("rulescale/%-7s %7d rules: %.2f Mpps vs baseline %.2f (%.0f%%)\n",
				want.Algo, want.Rules, got, want.CriticalPathMpps, ratio*100)
			if ratio < 1-tol {
				failures = append(failures,
					fmt.Sprintf("%s at %d rules %.2f Mpps < %.2f baseline - %.0f%% tolerance",
						want.Algo, want.Rules, got, want.CriticalPathMpps, tol*100))
			}
		}
		fmt.Printf("rulescale rmi vs best tree at %d rules: %s (floor %.2fx)\n",
			leadSize, leadString(bestLead), rmiLeadFloor)
		if bestLead < rmiLeadFloor {
			failures = append(failures,
				fmt.Sprintf("rmi critical path is only %.2fx the best tree rung's at %d rules (floor %.2fx): "+
					"the learned rung stopped paying for itself at scale",
					bestLead, leadSize, rmiLeadFloor))
		}
		if len(failures) == 0 {
			fmt.Printf("ok: rulescale rows within %.0f%% of %s and rmi lead above %.2fx\n",
				tol*100, path, rmiLeadFloor)
			return nil
		}
		if attempt < checkAttempts-1 {
			fmt.Printf("rulescale gate under baseline; re-measuring to rule out host noise (attempt %d/%d)\n",
				attempt+2, checkAttempts)
		}
	}
	return fmt.Errorf("rule-count scaling regressed vs %s on all %d attempts:\n  %s",
		path, checkAttempts, strings.Join(failures, "\n  "))
}

// checkIOFrontend re-measures the loopback serve/load sweep when the
// baseline carries iofrontend rows. Three gates: achieved rate must stay
// above baseline − ioFrontendPPSTol (max-folded across attempts, like
// every throughput gate), each latency quantile must stay below
// baseline × (1 + ioFrontendLatTol) (min-folded — the best attempt
// clears a noise spike, a structural regression clears nothing), and
// decode errors must be exactly zero on every attempt. The latency and
// rate tolerances are deliberately wide because loopback round trips
// measure the host's syscall cost more than the classification path
// (see ioFrontendPPSTol); the gate catches multiples, not percents.
// Files without iofrontend rows skip the gate.
func checkIOFrontend(path string, ctx experiments.Context) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base baseline
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("parsing %s: %w", path, err)
	}
	if len(base.IOFrontend) == 0 {
		return nil
	}
	if base.Packets != 0 {
		ctx.Packets = base.Packets
	}
	if base.RuleSetSeed != 0 {
		ctx.Seed = base.RuleSetSeed
	}
	var rates []int
	for _, r := range base.IOFrontend {
		rates = append(rates, r.RatePPS)
	}
	bestPPS := map[int]float64{}
	bestP50 := map[int]float64{}
	bestP99 := map[int]float64{}
	bestP999 := map[int]float64{}
	var failures []string
	for attempt := 0; attempt < checkAttempts; attempt++ {
		rows, err := experiments.IOFrontend(ctx, rates)
		if err != nil {
			return err
		}
		for _, got := range rows {
			// Decode errors are deterministic correctness, not noise: any
			// attempt observing one fails immediately.
			if got.DecodeErrors > 0 {
				return fmt.Errorf("iofrontend rate %d: %d decode errors on well-formed traffic vs %s",
					got.RatePPS, got.DecodeErrors, path)
			}
			if got.AchievedPPS > bestPPS[got.RatePPS] {
				bestPPS[got.RatePPS] = got.AchievedPPS
			}
			fold := func(m map[int]float64, v float64) {
				if cur, ok := m[got.RatePPS]; !ok || v < cur {
					m[got.RatePPS] = v
				}
			}
			fold(bestP50, got.P50Us)
			fold(bestP99, got.P99Us)
			fold(bestP999, got.P999Us)
		}
		failures = failures[:0]
		for _, want := range base.IOFrontend {
			if want.AchievedPPS > 0 {
				got := bestPPS[want.RatePPS]
				ratio := got / want.AchievedPPS
				fmt.Printf("iofrontend/rate=%-6d achieved %.0f pps vs baseline %.0f (%.0f%%)\n",
					want.RatePPS, got, want.AchievedPPS, ratio*100)
				if ratio < 1-ioFrontendPPSTol {
					failures = append(failures,
						fmt.Sprintf("rate %d achieved %.0f pps < %.0f baseline - %.0f%% tolerance",
							want.RatePPS, got, want.AchievedPPS, ioFrontendPPSTol*100))
				}
			}
			quantiles := []struct {
				name string
				want float64
				got  float64
			}{
				{"p50", want.P50Us, bestP50[want.RatePPS]},
				{"p99", want.P99Us, bestP99[want.RatePPS]},
				{"p999", want.P999Us, bestP999[want.RatePPS]},
			}
			for _, q := range quantiles {
				if q.want <= 0 {
					continue
				}
				ratio := q.got / q.want
				fmt.Printf("iofrontend/rate=%-6d %-4s %.0fµs vs baseline %.0fµs (%.0f%%)\n",
					want.RatePPS, q.name, q.got, q.want, ratio*100)
				if ratio > 1+ioFrontendLatTol {
					failures = append(failures,
						fmt.Sprintf("rate %d %s %.0fµs > %.0fµs baseline + %.0f%% tolerance",
							want.RatePPS, q.name, q.got, q.want, ioFrontendLatTol*100))
				}
			}
		}
		if len(failures) == 0 {
			fmt.Printf("ok: iofrontend rows within tolerance of %s (rate -%.0f%%, latency +%.0f%%) with zero decode errors\n",
				path, ioFrontendPPSTol*100, ioFrontendLatTol*100)
			return nil
		}
		if attempt < checkAttempts-1 {
			fmt.Printf("iofrontend gate outside tolerance; re-measuring to rule out host noise (attempt %d/%d)\n",
				attempt+2, checkAttempts)
		}
	}
	return fmt.Errorf("packet I/O front end regressed vs %s on all %d attempts:\n  %s",
		path, checkAttempts, strings.Join(failures, "\n  "))
}

// leadString renders the rmi lead, where +Inf means every tree rung
// tripped its budget at that size.
func leadString(lead float64) string {
	if math.IsInf(lead, 1) {
		return "inf (no tree built)"
	}
	return fmt.Sprintf("%.2fx", lead)
}

// cpuModel best-effort reads the host CPU model so baselines from
// different machines are distinguishable. Empty when unavailable.
func cpuModel() string {
	data, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(data), "\n") {
		if name, ok := strings.CutPrefix(line, "model name"); ok {
			if _, v, ok := strings.Cut(name, ":"); ok {
				return strings.TrimSpace(v)
			}
		}
	}
	return ""
}

// round2 keeps the checked-in baseline diffable: two decimals carry all
// the signal a throughput comparison has.
func round2(v float64) float64 {
	return float64(int(v*100+0.5)) / 100
}
