// Command pcload is the load generator paired with "pcclass serve": it
// streams rule-directed pktgen traffic at a UDP classification server at
// a target rate and reports round-trip latency quantiles (p50/p99/p999
// from a log-linear histogram), achieved rate, shed rate and loss — the
// client half of the server/load-generator split.
//
//	pcload -ruleset CR04 -count 20000 -rate 50000 -target 127.0.0.1:9920
//	pcload -ruleset CR04 -count 20000 -target 127.0.0.1:9920 -verify
//	pcload -ruleset CR04 -count 5000 -pcap-out cr04.pcap
//
// -verify checks every echoed verdict against the linear-search oracle.
// -pcap-out skips the network entirely and writes the generated traffic
// as a classic libpcap capture for "pcclass serve -pcap" replay.
// -json appends a machine-readable report line for CI assertions.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/iofront"
	"repro/internal/linear"
	"repro/internal/pcapio"
	"repro/internal/pktgen"
	"repro/internal/rulegen"
	"repro/internal/rules"
	"repro/internal/wire"
)

func main() {
	var (
		rulesFile = flag.String("rules", "", "rule set file (ClassBench-style)")
		standard  = flag.String("ruleset", "", "standard set name (FW01..CR04) instead of -rules")
		count     = flag.Int("count", 10000, "packets to send")
		seed      = flag.Int64("seed", 1, "traffic seed")
		matchFrac = flag.Float64("match", pktgen.DefaultMatchFraction, "fraction of packets directed at some rule")

		target = flag.String("target", "", "server UDP address (pcclass serve -listen)")
		rate   = flag.Int("rate", 0, "target send rate in packets/sec (0 = unpaced)")
		drain  = flag.Duration("drain", 0, "reply drain window after the last send (default 300ms)")
		verify = flag.Bool("verify", false, "cross-check every echoed verdict against linear search")

		pcapOut  = flag.String("pcap-out", "", "write the traffic as a libpcap capture to this file instead of sending")
		jsonFile = flag.String("json", "", "append a JSON report line to this file ('-' for stdout)")
	)
	flag.Parse()

	rs, err := loadRules(*rulesFile, *standard)
	if err != nil {
		fatal(err)
	}
	tr, err := pktgen.Generate(rs, pktgen.Config{Count: *count, Seed: *seed, MatchFraction: *matchFrac})
	if err != nil {
		fatal(err)
	}

	if *pcapOut != "" {
		if err := writePcap(*pcapOut, tr.Headers); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote         %d packets (%s, %d rules) to %s\n", len(tr.Headers), rs.Name, rs.Len(), *pcapOut)
		return
	}
	if *target == "" {
		fatal(fmt.Errorf("need -target (or -pcap-out)"))
	}

	rep, err := iofront.RunLoad(context.Background(), iofront.LoadConfig{
		Addr:    *target,
		Headers: tr.Headers,
		Rate:    *rate,
		Drain:   *drain,
	})
	if err != nil {
		fatal(err)
	}

	fmt.Printf("target        %s (%s, %d rules)\n", *target, rs.Name, rs.Len())
	fmt.Printf("sent          %d in %v (%.0f pkt/s achieved, %d pkt/s target)\n",
		rep.Sent, rep.Elapsed.Round(time.Millisecond), rep.AchievedPPS, *rate)
	fmt.Printf("replies       %d (matched %d  no-match %d  shed %d  decode-errors %d  lost %d)\n",
		rep.Replies, rep.Matched, rep.NoMatch, rep.Shed, rep.DecodeErrors, rep.Lost)
	fmt.Printf("latency       p50 %v  p99 %v  p999 %v  mean %v\n", rep.P50, rep.P99, rep.P999, rep.Mean)
	fmt.Printf("shed rate     %.4f\n", rep.ShedRate)

	failed := false
	if *verify {
		oracle := linear.New(rs)
		mismatches := 0
		for i, v := range rep.Verdicts {
			if v == iofront.VerdictNone || v == pcapio.VerdictShed || v == pcapio.VerdictDecodeError {
				continue
			}
			h := tr.Headers[i]
			if h.Proto != rules.ProtoTCP && h.Proto != rules.ProtoUDP {
				h.SrcPort, h.DstPort = 0, 0 // ports do not survive the wire for other protocols
			}
			if int(v) != oracle.Classify(h) {
				mismatches++
			}
		}
		if mismatches > 0 {
			fmt.Printf("VERIFY FAILED: %d verdicts disagree with linear search\n", mismatches)
			failed = true
		} else {
			fmt.Println("verify        all echoed verdicts match linear search")
		}
	}

	if *jsonFile != "" {
		out := os.Stdout
		if *jsonFile != "-" {
			f, err := os.OpenFile(*jsonFile, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			out = f
		}
		enc := json.NewEncoder(out)
		if err := enc.Encode(map[string]any{
			"sent": rep.Sent, "replies": rep.Replies, "lost": rep.Lost,
			"matched": rep.Matched, "no_match": rep.NoMatch, "shed": rep.Shed,
			"decode_errors": rep.DecodeErrors,
			"achieved_pps":  rep.AchievedPPS, "shed_rate": rep.ShedRate,
			"p50_ns": rep.P50.Nanoseconds(), "p99_ns": rep.P99.Nanoseconds(),
			"p999_ns": rep.P999.Nanoseconds(), "mean_ns": rep.Mean.Nanoseconds(),
		}); err != nil {
			fatal(err)
		}
	}
	if failed {
		os.Exit(1)
	}
}

// writePcap serializes the traffic as a classic little-endian libpcap
// capture of minimum-size Ethernet frames.
func writePcap(path string, headers []rules.Header) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w, err := pcapio.NewWriter(f)
	if err != nil {
		return err
	}
	base := uint64(time.Now().UnixNano())
	for i, h := range headers {
		if err := w.WritePacket(base+uint64(i)*1000, wire.BuildFrame(h)); err != nil {
			return err
		}
	}
	return f.Sync()
}

func loadRules(file, standard string) (*rules.RuleSet, error) {
	if standard != "" {
		return rulegen.Standard(standard)
	}
	if file == "" {
		return nil, fmt.Errorf("need -rules or -ruleset")
	}
	f, err := os.Open(file)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return rules.Parse(file, f)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pcload:", err)
	os.Exit(1)
}
