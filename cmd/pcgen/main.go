// Command pcgen generates synthetic rule sets and packet traces to files.
//
// Usage:
//
//	pcgen -ruleset CR04 -out cr04.rules
//	pcgen -kind firewall -size 500 -seed 42 -out fw.rules
//	pcgen -kind acl -size 100000 -out acl100k.rules
//	pcgen -ruleset ACL1_1M -out acl1m.rules
//	pcgen -ruleset FW01 -trace 10000 -traceseed 7 -out fw01.trace
//
// Rule sets use the ClassBench-style text format (see internal/rules);
// traces are one 5-tuple per line: srcIP dstIP srcPort dstPort proto.
//
// Production-scale presets: -ruleset also accepts ACL1_1K, ACL1_10K,
// ACL1_100K and ACL1_1M — byte-deterministic ClassBench-style ACL sets of
// exactly 1k/10k/100k/1M rules (the large-set experiments' inputs). Rules
// are streamed to the output as they are generated, so emitting the 1M
// set needs memory for one rule, not a million; -kind acl with an
// arbitrary -size streams the same family at any size.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/pktgen"
	"repro/internal/rulegen"
	"repro/internal/rules"
)

func main() {
	var (
		standard  = flag.String("ruleset", "", "named set: FW01..CR04 or a large preset (ACL1_1K, ACL1_10K, ACL1_100K, ACL1_1M); overrides -kind/-size")
		kind      = flag.String("kind", "firewall", "synthetic family: firewall, core-router, random, acl")
		size      = flag.Int("size", 100, "rules to generate")
		seed      = flag.Int64("seed", 1, "rule generation seed")
		traceLen  = flag.Int("trace", 0, "if > 0, emit a packet trace of this length instead of rules")
		traceSeed = flag.Int64("traceseed", 1, "trace seed")
		match     = flag.Float64("match", pktgen.DefaultMatchFraction, "rule-directed fraction of trace headers")
		out       = flag.String("out", "-", "output file (- for stdout)")
	)
	flag.Parse()

	cfg, err := resolveConfig(*standard, *kind, *size, *seed)
	if err != nil {
		fatal(err)
	}

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}()
		w = f
	}

	if *traceLen > 0 {
		// A trace needs the whole set resident anyway (pktgen samples
		// rules at random), so the streaming path does not apply here.
		rs, err := rulegen.Generate(cfg)
		if err != nil {
			fatal(err)
		}
		tr, err := pktgen.Generate(rs, pktgen.Config{Count: *traceLen, Seed: *traceSeed, MatchFraction: *match})
		if err != nil {
			fatal(err)
		}
		bw := bufio.NewWriter(w)
		fmt.Fprintf(bw, "# trace over %s: %d packets, seed %d, match %.2f\n",
			rs.Name, tr.Len(), *traceSeed, *match)
		for _, h := range tr.Headers {
			fmt.Fprintf(bw, "%s %s %d %d %d\n",
				rules.FormatIP(h.SrcIP), rules.FormatIP(h.DstIP), h.SrcPort, h.DstPort, h.Proto)
		}
		if err := bw.Flush(); err != nil {
			fatal(err)
		}
		return
	}

	// Stream rules to the writer as they are generated — same bytes as
	// rules.RuleSet.Write on the materialized set (header line, then one
	// rule per line), without holding the set in memory.
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# rule set %s (%d rules)\n", cfg.Name, cfg.Size); err != nil {
		fatal(err)
	}
	if err := rulegen.Stream(cfg, func(r rules.Rule) error {
		_, err := fmt.Fprintln(bw, r.String())
		return err
	}); err != nil {
		fatal(err)
	}
	if err := bw.Flush(); err != nil {
		fatal(err)
	}
}

// resolveConfig turns the flags into a generation config without building
// anything, so the rules path can stream.
func resolveConfig(standard, kind string, size int, seed int64) (rulegen.Config, error) {
	if standard != "" {
		c, ok := rulegen.StandardConfig(standard)
		if !ok {
			return rulegen.Config{}, fmt.Errorf("unknown rule set %q (have %s and large presets %s)",
				standard, strings.Join(rulegen.StandardNames(), ", "), strings.Join(rulegen.LargeNames(), ", "))
		}
		return c, nil
	}
	var k rulegen.Kind
	switch kind {
	case "firewall":
		k = rulegen.Firewall
	case "core-router":
		k = rulegen.CoreRouter
	case "random":
		k = rulegen.Random
	case "acl":
		k = rulegen.ACL
	default:
		return rulegen.Config{}, fmt.Errorf("unknown kind %q (firewall, core-router, random, acl)", kind)
	}
	// Mirror Generate's default naming so streamed output is byte-identical
	// to writing the materialized set.
	return rulegen.Config{Kind: k, Size: size, Seed: seed, Name: fmt.Sprintf("%s-%d", k, size)}, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pcgen:", err)
	os.Exit(1)
}
