// Command pcgen generates synthetic rule sets and packet traces to files.
//
// Usage:
//
//	pcgen -ruleset CR04 -out cr04.rules
//	pcgen -kind firewall -size 500 -seed 42 -out fw.rules
//	pcgen -ruleset FW01 -trace 10000 -traceseed 7 -out fw01.trace
//
// Rule sets use the ClassBench-style text format (see internal/rules);
// traces are one 5-tuple per line: srcIP dstIP srcPort dstPort proto.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"repro/internal/pktgen"
	"repro/internal/rulegen"
	"repro/internal/rules"
)

func main() {
	var (
		standard  = flag.String("ruleset", "", "standard set name (FW01..CR04); overrides -kind/-size")
		kind      = flag.String("kind", "firewall", "synthetic family: firewall, core-router, random")
		size      = flag.Int("size", 100, "rules to generate")
		seed      = flag.Int64("seed", 1, "rule generation seed")
		traceLen  = flag.Int("trace", 0, "if > 0, emit a packet trace of this length instead of rules")
		traceSeed = flag.Int64("traceseed", 1, "trace seed")
		match     = flag.Float64("match", pktgen.DefaultMatchFraction, "rule-directed fraction of trace headers")
		out       = flag.String("out", "-", "output file (- for stdout)")
	)
	flag.Parse()

	rs, err := loadSet(*standard, *kind, *size, *seed)
	if err != nil {
		fatal(err)
	}

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}()
		w = f
	}

	if *traceLen > 0 {
		tr, err := pktgen.Generate(rs, pktgen.Config{Count: *traceLen, Seed: *traceSeed, MatchFraction: *match})
		if err != nil {
			fatal(err)
		}
		bw := bufio.NewWriter(w)
		fmt.Fprintf(bw, "# trace over %s: %d packets, seed %d, match %.2f\n",
			rs.Name, tr.Len(), *traceSeed, *match)
		for _, h := range tr.Headers {
			fmt.Fprintf(bw, "%s %s %d %d %d\n",
				rules.FormatIP(h.SrcIP), rules.FormatIP(h.DstIP), h.SrcPort, h.DstPort, h.Proto)
		}
		if err := bw.Flush(); err != nil {
			fatal(err)
		}
		return
	}
	if err := rs.Write(w); err != nil {
		fatal(err)
	}
}

func loadSet(standard, kind string, size int, seed int64) (*rules.RuleSet, error) {
	if standard != "" {
		return rulegen.Standard(standard)
	}
	var k rulegen.Kind
	switch kind {
	case "firewall":
		k = rulegen.Firewall
	case "core-router":
		k = rulegen.CoreRouter
	case "random":
		k = rulegen.Random
	default:
		return nil, fmt.Errorf("unknown kind %q (firewall, core-router, random)", kind)
	}
	return rulegen.Generate(rulegen.Config{Kind: k, Size: size, Seed: seed})
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pcgen:", err)
	os.Exit(1)
}
