// Command npsim runs the full packet application (Figure 5 of the paper)
// on the modelled IXP2850 and prints the Table 3 microengine allocation,
// the Table 4 channel headroom, and the simulated throughput — for the
// multiprocessing mapping and, with -mapping pipeline, context pipelining.
//
// Usage:
//
//	npsim -ruleset CR04 -mes 9
//	npsim -ruleset FW01 -algo hsm -mapping pipeline
//	npsim -ruleset FW01 -imagecheck            # verify the SRAM image round-trips
//	npsim -ruleset FW01 -corruptbit 12345      # prove the loader refuses corruption
//
// -imagecheck runs the control-plane handoff self-test: the classifier's
// SRAM image is serialized and reloaded through the checksummed loader.
// -corruptbit flips one bit of the serialized image first and expects the
// loader to refuse it — the graceful-degradation path for a corrupted
// image handed to the XScale core.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/expcuts"
	"repro/internal/faultinject"
	"repro/internal/hicuts"
	"repro/internal/hsm"
	"repro/internal/memlayout"
	"repro/internal/nptrace"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/pktgen"
	"repro/internal/rulegen"
	"repro/internal/rules"
)

type traced interface {
	Name() string
	MemoryBytes() int
	Program(h rules.Header) nptrace.Program
	Image() *memlayout.Image
}

func main() {
	var (
		standard = flag.String("ruleset", "CR04", "standard set name (FW01..CR04)")
		algo     = flag.String("algo", "expcuts", "expcuts, hicuts, hsm")
		mes      = flag.Int("mes", 9, "classification MEs (1..9)")
		packets  = flag.Int("packets", 25000, "packets to simulate")
		traceLen = flag.Int("trace", 2000, "distinct headers")
		seed     = flag.Int64("seed", 1, "trace seed")
		mapping  = flag.String("mapping", "multi", "multi (multiprocessing) or pipeline (context pipelining)")
		imgCheck = flag.Bool("imagecheck", false, "round-trip the SRAM image through the checksummed loader and exit")
		corrupt  = flag.Int("corruptbit", -1, "flip this bit of the serialized image before reloading (expects refusal); implies -imagecheck")

		metricsAddr = flag.String("metrics", "", "serve Prometheus /metrics, /debug/vars and /events on this addr")
		metricsHold = flag.Duration("metrics-hold", 0, "keep the process (and -metrics endpoint) alive this long after the report")
	)
	flag.Parse()

	// Simulation results land here after the run; the registry collector
	// re-emits them on every scrape (a finished simulation is immutable).
	var simSamples []obs.Sample
	var reg *obs.Registry
	if *metricsAddr != "" {
		reg = obs.NewRegistry()
		reg.SetEvents(obs.NewRing(obs.DefaultRingSize))
		reg.EnableExpvar()
		reg.Register(func(emit func(obs.Sample)) {
			for _, s := range simSamples {
				emit(s)
			}
		})
		srv, err := reg.Serve(*metricsAddr)
		if err != nil {
			fatal(err)
		}
		defer srv.Close()
		fmt.Printf("metrics on http://%s/metrics\n", srv.Addr())
	}

	rs, err := rulegen.Standard(*standard)
	if err != nil {
		fatal(err)
	}
	tr, err := pktgen.Generate(rs, pktgen.Config{Count: *traceLen, Seed: *seed, MatchFraction: 0.9})
	if err != nil {
		fatal(err)
	}
	var cl traced
	switch *algo {
	case "expcuts":
		cl, err = expcuts.New(rs, expcuts.Config{Headroom: memlayout.PaperHeadroom})
	case "hicuts":
		cl, err = hicuts.New(rs, hicuts.Config{Headroom: memlayout.PaperHeadroom})
	case "hsm":
		cl, err = hsm.New(rs, hsm.Config{})
	default:
		err = fmt.Errorf("unknown algorithm %q", *algo)
	}
	if err != nil {
		fatal(err)
	}
	if *imgCheck || *corrupt >= 0 {
		imageCheck(cl, *corrupt)
		return
	}
	progs := make([]nptrace.Program, len(tr.Headers))
	for i, h := range tr.Headers {
		progs[i] = cl.Program(h)
	}

	app := pipeline.DefaultAppConfig()
	app.ClassifyMEs = *mes

	fmt.Printf("application mapping (Table 3), %s on %s:\n", cl.Name(), rs.Name)
	for _, a := range app.Allocation() {
		fmt.Printf("  %-11s %d MEs\n", a.Role, a.MEs)
	}
	fmt.Printf("classification threads: %d\n", app.Threads())
	fmt.Println("SRAM bandwidth headroom (Table 4):")
	for c, h := range app.Headroom {
		fmt.Printf("  SRAM#%d  utilization %3.0f%%  headroom %3.0f%%\n", c, (1-h)*100, h*100)
	}

	gauge := func(name, help string, labels []obs.Label, v float64) {
		simSamples = append(simSamples, obs.Sample{Name: name, Help: help, Type: "gauge", Labels: labels, Value: v})
	}
	if t, ok := cl.(*expcuts.Tree); ok {
		st := t.Stats()
		gauge("pc_build_nodes", "Unique internal nodes in the classifier tree.", nil, float64(st.Nodes))
		gauge("pc_build_depth", "Explicit tree depth.", nil, float64(st.Depth))
		gauge("pc_build_memory_bytes", "Serialized SRAM footprint.", nil, float64(t.MemoryBytes()))
		gauge("pc_build_worst_case_accesses", "Worst-case SRAM accesses per lookup.", nil, float64(st.WorstCaseAccesses))
	}

	switch *mapping {
	case "multi":
		r, err := pipeline.RunMultiprocessing(app, progs, *packets)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\nmultiprocessing: %.0f Mbps (%.2f Mpps, %d packets)\n",
			r.ThroughputMbps, r.PPS/1e6, r.Packets)
		fmt.Printf("  channel utilization: %.2f %.2f %.2f %.2f   ME utilization: %.2f\n",
			r.ChannelUtilization[0], r.ChannelUtilization[1],
			r.ChannelUtilization[2], r.ChannelUtilization[3], r.MEUtilization)
		gauge("pc_npsim_throughput_mbps", "Simulated multiprocessing throughput.", nil, r.ThroughputMbps)
		gauge("pc_npsim_me_utilization", "Simulated classification-ME utilization.", nil, r.MEUtilization)
		for c, u := range r.ChannelUtilization {
			gauge("pc_npsim_channel_utilization", "Simulated SRAM channel utilization.",
				[]obs.Label{{Key: "channel", Value: fmt.Sprintf("%d", c)}}, u)
		}
	case "pipeline":
		r, err := pipeline.RunContextPipelining(app, progs, *packets)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\ncontext pipelining: %.0f Mbps (bottleneck stage %d of %d)\n",
			r.ThroughputMbps, r.BottleneckStage, len(r.Stages))
		for i, s := range r.Stages {
			fmt.Printf("  stage %d: %.0f Mbps offered\n", i, s.OfferedMbps)
		}
		gauge("pc_npsim_throughput_mbps", "Simulated context-pipelining throughput.", nil, r.ThroughputMbps)
		gauge("pc_npsim_bottleneck_stage", "Pipeline stage bounding throughput.", nil, float64(r.BottleneckStage))
	default:
		fatal(fmt.Errorf("unknown mapping %q (multi, pipeline)", *mapping))
	}
	if *metricsHold > 0 {
		time.Sleep(*metricsHold)
	}
}

// imageCheck serializes the classifier's SRAM image and reloads it through
// the checksummed loader, optionally after flipping one bit. A clean image
// must round-trip; a corrupted one must be refused with an error — either
// other outcome is a hard failure.
func imageCheck(cl traced, corruptBit int) {
	var buf bytes.Buffer
	if err := cl.Image().Save(&buf); err != nil {
		fatal(fmt.Errorf("serializing image: %w", err))
	}
	data := buf.Bytes()
	fmt.Printf("image         %s, %d bytes serialized\n", cl.Name(), len(data))
	if corruptBit >= 0 {
		bit := corruptBit % (len(data) * 8)
		data = faultinject.FlipBit(data, bit)
		_, err := memlayout.LoadImage(bytes.NewReader(data))
		if err == nil {
			fatal(fmt.Errorf("bit %d flipped but the loader accepted the image", bit))
		}
		fmt.Printf("corruption    bit %d flipped: loader refused the image (good)\n", bit)
		fmt.Printf("              %v\n", err)
		return
	}
	im, err := memlayout.LoadImage(bytes.NewReader(data))
	if err != nil {
		fatal(fmt.Errorf("reloading clean image: %w", err))
	}
	if got, want := im.TotalWords(), cl.Image().TotalWords(); got != want {
		fatal(fmt.Errorf("round-trip changed the image: %d words, want %d", got, want))
	}
	fmt.Printf("round-trip    ok: %d words across %d channels\n", im.TotalWords(), memlayout.NumChannels)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "npsim:", err)
	os.Exit(1)
}
