// Package repro is the public API of this reproduction of "Towards
// Optimized Packet Classification Algorithms for Multi-Core Network
// Processors" (Qi et al., ICPP 2007).
//
// It exposes four layers:
//
//   - Rules and packets: the 5-tuple rule model, a ClassBench-style text
//     format, synthetic generators for the paper's FW01–CR04 rule sets,
//     and seeded packet traces.
//   - Classifiers: ExpCuts (the paper's contribution), the HiCuts and HSM
//     baselines, the RFC extension, and reference linear search. Every
//     classifier answers Classify exactly like priority linear search.
//   - The NP model: classifiers serialize into word-addressed SRAM images
//     and record per-packet access programs; SimulateThroughput replays
//     them on a deterministic model of the Intel IXP2850 (microengines,
//     hardware threads, QDR SRAM channels).
//   - Experiments: drivers that regenerate every table and figure of the
//     paper's evaluation (see internal/experiments via cmd/pcbench, and
//     EXPERIMENTS.md for recorded results).
//
// Quick start:
//
//	rs, _ := repro.StandardRuleSet("CR04")
//	tree, _ := repro.NewExpCuts(rs, repro.ExpCutsConfig{})
//	match := tree.Classify(repro.Header{SrcIP: 0x0A000001, Proto: repro.ProtoTCP})
package repro

import (
	"io"

	"repro/internal/engine"
	"repro/internal/expcuts"
	"repro/internal/flowcache"
	"repro/internal/hicuts"
	"repro/internal/hsm"
	"repro/internal/hypercuts"
	"repro/internal/linear"
	"repro/internal/memlayout"
	"repro/internal/npsim"
	"repro/internal/nptrace"
	"repro/internal/pipeline"
	"repro/internal/pktgen"
	"repro/internal/rfc"
	"repro/internal/rulegen"
	"repro/internal/rules"
	"repro/internal/update"
	"repro/internal/wire"
)

// Core rule and packet types.
type (
	// Header is a decoded 5-tuple packet header.
	Header = rules.Header
	// Rule is one classification rule; see the rules package for field
	// semantics.
	Rule = rules.Rule
	// RuleSet is an ordered rule list; index order is priority order.
	RuleSet = rules.RuleSet
	// Prefix is an IPv4 prefix match.
	Prefix = rules.Prefix
	// PortRange is an inclusive port range.
	PortRange = rules.PortRange
	// ProtoMatch matches the protocol field exactly or as a wildcard.
	ProtoMatch = rules.ProtoMatch
	// Action is a rule disposition (permit, deny, traffic classes).
	Action = rules.Action
	// Trace is a generated packet trace.
	Trace = pktgen.Trace
)

// Common protocol numbers and rule actions, re-exported for examples and
// applications.
const (
	ProtoICMP = rules.ProtoICMP
	ProtoTCP  = rules.ProtoTCP
	ProtoUDP  = rules.ProtoUDP

	ActionPermit = rules.ActionPermit
	ActionDeny   = rules.ActionDeny
)

// Classifier is the behaviour every packet classifier in this library
// shares: first-match classification (−1 for no match), a name for
// reports, and the serialized SRAM footprint.
type Classifier interface {
	Name() string
	Classify(h Header) int
	MemoryBytes() int
}

// TracedClassifier additionally records the per-packet SRAM access program
// the NP simulator replays.
type TracedClassifier interface {
	Classifier
	Program(h Header) nptrace.Program
}

// Interface conformance checks for every classifier.
var (
	_ TracedClassifier = (*ExpCuts)(nil)
	_ TracedClassifier = (*HiCuts)(nil)
	_ TracedClassifier = (*HSM)(nil)
	_ TracedClassifier = (*RFC)(nil)
	_ TracedClassifier = (*HyperCuts)(nil)
	_ TracedClassifier = (*Linear)(nil)
)

// Classifier types and their configurations.
type (
	// ExpCuts is the paper's classifier: fixed-stride explicit cuttings
	// with HABS/CPA space aggregation.
	ExpCuts = expcuts.Tree
	// ExpCutsConfig configures ExpCuts (stride w, HABS width v, sharing
	// mode, SRAM channels). The zero value is the paper's configuration.
	ExpCutsConfig = expcuts.Config
	// HiCuts is the decision-tree baseline with binth leaves.
	HiCuts = hicuts.Tree
	// HiCutsConfig configures HiCuts; the zero value matches the paper
	// (binth = 8, spfac = 4).
	HiCutsConfig = hicuts.Config
	// HSM is the field-independent hierarchical space mapping baseline.
	HSM = hsm.Classifier
	// HSMConfig configures HSM.
	HSMConfig = hsm.Config
	// HyperCuts is the multi-dimensional-cutting extension baseline.
	HyperCuts = hypercuts.Tree
	// HyperCutsConfig configures HyperCuts.
	HyperCutsConfig = hypercuts.Config
	// RFC is the Recursive Flow Classification extension.
	RFC = rfc.Classifier
	// RFCConfig configures RFC.
	RFCConfig = rfc.Config
	// Linear is the reference linear-search classifier.
	Linear = linear.Classifier
)

// NewExpCuts builds the paper's classifier over the rule set.
func NewExpCuts(rs *RuleSet, cfg ExpCutsConfig) (*ExpCuts, error) {
	return expcuts.New(rs, cfg)
}

// NewHiCuts builds the HiCuts baseline.
func NewHiCuts(rs *RuleSet, cfg HiCutsConfig) (*HiCuts, error) {
	return hicuts.New(rs, cfg)
}

// NewHSM builds the HSM baseline.
func NewHSM(rs *RuleSet, cfg HSMConfig) (*HSM, error) {
	return hsm.New(rs, cfg)
}

// NewHyperCuts builds the HyperCuts extension baseline.
func NewHyperCuts(rs *RuleSet, cfg HyperCutsConfig) (*HyperCuts, error) {
	return hypercuts.New(rs, cfg)
}

// NewRFC builds the RFC extension classifier.
func NewRFC(rs *RuleSet, cfg RFCConfig) (*RFC, error) {
	return rfc.New(rs, cfg)
}

// NewLinear builds the reference linear-search classifier.
func NewLinear(rs *RuleSet) *Linear {
	return linear.New(rs)
}

// Rule-set construction and I/O.

// NewRuleSet builds a named rule set from rules in priority order.
func NewRuleSet(name string, rs []Rule) *RuleSet {
	return rules.NewRuleSet(name, rs)
}

// ParseRuleSet reads the ClassBench-style textual rule format.
func ParseRuleSet(name string, r io.Reader) (*RuleSet, error) {
	return rules.Parse(name, r)
}

// StandardRuleSet generates one of the paper's seven named rule sets
// (FW01–FW03, CR01–CR04) — deterministic synthetic equivalents of the
// evaluation sets (see DESIGN.md for the substitution rationale).
func StandardRuleSet(name string) (*RuleSet, error) {
	return rulegen.Standard(name)
}

// StandardRuleSetNames lists the seven set names in the paper's order.
func StandardRuleSetNames() []string {
	return rulegen.StandardNames()
}

// RuleSetKind selects a synthetic rule-set family for GenerateRuleSet.
type RuleSetKind = rulegen.Kind

// Synthetic rule-set families.
const (
	FirewallRules   = rulegen.Firewall
	CoreRouterRules = rulegen.CoreRouter
	RandomRules     = rulegen.Random
)

// GenerateRuleSet produces a deterministic synthetic rule set.
func GenerateRuleSet(kind RuleSetKind, size int, seed int64) (*RuleSet, error) {
	return rulegen.Generate(rulegen.Config{Kind: kind, Size: size, Seed: seed})
}

// GenerateTrace produces a deterministic packet trace over the rule set;
// matchFraction is the share of headers sampled from rule boxes.
func GenerateTrace(rs *RuleSet, count int, seed int64, matchFraction float64) (*Trace, error) {
	return pktgen.Generate(rs, pktgen.Config{Count: count, Seed: seed, MatchFraction: matchFraction})
}

// NP simulation.
type (
	// NPConfig is the IXP2850 model configuration; the zero value (or
	// DefaultNPConfig) is the paper's platform at 71 threads.
	NPConfig = npsim.Config
	// NPResult reports a simulation run.
	NPResult = npsim.Result
	// Headroom is the per-channel SRAM bandwidth share available to
	// classification.
	Headroom = memlayout.Headroom
	// AppConfig maps the full packet application onto the NP.
	AppConfig = pipeline.AppConfig
)

// DefaultNPConfig is the paper's platform: 1.4 GHz MEs, 71 threads, four
// QDR SRAM channels.
func DefaultNPConfig() NPConfig {
	return npsim.DefaultConfig()
}

// PaperHeadroom is the Table 4 bandwidth headroom of the full application.
var PaperHeadroom = memlayout.PaperHeadroom

// SimulateThroughput records access programs for the headers and replays
// them on the NP model, returning the simulated classification throughput.
func SimulateThroughput(cl TracedClassifier, headers []Header, cfg NPConfig, packets int) (NPResult, error) {
	progs := make([]nptrace.Program, len(headers))
	for i, h := range headers {
		progs[i] = cl.Program(h)
	}
	return npsim.Run(cfg, progs, packets)
}

// DefaultAppConfig is the paper's full application mapping (Table 3).
func DefaultAppConfig() AppConfig {
	return pipeline.DefaultAppConfig()
}

// SimulateApplication runs the classifier inside the full application with
// the multiprocessing mapping (the paper's configuration).
func SimulateApplication(cl TracedClassifier, headers []Header, app AppConfig, packets int) (NPResult, error) {
	progs := make([]nptrace.Program, len(headers))
	for i, h := range headers {
		progs[i] = cl.Program(h)
	}
	return pipeline.RunMultiprocessing(app, progs, packets)
}

// Concurrent classification on the host (internal/engine): a worker pool
// of goroutines with sequence-numbered, order-preserving result delivery —
// the software analogue of §3.2's multithreading-with-packet-ordering.
type (
	// EngineConfig configures the concurrent classification engine.
	EngineConfig = engine.Config
	// EngineResult is one classified packet with its arrival sequence.
	EngineResult = engine.Result
	// EngineStats reports an engine run.
	EngineStats = engine.Stats
)

// Lookuper is the minimal lookup interface the engine and flow cache
// accept: any Classifier qualifies, and so do wrappers like UpdateManager
// and FlowCache themselves.
type Lookuper interface {
	Classify(h Header) int
}

// RunEngine classifies headers on a goroutine pool, emitting results in
// arrival order when cfg.PreserveOrder is set.
func RunEngine(cl Lookuper, cfg EngineConfig, headers []Header, emit func(EngineResult)) (EngineStats, error) {
	return engine.Run(cl, cfg, headers, emit)
}

// Wire-format helpers (internal/wire): 64-byte Ethernet/IPv4 frames.

// BuildFrame serializes a header into a minimum-size Ethernet/IPv4 frame.
func BuildFrame(h Header) []byte { return wire.BuildFrame(h) }

// ParseFrame recovers the 5-tuple from an Ethernet/IPv4 frame, verifying
// the IPv4 header checksum.
func ParseFrame(f []byte) (Header, error) { return wire.ParseFrame(f) }

// Dynamic updates (internal/update): the authoritative rule list with
// atomic, RCU-style generation swaps — lookups stay wait-free while a new
// classifier generation is built off the fast path.
type (
	// UpdateManager owns a rule list and its live classifier generation.
	UpdateManager = update.Manager
	// UpdateOp is one insert or delete against the rule list.
	UpdateOp = update.Op
)

// NewUpdateManager wraps a rule set with dynamic-update support; the
// builder constructs each generation (e.g. close over NewExpCuts).
func NewUpdateManager(rs *RuleSet, build func(*RuleSet) (Classifier, error)) (*UpdateManager, error) {
	return update.NewManager(rs, func(rs *RuleSet) (update.Classifier, error) {
		return build(rs)
	})
}

// InsertRuleAt builds an insert op at the given priority position.
func InsertRuleAt(pos int, r Rule) UpdateOp { return update.InsertAt(pos, r) }

// DeleteRuleAt builds a delete op for the given priority position.
func DeleteRuleAt(pos int) UpdateOp { return update.DeleteAt(pos) }

// FlowCache is a bounded exact-match LRU cache in front of a classifier
// (internal/flowcache); results are identical, repeats skip the lookup.
type FlowCache = flowcache.Cache

// NewFlowCache wraps the classifier with a flow cache of the given
// capacity.
func NewFlowCache(cl Lookuper, capacity int) (*FlowCache, error) {
	return flowcache.New(cl, capacity)
}
