package hypercuts

import (
	"context"
	"errors"
	"testing"

	"repro/internal/buildgov"
	"repro/internal/rules"
)

// Same contract as hicuts: the recursion refuses to grow past the
// 104-bit ceiling regardless of configuration.
func TestHardDepthGuardFiresDirectly(t *testing.T) {
	rs := rules.NewRuleSet("depth", []rules.Rule{{
		SrcPort: rules.PortRange{Lo: 0, Hi: 65535},
		DstPort: rules.PortRange{Lo: 0, Hi: 65535},
		Proto:   rules.ProtoMatch{Wildcard: true},
	}})
	tr := &Tree{cfg: Config{Binth: 1}, rs: rs, gov: buildgov.Start(context.Background(), nil)}
	_, err := tr.build(rules.FullBox(), []int{0}, HardMaxDepth+1)
	if !errors.Is(err, ErrDepthExceeded) {
		t.Fatalf("build at depth %d returned %v, want ErrDepthExceeded", HardMaxDepth+1, err)
	}
}
