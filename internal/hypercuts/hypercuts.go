// Package hypercuts implements HyperCuts (Singh, Baboescu, Varghese &
// Wang, SIGCOMM 2003), the second field-dependent baseline the paper's
// taxonomy cites (§2). Where HiCuts cuts one dimension per node, HyperCuts
// cuts up to two dimensions *simultaneously*, flattening the tree: a node
// with 2^a × 2^b cells replaces two HiCuts levels, trading a wider pointer
// array for a shorter dependent-access chain.
//
// The implementation mirrors internal/hicuts where the algorithms agree
// (power-of-two aligned boxes, box-independent child indexing, safe sibling
// aggregation by cell-relative rule geometry, binth leaves with batched
// record fetch from a shared rule table) and differs in node structure and
// the dimension-selection heuristic (dimensions with above-average distinct
// projections are cut together).
package hypercuts

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"math/bits"

	"repro/internal/buildgov"
	"repro/internal/memlayout"
	"repro/internal/rules"
)

// HardMaxDepth mirrors hicuts.HardMaxDepth: every cut halves at least one
// dimension, so no correct build recurses past rules.KeyBits levels.
const HardMaxDepth = rules.KeyBits

// ErrDepthExceeded reports a build that recursed past HardMaxDepth.
var ErrDepthExceeded = errors.New("hypercuts: recursion exceeded hard depth limit")

// MaxCutDims is the number of dimensions one node may cut simultaneously.
const MaxCutDims = 2

// Config parameterizes tree construction.
type Config struct {
	// Binth is the leaf threshold (rules per leaf linearly searched).
	Binth int
	// SpFac bounds per-node fan-out: cuts grow while
	// Σ(child counts) + cells <= SpFac × rules.
	SpFac float64
	// MaxCells caps the total cells (product over cut dimensions) of one
	// node.
	MaxCells int
	// MaxDepth is a safety cap.
	MaxDepth int
	// PruneCovered enables rule-overlap elimination (HyperCuts includes
	// it by default; it is what keeps multi-dimensional cutting compact).
	PruneCovered *bool
	// Channels is the number of SRAM channels (1..4).
	Channels int
	// Headroom weights the channel allocation.
	Headroom memlayout.Headroom
}

// DefaultConfig mirrors the published configuration: binth = 8, space
// factor 4, overlap pruning on.
func DefaultConfig() Config {
	prune := true
	return Config{
		Binth:        8,
		SpFac:        4.0,
		MaxCells:     256,
		MaxDepth:     48,
		PruneCovered: &prune,
		Channels:     memlayout.NumChannels,
		Headroom:     memlayout.UniformHeadroom,
	}
}

func (c *Config) fillDefaults() error {
	d := DefaultConfig()
	if c.Binth == 0 {
		c.Binth = d.Binth
	}
	if c.SpFac == 0 {
		c.SpFac = d.SpFac
	}
	if c.MaxCells == 0 {
		c.MaxCells = d.MaxCells
	}
	if c.MaxDepth == 0 {
		c.MaxDepth = d.MaxDepth
	}
	if c.PruneCovered == nil {
		c.PruneCovered = d.PruneCovered
	}
	if c.Channels == 0 {
		c.Channels = d.Channels
	}
	if c.Headroom == (memlayout.Headroom{}) {
		c.Headroom = d.Headroom
	}
	if c.Binth < 1 {
		return fmt.Errorf("hypercuts: binth must be >= 1, got %d", c.Binth)
	}
	if c.SpFac < 1 {
		return fmt.Errorf("hypercuts: spfac must be >= 1, got %v", c.SpFac)
	}
	if c.MaxCells < 2 || bits.OnesCount(uint(c.MaxCells)) != 1 {
		return fmt.Errorf("hypercuts: maxcells must be a power of two >= 2, got %d", c.MaxCells)
	}
	if c.Channels < 1 || c.Channels > memlayout.NumChannels {
		return fmt.Errorf("hypercuts: channels %d out of [1,%d]", c.Channels, memlayout.NumChannels)
	}
	return nil
}

// cutSpec describes one cut dimension of a node.
type cutSpec struct {
	dim    rules.Dim
	log2nc uint // cells along this dimension
	log2cw uint // cell width along this dimension
}

// node is one tree node.
type node struct {
	depth    int
	cuts     []cutSpec // 1..MaxCutDims entries
	children []*node   // len = product of cells

	leaf    bool
	ruleIdx []int

	addr    uint32
	channel uint8
	placed  bool
}

// cells returns the node's total child-cell count.
func (n *node) cells() int {
	total := 1
	for _, c := range n.cuts {
		total <<= c.log2nc
	}
	return total
}

// BuildStats reports tree shape metrics.
type BuildStats struct {
	Nodes, Leaves     int
	MaxDepth          int
	MaxLeafRules      int
	MultiDimNodes     int // nodes cutting two dimensions at once
	WorstCaseAccesses int
	MemoryWords       int
}

// Tree is a built HyperCuts classifier.
type Tree struct {
	cfg   Config
	rs    *rules.RuleSet
	gov   *buildgov.Governor
	root  *node
	stats BuildStats

	image    *memlayout.Image
	rootPtr  uint32
	ruleCh   uint8
	ruleBase uint32

	// dimSeen is chooseCuts's distinct-projection scratch, hoisted here so
	// the build allocates it once instead of once per dimension per node.
	dimSeen map[rules.Span]bool
}

// New builds a HyperCuts tree over the rule set and serializes it.
func New(rs *rules.RuleSet, cfg Config) (*Tree, error) {
	return NewCtx(context.Background(), rs, cfg, nil)
}

// NewCtx is New under governance: every recursion step checks ctx and
// charges nodes and estimated bytes against budget (nil = ctx only), so
// an adversarial rule set aborts the build with a typed
// *buildgov.BudgetError in bounded time.
func NewCtx(ctx context.Context, rs *rules.RuleSet, cfg Config, budget *buildgov.Budget) (*Tree, error) {
	if err := cfg.fillDefaults(); err != nil {
		return nil, err
	}
	if err := rs.Validate(); err != nil {
		return nil, err
	}
	t := &Tree{cfg: cfg, rs: rs, gov: buildgov.Start(ctx, budget)}
	all := make([]int, rs.Len())
	for i := range all {
		all[i] = i
	}
	root, err := t.build(rules.FullBox(), all, 0)
	if err != nil {
		return nil, err
	}
	t.root = root
	t.collectStats()
	if err := t.serialize(); err != nil {
		return nil, err
	}
	t.stats.MemoryWords = t.image.TotalWords()
	return t, nil
}

func (t *Tree) build(box rules.Box, ruleIdx []int, depth int) (*node, error) {
	if depth > HardMaxDepth {
		return nil, fmt.Errorf("%w: depth %d on rule set %q", ErrDepthExceeded, depth, t.rs.Name)
	}
	if err := t.gov.Check(); err != nil {
		return nil, err
	}
	if *t.cfg.PruneCovered {
		for k, ri := range ruleIdx {
			if t.rs.Rules[ri].Box().Covers(box) {
				ruleIdx = ruleIdx[:k+1]
				break
			}
		}
	}
	if len(ruleIdx) <= t.cfg.Binth || depth >= t.cfg.MaxDepth {
		return t.leaf(ruleIdx, depth)
	}
	cuts := t.chooseCuts(box, ruleIdx)
	if len(cuts) == 0 {
		return t.leaf(ruleIdx, depth)
	}

	n := &node{depth: depth, cuts: cuts}
	total := n.cells()
	n.children = make([]*node, total)
	if err := t.gov.Nodes(1, int64(total)*8+int64(len(ruleIdx))*8+nodeOverheadBytes); err != nil {
		return nil, err
	}

	// Distribute rules: for each rule compute the per-dimension cell
	// ranges and enumerate their cross product.
	cellsRules := make([][]int, total)
	for _, ri := range ruleIdx {
		ranges := make([][2]int, len(cuts))
		for d, c := range cuts {
			lo, hi := cellRange(t.rs.Rules[ri].Span(c.dim), box[c.dim], c.log2cw, 1<<c.log2nc)
			ranges[d] = [2]int{lo, hi}
		}
		forEachCell(ranges, cuts, func(linear int) {
			cellsRules[linear] = append(cellsRules[linear], ri)
		})
	}

	shared := make(map[string]*node)
	var sig []byte
	for cell := 0; cell < total; cell++ {
		cellBox := t.cellBox(box, cuts, cell)
		sig = sig[:0]
		for _, ri := range cellsRules[cell] {
			sig = binary.AppendUvarint(sig, uint64(ri))
			for _, c := range cuts {
				clip, _ := t.rs.Rules[ri].Span(c.dim).Intersect(cellBox[c.dim])
				sig = binary.AppendUvarint(sig, uint64(clip.Lo-cellBox[c.dim].Lo))
				sig = binary.AppendUvarint(sig, uint64(clip.Hi-cellBox[c.dim].Lo))
			}
		}
		key := string(sig)
		if child, ok := shared[key]; ok {
			n.children[cell] = child
			continue
		}
		child, err := t.build(cellBox, cellsRules[cell], depth+1)
		if err != nil {
			return nil, err
		}
		shared[key] = child
		n.children[cell] = child
	}
	return n, nil
}

// leaf builds a leaf node, charging it against the governor.
func (t *Tree) leaf(ruleIdx []int, depth int) (*node, error) {
	if err := t.gov.Nodes(1, int64(len(ruleIdx))*8+nodeOverheadBytes); err != nil {
		return nil, err
	}
	return &node{leaf: true, ruleIdx: ruleIdx, depth: depth}, nil
}

// nodeOverheadBytes estimates the fixed per-node heap overhead charged to
// the governor alongside the variable-size arrays.
const nodeOverheadBytes = 96

// cellBox returns the box of the linear cell index.
func (t *Tree) cellBox(box rules.Box, cuts []cutSpec, cell int) rules.Box {
	out := box
	// The linear index is row-major over the cut dims: the first cut is
	// the most significant.
	idx := cell
	for d := len(cuts) - 1; d >= 0; d-- {
		c := cuts[d]
		nc := 1 << c.log2nc
		ci := idx & (nc - 1)
		idx >>= c.log2nc
		out[c.dim] = rules.Span{
			Lo: box[c.dim].Lo + uint32(uint64(ci)<<c.log2cw),
			Hi: box[c.dim].Lo + uint32(uint64(ci+1)<<c.log2cw) - 1,
		}
	}
	return out
}

// forEachCell enumerates the cross product of per-dimension cell ranges,
// invoking fn with each linear index (row-major, first cut most
// significant).
func forEachCell(ranges [][2]int, cuts []cutSpec, fn func(linear int)) {
	var rec func(d, acc int)
	rec = func(d, acc int) {
		if d == len(ranges) {
			fn(acc)
			return
		}
		for c := ranges[d][0]; c <= ranges[d][1]; c++ {
			rec(d+1, acc<<cuts[d].log2nc|c)
		}
	}
	rec(0, 0)
}

// chooseCuts picks up to MaxCutDims dimensions with above-average distinct
// projections and grows their cut counts round-robin within the space
// budget.
func (t *Tree) chooseCuts(box rules.Box, ruleIdx []int) []cutSpec {
	// Distinct clipped projections per dimension.
	var distinct [rules.NumDims]int
	if t.dimSeen == nil {
		t.dimSeen = make(map[rules.Span]bool, len(ruleIdx))
	}
	seen := t.dimSeen
	for d := 0; d < rules.NumDims; d++ {
		if box[d].Size() < 2 {
			continue
		}
		clear(seen)
		for _, ri := range ruleIdx {
			if clip, ok := t.rs.Rules[ri].Span(rules.Dim(d)).Intersect(box[d]); ok {
				seen[clip] = true
			}
		}
		distinct[d] = len(seen)
	}
	// Mean over cuttable dimensions with at least 2 projections.
	sum, cnt := 0, 0
	for d := 0; d < rules.NumDims; d++ {
		if distinct[d] > 1 {
			sum += distinct[d]
			cnt++
		}
	}
	if cnt == 0 {
		return nil
	}
	mean := float64(sum) / float64(cnt)
	var dims []rules.Dim
	for d := 0; d < rules.NumDims; d++ {
		if distinct[d] > 1 && float64(distinct[d]) >= mean {
			dims = append(dims, rules.Dim(d))
		}
		if len(dims) == MaxCutDims {
			break
		}
	}
	if len(dims) == 0 {
		return nil
	}

	cuts := make([]cutSpec, len(dims))
	for i, d := range dims {
		cuts[i] = cutSpec{dim: d, log2nc: 1}
		cuts[i].log2cw = uint(bits.TrailingZeros64(box[d].Size())) - 1
	}
	budget := t.cfg.SpFac * float64(len(ruleIdx))
	// Grow cut counts round-robin while the space measure stays within
	// budget and the cell cap is respected.
	for {
		grew := false
		for i := range cuts {
			next := cuts[i]
			next.log2nc++
			next.log2cw--
			if uint64(1)<<next.log2nc > box[cuts[i].dim].Size() {
				continue
			}
			// Trial in place: swap the grown spec in, evaluate, and swap
			// back on rejection — no per-iteration trial slice.
			prev := cuts[i]
			cuts[i] = next
			if totalCells(cuts) > t.cfg.MaxCells || t.spaceMeasure(box, ruleIdx, cuts) > budget {
				cuts[i] = prev
				continue
			}
			grew = true
		}
		if !grew {
			break
		}
	}
	return cuts
}

func totalCells(cuts []cutSpec) int {
	total := 1
	for _, c := range cuts {
		total <<= c.log2nc
	}
	return total
}

// spaceMeasure computes Σ over cells of rule counts plus the cell count,
// without materializing lists.
func (t *Tree) spaceMeasure(box rules.Box, ruleIdx []int, cuts []cutSpec) float64 {
	total := float64(totalCells(cuts))
	for _, ri := range ruleIdx {
		cells := 1
		for _, c := range cuts {
			lo, hi := cellRange(t.rs.Rules[ri].Span(c.dim), box[c.dim], c.log2cw, 1<<c.log2nc)
			cells *= hi - lo + 1
		}
		total += float64(cells)
	}
	return total
}

// cellRange is the inclusive cell-index range a rule span overlaps.
func cellRange(ruleSpan, boxSpan rules.Span, log2cw uint, nc int) (int, int) {
	clip, ok := ruleSpan.Intersect(boxSpan)
	if !ok {
		return 0, -1
	}
	lo := int(uint64(clip.Lo-boxSpan.Lo) >> log2cw)
	hi := int(uint64(clip.Hi-boxSpan.Lo) >> log2cw)
	if hi >= nc {
		hi = nc - 1
	}
	return lo, hi
}

// Classify walks the in-memory tree (native lookup).
func (t *Tree) Classify(h rules.Header) int {
	n := t.root
	for !n.leaf {
		idx := 0
		for _, c := range n.cuts {
			ci := (h.Field(c.dim) >> c.log2cw) & uint32(1<<c.log2nc-1)
			idx = idx<<c.log2nc | int(ci)
		}
		n = n.children[idx]
	}
	for _, ri := range n.ruleIdx {
		if t.rs.Rules[ri].Matches(h) {
			return ri
		}
	}
	return -1
}

// ClassifyBatch classifies hs[i] into out[i] (the engine's
// BatchClassifier contract; out must be at least as long as hs). Like
// HiCuts, HyperCuts depth is data-dependent, so this is the amortized
// per-packet loop: one call, zero allocations, answers identical to
// Classify.
func (t *Tree) ClassifyBatch(hs []rules.Header, out []int) {
	out = out[:len(hs)]
	for i, h := range hs {
		out[i] = t.Classify(h)
	}
}

// Name identifies the algorithm in reports.
func (t *Tree) Name() string { return "HyperCuts" }

// Stats returns build statistics.
func (t *Tree) Stats() BuildStats { return t.stats }

// MemoryBytes returns the serialized SRAM footprint.
func (t *Tree) MemoryBytes() int { return t.image.TotalBytes() }

// Image exposes the serialized SRAM image.
func (t *Tree) Image() *memlayout.Image { return t.image }

func (t *Tree) collectStats() {
	seen := make(map[*node]bool)
	var walk func(n *node, depth int)
	walk = func(n *node, depth int) {
		if seen[n] {
			return
		}
		seen[n] = true
		if depth > t.stats.MaxDepth {
			t.stats.MaxDepth = depth
		}
		t.stats.Nodes++
		if n.leaf {
			t.stats.Leaves++
			if len(n.ruleIdx) > t.stats.MaxLeafRules {
				t.stats.MaxLeafRules = len(n.ruleIdx)
			}
			if acc := 2*depth + 3 + len(n.ruleIdx); acc > t.stats.WorstCaseAccesses {
				t.stats.WorstCaseAccesses = acc
			}
			return
		}
		if len(n.cuts) > 1 {
			t.stats.MultiDimNodes++
		}
		for _, c := range n.children {
			walk(c, depth+1)
		}
	}
	walk(t.root, 0)
}
