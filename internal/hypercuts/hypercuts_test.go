package hypercuts

import (
	"testing"

	"repro/internal/hicuts"
	"repro/internal/pktgen"
	"repro/internal/rulegen"
	"repro/internal/rules"
)

func buildSet(t *testing.T, kind rulegen.Kind, size int, seed int64) *rules.RuleSet {
	t.Helper()
	rs, err := rulegen.Generate(rulegen.Config{Kind: kind, Size: size, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return rs
}

func trace(t *testing.T, rs *rules.RuleSet, n int, seed int64) []rules.Header {
	t.Helper()
	tr, err := pktgen.Generate(rs, pktgen.Config{Count: n, Seed: seed, MatchFraction: 0.85})
	if err != nil {
		t.Fatal(err)
	}
	return tr.Headers
}

func TestClassifyMatchesOracle(t *testing.T) {
	for _, tc := range []struct {
		kind rulegen.Kind
		size int
	}{
		{rulegen.Firewall, 120},
		{rulegen.CoreRouter, 300},
		{rulegen.Random, 80},
	} {
		rs := buildSet(t, tc.kind, tc.size, 301)
		tree, err := New(rs, Config{})
		if err != nil {
			t.Fatalf("%v/%d: %v", tc.kind, tc.size, err)
		}
		for _, h := range trace(t, rs, 2000, 302) {
			if got, want := tree.Classify(h), rs.Match(h); got != want {
				t.Fatalf("%v/%d: Classify(%v) = %d, oracle %d", tc.kind, tc.size, h, got, want)
			}
		}
	}
}

func TestSerializedLookupMatchesNative(t *testing.T) {
	rs := buildSet(t, rulegen.CoreRouter, 250, 303)
	tree, err := New(rs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.Verify(trace(t, rs, 2500, 304)); err != nil {
		t.Fatal(err)
	}
}

func TestMultiDimensionalCutsHappen(t *testing.T) {
	// Core-router sets have two address dimensions with rich projections;
	// HyperCuts must actually use its defining feature on them.
	rs := buildSet(t, rulegen.CoreRouter, 400, 305)
	tree, err := New(rs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if tree.Stats().MultiDimNodes == 0 {
		t.Error("no multi-dimensional nodes built; HyperCuts degenerated to HiCuts")
	}
}

func TestShallowerThanHiCuts(t *testing.T) {
	// Cutting two dimensions at once flattens the tree relative to
	// HiCuts on the same rules (the HyperCuts paper's headline).
	rs := buildSet(t, rulegen.CoreRouter, 400, 306)
	hyper, err := New(rs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	hi, err := hicuts.New(rs, hicuts.Config{PruneCovered: true})
	if err != nil {
		t.Fatal(err)
	}
	if hyper.Stats().MaxDepth > hi.Stats().MaxDepth {
		t.Errorf("HyperCuts depth %d exceeds HiCuts depth %d",
			hyper.Stats().MaxDepth, hi.Stats().MaxDepth)
	}
}

func TestWorstCaseBoundHolds(t *testing.T) {
	rs := buildSet(t, rulegen.Firewall, 150, 307)
	tree, err := New(rs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	bound := tree.Stats().WorstCaseAccesses
	for _, h := range trace(t, rs, 800, 308) {
		p := tree.Program(h)
		if p.Result != tree.Classify(h) {
			t.Fatalf("program result mismatch for %v", h)
		}
		if p.Accesses() > bound {
			t.Fatalf("program used %d accesses, bound %d", p.Accesses(), bound)
		}
	}
}

func TestSpecPackRoundTrip(t *testing.T) {
	for _, cuts := range [][]cutSpec{
		{{dim: rules.DimSrcIP, log2nc: 5, log2cw: 27}},
		{{dim: rules.DimProto, log2nc: 1, log2cw: 7}},
		{{dim: rules.DimSrcIP, log2nc: 4, log2cw: 28}, {dim: rules.DimDstIP, log2nc: 3, log2cw: 29}},
		{{dim: rules.DimSrcPort, log2nc: 8, log2cw: 8}, {dim: rules.DimDstPort, log2nc: 2, log2cw: 14}},
	} {
		w := packInternal(cuts)
		if w&leafNodeFlag != 0 {
			t.Fatalf("internal word has leaf flag: %#x", w)
		}
		back := unpackInternal(w)
		if len(back) != len(cuts) {
			t.Fatalf("round trip lost cuts: %v -> %v", cuts, back)
		}
		for i := range cuts {
			if back[i] != cuts[i] {
				t.Fatalf("cut %d: %+v -> %+v", i, cuts[i], back[i])
			}
		}
	}
}

func TestChannelRestriction(t *testing.T) {
	rs := buildSet(t, rulegen.Firewall, 90, 309)
	for channels := 1; channels <= 4; channels++ {
		tree, err := New(rs, Config{Channels: channels})
		if err != nil {
			t.Fatal(err)
		}
		words := tree.Image().ChannelWords()
		for c := channels; c < len(words); c++ {
			if words[c] != 0 {
				t.Errorf("channels=%d: channel %d has %d words", channels, c, words[c])
			}
		}
		if err := tree.Verify(trace(t, rs, 300, 310)); err != nil {
			t.Fatalf("channels=%d: %v", channels, err)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	rs := buildSet(t, rulegen.Firewall, 20, 311)
	for i, cfg := range []Config{
		{Binth: -1},
		{SpFac: 0.1},
		{MaxCells: 100}, // not a power of two
		{Channels: 6},
	} {
		if _, err := New(rs, cfg); err == nil {
			t.Errorf("config %d should be rejected", i)
		}
	}
}

func TestDegenerateSets(t *testing.T) {
	// Inseparable duplicates and single rules must terminate.
	r := rules.Rule{SrcPort: rules.FullPortRange, DstPort: rules.FullPortRange, Proto: rules.AnyProto}
	rs := rules.NewRuleSet("dup", []rules.Rule{r, r, r})
	tree, err := New(rs, Config{Binth: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := tree.Classify(rules.Header{}); got != 0 {
		t.Errorf("Classify = %d, want 0", got)
	}
}
