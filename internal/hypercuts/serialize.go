package hypercuts

import (
	"fmt"

	"repro/internal/memlayout"
	"repro/internal/nptrace"
	"repro/internal/rules"
	"repro/internal/ruletable"
)

// Serialized layout, one word header plus the pointer array:
//
//	word 0 (internal):  bit31 clear ‖ (ncuts-1)(1, bit 30) ‖
//	                    spec0(14, bits 16..29) ‖ spec1(14, bits 2..15)
//	                    where spec = dim(3) ‖ log2nc(5) ‖ log2cw(6)
//	words 1..cells:     child pointers
//
//	word 0 (leaf):      bit31 set ‖ count(16)
//	words 1..:          rule indices padded to binth slots
//
// Leaf rule records are fetched from the shared rule table exactly as in
// internal/hicuts (batched, no early exit).
const leafNodeFlag = uint32(1) << 31

func packSpec(c cutSpec) uint32 {
	return uint32(c.dim)<<11 | uint32(c.log2nc)<<6 | uint32(c.log2cw)
}

func unpackSpec(v uint32) cutSpec {
	return cutSpec{
		dim:    rules.Dim(v >> 11 & 0x7),
		log2nc: uint(v >> 6 & 0x1F),
		log2cw: uint(v & 0x3F),
	}
}

func packInternal(cuts []cutSpec) uint32 {
	w := uint32(len(cuts)-1) << 30
	w |= packSpec(cuts[0]) << 16
	if len(cuts) > 1 {
		w |= packSpec(cuts[1]) << 2
	}
	return w
}

func unpackInternal(w uint32) []cutSpec {
	n := int(w>>30&1) + 1
	cuts := make([]cutSpec, 0, 2)
	cuts = append(cuts, unpackSpec(w>>16&0x3FFF))
	if n > 1 {
		cuts = append(cuts, unpackSpec(w>>2&0x3FFF))
	}
	return cuts
}

func (t *Tree) serialize() error {
	levels := t.stats.MaxDepth + 1
	alloc, err := memlayout.AllocateLevels(memlayout.UniformDemand(levels), t.cfg.Headroom, t.cfg.Channels)
	if err != nil {
		return err
	}
	t.image = memlayout.NewImage()
	t.ruleCh = uint8(t.cfg.Channels - 1)
	t.ruleBase = t.image.Alloc(t.ruleCh, ruletable.Encode(t.rs))

	var place func(n *node, depth int) uint32
	place = func(n *node, depth int) uint32 {
		if n.placed {
			return memlayout.NodePtr(n.channel, n.addr)
		}
		ch := alloc[depth]
		if n.leaf {
			slots := len(n.ruleIdx)
			if slots < t.cfg.Binth {
				slots = t.cfg.Binth
			}
			words := make([]uint32, 1+slots)
			words[0] = leafNodeFlag | uint32(len(n.ruleIdx))
			for i, ri := range n.ruleIdx {
				words[1+i] = uint32(ri)
			}
			n.addr = t.image.Alloc(ch, words)
			n.channel = ch
			n.placed = true
			return memlayout.NodePtr(ch, n.addr)
		}
		cells := n.cells()
		n.addr = t.image.Reserve(ch, 1+cells)
		n.channel = ch
		n.placed = true
		t.image.Set(ch, n.addr, packInternal(n.cuts))
		for i, c := range n.children {
			t.image.Set(ch, n.addr+1+uint32(i), place(c, depth+1))
		}
		return memlayout.NodePtr(ch, n.addr)
	}
	t.rootPtr = place(t.root, 0)
	return nil
}

// Lookup runs the serialized lookup against mem.
func (t *Tree) Lookup(mem nptrace.Mem, h rules.Header) int {
	costs := nptrace.DefaultCosts
	ptr := t.rootPtr
	for {
		ch, off := memlayout.NodeAddr(ptr)
		mem.Compute(costs.IssueIO)
		w0 := mem.Read(ch, off, 1)[0]
		if w0&leafNodeFlag != 0 {
			return t.scanLeaf(mem, ch, off, int(w0&0xFFFF), h)
		}
		cuts := unpackInternal(w0)
		idx := uint32(0)
		for _, c := range cuts {
			mem.Compute(4 * costs.ALU)
			ci := (h.Field(c.dim) >> c.log2cw) & uint32(1<<c.log2nc-1)
			idx = idx<<c.log2nc | ci
		}
		mem.Compute(costs.IssueIO)
		ptr = mem.Read(ch, off+1+idx, 1)[0]
	}
}

// scanLeaf mirrors the HiCuts batched leaf linear search.
func (t *Tree) scanLeaf(mem nptrace.Mem, ch uint8, off uint32, count int, h rules.Header) int {
	if count == 0 {
		return -1
	}
	first := count
	if first > t.cfg.Binth {
		first = t.cfg.Binth
	}
	costs := nptrace.DefaultCosts
	mem.Compute(costs.IssueIO)
	ids := append([]uint32(nil), mem.Read(ch, off+1, first)...)
	if count > first {
		mem.Compute(costs.IssueIO)
		ids = append(ids, mem.Read(ch, off+1+uint32(first), count-first)...)
	}
	match := -1
	for _, id := range ids {
		mem.Compute(costs.IssueIO)
		rec := mem.Read(t.ruleCh, t.ruleBase+id*ruletable.WordsPerRule, ruletable.WordsPerRule)
		mem.Compute(ruletable.CompareCycles)
		if match < 0 && ruletable.MatchRecord(rec, h) {
			match = int(rec[5])
		}
	}
	return match
}

// Program records the access program for one header.
func (t *Tree) Program(h rules.Header) nptrace.Program {
	rec := nptrace.NewRecorder(t.image)
	return rec.Finish(t.Lookup(rec, h))
}

// Verify cross-checks the serialized lookup against the native tree walk.
func (t *Tree) Verify(headers []rules.Header) error {
	mem := nptrace.NullMem{R: t.image}
	for _, h := range headers {
		if got, want := t.Lookup(mem, h), t.Classify(h); got != want {
			return fmt.Errorf("hypercuts: serialized lookup %d != native %d for %v", got, want, h)
		}
	}
	return nil
}
