package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Event kinds recorded by the runtime. The set is open — Record accepts
// any string — but these are the hooks the serving and build stacks emit.
const (
	// EventSwap: update.Manager published a new generation.
	EventSwap = "swap"
	// EventRollback: update.Manager reinstated the previous generation.
	EventRollback = "rollback"
	// EventRungChange: a rebuild landed on a different ladder rung than
	// the generation it replaced.
	EventRungChange = "rung-change"
	// EventBreakerOpen / EventBreakerHalfOpen / EventBreakerClose: a
	// ladder rung's circuit breaker transitioned.
	EventBreakerOpen     = "breaker-open"
	EventBreakerHalfOpen = "breaker-half-open"
	EventBreakerClose    = "breaker-close"
	// EventBudgetTrip: a governed build crossed a buildgov budget limit.
	EventBudgetTrip = "budget-trip"
	// EventCacheInvalidate: a shard invalidated its private flow cache on
	// a generation change.
	EventCacheInvalidate = "cache-invalidate"
	// EventCompact: update.Manager folded its delta layer into a fresh
	// tree build and published the result.
	EventCompact = "compact"
	// EventCompactAbort: a compaction was discarded — its build failed,
	// or the base generation changed underneath it.
	EventCompactAbort = "compact-abort"
	// EventTenantEvicted: a tenant was removed from a registry, or its
	// flow-cache partition was reclaimed for a more recently active tenant.
	EventTenantEvicted = "tenant-evicted"
	// EventBudgetStarved: a tenant's build waited on the global admission
	// budget until its context expired — the fair share never freed up.
	EventBudgetStarved = "budget-starved"
)

// Event is one flight-recorder entry.
type Event struct {
	// Seq is the global record sequence number (monotonic per ring).
	Seq uint64 `json:"seq"`
	// At is the wall-clock record time.
	At time.Time `json:"at"`
	// Kind is the event kind (see the Event* constants).
	Kind string `json:"kind"`
	// Detail is a human-readable one-liner.
	Detail string `json:"detail,omitempty"`
}

// Ring is a lock-free, fixed-capacity event ring: the flight recorder.
// Record claims a slot with one atomic add and publishes the event with
// one atomic pointer store — no locks anywhere, so it is safe to call
// from any goroutine, including serving loops (events are rare by
// design: swaps, rollbacks, breaker transitions, budget trips, cache
// invalidations — never per packet). When the ring wraps, the oldest
// events are overwritten; Snapshot returns the retained window.
type Ring struct {
	slots []atomic.Pointer[Event]
	next  atomic.Uint64
	// counts tracks lifetime per-kind totals (not bounded by the ring
	// window) for the pc_events_total exposition.
	counts sync.Map // string -> *Counter
}

// DefaultRingSize is the flight-recorder window the CLIs allocate.
const DefaultRingSize = 1024

// NewRing returns a ring retaining the last n events (n < 1 uses
// DefaultRingSize).
func NewRing(n int) *Ring {
	if n < 1 {
		n = DefaultRingSize
	}
	return &Ring{slots: make([]atomic.Pointer[Event], n)}
}

// Record appends an event. Nil-safe: a nil ring drops it, so call sites
// need no enabled-checks.
func (r *Ring) Record(kind, detail string) {
	if r == nil {
		return
	}
	e := &Event{At: time.Now(), Kind: kind, Detail: detail}
	e.Seq = r.next.Add(1) - 1
	r.slots[e.Seq%uint64(len(r.slots))].Store(e)
	c, ok := r.counts.Load(kind)
	if !ok {
		c, _ = r.counts.LoadOrStore(kind, &Counter{})
	}
	c.(*Counter).Inc()
}

// Recordf is Record with a formatted detail.
func (r *Ring) Recordf(kind, format string, args ...any) {
	if r == nil {
		return
	}
	r.Record(kind, fmt.Sprintf(format, args...))
}

// Len is the number of events recorded over the ring's lifetime (not
// bounded by the window).
func (r *Ring) Len() uint64 {
	if r == nil {
		return 0
	}
	return r.next.Load()
}

// Snapshot returns the retained events, oldest first. Under concurrent
// recording the snapshot is a consistent set of fully published events
// (each slot is one atomic pointer), not an atomic cut of the whole
// window.
func (r *Ring) Snapshot() []Event {
	if r == nil {
		return nil
	}
	out := make([]Event, 0, len(r.slots))
	for i := range r.slots {
		if e := r.slots[i].Load(); e != nil {
			out = append(out, *e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// KindCount is one kind's lifetime event total.
type KindCount struct {
	Kind  string
	Count uint64
}

// KindCounts returns lifetime totals per kind, sorted by kind.
func (r *Ring) KindCounts() []KindCount {
	if r == nil {
		return nil
	}
	var out []KindCount
	r.counts.Range(func(k, v any) bool {
		out = append(out, KindCount{Kind: k.(string), Count: v.(*Counter).Load()})
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].Kind < out[j].Kind })
	return out
}

// WriteJSON dumps the retained window as a JSON array — the flight
// recorder read-out the CLIs emit on shutdown or SIGQUIT.
func (r *Ring) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}
