package obs

import (
	"math/rand"
	"sort"
	"testing"
)

func TestLatBucketMonotoneAndConsistent(t *testing.T) {
	// Bucket index must be monotone in the value, every value must fall
	// at or below its bucket's upper bound, and the upper bound must be
	// within the documented ~3% relative error.
	vals := []uint64{0, 1, 31, 32, 33, 63, 64, 100, 1000, 12345, 1 << 20, 1<<20 + 7, 1 << 40, 1<<63 - 1, 1 << 63, ^uint64(0)}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		vals = append(vals, rng.Uint64()>>uint(rng.Intn(64)))
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	lastBucket := -1
	for _, v := range vals {
		b := latBucket(v)
		if b < 0 || b >= latBuckets {
			t.Fatalf("value %d: bucket %d out of range", v, b)
		}
		if b < lastBucket {
			t.Fatalf("bucket index not monotone at value %d", v)
		}
		lastBucket = b
		upper := latBucketUpper(b)
		if upper < v {
			t.Fatalf("value %d above its bucket upper bound %d", v, upper)
		}
		if v >= 1<<latSubBits {
			// Relative error of reporting upper instead of v is bounded by
			// one sub-bucket width over the range base.
			if float64(upper-v) > float64(v)/float64(1<<latSubBits)+1 {
				t.Fatalf("value %d: upper bound %d overshoots by more than one sub-bucket", v, upper)
			}
		} else if upper != v {
			t.Fatalf("exact region value %d mapped to upper bound %d", v, upper)
		}
	}
}

func TestLatBucketUpperIsMaxOfBucket(t *testing.T) {
	// Every bucket's upper bound must itself map back into that bucket,
	// and upper+1 into the next.
	for b := 0; b < latBuckets; b++ {
		upper := latBucketUpper(b)
		if got := latBucket(upper); got != b {
			t.Fatalf("bucket %d upper %d maps to bucket %d", b, upper, got)
		}
		if upper != ^uint64(0) {
			if got := latBucket(upper + 1); got != b+1 {
				t.Fatalf("bucket %d upper+1 %d maps to bucket %d, want %d", b, upper+1, got, b+1)
			}
		}
	}
}

func TestLatHistQuantiles(t *testing.T) {
	// Feed a known distribution and check the reported quantiles land
	// within one sub-bucket of the exact order statistics.
	var h LatHist
	var vals []uint64
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 100000; i++ {
		// Log-uniformish latency mix: mostly ~100µs, a heavy tail.
		v := uint64(50_000 + rng.Intn(100_000))
		if rng.Intn(100) == 0 {
			v = uint64(1_000_000 + rng.Intn(20_000_000))
		}
		vals = append(vals, v)
		h.Observe(v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	s := h.Snapshot()
	if s.Count != uint64(len(vals)) {
		t.Fatalf("count %d, want %d", s.Count, len(vals))
	}
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		exact := vals[int(q*float64(len(vals)))-1]
		got := s.Quantile(q)
		lo := exact - exact/(1<<latSubBits) - 1
		hi := exact + exact/(1<<latSubBits)*2 + 1
		if got < lo || got > hi {
			t.Errorf("q%.3f: got %d, exact %d (acceptable [%d,%d])", q, got, exact, lo, hi)
		}
	}
}

func TestLatHistNilAndEmpty(t *testing.T) {
	var nilHist *LatHist
	nilHist.Observe(5)
	nilHist.ObserveN(5, 3)
	s := nilHist.Snapshot()
	if s.Count != 0 || s.Quantile(0.5) != 0 || s.Mean() != 0 {
		t.Fatalf("nil LatHist not inert: %+v", s)
	}
	var h LatHist
	s = h.Snapshot()
	if s.Quantile(0.99) != 0 {
		t.Fatal("empty histogram quantile not zero")
	}
	h.Observe(42)
	s = h.Snapshot()
	for _, q := range []float64{-1, 0, 0.5, 1, 2} {
		if got := s.Quantile(q); got != 42 {
			t.Fatalf("single-observation quantile(%v) = %d, want 42", q, got)
		}
	}
	if s.Sum != 42 || s.Mean() != 42 {
		t.Fatalf("sum/mean wrong: %+v", s)
	}
}

func TestZeroAllocLatHistObserve(t *testing.T) {
	var h LatHist
	if allocs := testing.AllocsPerRun(1000, func() {
		h.Observe(123456)
		h.ObserveN(789, 3)
	}); allocs != 0 {
		t.Fatalf("LatHist.Observe allocates %v per op; the latency path must be 0-alloc", allocs)
	}
}
