package obs

import (
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"strings"
	"sync"
)

// Label is one metric dimension (e.g. {shard, "3"}).
type Label struct {
	Key, Value string
}

// Sample is one exposed series at snapshot time. Counter and gauge
// samples carry Value; histogram samples carry Hist instead.
type Sample struct {
	// Name is the Prometheus series name (e.g. "pc_engine_shard_busy_ns_total").
	Name string
	// Help is the one-line series description (emitted once per name).
	Help string
	// Type is "counter", "gauge" or "histogram".
	Type string
	// Labels are the series dimensions, in emission order.
	Labels []Label
	// Value is the sample value for counters and gauges.
	Value float64
	// Hist is the snapshot for histogram samples (nil otherwise).
	Hist *HistSnapshot
}

// Collector emits a subsystem's samples at snapshot time. Collectors run
// only on the scrape path; they may read atomics, take subsystem locks
// and compute ratios freely — none of that cost touches serving.
type Collector func(emit func(Sample))

// Registry aggregates collectors and exposes them as Prometheus text,
// expvar JSON and an HTTP endpoint. Registration is register-and-forget:
// subsystems register once at setup and never interact with the registry
// again; everything else happens at snapshot time.
type Registry struct {
	mu         sync.Mutex
	collectors []Collector
	ring       *Ring
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Register adds a collector. Nil-safe on both sides.
func (r *Registry) Register(c Collector) {
	if r == nil || c == nil {
		return
	}
	r.mu.Lock()
	r.collectors = append(r.collectors, c)
	r.mu.Unlock()
}

// SetEvents attaches the flight-recorder ring: per-kind event counters
// join the exposition (pc_events_total{kind=...}) and Serve gains an
// /events JSON endpoint.
func (r *Registry) SetEvents(ring *Ring) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.ring = ring
	r.mu.Unlock()
}

// Events returns the attached flight-recorder ring (nil when unset).
func (r *Registry) Events() *Ring {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.ring
}

// Gather runs every collector and returns the samples sorted by name
// then labels — the stable order both expositions emit.
func (r *Registry) Gather() []Sample {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	collectors := append([]Collector(nil), r.collectors...)
	ring := r.ring
	r.mu.Unlock()

	var samples []Sample
	emit := func(s Sample) { samples = append(samples, s) }
	for _, c := range collectors {
		c(emit)
	}
	if ring != nil {
		for _, kc := range ring.KindCounts() {
			emit(Sample{
				Name: "pc_events_total", Help: "Flight-recorder events by kind.",
				Type:   "counter",
				Labels: []Label{{"kind", kc.Kind}},
				Value:  float64(kc.Count),
			})
		}
	}
	sort.SliceStable(samples, func(i, j int) bool {
		if samples[i].Name != samples[j].Name {
			return samples[i].Name < samples[j].Name
		}
		return labelString(samples[i].Labels) < labelString(samples[j].Labels)
	})
	return samples
}

// WritePrometheus writes the registry snapshot in Prometheus text
// exposition format (HELP/TYPE emitted once per series name).
func (r *Registry) WritePrometheus(w io.Writer) error {
	var b strings.Builder
	last := ""
	for _, s := range r.Gather() {
		if s.Name != last {
			if s.Help != "" {
				fmt.Fprintf(&b, "# HELP %s %s\n", s.Name, s.Help)
			}
			fmt.Fprintf(&b, "# TYPE %s %s\n", s.Name, s.Type)
			last = s.Name
		}
		if s.Hist != nil {
			writeHist(&b, s)
			continue
		}
		fmt.Fprintf(&b, "%s%s %s\n", s.Name, labelString(s.Labels), formatValue(s.Value))
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writeHist emits one histogram sample: cumulative le buckets up to the
// highest occupied one, then +Inf, _sum and _count.
func writeHist(b *strings.Builder, s Sample) {
	top := 0
	for i, c := range s.Hist.Counts {
		if c > 0 {
			top = i
		}
	}
	cum := uint64(0)
	for i := 0; i <= top; i++ {
		cum += s.Hist.Counts[i]
		fmt.Fprintf(b, "%s_bucket%s %d\n", s.Name, labelStringLe(s.Labels, fmt.Sprintf("%d", UpperBound(i))), cum)
	}
	fmt.Fprintf(b, "%s_bucket%s %d\n", s.Name, labelStringLe(s.Labels, "+Inf"), s.Hist.Count)
	fmt.Fprintf(b, "%s_sum%s %d\n", s.Name, labelString(s.Labels), s.Hist.Sum)
	fmt.Fprintf(b, "%s_count%s %d\n", s.Name, labelString(s.Labels), s.Hist.Count)
}

func formatValue(v float64) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

func labelString(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, escapeLabel(l.Value))
	}
	b.WriteByte('}')
	return b.String()
}

func labelStringLe(labels []Label, le string) string {
	all := make([]Label, 0, len(labels)+1)
	all = append(all, labels...)
	all = append(all, Label{"le", le})
	return labelString(all)
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

// Handler serves the Prometheus exposition.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

// expvar exposition: every registry that serves publishes into one
// global expvar map ("pcobs"), keyed by series name + labels. expvar's
// namespace is process-global, so publication is guarded by a Once.
var (
	expvarOnce sync.Once
	expvarMu   sync.Mutex
	expvarRegs []*Registry
)

// EnableExpvar adds this registry's snapshot to the process-wide "pcobs"
// expvar variable (visible at /debug/vars). Safe to call repeatedly.
func (r *Registry) EnableExpvar() {
	if r == nil {
		return
	}
	expvarMu.Lock()
	for _, reg := range expvarRegs {
		if reg == r {
			expvarMu.Unlock()
			return
		}
	}
	expvarRegs = append(expvarRegs, r)
	expvarMu.Unlock()
	expvarOnce.Do(func() {
		expvar.Publish("pcobs", expvar.Func(func() any {
			expvarMu.Lock()
			regs := append([]*Registry(nil), expvarRegs...)
			expvarMu.Unlock()
			out := map[string]any{}
			for _, reg := range regs {
				for _, s := range reg.Gather() {
					key := s.Name + labelString(s.Labels)
					if s.Hist != nil {
						out[key] = map[string]any{"count": s.Hist.Count, "sum": s.Hist.Sum, "mean": s.Hist.Mean()}
						continue
					}
					out[key] = s.Value
				}
			}
			return out
		}))
	})
}

// Server is a running metrics listener (see Registry.Serve).
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Addr is the bound listen address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the listener.
func (s *Server) Close() error { return s.srv.Close() }

// Serve starts an HTTP listener on addr exposing /metrics (Prometheus
// text), /debug/vars (expvar, including the "pcobs" snapshot) and
// /events (the flight-recorder ring as JSON, when one is attached via
// SetEvents). The listener is opt-in plumbing for the -metrics flags of
// the CLIs; nothing in the serving stack depends on it running.
func (r *Registry) Serve(addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listening on %s: %w", addr, err)
	}
	r.EnableExpvar()
	mux := http.NewServeMux()
	mux.Handle("/metrics", r.Handler())
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/events", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if ring := r.Events(); ring != nil {
			ring.WriteJSON(w)
			return
		}
		io.WriteString(w, "[]\n")
	})
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	return &Server{ln: ln, srv: srv}, nil
}
