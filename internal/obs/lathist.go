package obs

import (
	"math/bits"
	"sync/atomic"
)

// LatHist is a log-linear latency histogram: like Hist it is lock-free,
// allocation-free and nil-safe, but where Hist's power-of-two buckets
// give factor-of-2 resolution — useless for telling a 110µs p99 from a
// 200µs one — LatHist subdivides every power-of-two range into
// 2^latSubBits linear sub-buckets, HDR-histogram style. Resolution is
// therefore bounded by 1/2^latSubBits (≈3% with 5 sub-bucket bits) at
// every magnitude, which is what round-trip latency quantiles need,
// while Observe stays two atomic adds and a bit scan.
//
// Values are dimensionless; the I/O front end observes nanoseconds.
// The full uint64 range is representable — the top bucket absorbs
// nothing silently.
type LatHist struct {
	counts [latBuckets]atomic.Uint64
	sum    atomic.Uint64
}

// latSubBits is the per-range linear subdivision: 2^5 = 32 sub-buckets
// per power of two, ≈3.1% worst-case relative error on any reported
// quantile.
const latSubBits = 5

// latBuckets is the bucket count: values below 2^latSubBits map to
// themselves (exact), and each of the remaining 64−latSubBits
// power-of-two ranges contributes 2^latSubBits sub-buckets.
const latBuckets = (1 << latSubBits) + (64-latSubBits)<<latSubBits

// latBucket maps a value to its bucket index.
func latBucket(v uint64) int {
	if v < 1<<latSubBits {
		return int(v)
	}
	// bits.Len64(v) >= latSubBits+1 here. range index r counts powers of
	// two above the exact region; the sub-bucket is the latSubBits bits
	// below the leading one.
	r := bits.Len64(v) - latSubBits - 1
	sub := (v >> uint(r)) & (1<<latSubBits - 1)
	return (r+1)<<latSubBits + int(sub)
}

// latBucketUpper returns bucket b's inclusive upper bound.
func latBucketUpper(b int) uint64 {
	if b < 1<<latSubBits {
		return uint64(b)
	}
	r := b>>latSubBits - 1
	sub := uint64(b & (1<<latSubBits - 1))
	base := uint64(1) << uint(r+latSubBits)
	width := uint64(1) << uint(r)
	return base + (sub+1)*width - 1
}

// Observe records one observation of value v. Nil-safe.
func (h *LatHist) Observe(v uint64) { h.ObserveN(v, 1) }

// ObserveN records n observations of value v in one shot. Nil-safe.
func (h *LatHist) ObserveN(v, n uint64) {
	if h == nil || n == 0 {
		return
	}
	h.counts[latBucket(v)].Add(n)
	h.sum.Add(v * n)
}

// LatSnapshot is a point-in-time copy of a LatHist (buckets individually
// exact, the set not one atomic cut — irrelevant at scrape granularity).
type LatSnapshot struct {
	Counts [latBuckets]uint64
	// Count is the total number of observations.
	Count uint64
	// Sum is the sum of all observed values.
	Sum uint64
}

// Snapshot copies the histogram (zero snapshot for a nil LatHist).
func (h *LatHist) Snapshot() LatSnapshot {
	var s LatSnapshot
	if h == nil {
		return s
	}
	for b := range h.counts {
		c := h.counts[b].Load()
		s.Counts[b] = c
		s.Count += c
	}
	s.Sum = h.sum.Load()
	return s
}

// Mean returns the mean observed value (0 when empty).
func (s *LatSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile returns the value at quantile q in [0,1] — the upper bound of
// the bucket holding the ⌈q·Count⌉-th smallest observation, so the
// answer errs at most one sub-bucket width (≈3%) high and never low by
// more than the same width. Quantile(0.5) is p50, Quantile(0.999) p999.
// Returns 0 when the histogram is empty; q outside [0,1] is clamped.
func (s *LatSnapshot) Quantile(q float64) uint64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q*float64(s.Count) + 0.5)
	if rank < 1 {
		rank = 1
	}
	if rank > s.Count {
		rank = s.Count
	}
	var cum uint64
	for b, c := range s.Counts {
		cum += c
		if cum >= rank {
			return latBucketUpper(b)
		}
	}
	return latBucketUpper(latBuckets - 1)
}
