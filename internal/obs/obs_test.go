package obs

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	var c Counter
	c.Add(3)
	c.Inc()
	if got := c.Load(); got != 4 {
		t.Fatalf("counter = %d, want 4", got)
	}
	var g Gauge
	g.Store(7)
	g.Store(5)
	if got := g.Load(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}
}

func TestNilInstrumentsAreNoOps(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Hist
	var r *Ring
	c.Add(1)
	c.Inc()
	g.Store(1)
	h.Observe(1)
	h.ObserveN(1, 2)
	r.Record("kind", "detail")
	r.Recordf("kind", "x %d", 1)
	if c.Load() != 0 || g.Load() != 0 || h.Snapshot().Count != 0 || r.Len() != 0 {
		t.Fatal("nil instruments must read as zero")
	}
	if r.Snapshot() != nil || r.KindCounts() != nil {
		t.Fatal("nil ring must snapshot empty")
	}
}

// TestHistBuckets pins the power-of-two bucketing: value v lands in
// bucket bits.Len64(v), and huge values clamp into the last bucket.
func TestHistBuckets(t *testing.T) {
	var h Hist
	h.Observe(0)          // bucket 0
	h.Observe(1)          // bucket 1
	h.ObserveN(2, 2)      // bucket 2 (values in [2,4))
	h.Observe(3)          // bucket 2
	h.Observe(1 << 20)    // bucket 21
	h.Observe(^uint64(0)) // clamps to last bucket
	s := h.Snapshot()
	if s.Counts[0] != 1 || s.Counts[1] != 1 || s.Counts[2] != 3 || s.Counts[21] != 1 || s.Counts[HistBuckets-1] != 1 {
		t.Fatalf("bucket layout wrong: %v", s.Counts)
	}
	if s.Count != 7 {
		t.Fatalf("count = %d, want 7", s.Count)
	}
	wantSum := uint64(1 + 2*2 + 3 + 1<<20)
	wantSum += ^uint64(0) // wraps, matching the histogram's modular sum
	if s.Sum != wantSum {
		t.Fatalf("sum = %d, want %d", s.Sum, wantSum)
	}
	if UpperBound(2) != 3 || UpperBound(HistBuckets-1) != ^uint64(0) {
		t.Fatal("UpperBound bounds wrong")
	}
}

// TestInstrumentsDoNotAllocate is the hot-path contract: counter adds
// and histogram observations must be allocation-free, always.
func TestInstrumentsDoNotAllocate(t *testing.T) {
	var c Counter
	var h Hist
	if n := testing.AllocsPerRun(1000, func() {
		c.Add(1)
		h.Observe(1234)
		h.ObserveN(99, 64)
	}); n != 0 {
		t.Fatalf("instrument updates allocate %v/op, want 0", n)
	}
}

func TestRegistryPrometheusExposition(t *testing.T) {
	reg := NewRegistry()
	var h Hist
	h.ObserveN(3, 4)
	reg.Register(func(emit func(Sample)) {
		emit(Sample{Name: "pc_test_packets_total", Help: "Packets.", Type: "counter",
			Labels: []Label{{"shard", "1"}}, Value: 42})
		emit(Sample{Name: "pc_test_packets_total", Help: "Packets.", Type: "counter",
			Labels: []Label{{"shard", "0"}}, Value: 7})
		hs := h.Snapshot()
		emit(Sample{Name: "pc_test_latency_ns", Help: "Latency.", Type: "histogram", Hist: &hs})
		emit(Sample{Name: "pc_test_ratio", Type: "gauge", Value: 0.5})
	})
	ring := NewRing(8)
	ring.Record(EventSwap, "gen 2")
	ring.Record(EventSwap, "gen 3")
	reg.SetEvents(ring)

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE pc_test_packets_total counter",
		`pc_test_packets_total{shard="0"} 7`,
		`pc_test_packets_total{shard="1"} 42`,
		"# TYPE pc_test_latency_ns histogram",
		`pc_test_latency_ns_bucket{le="3"} 4`,
		`pc_test_latency_ns_bucket{le="+Inf"} 4`,
		"pc_test_latency_ns_sum 12",
		"pc_test_latency_ns_count 4",
		"pc_test_ratio 0.5",
		`pc_events_total{kind="swap"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Series are sorted: shard="0" must precede shard="1".
	if strings.Index(out, `shard="0"`) > strings.Index(out, `shard="1"`) {
		t.Error("series not sorted by labels")
	}
	// HELP/TYPE emitted once per name.
	if strings.Count(out, "# TYPE pc_test_packets_total counter") != 1 {
		t.Error("TYPE emitted more than once for one name")
	}
}

func TestRingWrapAndOrder(t *testing.T) {
	ring := NewRing(4)
	for i := 0; i < 10; i++ {
		ring.Recordf("k", "event %d", i)
	}
	snap := ring.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("retained %d events, want 4", len(snap))
	}
	for i, e := range snap {
		if want := uint64(6 + i); e.Seq != want {
			t.Fatalf("snapshot[%d].Seq = %d, want %d", i, e.Seq, want)
		}
	}
	if ring.Len() != 10 {
		t.Fatalf("Len = %d, want 10", ring.Len())
	}
	counts := ring.KindCounts()
	if len(counts) != 1 || counts[0].Count != 10 {
		t.Fatalf("kind counts = %v", counts)
	}
}

// TestRingConcurrentRecord hammers the ring from many goroutines; the
// race detector is the real assertion, plus sequence uniqueness in the
// retained window.
func TestRingConcurrentRecord(t *testing.T) {
	ring := NewRing(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				ring.Record(EventSwap, "x")
			}
		}()
	}
	wg.Wait()
	if ring.Len() != 4000 {
		t.Fatalf("Len = %d, want 4000", ring.Len())
	}
	seen := map[uint64]bool{}
	for _, e := range ring.Snapshot() {
		if seen[e.Seq] {
			t.Fatalf("duplicate seq %d in snapshot", e.Seq)
		}
		seen[e.Seq] = true
	}
}

func TestServeEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Register(func(emit func(Sample)) {
		emit(Sample{Name: "pc_smoke_up", Type: "gauge", Value: 1})
	})
	ring := NewRing(8)
	ring.Record(EventRollback, "test")
	reg.SetEvents(ring)

	srv, err := reg.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) string {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		var b strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := resp.Body.Read(buf)
			b.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return b.String()
	}

	if out := get("/metrics"); !strings.Contains(out, "pc_smoke_up 1") {
		t.Errorf("/metrics missing series:\n%s", out)
	}
	if out := get("/debug/vars"); !strings.Contains(out, "pcobs") {
		t.Errorf("/debug/vars missing pcobs:\n%s", out)
	}
	var events []Event
	if err := json.Unmarshal([]byte(get("/events")), &events); err != nil {
		t.Fatalf("/events not JSON: %v", err)
	}
	if len(events) != 1 || events[0].Kind != EventRollback {
		t.Errorf("/events = %v", events)
	}
}

// TestHandlerDirect exercises the bare /metrics handler without a
// listener (what embedding servers mount).
func TestHandlerDirect(t *testing.T) {
	reg := NewRegistry()
	reg.Register(func(emit func(Sample)) {
		emit(Sample{Name: "pc_x_total", Type: "counter", Value: 3})
	})
	rec := httptest.NewRecorder()
	reg.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if !strings.Contains(rec.Body.String(), "pc_x_total 3") {
		t.Errorf("handler output: %s", rec.Body.String())
	}
}
