// Package obs is the repository's zero-allocation observability layer:
// shard-local counters and fixed-bucket histograms for the serving and
// build stacks, a registry with Prometheus text + expvar exposition, and
// a lock-free event ring that doubles as a flight recorder.
//
// The design target is the paper's own evaluation discipline — per-ME
// utilization and worst-case memory accesses, not averages — applied to
// the Go runtime: every instrument is register-and-forget. Hot paths
// update preallocated atomic slots at batch granularity (never a lock,
// never an allocation, never a per-packet synchronization), and all
// aggregation — summing shards, bucket cumulation, ratio computation —
// happens at snapshot time on the scrape path. A serving loop with
// metrics enabled therefore runs the same instructions per packet as one
// without, plus a handful of uncontended atomic adds per *batch*.
//
// Writers are expected to be shard-local: one goroutine owns one slot
// group, so the atomics exist for the benefit of the snapshot reader
// (and the race detector), not for cross-writer coordination. Slot
// groups that belong to different writers should be separated by a
// CachePad so two shards' counters never share a cache line — the
// commodity-core translation of giving each microengine its own local
// counter memory.
//
// All instrument methods are nil-receiver safe and become no-ops, so
// instrumented code paths need no "metrics enabled?" branches beyond a
// single pointer test at batch scope.
package obs

import (
	"math/bits"
	"sync/atomic"
)

// CachePad is padding the size of one cache line. Embed it between
// per-writer instrument groups (e.g. between two shards' counter blocks)
// so concurrent writers never false-share a line.
type CachePad [64]byte

// Counter is a monotonically increasing counter. Writers call Add/Inc;
// the scrape path calls Load. The zero value is ready to use.
type Counter struct {
	v atomic.Uint64
}

// Add adds n to the counter. Nil-safe: a nil counter is a no-op.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Load returns the current value (0 for a nil counter).
func (c *Counter) Load() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-value instrument (set, not accumulated).
type Gauge struct {
	v atomic.Uint64
}

// Store sets the gauge. Nil-safe.
func (g *Gauge) Store(n uint64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Load returns the current value (0 for a nil gauge).
func (g *Gauge) Load() uint64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// HistBuckets is the fixed bucket count of every Hist. Buckets are
// powers of two: bucket b counts observations v with bits.Len64(v) == b,
// i.e. v in [2^(b-1), 2^b), with bucket 0 holding v == 0 and the last
// bucket absorbing everything ≥ 2^(HistBuckets-2). 32 buckets span 1ns
// to ~2s when observing nanoseconds, and 0 to ~10^9 when observing
// occupancies — wide enough for every series the runtime records.
const HistBuckets = 32

// Hist is a fixed-bucket power-of-two histogram. Observation is two
// atomic adds and a bit scan; there is no locking and no allocation,
// ever. The zero value is ready to use.
type Hist struct {
	counts [HistBuckets]atomic.Uint64
	sum    atomic.Uint64
}

// Observe records one observation of value v. Nil-safe.
func (h *Hist) Observe(v uint64) { h.ObserveN(v, 1) }

// ObserveN records n observations of value v in one shot — the batch
// form serving loops use to attribute a batch's per-packet cost without
// per-packet bookkeeping. Nil-safe.
func (h *Hist) ObserveN(v, n uint64) {
	if h == nil || n == 0 {
		return
	}
	b := bits.Len64(v)
	if b >= HistBuckets {
		b = HistBuckets - 1
	}
	h.counts[b].Add(n)
	h.sum.Add(v * n)
}

// HistSnapshot is a point-in-time copy of a Hist, taken bucket by bucket
// on the scrape path (buckets are individually exact; the set is not one
// atomic cut, which is irrelevant at scrape granularity).
type HistSnapshot struct {
	// Counts[b] is the number of observations in bucket b (see
	// HistBuckets for the bucket bounds).
	Counts [HistBuckets]uint64
	// Count is the total number of observations.
	Count uint64
	// Sum is the sum of all observed values.
	Sum uint64
}

// UpperBound returns bucket b's inclusive upper bound (2^b − 1); the
// last bucket is unbounded (+Inf in Prometheus exposition).
func UpperBound(b int) uint64 {
	if b >= HistBuckets-1 {
		return ^uint64(0)
	}
	return 1<<uint(b) - 1
}

// Snapshot copies the histogram (zero snapshot for a nil Hist).
func (h *Hist) Snapshot() HistSnapshot {
	var s HistSnapshot
	if h == nil {
		return s
	}
	for b := range h.counts {
		c := h.counts[b].Load()
		s.Counts[b] = c
		s.Count += c
	}
	s.Sum = h.sum.Load()
	return s
}

// Mean returns the mean observed value (0 when empty).
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}
