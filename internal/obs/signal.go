package obs

import (
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
)

// DumpOnSIGQUIT installs a SIGQUIT handler that writes the flight
// recorder to w (stderr when nil) each time the signal arrives, without
// terminating the process — the live "what just happened" read-out for a
// serving binary. It replaces Go's default SIGQUIT stack dump for the
// process; the returned stop function uninstalls the handler and
// restores the default. Nil-safe: a nil ring returns a no-op stop.
func DumpOnSIGQUIT(ring *Ring, w io.Writer) (stop func()) {
	if ring == nil {
		return func() {}
	}
	if w == nil {
		w = os.Stderr
	}
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, syscall.SIGQUIT)
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-ch:
				fmt.Fprintf(w, "obs: flight recorder (%d events recorded)\n", ring.Len())
				ring.WriteJSON(w)
			case <-done:
				return
			}
		}
	}()
	return func() {
		signal.Stop(ch)
		close(done)
	}
}
