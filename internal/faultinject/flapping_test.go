package faultinject

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/expcuts"
	"repro/internal/pktgen"
	"repro/internal/rulegen"
	"repro/internal/rules"
	"repro/internal/update"
)

func flappingManager(t *testing.T) (*update.Manager, *rules.RuleSet, *rules.RuleSet) {
	t.Helper()
	base, err := rulegen.Generate(rulegen.Config{Kind: rulegen.Firewall, Size: 60, Seed: 901})
	if err != nil {
		t.Fatal(err)
	}
	pool, err := rulegen.Generate(rulegen.Config{Kind: rulegen.Firewall, Size: 40, Seed: 902})
	if err != nil {
		t.Fatal(err)
	}
	m, err := update.NewManager(base, func(r *rules.RuleSet) (update.Classifier, error) {
		return expcuts.New(r, expcuts.Config{})
	})
	if err != nil {
		t.Fatal(err)
	}
	return m, base, pool
}

func TestFlappingUpdaterDeterministic(t *testing.T) {
	_, base, pool := flappingManager(t)
	a := NewFlappingUpdater(base.Rules, pool.Rules, 11)
	b := NewFlappingUpdater(base.Rules, pool.Rules, 11)
	for i := 0; i < 50; i++ {
		oa, ob := a.NextBurst(), b.NextBurst()
		if len(oa) != len(ob) {
			t.Fatalf("burst %d: lengths differ", i)
		}
		for j := range oa {
			if oa[j].Insert != ob[j].Insert || oa[j].Pos != ob[j].Pos || oa[j].Rule != ob[j].Rule {
				t.Fatalf("burst %d op %d: same seed, different op", i, j)
			}
		}
	}
	ma, mb := a.Mirror(), b.Mirror()
	if len(ma) != len(mb) {
		t.Fatal("same seed, different mirrors")
	}
	if err := a.CheckAccounting(ma); err != nil {
		t.Fatal(err)
	}
}

// TestFlappingChurnSoak drives conflict-heavy insert/delete bursts through
// the delta layer while reader goroutines classify continuously — run
// with -race. After the storm (including compactions folding mid-churn),
// the accounting identity base + inserts - deletes must hold
// element-for-element against the manager's snapshot, and classification
// must agree with the linear oracle over the final list.
func TestFlappingChurnSoak(t *testing.T) {
	m, base, pool := flappingManager(t)
	f := NewFlappingUpdater(base.Rules, pool.Rules, 903)
	trace, err := pktgen.Generate(base, pktgen.Config{Count: 500, Seed: 904, MatchFraction: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	hs := trace.Headers

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			out := make([]int, 64)
			for i := w; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				m.Classify(hs[i%len(hs)])
				lo := i % (len(hs) - 64)
				m.ClassifyBatch(hs[lo:lo+64], out)
			}
		}(w)
	}

	bursts := 120
	if testing.Short() {
		bursts = 30
	}
	for i := 0; i < bursts; i++ {
		if err := m.ApplyDelta(f.NextBurst()); err != nil {
			t.Fatalf("burst %d: %v", i, err)
		}
		if i%25 == 24 {
			if err := m.Compact(); err != nil && !errors.Is(err, update.ErrCompactionConflict) {
				t.Fatalf("compact at burst %d: %v", i, err)
			}
		}
	}
	close(stop)
	wg.Wait()

	snap, _ := m.Snapshot()
	if err := f.CheckAccounting(snap); err != nil {
		t.Fatal(err)
	}
	oracle := rules.NewRuleSet("oracle", snap)
	for _, h := range hs {
		if got, want := m.Classify(h), oracle.Match(h); got != want {
			t.Fatalf("post-soak Classify = %d, oracle %d", got, want)
		}
	}
	h := m.Health()
	if h.DeltaApplies != uint64(bursts) {
		t.Errorf("DeltaApplies = %d, want %d", h.DeltaApplies, bursts)
	}
	if h.Compactions == 0 {
		t.Error("soak never folded a compaction")
	}
	t.Logf("soak: %d bursts (%d inserts, %d deletes), %d compactions, %d mask scans",
		f.Bursts(), f.Inserts(), f.Deletes(), h.Compactions, h.MaskScans)
}
