// The cross-package robustness suite: every injector drives a real
// runtime component — the parallel engine, the update manager, the SRAM
// image loader, the pipeline simulator — and asserts the failure is
// contained to a defined outcome: an error result, a refused swap, a
// rollback, or a counted shed. Never a crash, never a leaked goroutine.
package faultinject

import (
	"bytes"
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/expcuts"
	"repro/internal/memlayout"
	"repro/internal/nptrace"
	"repro/internal/pipeline"
	"repro/internal/pktgen"
	"repro/internal/rulegen"
	"repro/internal/rules"
	"repro/internal/update"
)

func fixtures(t *testing.T, n int) (*rules.RuleSet, *expcuts.Tree, []rules.Header) {
	t.Helper()
	rs, err := rulegen.Generate(rulegen.Config{Kind: rulegen.Firewall, Size: 100, Seed: 601})
	if err != nil {
		t.Fatal(err)
	}
	tree, err := expcuts.New(rs, expcuts.Config{})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := pktgen.Generate(rs, pktgen.Config{Count: n, Seed: 602, MatchFraction: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	return rs, tree, tr.Headers
}

func waitNoLeaks(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= base {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d now vs %d at start\n%s",
				runtime.NumGoroutine(), base, buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestEveryFailureModeDegradesGracefully is the acceptance matrix of the
// hardened runtime: one subtest per injected fault class.
func TestEveryFailureModeDegradesGracefully(t *testing.T) {
	rs, tree, headers := fixtures(t, 4000)

	t.Run("worker-panic", func(t *testing.T) {
		base := runtime.NumGoroutine()
		panicky := &PanickyClassifier{Inner: tree, EveryN: 250}
		var contained int
		st, err := engine.Run(panicky, engine.Config{Workers: 8, PreserveOrder: true}, headers,
			func(r engine.Result) {
				if r.Err != nil {
					contained++
				}
			})
		if err == nil {
			t.Error("run with injected panics reported success")
		}
		if contained == 0 || st.Panics != contained {
			t.Errorf("contained %d panics, stats say %d", contained, st.Panics)
		}
		if st.Packets+st.Panics != len(headers) {
			t.Errorf("packet accounting broken: %+v over %d headers", st, len(headers))
		}
		waitNoLeaks(t, base)
	})

	t.Run("deadline-expiry", func(t *testing.T) {
		base := runtime.NumGoroutine()
		slow := &SlowClassifier{Inner: tree, EveryN: 1, Delay: 100 * time.Microsecond}
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Millisecond)
		defer cancel()
		st, err := engine.RunContext(ctx, slow, engine.Config{Workers: 2}, headers, func(engine.Result) {})
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Errorf("err = %v, want deadline exceeded", err)
		}
		if st.Canceled == 0 {
			t.Error("nothing marked canceled on an expired deadline")
		}
		waitNoLeaks(t, base)
	})

	t.Run("overload-shed", func(t *testing.T) {
		base := runtime.NumGoroutine()
		slow := &SlowClassifier{Inner: tree, EveryN: 1, Delay: 30 * time.Microsecond}
		st, err := engine.Run(slow,
			engine.Config{Workers: 1, QueueDepth: 1, Overload: engine.OverloadShed},
			headers, func(engine.Result) {})
		if err != nil {
			t.Errorf("shedding must not fail the run: %v", err)
		}
		if st.Shed == 0 {
			t.Error("overloaded run shed nothing")
		}
		if st.Packets+st.Shed != len(headers) {
			t.Errorf("shed accounting broken: %+v", st)
		}
		waitNoLeaks(t, base)
	})

	t.Run("builder-failure", func(t *testing.T) {
		fb := &FlakyBuilder{
			Inner:    func(r *rules.RuleSet) (update.Classifier, error) { return expcuts.New(r, expcuts.Config{}) },
			Failures: 1,
		}
		// One scripted failure inside a 2-attempt budget: the initial
		// build retries and succeeds.
		m, err := update.NewManagerConfig(rs, fb.Build, update.Config{
			MaxBuildAttempts: 2,
			BackoffBase:      time.Microsecond,
		})
		if err != nil {
			t.Fatalf("manager failed despite retry budget: %v", err)
		}
		if got := fb.Attempts(); got != 2 {
			t.Errorf("builder attempts = %d, want 2", got)
		}
		if h := m.Health(); h.BuildRetries != 1 {
			t.Errorf("BuildRetries = %d, want 1", h.BuildRetries)
		}
		// A permanently failing builder exhausts its budget and refuses
		// to construct at all.
		broken, err2 := update.NewManagerConfig(rs, FailingBuilder, update.Config{
			MaxBuildAttempts: 2, BackoffBase: time.Microsecond,
		})
		if err2 == nil || broken != nil {
			t.Error("manager built with a builder that can never succeed")
		}
		if !errors.Is(err2, ErrInjectedBuild) {
			t.Errorf("err = %v, want ErrInjectedBuild in the chain", err2)
		}
	})

	t.Run("miscompiled-candidate", func(t *testing.T) {
		good := func(r *rules.RuleSet) (update.Classifier, error) { return expcuts.New(r, expcuts.Config{}) }
		builds := 0
		m, err := update.NewManager(rs, func(r *rules.RuleSet) (update.Classifier, error) {
			builds++
			if builds == 1 {
				return good(r)
			}
			cl, err := good(r)
			if err != nil {
				return nil, err
			}
			return &WrongClassifier{Inner: cl, EveryN: 7}, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		genBefore := m.Generation()
		op := update.InsertAt(0, rules.Rule{
			SrcPort: rules.FullPortRange, DstPort: rules.FullPortRange, Proto: rules.AnyProto,
		})
		if err := m.Apply([]update.Op{op}); err == nil {
			t.Fatal("shadow validation let a lying classifier go live")
		}
		if m.Generation() != genBefore {
			t.Error("generation advanced past a rejected candidate")
		}
		if h := m.Health(); h.FailedValidations == 0 {
			t.Errorf("health did not count the rejection: %+v", h)
		}
	})

	t.Run("corrupt-image", func(t *testing.T) {
		var buf bytes.Buffer
		if err := tree.Image().Save(&buf); err != nil {
			t.Fatal(err)
		}
		clean := buf.Bytes()
		if _, err := memlayout.LoadImage(bytes.NewReader(clean)); err != nil {
			t.Fatalf("clean image rejected: %v", err)
		}
		// Every seeded corruption and truncation must load as an error.
		for seed := int64(1); seed <= 20; seed++ {
			if _, err := memlayout.LoadImage(bytes.NewReader(Corrupt(clean, seed))); err == nil {
				t.Errorf("seed %d: corrupted image loaded cleanly", seed)
			}
		}
		for _, n := range []int{0, 3, 4, 7, 8, len(clean) / 2, len(clean) - 1} {
			if _, err := memlayout.LoadImage(bytes.NewReader(Truncate(clean, n))); err == nil {
				t.Errorf("truncation to %d bytes loaded cleanly", n)
			}
		}
	})

	t.Run("corrupt-program", func(t *testing.T) {
		// A program pointing at a nonexistent SRAM channel must be refused
		// by validation, not crash the simulator.
		progs := []nptrace.Program{{Steps: []nptrace.Step{{Channel: 9, Words: 1}}}}
		if _, err := pipeline.RunMultiprocessing(pipeline.DefaultAppConfig(), progs, 100); err == nil {
			t.Error("out-of-range channel accepted by the pipeline")
		}
	})
}

// TestInjectorsAreDeterministic pins the reproducibility contract.
func TestInjectorsAreDeterministic(t *testing.T) {
	data := []byte("the quick brown fox jumps over the lazy dog")
	if !bytes.Equal(Corrupt(data, 7), Corrupt(data, 7)) {
		t.Error("Corrupt is not deterministic for a fixed seed")
	}
	if bytes.Equal(Corrupt(data, 7), Corrupt(data, 8)) {
		t.Error("different seeds produced identical corruption (possible, but this pair is pinned)")
	}
	if bytes.Equal(Corrupt(data, 7), data) {
		t.Error("Corrupt returned the input unchanged")
	}
	flipped := FlipBit(data, 11)
	if bytes.Equal(flipped, data) {
		t.Error("FlipBit changed nothing")
	}
	if !bytes.Equal(FlipBit(flipped, 11), data) {
		t.Error("FlipBit is not an involution")
	}
	p := &PanickyClassifier{Inner: FixedClassifier{Match: 3}, EveryN: 2}
	if got := p.Classify(rules.Header{}); got != 3 {
		t.Errorf("call 1 = %d, want 3", got)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("call 2 did not panic with EveryN=2")
			}
		}()
		p.Classify(rules.Header{})
	}()
	if p.Calls() != 2 {
		t.Errorf("Calls = %d, want 2", p.Calls())
	}
}
