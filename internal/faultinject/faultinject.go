// Package faultinject provides deterministic, seedable fault injectors
// for the classification runtime: classifiers that panic, stall or lie on
// chosen packets, builders that fail a scripted number of times, and
// corruptors for serialized SRAM images. The cross-package robustness
// suite uses them to prove that every failure mode degrades gracefully —
// a contained error, a refused swap, a rollback or a counted shed — never
// a crashed worker, a leaked goroutine or a silently wrong answer.
//
// All injectors are deterministic: faults fire on a fixed cadence
// (EveryN) or from a seeded PRNG, so a failing test reproduces exactly.
package faultinject

import (
	"errors"
	"fmt"
	"math/rand"
	"sync/atomic"
	"time"

	"repro/internal/rules"
	"repro/internal/update"
)

// Classifier is the minimal lookup surface the injectors wrap; it matches
// both engine.Classifier and update.Classifier.
type Classifier interface {
	Classify(h rules.Header) int
}

// PanickyClassifier panics on every Nth call (1-based: with EveryN=3,
// calls 3, 6, 9... panic); other calls delegate to Inner. The counter is
// atomic, so it injects deterministically *many* faults under concurrency
// even though which packet draws one depends on scheduling.
type PanickyClassifier struct {
	Inner  Classifier
	EveryN uint64
	count  atomic.Uint64
}

// ErrInjectedPanic is the root of the value PanickyClassifier panics
// with (the panic value is a string naming the failing call).
var ErrInjectedPanic = errors.New("faultinject: injected classifier panic")

func (p *PanickyClassifier) Classify(h rules.Header) int {
	if n := p.count.Add(1); p.EveryN > 0 && n%p.EveryN == 0 {
		panic(fmt.Sprintf("%v (call %d)", ErrInjectedPanic, n))
	}
	return p.Inner.Classify(h)
}

// Calls reports how many lookups the injector has seen.
func (p *PanickyClassifier) Calls() uint64 { return p.count.Load() }

// SlowClassifier sleeps Delay on every Nth call before delegating —
// used to trip per-run deadlines and fill dispatch rings.
type SlowClassifier struct {
	Inner  Classifier
	EveryN uint64
	Delay  time.Duration
	count  atomic.Uint64
}

func (s *SlowClassifier) Classify(h rules.Header) int {
	if n := s.count.Add(1); s.EveryN > 0 && n%s.EveryN == 0 {
		time.Sleep(s.Delay)
	}
	return s.Inner.Classify(h)
}

// WrongClassifier returns a deliberately wrong match on every Nth call:
// the inner answer plus one (or 0 when the inner answer was no-match).
// It models a miscompiled generation that the update layer's shadow
// conformance check must catch before the swap.
type WrongClassifier struct {
	Inner  Classifier
	EveryN uint64
	count  atomic.Uint64
}

func (w *WrongClassifier) Classify(h rules.Header) int {
	match := w.Inner.Classify(h)
	if n := w.count.Add(1); w.EveryN > 0 && n%w.EveryN == 0 {
		if match < 0 {
			return 0
		}
		return match + 1
	}
	return match
}

// MemoryBytes lets the wrong classifier pose as an update.Classifier.
func (w *WrongClassifier) MemoryBytes() int {
	if m, ok := w.Inner.(interface{ MemoryBytes() int }); ok {
		return m.MemoryBytes()
	}
	return 0
}

// FixedClassifier answers the same match for every header — a stand-in
// for trivially broken generations.
type FixedClassifier struct{ Match int }

func (f FixedClassifier) Classify(rules.Header) int { return f.Match }

// MemoryBytes lets the fixed classifier pose as an update.Classifier.
func (f FixedClassifier) MemoryBytes() int { return 4 }

// ErrInjectedBuild is the error FlakyBuilder and FailingBuilder return.
var ErrInjectedBuild = errors.New("faultinject: injected build failure")

// FlakyBuilder wraps an update.Builder so its first Failures calls fail
// with ErrInjectedBuild and subsequent calls delegate. Attempts counts
// every call.
type FlakyBuilder struct {
	Inner    update.Builder
	Failures int64
	attempts atomic.Int64
}

// Build is the update.Builder; pass fb.Build to the manager.
func (fb *FlakyBuilder) Build(rs *rules.RuleSet) (update.Classifier, error) {
	if n := fb.attempts.Add(1); n <= fb.Failures {
		return nil, fmt.Errorf("%w (attempt %d of %d scripted failures)", ErrInjectedBuild, n, fb.Failures)
	}
	return fb.Inner(rs)
}

// Attempts reports how many times the builder has been invoked.
func (fb *FlakyBuilder) Attempts() int64 { return fb.attempts.Load() }

// FailingBuilder always fails — for proving Apply leaves the live
// generation untouched when no candidate can ever be built.
func FailingBuilder(*rules.RuleSet) (update.Classifier, error) {
	return nil, ErrInjectedBuild
}

// FlipBit returns a copy of data with the given bit inverted (bit indexes
// run LSB-first within each byte). It panics if the index is out of
// range — the injector itself must be used correctly.
func FlipBit(data []byte, bit int) []byte {
	if bit < 0 || bit >= len(data)*8 {
		panic(fmt.Sprintf("faultinject: bit %d out of range for %d bytes", bit, len(data)))
	}
	out := append([]byte(nil), data...)
	out[bit/8] ^= 1 << (bit % 8)
	return out
}

// Truncate returns the first n bytes of data (n clamped to len(data)).
func Truncate(data []byte, n int) []byte {
	if n < 0 {
		n = 0
	}
	if n > len(data) {
		n = len(data)
	}
	return append([]byte(nil), data[:n]...)
}

// Corrupt returns a seeded random corruption of data: between 1 and 8
// bit flips at PRNG-chosen positions. Identical (data, seed) pairs yield
// identical corruptions.
func Corrupt(data []byte, seed int64) []byte {
	if len(data) == 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(seed))
	out := append([]byte(nil), data...)
	for i, n := 0, 1+rng.Intn(8); i < n; i++ {
		bit := rng.Intn(len(out) * 8)
		out[bit/8] ^= 1 << (bit % 8)
	}
	return out
}
