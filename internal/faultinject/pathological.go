package faultinject

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync/atomic"
	"time"

	"repro/internal/buildgov"
	"repro/internal/rules"
	"repro/internal/update"
)

// This file holds the *build-time* adversaries: rule-set generators that
// blow decision trees and cross-product tables up, and builders that
// stall or eat memory. They exist to prove the build-governance layer —
// a budgeted build over any of these must abort cooperatively, never
// hang or OOM.

// OverlapGrid generates a g×g grid of rules whose source/destination
// port ranges partially overlap their neighbors and are deliberately
// misaligned with power-of-two boundaries. Both IPs and the protocol are
// wildcards, so no cut along those dimensions separates anything, and
// the overlapping ranges force heavy rule replication in decision-tree
// builders (every cut that splits a range copies the rule into both
// children) while producing Θ(g) segments and many distinct equivalence
// classes in cross-producting schemes. Memory and build time grow
// super-linearly in g; g of a few dozen is enough to trip a small
// budget. The result is deterministic in (name, g).
func OverlapGrid(name string, g int) *rules.RuleSet {
	if g < 1 {
		g = 1
	}
	// Each range spans 1.5 steps, so range i overlaps range i+1 by half
	// a step; the +1 offset keeps boundaries off power-of-two multiples.
	step := 65534 / (g + 1)
	if step < 2 {
		step = 2
	}
	span := func(i int) rules.PortRange {
		lo := i*step + 1
		hi := lo + step + step/2
		if hi > 65535 {
			hi = 65535
		}
		return rules.PortRange{Lo: uint16(lo), Hi: uint16(hi)}
	}
	rs := make([]rules.Rule, 0, g*g)
	for i := 0; i < g; i++ {
		for j := 0; j < g; j++ {
			rs = append(rs, rules.Rule{
				SrcPort: span(i),
				DstPort: span(j),
				Proto:   rules.ProtoMatch{Wildcard: true},
				Action:  rules.Action(uint8((i + j) % 2)),
			})
		}
	}
	return rules.NewRuleSet(name, rs)
}

// WildcardStorm generates n rules that are wildcard in all but one
// randomly chosen field, where they carry a random point value (a /32
// host, an exact port or an exact protocol). Almost every pair of rules
// overlaps, so binth=1 builders (ExpCuts) must cut until single-bit
// resolution while replicating the storm of wildcards into every child —
// the paper's worst case for tree size. Identical (seed, n) pairs yield
// identical sets.
func WildcardStorm(name string, n int, seed int64) *rules.RuleSet {
	rng := rand.New(rand.NewSource(seed))
	rs := make([]rules.Rule, 0, n)
	for i := 0; i < n; i++ {
		r := rules.Rule{
			SrcPort: rules.PortRange{Lo: 0, Hi: 65535},
			DstPort: rules.PortRange{Lo: 0, Hi: 65535},
			Proto:   rules.ProtoMatch{Wildcard: true},
			Action:  rules.Action(uint8(i % 2)),
		}
		switch rng.Intn(5) {
		case 0:
			r.SrcIP = rules.Prefix{Addr: rng.Uint32(), Len: 32}
		case 1:
			r.DstIP = rules.Prefix{Addr: rng.Uint32(), Len: 32}
		case 2:
			p := uint16(rng.Intn(65536))
			r.SrcPort = rules.PortRange{Lo: p, Hi: p}
		case 3:
			p := uint16(rng.Intn(65536))
			r.DstPort = rules.PortRange{Lo: p, Hi: p}
		case 4:
			r.Proto = rules.ProtoMatch{Value: uint8(rng.Intn(256))}
		}
		rs = append(rs, r)
	}
	return rules.NewRuleSet(name, rs)
}

// ErrInjectedStall is the error StalledBuilder returns when its stall
// ran to completion without being canceled.
var ErrInjectedStall = errors.New("faultinject: injected build stall")

// StalledBuilder models a build that has stopped making progress: Build
// blocks for Stall (default: forever) or until ctx is canceled,
// whichever comes first, and fails either way. It is ctx-cooperative —
// exactly the contract buildgov demands of real builders — so it proves
// the manager's BuildTimeout actually unblocks a wedged rung.
type StalledBuilder struct {
	// Stall bounds the block; zero blocks until ctx cancellation (tests
	// that want a hang-unless-canceled should leave it zero and rely on
	// the manager's BuildTimeout).
	Stall time.Duration
	calls atomic.Int64
}

// Build is an update.BuilderCtx.
func (sb *StalledBuilder) Build(ctx context.Context, _ *rules.RuleSet) (update.Classifier, error) {
	sb.calls.Add(1)
	var expired <-chan time.Time
	if sb.Stall > 0 {
		t := time.NewTimer(sb.Stall)
		defer t.Stop()
		expired = t.C
	}
	select {
	case <-ctx.Done():
		return nil, fmt.Errorf("faultinject: stalled build canceled: %w", ctx.Err())
	case <-expired:
		return nil, ErrInjectedStall
	}
}

// Calls reports how many times the builder was invoked.
func (sb *StalledBuilder) Calls() int64 { return sb.calls.Load() }

// HungryBuilder models a runaway allocator: Build charges ChunkBytes
// per iteration against Budget through a buildgov.Governor until the
// governor trips (byte cap, deadline or ctx cancellation), then returns
// the governor's BudgetError — it never actually allocates. With a
// Budget that caps nothing and no ctx deadline it gives up after
// maxHungryChunks iterations so a misconfigured test fails instead of
// spinning forever.
type HungryBuilder struct {
	// Budget is the budget charged; nil means ctx-only governance.
	Budget *buildgov.Budget
	// ChunkBytes is the per-iteration charge (default 1 MiB).
	ChunkBytes int64
	calls      atomic.Int64
}

const maxHungryChunks = 1 << 20

// Build is an update.BuilderCtx.
func (hb *HungryBuilder) Build(ctx context.Context, _ *rules.RuleSet) (update.Classifier, error) {
	hb.calls.Add(1)
	chunk := hb.ChunkBytes
	if chunk <= 0 {
		chunk = 1 << 20
	}
	gov := buildgov.Start(ctx, hb.Budget)
	for i := 0; i < maxHungryChunks; i++ {
		if err := gov.Bytes(chunk); err != nil {
			return nil, err
		}
	}
	return nil, fmt.Errorf("%w: hungry build ran %d chunks without tripping any budget", ErrInjectedBuild, maxHungryChunks)
}

// Calls reports how many times the builder was invoked.
func (hb *HungryBuilder) Calls() int64 { return hb.calls.Load() }
