package faultinject

import (
	"fmt"
	"math/rand"

	"repro/internal/rules"
	"repro/internal/update"
)

// FlappingUpdater generates adversarial delta-churn bursts: the same
// rules inserted and deleted again within a burst or two — the flapping
// pattern that stresses positional remapping, delete masking, journal
// replay and the tuple-space free list hardest, because almost every op
// conflicts with a recent one instead of landing in fresh space.
//
// The updater keeps an exact local mirror of the rule list it believes
// the manager holds, so every generated position is valid by
// construction and CheckAccounting can verify the identity
//
//	len(live) == len(base) + inserts - deletes
//
// element-for-element after any number of bursts. It is deterministic
// from its seed and is NOT safe for concurrent use: drive it from one
// goroutine and feed the bursts to the manager in order.
type FlappingUpdater struct {
	rng    *rand.Rand
	pool   []rules.Rule // rules flapped in and out
	mirror []rules.Rule // what the manager's snapshot must equal
	base   int          // starting rule count
	minLen int          // never delete below this
	// flapPos remembers where the last flap insert landed so the next
	// burst can delete exactly that rule (cross-burst conflict).
	flapPos int
	inserts int
	deletes int
	bursts  int
}

// NewFlappingUpdater returns an updater over base (the manager's initial
// snapshot) drawing flap rules from pool. Deterministic per seed.
func NewFlappingUpdater(base, pool []rules.Rule, seed int64) *FlappingUpdater {
	if len(pool) == 0 {
		panic("faultinject: FlappingUpdater needs a non-empty rule pool")
	}
	minLen := len(base) / 2
	if minLen < 1 {
		minLen = 1
	}
	return &FlappingUpdater{
		rng:     rand.New(rand.NewSource(seed)),
		pool:    append([]rules.Rule(nil), pool...),
		mirror:  append([]rules.Rule(nil), base...),
		base:    len(base),
		minLen:  minLen,
		flapPos: -1,
	}
}

// NextBurst generates the next burst of ops and applies it to the local
// mirror. Bursts are deliberately conflict-heavy: roughly half are
// insert-then-delete of the same rule (within the burst or against the
// previous burst's insert); the rest drift the list size up and down.
func (f *FlappingUpdater) NextBurst() []update.Op {
	f.bursts++
	var ops []update.Op
	switch f.rng.Intn(4) {
	case 0: // same-burst flap: insert a rule and delete it again at once
		pos := f.rng.Intn(len(f.mirror) + 1)
		r := f.pool[f.rng.Intn(len(f.pool))]
		ops = append(ops, update.InsertAt(pos, r), update.DeleteAt(pos))
		f.applyInsert(pos, r)
		f.applyDelete(pos)
	case 1: // cross-burst flap: insert now, schedule deletion next burst
		if f.flapPos >= 0 && f.flapPos < len(f.mirror) && len(f.mirror) > f.minLen {
			ops = append(ops, update.DeleteAt(f.flapPos))
			f.applyDelete(f.flapPos)
		}
		pos := f.rng.Intn(len(f.mirror) + 1)
		r := f.pool[f.rng.Intn(len(f.pool))]
		ops = append(ops, update.InsertAt(pos, r))
		f.applyInsert(pos, r)
		f.flapPos = pos
	case 2: // growth: a couple of plain inserts
		for k := 0; k < 1+f.rng.Intn(2); k++ {
			pos := f.rng.Intn(len(f.mirror) + 1)
			r := f.pool[f.rng.Intn(len(f.pool))]
			ops = append(ops, update.InsertAt(pos, r))
			f.applyInsert(pos, r)
			if pos <= f.flapPos {
				f.flapPos++
			}
		}
	default: // shrink: delete a random survivor (respecting the floor)
		if len(f.mirror) > f.minLen {
			pos := f.rng.Intn(len(f.mirror))
			ops = append(ops, update.DeleteAt(pos))
			f.applyDelete(pos)
			if pos == f.flapPos {
				f.flapPos = -1
			} else if pos < f.flapPos {
				f.flapPos--
			}
		} else {
			pos := f.rng.Intn(len(f.mirror) + 1)
			r := f.pool[f.rng.Intn(len(f.pool))]
			ops = append(ops, update.InsertAt(pos, r))
			f.applyInsert(pos, r)
		}
	}
	return ops
}

func (f *FlappingUpdater) applyInsert(pos int, r rules.Rule) {
	f.mirror = append(f.mirror, rules.Rule{})
	copy(f.mirror[pos+1:], f.mirror[pos:])
	f.mirror[pos] = r
	f.inserts++
}

func (f *FlappingUpdater) applyDelete(pos int) {
	f.mirror = append(f.mirror[:pos], f.mirror[pos+1:]...)
	f.deletes++
}

// Mirror returns the rule list the manager must now hold (a copy).
func (f *FlappingUpdater) Mirror() []rules.Rule {
	return append([]rules.Rule(nil), f.mirror...)
}

// Bursts, Inserts and Deletes report lifetime totals.
func (f *FlappingUpdater) Bursts() int  { return f.bursts }
func (f *FlappingUpdater) Inserts() int { return f.inserts }
func (f *FlappingUpdater) Deletes() int { return f.deletes }

// CheckAccounting verifies the accounting identity against a live
// snapshot: the size must satisfy base + inserts - deletes, and every
// rule must match the mirror positionally. A non-nil error means an edit
// was lost, doubled or landed at the wrong priority.
func (f *FlappingUpdater) CheckAccounting(live []rules.Rule) error {
	want := f.base + f.inserts - f.deletes
	if len(f.mirror) != want {
		return fmt.Errorf("faultinject: mirror corrupt: %d rules, identity says %d", len(f.mirror), want)
	}
	if len(live) != want {
		return fmt.Errorf("faultinject: accounting identity broken: live %d rules, base %d + %d inserts - %d deletes = %d",
			len(live), f.base, f.inserts, f.deletes, want)
	}
	for i := range live {
		if live[i] != f.mirror[i] {
			return fmt.Errorf("faultinject: rule %d diverged from mirror after %d bursts", i, f.bursts)
		}
	}
	return nil
}
