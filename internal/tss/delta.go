package tss

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/rules"
)

// Op is one rule-list modification against the combined view. Positions
// are combined-list indices (the same priority space update.Manager's Op
// uses), so a caller can feed the identical edit stream to the delta
// layer and to a full rebuild and get the identical rule list.
type Op struct {
	// Insert, when set, adds Rule at Pos; otherwise the op deletes Pos.
	Insert bool
	Rule   rules.Rule
	Pos    int
}

// Delta is an immutable view of "tree base + absorbed edits": the base
// rule snapshot a decision tree was built from, the combined current rule
// list after every absorbed insert/delete, and the tuple-space table
// holding the inserted rules. Apply is copy-on-write — it returns a new
// Delta and never mutates the receiver — so a published Delta can be read
// lock-free forever, exactly like a published tree generation.
//
// Index plumbing: the tree answers in *base* indices; callers want
// *combined* indices (the list Snapshot exposes). remap translates base
// to combined (-1 = the base rule was deleted and must not be served);
// src translates combined back to provenance (>= 0: base index, < 0:
// ^slabHandle of a delta-inserted rule). Inserts and deletes preserve the
// relative order of surviving base rules, which is what makes Resolve's
// min-position merge correct.
type Delta struct {
	base  []rules.Rule // tree generation's snapshot (shared, immutable)
	cur   []rules.Rule // combined list (immutable once published)
	remap []int32      // base index -> combined index, -1 when masked
	src   []int32      // combined index -> base index or ^handle
	tab   *Table       // delta-inserted rules keyed by prefix tuple
	dead  int          // masked base rules
	ops   int          // ops absorbed since base

	// maskScans counts Resolve calls that had to fall back to scanning
	// base survivors because the tree's best match was masked by a delete.
	// Shared across every clone in a delta chain (obs.Counter is nil-safe,
	// so an unwired Delta costs nothing).
	maskScans *obs.Counter
}

// NewDelta returns the empty delta over base: combined == base, nothing
// inserted, nothing masked. maskScans may be nil.
func NewDelta(base []rules.Rule, maskScans *obs.Counter) *Delta {
	remap := make([]int32, len(base))
	src := make([]int32, len(base))
	for i := range base {
		remap[i] = int32(i)
		src[i] = int32(i)
	}
	return &Delta{
		base: base, cur: base, remap: remap, src: src,
		tab: NewTable(), maskScans: maskScans,
	}
}

// Apply absorbs a batch of ops and returns the resulting Delta, leaving
// the receiver untouched. The batch is atomic: any invalid op fails the
// whole batch with no observable effect. Cost is O(ops × (base + table))
// int32 sweeps plus O(1) hash-table work per op — microseconds at any
// realistic delta size, no tree build anywhere.
func (d *Delta) Apply(ops []Op) (*Delta, error) {
	nd := &Delta{
		base:      d.base,
		cur:       append([]rules.Rule(nil), d.cur...),
		remap:     append([]int32(nil), d.remap...),
		src:       append([]int32(nil), d.src...),
		tab:       d.tab.Clone(),
		dead:      d.dead,
		ops:       d.ops,
		maskScans: d.maskScans,
	}
	for i, op := range ops {
		if op.Insert {
			nd.insertAt(op.Pos, op.Rule)
			continue
		}
		if op.Pos < 0 || op.Pos >= len(nd.cur) {
			return nil, fmt.Errorf("tss: op %d deletes position %d of %d rules", i, op.Pos, len(nd.cur))
		}
		nd.deleteAt(op.Pos)
	}
	if len(nd.cur) == 0 {
		return nil, fmt.Errorf("tss: batch would empty the rule set")
	}
	nd.ops += len(ops)
	return nd, nil
}

func (d *Delta) insertAt(pos int, r rules.Rule) {
	if pos < 0 {
		pos = 0
	}
	if pos > len(d.cur) {
		pos = len(d.cur)
	}
	p := int32(pos)
	d.tab.ShiftUp(p)
	for b := range d.remap {
		if d.remap[b] != none && d.remap[b] >= p {
			d.remap[b]++
		}
	}
	h := d.tab.Insert(r, p)
	d.src = append(d.src, 0)
	copy(d.src[pos+1:], d.src[pos:])
	d.src[pos] = ^h
	d.cur = append(d.cur, rules.Rule{})
	copy(d.cur[pos+1:], d.cur[pos:])
	d.cur[pos] = r
}

func (d *Delta) deleteAt(pos int) {
	p := int32(pos)
	if s := d.src[pos]; s >= 0 {
		d.remap[s] = none // mask: the tree may still return s, Resolve hides it
		d.dead++
	} else {
		d.tab.Delete(^s)
	}
	d.tab.ShiftDown(p)
	for b := range d.remap {
		if d.remap[b] != none && d.remap[b] > p {
			d.remap[b]--
		}
	}
	d.src = append(d.src[:pos], d.src[pos+1:]...)
	d.cur = append(d.cur[:pos], d.cur[pos+1:]...)
}

// Resolve merges the tree's answer with the delta table: treeMatch is the
// tree classifier's base-index answer for h (-1 = no match), and the
// return value is the combined-list index of the true first match (-1 =
// none). Allocation-free.
//
// Correctness: surviving base rules keep their relative order in the
// combined list, so the first *surviving* base rule matching h (in base
// order) has the minimum combined index among all base matchers; the
// table's Lookup returns the minimum combined index among all inserted
// matchers; the smaller of the two is the combined first match. When the
// tree's best match was deleted, the next base matcher is found with a
// linear scan over base survivors from treeMatch+1 — the one place the
// delta layer pays more than hash probes, counted in maskScans and rare
// by construction (it needs a deleted rule to be the tree's best match
// for the very header being classified).
func (d *Delta) Resolve(h rules.Header, treeMatch int) int {
	best := none
	if treeMatch >= 0 {
		tc := d.remap[treeMatch]
		if tc == none {
			d.maskScans.Inc()
			for b := treeMatch + 1; b < len(d.base); b++ {
				if d.remap[b] != none && d.base[b].Matches(h) {
					tc = d.remap[b]
					break
				}
			}
		}
		best = tc
	}
	if t := d.tab.Lookup(h); t != none && (best == none || t < best) {
		best = t
	}
	return int(best)
}

// ResolveBatch resolves a whole batch in place: out[i] holds the tree's
// base-index answer for hs[i] on entry and the combined-list answer on
// return. Allocation-free, preserving the serving path's 0 allocs/op.
func (d *Delta) ResolveBatch(hs []rules.Header, out []int) {
	for i := range hs {
		out[i] = d.Resolve(hs[i], out[i])
	}
}

// Rules returns the combined rule list. Callers must not modify it.
func (d *Delta) Rules() []rules.Rule { return d.cur }

// Base returns the tree snapshot this delta layers over.
func (d *Delta) Base() []rules.Rule { return d.base }

// Len returns the combined rule count.
func (d *Delta) Len() int { return len(d.cur) }

// Inserted returns the number of live delta-inserted rules.
func (d *Delta) Inserted() int { return d.tab.Len() }

// Dead returns the number of masked (deleted) base rules.
func (d *Delta) Dead() int { return d.dead }

// Ops returns the total ops absorbed since base — the compaction
// trigger's input.
func (d *Delta) Ops() int { return d.ops }

// Empty reports whether the delta has absorbed no ops.
func (d *Delta) Empty() bool { return d.ops == 0 }

// MemoryBytes estimates the delta's own footprint (table plus index
// arrays; the base and combined lists are attributed to the generations
// that own them).
func (d *Delta) MemoryBytes() int {
	return d.tab.MemoryBytes() + 4*(len(d.remap)+len(d.src))
}
