// Package tss implements a priority-aware tuple-space side table — the
// delta layer that absorbs live rule churn without rebuilding the serving
// decision tree. Tuple space search (the TSS family the paper's related
// work explores for NP routers) groups rules by their (source prefix
// length, destination prefix length) tuple: within one tuple, a rule is
// identified by its masked addresses, so lookup is one hash probe per
// tuple and insert/delete are O(1) hash-table operations. That update
// cost is the whole point here: decision trees buy lookup speed with
// build time, tuple spaces buy update speed with a bounded set of probes,
// and the delta layer pairs them — the tree serves the stable bulk, the
// tuple table serves the churn, and a background compaction folds the
// table back into the next tree build.
//
// Storage follows the repository's slab idiom (internal/flowcache): table
// entries live in a preallocated-and-grown slab linked by int32 indices,
// with a free list for O(1) reuse, so steady-state insert/delete performs
// no per-entry allocation beyond slab growth and lookups chase int32
// links, not heap pointers.
package tss

import (
	"fmt"

	"repro/internal/rules"
)

// none marks an empty link or absent slot.
const none = int32(-1)

// entry is one slab slot: a delta-inserted rule, its tuple-space key, and
// its current priority position in the combined rule list.
type entry struct {
	rule rules.Rule
	key  uint64 // maskedSrc<<32 | maskedDst under the tuple's masks
	pos  int32  // current combined-list index; none when the slot is free
	next int32  // bucket chain link (key collisions impossible: map-keyed)
	tup  int32  // owning tuple index
}

// tuple is one (srcLen, dstLen) hash table: masked address pair -> chain
// of entries sharing that exact masked pair.
type tuple struct {
	srcLen, dstLen uint8
	buckets        map[uint64]int32 // key -> chain head in the slab
	live           int              // live entries in this tuple
}

// Table is the tuple-space side table. It is a mutable structure with no
// internal locking: the delta layer only ever mutates private clones and
// publishes them immutably (see Delta), mirroring how every other
// structure in this repository separates build-side mutation from
// lock-free serving.
type Table struct {
	tuples   []tuple
	tupIndex map[uint16]int32 // srcLen<<8|dstLen -> tuples index
	slab     []entry
	free     int32 // free-list head threaded through entry.next
	liveN    int
}

// NewTable returns an empty table.
func NewTable() *Table {
	return &Table{tupIndex: make(map[uint16]int32), free: none}
}

func maskOfLen(l uint8) uint32 {
	if l == 0 {
		return 0
	}
	return ^uint32(0) << (32 - uint(l))
}

// keyOf computes a rule's tuple-space key: both addresses masked to their
// prefix lengths, packed into one uint64. Two rules in the same tuple
// share a key exactly when they constrain the same address pair region,
// and a header masked the same way produces the same key exactly when it
// matches both prefixes — so the per-entry residue check is ports and
// protocol only.
func keyOf(srcAddr uint32, srcLen uint8, dstAddr uint32, dstLen uint8) uint64 {
	return uint64(srcAddr&maskOfLen(srcLen))<<32 | uint64(dstAddr&maskOfLen(dstLen))
}

// Insert adds rule r at combined-list position pos and returns its slab
// handle. O(1): one tuple lookup, one bucket-chain push. The caller owns
// position maintenance (ShiftUp/ShiftDown) around it.
func (t *Table) Insert(r rules.Rule, pos int32) int32 {
	tk := uint16(r.SrcIP.Len)<<8 | uint16(r.DstIP.Len)
	ti, ok := t.tupIndex[tk]
	if !ok {
		ti = int32(len(t.tuples))
		t.tuples = append(t.tuples, tuple{
			srcLen: r.SrcIP.Len, dstLen: r.DstIP.Len,
			buckets: make(map[uint64]int32),
		})
		t.tupIndex[tk] = ti
	}
	key := keyOf(r.SrcIP.Addr, r.SrcIP.Len, r.DstIP.Addr, r.DstIP.Len)
	var i int32
	if t.free != none {
		i = t.free
		t.free = t.slab[i].next
	} else {
		i = int32(len(t.slab))
		t.slab = append(t.slab, entry{})
	}
	tp := &t.tuples[ti]
	head, ok := tp.buckets[key]
	if !ok {
		head = none
	}
	t.slab[i] = entry{rule: r, key: key, pos: pos, next: head, tup: ti}
	tp.buckets[key] = i
	tp.live++
	t.liveN++
	return i
}

// Delete removes the entry behind handle. O(chain) within one bucket,
// which is O(1) for any realistic key distribution.
func (t *Table) Delete(handle int32) {
	e := &t.slab[handle]
	if e.pos == none {
		panic(fmt.Sprintf("tss: double delete of handle %d", handle))
	}
	tp := &t.tuples[e.tup]
	// Unlink from the bucket chain.
	if head := tp.buckets[e.key]; head == handle {
		if e.next == none {
			delete(tp.buckets, e.key)
		} else {
			tp.buckets[e.key] = e.next
		}
	} else {
		for j := head; j != none; j = t.slab[j].next {
			if t.slab[j].next == handle {
				t.slab[j].next = e.next
				break
			}
		}
	}
	tp.live--
	t.liveN--
	e.pos = none
	e.rule = rules.Rule{}
	e.next = t.free
	t.free = handle
}

// Pos returns the combined-list position stored for handle (none when
// freed). Exposed for the delta layer's bookkeeping assertions.
func (t *Table) Pos(handle int32) int32 {
	return t.slab[handle].pos
}

// ShiftUp increments the stored position of every live entry at or above
// pos — the bookkeeping for an insert at pos into the combined list.
// O(slab): a linear int32 sweep, the same cost class as the delta layer's
// remap sweep and far below any rebuild.
func (t *Table) ShiftUp(pos int32) {
	for i := range t.slab {
		if t.slab[i].pos != none && t.slab[i].pos >= pos {
			t.slab[i].pos++
		}
	}
}

// ShiftDown decrements the stored position of every live entry above pos
// — the bookkeeping for a delete at pos from the combined list.
func (t *Table) ShiftDown(pos int32) {
	for i := range t.slab {
		if t.slab[i].pos != none && t.slab[i].pos > pos {
			t.slab[i].pos--
		}
	}
}

// Lookup returns the minimum combined-list position among live entries
// matching h (the highest-priority delta rule), or -1 when none match.
// One hash probe per tuple; entries in a matched bucket need only their
// port ranges and protocol checked (the key equality already proved both
// prefixes). Allocation-free.
func (t *Table) Lookup(h rules.Header) int32 {
	best := none
	for ti := range t.tuples {
		tp := &t.tuples[ti]
		if tp.live == 0 {
			continue
		}
		key := keyOf(h.SrcIP, tp.srcLen, h.DstIP, tp.dstLen)
		i, ok := tp.buckets[key]
		if !ok {
			continue
		}
		for ; i != none; i = t.slab[i].next {
			e := &t.slab[i]
			if best != none && e.pos >= best {
				continue
			}
			if e.rule.SrcPort.Matches(h.SrcPort) &&
				e.rule.DstPort.Matches(h.DstPort) &&
				e.rule.Proto.Matches(h.Proto) {
				best = e.pos
			}
		}
	}
	return best
}

// Len returns the number of live entries.
func (t *Table) Len() int { return t.liveN }

// Tuples returns the number of distinct (srcLen, dstLen) tuples ever
// observed (tuples are retained when emptied; Lookup skips them in O(1)).
func (t *Table) Tuples() int { return len(t.tuples) }

// MemoryBytes estimates the table's footprint: slab entries plus bucket
// map overhead, the number a capacity planner would budget for the
// SRAM-resident side structure.
func (t *Table) MemoryBytes() int {
	const entryBytes = 40 // rule (26 packed) + key + links, rounded up
	b := len(t.slab) * entryBytes
	for i := range t.tuples {
		b += 16 + len(t.tuples[i].buckets)*16
	}
	return b
}

// Clone deep-copies the table. Used by the delta layer's copy-on-write
// Apply so published generations are immutable.
func (t *Table) Clone() *Table {
	nt := &Table{
		tuples:   make([]tuple, len(t.tuples)),
		tupIndex: make(map[uint16]int32, len(t.tupIndex)),
		slab:     append([]entry(nil), t.slab...),
		free:     t.free,
		liveN:    t.liveN,
	}
	for k, v := range t.tupIndex {
		nt.tupIndex[k] = v
	}
	for i := range t.tuples {
		src := &t.tuples[i]
		b := make(map[uint64]int32, len(src.buckets))
		for k, v := range src.buckets {
			b[k] = v
		}
		nt.tuples[i] = tuple{srcLen: src.srcLen, dstLen: src.dstLen, buckets: b, live: src.live}
	}
	return nt
}
