package tss

import (
	"math/rand"
	"testing"

	"repro/internal/obs"
	"repro/internal/pktgen"
	"repro/internal/rulegen"
	"repro/internal/rules"
)

func genRules(t *testing.T, n int, seed int64) *rules.RuleSet {
	t.Helper()
	rs, err := rulegen.Generate(rulegen.Config{Kind: rulegen.Firewall, Size: n, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return rs
}

func genHeaders(t *testing.T, rs *rules.RuleSet, n int, seed int64) []rules.Header {
	t.Helper()
	tr, err := pktgen.Generate(rs, pktgen.Config{Count: n, Seed: seed, MatchFraction: 0.85})
	if err != nil {
		t.Fatal(err)
	}
	return tr.Headers
}

func TestTableInsertLookupDelete(t *testing.T) {
	rs := genRules(t, 30, 601)
	tab := NewTable()
	handles := make([]int32, rs.Len())
	for i, r := range rs.Rules {
		handles[i] = tab.Insert(r, int32(i))
	}
	if tab.Len() != rs.Len() {
		t.Fatalf("Len = %d, want %d", tab.Len(), rs.Len())
	}
	for _, h := range genHeaders(t, rs, 500, 602) {
		if got, want := int(tab.Lookup(h)), rs.Match(h); got != want {
			t.Fatalf("Lookup(%v) = %d, linear oracle %d", h, got, want)
		}
	}
	// Delete the first half; lookups must now agree with the suffix set,
	// whose rules keep their original positions.
	for i := 0; i < rs.Len()/2; i++ {
		tab.Delete(handles[i])
	}
	for _, h := range genHeaders(t, rs, 500, 603) {
		want := -1
		for i := rs.Len() / 2; i < rs.Len(); i++ {
			if rs.Rules[i].Matches(h) {
				want = i
				break
			}
		}
		if got := int(tab.Lookup(h)); got != want {
			t.Fatalf("after deletes Lookup(%v) = %d, oracle %d", h, got, want)
		}
	}
	if tab.Len() != rs.Len()-rs.Len()/2 {
		t.Fatalf("Len after deletes = %d", tab.Len())
	}
	if tab.MemoryBytes() <= 0 || tab.Tuples() == 0 {
		t.Error("MemoryBytes / Tuples not positive")
	}
}

func TestTableShiftMaintainsPositions(t *testing.T) {
	tab := NewTable()
	r := rules.Rule{SrcPort: rules.FullPortRange, DstPort: rules.FullPortRange, Proto: rules.AnyProto}
	h0 := tab.Insert(r, 0)
	h5 := tab.Insert(r, 5)
	tab.ShiftUp(3) // an insert at 3 pushes position 5 to 6
	if tab.Pos(h0) != 0 || tab.Pos(h5) != 6 {
		t.Fatalf("after ShiftUp: pos(h0)=%d pos(h5)=%d", tab.Pos(h0), tab.Pos(h5))
	}
	tab.ShiftDown(2) // a delete at 2 pulls position 6 to 5
	if tab.Pos(h0) != 0 || tab.Pos(h5) != 5 {
		t.Fatalf("after ShiftDown: pos(h0)=%d pos(h5)=%d", tab.Pos(h0), tab.Pos(h5))
	}
}

// checkDelta verifies the delta's combined view against a linear oracle:
// the tree is stood in for by linear search over the base snapshot (same
// answers by the repository's conformance invariant), and the expected
// result is linear search over the combined list.
func checkDelta(t *testing.T, d *Delta, hs []rules.Header) {
	t.Helper()
	baseRS := rules.NewRuleSet("base", d.Base())
	curRS := rules.NewRuleSet("cur", d.Rules())
	for _, h := range hs {
		treeMatch := baseRS.Match(h)
		if got, want := d.Resolve(h, treeMatch), curRS.Match(h); got != want {
			t.Fatalf("Resolve(%v, tree=%d) = %d, combined oracle %d (ops=%d ins=%d dead=%d)",
				h, treeMatch, got, want, d.Ops(), d.Inserted(), d.Dead())
		}
	}
}

func TestDeltaMatchesOracleUnderRandomChurn(t *testing.T) {
	base := genRules(t, 60, 611)
	extra := genRules(t, 60, 612) // insertion material
	d := NewDelta(base.Rules, nil)
	hs := genHeaders(t, base, 400, 613)
	rng := rand.New(rand.NewSource(614))
	for round := 0; round < 30; round++ {
		var ops []Op
		for k := 0; k < 1+rng.Intn(4); k++ {
			if d.Len() > 5 && rng.Intn(2) == 0 {
				ops = append(ops, Op{Pos: rng.Intn(d.Len())})
			} else {
				r := extra.Rules[rng.Intn(extra.Len())]
				ops = append(ops, Op{Insert: true, Rule: r, Pos: rng.Intn(d.Len() + 1)})
			}
		}
		nd, err := d.Apply(ops)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		d = nd
		checkDelta(t, d, hs)
	}
	if d.Ops() == 0 || d.Inserted() == 0 {
		t.Errorf("churn accounting: ops=%d inserted=%d", d.Ops(), d.Inserted())
	}
}

func TestDeltaBatchAtomicAndCOW(t *testing.T) {
	base := genRules(t, 20, 621)
	d0 := NewDelta(base.Rules, nil)
	r := rules.Rule{SrcPort: rules.FullPortRange, DstPort: rules.FullPortRange, Proto: rules.AnyProto}
	d1, err := d0.Apply([]Op{{Insert: true, Rule: r, Pos: 0}, {Pos: 3}})
	if err != nil {
		t.Fatal(err)
	}
	// COW: d0 untouched.
	if d0.Len() != base.Len() || !d0.Empty() || d0.Inserted() != 0 {
		t.Fatalf("receiver mutated: len=%d ops=%d", d0.Len(), d0.Ops())
	}
	if d1.Len() != base.Len() || d1.Ops() != 2 {
		t.Fatalf("d1: len=%d ops=%d", d1.Len(), d1.Ops())
	}
	// Atomicity: an invalid op fails the whole batch.
	if _, err := d1.Apply([]Op{{Insert: true, Rule: r, Pos: 0}, {Pos: 10_000}}); err == nil {
		t.Fatal("out-of-range delete accepted")
	}
	if d1.Ops() != 2 {
		t.Fatal("failed batch left a trace")
	}
	// Emptying is rejected.
	one := NewDelta([]rules.Rule{r}, nil)
	if _, err := one.Apply([]Op{{Pos: 0}}); err == nil {
		t.Fatal("emptying batch accepted")
	}
}

func TestDeltaMaskFallbackScansSurvivors(t *testing.T) {
	// Two rules matching the same host: deleting the first must expose
	// the second through the mask-fallback scan, and count it.
	r0 := rules.Rule{SrcIP: rules.Prefix{Addr: 0x0A000000, Len: 8},
		SrcPort: rules.FullPortRange, DstPort: rules.FullPortRange, Proto: rules.AnyProto}
	r1 := rules.Rule{SrcIP: rules.Prefix{Addr: 0x0A0B0000, Len: 16},
		SrcPort: rules.FullPortRange, DstPort: rules.FullPortRange, Proto: rules.AnyProto, Action: rules.ActionDeny}
	var scans obs.Counter
	d := NewDelta([]rules.Rule{r0, r1}, &scans)
	nd, err := d.Apply([]Op{{Pos: 0}})
	if err != nil {
		t.Fatal(err)
	}
	h := rules.Header{SrcIP: 0x0A0B0C0D}
	// The tree still answers 0 (its base had r0); the combined answer is
	// the surviving r1, now at combined position 0.
	if got := nd.Resolve(h, 0); got != 0 {
		t.Fatalf("Resolve = %d, want surviving rule at 0", got)
	}
	if nd.Rules()[0] != r1 {
		t.Fatal("combined list does not start with the survivor")
	}
	if scans.Load() == 0 {
		t.Error("mask fallback not counted")
	}
	// A header matching only the deleted rule now matches nothing.
	h2 := rules.Header{SrcIP: 0x0A110000}
	if got := nd.Resolve(h2, 0); got != -1 {
		t.Fatalf("Resolve for fully masked header = %d, want -1", got)
	}
}

func TestResolveBatchZeroAllocs(t *testing.T) {
	base := genRules(t, 60, 631)
	extra := genRules(t, 30, 632)
	d := NewDelta(base.Rules, nil)
	var err error
	for i, r := range extra.Rules {
		ops := []Op{{Insert: true, Rule: r, Pos: i}}
		if i%3 == 0 {
			ops = append(ops, Op{Pos: d.Len() / 2})
		}
		if d, err = d.Apply(ops); err != nil {
			t.Fatal(err)
		}
	}
	hs := genHeaders(t, base, 256, 633)
	baseRS := rules.NewRuleSet("base", d.Base())
	out := make([]int, len(hs))
	for i, h := range hs {
		out[i] = baseRS.Match(h)
	}
	tree := append([]int(nil), out...)
	allocs := testing.AllocsPerRun(20, func() {
		copy(out, tree)
		d.ResolveBatch(hs, out)
	})
	if allocs != 0 {
		t.Errorf("ResolveBatch allocates %.1f/op, want 0", allocs)
	}
	// And the answers are right.
	curRS := rules.NewRuleSet("cur", d.Rules())
	for i, h := range hs {
		if want := curRS.Match(h); out[i] != want {
			t.Fatalf("packet %d: %d, oracle %d", i, out[i], want)
		}
	}
}
