package des

import (
	"reflect"
	"testing"
)

func TestEventOrdering(t *testing.T) {
	var s Sim
	var order []int
	s.At(30, func(Time) { order = append(order, 3) })
	s.At(10, func(Time) { order = append(order, 1) })
	s.At(20, func(Time) { order = append(order, 2) })
	s.Run()
	if !reflect.DeepEqual(order, []int{1, 2, 3}) {
		t.Errorf("order = %v", order)
	}
	if s.Now() != 30 {
		t.Errorf("Now = %d", s.Now())
	}
}

func TestSimultaneousEventsAreFIFO(t *testing.T) {
	var s Sim
	var order []int
	for i := 0; i < 100; i++ {
		i := i
		s.At(5, func(Time) { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("simultaneous events reordered: %v", order[:10])
		}
	}
}

func TestEventsScheduleEvents(t *testing.T) {
	var s Sim
	count := 0
	var chain func(Time)
	chain = func(now Time) {
		count++
		if count < 10 {
			s.After(7, chain)
		}
	}
	s.After(7, chain)
	s.Run()
	if count != 10 {
		t.Errorf("count = %d", count)
	}
	if s.Now() != 70 {
		t.Errorf("Now = %d, want 70", s.Now())
	}
}

func TestRunUntil(t *testing.T) {
	var s Sim
	fired := 0
	for i := Time(10); i <= 100; i += 10 {
		s.At(i, func(Time) { fired++ })
	}
	s.RunUntil(50)
	if fired != 5 {
		t.Errorf("fired = %d, want 5", fired)
	}
	if s.Now() != 50 {
		t.Errorf("Now = %d, want 50", s.Now())
	}
	if s.Pending() != 5 {
		t.Errorf("Pending = %d, want 5", s.Pending())
	}
	// Deadline beyond all events: clock advances to deadline.
	s.RunUntil(500)
	if fired != 10 || s.Now() != 500 {
		t.Errorf("fired = %d Now = %d", fired, s.Now())
	}
}

func TestSchedulingIntoPastPanics(t *testing.T) {
	var s Sim
	s.At(10, func(Time) {})
	s.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.At(5, func(Time) {})
}

func TestStepOnEmptyQueue(t *testing.T) {
	var s Sim
	if s.Step() {
		t.Error("Step on empty queue should return false")
	}
}
