// Package des is a minimal deterministic discrete-event simulation kernel:
// a virtual clock and a time-ordered event queue with stable FIFO ordering
// for simultaneous events. The IXP2850 model (internal/npsim) runs on it.
package des

import "container/heap"

// Time is virtual time in simulation ticks (ME clock cycles for npsim).
type Time uint64

// Event is a callback scheduled at a point in virtual time.
type Event func(now Time)

type item struct {
	at  Time
	seq uint64
	fn  Event
}

type eventHeap []item

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(item)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// Sim is a discrete-event simulator. The zero value is ready to use.
type Sim struct {
	now   Time
	seq   uint64
	queue eventHeap
}

// Now returns the current virtual time.
func (s *Sim) Now() Time { return s.now }

// At schedules fn at absolute time t. Scheduling in the past panics: it is
// always a model bug, and silently reordering events would destroy
// determinism.
func (s *Sim) At(t Time, fn Event) {
	if t < s.now {
		panic("des: scheduling into the past")
	}
	heap.Push(&s.queue, item{at: t, seq: s.seq, fn: fn})
	s.seq++
}

// After schedules fn delay ticks from now.
func (s *Sim) After(delay Time, fn Event) {
	s.At(s.now+delay, fn)
}

// Step dispatches the next event; it reports false when the queue is empty.
func (s *Sim) Step() bool {
	if len(s.queue) == 0 {
		return false
	}
	it := heap.Pop(&s.queue).(item)
	s.now = it.at
	it.fn(s.now)
	return true
}

// RunUntil dispatches events until the queue is empty or the next event
// lies beyond the deadline; the clock is left at min(deadline, last event).
func (s *Sim) RunUntil(deadline Time) {
	for len(s.queue) > 0 && s.queue[0].at <= deadline {
		s.Step()
	}
	if s.now < deadline {
		s.now = deadline
	}
}

// Run dispatches events until the queue is empty.
func (s *Sim) Run() {
	for s.Step() {
	}
}

// Pending returns the number of queued events.
func (s *Sim) Pending() int { return len(s.queue) }
