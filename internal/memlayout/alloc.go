package memlayout

import "fmt"

// Headroom describes the fraction of each SRAM channel's bandwidth left
// over by the base packet application (Rx/scheduling/Tx) before the
// classification code is added — Table 4 of the paper. Values in (0, 1].
type Headroom [NumChannels]float64

// PaperHeadroom is the headroom the paper measured for its application:
// channels 0–3 have 44%, 100%, 53% and 69% of their bandwidth free.
var PaperHeadroom = Headroom{0.44, 1.00, 0.53, 0.69}

// UniformHeadroom gives every channel full headroom; used when simulating
// the classifier in isolation.
var UniformHeadroom = Headroom{1, 1, 1, 1}

// Validate checks all fractions are in (0, 1].
func (h Headroom) Validate() error {
	for c, f := range h {
		if f <= 0 || f > 1 {
			return fmt.Errorf("memlayout: channel %d headroom %v out of (0,1]", c, f)
		}
	}
	return nil
}

// LevelAllocation maps each decision-tree level to the SRAM channel that
// stores its nodes.
type LevelAllocation []uint8

// String renders the allocation as contiguous level groups per channel,
// in the style of Table 4 ("level 0~1 | level 2~6 | ...").
func (a LevelAllocation) String() string {
	if len(a) == 0 {
		return "(empty)"
	}
	out := ""
	start := 0
	for i := 1; i <= len(a); i++ {
		if i == len(a) || a[i] != a[start] {
			if out != "" {
				out += "  "
			}
			if start == i-1 {
				out += fmt.Sprintf("ch%d: level %d", a[start], start)
			} else {
				out += fmt.Sprintf("ch%d: level %d~%d", a[start], start, i-1)
			}
			start = i
		}
	}
	return out
}

// AllocateLevels assigns contiguous groups of decision-tree levels to SRAM
// channels in proportion to bandwidth headroom (§5.3 of the paper). demand
// holds the relative bandwidth demand of each level (accesses per packet ×
// words per access); channels are used in index order, and channel c
// receives levels until its share headroom[c]/Σheadroom of the total demand
// is exhausted.
//
// Using nChannels < NumChannels restricts allocation to the first
// nChannels channels (the Table 5 sweep).
func AllocateLevels(demand []float64, headroom Headroom, nChannels int) (LevelAllocation, error) {
	if nChannels < 1 || nChannels > NumChannels {
		return nil, fmt.Errorf("memlayout: nChannels %d out of [1,%d]", nChannels, NumChannels)
	}
	if err := headroom.Validate(); err != nil {
		return nil, err
	}
	if len(demand) == 0 {
		return nil, fmt.Errorf("memlayout: no levels to allocate")
	}
	total := 0.0
	for _, d := range demand {
		if d < 0 {
			return nil, fmt.Errorf("memlayout: negative demand %v", d)
		}
		total += d
	}
	if total == 0 {
		total = 1 // degenerate: spread evenly
	}
	headroomSum := 0.0
	for c := 0; c < nChannels; c++ {
		headroomSum += headroom[c]
	}

	alloc := make(LevelAllocation, len(demand))
	ch := 0
	filled := 0.0 // demand assigned to channels 0..ch so far
	assigned := 0 // levels assigned to the current channel
	target := func(c int) float64 {
		// Cumulative demand that channels 0..c should hold.
		cum := 0.0
		for i := 0; i <= c; i++ {
			cum += headroom[i] / headroomSum * total
		}
		return cum
	}
	for lvl, d := range demand {
		// A channel never exceeds its cumulative share (conservative,
		// floor-style split — this is what reproduces Table 4), but every
		// channel takes at least one level before advancing, so a single
		// oversized level cannot starve the allocation.
		for ch < nChannels-1 && assigned > 0 && filled+d > target(ch)+1e-9 {
			ch++
			assigned = 0
		}
		alloc[lvl] = uint8(ch)
		filled += d
		assigned++
	}
	return alloc, nil
}

// UniformDemand is a convenience demand vector for trees whose every level
// is visited once per packet with equal-size accesses (ExpCuts).
func UniformDemand(levels int) []float64 {
	d := make([]float64, levels)
	for i := range d {
		d[i] = 1
	}
	return d
}
