package memlayout

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// Image file format: what a control plane would hand to the XScale core to
// load into the SRAM channels.
//
//	magic "NPIM" ‖ version(u32) ‖ per channel: wordCount(u32) ‖
//	all channel words little-endian ‖ crc32(u32) over everything before it
const (
	imageMagic   = "NPIM"
	imageVersion = 1
)

// Save serializes the image.
func (im *Image) Save(w io.Writer) error {
	crc := crc32.NewIEEE()
	bw := bufio.NewWriter(io.MultiWriter(w, crc))
	if _, err := bw.WriteString(imageMagic); err != nil {
		return err
	}
	var scratch [4]byte
	put := func(v uint32) error {
		binary.LittleEndian.PutUint32(scratch[:], v)
		_, err := bw.Write(scratch[:])
		return err
	}
	if err := put(imageVersion); err != nil {
		return err
	}
	for c := range im.chans {
		if err := put(uint32(len(im.chans[c]))); err != nil {
			return err
		}
	}
	for c := range im.chans {
		for _, word := range im.chans[c] {
			if err := put(word); err != nil {
				return err
			}
		}
	}
	// The CRC covers everything written so far; flush the buffer through
	// the MultiWriter first so the hash is complete.
	if err := bw.Flush(); err != nil {
		return err
	}
	binary.LittleEndian.PutUint32(scratch[:], crc.Sum32())
	_, err := w.Write(scratch[:])
	return err
}

// LoadImage deserializes an image saved by Save, verifying the checksum.
func LoadImage(r io.Reader) (*Image, error) {
	crc := crc32.NewIEEE()
	tr := io.TeeReader(r, crc)
	br := bufio.NewReader(tr)

	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("memlayout: reading magic: %w", err)
	}
	if string(magic) != imageMagic {
		return nil, fmt.Errorf("memlayout: bad magic %q", magic)
	}
	var scratch [4]byte
	get := func() (uint32, error) {
		if _, err := io.ReadFull(br, scratch[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint32(scratch[:]), nil
	}
	version, err := get()
	if err != nil {
		return nil, err
	}
	if version != imageVersion {
		return nil, fmt.Errorf("memlayout: unsupported image version %d", version)
	}
	im := NewImage()
	var counts [NumChannels]uint32
	for c := 0; c < NumChannels; c++ {
		if counts[c], err = get(); err != nil {
			return nil, err
		}
		if counts[c] > MaxOffset {
			return nil, fmt.Errorf("memlayout: channel %d word count %d is implausible", c, counts[c])
		}
	}
	// Grow each channel incrementally rather than trusting the declared
	// counts with one big allocation: a corrupted header claiming ~2^29
	// words per channel must fail on the (truncated) input, not OOM the
	// loader first. Preallocation is capped; appends only happen for words
	// actually present in the input.
	const preallocCap = 64 << 10 // 256 KB per channel up front, at most
	for c := 0; c < NumChannels; c++ {
		prealloc := counts[c]
		if prealloc > preallocCap {
			prealloc = preallocCap
		}
		words := make([]uint32, 0, prealloc)
		for i := uint32(0); i < counts[c]; i++ {
			w, err := get()
			if err != nil {
				return nil, fmt.Errorf("memlayout: channel %d truncated at word %d of %d: %w", c, i, counts[c], err)
			}
			words = append(words, w)
		}
		im.chans[c] = words
	}
	// The running CRC has consumed everything the checksum covers, but the
	// bufio reader may have pulled the trailer into its buffer already —
	// which would have polluted the tee'd hash. Avoid that by reading the
	// trailer through the buffered reader and computing the expected CRC
	// from a fresh pass over the decoded content instead.
	if _, err := io.ReadFull(br, scratch[:]); err != nil {
		return nil, fmt.Errorf("memlayout: reading checksum: %w", err)
	}
	stored := binary.LittleEndian.Uint32(scratch[:])
	if recomputed := im.contentCRC(); stored != recomputed {
		return nil, fmt.Errorf("memlayout: checksum mismatch: stored %#x, computed %#x", stored, recomputed)
	}
	return im, nil
}

// contentCRC recomputes the checksum Save produces for this image.
func (im *Image) contentCRC() uint32 {
	crc := crc32.NewIEEE()
	crc.Write([]byte(imageMagic))
	var scratch [4]byte
	put := func(v uint32) {
		binary.LittleEndian.PutUint32(scratch[:], v)
		crc.Write(scratch[:])
	}
	put(imageVersion)
	for c := range im.chans {
		put(uint32(len(im.chans[c])))
	}
	for c := range im.chans {
		for _, word := range im.chans[c] {
			put(word)
		}
	}
	return crc.Sum32()
}
