// Package memlayout holds the serialized SRAM representation of classifier
// data structures: a multi-channel word image, a per-channel bump allocator,
// the pointer-word encoding shared by the tree classifiers, and the
// headroom-driven assignment of decision-tree levels to SRAM channels that
// reproduces Table 4 of the paper.
//
// The IXP2850 exposes four QDR SRAM channels with independent controllers;
// word-oriented (4-byte) access is the efficient granularity. All classifier
// images in this repository are arrays of 32-bit words addressed by
// (channel, word offset).
package memlayout

import "fmt"

// NumChannels is the number of SRAM channels on the IXP2850.
const NumChannels = 4

// ChannelBytes is the capacity of one SRAM channel: the paper's platform
// has four 8 MB QDR SRAM chips.
const ChannelBytes = 8 << 20

// Image is a multi-channel SRAM word image with bump allocation.
type Image struct {
	chans [NumChannels][]uint32
}

// NewImage returns an empty image.
func NewImage() *Image {
	return &Image{}
}

// Alloc appends words to the channel and returns the word offset of the
// first appended word.
func (im *Image) Alloc(ch uint8, words []uint32) uint32 {
	if int(ch) >= NumChannels {
		panic(fmt.Sprintf("memlayout: channel %d out of range", ch))
	}
	off := uint32(len(im.chans[ch]))
	im.chans[ch] = append(im.chans[ch], words...)
	return off
}

// Reserve appends n zero words to the channel and returns the offset;
// callers patch the words later via Set.
func (im *Image) Reserve(ch uint8, n int) uint32 {
	off := uint32(len(im.chans[ch]))
	im.chans[ch] = append(im.chans[ch], make([]uint32, n)...)
	return off
}

// Set patches one word.
func (im *Image) Set(ch uint8, addr uint32, v uint32) {
	im.chans[ch][addr] = v
}

// Read returns words consecutive 32-bit words from (ch, addr). It panics on
// out-of-range access — a serialization bug, never a data-dependent event.
func (im *Image) Read(ch uint8, addr uint32, words int) []uint32 {
	end := int(addr) + words
	if int(ch) >= NumChannels || end > len(im.chans[ch]) {
		panic(fmt.Sprintf("memlayout: read [%d:%d] beyond channel %d length %d",
			addr, end, ch, len(im.chans[ch])))
	}
	return im.chans[ch][addr:end]
}

// ChannelWords returns the number of words allocated on each channel.
func (im *Image) ChannelWords() [NumChannels]int {
	var out [NumChannels]int
	for c := range im.chans {
		out[c] = len(im.chans[c])
	}
	return out
}

// TotalWords returns the total allocated words across channels.
func (im *Image) TotalWords() int {
	n := 0
	for c := range im.chans {
		n += len(im.chans[c])
	}
	return n
}

// TotalBytes returns the total allocated bytes across channels.
func (im *Image) TotalBytes() int { return im.TotalWords() * 4 }

// FitsHardware reports whether every channel fits its 8 MB SRAM chip — the
// feasibility check behind Figure 6's observation that un-aggregated
// ExpCuts cannot be loaded for the larger CR sets.
func (im *Image) FitsHardware() bool {
	for c := range im.chans {
		if len(im.chans[c])*4 > ChannelBytes {
			return false
		}
	}
	return true
}

// Pointer encoding shared by the serialized tree classifiers. A pointer
// word either designates a leaf (with an optional rule payload) or an
// internal node at (channel, offset).
//
//	bit 31        leaf flag
//	leaf:     bits 0..30  = rule index + 1 (0 = no match)
//	internal: bits 29..30 = channel, bits 0..28 = word offset
const (
	leafFlag    = uint32(1) << 31
	offsetBits  = 29
	offsetMask  = uint32(1)<<offsetBits - 1
	channelMask = uint32(3)
)

// MaxOffset is the largest encodable word offset (512 Mi words per channel,
// far beyond the 8 MB chips).
const MaxOffset = offsetMask

// LeafPtr encodes a leaf pointer. ruleIdx -1 encodes "no match".
func LeafPtr(ruleIdx int) uint32 {
	return leafFlag | uint32(ruleIdx+1)
}

// NodePtr encodes an internal-node pointer.
func NodePtr(ch uint8, off uint32) uint32 {
	if off > MaxOffset {
		panic(fmt.Sprintf("memlayout: offset %d exceeds pointer encoding", off))
	}
	return uint32(ch)<<offsetBits | off
}

// IsLeaf reports whether the pointer designates a leaf.
func IsLeaf(p uint32) bool { return p&leafFlag != 0 }

// LeafRule decodes the rule index of a leaf pointer (-1 = no match).
func LeafRule(p uint32) int { return int(p&^leafFlag) - 1 }

// NodeAddr decodes an internal-node pointer.
func NodeAddr(p uint32) (ch uint8, off uint32) {
	return uint8(p >> offsetBits & channelMask), p & offsetMask
}
