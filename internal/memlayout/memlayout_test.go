package memlayout

import (
	"reflect"
	"testing"
)

func TestImageAllocRead(t *testing.T) {
	im := NewImage()
	off := im.Alloc(1, []uint32{10, 20, 30})
	if off != 0 {
		t.Errorf("first alloc offset = %d", off)
	}
	off2 := im.Alloc(1, []uint32{40})
	if off2 != 3 {
		t.Errorf("second alloc offset = %d", off2)
	}
	if got := im.Read(1, 1, 2); !reflect.DeepEqual(got, []uint32{20, 30}) {
		t.Errorf("Read = %v", got)
	}
	if im.TotalWords() != 4 || im.TotalBytes() != 16 {
		t.Errorf("totals wrong: %d words %d bytes", im.TotalWords(), im.TotalBytes())
	}
	want := [NumChannels]int{0, 4, 0, 0}
	if got := im.ChannelWords(); got != want {
		t.Errorf("ChannelWords = %v", got)
	}
}

func TestImageReserveSet(t *testing.T) {
	im := NewImage()
	off := im.Reserve(0, 3)
	im.Set(0, off+1, 99)
	if got := im.Read(0, off, 3); !reflect.DeepEqual(got, []uint32{0, 99, 0}) {
		t.Errorf("Read = %v", got)
	}
}

func TestImageReadPanicsOutOfRange(t *testing.T) {
	im := NewImage()
	im.Alloc(0, []uint32{1, 2})
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range read should panic")
		}
	}()
	im.Read(0, 1, 2)
}

func TestFitsHardware(t *testing.T) {
	im := NewImage()
	im.Alloc(0, make([]uint32, ChannelBytes/4))
	if !im.FitsHardware() {
		t.Error("exactly-full channel should fit")
	}
	im.Alloc(0, []uint32{0})
	if im.FitsHardware() {
		t.Error("overfull channel should not fit")
	}
	// Capacity is per channel, not total.
	im2 := NewImage()
	for c := uint8(0); c < NumChannels; c++ {
		im2.Alloc(c, make([]uint32, ChannelBytes/4))
	}
	if !im2.FitsHardware() {
		t.Error("four full channels should fit")
	}
}

func TestPointerEncoding(t *testing.T) {
	cases := []struct {
		ch  uint8
		off uint32
	}{
		{0, 0}, {1, 1}, {3, MaxOffset}, {2, 12345678},
	}
	for _, c := range cases {
		p := NodePtr(c.ch, c.off)
		if IsLeaf(p) {
			t.Errorf("NodePtr(%d,%d) decodes as leaf", c.ch, c.off)
		}
		ch, off := NodeAddr(p)
		if ch != c.ch || off != c.off {
			t.Errorf("NodeAddr(NodePtr(%d,%d)) = %d,%d", c.ch, c.off, ch, off)
		}
	}
	for _, idx := range []int{-1, 0, 1, 100000} {
		p := LeafPtr(idx)
		if !IsLeaf(p) {
			t.Errorf("LeafPtr(%d) not a leaf", idx)
		}
		if got := LeafRule(p); got != idx {
			t.Errorf("LeafRule(LeafPtr(%d)) = %d", idx, got)
		}
	}
	// NodePtr must reject offsets that would clobber the channel bits.
	defer func() {
		if recover() == nil {
			t.Fatal("oversized offset should panic")
		}
	}()
	NodePtr(0, MaxOffset+1)
}

func TestAllocateLevelsReproducesTable4(t *testing.T) {
	// 14 levels (0..13 as in the paper's 104/8 example rounded up: the
	// paper lists levels 0~13), uniform demand, paper headroom
	// {44,100,53,69}% -> shares {16.5%,37.6%,19.9%,25.9%} of 14 levels =
	// {2.3, 5.3, 2.8, 3.6} -> contiguous groups 0~1, 2~6, 7~9, 10~13.
	alloc, err := AllocateLevels(UniformDemand(14), PaperHeadroom, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := LevelAllocation{0, 0, 1, 1, 1, 1, 1, 2, 2, 2, 3, 3, 3, 3}
	if !reflect.DeepEqual(alloc, want) {
		t.Errorf("allocation = %v, want %v (Table 4)", alloc, want)
	}
	if alloc.String() != "ch0: level 0~1  ch1: level 2~6  ch2: level 7~9  ch3: level 10~13" {
		t.Errorf("String() = %q", alloc.String())
	}
}

func TestAllocateLevelsSingleChannel(t *testing.T) {
	alloc, err := AllocateLevels(UniformDemand(13), PaperHeadroom, 1)
	if err != nil {
		t.Fatal(err)
	}
	for lvl, ch := range alloc {
		if ch != 0 {
			t.Errorf("level %d on channel %d with 1 channel", lvl, ch)
		}
	}
}

func TestAllocateLevelsUsesAllChannels(t *testing.T) {
	for n := 1; n <= 4; n++ {
		alloc, err := AllocateLevels(UniformDemand(13), UniformHeadroom, n)
		if err != nil {
			t.Fatal(err)
		}
		used := map[uint8]bool{}
		for _, ch := range alloc {
			if int(ch) >= n {
				t.Fatalf("n=%d: channel %d out of range", n, ch)
			}
			used[ch] = true
		}
		if len(used) != n {
			t.Errorf("n=%d: only %d channels used", n, len(used))
		}
		// Levels must be assigned in non-decreasing channel order
		// (contiguous groups).
		for i := 1; i < len(alloc); i++ {
			if alloc[i] < alloc[i-1] {
				t.Errorf("n=%d: allocation not monotone: %v", n, alloc)
			}
		}
	}
}

func TestAllocateLevelsSkewedDemand(t *testing.T) {
	// All demand on level 0: remaining levels spill to later channels but
	// the split point respects the demand weighting (channel 0 takes the
	// heavy level and nothing else when its share is < the whole).
	demand := []float64{100, 1, 1, 1}
	alloc, err := AllocateLevels(demand, UniformHeadroom, 4)
	if err != nil {
		t.Fatal(err)
	}
	if alloc[0] != 0 {
		t.Errorf("heavy level not on channel 0: %v", alloc)
	}
	if alloc[1] == 0 {
		t.Errorf("after absorbing 100/103 of demand, channel 0 should be done: %v", alloc)
	}
}

func TestAllocateLevelsErrors(t *testing.T) {
	if _, err := AllocateLevels(UniformDemand(3), PaperHeadroom, 0); err == nil {
		t.Error("nChannels 0 should fail")
	}
	if _, err := AllocateLevels(UniformDemand(3), PaperHeadroom, 5); err == nil {
		t.Error("nChannels 5 should fail")
	}
	if _, err := AllocateLevels(nil, PaperHeadroom, 2); err == nil {
		t.Error("no levels should fail")
	}
	if _, err := AllocateLevels([]float64{1, -1}, PaperHeadroom, 2); err == nil {
		t.Error("negative demand should fail")
	}
	if _, err := AllocateLevels(UniformDemand(3), Headroom{0, 1, 1, 1}, 2); err == nil {
		t.Error("zero headroom should fail")
	}
}
