package memlayout

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
)

func randomImage(seed int64) *Image {
	rng := rand.New(rand.NewSource(seed))
	im := NewImage()
	for c := uint8(0); c < NumChannels; c++ {
		n := rng.Intn(2000)
		words := make([]uint32, n)
		for i := range words {
			words[i] = rng.Uint32()
		}
		im.Alloc(c, words)
	}
	return im
}

func TestImageSaveLoadRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		im := randomImage(seed)
		var buf bytes.Buffer
		if err := im.Save(&buf); err != nil {
			t.Fatal(err)
		}
		back, err := LoadImage(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(im.ChannelWords(), back.ChannelWords()) {
			t.Fatalf("seed %d: channel sizes differ", seed)
		}
		for c := uint8(0); c < NumChannels; c++ {
			n := im.ChannelWords()[c]
			if n == 0 {
				continue
			}
			if !reflect.DeepEqual(im.Read(c, 0, n), back.Read(c, 0, n)) {
				t.Fatalf("seed %d: channel %d content differs", seed, c)
			}
		}
	}
}

func TestImageLoadEmpty(t *testing.T) {
	im := NewImage()
	var buf bytes.Buffer
	if err := im.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadImage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.TotalWords() != 0 {
		t.Errorf("empty image loaded %d words", back.TotalWords())
	}
}

func TestImageLoadDetectsCorruption(t *testing.T) {
	im := randomImage(9)
	var buf bytes.Buffer
	if err := im.Save(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Flip a content byte (past the header).
	corrupted := append([]byte(nil), data...)
	corrupted[30] ^= 0xFF
	if _, err := LoadImage(bytes.NewReader(corrupted)); err == nil {
		t.Error("corrupted image loaded successfully")
	}
	// Truncation.
	if _, err := LoadImage(bytes.NewReader(data[:len(data)-6])); err == nil {
		t.Error("truncated image loaded successfully")
	}
	// Bad magic.
	bad := append([]byte(nil), data...)
	bad[0] = 'X'
	if _, err := LoadImage(bytes.NewReader(bad)); err == nil {
		t.Error("bad magic accepted")
	}
}
