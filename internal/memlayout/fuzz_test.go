package memlayout

import (
	"bytes"
	"testing"
)

// saved serializes a small image for use as a seed corpus entry.
func saved(build func(im *Image)) []byte {
	im := NewImage()
	build(im)
	var buf bytes.Buffer
	if err := im.Save(&buf); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// FuzzLoadImage asserts the loader is total on hostile input: truncated
// files, flipped bits, and headers declaring absurd word counts must all
// return errors — never panic, and never allocate anywhere near the
// declared (attacker-controlled) size before the input runs out.
func FuzzLoadImage(f *testing.F) {
	f.Add(saved(func(im *Image) {}))
	f.Add(saved(func(im *Image) {
		im.Alloc(0, []uint32{1, 2, 3})
		im.Alloc(3, []uint32{0xDEADBEEF})
	}))
	f.Add(saved(func(im *Image) {
		im.Reserve(1, 64)
		im.Set(1, 5, 42)
	}))
	f.Add([]byte{})
	f.Add([]byte("NPIM"))
	f.Add([]byte("NPIM\x01\x00\x00\x00"))
	// Header claiming ~512 Mi words per channel with no payload: must
	// fail fast on truncation, not allocate gigabytes.
	huge := []byte("NPIM\x01\x00\x00\x00" +
		"\xff\xff\xff\x1f\xff\xff\xff\x1f\xff\xff\xff\x1f\xff\xff\xff\x1f")
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		im, err := LoadImage(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Anything that loads must be internally consistent: re-saving
		// and re-loading yields the identical word image.
		var buf bytes.Buffer
		if err := im.Save(&buf); err != nil {
			t.Fatalf("re-saving a loaded image: %v", err)
		}
		im2, err := LoadImage(&buf)
		if err != nil {
			t.Fatalf("re-loading a saved image: %v", err)
		}
		for c := range im.chans {
			if !equalWords(im.chans[c], im2.chans[c]) {
				t.Fatalf("channel %d changed across save/load", c)
			}
		}
	})
}

func equalWords(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
