package update

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/linear"
	"repro/internal/rules"
)

// TestQuiesceSubmitRace pins the Quiesce/Submit race: Quiesce used to
// decide "no submission pending or draining" under pendMu, release it,
// and only then take mu for the compaction half — so a Submit landing
// between the two acquisitions let Quiesce return true with a pending
// rule set and a drainer about to swap it in. The fixed Quiesce holds
// pendMu across the whole observation, which makes the check atomic: a
// Submit either completes before the observation (and is seen) or blocks
// on pendMu until after it (and happened after the linearization point).
//
// The schedule recreates the window deterministically against the old
// code: the test holds m.mu, parking Quiesce exactly in the gap after
// its pendMu verdict; a Submit then lands (old code: freely, because
// pendMu was already released; new code: it blocks on pendMu). Whether
// the Submit returned before m.mu was released is the witness — under
// the fix it cannot have, so the violation check only ever fires on the
// racy code. The mu handoff after release is a genuine race (Quiesce vs
// the drainer's SetRules), so the schedule is iterated; one caught
// violation fails the test.
func TestQuiesceSubmitRace(t *testing.T) {
	rsA := []rules.Rule{denyHost(0x01010101)}
	rsB := []rules.Rule{denyHost(0x02020202)}

	for iter := 0; iter < 25; iter++ {
		var gated atomic.Bool
		builder := func(rs *rules.RuleSet) (Classifier, error) {
			if gated.Load() {
				// Widen the post-Quiesce window: a drainer that won the mu
				// race keeps draining=true for at least this long.
				time.Sleep(10 * time.Millisecond)
			}
			return linear.New(rs), nil
		}
		m, err := NewManagerConfig(rules.NewRuleSet("q", rsA), builder,
			Config{ValidateSamples: -1})
		if err != nil {
			t.Fatal(err)
		}
		gated.Store(true)

		m.mu.Lock()
		type verdict struct {
			ok       bool
			pending  bool
			draining bool
		}
		quiesced := make(chan verdict, 1)
		go func() {
			ok := m.Quiesce(10 * time.Second)
			// Capture the submission state as close to Quiesce's return as
			// possible — this is what "idle" promised the caller.
			m.pendMu.Lock()
			v := verdict{ok: ok, pending: m.pending != nil, draining: m.draining}
			m.pendMu.Unlock()
			quiesced <- v
		}()
		time.Sleep(20 * time.Millisecond) // let Quiesce reach its mu wait

		var submitReturned atomic.Bool
		go func() {
			m.Submit(rsB)
			submitReturned.Store(true)
		}()
		time.Sleep(20 * time.Millisecond)

		// Old code: Submit already returned (pendMu was free) and a drainer
		// is parked on mu. New code: Submit is blocked on pendMu, which
		// Quiesce holds until its observation completes.
		submittedBeforeUnlock := submitReturned.Load()
		m.mu.Unlock()

		v := <-quiesced
		if !v.ok {
			t.Fatalf("iter %d: Quiesce timed out", iter)
		}
		if submittedBeforeUnlock && (v.pending || v.draining) {
			t.Fatalf("iter %d: Quiesce returned true with a submission in flight (pending=%v draining=%v)",
				iter, v.pending, v.draining)
		}

		// Whatever the interleaving, the submission must still land. Wait
		// for Submit itself first — Quiesce only covers submissions that
		// completed before it was called.
		for !submitReturned.Load() {
			time.Sleep(time.Millisecond)
		}
		if !m.Quiesce(10 * time.Second) {
			t.Fatalf("iter %d: manager never quiesced after submit", iter)
		}
		snap, _ := m.Snapshot()
		if len(snap) != 1 || snap[0] != rsB[0] {
			t.Fatalf("iter %d: snapshot = %v, want submitted set %v", iter, snap, rsB)
		}
	}
}

// TestQuiesceDrainsUnderChurn hammers Submit from two goroutines and
// checks the Quiesce contract end to end: once it reports idle after the
// churn stops, the last submission must be fully applied — no coalesced
// rule set may swap in after Quiesce returns true.
func TestQuiesceDrainsUnderChurn(t *testing.T) {
	m, err := NewManagerConfig(rules.NewRuleSet("q", []rules.Rule{denyHost(1)}),
		func(rs *rules.RuleSet) (Classifier, error) {
			return linear.New(rs), nil
		}, Config{ValidateSamples: -1})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{}, 2)
	for g := 0; g < 2; g++ {
		go func(g int) {
			for i := 0; i < 200; i++ {
				m.Submit([]rules.Rule{denyHost(uint32(g<<16 | i))})
			}
			done <- struct{}{}
		}(g)
	}
	<-done
	<-done
	final := []rules.Rule{denyHost(0xFEEDBEEF)}
	m.Submit(final)
	if !m.Quiesce(30 * time.Second) {
		t.Fatal("manager never quiesced")
	}
	snap, _ := m.Snapshot()
	if fmt.Sprint(snap) != fmt.Sprint(final) {
		t.Fatalf("snapshot after Quiesce = %v, want final submission %v", snap, final)
	}
}
