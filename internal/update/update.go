// Package update adds dynamic rule-set updates on top of the static
// classifiers. Decision-tree structures like ExpCuts are built for lookup
// speed, not in-place modification (the paper's §1 makes the same point
// about TCAMs), so this package implements the strategy production systems
// use: updates are batched against the authoritative rule list, a
// replacement classifier is built off the fast path, and readers are
// switched over atomically — packets classify against a consistent
// generation at all times, with zero locking on the lookup path.
//
// The swap is guarded, not blind. Before a candidate generation goes
// live it passes a shadow conformance check: the candidate classifies a
// deterministic sample of headers and every answer is compared against
// priority linear search over the authoritative rule list. A builder
// that fails is retried with capped exponential backoff; a candidate
// that builds but misclassifies is rejected and the live generation is
// untouched. The previous generation is retained so a bad generation
// detected after the swap can be rolled back instantly, without a
// rebuild. Health exposes the counters behind all of this.
package update

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/pktgen"
	"repro/internal/rules"
)

// Classifier is the read-side contract of a managed generation.
type Classifier interface {
	Classify(h rules.Header) int
	MemoryBytes() int
}

// Builder constructs a classifier generation from a rule set (e.g. wrap
// expcuts.New with its Config applied).
type Builder func(rs *rules.RuleSet) (Classifier, error)

// Op is one rule-set modification.
type Op struct {
	// Insert, when set, adds the rule; otherwise the op deletes.
	Insert bool
	// Rule is the rule to insert (Insert true).
	Rule rules.Rule
	// Pos is the priority position: for inserts, the index the new rule
	// takes (clamped to [0, len]); for deletes, the index removed.
	Pos int
}

// InsertAt builds an insert op.
func InsertAt(pos int, r rules.Rule) Op {
	return Op{Insert: true, Rule: r, Pos: pos}
}

// DeleteAt builds a delete op.
func DeleteAt(pos int) Op {
	return Op{Pos: pos}
}

// Config tunes the swap guard rails. The zero value enables validation
// with the defaults below.
type Config struct {
	// ValidateSamples is the number of sampled headers the shadow
	// conformance check classifies before a swap; 0 means
	// DefaultValidateSamples, negative disables validation.
	ValidateSamples int
	// ValidateSeed seeds the deterministic sample trace (0 means 1).
	ValidateSeed int64
	// MaxBuildAttempts bounds builder retries per rebuild; 0 means
	// DefaultMaxBuildAttempts.
	MaxBuildAttempts int
	// BackoffBase is the sleep before the second build attempt; it
	// doubles per retry up to BackoffMax. 0 means DefaultBackoffBase.
	BackoffBase time.Duration
	// BackoffMax caps the backoff; 0 means DefaultBackoffMax.
	BackoffMax time.Duration
}

// Guard-rail defaults.
const (
	DefaultValidateSamples  = 256
	DefaultMaxBuildAttempts = 3
	DefaultBackoffBase      = 5 * time.Millisecond
	DefaultBackoffMax       = 250 * time.Millisecond
)

func (c *Config) fillDefaults() {
	if c.ValidateSamples == 0 {
		c.ValidateSamples = DefaultValidateSamples
	}
	if c.ValidateSeed == 0 {
		c.ValidateSeed = 1
	}
	if c.MaxBuildAttempts <= 0 {
		c.MaxBuildAttempts = DefaultMaxBuildAttempts
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = DefaultBackoffBase
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = DefaultBackoffMax
	}
}

// Health is a point-in-time snapshot of the manager's introspection
// counters.
type Health struct {
	// Generation is the live generation number.
	Generation uint64
	// Rules is the live generation's rule count.
	Rules int
	// MemoryBytes is the live classifier's footprint.
	MemoryBytes int
	// CanRollback reports whether a previous generation is retained.
	CanRollback bool
	// BuildRetries counts builder attempts beyond the first, across all
	// rebuilds.
	BuildRetries uint64
	// FailedBuilds counts rebuilds whose builder never succeeded.
	FailedBuilds uint64
	// FailedValidations counts candidates rejected by the shadow
	// conformance check.
	FailedValidations uint64
	// Rollbacks counts successful Rollback calls.
	Rollbacks uint64
	// LastError describes the most recent failed Apply/Rollback, empty
	// when the last operation succeeded.
	LastError string
}

// Manager owns the authoritative rule list and the live classifier
// generation. Classify is wait-free with respect to updates.
type Manager struct {
	build Builder
	cfg   Config
	sleep func(time.Duration) // time.Sleep, overridable in tests

	mu    sync.Mutex // serializes updates, not lookups
	name  string
	rules []rules.Rule
	gen   uint64
	prev  *generation // retained for Rollback; nil initially

	buildRetries      atomic.Uint64
	failedBuilds      atomic.Uint64
	failedValidations atomic.Uint64
	rollbacks         atomic.Uint64
	lastError         atomic.Pointer[string]

	live atomic.Pointer[generation]
}

// generation pairs a classifier with the rule snapshot it was built from.
type generation struct {
	cl    Classifier
	rules []rules.Rule
	gen   uint64
}

// NewManager builds the initial generation from the rule set with the
// default guard rails.
func NewManager(rs *rules.RuleSet, build Builder) (*Manager, error) {
	return NewManagerConfig(rs, build, Config{})
}

// NewManagerConfig is NewManager with explicit guard-rail configuration.
func NewManagerConfig(rs *rules.RuleSet, build Builder, cfg Config) (*Manager, error) {
	cfg.fillDefaults()
	m := &Manager{
		build: build,
		cfg:   cfg,
		sleep: time.Sleep,
		name:  rs.Name,
		rules: append([]rules.Rule(nil), rs.Rules...),
	}
	if err := m.rebuildLocked(); err != nil {
		return nil, err
	}
	return m, nil
}

// Classify classifies against the live generation. The returned index
// refers to that generation's snapshot; use Snapshot for the matching rule
// list.
func (m *Manager) Classify(h rules.Header) int {
	return m.live.Load().cl.Classify(h)
}

// Snapshot returns the live generation's rule list (callers must not
// modify it) and generation number.
func (m *Manager) Snapshot() ([]rules.Rule, uint64) {
	g := m.live.Load()
	return g.rules, g.gen
}

// Generation returns the live generation number; it increments on every
// successful Apply or Rollback.
func (m *Manager) Generation() uint64 {
	return m.live.Load().gen
}

// MemoryBytes reports the live classifier's footprint.
func (m *Manager) MemoryBytes() int {
	return m.live.Load().cl.MemoryBytes()
}

// Health returns the manager's introspection counters.
func (m *Manager) Health() Health {
	m.mu.Lock()
	canRollback := m.prev != nil
	m.mu.Unlock()
	g := m.live.Load()
	h := Health{
		Generation:        g.gen,
		Rules:             len(g.rules),
		MemoryBytes:       g.cl.MemoryBytes(),
		CanRollback:       canRollback,
		BuildRetries:      m.buildRetries.Load(),
		FailedBuilds:      m.failedBuilds.Load(),
		FailedValidations: m.failedValidations.Load(),
		Rollbacks:         m.rollbacks.Load(),
	}
	if s := m.lastError.Load(); s != nil {
		h.LastError = *s
	}
	return h
}

// Apply validates and applies a batch of ops atomically: either the whole
// batch becomes visible as one new generation, or the live generation is
// unchanged. The fast path keeps serving the old generation during the
// rebuild; the candidate passes the shadow conformance check before the
// swap.
func (m *Manager) Apply(ops []Op) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	next := append([]rules.Rule(nil), m.rules...)
	for i, op := range ops {
		if op.Insert {
			pos := op.Pos
			if pos < 0 {
				pos = 0
			}
			if pos > len(next) {
				pos = len(next)
			}
			next = append(next, rules.Rule{})
			copy(next[pos+1:], next[pos:])
			next[pos] = op.Rule
			continue
		}
		if op.Pos < 0 || op.Pos >= len(next) {
			return m.fail(fmt.Errorf("update: op %d deletes position %d of %d rules", i, op.Pos, len(next)))
		}
		next = append(next[:op.Pos], next[op.Pos+1:]...)
	}
	if len(next) == 0 {
		return m.fail(fmt.Errorf("update: batch would empty the rule set"))
	}
	old := m.rules
	m.rules = next
	if err := m.rebuildLocked(); err != nil {
		m.rules = old
		return m.fail(fmt.Errorf("update: rebuild failed, batch rolled back: %w", err))
	}
	m.clearError()
	return nil
}

// Rollback atomically reinstates the previous generation — its classifier
// and rule snapshot become authoritative under a new generation number,
// with no rebuild and no validation (the generation already served).
// It fails when no previous generation is retained; rolling back twice
// swaps forth and back.
func (m *Manager) Rollback() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.prev == nil {
		return m.fail(fmt.Errorf("update: no previous generation to roll back to"))
	}
	target := m.prev
	m.prev = m.live.Load()
	m.rules = append([]rules.Rule(nil), target.rules...)
	m.gen++
	m.live.Store(&generation{cl: target.cl, rules: target.rules, gen: m.gen})
	m.rollbacks.Add(1)
	m.clearError()
	return nil
}

// rebuildLocked builds, validates and publishes a new generation from
// m.rules, retaining the outgoing generation for Rollback.
func (m *Manager) rebuildLocked() error {
	snapshot := append([]rules.Rule(nil), m.rules...)
	rs := rules.NewRuleSet(fmt.Sprintf("%s@%d", m.name, m.gen+1), snapshot)
	cl, err := m.buildWithRetry(rs)
	if err != nil {
		m.failedBuilds.Add(1)
		return err
	}
	if err := m.validate(cl, rs); err != nil {
		m.failedValidations.Add(1)
		return err
	}
	m.gen++
	if cur := m.live.Load(); cur != nil {
		m.prev = cur
	}
	m.live.Store(&generation{cl: cl, rules: snapshot, gen: m.gen})
	return nil
}

// buildWithRetry drives the builder through up to MaxBuildAttempts tries
// with capped exponential backoff between them.
func (m *Manager) buildWithRetry(rs *rules.RuleSet) (Classifier, error) {
	backoff := m.cfg.BackoffBase
	var lastErr error
	for attempt := 1; attempt <= m.cfg.MaxBuildAttempts; attempt++ {
		if attempt > 1 {
			m.buildRetries.Add(1)
			m.sleep(backoff)
			backoff *= 2
			if backoff > m.cfg.BackoffMax {
				backoff = m.cfg.BackoffMax
			}
		}
		cl, err := m.build(rs)
		if err == nil {
			if cl == nil {
				return nil, fmt.Errorf("update: builder returned a nil classifier")
			}
			return cl, nil
		}
		lastErr = err
	}
	return nil, fmt.Errorf("update: builder failed %d times, last: %w", m.cfg.MaxBuildAttempts, lastErr)
}

// validate shadow-checks the candidate against priority linear search over
// the authoritative rule list on a deterministic sampled header set.
func (m *Manager) validate(cl Classifier, rs *rules.RuleSet) error {
	if m.cfg.ValidateSamples < 0 {
		return nil
	}
	tr, err := pktgen.Generate(rs, pktgen.Config{
		Count:         m.cfg.ValidateSamples,
		Seed:          m.cfg.ValidateSeed,
		MatchFraction: 0.9,
	})
	if err != nil {
		return fmt.Errorf("update: generating validation sample: %w", err)
	}
	for _, h := range tr.Headers {
		got := safeClassify(cl, h)
		if want := rs.Match(h); got != want {
			return fmt.Errorf("update: validation failed: candidate classifies %v as %d, linear oracle says %d", h, got, want)
		}
	}
	return nil
}

// safeClassify contains candidate panics during validation: a classifier
// that panics on a sampled header is as rejected as one that misclassifies.
func safeClassify(cl Classifier, h rules.Header) (match int) {
	defer func() {
		if recover() != nil {
			match = -2 // never a legal match value, so validation fails
		}
	}()
	return cl.Classify(h)
}

// fail records err in Health.LastError and returns it.
func (m *Manager) fail(err error) error {
	s := err.Error()
	m.lastError.Store(&s)
	return err
}

func (m *Manager) clearError() {
	m.lastError.Store(nil)
}
