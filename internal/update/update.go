// Package update adds dynamic rule-set updates on top of the static
// classifiers. Decision-tree structures like ExpCuts are built for lookup
// speed, not in-place modification (the paper's §1 makes the same point
// about TCAMs), so this package implements the strategy production systems
// use: updates are batched against the authoritative rule list, a
// replacement classifier is built off the fast path, and readers are
// switched over atomically — packets classify against a consistent
// generation at all times, with zero locking on the lookup path.
package update

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/rules"
)

// Classifier is the read-side contract of a managed generation.
type Classifier interface {
	Classify(h rules.Header) int
	MemoryBytes() int
}

// Builder constructs a classifier generation from a rule set (e.g. wrap
// expcuts.New with its Config applied).
type Builder func(rs *rules.RuleSet) (Classifier, error)

// Op is one rule-set modification.
type Op struct {
	// Insert, when set, adds the rule; otherwise the op deletes.
	Insert bool
	// Rule is the rule to insert (Insert true).
	Rule rules.Rule
	// Pos is the priority position: for inserts, the index the new rule
	// takes (clamped to [0, len]); for deletes, the index removed.
	Pos int
}

// InsertAt builds an insert op.
func InsertAt(pos int, r rules.Rule) Op {
	return Op{Insert: true, Rule: r, Pos: pos}
}

// DeleteAt builds a delete op.
func DeleteAt(pos int) Op {
	return Op{Pos: pos}
}

// Manager owns the authoritative rule list and the live classifier
// generation. Classify is wait-free with respect to updates.
type Manager struct {
	build Builder

	mu    sync.Mutex // serializes updates, not lookups
	name  string
	rules []rules.Rule
	gen   uint64

	live atomic.Pointer[generation]
}

// generation pairs a classifier with the rule snapshot it was built from.
type generation struct {
	cl    Classifier
	rules []rules.Rule
	gen   uint64
}

// NewManager builds the initial generation from the rule set.
func NewManager(rs *rules.RuleSet, build Builder) (*Manager, error) {
	m := &Manager{
		build: build,
		name:  rs.Name,
		rules: append([]rules.Rule(nil), rs.Rules...),
	}
	if err := m.rebuildLocked(); err != nil {
		return nil, err
	}
	return m, nil
}

// Classify classifies against the live generation. The returned index
// refers to that generation's snapshot; use Snapshot for the matching rule
// list.
func (m *Manager) Classify(h rules.Header) int {
	return m.live.Load().cl.Classify(h)
}

// Snapshot returns the live generation's rule list (callers must not
// modify it) and generation number.
func (m *Manager) Snapshot() ([]rules.Rule, uint64) {
	g := m.live.Load()
	return g.rules, g.gen
}

// Generation returns the live generation number; it increments on every
// successful Apply.
func (m *Manager) Generation() uint64 {
	return m.live.Load().gen
}

// MemoryBytes reports the live classifier's footprint.
func (m *Manager) MemoryBytes() int {
	return m.live.Load().cl.MemoryBytes()
}

// Apply validates and applies a batch of ops atomically: either the whole
// batch becomes visible as one new generation, or the live generation is
// unchanged. The fast path keeps serving the old generation during the
// rebuild.
func (m *Manager) Apply(ops []Op) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	next := append([]rules.Rule(nil), m.rules...)
	for i, op := range ops {
		if op.Insert {
			pos := op.Pos
			if pos < 0 {
				pos = 0
			}
			if pos > len(next) {
				pos = len(next)
			}
			next = append(next, rules.Rule{})
			copy(next[pos+1:], next[pos:])
			next[pos] = op.Rule
			continue
		}
		if op.Pos < 0 || op.Pos >= len(next) {
			return fmt.Errorf("update: op %d deletes position %d of %d rules", i, op.Pos, len(next))
		}
		next = append(next[:op.Pos], next[op.Pos+1:]...)
	}
	if len(next) == 0 {
		return fmt.Errorf("update: batch would empty the rule set")
	}
	old := m.rules
	m.rules = next
	if err := m.rebuildLocked(); err != nil {
		m.rules = old
		return fmt.Errorf("update: rebuild failed, batch rolled back: %w", err)
	}
	return nil
}

// rebuildLocked builds and publishes a new generation from m.rules.
func (m *Manager) rebuildLocked() error {
	snapshot := append([]rules.Rule(nil), m.rules...)
	rs := rules.NewRuleSet(fmt.Sprintf("%s@%d", m.name, m.gen+1), snapshot)
	cl, err := m.build(rs)
	if err != nil {
		return err
	}
	m.gen++
	m.live.Store(&generation{cl: cl, rules: snapshot, gen: m.gen})
	return nil
}
