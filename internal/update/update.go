// Package update adds dynamic rule-set updates on top of the static
// classifiers. Decision-tree structures like ExpCuts are built for lookup
// speed, not in-place modification (the paper's §1 makes the same point
// about TCAMs), so this package implements the strategy production systems
// use: updates are batched against the authoritative rule list, a
// replacement classifier is built off the fast path, and readers are
// switched over atomically — packets classify against a consistent
// generation at all times, with zero locking on the lookup path.
//
// The swap is guarded, not blind. Before a candidate generation goes
// live it passes a shadow conformance check: the candidate classifies a
// deterministic sample of headers and every answer is compared against
// priority linear search over the authoritative rule list. A builder
// that fails is retried with capped exponential backoff; a candidate
// that builds but misclassifies is rejected and the live generation is
// untouched. The previous generation is retained so a bad generation
// detected after the swap can be rolled back instantly, without a
// rebuild. Health exposes the counters behind all of this.
package update

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/buildgov"
	"repro/internal/obs"
	"repro/internal/pktgen"
	"repro/internal/rules"
	"repro/internal/tss"
)

// Classifier is the read-side contract of a managed generation.
type Classifier interface {
	Classify(h rules.Header) int
	MemoryBytes() int
}

// BatchClassifier is the optional batched read-side contract. Managed
// generations whose classifier implements it serve whole batches under a
// single atomic generation load; the manager's own ClassifyBatch falls
// back to a per-packet loop otherwise. Declared locally (mirroring
// engine.BatchClassifier) so the update package keeps zero dependency on
// the engine.
type BatchClassifier interface {
	Classifier
	ClassifyBatch(hs []rules.Header, out []int)
}

// PipelinedClassifier is the optional software-pipelined batched contract
// (mirroring engine.PipelinedClassifier, declared locally for the same
// zero-dependency reason). Generations whose classifier implements it —
// expcuts trees on the default ladder rung — serve staged walks; the
// manager's own ClassifyBatchPipelined degrades to the plain batch path
// on rungs that don't.
type PipelinedClassifier interface {
	BatchClassifier
	ClassifyBatchPipelined(hs []rules.Header, out []int, group int, affine bool)
}

// Builder constructs a classifier generation from a rule set (e.g. wrap
// expcuts.New with its Config applied).
type Builder func(rs *rules.RuleSet) (Classifier, error)

// BuilderCtx is a context-aware Builder: the manager passes a context
// carrying the per-attempt build deadline (Config.BuildTimeout), and
// governed builders (expcuts.NewCtx and friends) abort cooperatively
// when it expires. Ladder rungs use this form.
type BuilderCtx func(ctx context.Context, rs *rules.RuleSet) (Classifier, error)

// Rung is one level of a degradation ladder: a named, context-aware
// builder. Rungs are ordered best-first; the manager serves the highest
// rung whose build succeeds, validates, and whose circuit breaker is not
// open.
type Rung struct {
	// Name identifies the rung in Health and reports ("expcuts",
	// "linear", ...).
	Name string
	// Build constructs the rung's classifier.
	Build BuilderCtx
}

// Op is one rule-set modification.
type Op struct {
	// Insert, when set, adds the rule; otherwise the op deletes.
	Insert bool
	// Rule is the rule to insert (Insert true).
	Rule rules.Rule
	// Pos is the priority position: for inserts, the index the new rule
	// takes (clamped to [0, len]); for deletes, the index removed.
	Pos int
}

// InsertAt builds an insert op.
func InsertAt(pos int, r rules.Rule) Op {
	return Op{Insert: true, Rule: r, Pos: pos}
}

// DeleteAt builds a delete op.
func DeleteAt(pos int) Op {
	return Op{Pos: pos}
}

// Config tunes the swap guard rails. The zero value enables validation
// with the defaults below.
type Config struct {
	// ValidateSamples is the number of sampled headers the shadow
	// conformance check classifies before a swap; 0 means
	// DefaultValidateSamples, negative disables validation.
	ValidateSamples int
	// ValidateSeed seeds the deterministic sample trace (0 means 1).
	ValidateSeed int64
	// MaxBuildAttempts bounds builder retries per rebuild; 0 means
	// DefaultMaxBuildAttempts.
	MaxBuildAttempts int
	// BackoffBase is the sleep before the second build attempt; it
	// doubles per retry up to BackoffMax. 0 means DefaultBackoffBase.
	BackoffBase time.Duration
	// BackoffMax caps the backoff; 0 means DefaultBackoffMax.
	BackoffMax time.Duration
	// BuildTimeout bounds each build attempt: the builder's context
	// carries this deadline, and governed builders abort cooperatively
	// when it expires. 0 means no per-attempt deadline.
	BuildTimeout time.Duration
	// BreakerThreshold is how many consecutive failures (budget trips,
	// build errors or validation rejections) open a rung's circuit
	// breaker; 0 means DefaultBreakerThreshold, negative disables the
	// breakers entirely.
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker blocks its rung
	// before half-opening for one probe build; 0 means
	// DefaultBreakerCooldown.
	BreakerCooldown time.Duration
	// CompactThreshold is how many delta ops accumulate before ApplyDelta
	// kicks off a background compaction folding them into a fresh tree
	// build; 0 means DefaultCompactThreshold, negative disables
	// auto-compaction (Compact can still be called explicitly).
	CompactThreshold int
	// Events, when non-nil, receives flight-recorder entries for the
	// manager's lifecycle transitions: generation swaps, rollbacks, rung
	// changes and circuit-breaker state changes. Events are recorded only
	// on the (mutex-serialized) update path, never during lookups.
	Events *obs.Ring
}

// Guard-rail defaults.
const (
	DefaultValidateSamples  = 256
	DefaultMaxBuildAttempts = 3
	DefaultBackoffBase      = 5 * time.Millisecond
	DefaultBackoffMax       = 250 * time.Millisecond
	DefaultBreakerThreshold = 3
	DefaultBreakerCooldown  = 30 * time.Second
	DefaultCompactThreshold = 256
)

func (c *Config) fillDefaults() {
	if c.ValidateSamples == 0 {
		c.ValidateSamples = DefaultValidateSamples
	}
	if c.ValidateSeed == 0 {
		c.ValidateSeed = 1
	}
	if c.MaxBuildAttempts <= 0 {
		c.MaxBuildAttempts = DefaultMaxBuildAttempts
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = DefaultBackoffBase
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = DefaultBackoffMax
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = DefaultBreakerThreshold
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = DefaultBreakerCooldown
	}
	if c.CompactThreshold == 0 {
		c.CompactThreshold = DefaultCompactThreshold
	}
}

// Health is a point-in-time snapshot of the manager's introspection
// counters.
type Health struct {
	// Generation is the live generation number.
	Generation uint64
	// Rules is the live generation's rule count.
	Rules int
	// MemoryBytes is the live classifier's footprint.
	MemoryBytes int
	// CanRollback reports whether a previous generation is retained.
	CanRollback bool
	// BuildRetries counts builder attempts beyond the first, across all
	// rebuilds.
	BuildRetries uint64
	// FailedBuilds counts rebuilds whose builder never succeeded.
	FailedBuilds uint64
	// FailedValidations counts candidates rejected by the shadow
	// conformance check.
	FailedValidations uint64
	// Rollbacks counts successful Rollback calls.
	Rollbacks uint64
	// ActiveAlgorithm names the rung (or builder-reported algorithm)
	// serving the live generation.
	ActiveAlgorithm string
	// DegradationLevel is the live generation's ladder rung index: 0 is
	// the preferred builder, higher values mean the manager has fallen
	// further down the ladder. Always 0 for single-builder managers.
	DegradationLevel int
	// BudgetTrips counts build attempts aborted by a buildgov budget
	// (wall-clock, node, heap or memo limit).
	BudgetTrips uint64
	// Breakers reports each ladder rung's circuit breaker, in rung
	// order. Empty for single-builder managers.
	Breakers []BreakerStatus
	// LastError describes the most recent failed Apply/Rollback, empty
	// when the last operation succeeded.
	LastError string

	// DeltaOps is the number of edit ops absorbed by the live delta layer
	// since its tree base (0 when no delta is active).
	DeltaOps int
	// DeltaInserted is the number of live delta-inserted rules.
	DeltaInserted int
	// DeltaDead is the number of tree rules masked by delta deletes.
	DeltaDead int
	// DeltaAgeSeconds is how long the oldest unfolded delta has been
	// accumulating (0 when no delta is active).
	DeltaAgeSeconds float64
	// DeltaApplies counts successful ApplyDelta calls.
	DeltaApplies uint64
	// MaskScans counts lookups that fell back to scanning tree survivors
	// because the tree's best match was delta-deleted.
	MaskScans uint64
	// Compactions counts deltas successfully folded into fresh builds;
	// CompactionAborts counts compactions abandoned because the base
	// generation changed mid-build (a full Apply or Rollback landed);
	// CompactionFailures counts compactions whose build or validation
	// failed.
	Compactions        uint64
	CompactionAborts   uint64
	CompactionFailures uint64
	// Compacting reports whether a background compaction is in flight.
	Compacting bool
	// SubmitsCoalesced counts Submit calls whose rule set was superseded
	// in the latest-wins slot before a rebuild picked it up.
	SubmitsCoalesced uint64
}

// BreakerStatus is one rung's circuit-breaker snapshot.
type BreakerStatus struct {
	// Rung is the rung name.
	Rung string
	// State is "closed", "open" or "half-open".
	State string
	// ConsecutiveFailures is the current failure streak (reset on any
	// success).
	ConsecutiveFailures int
}

// breaker is the per-rung circuit breaker. A rung that keeps failing
// (budget trips, build errors, validation rejections) opens after
// BreakerThreshold consecutive failures; while open, rebuilds skip the
// rung so the ladder falls through immediately instead of re-paying a
// doomed build. After BreakerCooldown the breaker half-opens: the next
// rebuild may probe the rung once, and a success closes it again.
type breaker struct {
	fails     int       // consecutive failures
	openUntil time.Time // zero when closed
}

func (b *breaker) allowed(now time.Time, threshold int) bool {
	if threshold < 0 || b.fails < threshold {
		return true
	}
	return !now.Before(b.openUntil) // half-open probe
}

func (b *breaker) fail(now time.Time, threshold int, cooldown time.Duration) {
	b.fails++
	if threshold >= 0 && b.fails >= threshold {
		b.openUntil = now.Add(cooldown)
	}
}

func (b *breaker) success() {
	b.fails = 0
	b.openUntil = time.Time{}
}

func (b *breaker) state(now time.Time, threshold int) string {
	switch {
	case threshold < 0 || b.fails < threshold:
		return "closed"
	case now.Before(b.openUntil):
		return "open"
	default:
		return "half-open"
	}
}

// Manager owns the authoritative rule list and the live classifier
// generation. Classify is wait-free with respect to updates.
type Manager struct {
	build  Builder // legacy single-builder path; nil when ladder is set
	ladder []Rung  // degradation ladder, best rung first; nil for legacy
	cfg    Config
	sleep  func(time.Duration) // time.Sleep, overridable in tests
	now    func() time.Time    // time.Now, overridable in tests

	mu    sync.Mutex // serializes updates, not lookups
	name  string
	rules []rules.Rule
	gen   uint64
	prev  *generation // retained for Rollback; nil initially
	// baseEpoch counts live-tree changes (full rebuilds, rollbacks). The
	// compactor snapshots it before building and aborts its publish if it
	// moved — the optimistic-concurrency check that makes compaction safe
	// against concurrent Apply/Rollback without holding mu across builds.
	baseEpoch uint64
	// compacting marks an in-flight background compaction; while set,
	// ApplyDelta journals its ops so the compactor can replay edits that
	// landed during its build onto the fresh tree.
	compacting bool
	// compactPending bridges the gap between ApplyDelta scheduling an
	// auto-compaction goroutine and that goroutine acquiring mu — without
	// it, Quiesce could observe an idle manager with a compaction about to
	// start.
	compactPending bool
	journal        []Op
	deltaSince     time.Time // when the oldest unfolded delta landed

	// bmu guards the breakers separately from mu so the compactor's
	// off-lock ladder walk can record rung outcomes while an Apply holds
	// mu.
	bmu      sync.Mutex
	breakers []breaker // one per ladder rung

	// pendMu guards the latest-wins submission slot (Submit). pending
	// holds the newest submitted rule set; draining marks the drainer
	// goroutine as live.
	pendMu   sync.Mutex
	pending  []rules.Rule
	draining bool

	buildRetries      atomic.Uint64
	failedBuilds      atomic.Uint64
	failedValidations atomic.Uint64
	rollbacks         atomic.Uint64
	budgetTrips       atomic.Uint64
	lastError         atomic.Pointer[string]

	deltaApplies       obs.Counter
	maskScans          obs.Counter
	compactions        obs.Counter
	compactionAborts   obs.Counter
	compactionFailures obs.Counter
	submitsCoalesced   obs.Counter
	deltaApplyNs       obs.Hist

	live atomic.Pointer[generation]
}

// generation pairs a classifier with the rule snapshot it serves, plus
// the ladder position that produced it. When delta is non-nil the
// classifier was built from delta.Base() and rules holds the combined
// list (base + absorbed edits); lookups resolve the tree's base-index
// answer through the delta. A generation is immutable once published, so
// one live.Load pins a coherent (tree, delta) pair for a whole batch.
type generation struct {
	cl    Classifier
	rules []rules.Rule
	gen   uint64
	algo  string
	rung  int
	delta *tss.Delta // nil when the tree serves its own snapshot
}

// NewManager builds the initial generation from the rule set with the
// default guard rails.
func NewManager(rs *rules.RuleSet, build Builder) (*Manager, error) {
	return NewManagerConfig(rs, build, Config{})
}

// NewManagerConfig is NewManager with explicit guard-rail configuration.
func NewManagerConfig(rs *rules.RuleSet, build Builder, cfg Config) (*Manager, error) {
	cfg.fillDefaults()
	m := &Manager{
		build: build,
		cfg:   cfg,
		sleep: time.Sleep,
		now:   time.Now,
		name:  rs.Name,
		rules: append([]rules.Rule(nil), rs.Rules...),
	}
	m.breakers = make([]breaker, 1)
	if err := m.rebuildLocked(); err != nil {
		return nil, err
	}
	return m, nil
}

// NewManagerLadder builds the initial generation through a degradation
// ladder: rungs are tried best-first, each guarded by its own circuit
// breaker, and the first rung that builds within budget and validates
// against the linear oracle serves. As long as the final rung is total
// (DefaultLadder ends on linear search, which cannot fail), a servable
// generation is always produced no matter how hostile the rule set is to
// the preferred builders.
func NewManagerLadder(rs *rules.RuleSet, ladder []Rung, cfg Config) (*Manager, error) {
	if len(ladder) == 0 {
		return nil, fmt.Errorf("update: ladder must have at least one rung")
	}
	for i, r := range ladder {
		if r.Build == nil {
			return nil, fmt.Errorf("update: ladder rung %d (%q) has a nil builder", i, r.Name)
		}
		if r.Name == "" {
			ladder[i].Name = fmt.Sprintf("rung%d", i)
		}
	}
	cfg.fillDefaults()
	m := &Manager{
		ladder: ladder,
		cfg:    cfg,
		sleep:  time.Sleep,
		now:    time.Now,
		name:   rs.Name,
		rules:  append([]rules.Rule(nil), rs.Rules...),
	}
	m.breakers = make([]breaker, len(ladder))
	if err := m.rebuildLocked(); err != nil {
		return nil, err
	}
	return m, nil
}

// Classify classifies against the live generation. The returned index
// refers to that generation's snapshot; use Snapshot for the matching rule
// list. With a delta layer active, the tree's answer is resolved through
// it — inserted rules can win, deleted rules are masked — still with zero
// locking and zero allocation.
func (m *Manager) Classify(h rules.Header) int {
	g := m.live.Load()
	match := g.cl.Classify(h)
	if g.delta != nil {
		return g.delta.Resolve(h, match)
	}
	return match
}

// ClassifyBatch classifies hs[i] into out[i] against the live generation.
// The generation pointer is loaded once for the whole batch, so every
// packet in a batch classifies against the same consistent snapshot even
// if an Apply lands mid-batch — a strictly stronger consistency grain
// than the per-packet loop, at one atomic load per batch instead of one
// per packet.
func (m *Manager) ClassifyBatch(hs []rules.Header, out []int) {
	g := m.live.Load()
	out = out[:len(hs)]
	if bc, ok := g.cl.(BatchClassifier); ok {
		bc.ClassifyBatch(hs, out)
	} else {
		for i, h := range hs {
			out[i] = g.cl.Classify(h)
		}
	}
	if g.delta != nil {
		// One generation load covers tree and delta alike: the pair was
		// published together, so the whole batch resolves against one
		// coherent (tree, delta) snapshot.
		g.delta.ResolveBatch(hs, out)
	}
}

// ClassifyBatchPipelined is ClassifyBatch over the software-pipelined
// stage walk: the same single generation load brackets the whole batch,
// the staged walk runs when the live rung supports it, and the delta
// overlay resolves against the identical (tree, delta) snapshot. Rungs
// without a pipelined walk (hicuts, hsm, linear fallbacks) serve through
// their plain batch path — the knob never changes answers, only the walk
// schedule.
func (m *Manager) ClassifyBatchPipelined(hs []rules.Header, out []int, group int, affine bool) {
	g := m.live.Load()
	out = out[:len(hs)]
	if pc, ok := g.cl.(PipelinedClassifier); ok {
		pc.ClassifyBatchPipelined(hs, out, group, affine)
	} else if bc, ok := g.cl.(BatchClassifier); ok {
		bc.ClassifyBatch(hs, out)
	} else {
		for i, h := range hs {
			out[i] = g.cl.Classify(h)
		}
	}
	if g.delta != nil {
		g.delta.ResolveBatch(hs, out)
	}
}

// Snapshot returns the live generation's rule list (callers must not
// modify it) and generation number.
func (m *Manager) Snapshot() ([]rules.Rule, uint64) {
	g := m.live.Load()
	return g.rules, g.gen
}

// Generation returns the live generation number; it increments on every
// successful Apply or Rollback and never moves backwards. Monotonicity
// is a contract: the engine's sharded serving path brackets each batch
// with two Generation reads and takes an equal pair to mean the whole
// batch — every flow-cache hit and miss in it — was served by that one
// generation, so no batch on any shard ever straddles a swap.
func (m *Manager) Generation() uint64 {
	return m.live.Load().gen
}

// MemoryBytes reports the live classifier's footprint, including the
// delta layer's side table when one is active.
func (m *Manager) MemoryBytes() int {
	g := m.live.Load()
	b := g.cl.MemoryBytes()
	if g.delta != nil {
		b += g.delta.MemoryBytes()
	}
	return b
}

// Health returns the manager's introspection counters.
func (m *Manager) Health() Health {
	m.mu.Lock()
	canRollback := m.prev != nil
	compacting := m.compacting
	deltaSince := m.deltaSince
	m.mu.Unlock()
	var breakers []BreakerStatus
	if len(m.ladder) > 0 {
		now := m.now()
		breakers = make([]BreakerStatus, len(m.ladder))
		m.bmu.Lock()
		for i := range m.ladder {
			breakers[i] = BreakerStatus{
				Rung:                m.ladder[i].Name,
				State:               m.breakers[i].state(now, m.cfg.BreakerThreshold),
				ConsecutiveFailures: m.breakers[i].fails,
			}
		}
		m.bmu.Unlock()
	}
	g := m.live.Load()
	h := Health{
		Generation:        g.gen,
		Rules:             len(g.rules),
		MemoryBytes:       g.cl.MemoryBytes(),
		CanRollback:       canRollback,
		BuildRetries:      m.buildRetries.Load(),
		FailedBuilds:      m.failedBuilds.Load(),
		FailedValidations: m.failedValidations.Load(),
		Rollbacks:         m.rollbacks.Load(),
		ActiveAlgorithm:   g.algo,
		DegradationLevel:  g.rung,
		BudgetTrips:       m.budgetTrips.Load(),
		Breakers:          breakers,

		DeltaApplies:       m.deltaApplies.Load(),
		MaskScans:          m.maskScans.Load(),
		Compactions:        m.compactions.Load(),
		CompactionAborts:   m.compactionAborts.Load(),
		CompactionFailures: m.compactionFailures.Load(),
		Compacting:         compacting,
		SubmitsCoalesced:   m.submitsCoalesced.Load(),
	}
	if g.delta != nil {
		h.DeltaOps = g.delta.Ops()
		h.DeltaInserted = g.delta.Inserted()
		h.DeltaDead = g.delta.Dead()
		if !deltaSince.IsZero() {
			h.DeltaAgeSeconds = m.now().Sub(deltaSince).Seconds()
		}
	}
	if s := m.lastError.Load(); s != nil {
		h.LastError = *s
	}
	return h
}

// DescribeAlgorithm reports the live generation's algorithm name and
// degradation level (ladder rung index; 0 = preferred). It satisfies the
// engine's Describer interface so engine.Stats can attribute each run to
// the rung that served it.
func (m *Manager) DescribeAlgorithm() (algo string, degradation int) {
	g := m.live.Load()
	return g.algo, g.rung
}

// Apply validates and applies a batch of ops atomically: either the whole
// batch becomes visible as one new generation, or the live generation is
// unchanged. The fast path keeps serving the old generation during the
// rebuild; the candidate passes the shadow conformance check before the
// swap.
func (m *Manager) Apply(ops []Op) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	next := append([]rules.Rule(nil), m.rules...)
	for i, op := range ops {
		if op.Insert {
			pos := op.Pos
			if pos < 0 {
				pos = 0
			}
			if pos > len(next) {
				pos = len(next)
			}
			next = append(next, rules.Rule{})
			copy(next[pos+1:], next[pos:])
			next[pos] = op.Rule
			continue
		}
		if op.Pos < 0 || op.Pos >= len(next) {
			return m.fail(fmt.Errorf("update: op %d deletes position %d of %d rules", i, op.Pos, len(next)))
		}
		next = append(next[:op.Pos], next[op.Pos+1:]...)
	}
	if len(next) == 0 {
		return m.fail(fmt.Errorf("update: batch would empty the rule set"))
	}
	old := m.rules
	m.rules = next
	if err := m.rebuildLocked(); err != nil {
		m.rules = old
		return m.fail(fmt.Errorf("update: rebuild failed, batch rolled back: %w", err))
	}
	m.clearError()
	return nil
}

// Rollback atomically reinstates the previous generation — its classifier
// and rule snapshot become authoritative under a new generation number,
// with no rebuild and no validation (the generation already served).
// It fails when no previous generation is retained; rolling back twice
// swaps forth and back.
func (m *Manager) Rollback() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.prev == nil {
		return m.fail(fmt.Errorf("update: no previous generation to roll back to"))
	}
	target := m.prev
	m.prev = m.live.Load()
	m.rules = append([]rules.Rule(nil), target.rules...)
	m.gen++
	// The live tree base changed: an in-flight compaction built against
	// the rolled-away state must abort at its publish check.
	m.baseEpoch++
	m.live.Store(&generation{cl: target.cl, rules: target.rules, gen: m.gen,
		algo: target.algo, rung: target.rung, delta: target.delta})
	if target.delta == nil {
		m.deltaSince = time.Time{}
	} else if m.deltaSince.IsZero() {
		m.deltaSince = m.now()
	}
	m.rollbacks.Add(1)
	m.cfg.Events.Recordf(obs.EventRollback,
		"generation %d reinstates %s (rung %d)", m.gen, target.algo, target.rung)
	m.clearError()
	return nil
}

// rebuildLocked builds, validates and publishes a new generation from
// m.rules, retaining the outgoing generation for Rollback. Any delta
// layer on the outgoing generation is absorbed: the new tree is built
// from the full combined list, so the published generation serves with
// delta == nil.
func (m *Manager) rebuildLocked() error {
	snapshot := append([]rules.Rule(nil), m.rules...)
	rs := rules.NewRuleSet(fmt.Sprintf("%s@%d", m.name, m.gen+1), snapshot)
	cl, algo, rung, err := m.buildLadder(rs)
	if err != nil {
		return err
	}
	m.publishLocked(cl, snapshot, algo, rung, nil)
	return nil
}

// publishLocked installs a built-and-validated classifier as the new live
// generation (mu held). The tree base changed, so baseEpoch advances and
// any in-flight compaction will abort at its publish check.
func (m *Manager) publishLocked(cl Classifier, snapshot []rules.Rule, algo string, rung int, delta *tss.Delta) {
	m.gen++
	m.baseEpoch++
	cur := m.live.Load()
	if cur != nil {
		m.prev = cur
	}
	m.live.Store(&generation{cl: cl, rules: snapshot, gen: m.gen, algo: algo, rung: rung, delta: delta})
	if delta == nil {
		m.deltaSince = time.Time{}
	} else {
		m.deltaSince = m.now()
	}
	m.cfg.Events.Recordf(obs.EventSwap,
		"generation %d live: %s (rung %d, %d rules)", m.gen, algo, rung, len(snapshot))
	if cur != nil && cur.rung != rung {
		m.cfg.Events.Recordf(obs.EventRungChange,
			"degradation level %d -> %d (%s -> %s)", cur.rung, rung, cur.algo, algo)
	}
}

// buildLadder walks the degradation ladder best-first and returns the
// first classifier that builds within budget and validates, with its
// algorithm name and rung index. Rungs whose breaker is open are skipped
// (the final rung is always attempted if nothing else was, so a fully
// tripped ladder still reaches its total fallback); a rung that fails
// records on its breaker, a rung that serves closes it. Breaker access
// goes through bmu, not mu, so this walk runs identically under
// rebuildLocked (mu held) and under the background compactor (mu
// released) — two walks may interleave, each a short uncontended lock
// per breaker touch.
func (m *Manager) buildLadder(rs *rules.RuleSet) (Classifier, string, int, error) {
	ladder := m.ladder
	if ladder == nil {
		// Legacy single-builder path, wrapped lazily so tests swapping
		// m.build keep working. The empty name makes the success path
		// derive the algorithm from the classifier itself.
		build := m.build
		ladder = []Rung{{Build: func(_ context.Context, rs *rules.RuleSet) (Classifier, error) {
			return build(rs)
		}}}
	}
	now := m.now()
	// failRung records a rung failure on its breaker and emits a
	// flight-recorder event exactly when the failure transitioned the
	// breaker into the open state.
	failRung := func(i int) {
		m.bmu.Lock()
		before := m.breakers[i].state(now, m.cfg.BreakerThreshold)
		m.breakers[i].fail(now, m.cfg.BreakerThreshold, m.cfg.BreakerCooldown)
		opened := before != "open" && m.breakers[i].state(now, m.cfg.BreakerThreshold) == "open"
		fails := m.breakers[i].fails
		m.bmu.Unlock()
		if opened {
			m.cfg.Events.Recordf(obs.EventBreakerOpen,
				"rung %s breaker opened after %d consecutive failures",
				rungName(ladder, i), fails)
		}
	}
	var failures []error
	for i := range ladder {
		m.bmu.Lock()
		allowed := m.breakers[i].allowed(now, m.cfg.BreakerThreshold)
		state := m.breakers[i].state(now, m.cfg.BreakerThreshold)
		m.bmu.Unlock()
		// The final rung is always attempted: a servable generation
		// beats breaker hygiene, and DefaultLadder ends on linear
		// search, which cannot fail.
		if i != len(ladder)-1 && !allowed {
			failures = append(failures, fmt.Errorf("%s: breaker open", rungName(ladder, i)))
			continue
		}
		if state == "half-open" {
			m.cfg.Events.Recordf(obs.EventBreakerHalfOpen,
				"rung %s breaker half-open, probing one build", rungName(ladder, i))
		}
		cl, err := m.buildRungWithRetry(ladder[i], rs)
		if err != nil {
			m.failedBuilds.Add(1)
			if errors.Is(err, buildgov.ErrBudgetExceeded) {
				m.budgetTrips.Add(1)
			}
			failRung(i)
			failures = append(failures, fmt.Errorf("%s: %w", rungName(ladder, i), err))
			continue
		}
		if err := m.validate(cl, rs); err != nil {
			m.failedValidations.Add(1)
			failRung(i)
			failures = append(failures, fmt.Errorf("%s: %w", rungName(ladder, i), err))
			continue
		}
		m.bmu.Lock()
		wasClosed := m.breakers[i].state(now, m.cfg.BreakerThreshold) == "closed"
		m.breakers[i].success()
		m.bmu.Unlock()
		if !wasClosed {
			m.cfg.Events.Recordf(obs.EventBreakerClose,
				"rung %s breaker closed after successful build", rungName(ladder, i))
		}
		algo := ladder[i].Name
		if algo == "" {
			if n, ok := cl.(interface{ Name() string }); ok {
				algo = n.Name()
			} else {
				algo = "custom"
			}
		}
		return cl, algo, i, nil
	}
	return nil, "", 0, fmt.Errorf("update: every ladder rung failed: %w", errors.Join(failures...))
}

func rungName(ladder []Rung, i int) string {
	if ladder[i].Name != "" {
		return ladder[i].Name
	}
	return fmt.Sprintf("rung%d", i)
}

// buildRungWithRetry drives one rung's builder through up to
// MaxBuildAttempts tries with capped exponential backoff. Budget trips
// are not retried: a governed build that exceeded its budget is
// deterministic, so the retry would pay the whole budget again just to
// fail identically — the ladder falls through instead.
func (m *Manager) buildRungWithRetry(rung Rung, rs *rules.RuleSet) (Classifier, error) {
	backoff := m.cfg.BackoffBase
	var lastErr error
	for attempt := 1; attempt <= m.cfg.MaxBuildAttempts; attempt++ {
		if attempt > 1 {
			m.buildRetries.Add(1)
			m.sleep(backoff)
			backoff *= 2
			if backoff > m.cfg.BackoffMax {
				backoff = m.cfg.BackoffMax
			}
		}
		cl, err := m.buildOnce(rung, rs)
		if err == nil {
			if cl == nil {
				return nil, fmt.Errorf("update: builder returned a nil classifier")
			}
			return cl, nil
		}
		lastErr = err
		if errors.Is(err, buildgov.ErrBudgetExceeded) {
			return nil, fmt.Errorf("update: build aborted by budget on attempt %d: %w", attempt, err)
		}
	}
	return nil, fmt.Errorf("update: builder failed %d times, last: %w", m.cfg.MaxBuildAttempts, lastErr)
}

// buildOnce runs a single build attempt under the configured per-attempt
// deadline.
func (m *Manager) buildOnce(rung Rung, rs *rules.RuleSet) (Classifier, error) {
	ctx := context.Background()
	if m.cfg.BuildTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, m.cfg.BuildTimeout)
		defer cancel()
	}
	return rung.Build(ctx, rs)
}

// validate shadow-checks the candidate against priority linear search over
// the authoritative rule list on a deterministic sampled header set.
func (m *Manager) validate(cl Classifier, rs *rules.RuleSet) error {
	if m.cfg.ValidateSamples < 0 {
		return nil
	}
	tr, err := pktgen.Generate(rs, pktgen.Config{
		Count:         m.cfg.ValidateSamples,
		Seed:          m.cfg.ValidateSeed,
		MatchFraction: 0.9,
	})
	if err != nil {
		return fmt.Errorf("update: generating validation sample: %w", err)
	}
	for _, h := range tr.Headers {
		got := safeClassify(cl, h)
		if want := rs.Match(h); got != want {
			return fmt.Errorf("update: validation failed: candidate classifies %v as %d, linear oracle says %d", h, got, want)
		}
	}
	return nil
}

// safeClassify contains candidate panics during validation: a classifier
// that panics on a sampled header is as rejected as one that misclassifies.
func safeClassify(cl Classifier, h rules.Header) (match int) {
	defer func() {
		if recover() != nil {
			match = -2 // never a legal match value, so validation fails
		}
	}()
	return cl.Classify(h)
}

// fail records err in Health.LastError and returns it.
func (m *Manager) fail(err error) error {
	s := err.Error()
	m.lastError.Store(&s)
	return err
}

func (m *Manager) clearError() {
	m.lastError.Store(nil)
}
