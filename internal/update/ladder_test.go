package update_test

// End-to-end degradation-ladder proof with the real builders: a rule set
// hostile to every sophisticated algorithm, under a tiny budget, walks
// the default ladder to its total linear rung — and the resulting
// manager still classifies every sampled header exactly like the oracle.

import (
	"runtime"
	"testing"
	"time"

	"repro/internal/buildgov"
	"repro/internal/engine"
	"repro/internal/faultinject"
	"repro/internal/pktgen"
	"repro/internal/update"
)

func waitNoLeaks(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutine leak: %d running, baseline %d", runtime.NumGoroutine(), base)
}

func TestDefaultLadderLandsOnLinearAndMatchesOracle(t *testing.T) {
	base := runtime.NumGoroutine()
	storm := faultinject.WildcardStorm("storm", 200, 7)
	budget := &buildgov.Budget{
		Timeout:        100 * time.Millisecond,
		MaxNodes:       500,
		MaxHeapBytes:   4 << 20,
		MaxMemoEntries: 500,
	}
	start := time.Now()
	m, err := update.NewManagerLadder(storm, update.DefaultLadder(budget),
		update.Config{MaxBuildAttempts: 1})
	if err != nil {
		t.Fatalf("ladder failed to produce a generation: %v", err)
	}
	elapsed := time.Since(start)
	// Three governed rungs, each bounded by the 100ms budget plus
	// cooperative-cancellation slack, then the instant linear rung.
	if elapsed > 3*2*100*time.Millisecond {
		t.Fatalf("degradation walk took %v, want < 600ms", elapsed)
	}

	h := m.Health()
	if h.ActiveAlgorithm != "linear" || h.DegradationLevel != 3 {
		t.Fatalf("serving %q at level %d, want linear at 3 (health: %+v)", h.ActiveAlgorithm, h.DegradationLevel, h)
	}
	if h.BudgetTrips < 3 {
		t.Fatalf("BudgetTrips = %d, want >= 3 (every governed rung tripped)", h.BudgetTrips)
	}
	for i, b := range h.Breakers[:3] {
		if b.ConsecutiveFailures == 0 {
			t.Fatalf("breaker %d (%s) recorded no failure: %+v", i, b.Rung, h.Breakers)
		}
	}

	// The degraded generation must still be *correct*: every sampled
	// header classifies exactly like priority linear search.
	tr, err := pktgen.Generate(storm, pktgen.Config{Count: 2000, Seed: 99, MatchFraction: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	for _, hd := range tr.Headers {
		if got, want := m.Classify(hd), storm.Match(hd); got != want {
			t.Fatalf("degraded ladder classifies %v as %d, oracle says %d", hd, got, want)
		}
	}
	waitNoLeaks(t, base)
}

// The engine attributes runs to the rung that served them via the
// Describer interface.
func TestEngineStatsCarryDegradationState(t *testing.T) {
	storm := faultinject.WildcardStorm("storm", 120, 11)
	budget := &buildgov.Budget{Timeout: 50 * time.Millisecond, MaxNodes: 200, MaxMemoEntries: 200, MaxHeapBytes: 2 << 20}
	m, err := update.NewManagerLadder(storm, update.DefaultLadder(budget),
		update.Config{MaxBuildAttempts: 1})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := pktgen.Generate(storm, pktgen.Config{Count: 64, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	st, err := engine.Run(m, engine.Config{Workers: 2}, tr.Headers, func(engine.Result) {})
	if err != nil {
		t.Fatal(err)
	}
	if st.Algorithm != "linear" || st.DegradationLevel != 3 {
		t.Fatalf("engine stats attribute run to %q/%d, want linear/3", st.Algorithm, st.DegradationLevel)
	}
}

// A builder that has stopped making progress cannot wedge the manager:
// the per-attempt BuildTimeout cancels it and the ladder falls through.
func TestStalledBuilderIsUnblockedByBuildTimeout(t *testing.T) {
	base := runtime.NumGoroutine()
	rs := faultinject.OverlapGrid("grid", 4)
	var stalled faultinject.StalledBuilder
	linearRung, err := update.LadderFromNames([]string{"linear"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ladder := append([]update.Rung{{Name: "stalled", Build: stalled.Build}}, linearRung...)

	start := time.Now()
	m, err := update.NewManagerLadder(rs, ladder, update.Config{
		BuildTimeout:     100 * time.Millisecond,
		MaxBuildAttempts: 1,
	})
	if err != nil {
		t.Fatalf("stalled rung wedged the manager: %v", err)
	}
	elapsed := time.Since(start)
	if elapsed > time.Second {
		t.Fatalf("manager took %v to route around the stall, want ~100ms", elapsed)
	}
	if calls := stalled.Calls(); calls != 1 {
		t.Fatalf("stalled builder called %d times, want 1", calls)
	}
	if h := m.Health(); h.ActiveAlgorithm != "linear" || h.DegradationLevel != 1 {
		t.Fatalf("serving %q/%d, want linear/1", h.ActiveAlgorithm, h.DegradationLevel)
	}
	waitNoLeaks(t, base)
}

// A builder that would allocate without bound trips the byte budget on
// its first attempt — no retry, one BudgetTrips increment — and the
// ladder serves the fallback.
func TestHungryBuilderTripsByteBudget(t *testing.T) {
	rs := faultinject.OverlapGrid("grid", 4)
	hungry := faultinject.HungryBuilder{
		Budget:     &buildgov.Budget{MaxHeapBytes: 8 << 20},
		ChunkBytes: 1 << 20,
	}
	linearRung, err := update.LadderFromNames([]string{"linear"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ladder := append([]update.Rung{{Name: "hungry", Build: hungry.Build}}, linearRung...)
	m, err := update.NewManagerLadder(rs, ladder, update.Config{MaxBuildAttempts: 3})
	if err != nil {
		t.Fatal(err)
	}
	if calls := hungry.Calls(); calls != 1 {
		t.Fatalf("hungry builder attempted %d times, want 1 (budget trips are not retried)", calls)
	}
	h := m.Health()
	if h.BudgetTrips != 1 || h.ActiveAlgorithm != "linear" {
		t.Fatalf("health = trips %d, algo %q; want 1 trip and linear", h.BudgetTrips, h.ActiveAlgorithm)
	}
}
