// Delta-layer updates: the microsecond path for live rule churn.
//
// Apply rebuilds a decision tree per batch — milliseconds at best, and a
// burst of edits serializes behind builds. ApplyDelta instead absorbs
// edits into a tuple-space side table (internal/tss) layered over the
// immutable live tree: inserts land as O(1) hash-table entries, deletes
// mask tree rules, and every lookup resolves to the first match over the
// combined view. The tree goes stale only in the sense that its answers
// pass through the delta; correctness is unchanged, and a background
// compaction folds accumulated deltas into a fresh budgeted build through
// the same shadow-validate + atomic-swap + rollback machinery full
// rebuilds use. Serving stays correct off (old tree + full delta) for the
// entire compaction, and Rollback remains instant throughout.
package update

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/obs"
	"repro/internal/rules"
	"repro/internal/tss"
)

// Compaction outcome sentinels.
var (
	// ErrCompactionConflict: Compact was called while another compaction
	// was already in flight.
	ErrCompactionConflict = errors.New("update: a compaction is already in flight")
	// ErrCompactionAborted: the base generation changed (full Apply,
	// Submit or Rollback landed) while the compactor was building, so its
	// candidate was discarded. Nothing was lost: the edits it meant to
	// fold are still live in the delta layer.
	ErrCompactionAborted = errors.New("update: compaction aborted: base generation changed during build")
)

func toTSSOps(ops []Op) []tss.Op {
	out := make([]tss.Op, len(ops))
	for i, op := range ops {
		out[i] = tss.Op{Insert: op.Insert, Rule: op.Rule, Pos: op.Pos}
	}
	return out
}

// ApplyDelta absorbs a batch of ops into the delta layer and publishes
// the result as a new generation in microseconds — no tree build, no
// validation pass (the delta structures are exact by construction, unlike
// a compiled tree candidate). The batch is atomic and positions share the
// priority space of Apply: feeding the same edit stream to either path
// yields the same rule list. Lookups immediately serve the combined view;
// a delta delete masks its tree rule from the very next Classify.
//
// When the accumulated delta crosses Config.CompactThreshold a background
// compaction starts automatically (unless one is already running or the
// threshold is negative).
func (m *Manager) ApplyDelta(ops []Op) error {
	if len(ops) == 0 {
		return nil
	}
	start := time.Now()
	m.mu.Lock()
	defer m.mu.Unlock()
	g := m.live.Load()
	d := g.delta
	if d == nil {
		d = tss.NewDelta(g.rules, &m.maskScans)
	}
	nd, err := d.Apply(toTSSOps(ops))
	if err != nil {
		return m.fail(fmt.Errorf("update: delta apply: %w", err))
	}
	m.rules = nd.Rules()
	m.gen++
	m.prev = g
	m.live.Store(&generation{cl: g.cl, rules: nd.Rules(), gen: m.gen,
		algo: g.algo, rung: g.rung, delta: nd})
	if g.delta == nil {
		m.deltaSince = m.now()
	}
	if m.compacting {
		// A compactor is building against the pre-batch state: journal
		// the ops so it can replay them onto the fresh tree at publish.
		m.journal = append(m.journal, ops...)
	}
	m.deltaApplies.Inc()
	m.deltaApplyNs.Observe(uint64(time.Since(start)))
	m.clearError()
	if t := m.cfg.CompactThreshold; t > 0 && nd.Ops() >= t && !m.compacting && !m.compactPending {
		m.compactPending = true
		go func() { _ = m.compactOnce() }()
	}
	return nil
}

// Compact synchronously folds the accumulated delta into a fresh tree
// build through the ladder + shadow-validation path. It returns nil when
// there was nothing to fold, ErrCompactionConflict when a compaction is
// already in flight, and ErrCompactionAborted when a concurrent full
// rebuild or rollback invalidated the build (the delta stays live, so
// nothing is lost). Serving continues off (old tree + full delta) for the
// whole call.
func (m *Manager) Compact() error {
	return m.compactOnce()
}

// compactOnce is one compaction attempt: snapshot the combined rule list
// under mu, build and validate a fresh classifier with mu released (so
// ApplyDelta keeps landing in microseconds throughout), then publish
// under mu — but only if the base generation is still the one the
// snapshot came from, and with any mid-build edits replayed onto the new
// tree as a fresh (much smaller) delta. The optimistic epoch check plus
// the journal replay is what guarantees no edit is ever lost or applied
// twice across a compaction, no matter how Apply, ApplyDelta and
// Rollback interleave with it.
func (m *Manager) compactOnce() error {
	m.mu.Lock()
	m.compactPending = false
	if m.compacting {
		m.mu.Unlock()
		return ErrCompactionConflict
	}
	g := m.live.Load()
	if g.delta == nil || g.delta.Empty() {
		m.mu.Unlock()
		return nil
	}
	m.compacting = true
	m.journal = nil
	epoch := m.baseEpoch
	snapshot := append([]rules.Rule(nil), g.rules...)
	m.mu.Unlock()

	rs := rules.NewRuleSet(fmt.Sprintf("%s@compact%d", m.name, epoch), snapshot)
	cl, algo, rung, buildErr := m.buildLadder(rs)

	m.mu.Lock()
	defer m.mu.Unlock()
	m.compacting = false
	journal := m.journal
	m.journal = nil
	if buildErr != nil {
		// Breakers already recorded per-rung failures inside buildLadder;
		// serving is untouched (old tree + full delta, still exact).
		m.compactionFailures.Inc()
		m.cfg.Events.Recordf(obs.EventCompactAbort, "compaction build failed: %v", buildErr)
		return m.fail(fmt.Errorf("update: compaction failed: %w", buildErr))
	}
	if m.baseEpoch != epoch {
		m.compactionAborts.Inc()
		m.cfg.Events.Recordf(obs.EventCompactAbort,
			"compaction discarded: base generation changed during build")
		return ErrCompactionAborted
	}
	var nd *tss.Delta
	cur := snapshot
	if len(journal) > 0 {
		d, err := tss.NewDelta(snapshot, &m.maskScans).Apply(toTSSOps(journal))
		if err != nil {
			// Unreachable by construction: every journaled op was already
			// validated by the ApplyDelta that recorded it, against exactly
			// the list state this replay reproduces.
			m.compactionFailures.Inc()
			return m.fail(fmt.Errorf("update: compaction journal replay: %w", err))
		}
		nd = d
		cur = d.Rules()
	}
	m.rules = cur
	m.publishLocked(cl, cur, algo, rung, nd)
	m.compactions.Inc()
	m.cfg.Events.Recordf(obs.EventCompact,
		"generation %d compacted onto %s: %d rules, %d mid-build ops replayed",
		m.gen, algo, len(snapshot), len(journal))
	m.clearError()
	return nil
}

// Submit queues a full rule-set replacement through a one-deep
// latest-wins slot. Unlike Apply, Submit never blocks behind an in-flight
// rebuild (including its retry backoff): the newest submission simply
// replaces any still-waiting one — superseded rule sets were never going
// to serve anyway — and a single drainer goroutine applies the latest
// once the current rebuild finishes. Rebuild failures land in
// Health.LastError exactly like a failed Apply.
func (m *Manager) Submit(rs []rules.Rule) {
	m.pendMu.Lock()
	if m.pending != nil {
		m.submitsCoalesced.Inc()
	}
	m.pending = append([]rules.Rule(nil), rs...)
	if m.draining {
		m.pendMu.Unlock()
		return
	}
	m.draining = true
	m.pendMu.Unlock()
	go m.drainSubmits()
}

// drainSubmits applies pending submissions until the slot stays empty.
// At most one drainer runs at a time (the draining flag), so submissions
// serialize through it while Submit itself stays non-blocking.
func (m *Manager) drainSubmits() {
	for {
		m.pendMu.Lock()
		rs := m.pending
		m.pending = nil
		if rs == nil {
			m.draining = false
			m.pendMu.Unlock()
			return
		}
		m.pendMu.Unlock()
		_ = m.SetRules(rs)
	}
}

// SetRules synchronously replaces the whole rule list through the guarded
// rebuild path (build, shadow-validate, atomic swap; any delta layer is
// absorbed into the new tree). It is Apply for callers that already hold
// the desired final list instead of an edit script.
func (m *Manager) SetRules(rs []rules.Rule) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(rs) == 0 {
		return m.fail(fmt.Errorf("update: empty rule set submitted"))
	}
	old := m.rules
	m.rules = append([]rules.Rule(nil), rs...)
	if err := m.rebuildLocked(); err != nil {
		m.rules = old
		return m.fail(fmt.Errorf("update: rebuild failed, submission rolled back: %w", err))
	}
	m.clearError()
	return nil
}

// Quiesce blocks until no submission is pending or draining and no
// compaction is in flight, or until timeout elapses; it reports whether
// the manager quiesced. Intended for tests and orderly shutdown.
//
// Idle is decided as one atomic observation with both locks held
// (pendMu, then mu — the nesting is safe because no path acquires pendMu
// while holding mu: the drainer releases pendMu before SetRules takes
// mu). Checking the two halves under separate acquisitions left a
// window: a Submit landing between them — typically one that had been
// waiting on pendMu behind a coalescing peer — made Quiesce report idle
// with a submission pending and a drainer about to run, so callers
// observed the coalesced rule set swap in *after* Quiesce returned true.
func (m *Manager) Quiesce(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		m.pendMu.Lock()
		idle := m.pending == nil && !m.draining
		if idle {
			m.mu.Lock()
			idle = !m.compacting && !m.compactPending
			m.mu.Unlock()
		}
		m.pendMu.Unlock()
		if idle {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(200 * time.Microsecond)
	}
}
