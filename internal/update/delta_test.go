package update

import (
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/rulegen"
	"repro/internal/rules"
)

func denyHost(addr uint32) rules.Rule {
	return rules.Rule{
		SrcIP:   rules.Prefix{Addr: addr, Len: 32},
		SrcPort: rules.FullPortRange, DstPort: rules.FullPortRange,
		Proto: rules.AnyProto, Action: rules.ActionDeny,
	}
}

func TestApplyDeltaServesImmediately(t *testing.T) {
	m, rs := newManager(t)
	genBefore := m.Generation()
	target := denyHost(0x0A0B0C0D)
	if err := m.ApplyDelta([]Op{InsertAt(0, target)}); err != nil {
		t.Fatal(err)
	}
	if m.Generation() != genBefore+1 {
		t.Errorf("generation = %d, want %d (delta publishes a generation)", m.Generation(), genBefore+1)
	}
	h := rules.Header{SrcIP: 0x0A0B0C0D, DstIP: 1, SrcPort: 5, DstPort: 6, Proto: 7}
	if got := m.Classify(h); got != 0 {
		t.Errorf("Classify = %d, want the delta-inserted rule 0", got)
	}
	checkAgainstSnapshot(t, m, headers(t, rs, 600))
	hh := m.Health()
	if hh.DeltaOps != 1 || hh.DeltaInserted != 1 || hh.DeltaApplies != 1 {
		t.Errorf("delta health: %+v", hh)
	}
	if hh.DeltaAgeSeconds < 0 {
		t.Errorf("DeltaAgeSeconds = %v", hh.DeltaAgeSeconds)
	}
}

func TestDeltaDeleteMasksTreeRule(t *testing.T) {
	m, rs := newManager(t)
	hs := headers(t, rs, 800)
	// Delete the highest-priority rule through the delta layer: the tree
	// still contains it, but no lookup may ever serve it again.
	if err := m.ApplyDelta([]Op{DeleteAt(0)}); err != nil {
		t.Fatal(err)
	}
	snap, _ := m.Snapshot()
	if len(snap) != rs.Len()-1 {
		t.Fatalf("snapshot %d rules, want %d", len(snap), rs.Len()-1)
	}
	checkAgainstSnapshot(t, m, hs)
	if h := m.Health(); h.DeltaDead != 1 {
		t.Errorf("DeltaDead = %d, want 1", h.DeltaDead)
	}
}

// TestApplyDeltaMatchesApply feeds the identical randomized edit stream
// through the rebuild path and the delta path; the two managers must
// agree on every snapshot and every classification.
func TestApplyDeltaMatchesApply(t *testing.T) {
	mFull, rs := newManager(t)
	mDelta, _ := newManager(t)
	extra, err := rulegen.Generate(rulegen.Config{Kind: rulegen.Firewall, Size: 30, Seed: 777})
	if err != nil {
		t.Fatal(err)
	}
	hs := headers(t, rs, 500)
	rng := rand.New(rand.NewSource(778))
	n := rs.Len()
	for round := 0; round < 12; round++ {
		var ops []Op
		for k := 0; k < 1+rng.Intn(3); k++ {
			if n > 5 && rng.Intn(2) == 0 {
				ops = append(ops, DeleteAt(rng.Intn(n)))
				n--
			} else {
				ops = append(ops, InsertAt(rng.Intn(n+1), extra.Rules[rng.Intn(extra.Len())]))
				n++
			}
		}
		if err := mFull.Apply(ops); err != nil {
			t.Fatalf("round %d full: %v", round, err)
		}
		if err := mDelta.ApplyDelta(ops); err != nil {
			t.Fatalf("round %d delta: %v", round, err)
		}
		sf, _ := mFull.Snapshot()
		sd, _ := mDelta.Snapshot()
		if len(sf) != len(sd) {
			t.Fatalf("round %d: snapshots %d vs %d rules", round, len(sf), len(sd))
		}
		for i := range sf {
			if sf[i] != sd[i] {
				t.Fatalf("round %d: rule %d differs", round, i)
			}
		}
		for _, h := range hs {
			if a, b := mFull.Classify(h), mDelta.Classify(h); a != b {
				t.Fatalf("round %d: Classify(%v) full %d, delta %d", round, h, a, b)
			}
		}
	}
	if h := mDelta.Health(); h.DeltaOps == 0 {
		t.Error("delta manager absorbed nothing")
	}
}

func TestApplyDeltaBatchAtomic(t *testing.T) {
	m, _ := newManager(t)
	genBefore := m.Generation()
	snapBefore, _ := m.Snapshot()
	err := m.ApplyDelta([]Op{InsertAt(0, denyHost(1)), DeleteAt(10_000)})
	if err == nil {
		t.Fatal("invalid delta batch applied")
	}
	if m.Generation() != genBefore {
		t.Error("generation moved after failed delta batch")
	}
	if snap, _ := m.Snapshot(); len(snap) != len(snapBefore) {
		t.Error("rule list changed after failed delta batch")
	}
}

func TestCompactFoldsDelta(t *testing.T) {
	m, rs := newManager(t)
	hs := headers(t, rs, 600)
	for i := 0; i < 5; i++ {
		if err := m.ApplyDelta([]Op{InsertAt(i, denyHost(uint32(0x14000000+i)))}); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.ApplyDelta([]Op{DeleteAt(10)}); err != nil {
		t.Fatal(err)
	}
	snapBefore, _ := m.Snapshot()
	if err := m.Compact(); err != nil {
		t.Fatal(err)
	}
	h := m.Health()
	if h.Compactions != 1 || h.DeltaOps != 0 || h.DeltaInserted != 0 || h.DeltaDead != 0 {
		t.Errorf("post-compaction health: %+v", h)
	}
	snapAfter, _ := m.Snapshot()
	if len(snapAfter) != len(snapBefore) {
		t.Fatalf("compaction changed rule count: %d -> %d", len(snapBefore), len(snapAfter))
	}
	for i := range snapAfter {
		if snapAfter[i] != snapBefore[i] {
			t.Fatalf("compaction changed rule %d", i)
		}
	}
	checkAgainstSnapshot(t, m, hs)
	// Nothing to fold: Compact is a no-op, not an error.
	if err := m.Compact(); err != nil {
		t.Fatalf("idle Compact: %v", err)
	}
	if m.Health().Compactions != 1 {
		t.Error("idle Compact counted as a compaction")
	}
}

// gatedBuilder blocks inside the build until released, signalling entry.
type gatedBuilder struct {
	inner   Builder
	entered chan struct{}
	release chan struct{}
	once    sync.Once
}

func (g *gatedBuilder) build(rs *rules.RuleSet) (Classifier, error) {
	g.once.Do(func() { close(g.entered) })
	<-g.release
	return g.inner(rs)
}

func TestCompactionReplaysMidBuildEdits(t *testing.T) {
	m, rs := newManager(t)
	hs := headers(t, rs, 600)
	if err := m.ApplyDelta([]Op{InsertAt(0, denyHost(0x15000001))}); err != nil {
		t.Fatal(err)
	}
	good := m.build
	gb := &gatedBuilder{inner: good, entered: make(chan struct{}), release: make(chan struct{})}
	m.build = gb.build
	errCh := make(chan error, 1)
	go func() { errCh <- m.Compact() }()
	<-gb.entered
	// Edits landing while the compactor builds must be journaled and
	// replayed onto the fresh tree — and they must serve immediately.
	if err := m.ApplyDelta([]Op{InsertAt(1, denyHost(0x15000002)), DeleteAt(5)}); err != nil {
		t.Fatal(err)
	}
	snapBefore, _ := m.Snapshot()
	close(gb.release)
	if err := <-errCh; err != nil {
		t.Fatalf("compaction with mid-build edits: %v", err)
	}
	m.build = good
	h := m.Health()
	if h.Compactions != 1 || h.CompactionAborts != 0 {
		t.Errorf("health: %+v", h)
	}
	// The replayed delta holds exactly the mid-build ops.
	if h.DeltaOps != 2 {
		t.Errorf("DeltaOps = %d, want the 2 replayed ops", h.DeltaOps)
	}
	snapAfter, _ := m.Snapshot()
	if len(snapAfter) != len(snapBefore) {
		t.Fatalf("rule count %d -> %d across compaction publish", len(snapBefore), len(snapAfter))
	}
	for i := range snapAfter {
		if snapAfter[i] != snapBefore[i] {
			t.Fatalf("rule %d changed across compaction publish", i)
		}
	}
	checkAgainstSnapshot(t, m, hs)
}

// gatedClassifier delays its first Classify until released — it parks the
// compactor mid-shadow-validate, after the build succeeded but before the
// candidate could publish.
type gatedClassifier struct {
	inner   Classifier
	entered chan struct{}
	release chan struct{}
	once    sync.Once
}

func (g *gatedClassifier) Classify(h rules.Header) int {
	g.once.Do(func() { close(g.entered) })
	<-g.release
	return g.inner.Classify(h)
}
func (g *gatedClassifier) MemoryBytes() int { return g.inner.MemoryBytes() }

func TestRollbackDuringCompactionAborts(t *testing.T) {
	m, rs := newManager(t)
	hs := headers(t, rs, 600)
	first := denyHost(0x16000001)
	if err := m.ApplyDelta([]Op{InsertAt(0, first)}); err != nil {
		t.Fatal(err)
	}
	good := m.build
	gc := &gatedClassifier{entered: make(chan struct{}), release: make(chan struct{})}
	m.build = func(rs *rules.RuleSet) (Classifier, error) {
		cl, err := good(rs)
		if err != nil {
			return nil, err
		}
		gc.inner = cl
		return gc, nil
	}
	errCh := make(chan error, 1)
	go func() { errCh <- m.Compact() }()
	<-gc.entered // compactor is mid-shadow-validate

	// An edit lands, then the operator rolls it back — all while the
	// compactor validates a candidate built from a base that no longer
	// matches the live state.
	if err := m.ApplyDelta([]Op{InsertAt(1, denyHost(0x16000002))}); err != nil {
		t.Fatal(err)
	}
	if err := m.Rollback(); err != nil {
		t.Fatal(err)
	}
	close(gc.release)
	if err := <-errCh; !errors.Is(err, ErrCompactionAborted) {
		t.Fatalf("compaction err = %v, want ErrCompactionAborted", err)
	}
	m.build = good

	h := m.Health()
	if h.CompactionAborts != 1 || h.Compactions != 0 || h.Compacting {
		t.Errorf("health after aborted compaction: %+v", h)
	}
	// Rollback restored the pre-edit state: old tree + the first delta,
	// with the second insert gone and nothing double-applied.
	snap, _ := m.Snapshot()
	if len(snap) != rs.Len()+1 {
		t.Fatalf("snapshot %d rules, want %d", len(snap), rs.Len()+1)
	}
	if snap[0] != first {
		t.Error("rollback lost the first delta insert")
	}
	checkAgainstSnapshot(t, m, hs)

	// A fresh compaction over the restored state folds cleanly — the
	// aborted one left no residue.
	if err := m.Compact(); err != nil {
		t.Fatalf("compaction after abort: %v", err)
	}
	h = m.Health()
	if h.Compactions != 1 || h.DeltaOps != 0 {
		t.Errorf("health after clean compaction: %+v", h)
	}
	snap2, _ := m.Snapshot()
	if len(snap2) != len(snap) {
		t.Fatalf("clean compaction changed rule count: %d -> %d", len(snap), len(snap2))
	}
	for i := range snap2 {
		if snap2[i] != snap[i] {
			t.Fatalf("clean compaction changed rule %d", i)
		}
	}
	checkAgainstSnapshot(t, m, hs)
}

func TestAutoCompactionTriggers(t *testing.T) {
	rs, err := rulegen.Generate(rulegen.Config{Kind: rulegen.Firewall, Size: 40, Seed: 501})
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewManagerConfig(rs, expcutsBuilder, Config{CompactThreshold: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := m.ApplyDelta([]Op{InsertAt(0, denyHost(uint32(0x17000000+i)))}); err != nil {
			t.Fatal(err)
		}
	}
	if !m.Quiesce(10 * time.Second) {
		t.Fatal("manager did not quiesce")
	}
	h := m.Health()
	if h.Compactions == 0 {
		t.Fatalf("auto-compaction never ran: %+v", h)
	}
	if h.DeltaOps >= 3 {
		t.Errorf("DeltaOps = %d after auto-compaction", h.DeltaOps)
	}
	checkAgainstSnapshot(t, m, headers(t, rs, 400))
}

func TestSubmitCoalescesLatestWins(t *testing.T) {
	m, rs := newManager(t)
	good := m.build
	var builds atomic.Int32
	started := make(chan struct{}, 8)
	gate := make(chan struct{})
	m.build = func(r *rules.RuleSet) (Classifier, error) {
		builds.Add(1)
		started <- struct{}{}
		<-gate
		return good(r)
	}
	// Three distinct rule sets, distinguishable by length.
	setA := append([]rules.Rule(nil), rs.Rules...)
	setB := setA[:len(setA)-1]
	setC := setA[:len(setA)-2]

	m.Submit(setA)
	<-started // A's rebuild is in flight (parked in the builder)
	// B and C arrive mid-rebuild: the slot is latest-wins, so B must be
	// superseded by C without ever being built — and, regression, neither
	// may be dropped on the floor just because a rebuild was in flight.
	m.Submit(setB)
	m.Submit(setC)
	close(gate)
	if !m.Quiesce(10 * time.Second) {
		t.Fatal("submissions never drained")
	}
	snap, _ := m.Snapshot()
	if len(snap) != len(setC) {
		t.Fatalf("live rule count %d, want latest submission's %d", len(snap), len(setC))
	}
	if got := builds.Load(); got != 2 {
		t.Errorf("builds = %d, want 2 (A and C; B coalesced away)", got)
	}
	if h := m.Health(); h.SubmitsCoalesced != 1 {
		t.Errorf("SubmitsCoalesced = %d, want 1", h.SubmitsCoalesced)
	}
	m.build = good
	checkAgainstSnapshot(t, m, headers(t, rs, 400))
}

func TestSetRulesRejectsEmpty(t *testing.T) {
	m, _ := newManager(t)
	if err := m.SetRules(nil); err == nil {
		t.Fatal("empty submission accepted")
	}
	if h := m.Health(); h.LastError == "" {
		t.Error("LastError empty after rejected submission")
	}
}

func TestClassifyBatchZeroAllocsWithDelta(t *testing.T) {
	m, rs := newManager(t)
	// Delta with inserts and deletes active — the hot path must still be
	// allocation-free end to end (tree lookup + delta resolve).
	if err := m.ApplyDelta([]Op{
		InsertAt(0, denyHost(0x18000001)),
		InsertAt(3, denyHost(0x18000002)),
		DeleteAt(7),
		DeleteAt(12),
	}); err != nil {
		t.Fatal(err)
	}
	hs := headers(t, rs, 256)
	out := make([]int, len(hs))
	m.ClassifyBatch(hs, out) // warm scratch
	allocs := testing.AllocsPerRun(50, func() {
		m.ClassifyBatch(hs, out)
	})
	if allocs != 0 {
		t.Errorf("ClassifyBatch with delta allocates %.1f/op, want 0", allocs)
	}
	checkAgainstSnapshot(t, m, hs)
}

// TestConcurrentReadersDuringDeltaChurn hammers Classify and
// ClassifyBatch from reader goroutines while a writer drives delta
// applies and compactions. Run with -race; every settled read must agree
// with the generation oracle.
func TestConcurrentReadersDuringDeltaChurn(t *testing.T) {
	m, rs := newManager(t)
	hs := headers(t, rs, 1000)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out := make([]int, 32)
			i := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				h := hs[i%len(hs)]
				i++
				snapBefore, genBefore := m.Snapshot()
				got := m.Classify(h)
				_, genAfter := m.Snapshot()
				if genBefore == genAfter {
					if want := rules.NewRuleSet("s", snapBefore).Match(h); got != want {
						t.Errorf("racing Classify = %d, generation oracle %d", got, want)
						return
					}
				}
				lo := i % (len(hs) - 32)
				m.ClassifyBatch(hs[lo:lo+32], out)
			}
		}()
	}
	for i := 0; i < 40; i++ {
		var op Op
		if i%3 == 2 {
			op = DeleteAt(i % 20)
		} else {
			op = InsertAt(i%10, denyHost(uint32(0x19000000+i)))
		}
		if err := m.ApplyDelta([]Op{op}); err != nil {
			t.Errorf("delta %d: %v", i, err)
		}
		if i%13 == 12 {
			if err := m.Compact(); err != nil && !errors.Is(err, ErrCompactionConflict) {
				t.Errorf("compact at %d: %v", i, err)
			}
		}
	}
	close(stop)
	wg.Wait()
	checkAgainstSnapshot(t, m, hs[:300])
}
