package update

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/buildgov"
	"repro/internal/expcuts"
	"repro/internal/linear"
	"repro/internal/obs"
	"repro/internal/rulegen"
	"repro/internal/rules"
)

func eventKinds(ring *obs.Ring) map[string]uint64 {
	out := map[string]uint64{}
	for _, kc := range ring.KindCounts() {
		out[kc.Kind] = kc.Count
	}
	return out
}

// TestManagerEventsSwapRollbackRungChange: the manager must flight-record
// every generation swap, every rollback, and rung changes when a rebuild
// lands on a different ladder level than the generation it replaces.
func TestManagerEventsSwapRollbackRungChange(t *testing.T) {
	rs, err := rulegen.Generate(rulegen.Config{Kind: rulegen.Firewall, Size: 100, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	ring := obs.NewRing(64)
	boom := errors.New("injected build failure")
	failFirst := false
	ladder := []Rung{
		{Name: "expcuts", Build: func(_ context.Context, rs *rules.RuleSet) (Classifier, error) {
			if failFirst {
				return nil, boom
			}
			return expcuts.New(rs, expcuts.Config{})
		}},
		{Name: "linear", Build: func(_ context.Context, rs *rules.RuleSet) (Classifier, error) {
			return linear.New(rs), nil
		}},
	}
	mgr, err := NewManagerLadder(rs, ladder, Config{ValidateSamples: -1, MaxBuildAttempts: 1, Events: ring})
	if err != nil {
		t.Fatal(err)
	}
	if got := eventKinds(ring)[obs.EventSwap]; got != 1 {
		t.Fatalf("initial build recorded %d swap events, want 1", got)
	}

	// Degrade: the preferred rung now fails, so the next Apply must land
	// on linear — one more swap plus a rung-change event.
	failFirst = true
	if err := mgr.Apply([]Op{InsertAt(rs.Len(), rs.Rules[0])}); err != nil {
		t.Fatal(err)
	}
	kinds := eventKinds(ring)
	if kinds[obs.EventSwap] != 2 {
		t.Errorf("swap events = %d, want 2", kinds[obs.EventSwap])
	}
	if kinds[obs.EventRungChange] != 1 {
		t.Errorf("rung-change events = %d, want 1", kinds[obs.EventRungChange])
	}

	if err := mgr.Rollback(); err != nil {
		t.Fatal(err)
	}
	if got := eventKinds(ring)[obs.EventRollback]; got != 1 {
		t.Errorf("rollback events = %d, want 1", got)
	}
}

// TestManagerEventsBreakerTransitions: consecutive rung failures must
// record exactly one breaker-open event at the threshold crossing, a
// half-open probe after the cooldown, and a close on the probe's
// success.
func TestManagerEventsBreakerTransitions(t *testing.T) {
	rs, err := rulegen.Generate(rulegen.Config{Kind: rulegen.Firewall, Size: 50, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	ring := obs.NewRing(64)
	boom := errors.New("injected build failure")
	failing := false
	ladder := []Rung{
		{Name: "flaky", Build: func(_ context.Context, rs *rules.RuleSet) (Classifier, error) {
			if failing {
				return nil, boom
			}
			return linear.New(rs), nil
		}},
		{Name: "linear", Build: func(_ context.Context, rs *rules.RuleSet) (Classifier, error) {
			return linear.New(rs), nil
		}},
	}
	now := time.Unix(1000, 0)
	mgr, err := NewManagerLadder(rs, ladder, Config{
		ValidateSamples: -1, MaxBuildAttempts: 1,
		BreakerThreshold: 2, BreakerCooldown: 10 * time.Second,
		Events: ring,
	})
	if err != nil {
		t.Fatal(err)
	}
	mgr.now = func() time.Time { return now }
	mgr.sleep = func(time.Duration) {}

	apply := func() error { return mgr.Apply([]Op{InsertAt(rs.Len(), rs.Rules[0])}) }
	failing = true
	for i := 0; i < 3; i++ { // failures 1, 2 (opens), then a skipped rung
		if err := apply(); err != nil {
			t.Fatalf("apply %d: %v (ladder should fall through to linear)", i, err)
		}
	}
	kinds := eventKinds(ring)
	if kinds[obs.EventBreakerOpen] != 1 {
		t.Errorf("breaker-open events = %d, want exactly 1", kinds[obs.EventBreakerOpen])
	}

	// Past the cooldown the rung half-opens; a successful probe closes it.
	now = now.Add(11 * time.Second)
	failing = false
	if err := apply(); err != nil {
		t.Fatal(err)
	}
	kinds = eventKinds(ring)
	if kinds[obs.EventBreakerHalfOpen] != 1 {
		t.Errorf("breaker-half-open events = %d, want 1", kinds[obs.EventBreakerHalfOpen])
	}
	if kinds[obs.EventBreakerClose] != 1 {
		t.Errorf("breaker-close events = %d, want 1", kinds[obs.EventBreakerClose])
	}
}

// TestGovernorRecordsBudgetTrip: a tripped budget must record exactly one
// budget-trip event no matter how many callers observe the sticky error.
func TestGovernorRecordsBudgetTrip(t *testing.T) {
	ring := obs.NewRing(8)
	g := buildgov.Start(context.Background(), &buildgov.Budget{MaxNodes: 1, Events: ring})
	if err := g.Nodes(2, 64); !errors.Is(err, buildgov.ErrBudgetExceeded) {
		t.Fatalf("Nodes = %v, want a budget trip", err)
	}
	for i := 0; i < 5; i++ {
		if err := g.Check(); !errors.Is(err, buildgov.ErrBudgetExceeded) {
			t.Fatalf("sticky error lost: %v", err)
		}
	}
	if got := eventKinds(ring)[obs.EventBudgetTrip]; got != 1 {
		t.Fatalf("budget-trip events = %d, want exactly 1", got)
	}
}

// TestManagerCollectExposesHealth: the pc_update_* series must reflect
// Health, including per-rung breaker series.
func TestManagerCollectExposesHealth(t *testing.T) {
	rs, err := rulegen.Generate(rulegen.Config{Kind: rulegen.Firewall, Size: 50, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	ladder := []Rung{
		{Name: "expcuts", Build: func(_ context.Context, rs *rules.RuleSet) (Classifier, error) {
			return expcuts.New(rs, expcuts.Config{})
		}},
		{Name: "linear", Build: func(_ context.Context, rs *rules.RuleSet) (Classifier, error) {
			return linear.New(rs), nil
		}},
	}
	mgr, err := NewManagerLadder(rs, ladder, Config{ValidateSamples: -1})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	mgr.Register(reg)
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"pc_update_generation 1",
		"pc_update_degradation_level 0",
		`pc_update_breaker_open{rung="expcuts"} 0`,
		`pc_update_breaker_failures{rung="linear"} 0`,
		"pc_update_rollbacks_total 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}
