package update

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/expcuts"
	"repro/internal/rulegen"
	"repro/internal/rules"
)

func insertOp() Op {
	return InsertAt(0, rules.Rule{
		SrcPort: rules.FullPortRange, DstPort: rules.FullPortRange,
		Proto: rules.AnyProto, Action: rules.ActionDeny,
	})
}

func TestBuildRetriesWithCappedBackoff(t *testing.T) {
	m, _ := newManager(t)
	good := m.build
	m.cfg.MaxBuildAttempts = 5
	m.cfg.BackoffBase = 10 * time.Millisecond
	m.cfg.BackoffMax = 20 * time.Millisecond
	var slept []time.Duration
	m.sleep = func(d time.Duration) { slept = append(slept, d) }
	// Fail four times, succeed on the fifth and final attempt.
	fails := 0
	m.build = func(r *rules.RuleSet) (Classifier, error) {
		fails++
		if fails < 5 {
			return nil, errors.New("injected build failure")
		}
		return good(r)
	}
	if err := m.Apply([]Op{insertOp()}); err != nil {
		t.Fatalf("apply within retry budget failed: %v", err)
	}
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 20 * time.Millisecond, 20 * time.Millisecond}
	if len(slept) != len(want) {
		t.Fatalf("slept %v, want %v", slept, want)
	}
	for i := range want {
		if slept[i] != want[i] {
			t.Errorf("backoff %d = %v, want %v (exponential, capped)", i, slept[i], want[i])
		}
	}
	if h := m.Health(); h.BuildRetries != 4 {
		t.Errorf("BuildRetries = %d, want 4", h.BuildRetries)
	}
}

func TestFlakyBuilderEventuallySwaps(t *testing.T) {
	m, _ := newManager(t)
	m.sleep = func(time.Duration) {}
	// Swap in a builder failing twice per rebuild: within the 3-attempt
	// budget, so Apply must succeed.
	fails := 0
	m.build = func(r *rules.RuleSet) (Classifier, error) {
		fails++
		if fails%3 != 0 {
			return nil, errors.New("injected build failure")
		}
		return expcuts.New(r, expcuts.Config{})
	}
	genBefore := m.Generation()
	if err := m.Apply([]Op{insertOp()}); err != nil {
		t.Fatalf("apply within retry budget failed: %v", err)
	}
	if m.Generation() != genBefore+1 {
		t.Errorf("generation %d, want %d", m.Generation(), genBefore+1)
	}
	if h := m.Health(); h.BuildRetries != 2 || h.LastError != "" {
		t.Errorf("health after retried success: %+v", h)
	}
}

func TestBuilderExhaustionLeavesLiveGeneration(t *testing.T) {
	m, rsOrig := newManager(t)
	m.sleep = func(time.Duration) {}
	m.build = func(*rules.RuleSet) (Classifier, error) {
		return nil, errors.New("injected build failure")
	}
	snapBefore, genBefore := m.Snapshot()
	err := m.Apply([]Op{insertOp()})
	if err == nil || !strings.Contains(err.Error(), "rolled back") {
		t.Fatalf("err = %v, want rolled-back rebuild failure", err)
	}
	if g := m.Generation(); g != genBefore {
		t.Errorf("generation moved to %d", g)
	}
	snapAfter, _ := m.Snapshot()
	if len(snapAfter) != len(snapBefore) {
		t.Error("rule list changed after exhausted rebuild")
	}
	h := m.Health()
	if h.FailedBuilds != 1 || h.BuildRetries != uint64(DefaultMaxBuildAttempts-1) {
		t.Errorf("health: %+v", h)
	}
	if h.LastError == "" {
		t.Error("LastError empty after failed apply")
	}
	// The classifier must still serve.
	checkAgainstSnapshot(t, m, headers(t, rsOrig, 200))
}

// wrongEveryN misclassifies every Nth lookup — a miscompiled candidate.
type wrongEveryN struct {
	inner Classifier
	n     int
	count int
}

func (w *wrongEveryN) Classify(h rules.Header) int {
	w.count++
	m := w.inner.Classify(h)
	if w.n > 0 && w.count%w.n == 0 {
		return m + 1
	}
	return m
}
func (w *wrongEveryN) MemoryBytes() int { return w.inner.MemoryBytes() }

func TestValidationRejectsMiscompiledCandidate(t *testing.T) {
	m, _ := newManager(t)
	m.build = func(r *rules.RuleSet) (Classifier, error) {
		cl, err := expcuts.New(r, expcuts.Config{})
		if err != nil {
			return nil, err
		}
		return &wrongEveryN{inner: cl, n: 10}, nil
	}
	genBefore := m.Generation()
	err := m.Apply([]Op{insertOp()})
	if err == nil || !strings.Contains(err.Error(), "validation failed") {
		t.Fatalf("err = %v, want shadow-validation rejection", err)
	}
	if m.Generation() != genBefore {
		t.Error("miscompiled candidate went live")
	}
	if h := m.Health(); h.FailedValidations != 1 {
		t.Errorf("FailedValidations = %d, want 1", h.FailedValidations)
	}
}

// panicky panics on every lookup.
type panicky struct{}

func (panicky) Classify(rules.Header) int { panic("candidate classifier explodes") }
func (panicky) MemoryBytes() int          { return 4 }

func TestValidationContainsPanickyCandidate(t *testing.T) {
	m, rsOrig := newManager(t)
	m.build = func(*rules.RuleSet) (Classifier, error) { return panicky{}, nil }
	if err := m.Apply([]Op{insertOp()}); err == nil {
		t.Fatal("panicking candidate must be rejected, not installed")
	}
	// Still serving the old generation, and the panic never escaped.
	checkAgainstSnapshot(t, m, headers(t, rsOrig, 200))
}

func TestValidationDisabled(t *testing.T) {
	rs, err := rulegen.Generate(rulegen.Config{Kind: rulegen.Firewall, Size: 40, Seed: 501})
	if err != nil {
		t.Fatal(err)
	}
	// With validation off, even a constant classifier goes live — the
	// escape hatch for callers doing their own conformance testing.
	constant := func(*rules.RuleSet) (Classifier, error) {
		return &wrongEveryN{inner: nopClassifier{}, n: 0}, nil
	}
	if _, err := NewManagerConfig(rs, constant, Config{ValidateSamples: -1}); err != nil {
		t.Fatalf("validation-off build failed: %v", err)
	}
	if _, err := NewManagerConfig(rs, constant, Config{}); err == nil {
		t.Fatal("default config accepted a constant classifier")
	}
}

type nopClassifier struct{}

func (nopClassifier) Classify(rules.Header) int { return 0 }
func (nopClassifier) MemoryBytes() int          { return 4 }

func TestRollbackRestoresPreviousGeneration(t *testing.T) {
	m, rs := newManager(t)
	hs := headers(t, rs, 400)
	snapV1, _ := m.Snapshot()
	if err := m.Apply([]Op{insertOp()}); err != nil {
		t.Fatal(err)
	}
	if !m.Health().CanRollback {
		t.Fatal("no rollback target after a successful apply")
	}
	if err := m.Rollback(); err != nil {
		t.Fatal(err)
	}
	snapNow, gen := m.Snapshot()
	if gen != 3 { // build, apply, rollback
		t.Errorf("generation = %d, want 3", gen)
	}
	if len(snapNow) != len(snapV1) {
		t.Fatalf("rollback rules: %d, want %d", len(snapNow), len(snapV1))
	}
	for i := range snapNow {
		if snapNow[i] != snapV1[i] {
			t.Fatalf("rule %d differs after rollback", i)
		}
	}
	checkAgainstSnapshot(t, m, hs)
	if h := m.Health(); h.Rollbacks != 1 {
		t.Errorf("Rollbacks = %d, want 1", h.Rollbacks)
	}
	// Rolling back again returns to the inserted-rule generation.
	if err := m.Rollback(); err != nil {
		t.Fatal(err)
	}
	snapBack, _ := m.Snapshot()
	if len(snapBack) != len(snapV1)+1 {
		t.Errorf("double rollback length %d, want %d", len(snapBack), len(snapV1)+1)
	}
	checkAgainstSnapshot(t, m, hs)
}

func TestRollbackWithoutHistoryFails(t *testing.T) {
	m, _ := newManager(t)
	if err := m.Rollback(); err == nil {
		t.Fatal("fresh manager has nothing to roll back to")
	}
	if h := m.Health(); h.CanRollback || h.LastError == "" {
		t.Errorf("health after refused rollback: %+v", h)
	}
}

// TestConcurrentReadersDuringFlakyRebuilds hammers Classify from reader
// goroutines while the writer drives repeated failing-then-succeeding
// rebuilds and a rollback. Run with -race; readers must always observe a
// coherent generation.
func TestConcurrentReadersDuringFlakyRebuilds(t *testing.T) {
	m, rs := newManager(t)
	m.sleep = func(time.Duration) {}
	good := m.build
	fails := 0
	m.build = func(r *rules.RuleSet) (Classifier, error) {
		fails++
		if fails%3 != 0 { // two failures before every success
			return nil, errors.New("injected build failure")
		}
		return good(r)
	}
	hs := headers(t, rs, 1000)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			i := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				h := hs[i%len(hs)]
				i++
				snapBefore, genBefore := m.Snapshot()
				got := m.Classify(h)
				_, genAfter := m.Snapshot()
				if genBefore != genAfter {
					continue // an update raced this lookup
				}
				if want := rules.NewRuleSet("s", snapBefore).Match(h); got != want {
					t.Errorf("racing Classify = %d, generation oracle %d", got, want)
					return
				}
			}
		}()
	}
	for i := 0; i < 5; i++ {
		if err := m.Apply([]Op{insertOp()}); err != nil {
			t.Errorf("apply %d: %v", i, err)
		}
		if i == 2 {
			if err := m.Rollback(); err != nil {
				t.Errorf("rollback: %v", err)
			}
		}
	}
	close(stop)
	wg.Wait()
	h := m.Health()
	if h.BuildRetries == 0 {
		t.Errorf("flaky builder never retried: %+v", h)
	}
	if h.Rollbacks != 1 {
		t.Errorf("Rollbacks = %d, want 1", h.Rollbacks)
	}
}
