package update

import (
	"repro/internal/obs"
)

// Collect is the obs.Collector for the manager: it snapshots Health on
// the scrape path and emits it as pc_update_* series. Register it on a
// registry with Register; the serving path is untouched — everything
// here reads the same atomics Health does.
func (m *Manager) Collect(emit func(obs.Sample)) {
	h := m.Health()
	gauge := func(name, help string, v float64) {
		emit(obs.Sample{Name: name, Help: help, Type: "gauge", Value: v})
	}
	counter := func(name, help string, v uint64) {
		emit(obs.Sample{Name: name, Help: help, Type: "counter", Value: float64(v)})
	}
	gauge("pc_update_generation", "Live rule-set generation number.", float64(h.Generation))
	gauge("pc_update_rules", "Live generation rule count.", float64(h.Rules))
	gauge("pc_update_memory_bytes", "Live classifier memory footprint.", float64(h.MemoryBytes))
	gauge("pc_update_degradation_level", "Live ladder rung (0 = preferred builder).", float64(h.DegradationLevel))
	counter("pc_update_build_retries_total", "Builder attempts beyond the first.", h.BuildRetries)
	counter("pc_update_failed_builds_total", "Rebuilds whose builder never succeeded.", h.FailedBuilds)
	counter("pc_update_failed_validations_total", "Candidates rejected by shadow validation.", h.FailedValidations)
	counter("pc_update_rollbacks_total", "Successful rollbacks.", h.Rollbacks)
	counter("pc_update_budget_trips_total", "Builds aborted by a buildgov budget.", h.BudgetTrips)

	// Delta layer / compaction series. Gauges reflect the live delta;
	// counters are lifetime totals.
	gauge("pc_update_delta_ops", "Edit ops absorbed by the live delta layer since its tree base.", float64(h.DeltaOps))
	gauge("pc_update_delta_rules", "Live delta-inserted rules in the tuple-space side table.", float64(h.DeltaInserted))
	gauge("pc_update_delta_dead", "Tree rules masked by delta deletes.", float64(h.DeltaDead))
	gauge("pc_update_delta_age_seconds", "Age of the oldest unfolded delta.", h.DeltaAgeSeconds)
	compacting := 0.0
	if h.Compacting {
		compacting = 1
	}
	gauge("pc_update_compacting", "1 while a background compaction is in flight.", compacting)
	counter("pc_update_delta_applies_total", "Successful ApplyDelta batches.", h.DeltaApplies)
	counter("pc_update_mask_scans_total", "Lookups that fell back to scanning tree survivors past a masked match.", h.MaskScans)
	counter("pc_update_compactions_total", "Deltas folded into fresh builds.", h.Compactions)
	counter("pc_update_compaction_aborts_total", "Compactions discarded because the base generation changed mid-build.", h.CompactionAborts)
	counter("pc_update_compaction_failures_total", "Compactions whose build or validation failed.", h.CompactionFailures)
	counter("pc_update_submits_coalesced_total", "Submissions superseded in the latest-wins slot before a rebuild picked them up.", h.SubmitsCoalesced)
	applyNs := m.deltaApplyNs.Snapshot()
	emit(obs.Sample{Name: "pc_update_delta_apply_ns",
		Help: "ApplyDelta latency (ns): lock to publish.", Type: "histogram", Hist: &applyNs})

	for _, b := range h.Breakers {
		labels := []obs.Label{{Key: "rung", Value: b.Rung}}
		open := 0.0
		if b.State == "open" {
			open = 1
		}
		emit(obs.Sample{Name: "pc_update_breaker_open",
			Help: "1 when the rung's circuit breaker is open.", Type: "gauge",
			Labels: labels, Value: open})
		emit(obs.Sample{Name: "pc_update_breaker_failures",
			Help: "Current consecutive-failure streak per rung.", Type: "gauge",
			Labels: labels, Value: float64(b.ConsecutiveFailures)})
	}
}

// Register registers the manager's collector on reg. Nil-safe on both
// sides.
func (m *Manager) Register(reg *obs.Registry) {
	if m == nil || reg == nil {
		return
	}
	reg.Register(m.Collect)
}
