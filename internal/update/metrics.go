package update

import (
	"repro/internal/obs"
)

// Collect is the obs.Collector for the manager: it snapshots Health on
// the scrape path and emits it as pc_update_* series. Register it on a
// registry with Register; the serving path is untouched — everything
// here reads the same atomics Health does.
func (m *Manager) Collect(emit func(obs.Sample)) {
	h := m.Health()
	gauge := func(name, help string, v float64) {
		emit(obs.Sample{Name: name, Help: help, Type: "gauge", Value: v})
	}
	counter := func(name, help string, v uint64) {
		emit(obs.Sample{Name: name, Help: help, Type: "counter", Value: float64(v)})
	}
	gauge("pc_update_generation", "Live rule-set generation number.", float64(h.Generation))
	gauge("pc_update_rules", "Live generation rule count.", float64(h.Rules))
	gauge("pc_update_memory_bytes", "Live classifier memory footprint.", float64(h.MemoryBytes))
	gauge("pc_update_degradation_level", "Live ladder rung (0 = preferred builder).", float64(h.DegradationLevel))
	counter("pc_update_build_retries_total", "Builder attempts beyond the first.", h.BuildRetries)
	counter("pc_update_failed_builds_total", "Rebuilds whose builder never succeeded.", h.FailedBuilds)
	counter("pc_update_failed_validations_total", "Candidates rejected by shadow validation.", h.FailedValidations)
	counter("pc_update_rollbacks_total", "Successful rollbacks.", h.Rollbacks)
	counter("pc_update_budget_trips_total", "Builds aborted by a buildgov budget.", h.BudgetTrips)
	for _, b := range h.Breakers {
		labels := []obs.Label{{Key: "rung", Value: b.Rung}}
		open := 0.0
		if b.State == "open" {
			open = 1
		}
		emit(obs.Sample{Name: "pc_update_breaker_open",
			Help: "1 when the rung's circuit breaker is open.", Type: "gauge",
			Labels: labels, Value: open})
		emit(obs.Sample{Name: "pc_update_breaker_failures",
			Help: "Current consecutive-failure streak per rung.", Type: "gauge",
			Labels: labels, Value: float64(b.ConsecutiveFailures)})
	}
}

// Register registers the manager's collector on reg. Nil-safe on both
// sides.
func (m *Manager) Register(reg *obs.Registry) {
	if m == nil || reg == nil {
		return
	}
	reg.Register(m.Collect)
}
