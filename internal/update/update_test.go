package update

import (
	"sync"
	"testing"

	"repro/internal/expcuts"
	"repro/internal/pktgen"
	"repro/internal/rulegen"
	"repro/internal/rules"
)

func expcutsBuilder(rs *rules.RuleSet) (Classifier, error) {
	return expcuts.New(rs, expcuts.Config{})
}

func newManager(t *testing.T) (*Manager, *rules.RuleSet) {
	t.Helper()
	rs, err := rulegen.Generate(rulegen.Config{Kind: rulegen.Firewall, Size: 40, Seed: 501})
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewManager(rs, expcutsBuilder)
	if err != nil {
		t.Fatal(err)
	}
	return m, rs
}

func checkAgainstSnapshot(t *testing.T, m *Manager, headers []rules.Header) {
	t.Helper()
	snap, _ := m.Snapshot()
	oracle := rules.NewRuleSet("snap", snap)
	for _, h := range headers {
		if got, want := m.Classify(h), oracle.Match(h); got != want {
			t.Fatalf("Classify(%v) = %d, snapshot oracle %d", h, got, want)
		}
	}
}

func headers(t *testing.T, rs *rules.RuleSet, n int) []rules.Header {
	t.Helper()
	tr, err := pktgen.Generate(rs, pktgen.Config{Count: n, Seed: 502, MatchFraction: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	return tr.Headers
}

func TestInitialGeneration(t *testing.T) {
	m, rs := newManager(t)
	if m.Generation() != 1 {
		t.Errorf("generation = %d, want 1", m.Generation())
	}
	checkAgainstSnapshot(t, m, headers(t, rs, 600))
	if m.MemoryBytes() <= 0 {
		t.Error("MemoryBytes not positive")
	}
}

func TestInsertTakesPriority(t *testing.T) {
	m, rs := newManager(t)
	// Insert a top-priority deny for a specific host.
	target := rules.Rule{
		SrcIP:   rules.Prefix{Addr: 0x0A0B0C0D, Len: 32},
		SrcPort: rules.FullPortRange,
		DstPort: rules.FullPortRange,
		Proto:   rules.AnyProto,
		Action:  rules.ActionDeny,
	}
	if err := m.Apply([]Op{InsertAt(0, target)}); err != nil {
		t.Fatal(err)
	}
	if m.Generation() != 2 {
		t.Errorf("generation = %d, want 2", m.Generation())
	}
	h := rules.Header{SrcIP: 0x0A0B0C0D, DstIP: 1, SrcPort: 5, DstPort: 6, Proto: 7}
	if got := m.Classify(h); got != 0 {
		t.Errorf("Classify = %d, want the inserted rule 0", got)
	}
	checkAgainstSnapshot(t, m, headers(t, rs, 600))
}

func TestDeleteShiftsPriorities(t *testing.T) {
	m, rs := newManager(t)
	before, _ := m.Snapshot()
	if err := m.Apply([]Op{DeleteAt(0)}); err != nil {
		t.Fatal(err)
	}
	after, _ := m.Snapshot()
	if len(after) != len(before)-1 {
		t.Fatalf("lengths: %d -> %d", len(before), len(after))
	}
	if after[0] != before[1] {
		t.Error("delete did not shift the list")
	}
	checkAgainstSnapshot(t, m, headers(t, rs, 600))
}

func TestBatchIsAtomic(t *testing.T) {
	m, _ := newManager(t)
	genBefore := m.Generation()
	snapBefore, _ := m.Snapshot()
	// Second op is invalid: the whole batch must roll back.
	err := m.Apply([]Op{
		InsertAt(0, rules.Rule{SrcPort: rules.FullPortRange, DstPort: rules.FullPortRange, Proto: rules.AnyProto}),
		DeleteAt(10_000),
	})
	if err == nil {
		t.Fatal("invalid batch applied")
	}
	if m.Generation() != genBefore {
		t.Errorf("generation moved to %d after failed batch", m.Generation())
	}
	snapAfter, _ := m.Snapshot()
	if len(snapAfter) != len(snapBefore) {
		t.Error("rule list changed after failed batch")
	}
}

func TestCannotEmptyRuleSet(t *testing.T) {
	rs := rules.NewRuleSet("one", []rules.Rule{
		{SrcPort: rules.FullPortRange, DstPort: rules.FullPortRange, Proto: rules.AnyProto},
	})
	m, err := NewManager(rs, expcutsBuilder)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Apply([]Op{DeleteAt(0)}); err == nil {
		t.Error("emptying the rule set should fail")
	}
}

func TestConcurrentReadersDuringUpdates(t *testing.T) {
	m, rs := newManager(t)
	hs := headers(t, rs, 2000)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	// Readers hammer Classify; each answer must be consistent with *some*
	// generation, which we verify by re-checking against the snapshot the
	// reader observes around the call.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			i := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				h := hs[i%len(hs)]
				i++
				snapBefore, genBefore := m.Snapshot()
				got := m.Classify(h)
				snapAfter, genAfter := m.Snapshot()
				if genBefore != genAfter {
					continue // an update raced this lookup; skip the check
				}
				want := rules.NewRuleSet("s", snapBefore).Match(h)
				_ = snapAfter
				if got != want {
					t.Errorf("racing Classify(%v) = %d, generation oracle %d", h, got, want)
					return
				}
			}
		}()
	}
	// Writer applies updates.
	for i := 0; i < 6; i++ {
		r := rules.Rule{
			SrcIP:   rules.Prefix{Addr: uint32(i) << 24, Len: 8},
			SrcPort: rules.FullPortRange,
			DstPort: rules.FullPortRange,
			Proto:   rules.AnyProto,
			Action:  rules.ActionDeny,
		}
		if err := m.Apply([]Op{InsertAt(0, r)}); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	if m.Generation() != 7 {
		t.Errorf("generation = %d, want 7", m.Generation())
	}
}

func TestInsertPositionClamping(t *testing.T) {
	m, _ := newManager(t)
	r := rules.Rule{SrcPort: rules.FullPortRange, DstPort: rules.FullPortRange, Proto: rules.AnyProto}
	if err := m.Apply([]Op{InsertAt(-5, r)}); err != nil {
		t.Fatal(err)
	}
	snap, _ := m.Snapshot()
	if snap[0] != r {
		t.Error("negative position should clamp to 0")
	}
	if err := m.Apply([]Op{InsertAt(1<<30, r)}); err != nil {
		t.Fatal(err)
	}
	snap, _ = m.Snapshot()
	if snap[len(snap)-1] != r {
		t.Error("huge position should clamp to the end")
	}
}

// scalarOnly is a Classifier with no ClassifyBatch, forcing the manager's
// loop fallback.
type scalarOnly struct{ rs *rules.RuleSet }

func (s scalarOnly) Classify(h rules.Header) int { return s.rs.Match(h) }
func (s scalarOnly) MemoryBytes() int            { return 0 }

func TestManagerClassifyBatch(t *testing.T) {
	m, rs := newManager(t)
	hs := headers(t, rs, 512)
	out := make([]int, 64)
	for lo := 0; lo < len(hs); lo += 64 {
		chunk := hs[lo : lo+64]
		m.ClassifyBatch(chunk, out)
		for k, h := range chunk {
			if want := m.Classify(h); out[k] != want {
				t.Fatalf("packet %d: batch %d, scalar %d", lo+k, out[k], want)
			}
		}
	}
}

func TestManagerClassifyBatchLoopFallback(t *testing.T) {
	rs, err := rulegen.Generate(rulegen.Config{Kind: rulegen.Firewall, Size: 40, Seed: 501})
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewManager(rs, func(rs *rules.RuleSet) (Classifier, error) {
		return scalarOnly{rs: rs}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	hs := headers(t, rs, 128)
	out := make([]int, len(hs))
	m.ClassifyBatch(hs, out)
	for i, h := range hs {
		if want := rs.Match(h); out[i] != want {
			t.Fatalf("packet %d: batch %d, oracle %d", i, out[i], want)
		}
	}
}

// TestManagerBatchSeesOneGeneration: a batch classifies entirely against
// the generation loaded at its start — an Apply mid-batch must not split
// a batch across generations. Proven structurally (the manager does one
// live.Load per batch) and behaviorally here: concurrent Applies while
// batches run never produce a mix that disagrees with some single
// generation's snapshot.
func TestManagerBatchSeesOneGeneration(t *testing.T) {
	m, rs := newManager(t)
	hs := headers(t, rs, 256)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			r := rs.Rules[i%rs.Len()]
			if err := m.Apply([]Op{InsertAt(0, r)}); err != nil {
				t.Errorf("apply: %v", err)
				return
			}
		}
	}()
	out := make([]int, len(hs))
	for round := 0; round < 50; round++ {
		gBefore := m.Generation()
		m.ClassifyBatch(hs, out)
		gAfter := m.Generation()
		if gBefore != gAfter {
			continue // a swap landed mid-batch; single-Load still applies but we can't name the generation
		}
		snap, _ := m.Snapshot()
		oracle := rules.NewRuleSet("snap", snap)
		for i, h := range hs {
			if want := oracle.Match(h); out[i] != want {
				t.Fatalf("round %d packet %d: batch %d, generation oracle %d", round, i, out[i], want)
			}
		}
	}
	close(stop)
	wg.Wait()
}
