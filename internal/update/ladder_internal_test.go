package update

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/buildgov"
	"repro/internal/rules"
)

// oracleClassifier answers exactly like the linear oracle, so it always
// passes shadow validation.
type oracleClassifier struct{ rs *rules.RuleSet }

func (o oracleClassifier) Classify(h rules.Header) int { return o.rs.Match(h) }
func (o oracleClassifier) MemoryBytes() int            { return 0 }

func oracleRung(name string) Rung {
	return Rung{Name: name, Build: func(_ context.Context, rs *rules.RuleSet) (Classifier, error) {
		return oracleClassifier{rs: rs}, nil
	}}
}

// countingFailRung fails every build (or succeeds when *ok is set) and
// counts invocations.
type countingFailRung struct {
	calls atomic.Int64
	ok    atomic.Bool
}

func (c *countingFailRung) rung(name string) Rung {
	return Rung{Name: name, Build: func(_ context.Context, rs *rules.RuleSet) (Classifier, error) {
		c.calls.Add(1)
		if c.ok.Load() {
			return oracleClassifier{rs: rs}, nil
		}
		return nil, errors.New("scripted build failure")
	}}
}

func ladderTestRules() *rules.RuleSet {
	return rules.NewRuleSet("ladder", []rules.Rule{
		{SrcPort: rules.PortRange{Lo: 80, Hi: 80}, DstPort: rules.PortRange{Lo: 0, Hi: 65535}, Proto: rules.ProtoMatch{Wildcard: true}},
		{SrcPort: rules.PortRange{Lo: 0, Hi: 65535}, DstPort: rules.PortRange{Lo: 0, Hi: 65535}, Proto: rules.ProtoMatch{Wildcard: true}},
	})
}

func someOp() []Op {
	return []Op{InsertAt(0, rules.Rule{
		SrcPort: rules.PortRange{Lo: 1, Hi: 1}, DstPort: rules.PortRange{Lo: 0, Hi: 65535},
		Proto: rules.ProtoMatch{Wildcard: true},
	})}
}

// fakeClock drives m.now deterministically.
type fakeClock struct{ t time.Time }

func (f *fakeClock) now() time.Time          { return f.t }
func (f *fakeClock) advance(d time.Duration) { f.t = f.t.Add(d) }

// The base is the real now: constructor-time rebuilds run before the
// fake clock is installed and stamp breakers with time.Now().
func newFakeClock() *fakeClock              { return &fakeClock{t: time.Now()} }
func installClock(m *Manager, c *fakeClock) { m.now = c.now }
func quiet(m *Manager)                      { m.sleep = func(time.Duration) {} }
func cfgFast(threshold int, cool time.Duration) Config {
	return Config{MaxBuildAttempts: 1, BreakerThreshold: threshold, BreakerCooldown: cool}
}

// A rung that keeps failing opens its breaker after BreakerThreshold
// consecutive failed rebuilds; while open, further rebuilds skip it
// entirely instead of re-paying the doomed build.
func TestBreakerOpensAndSkipsRung(t *testing.T) {
	var flaky countingFailRung
	m, err := NewManagerLadder(ladderTestRules(),
		[]Rung{flaky.rung("flaky"), oracleRung("fallback")},
		cfgFast(2, time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	quiet(m)
	clock := newFakeClock()
	installClock(m, clock)

	// The constructor's rebuild already failed the rung once.
	if got := flaky.calls.Load(); got != 1 {
		t.Fatalf("constructor invoked the rung %d times, want 1", got)
	}
	if err := m.Apply(someOp()); err != nil {
		t.Fatal(err)
	}
	if got := flaky.calls.Load(); got != 2 {
		t.Fatalf("rung invoked %d times after second rebuild, want 2", got)
	}
	h := m.Health()
	if h.Breakers[0].State != "open" || h.Breakers[0].ConsecutiveFailures != 2 {
		t.Fatalf("breaker = %+v, want open with 2 consecutive failures", h.Breakers[0])
	}

	// Open breaker: the next rebuild must not touch the rung.
	if err := m.Apply(someOp()); err != nil {
		t.Fatal(err)
	}
	if got := flaky.calls.Load(); got != 2 {
		t.Fatalf("open breaker still let the rung run (%d calls)", got)
	}
	if h := m.Health(); h.ActiveAlgorithm != "fallback" || h.DegradationLevel != 1 {
		t.Fatalf("health = %q/%d, want fallback/1", h.ActiveAlgorithm, h.DegradationLevel)
	}
}

// After BreakerCooldown the breaker half-opens: one probe build runs,
// and a success closes the breaker and promotes the manager back to the
// preferred rung.
func TestBreakerHalfOpenProbeRecovers(t *testing.T) {
	var flaky countingFailRung
	m, err := NewManagerLadder(ladderTestRules(),
		[]Rung{flaky.rung("flaky"), oracleRung("fallback")},
		cfgFast(1, time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	quiet(m)
	clock := newFakeClock()
	installClock(m, clock)

	// Threshold 1: already open from the constructor's failure. Within
	// the cooldown the rung is skipped.
	if err := m.Apply(someOp()); err != nil {
		t.Fatal(err)
	}
	if got := flaky.calls.Load(); got != 1 {
		t.Fatalf("rung probed during cooldown (%d calls)", got)
	}
	if h := m.Health(); h.Breakers[0].State != "open" {
		t.Fatalf("breaker state %q, want open", h.Breakers[0].State)
	}

	// Past the cooldown the breaker half-opens and the heal the rung.
	clock.advance(2 * time.Minute)
	if h := m.Health(); h.Breakers[0].State != "half-open" {
		t.Fatalf("breaker state %q after cooldown, want half-open", h.Breakers[0].State)
	}
	flaky.ok.Store(true)
	if err := m.Apply(someOp()); err != nil {
		t.Fatal(err)
	}
	if got := flaky.calls.Load(); got != 2 {
		t.Fatalf("half-open breaker did not probe exactly once (%d calls)", got)
	}
	h := m.Health()
	if h.ActiveAlgorithm != "flaky" || h.DegradationLevel != 0 {
		t.Fatalf("health = %q/%d, want flaky/0 after recovery", h.ActiveAlgorithm, h.DegradationLevel)
	}
	if h.Breakers[0].State != "closed" || h.Breakers[0].ConsecutiveFailures != 0 {
		t.Fatalf("breaker = %+v, want closed and reset", h.Breakers[0])
	}
}

// Budget trips are deterministic, so the manager must not retry them —
// one attempt, one BudgetTrips increment, straight down the ladder.
func TestBudgetTripIsNotRetried(t *testing.T) {
	var calls atomic.Int64
	tripping := Rung{Name: "governed", Build: func(_ context.Context, rs *rules.RuleSet) (Classifier, error) {
		calls.Add(1)
		return nil, &buildgov.BudgetError{Limit: "nodes", Stats: buildgov.Stats{Nodes: 11}}
	}}
	m, err := NewManagerLadder(ladderTestRules(),
		[]Rung{tripping, oracleRung("fallback")},
		Config{MaxBuildAttempts: 5})
	if err != nil {
		t.Fatal(err)
	}
	quiet(m)
	if got := calls.Load(); got != 1 {
		t.Fatalf("budget-tripped rung attempted %d times, want exactly 1", got)
	}
	h := m.Health()
	if h.BudgetTrips != 1 {
		t.Fatalf("BudgetTrips = %d, want 1", h.BudgetTrips)
	}
	if h.ActiveAlgorithm != "fallback" {
		t.Fatalf("active algorithm %q, want fallback", h.ActiveAlgorithm)
	}
	if h.BuildRetries != 0 {
		t.Fatalf("BuildRetries = %d, want 0 (no backoff for deterministic failures)", h.BuildRetries)
	}
}

// The final rung is attempted even when its breaker is open: a servable
// generation beats breaker hygiene, and the default ladder's last rung
// is the total linear fallback.
func TestFinalRungAlwaysAttempted(t *testing.T) {
	m, err := NewManagerLadder(ladderTestRules(), []Rung{oracleRung("only")}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	quiet(m)
	clock := newFakeClock()
	installClock(m, clock)
	m.mu.Lock()
	m.breakers[0] = breaker{fails: 99, openUntil: clock.t.Add(time.Hour)}
	m.mu.Unlock()
	if err := m.Apply(someOp()); err != nil {
		t.Fatalf("Apply failed with the sole (final) rung's breaker open: %v", err)
	}
	if h := m.Health(); h.ActiveAlgorithm != "only" {
		t.Fatalf("active algorithm %q, want only", h.ActiveAlgorithm)
	}
}

// DescribeAlgorithm reflects the live generation and survives Rollback.
func TestDescribeAlgorithmTracksGenerations(t *testing.T) {
	var flaky countingFailRung
	flaky.ok.Store(true)
	m, err := NewManagerLadder(ladderTestRules(),
		[]Rung{flaky.rung("best"), oracleRung("fallback")},
		cfgFast(1, time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	quiet(m)
	if algo, lvl := m.DescribeAlgorithm(); algo != "best" || lvl != 0 {
		t.Fatalf("describe = %q/%d, want best/0", algo, lvl)
	}
	// Break the best rung; the next Apply degrades.
	flaky.ok.Store(false)
	if err := m.Apply(someOp()); err != nil {
		t.Fatal(err)
	}
	if algo, lvl := m.DescribeAlgorithm(); algo != "fallback" || lvl != 1 {
		t.Fatalf("describe = %q/%d after degradation, want fallback/1", algo, lvl)
	}
	// Rollback reinstates the previous generation's attribution.
	if err := m.Rollback(); err != nil {
		t.Fatal(err)
	}
	if algo, lvl := m.DescribeAlgorithm(); algo != "best" || lvl != 0 {
		t.Fatalf("describe = %q/%d after rollback, want best/0", algo, lvl)
	}
}
