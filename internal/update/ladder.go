package update

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/buildgov"
	"repro/internal/expcuts"
	"repro/internal/hicuts"
	"repro/internal/hsm"
	"repro/internal/hypercuts"
	"repro/internal/linear"
	"repro/internal/rfc"
	"repro/internal/rmi"
	"repro/internal/rules"
)

// DefaultLadder is the canonical degradation ladder, best rung first:
//
//	expcuts → hicuts → hsm → linear
//
// ExpCuts is the paper's preferred structure (explicit depth bound, binth
// = 1) but has the largest build-time failure surface; HiCuts with binth
// leaves builds far smaller trees; HSM is field-independent, immune to
// decision-tree blow-up (its risk is cross-product table size, which the
// budget also bounds); and linear search is total — it cannot fail to
// build and is the very oracle candidates are validated against, so the
// ladder always lands on a servable generation. Every governed rung
// shares the same budget. A nil budget leaves rungs bounded only by the
// manager's BuildTimeout context.
func DefaultLadder(budget *buildgov.Budget) []Rung {
	rungs, err := LadderFromNames([]string{"expcuts", "hicuts", "hsm", "linear"}, budget)
	if err != nil {
		panic(err) // unreachable: the names above are all known
	}
	return rungs
}

// LadderFromNames builds a ladder from algorithm names (expcuts, hicuts,
// hypercuts, hsm, rfc, rmi, linear), all governed by the same budget. It
// is what the CLIs' -ladder flags parse into.
func LadderFromNames(names []string, budget *buildgov.Budget) ([]Rung, error) {
	if len(names) == 0 {
		return nil, fmt.Errorf("update: empty ladder")
	}
	rungs := make([]Rung, 0, len(names))
	for _, name := range names {
		name = strings.TrimSpace(name)
		rung, err := rungFor(name, budget)
		if err != nil {
			return nil, err
		}
		rungs = append(rungs, rung)
	}
	return rungs, nil
}

func rungFor(name string, budget *buildgov.Budget) (Rung, error) {
	var build BuilderCtx
	switch name {
	case "expcuts":
		build = func(ctx context.Context, rs *rules.RuleSet) (Classifier, error) {
			return expcuts.NewCtx(ctx, rs, expcuts.Config{}, budget)
		}
	case "hicuts":
		build = func(ctx context.Context, rs *rules.RuleSet) (Classifier, error) {
			return hicuts.NewCtx(ctx, rs, hicuts.Config{}, budget)
		}
	case "hypercuts":
		build = func(ctx context.Context, rs *rules.RuleSet) (Classifier, error) {
			return hypercuts.NewCtx(ctx, rs, hypercuts.Config{}, budget)
		}
	case "hsm":
		build = func(ctx context.Context, rs *rules.RuleSet) (Classifier, error) {
			return hsm.NewCtx(ctx, rs, hsm.Config{}, budget)
		}
	case "rfc":
		build = func(ctx context.Context, rs *rules.RuleSet) (Classifier, error) {
			return rfc.NewCtx(ctx, rs, rfc.Config{}, budget)
		}
	case "rmi":
		// The learned range index (NuevoMatch-style RQ-RMI). Its own
		// remainder chain reuses the same budget with ladder semantics,
		// so one budget governs the whole composite build.
		build = func(ctx context.Context, rs *rules.RuleSet) (Classifier, error) {
			return rmi.NewCtx(ctx, rs, rmi.Config{}, budget)
		}
	case "linear":
		// The total rung: ungoverned on purpose — linear.New performs
		// one O(rules) slab allocation and cannot blow up or hang.
		build = func(_ context.Context, rs *rules.RuleSet) (Classifier, error) {
			return linear.New(rs), nil
		}
	default:
		return Rung{}, fmt.Errorf("update: unknown ladder rung %q (expcuts, hicuts, hypercuts, hsm, rfc, rmi, linear)", name)
	}
	return Rung{Name: name, Build: build}, nil
}
