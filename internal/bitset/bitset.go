// Package bitset provides fixed-width bitsets over rule indices, the
// workhorse of the field-independent classifiers (HSM, RFC): equivalence
// classes of "which rules match this region" are bitsets, and combining
// phases intersect them.
package bitset

import (
	"encoding/binary"
	"math/bits"
)

// Set is a fixed-width bitset. All sets combined together must be created
// with the same universe size.
type Set []uint64

// New returns an empty set able to hold n bits.
func New(n int) Set {
	return make(Set, (n+63)/64)
}

// Add sets bit i.
func (s Set) Add(i int) {
	s[i/64] |= 1 << (i % 64)
}

// Has reports whether bit i is set.
func (s Set) Has(i int) bool {
	return s[i/64]&(1<<(i%64)) != 0
}

// AndInto stores a ∧ b into dst (all three must share a width) and reports
// whether the result is non-empty. dst may alias a or b.
func AndInto(dst, a, b Set) bool {
	any := uint64(0)
	for i := range dst {
		v := a[i] & b[i]
		dst[i] = v
		any |= v
	}
	return any != 0
}

// First returns the index of the lowest set bit, or -1 if the set is empty.
// Because rule bitsets are indexed by priority, First is "the
// highest-priority matching rule".
func (s Set) First() int {
	for i, w := range s {
		if w != 0 {
			return i*64 + bits.TrailingZeros64(w)
		}
	}
	return -1
}

// Count returns the number of set bits.
func (s Set) Count() int {
	n := 0
	for _, w := range s {
		n += bits.OnesCount64(w)
	}
	return n
}

// Equal reports whether two sets of the same width hold the same bits.
func (s Set) Equal(t Set) bool {
	for i := range s {
		if s[i] != t[i] {
			return false
		}
	}
	return true
}

// Clone returns a copy.
func (s Set) Clone() Set {
	c := make(Set, len(s))
	copy(c, s)
	return c
}

// AppendKey appends a canonical byte encoding of the set to buf, for use as
// an interning map key; the same bits always produce the same bytes.
func (s Set) AppendKey(buf []byte) []byte {
	for _, w := range s {
		buf = binary.LittleEndian.AppendUint64(buf, w)
	}
	return buf
}

// Interner deduplicates bitsets into dense class IDs.
type Interner struct {
	classes []Set
	index   map[string]uint32
	scratch []byte
}

// NewInterner returns an empty interner.
func NewInterner() *Interner {
	return &Interner{index: make(map[string]uint32)}
}

// Intern returns the class ID of s, registering a clone of it if unseen.
// The caller may reuse s's storage afterwards.
func (in *Interner) Intern(s Set) uint32 {
	in.scratch = s.AppendKey(in.scratch[:0])
	if id, ok := in.index[string(in.scratch)]; ok {
		return id
	}
	id := uint32(len(in.classes))
	in.classes = append(in.classes, s.Clone())
	in.index[string(in.scratch)] = id
	return id
}

// Class returns the bitset of a class ID.
func (in *Interner) Class(id uint32) Set {
	return in.classes[id]
}

// Len returns the number of distinct classes.
func (in *Interner) Len() int {
	return len(in.classes)
}
