package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAddHasFirst(t *testing.T) {
	s := New(200)
	if s.First() != -1 {
		t.Errorf("empty First = %d", s.First())
	}
	for _, i := range []int{199, 64, 7, 63, 128} {
		s.Add(i)
	}
	if !s.Has(64) || !s.Has(199) || s.Has(65) {
		t.Error("Has wrong")
	}
	if s.First() != 7 {
		t.Errorf("First = %d, want 7", s.First())
	}
	if s.Count() != 5 {
		t.Errorf("Count = %d, want 5", s.Count())
	}
}

func TestAndInto(t *testing.T) {
	a, b := New(130), New(130)
	a.Add(1)
	a.Add(100)
	a.Add(129)
	b.Add(100)
	b.Add(129)
	b.Add(2)
	dst := New(130)
	if !AndInto(dst, a, b) {
		t.Fatal("intersection should be non-empty")
	}
	if dst.Count() != 2 || !dst.Has(100) || !dst.Has(129) {
		t.Errorf("intersection wrong: count %d", dst.Count())
	}
	// Empty intersection returns false.
	c := New(130)
	c.Add(3)
	if AndInto(dst, a, c) {
		t.Error("disjoint sets should intersect to empty")
	}
	if dst.Count() != 0 {
		t.Error("dst not cleared on empty intersection")
	}
	// Aliasing dst with an operand is allowed.
	a2 := a.Clone()
	if !AndInto(a2, a2, b) {
		t.Fatal("aliased AndInto failed")
	}
	if a2.Count() != 2 {
		t.Errorf("aliased result count %d", a2.Count())
	}
}

func TestEqualClone(t *testing.T) {
	a := New(70)
	a.Add(69)
	b := a.Clone()
	if !a.Equal(b) {
		t.Error("clone not equal")
	}
	b.Add(0)
	if a.Equal(b) {
		t.Error("modified clone still equal")
	}
}

func TestInterner(t *testing.T) {
	in := NewInterner()
	a := New(100)
	a.Add(5)
	b := New(100)
	b.Add(5)
	c := New(100)
	c.Add(6)
	idA := in.Intern(a)
	idB := in.Intern(b)
	idC := in.Intern(c)
	if idA != idB {
		t.Errorf("equal sets got distinct classes %d, %d", idA, idB)
	}
	if idA == idC {
		t.Error("distinct sets share a class")
	}
	if in.Len() != 2 {
		t.Errorf("Len = %d, want 2", in.Len())
	}
	if !in.Class(idA).Has(5) {
		t.Error("Class returned wrong set")
	}
	// Interned sets are clones: mutating the original must not change the
	// registered class.
	a.Add(50)
	if in.Class(idA).Has(50) {
		t.Error("interner aliased caller storage")
	}
}

func TestInternerManyRandom(t *testing.T) {
	in := NewInterner()
	rng := rand.New(rand.NewSource(1))
	type entry struct {
		id uint32
		s  Set
	}
	var entries []entry
	for i := 0; i < 500; i++ {
		s := New(256)
		for j := 0; j < rng.Intn(10); j++ {
			s.Add(rng.Intn(256))
		}
		entries = append(entries, entry{in.Intern(s), s})
	}
	for _, e := range entries {
		if !in.Class(e.id).Equal(e.s) {
			t.Fatal("class table corrupted")
		}
	}
}

func TestFirstIsMinimumProperty(t *testing.T) {
	f := func(idxs []uint16) bool {
		s := New(1 << 16)
		min := -1
		for _, raw := range idxs {
			i := int(raw)
			s.Add(i)
			if min == -1 || i < min {
				min = i
			}
		}
		return s.First() == min
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
