package buildgov

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

// A nil governor (and a Start with nil budget) must govern nothing: every
// method is a no-op so ungoverned entry points need no branches.
func TestNilGovernorIsInert(t *testing.T) {
	var g *Governor
	if err := g.Check(); err != nil {
		t.Fatalf("nil.Check() = %v", err)
	}
	if err := g.Nodes(1e9, 1<<40); err != nil {
		t.Fatalf("nil.Nodes() = %v", err)
	}
	if err := g.Memo(1e9, 1<<40); err != nil {
		t.Fatalf("nil.Memo() = %v", err)
	}
	if err := g.Bytes(1 << 40); err != nil {
		t.Fatalf("nil.Bytes() = %v", err)
	}
	if err := g.Err(); err != nil {
		t.Fatalf("nil.Err() = %v", err)
	}
	if s := g.Stats(); s != (Stats{}) {
		t.Fatalf("nil.Stats() = %+v, want zero", s)
	}
}

func TestNilBudgetWatchesOnlyContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	g := Start(ctx, nil)
	if err := g.Nodes(1e9, 1<<40); err != nil {
		t.Fatalf("unlimited Nodes charge tripped: %v", err)
	}
	cancel()
	err := pollUntilTrip(g)
	var be *BudgetError
	if !errors.As(err, &be) || be.Limit != "canceled" {
		t.Fatalf("after cancel got %v, want BudgetError{Limit: canceled}", err)
	}
	if !errors.Is(err, ErrBudgetExceeded) || !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v should wrap both ErrBudgetExceeded and context.Canceled", err)
	}
}

// pollUntilTrip calls Check up to 2*checkStride times — enough to cross
// the amortized poll boundary at least once.
func pollUntilTrip(g *Governor) error {
	for i := 0; i < 2*checkStride; i++ {
		if err := g.Check(); err != nil {
			return err
		}
	}
	return nil
}

func TestNodeLimitTrips(t *testing.T) {
	g := Start(context.Background(), &Budget{MaxNodes: 10})
	var err error
	for i := 0; i < 100 && err == nil; i++ {
		err = g.Nodes(1, 8)
	}
	var be *BudgetError
	if !errors.As(err, &be) || be.Limit != "nodes" {
		t.Fatalf("got %v, want BudgetError{Limit: nodes}", err)
	}
	if be.Stats.Nodes != 11 {
		t.Fatalf("trip stats recorded %d nodes, want 11 (first charge past the cap)", be.Stats.Nodes)
	}
}

func TestMemoLimitTrips(t *testing.T) {
	g := Start(context.Background(), &Budget{MaxMemoEntries: 5})
	var err error
	for i := 0; i < 100 && err == nil; i++ {
		err = g.Memo(1, 64)
	}
	var be *BudgetError
	if !errors.As(err, &be) || be.Limit != "memo-entries" {
		t.Fatalf("got %v, want BudgetError{Limit: memo-entries}", err)
	}
}

func TestHeapByteLimitTrips(t *testing.T) {
	g := Start(context.Background(), &Budget{MaxHeapBytes: 1 << 20})
	// A single absurd pre-allocation charge must be refused, whichever
	// charging method carries it.
	err := g.Bytes(1 << 30)
	var be *BudgetError
	if !errors.As(err, &be) || be.Limit != "heap-bytes" {
		t.Fatalf("got %v, want BudgetError{Limit: heap-bytes}", err)
	}

	g = Start(context.Background(), &Budget{MaxHeapBytes: 100})
	if err := g.Nodes(1, 101); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("Nodes byte charge got %v, want budget trip", err)
	}
	g = Start(context.Background(), &Budget{MaxHeapBytes: 100})
	if err := g.Memo(1, 101); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("Memo byte charge got %v, want budget trip", err)
	}
}

func TestDeadlineTripsWithinBound(t *testing.T) {
	const timeout = 50 * time.Millisecond
	g := Start(context.Background(), &Budget{Timeout: timeout})
	start := time.Now()
	var err error
	for err == nil {
		err = g.Check()
	}
	elapsed := time.Since(start)
	var be *BudgetError
	if !errors.As(err, &be) || be.Limit != "deadline" {
		t.Fatalf("got %v, want BudgetError{Limit: deadline}", err)
	}
	// The robustness contract: cooperative polling notices the deadline
	// well within 2x of it.
	if elapsed > 2*timeout {
		t.Fatalf("deadline noticed after %v, want < %v", elapsed, 2*timeout)
	}
}

func TestContextDeadlineCombinesWithTimeout(t *testing.T) {
	// The context's deadline is sooner than the budget's generous
	// timeout; the governor must adopt the earlier of the two.
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	g := Start(ctx, &Budget{Timeout: time.Hour})
	deadline := g.deadline
	if d, _ := ctx.Deadline(); !deadline.Equal(d) {
		t.Fatalf("governor deadline %v, want the context's %v", deadline, d)
	}
}

func TestTripIsSticky(t *testing.T) {
	g := Start(context.Background(), &Budget{MaxNodes: 1})
	first := g.Nodes(2, 0)
	if first == nil {
		t.Fatal("expected a trip")
	}
	for i := 0; i < 5; i++ {
		if err := g.Check(); err != first {
			t.Fatalf("Check after trip returned %v, want the original sticky error", err)
		}
		if err := g.Nodes(1, 0); err != first {
			t.Fatalf("Nodes after trip returned %v, want the original sticky error", err)
		}
	}
	if err := g.Err(); err != first {
		t.Fatalf("Err() = %v, want the sticky error", err)
	}
}

func TestStatsAccumulate(t *testing.T) {
	g := Start(context.Background(), nil)
	g.Nodes(3, 100)
	g.Memo(2, 50)
	g.Bytes(25)
	s := g.Stats()
	if s.Nodes != 3 || s.MemoEntries != 2 || s.HeapBytes != 175 {
		t.Fatalf("stats = %+v, want nodes=3 memo=2 heap=175", s)
	}
	if s.Elapsed <= 0 {
		t.Fatalf("elapsed = %v, want > 0", s.Elapsed)
	}
	if str := s.String(); !strings.Contains(str, "nodes=3") {
		t.Fatalf("Stats.String() = %q, want it to mention nodes=3", str)
	}
}

func TestBudgetErrorMessages(t *testing.T) {
	e := &BudgetError{Limit: "nodes", Stats: Stats{Nodes: 7}}
	if msg := e.Error(); !strings.Contains(msg, "nodes") || !strings.Contains(msg, "nodes=7") {
		t.Fatalf("message %q should name the limit and the stats", msg)
	}
	e = &BudgetError{Limit: "canceled", Cause: context.Canceled}
	if msg := e.Error(); !strings.Contains(msg, "canceled") || !strings.Contains(msg, context.Canceled.Error()) {
		t.Fatalf("message %q should carry the cause", msg)
	}
}
