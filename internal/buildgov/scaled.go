package buildgov

import "time"

// ScaledBudget returns a build budget calibrated to the rule count — the
// per-rung budget the large-set experiments and the large-set-smoke CI job
// hand every ladder rung. The paper-scale sets (≤2k rules) used hand-picked
// budgets; at 100k–1M the limits must grow with the input or every build
// trips immediately, yet stay tight enough that a decision-tree blowup
// (super-linear in rule overlap) trips the governor while the process is
// still healthy rather than after the allocator has already paged the
// machine.
//
// The shape, calibrated against ACL-family builds at 10k/100k (see
// TestEstimateAccuracyAtScale):
//
//   - Timeout: 2s base + 50ms per 1k rules, capped at 60s. Linear in the
//     input like every well-behaved build; a tree that needs more than
//     this is blowing up, not finishing.
//   - MaxHeapBytes: 4 KiB per rule, floored at 64 MiB (small sets get
//     slack for fixed overheads) and capped at 512 MiB (no rule count
//     justifies an unbounded resident build on a shared box).
//   - MaxNodes: 8 per rule + 64Ki. Balanced trees stay well under one
//     node per rule; 8× is deep into blowup territory.
//   - MaxMemoEntries: 4 per rule + 64Ki, same rationale.
func ScaledBudget(ruleCount int) *Budget {
	n := int64(ruleCount)
	if n < 0 {
		n = 0
	}
	timeout := 2*time.Second + time.Duration(n/1000)*50*time.Millisecond
	if timeout > 60*time.Second {
		timeout = 60 * time.Second
	}
	heap := n * 4096
	if heap < 64<<20 {
		heap = 64 << 20
	}
	if heap > 512<<20 {
		heap = 512 << 20
	}
	return &Budget{
		Timeout:        timeout,
		MaxNodes:       int(8*n) + 65536,
		MaxHeapBytes:   heap,
		MaxMemoEntries: int(4*n) + 65536,
	}
}
