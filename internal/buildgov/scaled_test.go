package buildgov_test

import (
	"context"
	"errors"
	"runtime"
	"runtime/debug"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/buildgov"
	"repro/internal/expcuts"
	"repro/internal/rulegen"
)

func TestScaledBudgetShape(t *testing.T) {
	small := buildgov.ScaledBudget(1000)
	if small.MaxHeapBytes != 64<<20 {
		t.Errorf("1k floor: MaxHeapBytes = %d, want 64MiB", small.MaxHeapBytes)
	}
	mid := buildgov.ScaledBudget(100000)
	if mid.MaxHeapBytes != 100000*4096 {
		t.Errorf("100k: MaxHeapBytes = %d, want 4KiB/rule", mid.MaxHeapBytes)
	}
	big := buildgov.ScaledBudget(1000000)
	if big.MaxHeapBytes != 512<<20 {
		t.Errorf("1M cap: MaxHeapBytes = %d, want 512MiB", big.MaxHeapBytes)
	}
	if big.Timeout != 52*time.Second || mid.Timeout != 7*time.Second {
		t.Errorf("timeouts: 1M=%v 100k=%v, want 52s/7s", big.Timeout, mid.Timeout)
	}
	if mid.MaxNodes != 8*100000+65536 || mid.MaxMemoEntries != 4*100000+65536 {
		t.Errorf("100k: nodes=%d memo=%d", mid.MaxNodes, mid.MaxMemoEntries)
	}
}

// TestEstimateAccuracyAtScale holds the governor's heap-byte estimate to
// the *measured* peak heap of real large-set decision-tree builds. The
// per-node constants were calibrated on ≤2k-rule sets and drifted to ~2×
// under actual peak at 10k–100k rules — trips fired after the blowup, not
// before. The test lets an ACL-family ExpCuts build run for a fixed slice
// of wall clock (these sets are exactly the overlap shape that blows trees
// up, so the build trips its deadline rather than finishing), polls
// HeapAlloc throughout, and requires estimate and measurement to agree
// within a band either way. Ratio-based on purpose: wall-clock slices
// and race-detector slowdowns change how far the build gets, but estimate
// and actual accrue together. HeapAlloc includes not-yet-collected
// garbage, which the governor rightly does not charge for, so the test
// pins GC pacing tight (GCPercent 20) to keep the measured peak close to
// live bytes and still allows the under-count direction extra headroom:
// under CPU contention a deadline-bounded build accrues little accounted
// state while transient build garbage keeps HeapAlloc up.
func TestEstimateAccuracyAtScale(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second tree builds")
	}
	defer debug.SetGCPercent(debug.SetGCPercent(20))
	for _, size := range []int{10000, 100000} {
		rs, err := rulegen.Generate(rulegen.LargeForSize(size))
		if err != nil {
			t.Fatalf("rulegen(%d): %v", size, err)
		}
		runtime.GC()
		var m0 runtime.MemStats
		runtime.ReadMemStats(&m0)

		var peak atomic.Uint64
		stop := make(chan struct{})
		done := make(chan struct{})
		go func() {
			defer close(done)
			for {
				select {
				case <-stop:
					return
				default:
				}
				var m runtime.MemStats
				runtime.ReadMemStats(&m)
				if m.HeapAlloc > peak.Load() {
					peak.Store(m.HeapAlloc)
				}
				time.Sleep(2 * time.Millisecond)
			}
		}()

		budget := &buildgov.Budget{Timeout: 3 * time.Second, MaxHeapBytes: 2 << 30}
		_, buildErr := expcuts.NewCtx(context.Background(), rs, expcuts.Config{}, budget)
		close(stop)
		<-done

		// Either outcome is fine for the measurement; what must hold is
		// that a trip, when it happens, is the deadline (the heap limit
		// here is deliberately unreachable) and the accounting tracked
		// reality while the build ran.
		if buildErr != nil && !errors.Is(buildErr, buildgov.ErrBudgetExceeded) {
			t.Fatalf("size=%d: unexpected build error: %v", size, buildErr)
		}
		est := peakEstimate(budget, buildErr)
		if est == 0 {
			t.Fatalf("size=%d: no heap estimate recorded (build err: %v)", size, buildErr)
		}
		actual := int64(peak.Load() - m0.HeapAlloc)
		if actual <= 0 {
			t.Fatalf("size=%d: no measurable heap growth", size)
		}
		if est*5 < actual {
			t.Errorf("size=%d: estimate %dMB under-counts measured peak %dMB by >5× — trips would fire after the blowup",
				size, est>>20, actual>>20)
		}
		if actual*3 < est {
			t.Errorf("size=%d: estimate %dMB over-counts measured peak %dMB by >3× — budgets would trip healthy builds",
				size, est>>20, actual>>20)
		}
		t.Logf("size=%d: estimate %dMB, measured peak %dMB", size, est>>20, actual>>20)
	}
}

// peakEstimate extracts the governor's heap-byte figure from the trip
// error carried by a deadline-bounded build.
func peakEstimate(_ *buildgov.Budget, err error) int64 {
	var be *buildgov.BudgetError
	if errors.As(err, &be) {
		return be.Stats.HeapBytes
	}
	return 0
}
