package buildgov

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// TestConcurrentChargesAreExact hammers one governor from many goroutines
// and checks that no charge is lost or double-counted: the final stats
// must equal the arithmetic sum of everything the workers charged.
// (Run under -race this also proves the Governor is data-race free.)
func TestConcurrentChargesAreExact(t *testing.T) {
	const workers = 8
	const perWorker = 5000

	g := Start(context.Background(), &Budget{}) // unlimited: nothing trips
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if err := g.Nodes(1, 16); err != nil {
					t.Errorf("unexpected trip: %v", err)
					return
				}
				if i%3 == 0 {
					if err := g.Memo(2, 8); err != nil {
						t.Errorf("unexpected trip: %v", err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()

	st := g.Stats()
	wantNodes := workers * perWorker
	wantMemo := workers * ((perWorker + 2) / 3) * 2
	wantBytes := int64(workers) * (perWorker*16 + int64((perWorker+2)/3)*8)
	if st.Nodes != wantNodes {
		t.Errorf("Nodes = %d, want %d (lost or double-counted charges)", st.Nodes, wantNodes)
	}
	if st.MemoEntries != wantMemo {
		t.Errorf("MemoEntries = %d, want %d", st.MemoEntries, wantMemo)
	}
	if st.HeapBytes != wantBytes {
		t.Errorf("HeapBytes = %d, want %d", st.HeapBytes, wantBytes)
	}
}

// TestConcurrentTripIsSharedAndSticky trips a shared governor from one
// of many workers and checks every worker unwinds with the *same*
// *BudgetError pointer — the contract the parallel builders rely on to
// stop their whole pool after the first violation.
func TestConcurrentTripIsSharedAndSticky(t *testing.T) {
	const workers = 8
	g := Start(context.Background(), &Budget{MaxNodes: 100})

	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				if err := g.Nodes(1, 1); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()

	var first *BudgetError
	for w, err := range errs {
		if err == nil {
			t.Fatalf("worker %d never tripped", w)
		}
		var be *BudgetError
		if !errors.As(err, &be) {
			t.Fatalf("worker %d: error %T is not a *BudgetError", w, err)
		}
		if first == nil {
			first = be
		} else if be != first {
			t.Errorf("worker %d received a different BudgetError pointer (not sticky across goroutines)", w)
		}
	}
	if first.Limit != "nodes" {
		t.Errorf("Limit = %q, want %q", first.Limit, "nodes")
	}
	// Total consumption at trip must be exact: every successful Nodes call
	// added exactly 1, and the final (tripping) charges are included. With
	// the charge-then-check protocol the count can overshoot MaxNodes by at
	// most one in-flight charge per worker, never more.
	if got := g.Stats().Nodes; got <= 100 || got > 100+workers {
		t.Errorf("Nodes at trip = %d, want in (100, %d]", got, 100+workers)
	}
	if err := g.Check(); err != error(first) {
		t.Errorf("Check after concurrent trip returned %v, want the sticky error", err)
	}
}

// TestConcurrentDeadlineUnwindsAllWorkers checks that a wall-clock trip
// reaches every worker of a shared governor quickly (the 2x-deadline
// guarantee must hold for fanned-out builds, not just sequential ones).
func TestConcurrentDeadlineUnwindsAllWorkers(t *testing.T) {
	const workers = 4
	timeout := 50 * time.Millisecond
	g := Start(context.Background(), &Budget{Timeout: timeout})

	start := time.Now()
	var wg sync.WaitGroup
	unwound := make([]time.Duration, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				if err := g.Check(); err != nil {
					if !errors.Is(err, ErrBudgetExceeded) {
						t.Errorf("worker %d: %v does not wrap ErrBudgetExceeded", w, err)
					}
					unwound[w] = time.Since(start)
					return
				}
				time.Sleep(100 * time.Microsecond) // a "node" of work
			}
		}(w)
	}
	wg.Wait()

	for w, d := range unwound {
		if d > 2*timeout {
			t.Errorf("worker %d unwound after %v, want <= 2x the %v deadline", w, d, timeout)
		}
	}
}
