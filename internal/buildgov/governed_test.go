package buildgov_test

// Cross-package robustness suite: proves that a tiny budget plus an
// adversarial rule set cancels every governed builder cooperatively —
// within 2x the wall-clock deadline, with a typed error, and without
// leaking a single goroutine — and that the checked-in pathological
// corpus keeps doing so (TestBudgetSoak, run by CI in its own job).

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"repro/internal/buildgov"
	"repro/internal/expcuts"
	"repro/internal/faultinject"
	"repro/internal/hicuts"
	"repro/internal/hsm"
	"repro/internal/hypercuts"
	"repro/internal/rfc"
	"repro/internal/rules"
)

var updateCorpus = flag.Bool("update", false, "regenerate the pathological corpus in testdata/")

// builders is every governed build entry point, uniformly shaped.
var builders = []struct {
	name  string
	build func(ctx context.Context, rs *rules.RuleSet, b *buildgov.Budget) error
}{
	{"expcuts", func(ctx context.Context, rs *rules.RuleSet, b *buildgov.Budget) error {
		_, err := expcuts.NewCtx(ctx, rs, expcuts.Config{}, b)
		return err
	}},
	{"hicuts", func(ctx context.Context, rs *rules.RuleSet, b *buildgov.Budget) error {
		_, err := hicuts.NewCtx(ctx, rs, hicuts.Config{}, b)
		return err
	}},
	{"hypercuts", func(ctx context.Context, rs *rules.RuleSet, b *buildgov.Budget) error {
		_, err := hypercuts.NewCtx(ctx, rs, hypercuts.Config{}, b)
		return err
	}},
	{"hsm", func(ctx context.Context, rs *rules.RuleSet, b *buildgov.Budget) error {
		_, err := hsm.NewCtx(ctx, rs, hsm.Config{}, b)
		return err
	}},
	{"rfc", func(ctx context.Context, rs *rules.RuleSet, b *buildgov.Budget) error {
		_, err := rfc.NewCtx(ctx, rs, rfc.Config{}, b)
		return err
	}},
}

// corpus maps each checked-in testdata file to the deterministic
// generator that produced it; TestCorpusMatchesGenerators enforces the
// mapping, so the files can always be regenerated with -update.
var corpus = []struct {
	file string
	gen  func() *rules.RuleSet
}{
	{"overlap-grid-16.rules", func() *rules.RuleSet { return faultinject.OverlapGrid("overlap-grid-16", 16) }},
	{"overlap-grid-32.rules", func() *rules.RuleSet { return faultinject.OverlapGrid("overlap-grid-32", 32) }},
	{"wildcard-storm-200.rules", func() *rules.RuleSet { return faultinject.WildcardStorm("wildcard-storm-200", 200, 7) }},
	{"wildcard-storm-500.rules", func() *rules.RuleSet { return faultinject.WildcardStorm("wildcard-storm-500", 500, 7) }},
}

// waitNoLeaks gives transient runtime goroutines a moment to exit, then
// asserts we are back at the baseline count.
func waitNoLeaks(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutine leak: %d running, baseline %d", runtime.NumGoroutine(), base)
}

// TestDeadlineBudgetCancelsRunawayBuilds pins the headline guarantee:
// every governed builder, pointed at a rule set hostile to it and given
// only a wall-clock budget, aborts with ErrBudgetExceeded within 2x the
// deadline and leaks nothing.
func TestDeadlineBudgetCancelsRunawayBuilds(t *testing.T) {
	const timeout = 300 * time.Millisecond
	// storm500 blows up every decision-tree builder and rfc;
	// storm200 is the one that gets past hsm's own table cap far
	// enough to run long (storm500 trips hsm's MaxTableEntries check
	// before the clock matters).
	cases := []struct {
		builder string
		set     *rules.RuleSet
	}{
		{"expcuts", faultinject.WildcardStorm("storm", 200, 7)},
		{"hicuts", faultinject.WildcardStorm("storm", 200, 7)},
		{"hypercuts", faultinject.WildcardStorm("storm", 200, 7)},
		{"hsm", faultinject.WildcardStorm("storm", 200, 7)},
		{"rfc", faultinject.WildcardStorm("storm", 500, 7)},
	}
	base := runtime.NumGoroutine()
	for _, tc := range cases {
		tc := tc
		t.Run(tc.builder, func(t *testing.T) {
			var build func(context.Context, *rules.RuleSet, *buildgov.Budget) error
			for _, b := range builders {
				if b.name == tc.builder {
					build = b.build
				}
			}
			start := time.Now()
			err := build(context.Background(), tc.set, &buildgov.Budget{Timeout: timeout})
			elapsed := time.Since(start)
			if !errors.Is(err, buildgov.ErrBudgetExceeded) {
				t.Fatalf("build finished with %v, want a budget trip", err)
			}
			var be *buildgov.BudgetError
			if !errors.As(err, &be) {
				t.Fatalf("error %v carries no *BudgetError", err)
			}
			if be.Limit != "deadline" {
				t.Fatalf("tripped on %q, want deadline (stats: %s)", be.Limit, be.Stats)
			}
			if elapsed > 2*timeout {
				t.Fatalf("cooperative cancellation took %v, want < %v", elapsed, 2*timeout)
			}
			t.Logf("aborted after %v with %s", elapsed.Round(time.Millisecond), be.Stats)
		})
	}
	waitNoLeaks(t, base)
}

// TestNodeAndMemoBudgetsCancelEarly verifies the non-clock axes: a node
// or memo cap aborts the build long before any deadline.
func TestNodeAndMemoBudgetsCancelEarly(t *testing.T) {
	storm := faultinject.WildcardStorm("storm", 200, 7)
	err := func() error {
		_, err := expcuts.NewCtx(context.Background(), storm, expcuts.Config{},
			&buildgov.Budget{Timeout: time.Minute, MaxNodes: 100})
		return err
	}()
	var be *buildgov.BudgetError
	if !errors.As(err, &be) || be.Limit != "nodes" {
		t.Fatalf("got %v, want a nodes trip", err)
	}
	if be.Stats.Nodes > 100+1 {
		t.Fatalf("charged %d nodes past a cap of 100", be.Stats.Nodes)
	}

	err = func() error {
		_, err := expcuts.NewCtx(context.Background(), storm, expcuts.Config{},
			&buildgov.Budget{Timeout: time.Minute, MaxMemoEntries: 50})
		return err
	}()
	if !errors.As(err, &be) || be.Limit != "memo-entries" {
		t.Fatalf("got %v, want a memo-entries trip", err)
	}
}

// TestHeapBudgetRefusesCrossProductTables verifies that hsm charges its
// cross-product tables before allocating them: a byte cap far below the
// table sizes trips "heap-bytes" instead of materializing the tables.
func TestHeapBudgetRefusesCrossProductTables(t *testing.T) {
	storm := faultinject.WildcardStorm("storm", 200, 7)
	_, err := hsm.NewCtx(context.Background(), storm, hsm.Config{},
		&buildgov.Budget{Timeout: time.Minute, MaxHeapBytes: 1 << 20})
	var be *buildgov.BudgetError
	if !errors.As(err, &be) || be.Limit != "heap-bytes" {
		t.Fatalf("got %v, want a heap-bytes trip", err)
	}
}

// TestContextCancellationAbortsBuilds proves plain ctx cancellation (no
// budget at all) is honored by every builder.
func TestContextCancellationAbortsBuilds(t *testing.T) {
	storm := faultinject.WildcardStorm("storm", 500, 7)
	base := runtime.NumGoroutine()
	for _, b := range builders {
		b := b
		t.Run(b.name, func(t *testing.T) {
			ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
			defer cancel()
			start := time.Now()
			err := b.build(ctx, storm, nil)
			elapsed := time.Since(start)
			// Fast builders may legitimately finish, or refuse via their
			// own table caps; slow ones must surface the cancellation.
			if err == nil || !errors.Is(err, buildgov.ErrBudgetExceeded) {
				t.Logf("finished before cancellation mattered: err=%v", err)
				return
			}
			if !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("budget error %v does not wrap the context error", err)
			}
			if elapsed > 2*100*time.Millisecond {
				t.Fatalf("cancellation honored after %v, want < 200ms", elapsed)
			}
		})
	}
	waitNoLeaks(t, base)
}

func corpusPath(file string) string { return filepath.Join("testdata", file) }

func renderSet(rs *rules.RuleSet) []byte {
	var buf bytes.Buffer
	if err := rs.Write(&buf); err != nil {
		panic(fmt.Sprintf("rendering %s: %v", rs.Name, err))
	}
	return buf.Bytes()
}

// TestCorpusMatchesGenerators pins the checked-in corpus to its
// generators, so the soak job and local runs always exercise identical
// bytes. Run with -update to (re)write testdata/.
func TestCorpusMatchesGenerators(t *testing.T) {
	for _, c := range corpus {
		c := c
		t.Run(c.file, func(t *testing.T) {
			want := renderSet(c.gen())
			if *updateCorpus {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(corpusPath(c.file), want, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			got, err := os.ReadFile(corpusPath(c.file))
			if err != nil {
				t.Fatalf("reading corpus (regenerate with -update): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("%s no longer matches its generator; regenerate with -update", c.file)
			}
			// And the file must round-trip through the rule-set parser.
			rs, err := rules.Parse(c.file, bytes.NewReader(got))
			if err != nil {
				t.Fatalf("corpus does not parse: %v", err)
			}
			if rs.Len() != c.gen().Len() {
				t.Fatalf("parsed %d rules, generator produced %d", rs.Len(), c.gen().Len())
			}
		})
	}
}

// TestBudgetSoak replays every corpus file through every governed
// builder under a small budget: each build must either finish or trip
// the budget (or a builder's own structural cap) within twice the
// wall-clock allowance, and nothing may leak. CI runs this in a
// dedicated job (-run BudgetSoak).
func TestBudgetSoak(t *testing.T) {
	const timeout = 250 * time.Millisecond
	budget := &buildgov.Budget{
		Timeout:        timeout,
		MaxNodes:       50_000,
		MaxHeapBytes:   32 << 20,
		MaxMemoEntries: 50_000,
	}
	base := runtime.NumGoroutine()
	for _, c := range corpus {
		data, err := os.ReadFile(corpusPath(c.file))
		if err != nil {
			t.Fatalf("reading corpus (regenerate with -update): %v", err)
		}
		rs, err := rules.Parse(c.file, bytes.NewReader(data))
		if err != nil {
			t.Fatalf("parsing %s: %v", c.file, err)
		}
		for _, b := range builders {
			b := b
			t.Run(c.file+"/"+b.name, func(t *testing.T) {
				start := time.Now()
				err := b.build(context.Background(), rs, budget)
				elapsed := time.Since(start)
				if err != nil && !errors.Is(err, buildgov.ErrBudgetExceeded) {
					// The builders' own structural caps (cross-product
					// table limits) are acceptable refusals; anything
					// else is a real failure.
					var be *buildgov.BudgetError
					if errors.As(err, &be) {
						t.Fatalf("BudgetError not wrapping sentinel: %v", err)
					}
					t.Logf("refused by builder's own cap: %v", err)
				}
				if elapsed > 2*timeout {
					t.Fatalf("build ran %v, want < %v", elapsed, 2*timeout)
				}
			})
		}
	}
	waitNoLeaks(t, base)
}
