// Package buildgov governs classifier *construction* the way the engine
// governs classification: with explicit, enforced resource bounds. The
// decision-tree and cross-producting builders in this repository are
// super-linear in rule overlap — an adversarial or merely unlucky rule set
// can blow up node counts, memoization tables, resident memory and build
// time by orders of magnitude (the failure surface of the whole
// HiCuts/HyperCuts/ExpCuts family). A serving process that rebuilds
// classifiers from untrusted or machine-generated rule feeds therefore
// needs every build to terminate in bounded time with bounded memory, no
// matter what the rule set looks like.
//
// Go offers no preemptive way to stop a runaway computation or cap a
// goroutine's heap, so governance is *cooperative*: builders thread a
// *Governor through their build loops and charge every node, memoization
// entry and estimated heap byte against a Budget. The first limit crossed
// — or context cancellation, or the wall-clock deadline — makes every
// subsequent Governor call return a typed *BudgetError (wrapping
// ErrBudgetExceeded) carrying the partial consumption stats, and the
// builder unwinds. Because the builders charge work at least once per
// node / table row, a tripped build aborts within a bounded amount of
// additional work, not at some unbounded future point.
//
// A Governor is safe for concurrent use: the parallel subtree builders
// (expcuts, hicuts) share one governor across their worker pool, so the
// budget bounds the build's *total* consumption, not per-worker slices.
// Charges are atomic — nothing is lost or double-counted under
// concurrency — and the first trip is sticky for every worker, which is
// what unwinds a fanned-out build promptly when any one worker crosses a
// limit.
//
// Byte accounting is an estimate, not an os-level cap: builders charge
// the sizes of the structures they allocate (see each builder's
// estimatedNodeBytes accounting and DESIGN.md for how node counts map to
// serialized memlayout words). The estimate deliberately under-counts
// small fixed overheads and is meant for "tens of megabytes vs gigabytes"
// discrimination, which is what keeps a process alive.
package buildgov

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// ErrBudgetExceeded is the sentinel every budget violation wraps. Callers
// distinguish deterministic budget trips (not worth retrying — the same
// build would trip the same limit) from transient build failures with
// errors.Is(err, ErrBudgetExceeded).
var ErrBudgetExceeded = errors.New("buildgov: build budget exceeded")

// Budget bounds one classifier build. The zero value of any field means
// "unlimited" for that axis; a nil *Budget governs nothing but still
// honors context cancellation.
type Budget struct {
	// Timeout is the wall-clock bound on the build, measured from
	// Start. It combines with any deadline already on the context
	// (whichever expires first wins).
	Timeout time.Duration
	// MaxNodes bounds tree nodes / table rows charged via Nodes.
	MaxNodes int
	// MaxHeapBytes bounds the builder's own estimate of live allocated
	// bytes charged via Bytes (see the package comment on accuracy).
	MaxHeapBytes int64
	// MaxMemoEntries bounds memoization/interning entries charged via
	// Memo — the hidden multiplier of sharing-based builders.
	MaxMemoEntries int
	// Events, when non-nil, receives one EventBudgetTrip flight-recorder
	// entry the moment any limit trips (once per build; the error is
	// sticky). Off the metered path: builders never touch it, only trip
	// does.
	Events *obs.Ring
}

// Stats is the partial consumption snapshot carried by a BudgetError and
// exposed by Governor.Stats.
type Stats struct {
	// Nodes, HeapBytes and MemoEntries are the amounts charged so far.
	Nodes       int
	HeapBytes   int64
	MemoEntries int
	// Elapsed is the wall-clock time since Start at snapshot time.
	Elapsed time.Duration
}

// String renders the snapshot compactly for error messages and logs.
func (s Stats) String() string {
	return fmt.Sprintf("nodes=%d heap≈%dB memo=%d elapsed=%v",
		s.Nodes, s.HeapBytes, s.MemoEntries, s.Elapsed.Round(time.Millisecond))
}

// BudgetError reports which limit a build crossed and what it had
// consumed when it unwound. It wraps ErrBudgetExceeded (and the context
// error, when the trip came from cancellation or a deadline).
type BudgetError struct {
	// Limit names the axis that tripped: "nodes", "heap-bytes",
	// "memo-entries", "deadline" or "canceled".
	Limit string
	// Stats is the partial consumption at trip time.
	Stats Stats
	// Cause is non-nil when the trip came from the context.
	Cause error
}

// Error implements error.
func (e *BudgetError) Error() string {
	if e.Cause != nil {
		return fmt.Sprintf("buildgov: build aborted (%s) after %s: %v", e.Limit, e.Stats, e.Cause)
	}
	return fmt.Sprintf("buildgov: %s budget exceeded after %s", e.Limit, e.Stats)
}

// Unwrap lets errors.Is see both ErrBudgetExceeded and any context error.
func (e *BudgetError) Unwrap() []error {
	if e.Cause != nil {
		return []error{ErrBudgetExceeded, e.Cause}
	}
	return []error{ErrBudgetExceeded}
}

// checkStride is how many Check calls may pass between wall-clock /
// context polls. Builders call Check at least once per node or table
// cell, so a tripped deadline is noticed within 8 units of per-node work
// per worker. The stride is deliberately small: a time.Now/ctx.Err pair
// costs ~100ns while a node's worth of build work costs microseconds to
// milliseconds, and the robustness suite asserts cancellation within 2x
// the deadline even under the race detector's ~10x slowdown.
const checkStride = 8

// Governor meters one build against a Budget. It is safe for concurrent
// use: a parallel build's workers share one governor, so the budget is
// charged exactly across all of them (atomic counters, no lost or
// double-counted charges). All methods are nil-receiver safe and then do
// nothing, so ungoverned entry points pass nil straight through.
//
// Once any limit trips the error is sticky: every later Check/charge call
// — from any goroutine — returns the same *BudgetError, so a fanned-out
// build unwinds all of its workers promptly even if intermediate frames
// ignore one error.
type Governor struct {
	ctx      context.Context
	budget   Budget
	start    time.Time
	deadline time.Time // zero when unbounded
	ctxOwned bool      // deadline was adopted from ctx, not the budget

	nodes       atomic.Int64
	heapBytes   atomic.Int64
	memoEntries atomic.Int64
	ticks       atomic.Uint64
	err         atomic.Pointer[BudgetError]
}

// Start begins metering a build. A nil budget yields a governor that only
// watches ctx (cancellation still aborts the build); a nil result is
// never returned, so builders need no nil checks beyond what the methods
// already do.
func Start(ctx context.Context, b *Budget) *Governor {
	g := &Governor{ctx: ctx, start: time.Now()}
	if b != nil {
		g.budget = *b
		if b.Timeout > 0 {
			g.deadline = g.start.Add(b.Timeout)
		}
	}
	if d, ok := ctx.Deadline(); ok && (g.deadline.IsZero() || d.Before(g.deadline)) {
		g.deadline = d
		g.ctxOwned = true
	}
	return g
}

// Check polls cancellation and the wall-clock deadline (amortized: the
// expensive time/context reads run every checkStride calls per governor,
// and always on the first). Builders call it at the top of every build
// loop iteration.
func (g *Governor) Check() error {
	if g == nil {
		return nil
	}
	if e := g.err.Load(); e != nil {
		return e
	}
	if t := g.ticks.Add(1); (t-1)%checkStride == 0 {
		if err := g.ctx.Err(); err != nil {
			return g.trip("canceled", err)
		}
		if !g.deadline.IsZero() && time.Now().After(g.deadline) {
			// When the deadline was the context's, carry its error so
			// errors.Is(err, context.DeadlineExceeded) holds even if the
			// wall-clock check wins the race against ctx.Err().
			var cause error
			if g.ctxOwned {
				cause = context.DeadlineExceeded
			}
			return g.trip("deadline", cause)
		}
	}
	return nil
}

// Nodes charges n tree nodes (or table rows) plus their estimated bytes,
// and polls like Check.
func (g *Governor) Nodes(n int, estBytes int64) error {
	if g == nil {
		return nil
	}
	if err := g.Check(); err != nil {
		return err
	}
	nodes := g.nodes.Add(int64(n))
	heap := g.heapBytes.Add(estBytes)
	if g.budget.MaxNodes > 0 && nodes > int64(g.budget.MaxNodes) {
		return g.trip("nodes", nil)
	}
	return g.checkBytes(heap)
}

// Memo charges n memoization entries plus their estimated key bytes.
func (g *Governor) Memo(n int, estBytes int64) error {
	if g == nil {
		return nil
	}
	if err := g.Check(); err != nil {
		return err
	}
	memo := g.memoEntries.Add(int64(n))
	heap := g.heapBytes.Add(estBytes)
	if g.budget.MaxMemoEntries > 0 && memo > int64(g.budget.MaxMemoEntries) {
		return g.trip("memo-entries", nil)
	}
	return g.checkBytes(heap)
}

// Bytes charges estimated heap bytes (e.g. a cross-product table about to
// be allocated). Charging *before* the allocation lets a builder refuse
// an absurd table without ever holding it.
func (g *Governor) Bytes(n int64) error {
	if g == nil {
		return nil
	}
	if err := g.Check(); err != nil {
		return err
	}
	return g.checkBytes(g.heapBytes.Add(n))
}

func (g *Governor) checkBytes(heap int64) error {
	if g.budget.MaxHeapBytes > 0 && heap > g.budget.MaxHeapBytes {
		return g.trip("heap-bytes", nil)
	}
	return nil
}

// Err returns the sticky budget error, or nil while the build is within
// budget.
func (g *Governor) Err() error {
	if g == nil {
		return nil
	}
	if e := g.err.Load(); e != nil {
		return e
	}
	return nil
}

// Stats snapshots consumption so far. Under concurrency the three
// counters are read independently (each is exact; the triple is not a
// single atomic snapshot, which only matters to sub-microsecond races in
// log output).
func (g *Governor) Stats() Stats {
	if g == nil {
		return Stats{}
	}
	return Stats{
		Nodes:       int(g.nodes.Load()),
		HeapBytes:   g.heapBytes.Load(),
		MemoEntries: int(g.memoEntries.Load()),
		Elapsed:     time.Since(g.start),
	}
}

// trip installs the sticky error. Concurrent trips race benignly: the
// first CompareAndSwap wins and every caller — including the losers —
// returns the single winning *BudgetError, preserving the "same sticky
// error from every method" contract across goroutines.
func (g *Governor) trip(limit string, cause error) error {
	e := &BudgetError{Limit: limit, Stats: g.Stats(), Cause: cause}
	if g.err.CompareAndSwap(nil, e) {
		// Only the winning trip records, so one aborted build is one event
		// no matter how many workers observed the sticky error.
		g.budget.Events.Recordf(obs.EventBudgetTrip, "build aborted: %s limit after %s", limit, e.Stats)
	}
	return g.err.Load()
}
