// Package ruletable serializes classification rules into the 6-word SRAM
// records the paper's linear search reads: "each memory access refers to 6
// consecutive 32-bit words" (§6.6). A rule record packs:
//
//	word 0: source address (prefix base)
//	word 1: destination address (prefix base)
//	word 2: srcLen(6) ‖ dstLen(6) ‖ protoWildcard(1) ‖ proto(8) ‖ action(8) ‖ pad(3)
//	word 3: srcPortLo(16) ‖ srcPortHi(16)
//	word 4: dstPortLo(16) ‖ dstPortHi(16)
//	word 5: rule index (self-identifying for debugging and multi-match use)
//
// Both the linear-search baseline and HiCuts leaves read these records, so
// their simulated memory traffic matches the paper's accounting.
package ruletable

import (
	"fmt"

	"repro/internal/rules"
)

// WordsPerRule is the SRAM footprint of one rule record.
const WordsPerRule = 6

// Encode serializes the rule set into consecutive 6-word records in
// priority order.
func Encode(rs *rules.RuleSet) []uint32 {
	out := make([]uint32, 0, len(rs.Rules)*WordsPerRule)
	for i := range rs.Rules {
		out = append(out, EncodeRule(&rs.Rules[i], i)...)
	}
	return out
}

// EncodeRule serializes one rule record.
func EncodeRule(r *rules.Rule, idx int) []uint32 {
	var wild uint32
	if r.Proto.Wildcard {
		wild = 1
	}
	w2 := uint32(r.SrcIP.Len)<<26 |
		uint32(r.DstIP.Len)<<20 |
		wild<<19 |
		uint32(r.Proto.Value)<<11 |
		uint32(r.Action)<<3
	return []uint32{
		r.SrcIP.Span().Lo,
		r.DstIP.Span().Lo,
		w2,
		uint32(r.SrcPort.Lo)<<16 | uint32(r.SrcPort.Hi),
		uint32(r.DstPort.Lo)<<16 | uint32(r.DstPort.Hi),
		uint32(idx),
	}
}

// Decode reconstructs the rule and its index from a 6-word record.
func Decode(w []uint32) (rules.Rule, int, error) {
	if len(w) < WordsPerRule {
		return rules.Rule{}, 0, fmt.Errorf("ruletable: record has %d words, want %d", len(w), WordsPerRule)
	}
	r := rules.Rule{
		SrcIP:   rules.Prefix{Addr: w[0], Len: uint8(w[2] >> 26 & 0x3F)},
		DstIP:   rules.Prefix{Addr: w[1], Len: uint8(w[2] >> 20 & 0x3F)},
		SrcPort: rules.PortRange{Lo: uint16(w[3] >> 16), Hi: uint16(w[3])},
		DstPort: rules.PortRange{Lo: uint16(w[4] >> 16), Hi: uint16(w[4])},
		Proto: rules.ProtoMatch{
			Wildcard: w[2]>>19&1 == 1,
			Value:    uint8(w[2] >> 11),
		},
		Action: rules.Action(w[2] >> 3 & 0xFF),
	}
	if r.Proto.Wildcard {
		r.Proto.Value = 0
	}
	return r, int(w[5]), nil
}

// MatchRecord tests the header against a 6-word record without
// materializing a Rule — the word-level comparison a microengine performs.
// The cycle cost of this comparison is CompareCycles.
func MatchRecord(w []uint32, h rules.Header) bool {
	srcLen := uint(w[2] >> 26 & 0x3F)
	dstLen := uint(w[2] >> 20 & 0x3F)
	// Widen to 64 bits so both boundary lengths shift cleanly: len 0 is a
	// full >>32 (wildcard), len 32 is >>0 (exact match).
	if uint64(h.SrcIP^w[0])>>(32-srcLen) != 0 {
		return false
	}
	if uint64(h.DstIP^w[1])>>(32-dstLen) != 0 {
		return false
	}
	if h.SrcPort < uint16(w[3]>>16) || h.SrcPort > uint16(w[3]) {
		return false
	}
	if h.DstPort < uint16(w[4]>>16) || h.DstPort > uint16(w[4]) {
		return false
	}
	if w[2]>>19&1 == 0 && uint8(w[2]>>11) != h.Proto {
		return false
	}
	return true
}

// CompareCycles is the ME cycle cost of one record comparison: roughly two
// ALU ops per field plus branches, matching the paper's observation that
// linear search cost is dominated by the memory reads, not the compare.
const CompareCycles = 12
