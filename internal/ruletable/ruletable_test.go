package ruletable

import (
	"math/rand"
	"testing"

	"repro/internal/pktgen"
	"repro/internal/rulegen"
	"repro/internal/rules"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 300; i++ {
		r := rulegen.RandomRule(rng)
		// Normalize: host bits below the prefix are not encoded.
		r.SrcIP.Addr = r.SrcIP.Span().Lo
		r.DstIP.Addr = r.DstIP.Span().Lo
		words := EncodeRule(&r, i)
		if len(words) != WordsPerRule {
			t.Fatalf("EncodeRule produced %d words", len(words))
		}
		back, idx, err := Decode(words)
		if err != nil {
			t.Fatal(err)
		}
		if idx != i {
			t.Fatalf("index = %d, want %d", idx, i)
		}
		if back != r {
			t.Fatalf("round trip mismatch:\n in: %+v\nout: %+v", r, back)
		}
	}
}

func TestDecodeShortRecord(t *testing.T) {
	if _, _, err := Decode(make([]uint32, 5)); err == nil {
		t.Fatal("short record should fail")
	}
}

func TestMatchRecordAgreesWithRuleMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 2000; i++ {
		r := rulegen.RandomRule(rng)
		words := EncodeRule(&r, 0)
		var h rules.Header
		if i%2 == 0 {
			h = pktgen.SampleRule(rng, &r) // in-box headers
		} else {
			h = pktgen.RandomHeader(rng) // mostly out-of-box headers
		}
		if got, want := MatchRecord(words, h), r.Matches(h); got != want {
			t.Fatalf("MatchRecord = %v, Rule.Matches = %v\nrule: %v\nheader: %v",
				got, want, &r, h)
		}
	}
}

func TestMatchRecordWildcardPrefixes(t *testing.T) {
	// Prefix length 0 exercises the two-step shift (a single >>32 would be
	// undefined-width behaviour on 32-bit hardware and a subtle Go trap).
	r := rules.Rule{SrcPort: rules.FullPortRange, DstPort: rules.FullPortRange, Proto: rules.AnyProto}
	words := EncodeRule(&r, 0)
	for _, h := range []rules.Header{
		{},
		{SrcIP: ^uint32(0), DstIP: ^uint32(0), SrcPort: 65535, DstPort: 65535, Proto: 255},
	} {
		if !MatchRecord(words, h) {
			t.Errorf("wildcard rule must match %v", h)
		}
	}
}

func TestEncodeSetLayout(t *testing.T) {
	rs, err := rulegen.Generate(rulegen.Config{Kind: rulegen.Firewall, Size: 40, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	words := Encode(rs)
	if len(words) != 40*WordsPerRule {
		t.Fatalf("encoded %d words", len(words))
	}
	// Record i must decode back to rule i.
	for i := range rs.Rules {
		rec := words[i*WordsPerRule : (i+1)*WordsPerRule]
		_, idx, err := Decode(rec)
		if err != nil {
			t.Fatal(err)
		}
		if idx != i {
			t.Fatalf("record %d self-index = %d", i, idx)
		}
	}
}
