// Multi-tenant serving: thousands of independent rule tables multiplexed
// over the same shard loops. Each packet carries a tenant ID; the
// dispatcher bins packets by (tenant, flow) so every dispatched batch is
// single-tenant by construction, and each shard keeps one classification
// lane per tenant — the tenant's classifier, its own flow-cache
// partition with its own epoch, and its own generation bracket, so a
// batch never straddles one tenant's hot-swap and one tenant's
// invalidation never stales another's cache. The NP analogue is SRAM
// banking: one physical memory, per-tenant banks, no cross-bank
// interference.
//
// Isolation is the contract, not an optimization: a hostile tenant may
// drive its own lane to the bottom of its degradation ladder, flood its
// own queue slots and churn its own generations, but the only resources
// it shares with other tenants are the shard CPUs (arbitrated by the
// queue) and the global build-admission budget (arbitrated fair-share by
// the tenant registry) — both of which degrade it first.
package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/flowcache"
	"repro/internal/obs"
	"repro/internal/rules"
)

// DefaultTenantPartitions is Config.TenantPartitions when unset: how many
// tenants per shard keep a resident flow-cache partition before the
// least recently served one is reclaimed.
const DefaultTenantPartitions = 64

// TenantPacket is one packet of the multi-tenant input stream: the
// header plus the tenant whose rule table must classify it (from the
// wire representation, see tenant.ParseID).
type TenantPacket struct {
	Tenant uint32
	Header rules.Header
}

// TenantResult is a Result plus its tenant attribution and the shard
// that served it.
type TenantResult struct {
	Result
	Tenant uint32
	Shard  int
}

// TenantLane is what the engine needs from one tenant's serving state:
// classification against the tenant's live rule table and the tenant's
// overload policy. Implementations that also implement BatchClassifier
// get the batched fast path, and those implementing Generation() (the
// update.Manager contract) get per-batch generation bracketing — both
// detected dynamically, exactly like RunContext detects them on a bare
// classifier. internal/tenant.Runtime is the canonical implementation.
type TenantLane interface {
	Classifier
	// ShedOnOverload reports the tenant's overload policy: true to shed
	// (ErrShed results when the tenant's shard queue is full), false to
	// block the dispatcher until the queue drains.
	ShedOnOverload() bool
}

// TenantResolver maps tenant IDs to lanes. Lane must be safe for
// concurrent use from every shard and the dispatcher, cheap enough for
// per-batch calls (the registry implementation is one atomic load and a
// map read, 0 allocs), and must return nil — not a typed-nil interface —
// for unknown tenants.
type TenantResolver interface {
	Lane(id uint32) TenantLane
}

// ErrUnknownTenant marks results for packets whose tenant the resolver
// does not know. It wraps ErrShed: an unknown tenant is an admission
// refusal, accounted as shed, never as a failure of a serving tenant.
var ErrUnknownTenant = fmt.Errorf("engine: unknown tenant: %w", ErrShed)

// TenantCounts is one tenant's packet accounting on one shard (or in
// total). The identity Offered == Classified + Shed + Canceled +
// Panicked holds exactly, per shard and per tenant, on every return path.
type TenantCounts struct {
	Offered    uint64
	Classified uint64
	Shed       uint64
	Canceled   uint64
	Panicked   uint64
}

func (c *TenantCounts) add(o TenantCounts) {
	c.Offered += o.Offered
	c.Classified += o.Classified
	c.Shed += o.Shed
	c.Canceled += o.Canceled
	c.Panicked += o.Panicked
}

// TenantBreakdown is one tenant's accounting: totals plus the per-shard
// split they are summed from.
type TenantBreakdown struct {
	Total  TenantCounts
	Shards []TenantCounts
}

// TenantStats extends the aggregate run Stats with per-tenant accounting.
// Stats.Algorithm stays empty: there is no single algorithm when every
// tenant rides its own ladder rung (ask the tenant registry instead).
type TenantStats struct {
	Stats
	Tenants map[uint32]*TenantBreakdown
}

// tenantShardOf pins (tenant, flow) to a shard: same flow hash as the
// single-table path, with the tenant ID folded in so two tenants'
// identical 5-tuples spread independently.
func tenantShardOf(tid uint32, h rules.Header, shards int) int {
	x := uint64(flowHash(h) ^ (tid * 0x9E3779B1))
	return int(x * uint64(shards) >> 32)
}

// tenantLaneState is one (shard, tenant) lane plus the TenantLane it was
// built from, so a registry rebind (Remove + Add, or a swapped runtime)
// is detected as a pointer change and the lane rebuilt from scratch.
type tenantLaneState struct {
	lane
	src TenantLane
}

// tenantShard is one serving loop of the multi-tenant path. Like shard,
// everything here is single-goroutine: the dispatcher touches only the
// job ring and pools, the serve goroutine owns the lane map and the
// flow-cache partitions.
type tenantShard struct {
	jobs    chan *shardJob
	jobPool sync.Pool
	resPool sync.Pool

	si       int
	resolver TenantResolver
	lanes    map[uint32]*tenantLaneState
	parts    *flowcache.Partitioned // nil when FlowCacheFlows == 0
	batch    int
	// Pipelined stage walk for lanes whose classifier supports it
	// (Config.PipelineGroup / Config.PipelineAffine).
	pipeGroup  int
	pipeAffine bool

	busy time.Duration

	m      *shardMetrics
	events *obs.Ring
}

// laneFor resolves the tenant's lane, (re)building it on first sight or
// rebind and re-resolving the flow-cache partition every call (the
// partition may have been reclaimed for another tenant since the last
// batch; Partition also stamps recency, which is what drives partition
// eviction by actual traffic). Returns nil for unknown tenants. The
// steady state — known tenant, resident partition — is two map reads.
func (s *tenantShard) laneFor(tid uint32) *lane {
	tl := s.resolver.Lane(tid)
	if tl == nil {
		// Tenant gone (or never existed): drop whatever lane state it had
		// so a later re-add starts clean.
		if _, ok := s.lanes[tid]; ok {
			delete(s.lanes, tid)
			if s.parts != nil {
				s.parts.Drop(tid)
			}
		}
		return nil
	}
	ls, ok := s.lanes[tid]
	if !ok || ls.src != tl {
		if ok && s.parts != nil {
			// Rebind: the cached partition fronts the old lane's slow path.
			s.parts.Drop(tid)
		}
		if !ok {
			ls = &tenantLaneState{}
			s.lanes[tid] = ls
		}
		ls.src = tl
		ls.cl = tl
		ls.bc, _ = tl.(BatchClassifier)
		if s.pipeGroup > 0 {
			if pc, ok := tl.(PipelinedClassifier); ok {
				// The tenant's batches (and, below, its flow-cache
				// partition's miss sub-batches) take the staged walk.
				ls.bc = pipelined{pc: pc, group: s.pipeGroup, affine: s.pipeAffine}
			}
		}
		ls.gen, _ = tl.(generationProvider)
		ls.cache = nil
		ls.lastGen = 0
	}
	if s.parts != nil {
		slow := Classifier(tl)
		if ls.bc != nil {
			slow = ls.bc
		}
		c, err := s.parts.Partition(tid, slow)
		if err != nil {
			// Unreachable: bounds are validated at construction. Serve
			// cache-free rather than fail the batch.
			c = nil
		}
		if c != ls.cache {
			// Fresh partition (first use, or re-admitted after eviction):
			// it is empty, so bracket from the current generation.
			ls.cache = c
			if ls.gen != nil {
				ls.lastGen = ls.gen.Generation()
			}
		}
	}
	return &ls.lane
}

// serve is the tenant shard loop: resolve the batch's lane, classify
// under the tenant's own generation bracket, deliver one single-tenant
// resultBatch per job.
func (s *tenantShard) serve(ctx context.Context, results chan<- *resultBatch, panics *atomic.Int64) {
	matches := make([]int, s.batch)
	for j := range s.jobs {
		queued := len(s.jobs)
		out := s.resPool.Get().(*resultBatch)
		out.home = &s.resPool
		out.rs = out.rs[:len(j.hs)]
		out.tenant = j.tenant
		out.si = s.si
		if err := ctx.Err(); err != nil {
			for i, h := range j.hs {
				out.rs[i] = Result{Seq: j.seqs[i], Header: h, Match: -1, Err: err}
			}
			s.m.addCanceled(uint64(len(j.hs)))
		} else if l := s.laneFor(j.tenant); l == nil {
			for i, h := range j.hs {
				out.rs[i] = Result{Seq: j.seqs[i], Header: h, Match: -1, Err: ErrUnknownTenant}
			}
			s.m.addShed(uint64(len(j.hs)))
		} else {
			start := time.Now()
			p := l.classifyJob(j, out.rs, matches, s.m, s.events)
			busy := time.Since(start)
			panics.Add(p)
			s.busy += busy
			if s.m != nil {
				s.m.recordBatch(len(j.hs), busy, queued)
				s.m.addPanics(uint64(p))
			}
		}
		j.seqs, j.hs = j.seqs[:0], j.hs[:0]
		s.jobPool.Put(j)
		results <- out
	}
}

// RunTenants serves a multi-tenant packet stream through cfg.Shards
// tenant-aware shard loops and returns per-tenant accounting alongside
// the usual aggregate Stats. Contracts mirror RunContext's sharded path —
// ordered emission under PreserveOrder, batch-granular shed/cancel,
// per-packet panic attribution — with tenancy layered on:
//
//   - every batch is single-tenant, so per-batch generation bracketing is
//     per-tenant bracketing;
//   - the overload policy is the tenant's own (TenantLane.ShedOnOverload),
//     falling back to cfg.Overload for unknown tenants. A blocking tenant
//     stalls the dispatcher when its shard queue fills — head-of-line
//     blocking that can delay other tenants' dispatch; shed is the
//     isolating policy and what hostile-tenant configurations should use;
//   - packets of unknown tenants are refused with ErrUnknownTenant
//     (accounted as shed, never silently dropped);
//   - cfg.FlowCacheFlows sizes each tenant's per-shard cache partition
//     and cfg.TenantPartitions bounds resident partitions per shard.
//
// emit may be nil. The returned TenantStats satisfies, for every tenant
// and every shard, Offered == Classified + Shed + Canceled + Panicked.
func RunTenants(ctx context.Context, resolver TenantResolver, cfg Config, pkts []TenantPacket, emit func(TenantResult)) (TenantStats, error) {
	ts := TenantStats{Tenants: make(map[uint32]*TenantBreakdown)}
	if resolver == nil {
		return ts, fmt.Errorf("engine: nil tenant resolver")
	}
	if err := cfg.fillDefaults(); err != nil {
		return ts, err
	}
	nShards := cfg.Shards
	ts.Stats.Shards = nShards
	bdOf := func(m map[uint32]*TenantBreakdown, tid uint32) *TenantBreakdown {
		bd := m[tid]
		if bd == nil {
			bd = &TenantBreakdown{Shards: make([]TenantCounts, nShards)}
			m[tid] = bd
		}
		return bd
	}

	results := make(chan *resultBatch, cfg.QueueDepth)
	shards := make([]*tenantShard, nShards)
	for i := range shards {
		s := &tenantShard{
			jobs:       make(chan *shardJob, cfg.QueueDepth),
			si:         i,
			resolver:   resolver,
			lanes:      make(map[uint32]*tenantLaneState),
			batch:      cfg.BatchSize,
			pipeGroup:  cfg.PipelineGroup,
			pipeAffine: cfg.PipelineAffine,
		}
		s.jobPool.New = func() any {
			return &shardJob{
				seqs: make([]uint64, 0, cfg.BatchSize),
				hs:   make([]rules.Header, 0, cfg.BatchSize),
			}
		}
		s.resPool.New = func() any {
			return &resultBatch{rs: make([]Result, 0, cfg.BatchSize)}
		}
		if cfg.FlowCacheFlows > 0 {
			p, err := flowcache.NewPartitioned(cfg.FlowCacheFlows, cfg.TenantPartitions)
			if err != nil {
				return ts, fmt.Errorf("engine: shard %d tenant partitions: %w", i, err)
			}
			events := cfg.Metrics.eventsRing()
			p.OnEvict = func(victim uint32) {
				delete(s.lanes, victim)
				events.Recordf(obs.EventTenantEvicted,
					"tenant %d flow-cache partition reclaimed on shard %d", victim, s.si)
			}
			s.parts = p
		}
		if cfg.Metrics != nil {
			s.m = cfg.Metrics.shard(i)
			s.events = cfg.Metrics.events
		}
		shards[i] = s
	}
	var wg sync.WaitGroup
	var panics atomic.Int64
	for _, s := range shards {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.serve(ctx, results, &panics)
		}()
	}

	// shedTenantJob mirrors runSharded's shedJob: the whole pending batch
	// becomes error results through the results channel, keeping the
	// sequence space gap-free for the sequencer.
	shedTenantJob := func(s *tenantShard, j *shardJob, err error) {
		out := s.resPool.Get().(*resultBatch)
		out.home = &s.resPool
		out.rs = out.rs[:len(j.hs)]
		out.tenant = j.tenant
		out.si = s.si
		for k, h := range j.hs {
			out.rs[k] = Result{Seq: j.seqs[k], Header: h, Match: -1, Err: err}
		}
		if errors.Is(err, ErrShed) {
			s.m.addShed(uint64(len(j.hs)))
		} else {
			s.m.addCanceled(uint64(len(j.hs)))
		}
		j.seqs, j.hs = j.seqs[:0], j.hs[:0]
		s.jobPool.Put(j)
		results <- out
	}

	// The dispatcher keeps its own per-(tenant, shard) Offered tally,
	// independent of the emitter's outcome tally — the accounting identity
	// is cross-checked between two bookkeepers that share no state. The
	// map travels over a channel once dispatch ends (which happens-before
	// results closes).
	offeredCh := make(chan map[uint32]*TenantBreakdown, 1)
	var undispatched atomic.Int64
	go func() {
		offered := make(map[uint32]*TenantBreakdown)
		defer func() {
			offeredCh <- offered
			for _, s := range shards {
				close(s.jobs)
			}
		}()
		// pending is keyed by (tenant, shard): batches are single-tenant,
		// so two tenants interleaved on one shard fill separate batches.
		pending := make(map[uint64]*shardJob)
		flush := func(key uint64, j *shardJob) {
			delete(pending, key)
			s := shards[uint32(key)]
			shed := cfg.Overload == OverloadShed
			if tl := resolver.Lane(j.tenant); tl != nil {
				shed = tl.ShedOnOverload()
			}
			if shed {
				select {
				case s.jobs <- j:
				default:
					shedTenantJob(s, j, ErrShed)
				}
			} else {
				s.jobs <- j
			}
		}
		n := len(pkts)
		for i := 0; i < n; i++ {
			if i%cfg.BatchSize == 0 {
				if err := ctx.Err(); err != nil {
					// Count the contiguous undispatched tail per tenant
					// (Offered and Canceled both — they were offered to this
					// run and went nowhere), then fail the cut-off pending
					// batches through the results channel.
					undispatched.Store(int64(n - i))
					cfg.Metrics.recordUndispatched(uint64(n - i))
					for k := i; k < n; k++ {
						tid := pkts[k].Tenant
						si := 0
						if nShards > 1 {
							si = tenantShardOf(tid, pkts[k].Header, nShards)
						}
						sc := &bdOf(offered, tid).Shards[si]
						sc.Offered++
						sc.Canceled++
					}
					for key, j := range pending {
						shedTenantJob(shards[uint32(key)], j, err)
						delete(pending, key)
					}
					return
				}
			}
			tid := pkts[i].Tenant
			si := 0
			if nShards > 1 {
				si = tenantShardOf(tid, pkts[i].Header, nShards)
			}
			bdOf(offered, tid).Shards[si].Offered++
			key := uint64(tid)<<32 | uint64(uint32(si))
			j := pending[key]
			if j == nil {
				j = shards[si].jobPool.Get().(*shardJob)
				j.tenant = tid
				pending[key] = j
			}
			j.seqs = append(j.seqs, uint64(i))
			j.hs = append(j.hs, pkts[i].Header)
			if len(j.hs) == cfg.BatchSize {
				flush(key, j)
			}
		}
		for key, j := range pending {
			flush(key, j)
		}
	}()
	go func() {
		wg.Wait()
		close(results)
	}()

	em := &emitter{st: &ts.Stats, emit: func(Result) {}}
	if emit != nil {
		em.emit = func(r Result) {
			tid := pkts[r.Seq].Tenant
			si := 0
			if nShards > 1 {
				si = tenantShardOf(tid, pkts[r.Seq].Header, nShards)
			}
			emit(TenantResult{Result: r, Tenant: tid, Shard: si})
		}
	}
	emitOne := em.one
	reorderHeld := cfg.Metrics.reorderHeldHist()

	// Outcomes are tallied per batch at receipt — they are final before
	// the reorder ring touches them, and every batch is single-tenant
	// from a known shard, so attribution is two field reads, not a
	// per-result map lookup.
	tally := func(out *resultBatch) {
		sc := &bdOf(ts.Tenants, out.tenant).Shards[out.si]
		for i := range out.rs {
			switch err := out.rs[i].Err; {
			case err == nil:
				sc.Classified++
			case errors.Is(err, ErrShed):
				sc.Shed++
			case isPanicErr(err):
				sc.Panicked++
			default:
				sc.Canceled++
			}
		}
	}

	if cfg.PreserveOrder {
		ring := newReorderRing(cfg.BatchSize)
		for out := range results {
			tally(out)
			for _, r := range out.rs {
				ring.insert(r)
				if ring.held > ts.MaxReorder {
					ts.MaxReorder = ring.held
				}
				ring.drain(emitOne)
			}
			reorderHeld.Observe(uint64(ring.held))
			out.rs = out.rs[:0]
			out.home.Put(out)
		}
		if ring.held != 0 {
			return ts, fmt.Errorf("engine: %d results stranded in the reorder buffer", ring.held)
		}
	} else {
		for out := range results {
			tally(out)
			for _, r := range out.rs {
				emitOne(r)
			}
			out.rs = out.rs[:0]
			out.home.Put(out)
		}
	}

	// Fold the dispatcher's independent Offered/undispatched ledger in and
	// derive totals.
	for tid, bd := range <-offeredCh {
		dst := bdOf(ts.Tenants, tid)
		for si := range bd.Shards {
			dst.Shards[si].Offered += bd.Shards[si].Offered
			dst.Shards[si].Canceled += bd.Shards[si].Canceled
		}
	}
	for _, bd := range ts.Tenants {
		for si := range bd.Shards {
			bd.Total.add(bd.Shards[si])
		}
	}

	ts.Stats.Panics = int(panics.Load())
	ts.Stats.Canceled += int(undispatched.Load())
	ts.Stats.ShardBusy = make([]time.Duration, nShards)
	for i, s := range shards {
		ts.Stats.ShardBusy[i] = s.busy
	}

	switch {
	case em.err != nil:
		return ts, em.err
	case ctx.Err() != nil:
		return ts, fmt.Errorf("engine: run cut short, %d of %d packets canceled: %w",
			ts.Stats.Canceled, len(pkts), ctx.Err())
	case ts.Stats.Panics > 0:
		return ts, fmt.Errorf("engine: %d of %d packets failed with contained classifier panics",
			ts.Stats.Panics, len(pkts))
	}
	return ts, nil
}
