// Accounting-identity property test: on every serving path, under every
// overload policy and failure mode, each packet offered to the engine is
// accounted exactly once —
//
//	matched + no-match + shed + canceled + panicked == offered
//
// with the matched/no-match split read from the emitted results and the
// rest cross-checked against Stats. Packet counts are deliberately not
// multiples of BatchSize, so the final short batch and the pending-batch
// flush paths are always exercised.
package engine

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/faultinject"
)

// tally classifies one run's emissions into the identity's buckets.
type tally struct {
	matched, noMatch, shed, canceled, panicked int
}

func (a *tally) add(r Result) error {
	var pe *PanicError
	switch {
	case r.Err == nil && r.Match >= 0:
		a.matched++
	case r.Err == nil:
		a.noMatch++
	case errors.Is(r.Err, ErrShed):
		a.shed++
	case errors.As(r.Err, &pe):
		a.panicked++
	default:
		a.canceled++
	}
	if r.Err != nil && r.Match != -1 {
		return fmt.Errorf("seq %d: failed result carries match %d", r.Seq, r.Match)
	}
	return nil
}

// check asserts the identity and the Stats cross-checks for one run.
// Stats.Canceled may exceed the emitted canceled count by the
// undispatched tail (counted, never emitted); everything else must agree
// with the emissions exactly.
func (a *tally) check(t *testing.T, st Stats, offered int) {
	t.Helper()
	if st.Packets != a.matched+a.noMatch {
		t.Errorf("Stats.Packets = %d, emitted %d matched + %d no-match",
			st.Packets, a.matched, a.noMatch)
	}
	if st.Shed != a.shed {
		t.Errorf("Stats.Shed = %d, emitted %d", st.Shed, a.shed)
	}
	if st.Panics != a.panicked {
		t.Errorf("Stats.Panics = %d, emitted %d", st.Panics, a.panicked)
	}
	if st.Canceled < a.canceled {
		t.Errorf("Stats.Canceled = %d < %d emitted canceled", st.Canceled, a.canceled)
	}
	if got := st.Packets + st.Shed + st.Panics + st.Canceled; got != offered {
		t.Errorf("identity: %d matched+no-match + %d shed + %d panicked + %d canceled = %d, want %d offered",
			st.Packets, st.Shed, st.Panics, st.Canceled, got, offered)
	}
}

func TestAccountingIdentityProperty(t *testing.T) {
	_, tree, headers := fixtures(t, 4097)
	shardCounts := []int{1, 3, 8}
	policies := []OverloadPolicy{OverloadBlock, OverloadShed}

	// Clean and panicky runs: every shard count × overload policy ×
	// batch-unaligned packet count, ordered and unordered.
	for _, n := range []int{257, 1037, 4097} {
		hs := headers[:n]
		for _, shards := range shardCounts {
			for _, policy := range policies {
				for _, ordered := range []bool{true, false} {
					cfg := Config{Shards: shards, BatchSize: 16, Overload: policy,
						PreserveOrder: ordered, Metrics: NewMetrics(8)}
					t.Run(fmt.Sprintf("clean/n=%d/shards=%d/%v/ordered=%v", n, shards, policy, ordered), func(t *testing.T) {
						var a tally
						st, err := Run(tree, cfg, hs, func(r Result) {
							if e := a.add(r); e != nil {
								t.Error(e)
							}
						})
						if err != nil {
							t.Fatal(err)
						}
						a.check(t, st, n)
						if a.matched == 0 {
							t.Error("trace with 0.9 match fraction matched nothing")
						}
					})
				}
				t.Run(fmt.Sprintf("panicky/n=%d/shards=%d/%v", n, shards, policy), func(t *testing.T) {
					cl := &faultinject.PanickyClassifier{Inner: tree, EveryN: 61}
					var a tally
					st, err := Run(cl, Config{Shards: shards, BatchSize: 16, Overload: policy, PreserveOrder: true},
						hs, func(r Result) {
							if e := a.add(r); e != nil {
								t.Error(e)
							}
						})
					if err == nil {
						t.Fatal("contained panics must surface as a run error")
					}
					a.check(t, st, n)
					if a.panicked == 0 {
						t.Error("panic injection every 61 packets produced no panicked results")
					}
				})
			}
		}
	}

	// Shed runs: one-deep rings and a dawdling classifier force tail
	// drops on every shard count.
	for _, shards := range shardCounts {
		t.Run(fmt.Sprintf("shed/shards=%d", shards), func(t *testing.T) {
			slow := &faultinject.SlowClassifier{Inner: tree, EveryN: 1, Delay: 20 * time.Microsecond}
			var a tally
			st, err := Run(slow, Config{Shards: shards, QueueDepth: 1, BatchSize: 16, Overload: OverloadShed},
				headers[:1037], func(r Result) {
					if e := a.add(r); e != nil {
						t.Error(e)
					}
				})
			if err != nil {
				t.Fatal(err)
			}
			a.check(t, st, 1037)
		})
	}

	// Deadline runs: a deadline far shorter than the classification work
	// cancels packets mid-run; the identity must still hold exactly.
	for _, shards := range shardCounts {
		t.Run(fmt.Sprintf("deadline/shards=%d", shards), func(t *testing.T) {
			slow := &faultinject.SlowClassifier{Inner: tree, EveryN: 1, Delay: 50 * time.Microsecond}
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
			defer cancel()
			var a tally
			st, err := RunContext(ctx, slow, Config{Shards: shards, BatchSize: 16, PreserveOrder: true},
				headers[:4097], func(r Result) {
					if e := a.add(r); e != nil {
						t.Error(e)
					}
				})
			if err == nil {
				t.Fatal("expected a cancellation error")
			}
			a.check(t, st, 4097)
			if st.Canceled == 0 {
				t.Error("a 10ms deadline against ~200ms of work canceled nothing")
			}
		})
	}
}
