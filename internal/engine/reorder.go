package engine

// reorderRing is the sliding reorder buffer of the ordered emit stage. A
// result with sequence number s lives at slots[s & (len(slots)-1)]: because
// the engine drains in strict sequence order, the live window of sequence
// numbers is always [next, next+len(slots)), so the masked index is
// collision-free as long as the window fits. The ring doubles (re-indexing
// its occupants) when a result arrives beyond the current window — which
// only happens when OverloadShed lets the dispatcher run far ahead of a
// slow worker — and never shrinks, so the steady state allocates nothing.
//
// This replaces the map[uint64]Result the engine used before batching:
// same semantics, but insertion and the in-order drain are single array
// reads/writes instead of hash operations.
type reorderRing struct {
	slots   []Result
	present []bool
	next    uint64 // lowest sequence number not yet emitted
	held    int    // occupied slots
}

// newReorderRing sizes the ring for at least two batches so the common
// two-workers-out-of-order case never grows it.
func newReorderRing(batchSize int) *reorderRing {
	capacity := 1
	for capacity < 2*batchSize {
		capacity <<= 1
	}
	return &reorderRing{
		slots:   make([]Result, capacity),
		present: make([]bool, capacity),
	}
}

// insert files r under its sequence number, growing the ring if r is
// beyond the current window.
func (g *reorderRing) insert(r Result) {
	for r.Seq-g.next >= uint64(len(g.slots)) {
		g.grow()
	}
	g.slots[r.Seq&uint64(len(g.slots)-1)] = r
	g.present[r.Seq&uint64(len(g.slots)-1)] = true
	g.held++
}

// drain emits every result from next upward until the first gap.
func (g *reorderRing) drain(emit func(Result)) {
	mask := uint64(len(g.slots) - 1)
	for g.present[g.next&mask] {
		i := g.next & mask
		r := g.slots[i]
		g.present[i] = false
		g.slots[i] = Result{} // drop the header reference
		g.held--
		g.next++
		emit(r)
	}
}

// grow doubles the ring, re-indexing occupants (their slot is a function
// of the capacity mask).
func (g *reorderRing) grow() {
	oldSlots, oldPresent := g.slots, g.present
	g.slots = make([]Result, 2*len(oldSlots))
	g.present = make([]bool, 2*len(oldPresent))
	for i, p := range oldPresent {
		if p {
			r := oldSlots[i]
			g.slots[r.Seq&uint64(len(g.slots)-1)] = r
			g.present[r.Seq&uint64(len(g.slots)-1)] = true
		}
	}
}
