package engine

import (
	"runtime"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/rules"
)

// countingPipeliner wraps a PipelinedClassifier and records which path the
// engine drove, plus the group/affine settings it was handed.
type countingPipeliner struct {
	inner      PipelinedClassifier
	pipeCalls  atomic.Int64
	batchCalls atomic.Int64
	lastGroup  atomic.Int64
	affine     atomic.Bool
}

func (c *countingPipeliner) Classify(h rules.Header) int { return c.inner.Classify(h) }

func (c *countingPipeliner) ClassifyBatch(hs []rules.Header, out []int) {
	c.batchCalls.Add(1)
	c.inner.ClassifyBatch(hs, out)
}

func (c *countingPipeliner) ClassifyBatchPipelined(hs []rules.Header, out []int, group int, affine bool) {
	c.pipeCalls.Add(1)
	c.lastGroup.Store(int64(group))
	c.affine.Store(affine)
	c.inner.ClassifyBatchPipelined(hs, out, group, affine)
}

// TestPipelinedPathUsed proves PipelineGroup actually routes every batch —
// unsharded, sharded, and flow-cache miss sub-batches — through
// ClassifyBatchPipelined with the configured settings, with answers
// matching the oracle and zero plain-batch calls.
func TestPipelinedPathUsed(t *testing.T) {
	rs, tree, headers := fixtures(t, 4000)
	for _, cfg := range []Config{
		{Workers: 4, PreserveOrder: true, PipelineGroup: 16, PipelineAffine: true},
		{Shards: 3, PreserveOrder: true, PipelineGroup: 16, PipelineAffine: true},
		{Shards: 2, FlowCacheFlows: 256, PreserveOrder: true, PipelineGroup: 16, PipelineAffine: true},
	} {
		cp := &countingPipeliner{inner: tree}
		st, err := Run(cp, cfg, headers, func(r Result) {
			if want := rs.Match(r.Header); r.Match != want {
				t.Fatalf("packet %d: match %d, oracle %d", r.Seq, r.Match, want)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		if st.Packets != len(headers) {
			t.Errorf("packets = %d, want %d", st.Packets, len(headers))
		}
		if cp.pipeCalls.Load() == 0 {
			t.Errorf("cfg %+v: pipelined walk was never used", cfg)
		}
		if n := cp.batchCalls.Load(); n != 0 {
			t.Errorf("cfg %+v: %d plain ClassifyBatch calls leaked past the pipelined adapter", cfg, n)
		}
		if g := cp.lastGroup.Load(); g != 16 {
			t.Errorf("cfg %+v: group %d reached the classifier, want 16", cfg, g)
		}
		if !cp.affine.Load() {
			t.Errorf("cfg %+v: affine flag did not reach the classifier", cfg)
		}
	}
}

// TestPipelinedOffByDefault pins the zero-value contract: without
// PipelineGroup the adapter stays out of the way and the plain batch path
// serves.
func TestPipelinedOffByDefault(t *testing.T) {
	_, tree, headers := fixtures(t, 1000)
	cp := &countingPipeliner{inner: tree}
	if _, err := Run(cp, Config{Shards: 2, PreserveOrder: true}, headers, func(Result) {}); err != nil {
		t.Fatal(err)
	}
	if n := cp.pipeCalls.Load(); n != 0 {
		t.Errorf("pipelined walk used %d times with PipelineGroup unset", n)
	}
	if cp.batchCalls.Load() == 0 {
		t.Error("plain batch path was never used")
	}
}

// TestPipelineConfigValidation covers the knob's edges: auto resolution,
// rejected negatives, and affine-without-pipeline.
func TestPipelineConfigValidation(t *testing.T) {
	c := Config{PipelineGroup: PipelineAuto}
	if err := c.fillDefaults(); err != nil {
		t.Fatal(err)
	}
	if c.PipelineGroup <= 0 {
		t.Errorf("PipelineAuto resolved to %d, want > 0", c.PipelineGroup)
	}
	if want := AutoPipelineGroup(); c.PipelineGroup != want {
		t.Errorf("PipelineAuto resolved to %d, AutoPipelineGroup says %d", c.PipelineGroup, want)
	}

	c = Config{PipelineGroup: -2}
	if err := c.fillDefaults(); err == nil || !strings.Contains(err.Error(), "pipeline group") {
		t.Errorf("PipelineGroup -2: err = %v, want pipeline group error", err)
	}

	c = Config{PipelineAffine: true}
	if err := c.fillDefaults(); err == nil || !strings.Contains(err.Error(), "PipelineAffine") {
		t.Errorf("affine without group: err = %v, want PipelineAffine error", err)
	}
}

// TestAutoPipelineGroupBounds sanity-checks the GOMAXPROCS derivation on
// this host: positive, no larger than a default batch, and at least the
// floor.
func TestAutoPipelineGroupBounds(t *testing.T) {
	g := AutoPipelineGroup()
	if g < 8 || g > DefaultBatchSize {
		t.Errorf("AutoPipelineGroup() = %d (GOMAXPROCS %d), want within [8,%d]",
			g, runtime.GOMAXPROCS(0), DefaultBatchSize)
	}
}
