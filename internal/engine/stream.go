// Streaming ingestion: the engine's pull-based front door for real
// packet I/O. RunContext serves a trace that is fully in memory before
// serving starts; a pcap replay or a live socket cannot promise that, so
// RunStream runs the same sharded machinery — flow-affine dispatch,
// private flow caches, the cross-shard reorder sequencer, shed/cancel
// accounting and panic containment — off a Source that surrenders
// headers in pulls. The slice path is deliberately left untouched rather
// than rebuilt on top of this: its dispatch loop is on the benchmarked
// hot path, and a Source indirection there would tax every in-memory
// run to subsidize the I/O front end.
package engine

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/rules"
)

// Source is a pull stream of decoded packet headers. Next fills hs with
// up to len(hs) headers and reports how many it wrote; ok=false means
// the stream is exhausted and Next will not be called again (a final
// partial fill with ok=false is allowed). Next is called from a single
// engine goroutine, so implementations need no internal locking against
// the engine.
//
// A short fill with ok=true is a batch boundary: the engine flushes all
// partially filled shard batches before pulling again. Live sources
// (sockets) should return short on an idle interval rather than block
// until full, or tail packets sit in half-built batches and their
// latency grows unbounded; replay sources can always fill fully.
type Source interface {
	Next(hs []rules.Header) (n int, ok bool)
}

// SliceSource adapts an in-memory header slice to the Source contract.
// It always fills fully until the tail, so it never forces an early
// flush — the streaming twin of handing RunContext the slice.
type SliceSource struct {
	Headers []rules.Header

	off int
}

// Next copies the next run of headers into hs.
func (s *SliceSource) Next(hs []rules.Header) (int, bool) {
	n := copy(hs, s.Headers[s.off:])
	s.off += n
	return n, s.off < len(s.Headers)
}

// RunStream classifies every header a Source yields, emitting results
// under exactly RunContext's contracts: ordered emission when
// cfg.PreserveOrder (sequence numbers count pull order), ErrShed markers
// under OverloadShed, cancellation markers for batches cut off by ctx,
// and contained per-packet panic attribution. It returns after the
// source is exhausted (or cancellation) and every accepted packet has
// been emitted; Stats balance so that classified + shed + canceled +
// panicked equals the number of headers pulled.
//
// Unlike RunContext, a canceled run has no known undispatched tail —
// packets never pulled from the source are simply left there, and do
// not appear in Stats.
func RunStream(ctx context.Context, cl Classifier, cfg Config, src Source, emit func(Result)) (Stats, error) {
	if err := cfg.fillDefaults(); err != nil {
		return Stats{}, err
	}
	if src == nil {
		return Stats{}, fmt.Errorf("engine: nil Source")
	}
	nShards := cfg.Shards
	results := make(chan *resultBatch, cfg.QueueDepth)
	shards, err := makeShards(cl, cfg)
	if err != nil {
		return Stats{}, err
	}
	var wg sync.WaitGroup
	var panics atomic.Int64
	for _, s := range shards {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.serve(ctx, results, &panics)
		}()
	}

	// offered is the count of headers pulled from the source — the
	// streaming stand-in for len(headers) in every accounting identity.
	var offered atomic.Uint64
	go func() {
		// Dispatcher: pull a batch worth of headers at a time, bin them
		// into per-shard pending batches by flow hash, flush each batch
		// when full — and flush everything pending whenever the source
		// comes up short (see Source). Cancellation is polled at pull
		// boundaries; pending batches cut off by it are emitted as
		// canceled results, never silently dropped, because the sequencer
		// needs the sequence space gap-free.
		defer func() {
			for _, s := range shards {
				close(s.jobs)
			}
		}()
		dispatch := func(si int, j *shardJob) {
			if cfg.Overload == OverloadShed {
				select {
				case shards[si].jobs <- j:
				default:
					shards[si].shed(j, ErrShed, results)
				}
			} else {
				shards[si].jobs <- j
			}
		}
		pending := make([]*shardJob, nShards)
		flush := func() {
			for si, j := range pending {
				if j != nil {
					pending[si] = nil
					dispatch(si, j)
				}
			}
		}
		scratch := make([]rules.Header, cfg.BatchSize)
		var seq uint64
		for {
			if err := ctx.Err(); err != nil {
				for si, j := range pending {
					if j != nil {
						pending[si] = nil
						shards[si].shed(j, err, results)
					}
				}
				offered.Store(seq)
				return
			}
			n, ok := src.Next(scratch)
			for i := 0; i < n; i++ {
				si := 0
				if nShards > 1 {
					si = shardOf(scratch[i], nShards)
				}
				j := pending[si]
				if j == nil {
					j = shards[si].jobPool.Get().(*shardJob)
					pending[si] = j
				}
				j.seqs = append(j.seqs, seq)
				j.hs = append(j.hs, scratch[i])
				seq++
				if len(j.hs) == cfg.BatchSize {
					pending[si] = nil
					dispatch(si, j)
				}
			}
			if !ok {
				flush()
				offered.Store(seq)
				return
			}
			if n < len(scratch) {
				flush()
			}
		}
	}()
	go func() {
		wg.Wait()
		close(results)
	}()

	st := Stats{Shards: nShards}
	d, describes := cl.(Describer)
	if describes {
		st.Algorithm, st.DegradationLevel = d.DescribeAlgorithm()
	}
	em := &emitter{st: &st, emit: emit}
	emitOne := em.one
	reorderHeld := cfg.Metrics.reorderHeldHist()

	if cfg.PreserveOrder {
		ring := newReorderRing(cfg.BatchSize)
		for out := range results {
			for _, r := range out.rs {
				ring.insert(r)
				if ring.held > st.MaxReorder {
					st.MaxReorder = ring.held
				}
				ring.drain(emitOne)
			}
			reorderHeld.Observe(uint64(ring.held))
			out.rs = out.rs[:0]
			out.home.Put(out)
		}
		if ring.held != 0 {
			return st, fmt.Errorf("engine: %d results stranded in the reorder buffer", ring.held)
		}
	} else {
		for out := range results {
			for _, r := range out.rs {
				emitOne(r)
			}
			out.rs = out.rs[:0]
			out.home.Put(out)
		}
	}
	if describes {
		st.FinalAlgorithm, st.FinalDegradationLevel = d.DescribeAlgorithm()
	}
	st.Panics = int(panics.Load())
	st.ShardBusy = make([]time.Duration, nShards)
	for i, s := range shards {
		st.ShardBusy[i] = s.busy
	}

	switch {
	case em.err != nil:
		return st, em.err
	case ctx.Err() != nil:
		return st, fmt.Errorf("engine: stream cut short, %d of %d pulled packets canceled: %w",
			st.Canceled, offered.Load(), ctx.Err())
	case st.Panics > 0:
		return st, fmt.Errorf("engine: %d of %d pulled packets failed with contained classifier panics",
			st.Panics, offered.Load())
	}
	return st, nil
}
