package engine

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/flowcache"
	"repro/internal/obs"
	"repro/internal/rules"
)

// stubLane is a TenantLane over any classifier. The embedded interface
// keeps the method set minimal, so the engine's dynamic BatchClassifier
// and generation detection see a bare per-packet classifier.
type stubLane struct {
	Classifier
	shed bool
}

func (s *stubLane) ShedOnOverload() bool { return s.shed }

// mapResolver resolves lanes from a plain map; a missing key yields the
// untyped nil the TenantResolver contract requires.
type mapResolver map[uint32]TenantLane

func (m mapResolver) Lane(id uint32) TenantLane { return m[id] }

// tenantStream interleaves the headers across the given tenants
// round-robin.
func tenantStream(headers []rules.Header, tenants []uint32) []TenantPacket {
	pkts := make([]TenantPacket, len(headers))
	for i, h := range headers {
		pkts[i] = TenantPacket{Tenant: tenants[i%len(tenants)], Header: h}
	}
	return pkts
}

// checkTenantIdentity asserts the accounting contract: for every tenant
// on every shard, offered == classified + shed + canceled + panicked;
// per-tenant totals are exactly the shard sums; and per-tenant offered
// matches an independent recount of the input stream.
func checkTenantIdentity(t *testing.T, ts TenantStats, pkts []TenantPacket, shards int) {
	t.Helper()
	offeredWant := map[uint32]uint64{}
	for _, p := range pkts {
		offeredWant[p.Tenant]++
	}
	for tid, bd := range ts.Tenants {
		var sum TenantCounts
		if len(bd.Shards) != shards {
			t.Fatalf("tenant %d: %d shard entries, want %d", tid, len(bd.Shards), shards)
		}
		for si, sc := range bd.Shards {
			if sc.Offered != sc.Classified+sc.Shed+sc.Canceled+sc.Panicked {
				t.Errorf("tenant %d shard %d: offered %d != %d classified + %d shed + %d canceled + %d panicked",
					tid, si, sc.Offered, sc.Classified, sc.Shed, sc.Canceled, sc.Panicked)
			}
			sum.add(sc)
		}
		if bd.Total != sum {
			t.Errorf("tenant %d: Total %+v is not the shard sum %+v", tid, bd.Total, sum)
		}
		if bd.Total.Offered != offeredWant[tid] {
			t.Errorf("tenant %d: offered %d, stream carried %d", tid, bd.Total.Offered, offeredWant[tid])
		}
		delete(offeredWant, tid)
	}
	for tid, n := range offeredWant {
		if n > 0 {
			t.Errorf("tenant %d: %d packets offered but tenant absent from stats", tid, n)
		}
	}
}

// TestRunTenantsMatchesPerTenantOracle: three tenants, three different
// rule tables (fixed matches = tenant ID), interleaved in one stream.
// Every result must carry its own tenant's answer in arrival order —
// the basic no-cross-classification contract — for 1, 3 and 8 shards.
func TestRunTenantsMatchesPerTenantOracle(t *testing.T) {
	_, _, headers := fixtures(t, 6000)
	res := mapResolver{
		1: &stubLane{Classifier: faultinject.FixedClassifier{Match: 1}},
		2: &stubLane{Classifier: faultinject.FixedClassifier{Match: 2}},
		3: &stubLane{Classifier: faultinject.FixedClassifier{Match: 3}},
	}
	pkts := tenantStream(headers, []uint32{1, 2, 3})
	for _, shards := range []int{1, 3, 8} {
		var prev uint64
		first := true
		seen := 0
		ts, err := RunTenants(context.Background(), res,
			Config{Shards: shards, PreserveOrder: true}, pkts,
			func(r TenantResult) {
				if r.Err != nil {
					t.Fatalf("shards=%d seq %d: %v", shards, r.Seq, r.Err)
				}
				if !first && r.Seq != prev+1 {
					t.Fatalf("shards=%d: out of order, %d after %d", shards, r.Seq, prev)
				}
				first = false
				prev = r.Seq
				if want := pkts[r.Seq].Tenant; r.Tenant != want {
					t.Fatalf("shards=%d seq %d: attributed to tenant %d, stream says %d",
						shards, r.Seq, r.Tenant, want)
				}
				if r.Match != int(r.Tenant) {
					t.Fatalf("shards=%d seq %d: tenant %d got match %d — cross-tenant classification",
						shards, r.Seq, r.Tenant, r.Match)
				}
				if want := 0; shards > 1 {
					want = tenantShardOf(r.Tenant, r.Header, shards)
					if r.Shard != want {
						t.Fatalf("shards=%d seq %d: shard %d, want %d", shards, r.Seq, r.Shard, want)
					}
				}
				seen++
			})
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if seen != len(pkts) || ts.Packets != len(pkts) {
			t.Fatalf("shards=%d: emitted %d, Stats.Packets %d, want %d", shards, seen, ts.Packets, len(pkts))
		}
		checkTenantIdentity(t, ts, pkts, shards)
	}
}

// TestTenantAccountingIdentity is the per-tenant accounting conformance
// test: a fast victim on the block policy next to a slow hostile tenant
// on the shed policy, tiny queues, shards 1/3/8. The identity must hold
// per tenant per shard on every path, the hostile tenant must actually
// shed, and the blocking victim must never lose a packet to its
// neighbor's pressure.
func TestTenantAccountingIdentity(t *testing.T) {
	_, tree, headers := fixtures(t, 4096)
	for _, shards := range []int{1, 3, 8} {
		res := mapResolver{
			7: &stubLane{Classifier: tree}, // victim: fast, blocks on overload
			9: &stubLane{ // hostile: dawdles, sheds on overload
				Classifier: &faultinject.SlowClassifier{Inner: tree, EveryN: 1, Delay: time.Millisecond},
				shed:       true,
			},
		}
		pkts := tenantStream(headers, []uint32{7, 9})
		ts, err := RunTenants(context.Background(), res,
			Config{Shards: shards, QueueDepth: 1, BatchSize: 16, PreserveOrder: true}, pkts, nil)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		checkTenantIdentity(t, ts, pkts, shards)

		victim, hostile := ts.Tenants[7], ts.Tenants[9]
		if victim.Total.Shed != 0 || victim.Total.Canceled != 0 {
			t.Errorf("shards=%d: blocking victim lost packets (%d shed, %d canceled)",
				shards, victim.Total.Shed, victim.Total.Canceled)
		}
		if victim.Total.Classified != victim.Total.Offered {
			t.Errorf("shards=%d: victim classified %d of %d offered",
				shards, victim.Total.Classified, victim.Total.Offered)
		}
		if hostile.Total.Shed == 0 {
			t.Errorf("shards=%d: hostile tenant shed nothing past a depth-1 queue", shards)
		}
		// Aggregate stats must agree with the per-tenant sums.
		var all TenantCounts
		for _, bd := range ts.Tenants {
			all.add(bd.Total)
		}
		if uint64(ts.Packets) != all.Classified || uint64(ts.Shed) != all.Shed {
			t.Errorf("shards=%d: aggregate (%d classified, %d shed) != tenant sums (%d, %d)",
				shards, ts.Packets, ts.Shed, all.Classified, all.Shed)
		}
	}
}

// TestRunTenantsUnknownTenant: packets for an unregistered tenant are
// refused with ErrUnknownTenant (which is an ErrShed), accounted as
// shed under that tenant ID, and never classified — while the known
// tenant's stream is untouched.
func TestRunTenantsUnknownTenant(t *testing.T) {
	if !errors.Is(ErrUnknownTenant, ErrShed) {
		t.Fatal("ErrUnknownTenant does not unwrap to ErrShed")
	}
	_, _, headers := fixtures(t, 2000)
	res := mapResolver{1: &stubLane{Classifier: faultinject.FixedClassifier{Match: 1}}}
	pkts := tenantStream(headers, []uint32{1, 666})
	refused := 0
	ts, err := RunTenants(context.Background(), res,
		Config{Shards: 3, PreserveOrder: true}, pkts,
		func(r TenantResult) {
			if r.Tenant == 666 {
				if !errors.Is(r.Err, ErrUnknownTenant) {
					t.Fatalf("unknown tenant seq %d: err = %v, want ErrUnknownTenant", r.Seq, r.Err)
				}
				refused++
			} else if r.Err != nil {
				t.Fatalf("known tenant seq %d: %v", r.Seq, r.Err)
			}
		})
	if err != nil {
		t.Fatal(err)
	}
	checkTenantIdentity(t, ts, pkts, 3)
	bd := ts.Tenants[666]
	if bd.Total.Shed != bd.Total.Offered || bd.Total.Classified != 0 {
		t.Errorf("unknown tenant: %+v, want everything shed", bd.Total)
	}
	if uint64(refused) != bd.Total.Offered {
		t.Errorf("emitted %d refusals, stats say %d offered", refused, bd.Total.Offered)
	}
	if known := ts.Tenants[1]; known.Total.Classified != known.Total.Offered {
		t.Errorf("known tenant disturbed by unknown neighbor: %+v", known.Total)
	}
}

// TestRunTenantsCancelAccounting: a mid-run deadline must surface as
// canceled results and an undispatched tail, with the identity intact
// for every tenant — no packet silently vanishes at cancellation.
func TestRunTenantsCancelAccounting(t *testing.T) {
	_, tree, headers := fixtures(t, 20000)
	slow := &faultinject.SlowClassifier{Inner: tree, EveryN: 1, Delay: 100 * time.Microsecond}
	res := mapResolver{
		1: &stubLane{Classifier: slow},
		2: &stubLane{Classifier: slow},
	}
	pkts := tenantStream(headers, []uint32{1, 2})
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Millisecond)
	defer cancel()
	ts, err := RunTenants(ctx, res, Config{Shards: 3, PreserveOrder: true}, pkts, nil)
	if err == nil {
		t.Fatal("deadline expiry surfaced no error")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	checkTenantIdentity(t, ts, pkts, 3)
	var all TenantCounts
	for _, bd := range ts.Tenants {
		all.add(bd.Total)
	}
	if all.Canceled == 0 {
		t.Error("nothing accounted canceled under a 15ms deadline on 2s of work")
	}
	if all.Offered != uint64(len(pkts)) {
		t.Errorf("offered %d, want %d", all.Offered, len(pkts))
	}
}

// TestRunTenantsPanicAttribution: a tenant whose classifier panics gets
// its failures accounted as its own Panicked — per shard, never bleeding
// into the co-resident tenant — and the run reports the contained panics.
func TestRunTenantsPanicAttribution(t *testing.T) {
	_, tree, headers := fixtures(t, 2048)
	res := mapResolver{
		1: &stubLane{Classifier: tree},
		2: &stubLane{Classifier: &faultinject.PanickyClassifier{Inner: tree, EveryN: 5}},
	}
	pkts := tenantStream(headers, []uint32{1, 2})
	ts, err := RunTenants(context.Background(), res,
		Config{Shards: 3, PreserveOrder: true}, pkts, nil)
	if err == nil {
		t.Fatal("contained panics surfaced no error")
	}
	checkTenantIdentity(t, ts, pkts, 3)
	if ts.Tenants[1].Total.Panicked != 0 {
		t.Errorf("innocent tenant charged %d panics", ts.Tenants[1].Total.Panicked)
	}
	if got := ts.Tenants[2].Total.Panicked; got == 0 {
		t.Error("panicky tenant accounted no panics")
	} else if uint64(ts.Panics) != got {
		t.Errorf("Stats.Panics %d != tenant 2's %d", ts.Panics, got)
	}
}

// TestRunTenantsPartitionEviction: more tenants than resident flow-cache
// partitions per shard. Eviction and re-admission must never serve one
// tenant a neighbor's cached answer, and each reclaim must land a
// tenant-evicted event on the flight recorder.
func TestRunTenantsPartitionEviction(t *testing.T) {
	_, _, headers := fixtures(t, 8000)
	res := mapResolver{}
	tenants := make([]uint32, 6)
	for i := range tenants {
		tid := uint32(i + 1)
		tenants[i] = tid
		res[tid] = &stubLane{Classifier: faultinject.FixedClassifier{Match: int(tid)}}
	}
	m := NewMetrics(2)
	ring := obs.NewRing(256)
	m.SetEvents(ring)
	pkts := tenantStream(headers, tenants)
	ts, err := RunTenants(context.Background(), res,
		Config{Shards: 2, PreserveOrder: true, FlowCacheFlows: 64, TenantPartitions: 2, Metrics: m},
		pkts,
		func(r TenantResult) {
			if r.Err != nil {
				t.Fatalf("seq %d: %v", r.Seq, r.Err)
			}
			if r.Match != int(r.Tenant) {
				t.Fatalf("seq %d: tenant %d served match %d — a neighbor's cache line",
					r.Seq, r.Tenant, r.Match)
			}
		})
	if err != nil {
		t.Fatal(err)
	}
	checkTenantIdentity(t, ts, pkts, 2)
	evicted := 0
	for _, ev := range ring.Snapshot() {
		if ev.Kind == obs.EventTenantEvicted {
			evicted++
		}
	}
	if evicted == 0 {
		t.Error("6 tenants over 2 partitions per shard recorded no tenant-evicted events")
	}
}

// TestTenantShardOfSpreads: the shard pin is deterministic, in range,
// and tenant-dependent — the same 5-tuple under different tenants must
// not all collapse onto one shard.
func TestTenantShardOfSpreads(t *testing.T) {
	_, _, headers := fixtures(t, 200)
	for _, shards := range []int{2, 3, 8} {
		differs := false
		for _, h := range headers {
			a := tenantShardOf(1, h, shards)
			if a != tenantShardOf(1, h, shards) {
				t.Fatalf("tenantShardOf not deterministic for %v", h)
			}
			if a < 0 || a >= shards {
				t.Fatalf("tenantShardOf out of range: %d of %d", a, shards)
			}
			if tenantShardOf(2, h, shards) != a {
				differs = true
			}
		}
		if !differs {
			t.Errorf("shards=%d: tenant ID never changed the shard pin", shards)
		}
	}
}

// TestTenantSteadyStateDoesNotAllocate: the per-batch tenant path —
// lane resolution, partition lookup, batched classification — must stay
// allocation-free once a tenant's lane is warm, exactly like the
// single-table sharded hot path.
func TestTenantSteadyStateDoesNotAllocate(t *testing.T) {
	_, tree, headers := fixtures(t, 64)
	res := mapResolver{5: &stubLane{Classifier: tree}}
	parts, err := flowcache.NewPartitioned(128, 4)
	if err != nil {
		t.Fatal(err)
	}
	s := &tenantShard{
		si:       0,
		resolver: res,
		lanes:    make(map[uint32]*tenantLaneState),
		parts:    parts,
		batch:    64,
	}
	j := &shardJob{tenant: 5, seqs: make([]uint64, 64), hs: make([]rules.Header, 64)}
	for i, h := range headers {
		j.seqs[i], j.hs[i] = uint64(i), h
	}
	rsBuf := make([]Result, 64)
	matches := make([]int, 64)

	l := s.laneFor(5)
	if l == nil {
		t.Fatal("laneFor(5) = nil")
	}
	l.classifyJob(j, rsBuf, matches, nil, nil) // warm lane and partition
	if n := testing.AllocsPerRun(100, func() {
		l := s.laneFor(5)
		l.classifyJob(j, rsBuf, matches, nil, nil)
	}); n != 0 {
		t.Errorf("warm tenant batch path allocates %v/op, want 0", n)
	}
}

// TestTenantLaneRebind: when the resolver starts returning a different
// lane for a tenant (remove + re-add), the shard must rebuild its lane
// state and drop the stale flow-cache partition instead of serving the
// old table from cache.
func TestTenantLaneRebind(t *testing.T) {
	_, _, headers := fixtures(t, 64)
	res := mapResolver{5: &stubLane{Classifier: faultinject.FixedClassifier{Match: 1}}}
	parts, err := flowcache.NewPartitioned(128, 4)
	if err != nil {
		t.Fatal(err)
	}
	s := &tenantShard{si: 0, resolver: res, lanes: make(map[uint32]*tenantLaneState), parts: parts, batch: 64}
	j := &shardJob{tenant: 5, seqs: make([]uint64, 64), hs: make([]rules.Header, 64)}
	for i, h := range headers {
		j.seqs[i], j.hs[i] = uint64(i), h
	}
	rsBuf := make([]Result, 64)
	matches := make([]int, 64)
	s.laneFor(5).classifyJob(j, rsBuf, matches, nil, nil)
	if rsBuf[0].Match != 1 {
		t.Fatalf("before rebind: match %d, want 1", rsBuf[0].Match)
	}

	res[5] = &stubLane{Classifier: faultinject.FixedClassifier{Match: 2}}
	s.laneFor(5).classifyJob(j, rsBuf, matches, nil, nil)
	for i := range rsBuf {
		if rsBuf[i].Match != 2 {
			t.Fatalf("after rebind: seq %d served stale match %d from the old lane's cache", i, rsBuf[i].Match)
		}
	}

	// And a vanished tenant drops its state entirely.
	delete(res, 5)
	if s.laneFor(5) != nil {
		t.Fatal("laneFor survived tenant removal")
	}
	if _, ok := s.lanes[5]; ok {
		t.Fatal("stale lane state retained after tenant removal")
	}
}
