// Engine observability: per-shard instrument blocks recorded at batch
// granularity by the serving loops, aggregated only when a registry
// scrapes. A Metrics value outlives individual runs — attach one to every
// Config a process serves with and the counters accumulate across runs,
// which is what a Prometheus endpoint wants (monotonic totals, not
// per-run resets).
package engine

import (
	"strconv"
	"time"

	"repro/internal/obs"
)

// shardMetrics is one shard's instrument block. During a run it has a
// single writer — the shard's serve goroutine (the dispatcher and
// emission loop write only to the shed/canceled counters and the reorder
// histogram, which live on separate instruments) — so every update is an
// uncontended atomic. The trailing pad keeps neighboring shards' blocks
// off each other's cache lines.
type shardMetrics struct {
	// packets and batches count classified work (including canceled
	// batches failed in the serve loop; those are also in canceled).
	packets obs.Counter
	batches obs.Counter
	// shed / canceled / panics count per-packet outcomes.
	shed     obs.Counter
	canceled obs.Counter
	panics   obs.Counter
	// busyNs accumulates classification time in nanoseconds — the
	// commodity-core stand-in for per-ME utilization.
	busyNs obs.Counter
	// cacheHits / cacheMisses mirror the shard's private flow cache,
	// fed by per-batch deltas of the cache's own (unsynchronized)
	// counters so the cache itself stays atomic-free.
	cacheHits   obs.Counter
	cacheMisses obs.Counter
	// cacheBypasses counts batches served cache-free because generation
	// churn outpaced the redo budget (see shard.classifyJob).
	cacheBypasses obs.Counter
	// batchFill observes packets per dispatched batch.
	batchFill obs.Hist
	// classifyNs observes per-packet classification nanoseconds,
	// attributed as batch-mean × batch-size (per-packet timing would
	// cost two clock reads per packet; the mean is what the batch knows).
	classifyNs obs.Hist
	// queueDepth observes the shard's job-ring occupancy, sampled once
	// per batch as the serve loop picks the batch up.
	queueDepth obs.Hist

	_ obs.CachePad
}

// recordBatch records one served batch: n packets classified in busy
// time, picked up with queued batches still waiting in the ring.
func (sm *shardMetrics) recordBatch(n int, busy time.Duration, queued int) {
	if sm == nil {
		return
	}
	un := uint64(n)
	sm.packets.Add(un)
	sm.batches.Inc()
	sm.busyNs.Add(uint64(busy))
	sm.batchFill.Observe(un)
	if n > 0 {
		sm.classifyNs.ObserveN(uint64(busy)/un, un)
	}
	sm.queueDepth.Observe(uint64(queued))
}

// addShed / addCanceled / addPanics bump per-outcome counters; nil-safe
// so call sites outside the batch-scoped `if s.m != nil` block (the
// dispatcher's shed path, cancellation fast-fails) need no guards.
func (sm *shardMetrics) addShed(n uint64) {
	if sm == nil {
		return
	}
	sm.shed.Add(n)
}

func (sm *shardMetrics) addCanceled(n uint64) {
	if sm == nil {
		return
	}
	sm.canceled.Add(n)
}

func (sm *shardMetrics) addPanics(n uint64) {
	if sm == nil || n == 0 {
		return
	}
	sm.panics.Add(n)
}

// addCacheBypass counts one churn-forced cache-free batch. Nil-safe.
func (sm *shardMetrics) addCacheBypass() {
	if sm == nil {
		return
	}
	sm.cacheBypasses.Inc()
}

// recordCache folds the flow cache's hit/miss counters into the exported
// ones as deltas against the previous batch's reading.
func (sm *shardMetrics) recordCache(hits, misses uint64, lastHits, lastMisses *uint64) {
	if sm == nil {
		return
	}
	sm.cacheHits.Add(hits - *lastHits)
	sm.cacheMisses.Add(misses - *lastMisses)
	*lastHits, *lastMisses = hits, misses
}

// Metrics is the engine's instrument block: a fixed array of per-shard
// slots plus run-global instruments. Allocate one with NewMetrics, set it
// on Config.Metrics, and register it on an obs.Registry; it is safe to
// share one Metrics across sequential or concurrent runs (shard i of
// every run writes slot i mod len — slots are atomics, so overlapping
// runs merely merge their numbers).
type Metrics struct {
	shards []shardMetrics
	// reorderHeld observes the reorder ring's held count, sampled once
	// per result batch by the emission loop.
	reorderHeld obs.Hist
	// undispatched counts packets canceled before any shard saw them
	// (the dispatcher's cut-off tail, attributable to no shard).
	undispatched obs.Counter
	// events, when set, receives rare engine events (currently flow-cache
	// invalidations on generation change).
	events *obs.Ring
}

// DefaultMetricsShards is the slot count NewMetrics uses for n <= 0 —
// comfortably above any realistic shard count on commodity hosts.
const DefaultMetricsShards = 64

// NewMetrics returns a Metrics with maxShards per-shard slots (n <= 0
// uses DefaultMetricsShards). Runs with more shards than slots fold the
// excess shards onto slots modulo the slot count rather than failing.
func NewMetrics(maxShards int) *Metrics {
	if maxShards <= 0 {
		maxShards = DefaultMetricsShards
	}
	return &Metrics{shards: make([]shardMetrics, maxShards)}
}

// SetEvents attaches a flight-recorder ring for engine events.
func (m *Metrics) SetEvents(ring *obs.Ring) {
	if m == nil {
		return
	}
	m.events = ring
}

// shard returns shard i's instrument block (nil for a nil Metrics, which
// makes every downstream record call a no-op).
func (m *Metrics) shard(i int) *shardMetrics {
	if m == nil {
		return nil
	}
	return &m.shards[i%len(m.shards)]
}

// recordUndispatched counts packets the dispatcher cut off before any
// shard saw them. Nil-safe.
func (m *Metrics) recordUndispatched(n uint64) {
	if m == nil || n == 0 {
		return
	}
	m.undispatched.Add(n)
}

// reorderHeldHist returns the reorder-occupancy histogram (nil for a nil
// Metrics; Hist methods are nil-safe, so emission loops observe into the
// result unconditionally).
func (m *Metrics) reorderHeldHist() *obs.Hist {
	if m == nil {
		return nil
	}
	return &m.reorderHeld
}

// eventsRing returns the flight recorder (nil for a nil Metrics; Ring
// methods are nil-safe, so callers record into the result
// unconditionally).
func (m *Metrics) eventsRing() *obs.Ring {
	if m == nil {
		return nil
	}
	return m.events
}

// Register registers the engine collector on reg.
func (m *Metrics) Register(reg *obs.Registry) {
	if m == nil || reg == nil {
		return
	}
	reg.Register(m.Collect)
}

// Collect is the obs.Collector for the engine: it walks the per-shard
// slots, skips slots that never saw work, and emits totals, histograms
// and the derived flow-cache hit ratio. Runs only on the scrape path.
func (m *Metrics) Collect(emit func(obs.Sample)) {
	for i := range m.shards {
		sm := &m.shards[i]
		packets := sm.packets.Load()
		shed := sm.shed.Load()
		canceled := sm.canceled.Load()
		if packets == 0 && shed == 0 && canceled == 0 {
			continue
		}
		labels := []obs.Label{{Key: "shard", Value: strconv.Itoa(i)}}
		counter := func(name, help string, v uint64) {
			emit(obs.Sample{Name: name, Help: help, Type: "counter", Labels: labels, Value: float64(v)})
		}
		hist := func(name, help string, h *obs.Hist) {
			hs := h.Snapshot()
			emit(obs.Sample{Name: name, Help: help, Type: "histogram", Labels: labels, Hist: &hs})
		}
		counter("pc_engine_shard_packets_total", "Packets classified per shard.", packets)
		counter("pc_engine_shard_batches_total", "Batches served per shard.", sm.batches.Load())
		counter("pc_engine_shard_shed_total", "Packets shed under overload per shard.", shed)
		counter("pc_engine_shard_canceled_total", "Packets canceled per shard.", canceled)
		counter("pc_engine_shard_panics_total", "Contained classifier panics per shard.", sm.panics.Load())
		counter("pc_engine_shard_busy_ns_total", "Cumulative classification busy time per shard (ns).", sm.busyNs.Load())
		hist("pc_engine_batch_fill", "Packets per served batch.", &sm.batchFill)
		hist("pc_engine_classify_ns", "Per-packet classification time (ns, batch-mean attributed).", &sm.classifyNs)
		hist("pc_engine_queue_depth", "Shard job-ring occupancy at batch pickup.", &sm.queueDepth)
		if v := sm.cacheBypasses.Load(); v > 0 {
			counter("pc_engine_cache_bypass_total",
				"Batches served cache-free because generation churn outpaced the redo budget.", v)
		}
		hits, misses := sm.cacheHits.Load(), sm.cacheMisses.Load()
		if hits+misses > 0 {
			counter("pc_flowcache_hits_total", "Flow-cache hits per shard.", hits)
			counter("pc_flowcache_misses_total", "Flow-cache misses per shard.", misses)
			emit(obs.Sample{Name: "pc_flowcache_hit_ratio",
				Help: "Flow-cache hit fraction per shard.", Type: "gauge",
				Labels: labels, Value: float64(hits) / float64(hits+misses)})
		}
	}
	rh := m.reorderHeld.Snapshot()
	emit(obs.Sample{Name: "pc_engine_reorder_held",
		Help: "Results held in the reorder ring, sampled per result batch.",
		Type: "histogram", Hist: &rh})
	if v := m.undispatched.Load(); v > 0 {
		emit(obs.Sample{Name: "pc_engine_undispatched_total",
			Help: "Packets canceled before dispatch to any shard.",
			Type: "counter", Value: float64(v)})
	}
}
