package engine

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/rules"
)

func TestStreamMatchesSlicePath(t *testing.T) {
	rs, tree, headers := fixtures(t, 20000)
	for _, shards := range []int{1, 4} {
		var prev uint64
		first := true
		st, err := RunStream(context.Background(), tree,
			Config{Shards: shards, PreserveOrder: true},
			&SliceSource{Headers: headers}, func(r Result) {
				if !first && r.Seq != prev+1 {
					t.Fatalf("shards=%d: out of order: %d after %d", shards, r.Seq, prev)
				}
				first = false
				prev = r.Seq
				if r.Err != nil {
					t.Fatalf("shards=%d: packet %d: %v", shards, r.Seq, r.Err)
				}
				if want := rs.Match(r.Header); r.Match != want {
					t.Fatalf("shards=%d: packet %d: match %d, oracle %d", shards, r.Seq, r.Match, want)
				}
			})
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if st.Packets != len(headers) {
			t.Errorf("shards=%d: packets = %d, want %d", shards, st.Packets, len(headers))
		}
	}
}

// trickleSource hands out headers a few at a time with ok=true short
// fills — the shape of an idle socket — so it exercises the dispatcher's
// flush-on-short-fill path: packets must never sit in a half-built shard
// batch waiting for traffic that may not come.
type trickleSource struct {
	headers []rules.Header
	off     int
	chunk   int
}

func (s *trickleSource) Next(hs []rules.Header) (int, bool) {
	want := s.chunk
	if want > len(hs) {
		want = len(hs)
	}
	n := copy(hs[:want], s.headers[s.off:])
	s.off += n
	return n, s.off < len(s.headers)
}

func TestStreamShortFillsFlushPendingBatches(t *testing.T) {
	rs, tree, headers := fixtures(t, 5000)
	// chunk 3 against BatchSize 64 means nearly every pull is short: with
	// flushing broken this either deadlocks (nothing reaches BatchSize
	// before the source drains... the tail flush would save it) or at
	// minimum reorders; with it working every packet arrives in order.
	src := &trickleSource{headers: headers, chunk: 3}
	var next uint64
	st, err := RunStream(context.Background(), tree,
		Config{Shards: 4, PreserveOrder: true, BatchSize: 64},
		src, func(r Result) {
			if r.Seq != next {
				t.Fatalf("out of order: seq %d, want %d", r.Seq, next)
			}
			next++
			if want := rs.Match(r.Header); r.Match != want {
				t.Fatalf("packet %d: match %d, oracle %d", r.Seq, r.Match, want)
			}
		})
	if err != nil {
		t.Fatal(err)
	}
	if st.Packets != len(headers) {
		t.Errorf("packets = %d, want %d", st.Packets, len(headers))
	}
}

// countingSource wraps SliceSource and counts how many headers it
// surrendered, so cancellation tests can balance the books against what
// the engine actually pulled.
type countingSource struct {
	inner   SliceSource
	yielded int
}

func (s *countingSource) Next(hs []rules.Header) (int, bool) {
	n, ok := s.inner.Next(hs)
	s.yielded += n
	return n, ok
}

func TestStreamCancellation(t *testing.T) {
	_, tree, headers := fixtures(t, 50000)
	slow := &faultinject.SlowClassifier{Inner: tree, EveryN: 1, Delay: 100 * time.Microsecond}
	base := runtime.NumGoroutine()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	src := &countingSource{inner: SliceSource{Headers: headers}}
	emitted := 0
	st, err := RunStream(ctx, slow, Config{Shards: 2, PreserveOrder: true}, src, func(r Result) {
		emitted++
		if r.Err != nil && !errors.Is(r.Err, context.DeadlineExceeded) {
			t.Fatalf("packet %d: unexpected error %v", r.Seq, r.Err)
		}
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	waitNoLeaks(t, base)
	// Every pulled packet must be accounted for — classified or canceled,
	// never silently dropped. Unlike the slice path there is no
	// undispatched tail: unpulled headers stay in the source.
	if st.Packets+st.Canceled != src.yielded {
		t.Errorf("accounting: %d classified + %d canceled != %d pulled (stats %+v)",
			st.Packets, st.Canceled, src.yielded, st)
	}
	if emitted != src.yielded {
		t.Errorf("emit called %d times for %d pulled packets", emitted, src.yielded)
	}
	if src.yielded >= len(headers) {
		t.Error("a 20ms deadline against a 100µs/packet classifier drained the whole stream")
	}
}

func TestStreamCancelBeforeStart(t *testing.T) {
	_, tree, headers := fixtures(t, 1000)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	base := runtime.NumGoroutine()
	src := &countingSource{inner: SliceSource{Headers: headers}}
	st, err := RunStream(ctx, tree, Config{Shards: 2}, src, func(r Result) {
		t.Errorf("packet %d emitted on a dead context", r.Seq)
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	waitNoLeaks(t, base)
	if src.yielded != 0 {
		t.Errorf("%d headers pulled on a dead context", src.yielded)
	}
	if st.Packets != 0 || st.Canceled != 0 {
		t.Errorf("stats nonzero on a dead context: %+v", st)
	}
}

func TestStreamOverloadShed(t *testing.T) {
	_, tree, headers := fixtures(t, 4000)
	slow := &faultinject.SlowClassifier{Inner: tree, EveryN: 1, Delay: 50 * time.Microsecond}
	base := runtime.NumGoroutine()
	shedSeen := 0
	st, err := RunStream(context.Background(), slow,
		Config{Shards: 1, QueueDepth: 1, PreserveOrder: true, Overload: OverloadShed},
		&SliceSource{Headers: headers}, func(r Result) {
			if errors.Is(r.Err, ErrShed) {
				if r.Match != -1 {
					t.Fatalf("shed packet %d carries match %d", r.Seq, r.Match)
				}
				shedSeen++
			}
		})
	if err != nil {
		t.Fatalf("shedding is not an error-level event: %v", err)
	}
	waitNoLeaks(t, base)
	if st.Shed == 0 {
		t.Fatal("overloaded stream shed nothing")
	}
	if st.Shed != shedSeen {
		t.Errorf("Stats.Shed = %d but %d ErrShed results emitted", st.Shed, shedSeen)
	}
	if st.Packets+st.Shed != len(headers) {
		t.Errorf("accounting: %d classified + %d shed != %d", st.Packets, st.Shed, len(headers))
	}
}

func TestStreamPanicAttribution(t *testing.T) {
	rs, tree, headers := fixtures(t, 5000)
	panicky := &faultinject.PanickyClassifier{Inner: tree, EveryN: 100}
	base := runtime.NumGoroutine()
	var good, bad int
	st, err := RunStream(context.Background(), panicky,
		Config{Shards: 4, PreserveOrder: true},
		&SliceSource{Headers: headers}, func(r Result) {
			if r.Err != nil {
				var pe *PanicError
				if !errors.As(r.Err, &pe) {
					t.Fatalf("packet %d: error %v is not a PanicError", r.Seq, r.Err)
				}
				bad++
				return
			}
			if want := rs.Match(r.Header); r.Match != want {
				t.Fatalf("packet %d: match %d, oracle %d", r.Seq, r.Match, want)
			}
			good++
		})
	if err == nil {
		t.Fatal("a stream with contained panics must return an error")
	}
	waitNoLeaks(t, base)
	if bad == 0 || st.Panics != bad {
		t.Errorf("panics: emitted %d, stats %d (want >0 and equal)", bad, st.Panics)
	}
	if good+bad != len(headers) || st.Packets != good {
		t.Errorf("accounting: good %d + bad %d != %d packets (stats %+v)", good, bad, len(headers), st)
	}
}

func TestStreamNilSourceRejected(t *testing.T) {
	_, tree, _ := fixtures(t, 10)
	if _, err := RunStream(context.Background(), tree, Config{}, nil, func(Result) {}); err == nil {
		t.Error("nil source should fail validation")
	}
}

func TestStreamEmptySource(t *testing.T) {
	_, tree, _ := fixtures(t, 10)
	st, err := RunStream(context.Background(), tree, Config{Shards: 2, PreserveOrder: true},
		&SliceSource{}, func(r Result) {
			t.Errorf("packet %d emitted from an empty source", r.Seq)
		})
	if err != nil {
		t.Fatal(err)
	}
	if st.Packets != 0 {
		t.Errorf("packets = %d from an empty source", st.Packets)
	}
}
