// Regression tests for sharded-runtime lifecycle bugs: goroutine leaks
// on mid-construction failure, and Describer sampling that froze the
// run's algorithm label before serving started.
package engine

import (
	"errors"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/flowcache"
)

// TestShardedNoLeakOnFlowCacheFailure: when a later shard's flow cache
// fails to construct, runSharded must return the error without leaking
// the serve goroutines of the shards built before it. The old code
// launched each shard's goroutine inside the construction loop, so a
// failure at shard i left shards 0..i-1 blocked forever on their
// never-closed job rings.
func TestShardedNoLeakOnFlowCacheFailure(t *testing.T) {
	orig := newFlowCache
	defer func() { newFlowCache = orig }()
	boom := errors.New("injected flow-cache failure")
	calls := 0
	newFlowCache = func(cl Classifier, flows int) (*flowcache.Cache, error) {
		calls++
		if calls == 3 {
			return nil, boom
		}
		return flowcache.New(cl, flows)
	}

	_, tree, headers := fixtures(t, 256)
	base := runtime.NumGoroutine()
	emitted := 0
	_, err := Run(tree, Config{Shards: 4, FlowCacheFlows: 64, PreserveOrder: true},
		headers, func(Result) { emitted++ })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the injected construction failure", err)
	}
	if !strings.Contains(err.Error(), "shard 2") {
		t.Errorf("error should name the failing shard: %v", err)
	}
	if emitted != 0 {
		t.Errorf("emit called %d times on a run that never started serving", emitted)
	}
	waitNoLeaks(t, base)
}

// TestFlowCacheCapacityErrorSurfaces: a real (non-injected) construction
// failure — the flow cache rejecting an overflowing capacity — takes the
// same early-return path, stays typed through the wrap, and leaks
// nothing.
func TestFlowCacheCapacityErrorSurfaces(t *testing.T) {
	_, tree, headers := fixtures(t, 64)
	base := runtime.NumGoroutine()
	// Incremented at runtime so the constant expression never trips the
	// untyped-constant overflow rules.
	over := int(flowcache.MaxCapacity)
	over++
	if over < 0 {
		t.Skip("int cannot express a capacity beyond MaxCapacity on this platform")
	}
	_, err := Run(tree, Config{Shards: 2, FlowCacheFlows: over}, headers, func(Result) {})
	var ce *flowcache.CapacityError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want a wrapped *flowcache.CapacityError", err)
	}
	if ce.Capacity != over {
		t.Errorf("CapacityError.Capacity = %d, want %d", ce.Capacity, over)
	}
	waitNoLeaks(t, base)
}

// swappingDescriber reports one algorithm until its swapped flag is set
// — the smallest model of a hot-swap landing mid-run. The test sets the
// flag from the emit callback, which runs on the same goroutine that
// takes both Stats samples: the first sample provably precedes every
// emit and the final sample follows them all, so the expected values are
// deterministic rather than racing the serving pipeline.
type swappingDescriber struct {
	Classifier
	swapped atomic.Bool
}

func (s *swappingDescriber) DescribeAlgorithm() (string, int) {
	if s.swapped.Load() {
		return "hsm", 2
	}
	return "expcuts", 0
}

// TestDescriberResampledAfterServing: Stats must carry both the
// algorithm that started the run and the one live when it finished. The
// old code sampled DescribeAlgorithm once, before serving, so a mid-run
// swap or rung change was invisible in the run's stats. Exercised on
// both serving paths.
func TestDescriberResampledAfterServing(t *testing.T) {
	_, tree, headers := fixtures(t, 2000)
	for _, cfg := range []Config{
		{Workers: 4, PreserveOrder: true},                    // unsharded worker pool
		{Shards: 3, PreserveOrder: true},                     // sharded
		{Shards: 1, FlowCacheFlows: 64, PreserveOrder: true}, // sharded via cache
	} {
		cl := &swappingDescriber{Classifier: tree}
		st, err := Run(cl, cfg, headers, func(Result) { cl.swapped.Store(true) })
		if err != nil {
			t.Fatalf("%+v: %v", cfg, err)
		}
		if st.Algorithm != "expcuts" || st.DegradationLevel != 0 {
			t.Errorf("%+v: first sample = %q/%d, want expcuts/0 (sampled before serving)",
				cfg, st.Algorithm, st.DegradationLevel)
		}
		if st.FinalAlgorithm != "hsm" || st.FinalDegradationLevel != 2 {
			t.Errorf("%+v: final sample = %q/%d, want hsm/2 (re-sampled after serving)",
				cfg, st.FinalAlgorithm, st.FinalDegradationLevel)
		}
	}
}
