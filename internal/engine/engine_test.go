package engine

import (
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/expcuts"
	"repro/internal/pktgen"
	"repro/internal/rulegen"
	"repro/internal/rules"
)

func fixtures(t *testing.T, n int) (*rules.RuleSet, *expcuts.Tree, []rules.Header) {
	t.Helper()
	rs, err := rulegen.Generate(rulegen.Config{Kind: rulegen.CoreRouter, Size: 200, Seed: 401})
	if err != nil {
		t.Fatal(err)
	}
	tree, err := expcuts.New(rs, expcuts.Config{})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := pktgen.Generate(rs, pktgen.Config{Count: n, Seed: 402, MatchFraction: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	return rs, tree, tr.Headers
}

func TestOrderingPreserved(t *testing.T) {
	rs, tree, headers := fixtures(t, 20000)
	var prev uint64
	first := true
	st, err := Run(tree, Config{Workers: 8, PreserveOrder: true}, headers, func(r Result) {
		if !first && r.Seq != prev+1 {
			t.Fatalf("out of order: %d after %d", r.Seq, prev)
		}
		first = false
		prev = r.Seq
		if want := rs.Match(r.Header); r.Match != want {
			t.Fatalf("result %d: match %d, oracle %d", r.Seq, r.Match, want)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Packets != len(headers) {
		t.Errorf("packets = %d, want %d", st.Packets, len(headers))
	}
}

func TestUnorderedDeliversEverything(t *testing.T) {
	_, tree, headers := fixtures(t, 10000)
	seen := make([]bool, len(headers))
	st, err := Run(tree, Config{Workers: 8, PreserveOrder: false}, headers, func(r Result) {
		if seen[r.Seq] {
			t.Fatalf("duplicate result %d", r.Seq)
		}
		seen[r.Seq] = true
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Packets != len(headers) {
		t.Errorf("packets = %d", st.Packets)
	}
	for i, s := range seen {
		if !s {
			t.Fatalf("result %d never emitted", i)
		}
	}
}

// slowEveryN delays every Nth packet, forcing later packets to finish
// first and exercising the reorder buffer.
type slowEveryN struct {
	inner Classifier
	n     uint64
	count atomic.Uint64
}

func (s *slowEveryN) Classify(h rules.Header) int {
	if s.count.Add(1)%s.n == 0 {
		time.Sleep(200 * time.Microsecond)
	}
	return s.inner.Classify(h)
}

func TestReorderBufferAbsorbsSkew(t *testing.T) {
	rs, tree, headers := fixtures(t, 3000)
	slow := &slowEveryN{inner: tree, n: 50}
	var prev uint64
	first := true
	st, err := Run(slow, Config{Workers: 8, PreserveOrder: true}, headers, func(r Result) {
		if !first && r.Seq != prev+1 {
			t.Fatalf("out of order: %d after %d", r.Seq, prev)
		}
		first = false
		prev = r.Seq
		if want := rs.Match(r.Header); r.Match != want {
			t.Fatalf("result %d wrong", r.Seq)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Packets != len(headers) {
		t.Errorf("packets = %d", st.Packets)
	}
	// With 8 workers and induced skew the reorder stage must actually
	// have held something back.
	if st.MaxReorder < 2 {
		t.Logf("note: MaxReorder = %d (scheduling-dependent; not failing)", st.MaxReorder)
	}
}

func TestSingleWorkerIsOrderedByConstruction(t *testing.T) {
	_, tree, headers := fixtures(t, 2000)
	st, err := Run(tree, Config{Workers: 1, Shards: 1, PreserveOrder: true}, headers, func(Result) {})
	if err != nil {
		t.Fatal(err)
	}
	if st.MaxReorder > 1 {
		t.Errorf("single worker should not need reordering, MaxReorder = %d", st.MaxReorder)
	}
}

func TestConfigValidation(t *testing.T) {
	_, tree, headers := fixtures(t, 10)
	if _, err := Run(tree, Config{Workers: -2}, headers, func(Result) {}); err == nil {
		t.Error("negative workers should fail")
	}
	if _, err := Run(tree, Config{Workers: 1, QueueDepth: -1}, headers, func(Result) {}); err == nil {
		t.Error("negative queue depth should fail")
	}
}

func TestEmptyInput(t *testing.T) {
	_, tree, _ := fixtures(t, 10)
	st, err := Run(tree, Config{}, nil, func(Result) {
		t.Fatal("emit called for empty input")
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Packets != 0 {
		t.Errorf("packets = %d", st.Packets)
	}
}
