// Sharded serving: the engine's multi-core fast path. The paper's IXP2850
// mapping gives every microengine its own thread group, local flow state
// and a hardware hash unit that sprays packets across engines by 5-tuple;
// this file is the commodity-core translation. A dispatcher hashes each
// packet's flow onto one of cfg.Shards serving loops, so all packets of a
// flow are classified by the same goroutine against that shard's private
// flow cache and pools — the hot path shares no mutable state across
// shards. Results converge on one emission goroutine whose sliding reorder
// ring doubles as the cross-shard sequencer: per-shard FIFO order plus
// sequence-numbered reordering reproduces exactly the ordered-emission,
// shed/cancel-accounting and panic-attribution contracts of the unsharded
// path.
package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/flowcache"
	"repro/internal/obs"
	"repro/internal/rules"
)

// newFlowCache is flowcache.New behind a package variable so tests can
// inject construction failures at a chosen shard (the goroutine-leak
// regression in lifecycle_test.go).
var newFlowCache = func(cl Classifier, flows int) (*flowcache.Cache, error) {
	return flowcache.New(cl, flows)
}

// generationProvider is implemented by classifiers that version their
// rule set (update.Manager). Shards poll it to invalidate their private
// flow caches when a hot-swap lands, and to guarantee no batch mixes two
// generations.
type generationProvider interface {
	Generation() uint64
}

// flowHash mixes the 5-tuple into 32 bits (splitmix64-style finalizer).
// Packets of one flow always hash identically, which is what pins a flow
// to a shard — the software stand-in for the NP's hardware hash unit.
func flowHash(h rules.Header) uint32 {
	x := uint64(h.SrcIP)<<32 | uint64(h.DstIP)
	x ^= (uint64(h.SrcPort)<<24 | uint64(h.DstPort)<<8 | uint64(h.Proto)) * 0x9E3779B97F4A7C15
	x ^= x >> 32
	x *= 0xFF51AFD7ED558CCD
	x ^= x >> 33
	return uint32(x)
}

// shardOf maps a header to a shard index with a multiply-shift reduction
// (no modulo on the per-packet path).
func shardOf(h rules.Header, shards int) int {
	return int(uint64(flowHash(h)) * uint64(shards) >> 32)
}

// shardJob is one dispatched batch for a shard. Unlike the unsharded
// path's contiguous header sub-slices, a shard's packets are scattered
// through the arrival order, so headers are copied into the job alongside
// their per-packet sequence numbers. Jobs cycle through the owning
// shard's pool. The multi-tenant dispatcher additionally stamps the batch
// with its (single) tenant; the single-table path leaves tenant zero.
type shardJob struct {
	seqs   []uint64
	hs     []rules.Header
	tenant uint32
}

// lane is the classification state of one serving context: the
// classifier (batched when it supports it), an optional private flow
// cache, and the generation-bracketing state that keeps a batch from
// straddling a hot-swap. The single-table path owns one lane per shard;
// the multi-tenant path keeps one lane per (shard, tenant) so every
// tenant gets its own cache epoch and its own generation bracket.
type lane struct {
	cl    Classifier
	bc    BatchClassifier
	cache *flowcache.Cache
	gen   generationProvider // non-nil only when cache != nil and cl versions itself

	lastGen uint64
}

// shard is one serving lane: a private job ring, private job/result pools
// and an optional private flow cache, all touched only by the dispatcher
// (job acquisition) and the shard's serve goroutine.
type shard struct {
	lane

	jobs    chan *shardJob
	jobPool sync.Pool
	resPool sync.Pool

	// busy accumulates classification time. Written only by the serve
	// goroutine; published to the emission goroutine by the results-close
	// happens-before edge.
	busy time.Duration

	// m is the shard's instrument block and events the flight recorder
	// (both nil when Config.Metrics is unset). lastHits / lastMisses hold
	// the flow cache's previous counter readings so hits and misses are
	// exported as per-batch deltas without adding atomics to the cache.
	m                    *shardMetrics
	events               *obs.Ring
	lastHits, lastMisses uint64
}

// serve is the shard's loop: drain the job ring, classify each batch with
// panic containment, deliver one resultBatch per job. It fails canceled
// batches fast (the ring drains at cancellation speed, which is what
// bounds dispatcher blocking under OverloadBlock) and never exits before
// its ring closes, so delivery can never deadlock.
func (s *shard) serve(ctx context.Context, results chan<- *resultBatch, panics *atomic.Int64) {
	var matches []int
	for j := range s.jobs {
		queued := len(s.jobs)
		out := s.resPool.Get().(*resultBatch)
		out.home = &s.resPool
		out.rs = out.rs[:len(j.hs)]
		if err := ctx.Err(); err != nil {
			for i, h := range j.hs {
				out.rs[i] = Result{Seq: j.seqs[i], Header: h, Match: -1, Err: err}
			}
			s.m.addCanceled(uint64(len(j.hs)))
		} else {
			if matches == nil && (s.bc != nil || s.cache != nil) {
				matches = make([]int, cap(j.hs))
			}
			start := time.Now()
			p := s.lane.classifyJob(j, out.rs, matches, s.m, s.events)
			busy := time.Since(start)
			panics.Add(p)
			s.busy += busy
			if s.m != nil {
				s.m.recordBatch(len(j.hs), busy, queued)
				s.m.addPanics(uint64(p))
				if s.cache != nil {
					hits, misses := s.cache.Stats()
					s.m.recordCache(hits, misses, &s.lastHits, &s.lastMisses)
				}
			}
		}
		j.seqs, j.hs = j.seqs[:0], j.hs[:0]
		s.jobPool.Put(j)
		results <- out
	}
}

// maxGenRetries bounds how many times classifyJob re-runs a batch whose
// generation moved underneath it before bypassing the cache. Two retries
// absorb any isolated swap; only sustained churn (a delta apply every few
// microseconds) exhausts them.
const maxGenRetries = 3

// classifyJob fills rs for one batch. Without a cache it is the sharded
// twin of classifyBatch. With a cache, batches are classified under a
// generation-stability protocol: read the generation, stale the cache if
// it moved since the last batch, classify, and re-read. If the generation
// changed underneath the batch, the batch is re-run — so on exit every
// result of the batch (cache hits and misses alike) is attributable to
// the single observed generation, and no batch on any shard ever
// straddles a hot-swap. Generations are monotonic, so equal reads bracket
// the whole batch.
//
// Each generation change is absorbed with an O(1) epoch bump, not an
// O(capacity) clear: delta-layer churn publishes a generation per edit
// batch, and a per-edit full clear would dominate the serving loop. The
// redo loop is bounded: under sustained churn the generation can move on
// every re-read, and an unbounded loop would livelock the shard, so after
// maxGenRetries the batch bypasses the cache entirely and classifies
// against the raw classifier — update.Manager's ClassifyBatch is
// internally coherent (one generation load per batch), so correctness
// holds and only this batch's cache benefit is lost.
func (l *lane) classifyJob(j *shardJob, rs []Result, matches []int, m *shardMetrics, events *obs.Ring) int64 {
	if l.cache == nil {
		return classifyBatchSeqs(l.cl, l.bc, j.seqs, j.hs, rs, matches)
	}
	for attempt := 0; l.gen == nil || attempt < maxGenRetries; attempt++ {
		var gen uint64
		if l.gen != nil {
			gen = l.gen.Generation()
			if gen != l.lastGen {
				l.cache.AdvanceEpoch()
				l.lastGen = gen
				// Rare by design (once per hot-swap per shard), so the
				// formatted event record stays off the steady-state path.
				events.Recordf(obs.EventCacheInvalidate,
					"shard flow cache epoch advanced at generation %d", gen)
			}
		}
		n := classifyBatchSeqs(l.cache, l.cache, j.seqs, j.hs, rs, matches)
		if l.gen == nil || l.gen.Generation() == gen {
			return n
		}
		// A swap landed mid-batch: results may mix generations. Loop and
		// redo the batch against the settled generation.
	}
	// Churn outpaced the retry budget: serve this batch cache-free. The
	// next batch re-enters the protocol (and stales the cache then).
	m.addCacheBypass()
	return classifyBatchSeqs(l.cl, l.bc, j.seqs, j.hs, rs, matches)
}

// classifyBatchSeqs is classifyBatch for scattered sequence numbers: the
// batched fast path with per-packet panic re-attribution on fallback.
func classifyBatchSeqs(cl Classifier, bc BatchClassifier, seqs []uint64, hs []rules.Header, rs []Result, matches []int) int64 {
	if bc != nil && classifyBatchContained(bc, hs, matches[:len(hs)]) {
		for i, h := range hs {
			rs[i] = Result{Seq: seqs[i], Header: h, Match: matches[i]}
		}
		return 0
	}
	var panicked int64
	for i, h := range hs {
		r := classifyOne(cl, seqs[i], h)
		if r.Err != nil {
			panicked++
		}
		rs[i] = r
	}
	return panicked
}

// makeShards constructs and validates every shard for one run before any
// goroutine launches. Construction must not be folded into the launch
// loop: if shard i's flow cache fails to construct after shards 0..i-1
// started serving, those goroutines would block forever on their
// never-closed job rings — nothing in the early-return path would ever
// close them. Shared by the slice path (runSharded) and the streaming
// path (RunStream).
func makeShards(cl Classifier, cfg Config) ([]*shard, error) {
	bc := cfg.batcher(cl)
	// With pipelining on, the flow cache's slow path is the pipelined
	// adapter, so cache-miss sub-batches take the staged walk too. The
	// raw classifier keeps serving the per-packet and generation roles.
	cacheSlow := cl
	if bc != nil {
		cacheSlow = bc
	}
	shards := make([]*shard, cfg.Shards)
	for i := range shards {
		s := &shard{lane: lane{cl: cl, bc: bc}, jobs: make(chan *shardJob, cfg.QueueDepth)}
		s.jobPool.New = func() any {
			return &shardJob{
				seqs: make([]uint64, 0, cfg.BatchSize),
				hs:   make([]rules.Header, 0, cfg.BatchSize),
			}
		}
		s.resPool.New = func() any {
			return &resultBatch{rs: make([]Result, 0, cfg.BatchSize)}
		}
		if cfg.FlowCacheFlows > 0 {
			c, err := newFlowCache(cacheSlow, cfg.FlowCacheFlows)
			if err != nil {
				return nil, fmt.Errorf("engine: shard %d flow cache: %w", i, err)
			}
			s.cache = c
			s.gen, _ = cl.(generationProvider)
			if s.gen != nil {
				s.lastGen = s.gen.Generation()
			}
		}
		if cfg.Metrics != nil {
			s.m = cfg.Metrics.shard(i)
			s.events = cfg.Metrics.events
		}
		shards[i] = s
	}
	return shards, nil
}

// shed fails a whole pending batch through results without classifying
// it — ErrShed markers under overload, cancellation markers otherwise —
// keeping the sequence space gap-free for the sequencer.
func (s *shard) shed(j *shardJob, err error, results chan<- *resultBatch) {
	out := s.resPool.Get().(*resultBatch)
	out.home = &s.resPool
	out.rs = out.rs[:len(j.hs)]
	for k, h := range j.hs {
		out.rs[k] = Result{Seq: j.seqs[k], Header: h, Match: -1, Err: err}
	}
	if errors.Is(err, ErrShed) {
		s.m.addShed(uint64(len(j.hs)))
	} else {
		s.m.addCanceled(uint64(len(j.hs)))
	}
	j.seqs, j.hs = j.seqs[:0], j.hs[:0]
	s.jobPool.Put(j)
	results <- out
}

// runSharded is RunContext's serving path for Shards > 1 or a non-zero
// flow cache. Contracts are identical to the unsharded path; see the
// package comment at the top of this file for the layout.
func runSharded(ctx context.Context, cl Classifier, cfg Config, headers []rules.Header, emit func(Result)) (Stats, error) {
	nShards := cfg.Shards
	results := make(chan *resultBatch, cfg.QueueDepth)
	shards, err := makeShards(cl, cfg)
	if err != nil {
		return Stats{}, err
	}
	var wg sync.WaitGroup
	var panics atomic.Int64
	for _, s := range shards {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.serve(ctx, results, &panics)
		}()
	}

	// shedJob emits a whole pending batch as ErrShed markers through
	// results, keeping the sequence space gap-free for the sequencer.
	shedJob := func(s *shard, j *shardJob, err error) {
		s.shed(j, err, results)
	}

	var undispatched atomic.Int64
	go func() {
		// Dispatcher: bin packets into per-shard pending batches by flow
		// hash, flushing each batch when full. Cancellation is polled at
		// batch boundaries (like the unsharded dispatcher); the pending
		// batches it cuts off are emitted as canceled results — never
		// silently dropped — because their sequence numbers sit *between*
		// already-dispatched ones, and the sequencer needs the space
		// gap-free. Only the contiguous undispatched tail is counted
		// without emission.
		defer func() {
			for _, s := range shards {
				close(s.jobs)
			}
		}()
		pending := make([]*shardJob, nShards)
		n := len(headers)
		for i := 0; i < n; i++ {
			if i%cfg.BatchSize == 0 {
				if err := ctx.Err(); err != nil {
					undispatched.Store(int64(n - i))
					cfg.Metrics.recordUndispatched(uint64(n - i))
					for si, j := range pending {
						if j != nil {
							shedJob(shards[si], j, err)
						}
					}
					return
				}
			}
			si := 0
			if nShards > 1 {
				si = shardOf(headers[i], nShards)
			}
			j := pending[si]
			if j == nil {
				j = shards[si].jobPool.Get().(*shardJob)
				pending[si] = j
			}
			j.seqs = append(j.seqs, uint64(i))
			j.hs = append(j.hs, headers[i])
			if len(j.hs) == cfg.BatchSize {
				pending[si] = nil
				if cfg.Overload == OverloadShed {
					select {
					case shards[si].jobs <- j:
					default:
						shedJob(shards[si], j, ErrShed)
					}
				} else {
					shards[si].jobs <- j
				}
			}
		}
		for si, j := range pending {
			if j == nil {
				continue
			}
			if cfg.Overload == OverloadShed {
				select {
				case shards[si].jobs <- j:
				default:
					shedJob(shards[si], j, ErrShed)
				}
			} else {
				shards[si].jobs <- j
			}
		}
	}()
	go func() {
		wg.Wait()
		close(results)
	}()

	st := Stats{Shards: nShards}
	d, describes := cl.(Describer)
	if describes {
		st.Algorithm, st.DegradationLevel = d.DescribeAlgorithm()
	}
	em := &emitter{st: &st, emit: emit}
	emitOne := em.one
	reorderHeld := cfg.Metrics.reorderHeldHist()

	if cfg.PreserveOrder {
		// Cross-shard sequencer: shards finish batches in any relative
		// order, but each result carries its arrival sequence number, so
		// one sliding ring restores global order — the same structure the
		// unsharded path uses, fed from many lanes.
		ring := newReorderRing(cfg.BatchSize)
		for out := range results {
			for _, r := range out.rs {
				ring.insert(r)
				if ring.held > st.MaxReorder {
					st.MaxReorder = ring.held
				}
				ring.drain(emitOne)
			}
			reorderHeld.Observe(uint64(ring.held))
			out.rs = out.rs[:0]
			out.home.Put(out)
		}
		if ring.held != 0 {
			return st, fmt.Errorf("engine: %d results stranded in the reorder buffer", ring.held)
		}
	} else {
		for out := range results {
			for _, r := range out.rs {
				emitOne(r)
			}
			out.rs = out.rs[:0]
			out.home.Put(out)
		}
	}
	if describes {
		// Re-sample after the last result drained: a hot-swap or rung
		// change that landed mid-run shows up as First != Final. The old
		// single pre-serving sample silently misattributed whole runs to
		// an algorithm that stopped serving moments in.
		st.FinalAlgorithm, st.FinalDegradationLevel = d.DescribeAlgorithm()
	}
	st.Panics = int(panics.Load())
	st.Canceled += int(undispatched.Load())
	st.ShardBusy = make([]time.Duration, nShards)
	for i, s := range shards {
		st.ShardBusy[i] = s.busy
	}

	switch {
	case em.err != nil:
		return st, em.err
	case ctx.Err() != nil:
		return st, fmt.Errorf("engine: run cut short, %d of %d packets canceled: %w",
			st.Canceled, len(headers), ctx.Err())
	case st.Panics > 0:
		return st, fmt.Errorf("engine: %d of %d packets failed with contained classifier panics",
			st.Panics, len(headers))
	}
	return st, nil
}
