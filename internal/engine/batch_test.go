package engine

import (
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/rules"
)

// countingBatcher implements BatchClassifier and records how work arrived
// (atomically: it is called from every worker).
type countingBatcher struct {
	inner      BatchClassifier
	batchCalls atomic.Int64
	scalar     atomic.Int64
}

func (c *countingBatcher) Classify(h rules.Header) int {
	c.scalar.Add(1)
	return c.inner.Classify(h)
}

func (c *countingBatcher) ClassifyBatch(hs []rules.Header, out []int) {
	c.batchCalls.Add(1)
	c.inner.ClassifyBatch(hs, out)
}

// TestBatchFastPathUsed proves the engine actually drives BatchClassifier
// implementations through ClassifyBatch — with correct answers and no
// scalar calls at all on a clean run.
func TestBatchFastPathUsed(t *testing.T) {
	rs, tree, headers := fixtures(t, 4000)
	cb := &countingBatcher{inner: tree}
	st, err := Run(cb, Config{Workers: 4, PreserveOrder: true, BatchSize: 64}, headers, func(r Result) {
		if want := rs.Match(r.Header); r.Match != want {
			t.Fatalf("packet %d: match %d, oracle %d", r.Seq, r.Match, want)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Packets != len(headers) {
		t.Errorf("packets = %d, want %d", st.Packets, len(headers))
	}
	if cb.batchCalls.Load() == 0 {
		t.Error("BatchClassifier was never used")
	}
	if n := cb.scalar.Load(); n != 0 {
		t.Errorf("engine fell back to %d scalar Classify calls on a clean run", n)
	}
}

// TestBatchSizesAgree runs the same trace at several batch sizes (including
// the per-packet baseline) and requires identical emission: same order,
// same matches, same stats totals.
func TestBatchSizesAgree(t *testing.T) {
	_, tree, headers := fixtures(t, 6000)
	collect := func(batch int) []int {
		matches := make([]int, 0, len(headers))
		var next uint64
		st, err := Run(tree, Config{Workers: 8, PreserveOrder: true, BatchSize: batch}, headers, func(r Result) {
			if r.Seq != next {
				t.Fatalf("batch %d: out of order, seq %d want %d", batch, r.Seq, next)
			}
			next++
			matches = append(matches, r.Match)
		})
		if err != nil {
			t.Fatalf("batch %d: %v", batch, err)
		}
		if st.Packets != len(headers) {
			t.Fatalf("batch %d: packets = %d", batch, st.Packets)
		}
		return matches
	}
	want := collect(1)
	for _, batch := range []int{3, 64, 1024} {
		got := collect(batch)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("batch %d: packet %d match %d, per-packet baseline %d", batch, i, got[i], want[i])
			}
		}
	}
}

// batchPanicky panics — in both paths — on headers with a marker source
// IP. ClassifyBatch panics as soon as it reaches a marked packet, like a
// real classifier bug would, so the engine must re-run the batch
// per-packet to attribute the panic.
type batchPanicky struct {
	inner BatchClassifier
}

const poisonIP = 0xDEADBEEF

func (p *batchPanicky) Classify(h rules.Header) int {
	if h.SrcIP == poisonIP {
		panic("poisoned header")
	}
	return p.inner.Classify(h)
}

func (p *batchPanicky) ClassifyBatch(hs []rules.Header, out []int) {
	for i, h := range hs {
		out[i] = p.Classify(h)
	}
}

// TestBatchPanicAttributedPerPacket is batch-granular panic isolation: a
// panic inside ClassifyBatch must cost exactly the poisoned packets their
// result — every innocent packet in the same batch still classifies, order
// is preserved, and Stats.Panics counts the poisoned packets exactly.
func TestBatchPanicAttributedPerPacket(t *testing.T) {
	rs, tree, headers := fixtures(t, 5000)
	poisoned := map[uint64]bool{}
	for i := 100; i < len(headers); i += 997 {
		headers[i].SrcIP = poisonIP
		poisoned[uint64(i)] = true
	}
	cl := &batchPanicky{inner: tree}
	base := runtime.NumGoroutine()
	var next uint64
	bad := 0
	st, err := Run(cl, Config{Workers: 4, PreserveOrder: true, BatchSize: 64}, headers, func(r Result) {
		if r.Seq != next {
			t.Fatalf("out of order: seq %d, want %d", r.Seq, next)
		}
		next++
		if poisoned[r.Seq] {
			var pe *PanicError
			if !errors.As(r.Err, &pe) {
				t.Fatalf("poisoned packet %d: err = %v, want PanicError", r.Seq, r.Err)
			}
			bad++
			return
		}
		if r.Err != nil {
			t.Fatalf("innocent packet %d lost to its batch's panic: %v", r.Seq, r.Err)
		}
		if want := rs.Match(r.Header); r.Match != want {
			t.Fatalf("packet %d: match %d, oracle %d", r.Seq, r.Match, want)
		}
	})
	if err == nil {
		t.Fatal("a run with contained panics must return an error")
	}
	waitNoLeaks(t, base)
	if bad != len(poisoned) || st.Panics != bad {
		t.Errorf("panics: %d poisoned, %d emitted with PanicError, stats %d", len(poisoned), bad, st.Panics)
	}
	if st.Packets+st.Panics != len(headers) {
		t.Errorf("accounting: %d + %d != %d", st.Packets, st.Panics, len(headers))
	}
}

// TestBatchShedAccounting: shedding happens at batch granularity, but the
// per-packet invariant must hold exactly — every packet is either
// classified or shed, never both, never neither.
func TestBatchShedAccounting(t *testing.T) {
	_, tree, headers := fixtures(t, 4096)
	slow := &faultinject.SlowClassifier{Inner: tree, EveryN: 1, Delay: 30 * time.Microsecond}
	base := runtime.NumGoroutine()
	shedSeen, okSeen := 0, 0
	st, err := Run(slow, Config{Workers: 1, Shards: 1, QueueDepth: 1, PreserveOrder: true, Overload: OverloadShed, BatchSize: 16},
		headers, func(r Result) {
			if errors.Is(r.Err, ErrShed) {
				shedSeen++
			} else if r.Err == nil {
				okSeen++
			}
		})
	if err != nil {
		t.Fatal(err)
	}
	waitNoLeaks(t, base)
	if st.Shed == 0 {
		t.Fatal("overloaded run shed nothing")
	}
	if st.Shed != shedSeen || st.Packets != okSeen {
		t.Errorf("stats/emission mismatch: %+v vs %d shed, %d ok", st, shedSeen, okSeen)
	}
	if st.Packets+st.Shed != len(headers) {
		t.Errorf("accounting: %d + %d != %d", st.Packets, st.Shed, len(headers))
	}
}

// TestOddBatchTail: input lengths that are not a multiple of BatchSize
// leave a short final batch; nothing may be lost or duplicated.
func TestOddBatchTail(t *testing.T) {
	_, tree, headers := fixtures(t, 1000)
	for _, n := range []int{1, 63, 64, 65, 999} {
		seen := make([]bool, n)
		st, err := Run(tree, Config{Workers: 3, PreserveOrder: true, BatchSize: 64}, headers[:n], func(r Result) {
			if seen[r.Seq] {
				t.Fatalf("n=%d: duplicate seq %d", n, r.Seq)
			}
			seen[r.Seq] = true
		})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if st.Packets != n {
			t.Fatalf("n=%d: packets = %d", n, st.Packets)
		}
		for i, s := range seen {
			if !s {
				t.Fatalf("n=%d: seq %d never emitted", n, i)
			}
		}
	}
}

// TestBatchSizeValidation pins the BatchSize bounds.
func TestBatchSizeValidation(t *testing.T) {
	_, tree, headers := fixtures(t, 10)
	if _, err := Run(tree, Config{Workers: 1, BatchSize: -1}, headers, func(Result) {}); err == nil {
		t.Error("negative batch size should fail")
	}
	if _, err := Run(tree, Config{Workers: 1, BatchSize: MaxBatchSize + 1}, headers, func(Result) {}); err == nil {
		t.Error("oversized batch size should fail")
	}
}
