// Package engine is a native Go classification runtime that mirrors the
// programming challenges of §3.2 of the paper with real goroutines instead
// of microengine threads: a dispatcher feeds packets to a pool of worker
// goroutines ("threads") through a bounded ring, workers classify
// concurrently, and a reorder stage restores arrival order using sequence
// numbers — the paper's third challenge, "maintaining packet ordering in
// spite of parallel processing ... using sequence numbers and/or strict
// thread ordering".
//
// The NP cycle model lives in internal/npsim; this package is the
// software-parallel counterpart used by applications that want to classify
// on a general-purpose host (goroutines approximate the NP's thread-level
// parallelism at far lower fidelity, but with identical semantics).
package engine

import (
	"fmt"
	"sync"

	"repro/internal/rules"
)

// Classifier is the lookup the engine parallelizes.
type Classifier interface {
	Classify(h rules.Header) int
}

// Config parameterizes the engine.
type Config struct {
	// Workers is the number of classification goroutines.
	Workers int
	// QueueDepth bounds the dispatch ring (back-pressure).
	QueueDepth int
	// PreserveOrder, when set, re-sequences results into arrival order
	// before they are emitted.
	PreserveOrder bool
}

// DefaultConfig runs 8 workers — one per hardware thread of a single
// microengine — with ordering on.
func DefaultConfig() Config {
	return Config{Workers: 8, QueueDepth: 256, PreserveOrder: true}
}

func (c *Config) fillDefaults() error {
	d := DefaultConfig()
	if c.Workers == 0 {
		c.Workers = d.Workers
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = d.QueueDepth
	}
	if c.Workers < 1 {
		return fmt.Errorf("engine: workers must be >= 1, got %d", c.Workers)
	}
	if c.QueueDepth < 1 {
		return fmt.Errorf("engine: queue depth must be >= 1, got %d", c.QueueDepth)
	}
	return nil
}

// Result is one classified packet: its arrival sequence number, the header,
// and the matched rule (−1 for none).
type Result struct {
	Seq    uint64
	Header rules.Header
	Match  int
}

// Stats reports one Run.
type Stats struct {
	// Packets processed.
	Packets int
	// MaxReorder is the largest number of results the reorder stage held
	// back waiting for an earlier sequence number (0 when ordering is
	// off or classification completed in order).
	MaxReorder int
}

// Run classifies every header, invoking emit exactly once per packet from
// a single goroutine. With PreserveOrder, emit sees results strictly in
// arrival order; otherwise in completion order. Run blocks until all
// packets are emitted.
func Run(cl Classifier, cfg Config, headers []rules.Header, emit func(Result)) (Stats, error) {
	if err := cfg.fillDefaults(); err != nil {
		return Stats{}, err
	}
	type job struct {
		seq uint64
		h   rules.Header
	}
	jobs := make(chan job, cfg.QueueDepth)
	results := make(chan Result, cfg.QueueDepth)

	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				results <- Result{Seq: j.seq, Header: j.h, Match: cl.Classify(j.h)}
			}
		}()
	}
	go func() {
		for i, h := range headers {
			jobs <- job{seq: uint64(i), h: h}
		}
		close(jobs)
		wg.Wait()
		close(results)
	}()

	st := Stats{}
	if !cfg.PreserveOrder {
		for r := range results {
			emit(r)
			st.Packets++
		}
		return st, nil
	}
	// Reorder stage: hold completed results until their predecessors
	// arrive, exactly like a sequence-numbered transmit stage on the NP.
	pending := make(map[uint64]Result)
	next := uint64(0)
	for r := range results {
		pending[r.Seq] = r
		if len(pending) > st.MaxReorder {
			st.MaxReorder = len(pending)
		}
		for {
			out, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			emit(out)
			st.Packets++
			next++
		}
	}
	if len(pending) != 0 {
		return st, fmt.Errorf("engine: %d results stranded in the reorder buffer", len(pending))
	}
	return st, nil
}
