// Package engine is a native Go classification runtime that mirrors the
// programming challenges of §3.2 of the paper with real goroutines instead
// of microengine threads: a dispatcher feeds packets to a pool of worker
// goroutines ("threads") through a bounded ring, workers classify
// concurrently, and a reorder stage restores arrival order using sequence
// numbers — the paper's third challenge, "maintaining packet ordering in
// spite of parallel processing ... using sequence numbers and/or strict
// thread ordering".
//
// Beyond the happy path, the engine is a hardened serving layer: a
// classifier panic is contained to the packet that triggered it and
// surfaced as a Result error instead of a crashed worker, a per-run
// context carries deadlines and cancellation, and overload can either
// exert back-pressure (block) or tail-drop with shed accounting — the
// software analogue of the NP dropping frames when the receive ring
// overflows.
//
// The NP cycle model lives in internal/npsim; this package is the
// software-parallel counterpart used by applications that want to classify
// on a general-purpose host (goroutines approximate the NP's thread-level
// parallelism at far lower fidelity, but with identical semantics).
package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/rules"
)

// Classifier is the lookup the engine parallelizes.
type Classifier interface {
	Classify(h rules.Header) int
}

// BatchClassifier is optionally implemented by classifiers with a batched
// fast path: ClassifyBatch classifies hs[i] into out[i] for every i, with
// exactly the same answers Classify would give. out must be at least as
// long as hs; implementations must not retain either slice. The engine
// dispatches whole batches to it, which amortizes per-packet dispatch cost
// and lets tree classifiers walk level-synchronously (every packet's
// pointer chase at one level before any packet advances to the next — the
// software analogue of the paper's explicit-depth guarantee). Classifiers
// without it are served by a per-packet loop fallback.
type BatchClassifier interface {
	Classifier
	ClassifyBatch(hs []rules.Header, out []int)
}

// PipelinedClassifier is optionally implemented by classifiers whose
// batched walk can run software-pipelined level stages (expcuts.Tree,
// and update.Manager when its live generation does): packets advance in
// interleaved groups so one group's lookups overlap the next group's
// next-level line fills. ClassifyBatchPipelined must give exactly the
// answers ClassifyBatch would; group and affine follow the semantics of
// Config.PipelineGroup and Config.PipelineAffine.
type PipelinedClassifier interface {
	BatchClassifier
	ClassifyBatchPipelined(hs []rules.Header, out []int, group int, affine bool)
}

// pipelined adapts a PipelinedClassifier to the BatchClassifier shape the
// serve loops consume, pinning the run's stage group size and affinity so
// every batch — including flow-cache miss sub-batches — takes the staged
// walk.
type pipelined struct {
	pc     PipelinedClassifier
	group  int
	affine bool
}

func (p pipelined) Classify(h rules.Header) int { return p.pc.Classify(h) }

func (p pipelined) ClassifyBatch(hs []rules.Header, out []int) {
	p.pc.ClassifyBatchPipelined(hs, out, p.group, p.affine)
}

// batcher resolves the effective batched path for a run: the pipelined
// stage walk when the config asks for it and the classifier supports it,
// otherwise the classifier's own ClassifyBatch (nil when it has none).
func (c *Config) batcher(cl Classifier) BatchClassifier {
	if c.PipelineGroup > 0 {
		if pc, ok := cl.(PipelinedClassifier); ok {
			return pipelined{pc: pc, group: c.PipelineGroup, affine: c.PipelineAffine}
		}
	}
	bc, _ := cl.(BatchClassifier)
	return bc
}

// PipelineAuto, as Config.PipelineGroup, selects a GOMAXPROCS-derived
// stage group size at run start (see AutoPipelineGroup).
const PipelineAuto = -1

// AutoPipelineGroup is the stage group size PipelineAuto resolves to: a
// full default batch per group on a single core (one wave of independent
// arena loads per level), shrinking as cores multiply — more concurrent
// shard walks already share the cache hierarchy, so each walk keeps its
// in-flight state smaller.
func AutoPipelineGroup() int {
	g := DefaultBatchSize / runtime.GOMAXPROCS(0)
	if g < 8 {
		g = 8
	}
	return g
}

// Describer is optionally implemented by classifiers that know which
// algorithm is live and how degraded it is (0 = best rung of a
// degradation ladder; higher = further down). update.Manager implements
// it; when the classifier handed to Run does, Stats carries the answer so
// callers can tell which rung actually served the run.
type Describer interface {
	DescribeAlgorithm() (algorithm string, degradationLevel int)
}

// OverloadPolicy selects what the dispatcher does when the ring is full.
type OverloadPolicy int

const (
	// OverloadBlock exerts back-pressure: the dispatcher waits for ring
	// space. No packet is ever dropped; ingestion slows to lookup speed.
	OverloadBlock OverloadPolicy = iota
	// OverloadShed tail-drops: a packet arriving at a full ring is shed
	// immediately — emitted with ErrShed and counted in Stats.Shed —
	// like an NP receive ring overflowing at line rate.
	OverloadShed
)

func (p OverloadPolicy) String() string {
	switch p {
	case OverloadBlock:
		return "block"
	case OverloadShed:
		return "shed"
	}
	return fmt.Sprintf("OverloadPolicy(%d)", int(p))
}

// Config parameterizes the engine.
type Config struct {
	// Workers is the number of classification goroutines.
	Workers int
	// QueueDepth bounds the dispatch ring (back-pressure).
	QueueDepth int
	// PreserveOrder, when set, re-sequences results into arrival order
	// before they are emitted.
	PreserveOrder bool
	// Overload selects block (default) or tail-drop shedding when the
	// dispatch ring is full. Note that OverloadShed combined with
	// PreserveOrder can grow the reorder buffer: shed markers complete
	// instantly and wait there for the slow packets that caused the
	// shedding. Heavy shedders should run unordered.
	Overload OverloadPolicy
	// BatchSize is how many packets one dispatch carries. Every channel
	// operation — dispatch, shed, result delivery — moves a whole batch,
	// so the per-packet synchronization cost is amortized by this factor.
	// 0 means DefaultBatchSize; 1 reproduces the per-packet dispatch of
	// the pre-batching engine (the baseline BenchmarkServe compares
	// against). Shedding and cancellation-overtake happen at batch
	// granularity; ordering, accounting and panic attribution stay exact
	// per packet.
	BatchSize int
	// Shards is the number of flow-affinity serving shards; 0 defaults to
	// runtime.GOMAXPROCS(0). With more than one shard (or with a flow
	// cache) the engine serves through its sharded path: packets are
	// dispatched by a 5-tuple flow hash so every flow lands on one shard,
	// each shard runs a private serving loop with private batch/result
	// pools (no cross-core mutable sharing on the hot path), and a single
	// cross-shard sequencer restores arrival order. Semantics — ordered
	// emission, shed/cancel accounting, per-packet panic attribution —
	// are identical to the unsharded path at any shard count; see
	// shard.go. Workers is ignored in sharded mode (each shard is one
	// serving loop, the way each microengine runs its own thread group).
	Shards int
	// FlowCacheFlows, when > 0, gives each shard a private exact-match
	// flow cache (slab LRU, internal/flowcache) of this many flows in
	// front of the classifier. Per-shard privacy means no cache
	// synchronization and no cross-core cache-line bouncing; flow-hash
	// dispatch guarantees all packets of a flow see the same shard's
	// cache. When the classifier exposes rule-set generations
	// (update.Manager), each shard invalidates its cache on generation
	// change and guarantees no batch mixes results from two generations.
	// 0 disables caching. Setting FlowCacheFlows forces the sharded path
	// even at Shards == 1.
	FlowCacheFlows int
	// Metrics, when non-nil, attaches the engine's observability block
	// (see NewMetrics): serving loops record per-shard counters and
	// histograms at batch granularity — never per packet, never with a
	// lock, never allocating. One Metrics may be shared across sequential
	// and concurrent runs; counters accumulate, which is what a scrape
	// endpoint wants. Nil disables instrumentation entirely at the cost
	// of one pointer test per batch.
	Metrics *Metrics
	// PipelineGroup enables software-pipelined level-stage classification
	// when the classifier implements PipelinedClassifier: every batch is
	// walked in interleaved groups of this many packets (see
	// expcuts.ClassifyBatchPipelined). 0 (the zero value) keeps the plain
	// level-synchronous ClassifyBatch; PipelineAuto (-1) derives the group
	// size from GOMAXPROCS at run start (AutoPipelineGroup); any other
	// negative value is rejected. Classifiers without a pipelined walk
	// serve exactly as before — the knob is a no-op for them.
	PipelineGroup int
	// PipelineAffine biases each pipelined group to one tree slice by
	// sorting the batch's walk order by root key chunk before the staged
	// walk (the multi-core analogue of per-microengine SRAM banking: a
	// shard's working set concentrates on one contiguous region of every
	// tree level). Requires PipelineGroup to be enabled.
	PipelineAffine bool
	// TenantPartitions bounds how many tenants may hold a resident flow
	// cache partition per shard on the multi-tenant path (RunTenants):
	// each resident tenant gets its own FlowCacheFlows-flow cache, and at
	// the bound the least recently served tenant's partition is reclaimed
	// (a tenant-evicted event, cold misses for the victim, never a
	// correctness change). 0 means DefaultTenantPartitions. Ignored by
	// RunContext.
	TenantPartitions int
}

// DefaultBatchSize is the packets-per-dispatch default. 64 packets is
// large enough to make channel operations disappear from profiles and
// small enough that per-worker batch buffers stay inside the L1 cache.
const DefaultBatchSize = 64

// MaxBatchSize bounds BatchSize; beyond this the batch buffers stop
// fitting caches and shed/cancel granularity gets needlessly coarse.
const MaxBatchSize = 1 << 16

// DefaultConfig runs 8 workers — one per hardware thread of a single
// microengine — with ordering on, blocking back-pressure, and 64-packet
// batches.
func DefaultConfig() Config {
	return Config{Workers: 8, QueueDepth: 256, PreserveOrder: true, BatchSize: DefaultBatchSize}
}

func (c *Config) fillDefaults() error {
	d := DefaultConfig()
	if c.Workers == 0 {
		c.Workers = d.Workers
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = d.QueueDepth
	}
	if c.BatchSize == 0 {
		c.BatchSize = d.BatchSize
	}
	if c.Workers < 1 {
		return fmt.Errorf("engine: workers must be >= 1, got %d", c.Workers)
	}
	if c.QueueDepth < 1 {
		return fmt.Errorf("engine: queue depth must be >= 1, got %d", c.QueueDepth)
	}
	if c.BatchSize < 1 || c.BatchSize > MaxBatchSize {
		return fmt.Errorf("engine: batch size %d out of [1,%d]", c.BatchSize, MaxBatchSize)
	}
	if c.Overload != OverloadBlock && c.Overload != OverloadShed {
		return fmt.Errorf("engine: unknown overload policy %d", c.Overload)
	}
	if c.Shards == 0 {
		c.Shards = runtime.GOMAXPROCS(0)
	}
	if c.Shards < 1 {
		return fmt.Errorf("engine: shards must be >= 1, got %d", c.Shards)
	}
	if c.FlowCacheFlows < 0 {
		return fmt.Errorf("engine: flow cache flows must be >= 0, got %d", c.FlowCacheFlows)
	}
	if c.PipelineGroup == PipelineAuto {
		c.PipelineGroup = AutoPipelineGroup()
	}
	if c.PipelineGroup < 0 {
		return fmt.Errorf("engine: pipeline group %d must be >= 0 (or PipelineAuto)", c.PipelineGroup)
	}
	if c.PipelineAffine && c.PipelineGroup == 0 {
		return fmt.Errorf("engine: PipelineAffine requires PipelineGroup to be enabled")
	}
	if c.TenantPartitions == 0 {
		c.TenantPartitions = DefaultTenantPartitions
	}
	if c.TenantPartitions < 1 {
		return fmt.Errorf("engine: tenant partitions must be >= 1, got %d", c.TenantPartitions)
	}
	return nil
}

// ErrShed marks a Result dropped by the OverloadShed policy before it
// reached a worker.
var ErrShed = errors.New("engine: packet shed under overload")

// PanicError wraps a classifier panic contained by a worker. The packet
// that triggered it gets a Result with Err set to a *PanicError; every
// other packet is unaffected.
type PanicError struct {
	// Value is the recovered panic value.
	Value any
	// Stack is the worker stack at recovery time.
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("engine: classifier panicked: %v", e.Value)
}

// Result is one classified packet: its arrival sequence number, the header,
// and the matched rule (−1 for none). Err is non-nil when the packet was
// not classified: *PanicError for a contained classifier panic, ErrShed
// for an overload drop, or the context error for a packet overtaken by
// cancellation; Match is −1 in all error cases.
type Result struct {
	Seq    uint64
	Header rules.Header
	Match  int
	Err    error
}

// Stats reports one Run.
type Stats struct {
	// Packets successfully classified and emitted (Err == nil).
	Packets int
	// Shed packets tail-dropped by the overload policy.
	Shed int
	// Panics is the number of classifier panics contained by workers.
	Panics int
	// Canceled packets: those cut off by context cancellation — either
	// never dispatched or overtaken in the ring.
	Canceled int
	// EmitPanics counts emit callback panics that were contained (at most
	// one: emit is not called again after it panics).
	EmitPanics int
	// MaxReorder is the largest number of results the reorder stage held
	// back waiting for an earlier sequence number (0 when ordering is
	// off or classification completed in order).
	MaxReorder int
	// Algorithm and DegradationLevel are filled when the classifier
	// implements Describer: the algorithm that served this run and its
	// rung on the degradation ladder (0 = best). Algorithm is empty for
	// classifiers that don't describe themselves. This pair is sampled as
	// serving starts.
	Algorithm        string
	DegradationLevel int
	// FinalAlgorithm and FinalDegradationLevel re-sample the Describer
	// after the last result is emitted. They differ from Algorithm /
	// DegradationLevel exactly when a hot-swap or rung change landed
	// while the run was serving; callers that need one label for the run
	// should treat a first/final mismatch as "mixed".
	FinalAlgorithm        string
	FinalDegradationLevel int
	// Shards is how many flow-affinity shards served the run (1 when the
	// legacy worker-pool path served it).
	Shards int
	// ShardBusy is each shard's cumulative classification busy time
	// (sharded path only; nil otherwise). On a host with fewer cores than
	// shards, packets/max(ShardBusy) is the critical-path throughput the
	// shard layout would sustain with one core per shard — the projection
	// cmd/benchjson reports alongside measured wall-clock numbers.
	ShardBusy []time.Duration
}

// Errors is the total number of error results (shed + panicked + canceled).
func (s Stats) Errors() int { return s.Shed + s.Panics + s.Canceled }

// Run classifies every header, invoking emit exactly once per packet from
// a single goroutine. With PreserveOrder, emit sees results strictly in
// arrival order; otherwise in completion order. Run blocks until all
// packets are emitted.
func Run(cl Classifier, cfg Config, headers []rules.Header, emit func(Result)) (Stats, error) {
	return RunContext(context.Background(), cl, cfg, headers, emit)
}

// RunContext is Run with a deadline/cancellation context. When ctx is
// canceled mid-run, in-flight packets drain with Err set to the context
// error, undispatched packets are counted in Stats.Canceled without being
// emitted, and RunContext returns ctx's error. Regardless of how the run
// ends, no goroutine outlives the call.
//
// Failure containment: a classifier panic yields a Result with a
// *PanicError for that packet only. If emit itself panics, the engine
// stops calling it, drains the workers so nothing leaks, and reports the
// panic in the returned error.
func RunContext(ctx context.Context, cl Classifier, cfg Config, headers []rules.Header, emit func(Result)) (Stats, error) {
	if err := cfg.fillDefaults(); err != nil {
		return Stats{}, err
	}
	if cfg.Shards > 1 || cfg.FlowCacheFlows > 0 {
		return runSharded(ctx, cl, cfg, headers, emit)
	}
	// A job is one dispatched batch: the arrival sequence number of its
	// first packet and a sub-slice of headers (no copy). One channel
	// operation moves BatchSize packets.
	type job struct {
		seq uint64
		hs  []rules.Header
	}
	jobs := make(chan job, cfg.QueueDepth)
	// results carries one batch per dispatched-or-shed job. The main loop
	// below drains it unconditionally until close, which is what
	// guarantees workers can always deliver and never leak. Batch result
	// buffers are recycled through pool: the steady state allocates
	// nothing per batch.
	results := make(chan *resultBatch, cfg.QueueDepth)
	pool := sync.Pool{New: func() any {
		return &resultBatch{rs: make([]Result, 0, cfg.BatchSize)}
	}}
	bc := cfg.batcher(cl)

	var wg sync.WaitGroup
	var panics, busyNanos atomic.Int64
	// The unsharded pipeline is one logical shard: all workers record
	// into metrics slot 0 (per-batch atomic adds, contention-tolerant).
	sm := cfg.Metrics.shard(0)
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Per-worker match buffer for the BatchClassifier fast path;
			// allocated once per worker, not per batch.
			var matches []int
			if bc != nil {
				matches = make([]int, cfg.BatchSize)
			}
			var busy time.Duration
			for j := range jobs {
				queued := len(jobs)
				out := pool.Get().(*resultBatch)
				out.rs = out.rs[:len(j.hs)]
				if err := ctx.Err(); err != nil {
					// Cancellation overtook this batch in the ring:
					// fail it fast instead of classifying.
					for i, h := range j.hs {
						out.rs[i] = Result{Seq: j.seq + uint64(i), Header: h, Match: -1, Err: err}
					}
					sm.addCanceled(uint64(len(j.hs)))
				} else {
					start := time.Now()
					p := classifyBatch(cl, bc, j.seq, j.hs, out.rs, matches)
					d := time.Since(start)
					panics.Add(p)
					busy += d
					sm.recordBatch(len(j.hs), d, queued)
					sm.addPanics(uint64(p))
				}
				results <- out
			}
			busyNanos.Add(int64(busy))
		}()
	}

	var undispatched atomic.Int64
	go func() {
		defer close(jobs)
		n := len(headers)
		for i := 0; i < n; i += cfg.BatchSize {
			if ctx.Err() != nil {
				undispatched.Store(int64(n - i))
				cfg.Metrics.recordUndispatched(uint64(n - i))
				return
			}
			end := i + cfg.BatchSize
			if end > n {
				end = n
			}
			j := job{seq: uint64(i), hs: headers[i:end]}
			if cfg.Overload == OverloadShed {
				select {
				case jobs <- j:
				default:
					// Ring full: tail-drop the whole batch. Delivering
					// the shed markers through results keeps the
					// sequence space gap-free for the reorder stage.
					out := pool.Get().(*resultBatch)
					out.rs = out.rs[:len(j.hs)]
					for k, h := range j.hs {
						out.rs[k] = Result{Seq: j.seq + uint64(k), Header: h, Match: -1, Err: ErrShed}
					}
					sm.addShed(uint64(len(j.hs)))
					results <- out
				}
				continue
			}
			jobs <- j
		}
	}()
	go func() {
		wg.Wait()
		close(results)
	}()

	st := Stats{Shards: 1}
	d, describes := cl.(Describer)
	if describes {
		st.Algorithm, st.DegradationLevel = d.DescribeAlgorithm()
	}
	em := &emitter{st: &st, emit: emit}
	emitOne := em.one
	reorderHeld := cfg.Metrics.reorderHeldHist()

	if cfg.PreserveOrder {
		// Reorder stage: hold completed results until their predecessors
		// arrive, exactly like a sequence-numbered transmit stage on the
		// NP. The buffer is a sliding ring indexed by sequence number —
		// insertion and the in-order drain are array operations with no
		// hashing and no steady-state allocation (the ring grows, rarely,
		// only when shedding under PreserveOrder lets the dispatcher run
		// far ahead of the slowest worker).
		ring := newReorderRing(cfg.BatchSize)
		for out := range results {
			for _, r := range out.rs {
				ring.insert(r)
				if ring.held > st.MaxReorder {
					st.MaxReorder = ring.held
				}
				ring.drain(emitOne)
			}
			reorderHeld.Observe(uint64(ring.held))
			out.rs = out.rs[:0]
			pool.Put(out)
		}
		if ring.held != 0 {
			return st, fmt.Errorf("engine: %d results stranded in the reorder buffer", ring.held)
		}
	} else {
		for out := range results {
			for _, r := range out.rs {
				emitOne(r)
			}
			out.rs = out.rs[:0]
			pool.Put(out)
		}
	}
	if describes {
		// Re-sampled after the last result drained so a mid-run hot-swap
		// or rung change is visible as Algorithm != FinalAlgorithm.
		st.FinalAlgorithm, st.FinalDegradationLevel = d.DescribeAlgorithm()
	}
	st.Panics = int(panics.Load())
	st.Canceled += int(undispatched.Load())
	// The unsharded pipeline is one logical shard: its busy entry is the
	// summed classification time of all its workers, so the scaling
	// experiment can compare busy-time across shard counts uniformly.
	st.ShardBusy = []time.Duration{time.Duration(busyNanos.Load())}

	switch {
	case em.err != nil:
		return st, em.err
	case ctx.Err() != nil:
		return st, fmt.Errorf("engine: run cut short, %d of %d packets canceled: %w",
			st.Canceled, len(headers), ctx.Err())
	case st.Panics > 0:
		return st, fmt.Errorf("engine: %d of %d packets failed with contained classifier panics",
			st.Panics, len(headers))
	}
	return st, nil
}

// emitter serializes result delivery for both serving paths: it tallies
// the per-outcome stats and contains an emit-callback panic (after which
// emit is never called again, but results keep draining so no goroutine
// leaks). It is used from the single emission goroutine only.
type emitter struct {
	st   *Stats
	emit func(Result)
	err  error
}

func (e *emitter) one(r Result) {
	switch {
	case r.Err == nil:
		e.st.Packets++
	case errors.Is(r.Err, ErrShed):
		e.st.Shed++
	case isPanicErr(r.Err):
		// counted via the panics atomic by the serving path
	default:
		e.st.Canceled++
	}
	if e.err != nil {
		return // emit already panicked once; never call it again
	}
	defer func() {
		if p := recover(); p != nil {
			e.st.EmitPanics++
			e.err = fmt.Errorf("engine: emit panicked on packet %d: %v", r.Seq, p)
		}
	}()
	e.emit(r)
}

// resultBatch is one batch of results; instances cycle through a sync.Pool.
// home, set by the sharded path, is the owning shard's pool so the
// emission loop can recycle a batch back to the shard that produced it
// (the unsharded path recycles into its single run-local pool and leaves
// home nil).
type resultBatch struct {
	rs   []Result
	home *sync.Pool
	// tenant and si carry the multi-tenant path's batch attribution (every
	// tenant batch is single-tenant by construction); the single-table
	// paths leave them zero.
	tenant uint32
	si     int
}

// classifyBatch fills rs with the results for one batch, returning how
// many packets failed with contained panics. The BatchClassifier fast
// path classifies the whole batch in one call; if that call panics, the
// batch is re-run packet-by-packet so the panic is attributed to exactly
// the packet(s) that triggered it and every innocent packet still gets
// its answer — panic isolation at batch granularity never costs more
// than the per-packet path would have.
func classifyBatch(cl Classifier, bc BatchClassifier, seq uint64, hs []rules.Header, rs []Result, matches []int) int64 {
	if bc != nil && classifyBatchContained(bc, hs, matches[:len(hs)]) {
		for i, h := range hs {
			rs[i] = Result{Seq: seq + uint64(i), Header: h, Match: matches[i]}
		}
		return 0
	}
	var panicked int64
	for i, h := range hs {
		r := classifyOne(cl, seq+uint64(i), h)
		if r.Err != nil {
			panicked++
		}
		rs[i] = r
	}
	return panicked
}

// classifyBatchContained runs the batched lookup with panic containment,
// reporting whether it completed. A false return means some packet in the
// batch panicked the classifier; the caller falls back to the per-packet
// path for attribution.
func classifyBatchContained(bc BatchClassifier, hs []rules.Header, out []int) (ok bool) {
	defer func() {
		if recover() != nil {
			ok = false
		}
	}()
	bc.ClassifyBatch(hs, out)
	return true
}

// classifyOne runs one lookup with panic containment: a panicking
// classifier costs its packet, not the worker.
func classifyOne(cl Classifier, seq uint64, h rules.Header) (r Result) {
	defer func() {
		if p := recover(); p != nil {
			r = Result{Seq: seq, Header: h, Match: -1,
				Err: &PanicError{Value: p, Stack: debug.Stack()}}
		}
	}()
	return Result{Seq: seq, Header: h, Match: cl.Classify(h)}
}

func isPanicErr(err error) bool {
	var pe *PanicError
	return errors.As(err, &pe)
}
