package engine

import (
	"math/rand"
	"testing"
)

// drainAll collects everything currently drainable.
func drainAll(g *reorderRing) []uint64 {
	var out []uint64
	g.drain(func(r Result) { out = append(out, r.Seq) })
	return out
}

func TestReorderRingInOrder(t *testing.T) {
	g := newReorderRing(4)
	for s := uint64(0); s < 20; s++ {
		g.insert(Result{Seq: s})
		got := drainAll(g)
		if len(got) != 1 || got[0] != s {
			t.Fatalf("seq %d: drained %v", s, got)
		}
	}
	if g.held != 0 {
		t.Errorf("held = %d after full drain", g.held)
	}
}

func TestReorderRingOutOfOrderWithinWindow(t *testing.T) {
	g := newReorderRing(4) // capacity 8
	// Arrivals 3,1,2,0 then 4..7 reversed.
	for _, s := range []uint64{3, 1, 2} {
		g.insert(Result{Seq: s})
		if got := drainAll(g); len(got) != 0 {
			t.Fatalf("drained %v before seq 0 arrived", got)
		}
	}
	if g.held != 3 {
		t.Errorf("held = %d, want 3", g.held)
	}
	g.insert(Result{Seq: 0})
	if got := drainAll(g); len(got) != 4 || got[0] != 0 || got[3] != 3 {
		t.Fatalf("drained %v, want [0 1 2 3]", got)
	}
	for s := uint64(7); s >= 5; s-- {
		g.insert(Result{Seq: s})
	}
	g.insert(Result{Seq: 4})
	if got := drainAll(g); len(got) != 4 || got[0] != 4 || got[3] != 7 {
		t.Fatalf("drained %v, want [4 5 6 7]", got)
	}
}

// TestReorderRingGrowth inserts a result far beyond the window (the
// shed-under-order scenario) and checks occupants survive the re-index.
func TestReorderRingGrowth(t *testing.T) {
	g := newReorderRing(2) // capacity 4
	g.insert(Result{Seq: 1})
	g.insert(Result{Seq: 2})
	// Seq 40 is far outside [0, 4): the ring must double until it fits
	// while keeping 1 and 2 where seq 0 can still release them.
	g.insert(Result{Seq: 40})
	if len(g.slots) < 41 {
		t.Fatalf("capacity %d after inserting seq 40", len(g.slots))
	}
	if got := drainAll(g); len(got) != 0 {
		t.Fatalf("drained %v with seq 0 missing", got)
	}
	g.insert(Result{Seq: 0})
	if got := drainAll(g); len(got) != 3 || got[0] != 0 || got[1] != 1 || got[2] != 2 {
		t.Fatalf("drained %v, want [0 1 2]", got)
	}
	if g.held != 1 {
		t.Errorf("held = %d, want 1 (seq 40 still waiting)", g.held)
	}
}

// TestReorderRingRandomPermutations stress-drains random arrival orders:
// emission must always be 0..n-1 regardless of arrival permutation.
func TestReorderRingRandomPermutations(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(500)
		perm := rng.Perm(n)
		g := newReorderRing(8)
		var emitted []uint64
		for _, s := range perm {
			g.insert(Result{Seq: uint64(s)})
			g.drain(func(r Result) { emitted = append(emitted, r.Seq) })
		}
		if len(emitted) != n {
			t.Fatalf("trial %d: emitted %d of %d", trial, len(emitted), n)
		}
		for i, s := range emitted {
			if s != uint64(i) {
				t.Fatalf("trial %d: position %d got seq %d", trial, i, s)
			}
		}
		if g.held != 0 {
			t.Fatalf("trial %d: held = %d", trial, g.held)
		}
	}
}
