package engine

import (
	"math/rand"
	"testing"
)

// drainAll collects everything currently drainable.
func drainAll(g *reorderRing) []uint64 {
	var out []uint64
	g.drain(func(r Result) { out = append(out, r.Seq) })
	return out
}

func TestReorderRingInOrder(t *testing.T) {
	g := newReorderRing(4)
	for s := uint64(0); s < 20; s++ {
		g.insert(Result{Seq: s})
		got := drainAll(g)
		if len(got) != 1 || got[0] != s {
			t.Fatalf("seq %d: drained %v", s, got)
		}
	}
	if g.held != 0 {
		t.Errorf("held = %d after full drain", g.held)
	}
}

func TestReorderRingOutOfOrderWithinWindow(t *testing.T) {
	g := newReorderRing(4) // capacity 8
	// Arrivals 3,1,2,0 then 4..7 reversed.
	for _, s := range []uint64{3, 1, 2} {
		g.insert(Result{Seq: s})
		if got := drainAll(g); len(got) != 0 {
			t.Fatalf("drained %v before seq 0 arrived", got)
		}
	}
	if g.held != 3 {
		t.Errorf("held = %d, want 3", g.held)
	}
	g.insert(Result{Seq: 0})
	if got := drainAll(g); len(got) != 4 || got[0] != 0 || got[3] != 3 {
		t.Fatalf("drained %v, want [0 1 2 3]", got)
	}
	for s := uint64(7); s >= 5; s-- {
		g.insert(Result{Seq: s})
	}
	g.insert(Result{Seq: 4})
	if got := drainAll(g); len(got) != 4 || got[0] != 4 || got[3] != 7 {
		t.Fatalf("drained %v, want [4 5 6 7]", got)
	}
}

// TestReorderRingGrowth inserts a result far beyond the window (the
// shed-under-order scenario) and checks occupants survive the re-index.
func TestReorderRingGrowth(t *testing.T) {
	g := newReorderRing(2) // capacity 4
	g.insert(Result{Seq: 1})
	g.insert(Result{Seq: 2})
	// Seq 40 is far outside [0, 4): the ring must double until it fits
	// while keeping 1 and 2 where seq 0 can still release them.
	g.insert(Result{Seq: 40})
	if len(g.slots) < 41 {
		t.Fatalf("capacity %d after inserting seq 40", len(g.slots))
	}
	if got := drainAll(g); len(got) != 0 {
		t.Fatalf("drained %v with seq 0 missing", got)
	}
	g.insert(Result{Seq: 0})
	if got := drainAll(g); len(got) != 3 || got[0] != 0 || got[1] != 1 || got[2] != 2 {
		t.Fatalf("drained %v, want [0 1 2]", got)
	}
	if g.held != 1 {
		t.Errorf("held = %d, want 1 (seq 40 still waiting)", g.held)
	}
}

// TestReorderRingGrowAtWrapBoundaryWithSlotsInFlight pins the exact
// power-of-two boundary of the grow trigger, in a window that has
// already wrapped the array many times. With next = 1020 and capacity 8,
// the live window [1020, 1028) wraps the mask (1020&7 = 4, 1027&7 = 3):
// in-flight slots sit on both sides of the array seam, and a result at
// exactly next+capacity must grow precisely once and re-index every
// occupant to its new-mask slot. An off-by-one in the trigger (> for >=)
// would overwrite the in-flight slot at 1020&7 with seq 1028; a re-index
// by old position instead of seq&newMask would scatter the wrapped
// occupants.
func TestReorderRingGrowAtWrapBoundaryWithSlotsInFlight(t *testing.T) {
	g := newReorderRing(4) // capacity 8
	var advanced uint64
	for s := uint64(0); s < 1020; s++ {
		g.insert(Result{Seq: s})
		g.drain(func(Result) { advanced++ })
	}
	if advanced != 1020 || g.next != 1020 || len(g.slots) != 8 {
		t.Fatalf("setup: advanced %d, next %d, capacity %d", advanced, g.next, len(g.slots))
	}
	// In-flight slots on both sides of the wrap seam, window start absent.
	for _, s := range []uint64{1021, 1023, 1027} {
		g.insert(Result{Seq: s})
	}
	// Exactly next+capacity: the smallest seq that no longer fits. One
	// doubling makes the window [1020, 1036) and every occupant must move
	// to seq&15.
	g.insert(Result{Seq: 1028})
	if len(g.slots) != 16 {
		t.Fatalf("capacity %d after boundary insert, want exactly 16", len(g.slots))
	}
	if g.held != 4 {
		t.Fatalf("held = %d after boundary insert, want 4", g.held)
	}
	for _, s := range []uint64{1021, 1023, 1027, 1028} {
		if !g.present[s&15] || g.slots[s&15].Seq != s {
			t.Fatalf("seq %d not at its new-mask slot after grow", s)
		}
	}
	if got := drainAll(g); len(got) != 0 {
		t.Fatalf("drained %v with window start 1020 still missing", got)
	}
	// Backfill and confirm a gapless in-order drain of the whole window.
	for _, s := range []uint64{1020, 1022, 1024, 1025, 1026} {
		g.insert(Result{Seq: s})
	}
	got := drainAll(g)
	if len(got) != 9 {
		t.Fatalf("drained %d results, want 9: %v", len(got), got)
	}
	for i, s := range got {
		if s != 1020+uint64(i) {
			t.Fatalf("position %d: seq %d, want %d", i, s, 1020+uint64(i))
		}
	}
	if g.held != 0 || g.next != 1029 {
		t.Errorf("held %d next %d after full drain, want 0 and 1029", g.held, g.next)
	}
}

// TestReorderRingRandomPermutations stress-drains random arrival orders:
// emission must always be 0..n-1 regardless of arrival permutation.
func TestReorderRingRandomPermutations(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(500)
		perm := rng.Perm(n)
		g := newReorderRing(8)
		var emitted []uint64
		for _, s := range perm {
			g.insert(Result{Seq: uint64(s)})
			g.drain(func(r Result) { emitted = append(emitted, r.Seq) })
		}
		if len(emitted) != n {
			t.Fatalf("trial %d: emitted %d of %d", trial, len(emitted), n)
		}
		for i, s := range emitted {
			if s != uint64(i) {
				t.Fatalf("trial %d: position %d got seq %d", trial, i, s)
			}
		}
		if g.held != 0 {
			t.Fatalf("trial %d: held = %d", trial, g.held)
		}
	}
}
