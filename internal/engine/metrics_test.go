package engine

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/obs"
	"repro/internal/rules"
)

// collect gathers a Metrics snapshot into a name+labels -> value map for
// counters/gauges and a separate map for histogram snapshots.
func collect(m *Metrics) (map[string]float64, map[string]obs.HistSnapshot) {
	vals := map[string]float64{}
	hists := map[string]obs.HistSnapshot{}
	m.Collect(func(s obs.Sample) {
		key := s.Name
		for _, l := range s.Labels {
			key += "{" + l.Key + "=" + l.Value + "}"
		}
		if s.Hist != nil {
			hists[key] = *s.Hist
			return
		}
		vals[key] = s.Value
	})
	return vals, hists
}

// TestMetricsAccountAllPackets: on both serving paths, the per-shard
// packet counters must sum to exactly the packets offered, busy time
// must be non-zero, and the histograms must have observed every batch.
func TestMetricsAccountAllPackets(t *testing.T) {
	_, tree, headers := fixtures(t, 4096)
	for _, cfg := range []Config{
		{Workers: 4, BatchSize: 32, PreserveOrder: true, Metrics: NewMetrics(8)},
		{Shards: 3, BatchSize: 32, FlowCacheFlows: 128, PreserveOrder: true, Metrics: NewMetrics(8)},
	} {
		st, err := Run(tree, cfg, headers, func(Result) {})
		if err != nil {
			t.Fatalf("%+v: %v", cfg, err)
		}
		vals, hists := collect(cfg.Metrics)
		var packets, batches, busy float64
		for k, v := range vals {
			switch {
			case strings.HasPrefix(k, "pc_engine_shard_packets_total"):
				packets += v
			case strings.HasPrefix(k, "pc_engine_shard_batches_total"):
				batches += v
			case strings.HasPrefix(k, "pc_engine_shard_busy_ns_total"):
				busy += v
			}
		}
		if int(packets) != len(headers) || st.Packets != len(headers) {
			t.Errorf("%+v: metrics count %v packets, want %d", cfg, packets, len(headers))
		}
		wantBatches := (len(headers) + cfg.BatchSize - 1) / cfg.BatchSize
		if int(batches) < wantBatches {
			t.Errorf("%+v: %v batches recorded, want >= %d", cfg, batches, wantBatches)
		}
		if busy <= 0 {
			t.Errorf("%+v: busy_ns not recorded", cfg)
		}
		var fill uint64
		for k, h := range hists {
			if strings.HasPrefix(k, "pc_engine_batch_fill") {
				fill += h.Sum
			}
		}
		if int(fill) != len(headers) {
			t.Errorf("%+v: batch_fill sums to %d packets, want %d", cfg, fill, len(headers))
		}
		if _, ok := hists["pc_engine_reorder_held"]; !ok {
			t.Errorf("%+v: reorder_held histogram missing", cfg)
		}
	}
}

// TestMetricsFlowCacheAndEvents: with heavy flow reuse the cache
// counters must show hits, the derived ratio must land in (0,1], and a
// mid-run generation bump must record a cache-invalidate event in the
// attached flight recorder.
func TestMetricsFlowCacheAndEvents(t *testing.T) {
	_, _, headers := fixtures(t, 2048)
	cl := &genClassifier{}
	trace := append(append([]rules.Header(nil), headers...), headers...)
	m := NewMetrics(4)
	ring := obs.NewRing(64)
	m.SetEvents(ring)
	// QueueDepth 1 keeps classification at most a few batches ahead of
	// emission, so a bump at the first emitted result is guaranteed to
	// land while most batches are still unclassified — the invalidation
	// must fire on every shard.
	bumped := false
	_, err := Run(cl, Config{Shards: 2, FlowCacheFlows: 4096, BatchSize: 64, QueueDepth: 1, PreserveOrder: true, Metrics: m},
		trace, func(Result) {
			if !bumped {
				cl.gen.Add(1)
				bumped = true
			}
		})
	if err != nil {
		t.Fatal(err)
	}
	vals, _ := collect(m)
	var hits, misses float64
	ratioSeen := false
	for k, v := range vals {
		switch {
		case strings.HasPrefix(k, "pc_flowcache_hits_total"):
			hits += v
		case strings.HasPrefix(k, "pc_flowcache_misses_total"):
			misses += v
		case strings.HasPrefix(k, "pc_flowcache_hit_ratio"):
			ratioSeen = true
			if v <= 0 || v > 1 {
				t.Errorf("%s = %v outside (0,1]", k, v)
			}
		}
	}
	if hits == 0 {
		t.Error("repeated trace recorded no flow-cache hits")
	}
	if misses == 0 {
		t.Error("cold flows recorded no misses")
	}
	if !ratioSeen {
		t.Error("hit ratio gauge missing")
	}
	invalidations := uint64(0)
	for _, kc := range ring.KindCounts() {
		if kc.Kind == obs.EventCacheInvalidate {
			invalidations = kc.Count
		}
	}
	if invalidations == 0 {
		t.Error("generation bump recorded no cache-invalidate events")
	}
}

// TestMetricsShedCanceledPanics: the failure-path counters must agree
// with Stats on both serving paths.
func TestMetricsShedCanceledPanics(t *testing.T) {
	_, tree, headers := fixtures(t, 4096)

	// Shed: tiny ring, dawdling classifier, tail-drop policy.
	slow := &faultinject.SlowClassifier{Inner: tree, EveryN: 1, Delay: 30 * time.Microsecond}
	for _, cfg := range []Config{
		{Workers: 2, QueueDepth: 1, BatchSize: 16, Overload: OverloadShed, Metrics: NewMetrics(8)},
		{Shards: 4, QueueDepth: 1, BatchSize: 16, Overload: OverloadShed, Metrics: NewMetrics(8)},
	} {
		st, err := Run(slow, cfg, headers, func(Result) {})
		if err != nil {
			t.Fatalf("%+v: %v", cfg, err)
		}
		vals, _ := collect(cfg.Metrics)
		var shed float64
		for k, v := range vals {
			if strings.HasPrefix(k, "pc_engine_shard_shed_total") {
				shed += v
			}
		}
		if int(shed) != st.Shed {
			t.Errorf("%+v: metrics shed %v, Stats.Shed %d", cfg, shed, st.Shed)
		}
	}

	// Panics: per-packet containment counted per shard.
	panicky := &faultinject.PanickyClassifier{Inner: tree, EveryN: 97}
	m := NewMetrics(8)
	st, err := Run(panicky, Config{Shards: 4, Metrics: m}, headers, func(Result) {})
	if err == nil {
		t.Fatal("expected a contained-panics run error")
	}
	vals, _ := collect(m)
	var panics float64
	for k, v := range vals {
		if strings.HasPrefix(k, "pc_engine_shard_panics_total") {
			panics += v
		}
	}
	if int(panics) != st.Panics || st.Panics == 0 {
		t.Errorf("metrics panics %v, Stats.Panics %d", panics, st.Panics)
	}

	// Canceled: a pre-canceled context cancels everything; emitted
	// cancels plus the undispatched tail must cover the whole trace.
	m = NewMetrics(8)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	st, err = RunContext(ctx, tree, Config{Shards: 4, Metrics: m}, headers, func(Result) {})
	if err == nil {
		t.Fatal("expected a cancellation error")
	}
	vals, _ = collect(m)
	var canceled float64
	for k, v := range vals {
		if strings.HasPrefix(k, "pc_engine_shard_canceled_total") || k == "pc_engine_undispatched_total" {
			canceled += v
		}
	}
	if int(canceled) != st.Canceled || st.Canceled != len(headers) {
		t.Errorf("metrics canceled %v, Stats.Canceled %d, offered %d",
			canceled, st.Canceled, len(headers))
	}
}

// TestMetricsAccumulateAcrossRuns: one Metrics attached to two runs must
// report their sum — the monotonic-counter contract a scrape endpoint
// relies on.
func TestMetricsAccumulateAcrossRuns(t *testing.T) {
	_, tree, headers := fixtures(t, 1024)
	m := NewMetrics(4)
	cfg := Config{Shards: 2, Metrics: m}
	for i := 0; i < 2; i++ {
		if _, err := Run(tree, cfg, headers, func(Result) {}); err != nil {
			t.Fatal(err)
		}
	}
	vals, _ := collect(m)
	var packets float64
	for k, v := range vals {
		if strings.HasPrefix(k, "pc_engine_shard_packets_total") {
			packets += v
		}
	}
	if int(packets) != 2*len(headers) {
		t.Errorf("two runs recorded %v packets, want %d", packets, 2*len(headers))
	}
}

// TestMetricsRegistryExposition: the engine collector registered on an
// obs.Registry must produce the key Prometheus series the CI smoke job
// scrapes for.
func TestMetricsRegistryExposition(t *testing.T) {
	_, tree, headers := fixtures(t, 2048)
	trace := append(append([]rules.Header(nil), headers...), headers...)
	m := NewMetrics(4)
	if _, err := Run(tree, Config{Shards: 2, FlowCacheFlows: 256, Metrics: m}, trace, func(Result) {}); err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	m.Register(reg)
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"pc_engine_shard_packets_total{shard=\"0\"}",
		"pc_engine_shard_busy_ns_total",
		"pc_engine_queue_depth_bucket",
		"pc_engine_batch_fill_count",
		"pc_flowcache_hit_ratio",
		"pc_engine_reorder_held_count",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}
