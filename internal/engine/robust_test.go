package engine

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/rules"
)

// waitNoLeaks fails the test if the goroutine count does not return to the
// baseline captured before the run — the engine must not leak workers no
// matter how a run ends.
func waitNoLeaks(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= base {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d now vs %d before run\n%s",
				runtime.NumGoroutine(), base, buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestClassifierPanicContained(t *testing.T) {
	rs, tree, headers := fixtures(t, 5000)
	panicky := &faultinject.PanickyClassifier{Inner: tree, EveryN: 100}
	base := runtime.NumGoroutine()
	var good, bad int
	st, err := Run(panicky, Config{Workers: 8, PreserveOrder: true}, headers, func(r Result) {
		if r.Err != nil {
			var pe *PanicError
			if !errors.As(r.Err, &pe) {
				t.Fatalf("packet %d: error %v is not a PanicError", r.Seq, r.Err)
			}
			if r.Match != -1 {
				t.Fatalf("packet %d: panicked but Match = %d", r.Seq, r.Match)
			}
			bad++
			return
		}
		if want := rs.Match(r.Header); r.Match != want {
			t.Fatalf("packet %d: match %d, oracle %d", r.Seq, r.Match, want)
		}
		good++
	})
	if err == nil {
		t.Fatal("a run with contained panics must return an error")
	}
	waitNoLeaks(t, base)
	if bad == 0 || st.Panics != bad {
		t.Errorf("panics: emitted %d, stats %d (want >0 and equal)", bad, st.Panics)
	}
	if good+bad != len(headers) || st.Packets != good {
		t.Errorf("accounting: good %d + bad %d != %d packets (stats %+v)", good, bad, len(headers), st)
	}
}

func TestPanicContainedPreservesOrder(t *testing.T) {
	_, tree, headers := fixtures(t, 3000)
	panicky := &faultinject.PanickyClassifier{Inner: tree, EveryN: 37}
	var next uint64
	_, err := Run(panicky, Config{Workers: 8, PreserveOrder: true}, headers, func(r Result) {
		if r.Seq != next {
			t.Fatalf("out of order: seq %d, want %d", r.Seq, next)
		}
		next++
	})
	if err == nil {
		t.Fatal("expected aggregate panic error")
	}
	if next != uint64(len(headers)) {
		t.Errorf("emitted %d of %d packets", next, len(headers))
	}
}

func TestEmitPanicDoesNotLeakWorkers(t *testing.T) {
	_, tree, headers := fixtures(t, 5000)
	base := runtime.NumGoroutine()
	calls := 0
	st, err := Run(tree, Config{Workers: 8, PreserveOrder: true}, headers, func(r Result) {
		calls++
		if calls == 100 {
			panic("emit exploded mid-drain")
		}
	})
	if err == nil || !strings.Contains(err.Error(), "emit panicked") {
		t.Fatalf("err = %v, want emit panic error", err)
	}
	waitNoLeaks(t, base)
	if calls != 100 {
		t.Errorf("emit called %d times after panicking (must never be re-invoked)", calls)
	}
	if st.EmitPanics != 1 {
		t.Errorf("EmitPanics = %d, want 1", st.EmitPanics)
	}
}

func TestDeadlineExpiryCancelsRun(t *testing.T) {
	_, tree, headers := fixtures(t, 20000)
	slow := &faultinject.SlowClassifier{Inner: tree, EveryN: 1, Delay: 200 * time.Microsecond}
	base := runtime.NumGoroutine()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	emitted := 0
	st, err := RunContext(ctx, slow, Config{Workers: 4, PreserveOrder: true}, headers, func(r Result) {
		emitted++
		if r.Err != nil && !errors.Is(r.Err, context.DeadlineExceeded) {
			t.Fatalf("packet %d: unexpected error %v", r.Seq, r.Err)
		}
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	waitNoLeaks(t, base)
	if st.Canceled == 0 {
		t.Error("deadline expired mid-run but nothing was counted canceled")
	}
	if st.Packets+st.Canceled != len(headers) {
		t.Errorf("accounting: %d classified + %d canceled != %d (stats %+v)",
			st.Packets, st.Canceled, len(headers), st)
	}
	if emitted > len(headers) {
		t.Errorf("emit called %d times for %d packets", emitted, len(headers))
	}
}

func TestCancelBeforeStart(t *testing.T) {
	_, tree, headers := fixtures(t, 1000)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	base := runtime.NumGoroutine()
	st, err := RunContext(ctx, tree, Config{Workers: 4}, headers, func(r Result) {
		if r.Err == nil {
			t.Errorf("packet %d classified after cancellation", r.Seq)
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	waitNoLeaks(t, base)
	if st.Packets != 0 {
		t.Errorf("%d packets classified on a dead context", st.Packets)
	}
	if st.Canceled != len(headers) {
		t.Errorf("Canceled = %d, want %d", st.Canceled, len(headers))
	}
}

func TestOverloadShedDropsAndCounts(t *testing.T) {
	_, tree, headers := fixtures(t, 4000)
	// One worker that dawdles on every packet against a tiny ring forces
	// the dispatcher into its overload path.
	slow := &faultinject.SlowClassifier{Inner: tree, EveryN: 1, Delay: 50 * time.Microsecond}
	base := runtime.NumGoroutine()
	shedSeen := 0
	st, err := Run(slow, Config{Workers: 1, Shards: 1, QueueDepth: 1, PreserveOrder: true, Overload: OverloadShed},
		headers, func(r Result) {
			if errors.Is(r.Err, ErrShed) {
				if r.Match != -1 {
					t.Fatalf("shed packet %d carries match %d", r.Seq, r.Match)
				}
				shedSeen++
			}
		})
	if err != nil {
		t.Fatalf("shedding is not an error-level event: %v", err)
	}
	waitNoLeaks(t, base)
	if st.Shed == 0 {
		t.Fatal("overloaded run shed nothing")
	}
	if st.Shed != shedSeen {
		t.Errorf("Stats.Shed = %d but %d ErrShed results emitted", st.Shed, shedSeen)
	}
	if st.Packets+st.Shed != len(headers) {
		t.Errorf("accounting: %d classified + %d shed != %d", st.Packets, st.Shed, len(headers))
	}
}

func TestOverloadBlockNeverSheds(t *testing.T) {
	_, tree, headers := fixtures(t, 3000)
	slow := &faultinject.SlowClassifier{Inner: tree, EveryN: 1, Delay: 10 * time.Microsecond}
	st, err := Run(slow, Config{Workers: 1, Shards: 1, QueueDepth: 1, PreserveOrder: true}, headers, func(r Result) {
		if r.Err != nil {
			t.Fatalf("packet %d: unexpected error %v", r.Seq, r.Err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Shed != 0 || st.Packets != len(headers) {
		t.Errorf("block policy shed packets: %+v", st)
	}
}

func TestInvalidOverloadPolicy(t *testing.T) {
	_, tree, headers := fixtures(t, 10)
	if _, err := Run(tree, Config{Workers: 1, Overload: OverloadPolicy(42)}, headers, func(Result) {}); err == nil {
		t.Error("bogus overload policy should fail validation")
	}
}

// sequentialPanicky panics on an exact arrival position — usable with one
// worker where arrival order equals call order.
type sequentialPanicky struct {
	inner Classifier
	at    int
	calls int
}

func (s *sequentialPanicky) Classify(h rules.Header) int {
	s.calls++
	if s.calls == s.at {
		panic("boom at a fixed position")
	}
	return s.inner.Classify(h)
}

func TestSingleWorkerPanicIsDeterministic(t *testing.T) {
	_, tree, headers := fixtures(t, 100)
	cl := &sequentialPanicky{inner: tree, at: 42}
	st, err := Run(tree, Config{Workers: 1}, headers, func(Result) {})
	if err != nil || st.Panics != 0 {
		t.Fatalf("clean baseline failed: %v %+v", err, st)
	}
	var failedSeq uint64
	st, err = Run(cl, Config{Workers: 1, Shards: 1, PreserveOrder: true}, headers, func(r Result) {
		if r.Err != nil {
			failedSeq = r.Seq
		}
	})
	if err == nil || st.Panics != 1 {
		t.Fatalf("err = %v, Panics = %d, want 1 contained panic", err, st.Panics)
	}
	if failedSeq != 41 {
		t.Errorf("panic landed on seq %d, want 41", failedSeq)
	}
}
