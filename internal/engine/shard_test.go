package engine

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/expcuts"
	"repro/internal/faultinject"
	"repro/internal/flowcache"
	"repro/internal/obs"
	"repro/internal/rules"
	"repro/internal/update"
)

// TestShardedMatchesOracleInOrder: for several shard counts, the sharded
// engine must emit every packet exactly once, in arrival order, with the
// oracle's match — the same contract the unsharded path honors.
func TestShardedMatchesOracleInOrder(t *testing.T) {
	rs, tree, headers := fixtures(t, 5000)
	for _, shards := range []int{1, 2, 3, 8} {
		var prev uint64
		first := true
		seen := 0
		st, err := Run(tree, Config{Shards: shards, PreserveOrder: true}, headers, func(r Result) {
			if r.Err != nil {
				t.Fatalf("shards=%d seq %d: %v", shards, r.Seq, r.Err)
			}
			if !first && r.Seq != prev+1 {
				t.Fatalf("shards=%d: out of order, %d after %d", shards, r.Seq, prev)
			}
			first = false
			prev = r.Seq
			if want := rs.Match(r.Header); r.Match != want {
				t.Fatalf("shards=%d seq %d: match %d, oracle %d", shards, r.Seq, r.Match, want)
			}
			seen++
		})
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if seen != len(headers) || st.Packets != len(headers) {
			t.Fatalf("shards=%d: emitted %d, Stats.Packets %d, want %d",
				shards, seen, st.Packets, len(headers))
		}
		if st.Shards != shards || len(st.ShardBusy) != shards {
			t.Fatalf("shards=%d: Stats reports %d shards, %d busy entries",
				shards, st.Shards, len(st.ShardBusy))
		}
	}
}

// TestFlowAffinityIsStable: the shard a header lands on is a pure
// function of its 5-tuple, so all packets of a flow hit one shard — the
// property that makes per-shard flow caches coherent without locks.
func TestFlowAffinityIsStable(t *testing.T) {
	_, _, headers := fixtures(t, 500)
	for _, shards := range []int{2, 7, 16} {
		for _, h := range headers {
			a, b := shardOf(h, shards), shardOf(h, shards)
			if a != b {
				t.Fatalf("shardOf not deterministic for %v", h)
			}
			if a < 0 || a >= shards {
				t.Fatalf("shardOf(%v, %d) = %d out of range", h, shards, a)
			}
		}
	}
}

// TestShardedAccountingSumsUnderShed: with tiny per-shard rings and a
// dawdling classifier, classified + shed must still equal packets
// offered, and every shed packet must be emitted with ErrShed.
func TestShardedAccountingSumsUnderShed(t *testing.T) {
	_, tree, headers := fixtures(t, 4096)
	slow := &faultinject.SlowClassifier{Inner: tree, EveryN: 1, Delay: 30 * time.Microsecond}
	base := runtime.NumGoroutine()
	shedSeen, okSeen := 0, 0
	st, err := Run(slow, Config{Shards: 4, QueueDepth: 1, BatchSize: 16,
		PreserveOrder: true, Overload: OverloadShed},
		headers, func(r Result) {
			if errors.Is(r.Err, ErrShed) {
				shedSeen++
			} else if r.Err == nil {
				okSeen++
			}
		})
	if err != nil {
		t.Fatal(err)
	}
	if st.Shed != shedSeen || st.Packets != okSeen {
		t.Errorf("stats (%d shed, %d ok) disagree with emissions (%d, %d)",
			st.Shed, st.Packets, shedSeen, okSeen)
	}
	if st.Packets+st.Shed != len(headers) {
		t.Errorf("accounting: %d classified + %d shed != %d offered",
			st.Packets, st.Shed, len(headers))
	}
	waitNoLeaks(t, base)
}

// TestShardedCancelAccounting: cancelling mid-run must not strand
// results in the cross-shard sequencer. Pending per-shard batches hold
// sequence numbers scattered through the emitted range; they must come
// back as canceled results so classified + shed + canceled covers every
// packet offered.
func TestShardedCancelAccounting(t *testing.T) {
	_, tree, headers := fixtures(t, 20000)
	slow := &faultinject.SlowClassifier{Inner: tree, EveryN: 1, Delay: 100 * time.Microsecond}
	base := runtime.NumGoroutine()
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Millisecond)
	defer cancel()
	st, err := RunContext(ctx, slow, Config{Shards: 4, PreserveOrder: true}, headers,
		func(r Result) {
			if r.Err != nil && !errors.Is(r.Err, context.DeadlineExceeded) {
				t.Fatalf("seq %d: unexpected error %v", r.Seq, r.Err)
			}
		})
	if err == nil {
		t.Fatal("expected a cancellation error")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error should wrap the context cause: %v", err)
	}
	if got := st.Packets + st.Shed + st.Canceled; got != len(headers) {
		t.Fatalf("accounting: %d classified + %d shed + %d canceled = %d, want %d",
			st.Packets, st.Shed, st.Canceled, got, len(headers))
	}
	if st.Canceled == 0 {
		t.Error("a 15ms deadline against 2s of classification work should cancel packets")
	}
	waitNoLeaks(t, base)
}

// TestShardedPanicAttribution: injected per-shard panics are contained
// to their packets; everything else classifies to the oracle and the
// failure count is exact across shards.
func TestShardedPanicAttribution(t *testing.T) {
	rs, tree, headers := fixtures(t, 3000)
	cl := &faultinject.PanickyClassifier{Inner: tree, EveryN: 97}
	base := runtime.NumGoroutine()
	failed, ok := 0, 0
	st, err := RunContext(context.Background(), cl, Config{Shards: 4, PreserveOrder: true},
		headers, func(r Result) {
			if r.Err != nil {
				if r.Match != -1 {
					t.Fatalf("seq %d: failed packet carries match %d", r.Seq, r.Match)
				}
				failed++
				return
			}
			if want := rs.Match(r.Header); r.Match != want {
				t.Fatalf("seq %d: match %d, oracle %d", r.Seq, r.Match, want)
			}
			ok++
		})
	if err == nil {
		t.Fatal("contained panics must surface as a run error")
	}
	if st.Panics == 0 || st.Panics != failed {
		t.Errorf("Stats.Panics = %d but %d failed results emitted", st.Panics, failed)
	}
	if ok+failed != len(headers) || st.Packets != ok {
		t.Errorf("accounting: %d ok + %d failed != %d offered (Stats.Packets %d)",
			ok, failed, len(headers), st.Packets)
	}
	waitNoLeaks(t, base)
}

// TestShardedFlowCacheMatchesOracle: the per-shard flow cache is a
// transparent layer — heavy flow reuse (the cache-friendly case) and a
// cold all-distinct trace must both classify to the oracle.
func TestShardedFlowCacheMatchesOracle(t *testing.T) {
	rs, tree, headers := fixtures(t, 2000)
	// Heavy reuse: repeat the trace three times so later rounds hit.
	trace := append(append(append([]rules.Header(nil), headers...), headers...), headers...)
	for _, shards := range []int{1, 4} {
		st, err := Run(tree, Config{Shards: shards, FlowCacheFlows: 512, PreserveOrder: true},
			trace, func(r Result) {
				if r.Err != nil {
					t.Fatalf("seq %d: %v", r.Seq, r.Err)
				}
				if want := rs.Match(r.Header); r.Match != want {
					t.Fatalf("shards=%d seq %d: cached match %d, oracle %d",
						shards, r.Seq, r.Match, want)
				}
			})
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if st.Packets != len(trace) {
			t.Fatalf("shards=%d: %d classified, want %d", shards, st.Packets, len(trace))
		}
	}
}

// TestShardedFlowCacheSurvivesHotSwaps: serve a long trace through
// sharded flow caches while another goroutine applies rule-set updates.
// The applied ops are semantically neutral (append/remove a duplicate of
// an existing rule at lowest priority), so every packet's correct answer
// is invariant across generations — any stale cache entry surviving a
// swap, or a batch straddling generations, shows up as an oracle
// mismatch or a race-detector hit.
func TestShardedFlowCacheSurvivesHotSwaps(t *testing.T) {
	rs, _, headers := fixtures(t, 4000)
	mgr, err := update.NewManagerConfig(rs,
		func(rs *rules.RuleSet) (update.Classifier, error) {
			return expcuts.New(rs, expcuts.Config{})
		},
		update.Config{ValidateSamples: -1})
	if err != nil {
		t.Fatal(err)
	}
	trace := append(append([]rules.Header(nil), headers...), headers...)

	stop := make(chan struct{})
	swapsDone := make(chan int)
	go func() {
		swaps := 0
		dup := rs.Rules[0]
		for {
			select {
			case <-stop:
				swapsDone <- swaps
				return
			default:
			}
			if err := mgr.Apply([]update.Op{update.InsertAt(rs.Len(), dup)}); err != nil {
				t.Errorf("apply insert: %v", err)
			}
			if err := mgr.Apply([]update.Op{update.DeleteAt(rs.Len())}); err != nil {
				t.Errorf("apply delete: %v", err)
			}
			swaps += 2
		}
	}()

	st, err := Run(mgr, Config{Shards: 4, FlowCacheFlows: 256, PreserveOrder: true},
		trace, func(r Result) {
			if r.Err != nil {
				t.Fatalf("seq %d: %v", r.Seq, r.Err)
			}
			if want := rs.Match(r.Header); r.Match != want {
				t.Fatalf("seq %d: match %d under swaps, oracle %d", r.Seq, r.Match, want)
			}
		})
	close(stop)
	swaps := <-swapsDone
	if err != nil {
		t.Fatal(err)
	}
	if st.Packets != len(trace) {
		t.Fatalf("%d classified, want %d", st.Packets, len(trace))
	}
	t.Logf("served %d packets across %d generations", st.Packets, swaps)
}

// genClassifier answers every lookup with its current generation number
// and implements the generationProvider contract: monotonic bumps,
// batch answers from a single load.
type genClassifier struct{ gen atomic.Uint64 }

func (g *genClassifier) Generation() uint64        { return g.gen.Load() }
func (g *genClassifier) Classify(rules.Header) int { return int(g.gen.Load()) }
func (g *genClassifier) MemoryBytes() int          { return 8 }
func (g *genClassifier) ClassifyBatch(hs []rules.Header, out []int) {
	v := int(g.gen.Load())
	for i := range hs {
		out[i] = v
	}
}

// TestShardedBatchNeverStraddlesGeneration: with a classifier that
// stamps every answer with its generation and a writer bumping the
// generation continuously, every emitted batch must be internally
// uniform — the engine's read-classify-reread protocol redoes any batch
// a swap lands in, so a mixed batch can never escape. With one shard and
// PreserveOrder, batches are exactly the BatchSize-aligned chunks of the
// sequence space, making straddling externally observable.
func TestShardedBatchNeverStraddlesGeneration(t *testing.T) {
	_, _, headers := fixtures(t, 8192)
	cl := &genClassifier{}
	const batch = 64
	got := make([]int, len(headers))
	// The emit callback runs concurrently with the shard classifying the
	// *next* batch, so bumping here lands swaps at arbitrary points inside
	// in-flight batches — including mid-batch, which the redo loop must
	// absorb.
	// QueueDepth 1 keeps the shard at most a couple of batches ahead of
	// emission, so the bumps below land while batches are in flight.
	_, err := Run(cl, Config{Shards: 1, FlowCacheFlows: 256, BatchSize: batch, QueueDepth: 1, PreserveOrder: true},
		headers, func(r Result) {
			if r.Err != nil {
				t.Fatalf("seq %d: %v", r.Seq, r.Err)
			}
			got[r.Seq] = r.Match
			if r.Seq%17 == 0 {
				cl.gen.Add(1)
			}
		})
	if err != nil {
		t.Fatal(err)
	}
	changes := 0
	for i := 0; i < len(got); i += batch {
		end := i + batch
		if end > len(got) {
			end = len(got)
		}
		for k := i + 1; k < end; k++ {
			if got[k] != got[i] {
				t.Fatalf("batch [%d,%d) straddles generations: seq %d has %d, seq %d has %d",
					i, end, i, got[i], k, got[k])
			}
		}
		if i > 0 && got[i] != got[i-batch] {
			changes++
		}
	}
	if changes == 0 {
		t.Skip("no generation change landed between batches; straddle check vacuous")
	}
}

// TestShardedHotPathDoesNotAllocate gates the two per-shard fast paths
// at zero allocations per batch: the all-hit flow-cache pass, and the
// batched ExpCuts walk over the flat node arena (cache misses resolved
// through ClassifyBatch). Pools make the steady state allocation-free;
// a regression here silently caps multi-core scaling with GC work.
func TestShardedHotPathDoesNotAllocate(t *testing.T) {
	_, tree, headers := fixtures(t, 64)
	newJob := func() *shardJob {
		j := &shardJob{seqs: make([]uint64, 64), hs: make([]rules.Header, 64)}
		for i, h := range headers {
			j.seqs[i], j.hs[i] = uint64(i), h
		}
		return j
	}
	rsBuf := make([]Result, 64)
	matches := make([]int, 64)

	// Batched arena walk, no cache: the sharded twin of classifyBatch.
	s := &shard{lane: lane{cl: tree, bc: tree}}
	j := newJob()
	if n := testing.AllocsPerRun(100, func() {
		s.lane.classifyJob(j, rsBuf, matches, nil, nil)
	}); n != 0 {
		t.Errorf("sharded arena batch walk allocates %v/op, want 0", n)
	}

	// Flow-cache path, warmed: hits and (slab-recycled) misses both ride
	// retained scratch.
	_, tree2, _ := fixtures(t, 64)
	fc, err := flowcache.New(tree2, 128)
	if err != nil {
		t.Fatal(err)
	}
	sc := &shard{lane: lane{cl: tree2, bc: tree2, cache: fc}}
	sc.lane.classifyJob(j, rsBuf, matches, nil, nil) // warm the cache
	if n := testing.AllocsPerRun(100, func() {
		sc.lane.classifyJob(j, rsBuf, matches, nil, nil)
	}); n != 0 {
		t.Errorf("sharded flow-cache hit path allocates %v/op, want 0", n)
	}

	// Same two paths with the full per-batch instrumentation sequence the
	// serve loop runs when Config.Metrics is set: classify, recordBatch,
	// panic and cache-delta recording. Metrics on must not buy back the
	// allocations the pools eliminated.
	m := NewMetrics(4)
	s.m, sc.m = m.shard(0), m.shard(1)
	sc.events = obs.NewRing(16)
	if n := testing.AllocsPerRun(100, func() {
		p := s.lane.classifyJob(j, rsBuf, matches, nil, nil)
		s.m.recordBatch(len(j.hs), time.Microsecond, 1)
		s.m.addPanics(uint64(p))
	}); n != 0 {
		t.Errorf("instrumented arena batch walk allocates %v/op, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		p := sc.lane.classifyJob(j, rsBuf, matches, nil, nil)
		sc.m.recordBatch(len(j.hs), time.Microsecond, 1)
		sc.m.addPanics(uint64(p))
		hits, misses := sc.cache.Stats()
		sc.m.recordCache(hits, misses, &sc.lastHits, &sc.lastMisses)
	}); n != 0 {
		t.Errorf("instrumented flow-cache hit path allocates %v/op, want 0", n)
	}
}
