// Package linear implements priority-ordered linear search, the reference
// classifier. It is the correctness oracle every other classifier is
// property-tested against, the paper's Figure 8 workload (throughput as a
// function of how many rules must be scanned per packet), and the model of
// what HiCuts does inside its leaves.
package linear

import (
	"repro/internal/memlayout"
	"repro/internal/nptrace"
	"repro/internal/rules"
	"repro/internal/ruletable"
)

// Classifier performs first-match linear search over a rule set.
type Classifier struct {
	rs *rules.RuleSet

	// Serialized image: the rule table as consecutive 6-word records on a
	// single SRAM channel.
	image   *memlayout.Image
	channel uint8
	base    uint32
}

// New builds a linear classifier and its serialized SRAM image on channel 0.
func New(rs *rules.RuleSet) *Classifier {
	return NewOnChannel(rs, 0)
}

// NewOnChannel builds the classifier with its rule table on the given SRAM
// channel.
func NewOnChannel(rs *rules.RuleSet, ch uint8) *Classifier {
	c := &Classifier{rs: rs, image: memlayout.NewImage(), channel: ch}
	c.base = c.image.Alloc(ch, ruletable.Encode(rs))
	return c
}

// Name identifies the algorithm in reports.
func (c *Classifier) Name() string { return "Linear" }

// Classify returns the index of the highest-priority matching rule, or -1.
func (c *Classifier) Classify(h rules.Header) int {
	return c.rs.Match(h)
}

// ClassifyBatch classifies hs[i] into out[i] (the engine's
// BatchClassifier contract; out must be at least as long as hs). Linear
// search is already allocation-free; the batch form only amortizes
// dispatch.
func (c *Classifier) ClassifyBatch(hs []rules.Header, out []int) {
	out = out[:len(hs)]
	for i, h := range hs {
		out[i] = c.rs.Match(h)
	}
}

// MemoryBytes returns the SRAM footprint: 6 words per rule.
func (c *Classifier) MemoryBytes() int { return c.image.TotalBytes() }

// Image exposes the serialized SRAM image.
func (c *Classifier) Image() *memlayout.Image { return c.image }

// Lookup runs the serialized lookup against mem, reading one 6-word record
// per rule until the first match — the access pattern the paper charges
// linear search with (N accesses × 6 words, §6.6).
func (c *Classifier) Lookup(mem nptrace.Mem, h rules.Header) int {
	costs := nptrace.DefaultCosts
	for i := 0; i < c.rs.Len(); i++ {
		mem.Compute(costs.IssueIO)
		rec := mem.Read(c.channel, c.base+uint32(i*ruletable.WordsPerRule), ruletable.WordsPerRule)
		mem.Compute(ruletable.CompareCycles)
		if ruletable.MatchRecord(rec, h) {
			return i
		}
	}
	return -1
}

// Program records the access program for one header.
func (c *Classifier) Program(h rules.Header) nptrace.Program {
	rec := nptrace.NewRecorder(c.image)
	return rec.Finish(c.Lookup(rec, h))
}
