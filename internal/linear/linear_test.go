package linear

import (
	"testing"

	"repro/internal/pktgen"
	"repro/internal/rulegen"
	"repro/internal/rules"
)

func TestClassifyMatchesOracle(t *testing.T) {
	rs, err := rulegen.Generate(rulegen.Config{Kind: rulegen.CoreRouter, Size: 150, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	c := New(rs)
	tr, err := pktgen.Generate(rs, pktgen.Config{Count: 1000, Seed: 6, MatchFraction: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range tr.Headers {
		if got, want := c.Classify(h), rs.Match(h); got != want {
			t.Fatalf("Classify(%v) = %d, oracle = %d", h, got, want)
		}
	}
}

func TestSerializedLookupMatchesNative(t *testing.T) {
	rs, err := rulegen.Generate(rulegen.Config{Kind: rulegen.Firewall, Size: 80, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	c := New(rs)
	tr, err := pktgen.Generate(rs, pktgen.Config{Count: 500, Seed: 8, MatchFraction: 0.7})
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range tr.Headers {
		p := c.Program(h)
		if p.Result != c.Classify(h) {
			t.Fatalf("serialized result %d != native %d for %v", p.Result, c.Classify(h), h)
		}
	}
}

func TestProgramShape(t *testing.T) {
	rs := rules.NewRuleSet("three", []rules.Rule{
		{SrcIP: rules.Prefix{Addr: 0x0A000000, Len: 8}, SrcPort: rules.FullPortRange, DstPort: rules.FullPortRange, Proto: rules.AnyProto},
		{SrcIP: rules.Prefix{Addr: 0x14000000, Len: 8}, SrcPort: rules.FullPortRange, DstPort: rules.FullPortRange, Proto: rules.AnyProto},
		{SrcPort: rules.FullPortRange, DstPort: rules.FullPortRange, Proto: rules.AnyProto},
	})
	c := New(rs)
	// Header matching rule 1: exactly 2 record reads of 6 words each.
	p := c.Program(rules.Header{SrcIP: 0x14010101})
	if p.Result != 1 {
		t.Fatalf("result = %d", p.Result)
	}
	if p.Accesses() != 2 {
		t.Errorf("accesses = %d, want 2", p.Accesses())
	}
	if p.Words() != 12 {
		t.Errorf("words = %d, want 12", p.Words())
	}
	// Non-matching header against a set without default rule scans all.
	rsNoDefault := rules.NewRuleSet("two", rs.Rules[:2])
	c2 := New(rsNoDefault)
	p2 := c2.Program(rules.Header{SrcIP: 0x1E010101})
	if p2.Result != -1 || p2.Accesses() != 2 {
		t.Errorf("no-match program: result %d accesses %d", p2.Result, p2.Accesses())
	}
}

func TestMemoryBytes(t *testing.T) {
	rs, err := rulegen.Generate(rulegen.Config{Kind: rulegen.Firewall, Size: 100, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	c := New(rs)
	if got, want := c.MemoryBytes(), 100*6*4; got != want {
		t.Errorf("MemoryBytes = %d, want %d", got, want)
	}
}

func TestNewOnChannel(t *testing.T) {
	rs, err := rulegen.Generate(rulegen.Config{Kind: rulegen.Firewall, Size: 10, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	c := NewOnChannel(rs, 2)
	words := c.Image().ChannelWords()
	if words[2] != 60 || words[0] != 0 {
		t.Errorf("channel words = %v", words)
	}
	h := rules.Header{Proto: rules.ProtoTCP}
	p := c.Program(h)
	for _, s := range p.Steps {
		if s.Channel != 2 {
			t.Errorf("access on channel %d, want 2", s.Channel)
		}
	}
}
