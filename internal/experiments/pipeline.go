package experiments

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"repro/internal/engine"
	"repro/internal/expcuts"
	"repro/internal/rules"
)

// PipelineRow is one (shard count, group size) cell of the
// software-pipelining sweep. Group 0 rows are the level-synchronous
// baseline walk at the same shard count; SpeedupVsSync for a pipelined
// row is its MeasuredMpps over that baseline, measured in interleaved
// windows of the same invocation so host noise cancels.
type PipelineRow struct {
	Shards           int
	Group            int // 0 = level-synchronous baseline (no pipelining)
	Affine           bool
	MeasuredMpps     float64
	CriticalPathMpps float64
	SpeedupVsSync    float64
}

// pipelineReps is how many interleaved timed windows each (shards,
// group) cell gets. The sweep is the input to a regression gate, so it
// leans on more reps than the serve comparison; windows for all group
// sizes of a shard count are interleaved rep-by-rep to keep the
// sync/pipelined ratio honest on a noisy host.
const pipelineReps = 9

// pipelinePasses is how many ordered engine runs one timed window spans.
const pipelinePasses = 6

// Pipeline measures the software-pipelined ExpCuts walk against the
// level-synchronous baseline on the 1k-rule ACL serving set, sweeping
// group size against shard count. It also returns the per-level stage
// fill observed during the pipelined windows: fill[l] is the mean
// fraction of walk slots still live entering level l, the software
// reading of the paper's per-microengine bank occupancy.
func Pipeline(ctx Context, batchSize int, groups, shardCounts []int, affine bool) ([]PipelineRow, []float64, error) {
	ctx.fillDefaults()
	if batchSize == 0 {
		batchSize = engine.DefaultBatchSize
	}
	if len(groups) == 0 {
		// Default cells scale with the batch: two grouped points and the
		// whole-batch wave (group == batch), which is the shape the engine
		// serves when PipelineGroup >= BatchSize.
		for _, g := range []int{batchSize / 8, batchSize / 2, batchSize} {
			if g > 0 && (len(groups) == 0 || g > groups[len(groups)-1]) {
				groups = append(groups, g)
			}
		}
	}
	if len(shardCounts) == 0 {
		shardCounts = []int{1, 2, 4}
	}
	rs, err := ServeRuleSet(ctx.Seed)
	if err != nil {
		return nil, nil, err
	}
	trace, err := ctx.headers(rs)
	if err != nil {
		return nil, nil, err
	}
	hs := make([]rules.Header, ctx.Packets)
	for i := range hs {
		hs[i] = trace[i%len(trace)]
	}
	tree, err := expcuts.New(rs, expcuts.Config{})
	if err != nil {
		return nil, nil, fmt.Errorf("pipeline: building ExpCuts: %w", err)
	}

	// Group 0 heads each shard count's cells as the sync baseline.
	cells := make([]int, 0, len(groups)+1)
	cells = append(cells, 0)
	for _, g := range groups {
		if g < 0 {
			return nil, nil, fmt.Errorf("pipeline: invalid group size %d", g)
		}
		cells = append(cells, g)
	}

	fillBase := tree.StageFill()
	var rows []PipelineRow
	for _, shards := range shardCounts {
		if shards < 1 {
			return nil, nil, fmt.Errorf("pipeline: invalid shard count %d", shards)
		}
		best := make([]time.Duration, len(cells))
		busiest := make([]time.Duration, len(cells))
		// Interleave: every rep times each cell once, so a load spike on
		// the host hits sync and pipelined windows alike instead of
		// biasing one side of the ratio.
		for rep := 0; rep < pipelineReps; rep++ {
			for ci, group := range cells {
				cfg := engine.DefaultConfig()
				cfg.BatchSize = batchSize
				cfg.Shards = shards
				cfg.PipelineGroup = group
				cfg.PipelineAffine = affine && group > 0
				runtime.GC()
				start := time.Now()
				repBusiest := time.Duration(0)
				for pass := 0; pass < pipelinePasses; pass++ {
					st, err := engine.RunContext(context.Background(), tree, cfg, hs, func(engine.Result) {})
					if err != nil {
						return nil, nil, fmt.Errorf("pipeline: %d-shard group-%d run: %w", shards, group, err)
					}
					passBusiest := time.Duration(0)
					for _, b := range st.ShardBusy {
						if b > passBusiest {
							passBusiest = b
						}
					}
					repBusiest += passBusiest
				}
				if elapsed := time.Since(start); rep == 0 || elapsed < best[ci] {
					best[ci] = elapsed
				}
				if rep == 0 || repBusiest < busiest[ci] {
					busiest[ci] = repBusiest
				}
			}
		}
		var sync float64
		for ci, group := range cells {
			row := PipelineRow{
				Shards:       shards,
				Group:        group,
				Affine:       affine && group > 0,
				MeasuredMpps: float64(len(hs)) * pipelinePasses / best[ci].Seconds() / 1e6,
			}
			if busiest[ci] > 0 {
				row.CriticalPathMpps = float64(len(hs)) * pipelinePasses / busiest[ci].Seconds() / 1e6
			}
			if group == 0 {
				sync = row.MeasuredMpps
				row.SpeedupVsSync = 1
			} else if sync > 0 {
				row.SpeedupVsSync = row.MeasuredMpps / sync
			}
			rows = append(rows, row)
		}
	}

	fill := stageFillFractions(fillBase, tree.StageFill())
	return rows, fill, nil
}

// stageFillFractions turns two cumulative stage-fill snapshots into the
// mean live fraction entering each level, normalized to level 0 (every
// packet enters the root level, so fill[0] is 1 whenever any pipelined
// window ran).
func stageFillFractions(before, after []uint64) []float64 {
	if len(after) == 0 || len(after) != len(before) {
		return nil
	}
	root := after[0] - before[0]
	if root == 0 {
		return nil
	}
	fill := make([]float64, len(after))
	for l := range after {
		fill[l] = float64(after[l]-before[l]) / float64(root)
	}
	return fill
}

// RenderPipeline formats the pipelining sweep and the stage-fill decay.
func RenderPipeline(rows []PipelineRow, fill []float64, batchSize int) string {
	if batchSize == 0 {
		batchSize = engine.DefaultBatchSize
	}
	table := make([][]string, len(rows))
	for i, r := range rows {
		group := "sync"
		if r.Group > 0 {
			group = fmt.Sprintf("%d", r.Group)
		}
		table[i] = []string{
			fmt.Sprintf("%d", r.Shards),
			group,
			fmt.Sprintf("%v", r.Affine),
			fmt.Sprintf("%.2f", r.MeasuredMpps),
			fmt.Sprintf("%.2f", r.CriticalPathMpps),
			fmt.Sprintf("%.2fx", r.SpeedupVsSync),
		}
	}
	out := fmt.Sprintf("Software-pipelined serving — batched ExpCuts on ACL1K (%d rules), batch=%d\n"+
		"(group=sync is the level-synchronous walk; speedup is vs sync at the same shard count)\n%s",
		ServeRuleSize, batchSize,
		renderTable([]string{"Shards", "Group", "Affine", "Measured Mpps", "Critical-path Mpps", "Vs sync"}, table))
	if len(fill) > 0 {
		out += "Stage fill (live walk slots entering each level, fraction of level 0):\n"
		for l, f := range fill {
			out += fmt.Sprintf("  L%-2d %.3f\n", l, f)
		}
	}
	return out
}
