package experiments

import (
	"fmt"
	"time"

	"repro/internal/buildgov"
	"repro/internal/faultinject"
	"repro/internal/rules"
	"repro/internal/update"
)

// LadderRow reports one rule set's walk down the degradation ladder:
// which rung ended up serving, how degraded that is, and what the
// governed builders burned before the manager settled.
type LadderRow struct {
	Set string
	// Rung is the serving rung's name; Level its ladder index (0 = the
	// preferred algorithm).
	Rung  string
	Level int
	// BudgetTrips is how many build attempts the budget aborted during
	// the walk.
	BudgetTrips uint64
	// BuildTime is the full walk, first attempt to served generation.
	BuildTime time.Duration
	// MemoryBytes is the serving generation's footprint.
	MemoryBytes int
	// Err notes a walk that produced no generation at all (only possible
	// when the configured ladder has no total final rung).
	Err string
}

// Ladder builds every standard rule set — plus the two pathological
// corpus sets, which are the reason the ladder exists — through the
// named degradation ladder under the given budget, and reports which
// rung served each one. A nil budget runs ungoverned (every set should
// then serve from the preferred rung).
func Ladder(ctx Context, names []string, budget *buildgov.Budget) ([]LadderRow, error) {
	ctx.fillDefaults()
	rungs, err := update.LadderFromNames(names, budget)
	if err != nil {
		return nil, err
	}
	sets, err := standardSets()
	if err != nil {
		return nil, err
	}
	sets = append(sets,
		faultinject.OverlapGrid("overlap-grid-32", 32),
		faultinject.WildcardStorm("wildcard-storm-500", 500, 7),
	)
	rows := make([]LadderRow, 0, len(sets))
	for _, rs := range sets {
		rows = append(rows, ladderOne(rs, rungs))
	}
	return rows, nil
}

func ladderOne(rs *rules.RuleSet, rungs []update.Rung) LadderRow {
	row := LadderRow{Set: rs.Name}
	start := time.Now()
	m, err := update.NewManagerLadder(rs, rungs, update.Config{MaxBuildAttempts: 1})
	row.BuildTime = time.Since(start)
	if err != nil {
		row.Err = err.Error()
		return row
	}
	h := m.Health()
	row.Rung = h.ActiveAlgorithm
	row.Level = h.DegradationLevel
	row.BudgetTrips = h.BudgetTrips
	row.MemoryBytes = h.MemoryBytes
	return row
}

// RenderLadder formats ladder rows in the repository's table style.
func RenderLadder(rows []LadderRow, names []string, budget *buildgov.Budget) string {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		if r.Err != "" {
			out = append(out, []string{r.Set, "FAILED", "-", "-", "-", r.Err})
			continue
		}
		out = append(out, []string{
			r.Set,
			r.Rung,
			fmt.Sprintf("%d", r.Level),
			fmt.Sprintf("%d", r.BudgetTrips),
			fmt.Sprintf("%v", r.BuildTime.Round(time.Millisecond)),
			mb(r.MemoryBytes),
		})
	}
	head := fmt.Sprintf("Degradation ladder %v, budget %s\n", names, describeBudget(budget))
	return head + renderTable(
		[]string{"Rule set", "Served by", "Level", "Budget trips", "Walk time", "MB"},
		out)
}

func describeBudget(b *buildgov.Budget) string {
	if b == nil {
		return "none (ungoverned)"
	}
	return fmt.Sprintf("timeout=%v maxnodes=%d maxheap=%dB maxmemo=%d",
		b.Timeout, b.MaxNodes, b.MaxHeapBytes, b.MaxMemoEntries)
}
