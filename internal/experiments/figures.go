package experiments

import (
	"fmt"

	"repro/internal/expcuts"
	"repro/internal/hicuts"
	"repro/internal/hsm"
	"repro/internal/linear"
	"repro/internal/memlayout"
	"repro/internal/npsim"
	"repro/internal/nptrace"
	"repro/internal/rules"
)

// Fig6Row is one bar pair of Figure 6: ExpCuts SRAM usage with and without
// hierarchical space aggregation.
type Fig6Row struct {
	RuleSet           string
	Rules             int
	WithoutAggBytes   int
	WithAggBytes      int
	Ratio             float64
	AvgUniqueChildren float64
	FitsWithout       bool // does the un-aggregated image fit the 4×8 MB SRAM?
	FitsWith          bool
}

// Fig6 measures the space-aggregation effect on all seven rule sets.
func Fig6(ctx Context) ([]Fig6Row, error) {
	ctx.fillDefaults()
	sets, err := standardSets()
	if err != nil {
		return nil, err
	}
	rows := make([]Fig6Row, 0, len(sets))
	for _, rs := range sets {
		tree, err := expcuts.New(rs, expcuts.Config{Headroom: memlayout.PaperHeadroom})
		if err != nil {
			return nil, fmt.Errorf("fig6 %s: %w", rs.Name, err)
		}
		full, err := tree.Full()
		if err != nil {
			return nil, fmt.Errorf("fig6 %s: %w", rs.Name, err)
		}
		st := tree.Stats()
		rows = append(rows, Fig6Row{
			RuleSet:           rs.Name,
			Rules:             rs.Len(),
			WithoutAggBytes:   full.MemoryBytes(),
			WithAggBytes:      tree.MemoryBytes(),
			Ratio:             float64(tree.MemoryBytes()) / float64(full.MemoryBytes()),
			AvgUniqueChildren: st.AvgUniqueChildren,
			FitsWithout:       full.Image().FitsHardware(),
			FitsWith:          tree.Image().FitsHardware(),
		})
	}
	return rows, nil
}

// RenderFig6 formats Figure 6 rows.
func RenderFig6(rows []Fig6Row) string {
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{
			r.RuleSet, fmt.Sprint(r.Rules),
			kb(r.WithoutAggBytes), kb(r.WithAggBytes),
			fmt.Sprintf("%.1f%%", r.Ratio*100),
			fmt.Sprintf("%.1f", r.AvgUniqueChildren),
			fmt.Sprint(r.FitsWithout), fmt.Sprint(r.FitsWith),
		}
	}
	return "Figure 6 — ExpCuts SRAM usage, with vs without space aggregation\n" +
		renderTable([]string{"set", "rules", "noAgg(KB)", "agg(KB)", "ratio", "avgChildren", "fits(noAgg)", "fits(agg)"}, out)
}

// Fig7Row is one point of Figure 7: ExpCuts throughput and relative speedup
// versus the number of classification threads on CR04.
type Fig7Row struct {
	Threads        int
	ThroughputMbps float64
	Speedup        float64 // relative to the first point
}

// Fig7 sweeps the thread count 7..71 (1..9 MEs × 8 threads − 1 reserved)
// on the largest rule set.
func Fig7(ctx Context) ([]Fig7Row, error) {
	ctx.fillDefaults()
	rs, err := standardRuleSet("CR04")
	if err != nil {
		return nil, err
	}
	tree, err := expcuts.New(rs, expcuts.Config{Headroom: memlayout.PaperHeadroom})
	if err != nil {
		return nil, err
	}
	headers, err := ctx.headers(rs)
	if err != nil {
		return nil, err
	}
	progs := programs(tree, headers)
	var rows []Fig7Row
	for mes := 1; mes <= 9; mes++ {
		threads := mes*8 - 1
		cfg := npsim.DefaultConfig()
		cfg.Threads = threads
		cfg.SRAM.Headroom = memlayout.PaperHeadroom
		r, err := npsim.Run(cfg, progs, ctx.Packets)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig7Row{Threads: threads, ThroughputMbps: r.ThroughputMbps})
	}
	for i := range rows {
		rows[i].Speedup = rows[i].ThroughputMbps / rows[0].ThroughputMbps
	}
	return rows, nil
}

// RenderFig7 formats Figure 7 rows.
func RenderFig7(rows []Fig7Row) string {
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{
			fmt.Sprint(r.Threads),
			fmt.Sprintf("%.0f", r.ThroughputMbps),
			fmt.Sprintf("%.2f", r.Speedup),
		}
	}
	return "Figure 7 — ExpCuts throughput vs threads (CR04, 64-byte packets)\n" +
		renderTable([]string{"threads", "Mbps", "speedup"}, out)
}

// Fig8Row is one point of Figure 8: throughput as a function of how many
// rules a packet linearly searches.
type Fig8Row struct {
	Rules          int
	ThroughputMbps float64
}

// Fig8 measures the linear-search effect: N disjoint rules crafted so that
// every packet matches the last one, forcing exactly N 6-word record reads
// per packet (§6.6: each access reads one 6-word rule record).
func Fig8(ctx Context) ([]Fig8Row, error) {
	ctx.fillDefaults()
	var rows []Fig8Row
	for _, n := range []int{1, 3, 5, 8, 10, 13, 15, 18, 20} {
		rs := scanRules(n)
		cl := linear.New(rs)
		// Every packet matches rule n-1, scanning all n records.
		h := rules.Header{DstPort: uint16(1000 + n - 1), Proto: rules.ProtoTCP}
		prog := cl.Program(h)
		if prog.Result != n-1 {
			return nil, fmt.Errorf("fig8: crafted header matched rule %d, want %d", prog.Result, n-1)
		}
		r, err := ctx.simulate([]nptrace.Program{prog})
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig8Row{Rules: n, ThroughputMbps: r.ThroughputMbps})
	}
	return rows, nil
}

// scanRules builds n disjoint single-port rules; a packet with destination
// port 1000+i matches exactly rule i after scanning rules 0..i.
func scanRules(n int) *rules.RuleSet {
	rs := make([]rules.Rule, n)
	for i := range rs {
		rs[i] = rules.Rule{
			SrcPort: rules.FullPortRange,
			DstPort: rules.PortRange{Lo: uint16(1000 + i), Hi: uint16(1000 + i)},
			Proto:   rules.ProtoMatch{Value: rules.ProtoTCP},
		}
	}
	return rules.NewRuleSet(fmt.Sprintf("scan-%d", n), rs)
}

// RenderFig8 formats Figure 8 rows.
func RenderFig8(rows []Fig8Row) string {
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{fmt.Sprint(r.Rules), fmt.Sprintf("%.0f", r.ThroughputMbps)}
	}
	return "Figure 8 — linear-search effect: throughput vs rules scanned per packet\n" +
		renderTable([]string{"rules", "Mbps"}, out)
}

// Fig9Row is one rule-set column of Figure 9: the three algorithms'
// throughput side by side.
type Fig9Row struct {
	RuleSet      string
	Rules        int
	ExpCutsMbps  float64
	HiCutsMbps   float64
	HSMMbps      float64
	ExpCutsBytes int
	HiCutsBytes  int
	HSMBytes     int
}

// Fig9 compares ExpCuts, HiCuts (binth = 8) and HSM on all seven rule sets
// under the full application configuration.
func Fig9(ctx Context) ([]Fig9Row, error) {
	ctx.fillDefaults()
	sets, err := standardSets()
	if err != nil {
		return nil, err
	}
	rows := make([]Fig9Row, 0, len(sets))
	for _, rs := range sets {
		headers, err := ctx.headers(rs)
		if err != nil {
			return nil, err
		}
		row := Fig9Row{RuleSet: rs.Name, Rules: rs.Len()}

		ec, err := expcuts.New(rs, expcuts.Config{Headroom: memlayout.PaperHeadroom})
		if err != nil {
			return nil, fmt.Errorf("fig9 %s expcuts: %w", rs.Name, err)
		}
		hc, err := hicuts.New(rs, hicuts.Config{Headroom: memlayout.PaperHeadroom})
		if err != nil {
			return nil, fmt.Errorf("fig9 %s hicuts: %w", rs.Name, err)
		}
		hs, err := hsm.New(rs, hsm.Config{})
		if err != nil {
			return nil, fmt.Errorf("fig9 %s hsm: %w", rs.Name, err)
		}
		for _, cl := range []tracedClassifier{ec, hc, hs} {
			r, err := ctx.simulate(programs(cl, headers))
			if err != nil {
				return nil, err
			}
			switch cl.Name() {
			case "ExpCuts":
				row.ExpCutsMbps, row.ExpCutsBytes = r.ThroughputMbps, cl.MemoryBytes()
			case "HiCuts":
				row.HiCutsMbps, row.HiCutsBytes = r.ThroughputMbps, cl.MemoryBytes()
			case "HSM":
				row.HSMMbps, row.HSMBytes = r.ThroughputMbps, cl.MemoryBytes()
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderFig9 formats Figure 9 rows.
func RenderFig9(rows []Fig9Row) string {
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{
			r.RuleSet, fmt.Sprint(r.Rules),
			fmt.Sprintf("%.0f", r.ExpCutsMbps),
			fmt.Sprintf("%.0f", r.HiCutsMbps),
			fmt.Sprintf("%.0f", r.HSMMbps),
			mb(r.ExpCutsBytes), mb(r.HiCutsBytes), mb(r.HSMBytes),
		}
	}
	return "Figure 9 — algorithm comparison (Mbps at 71 threads; memory in MB)\n" +
		renderTable([]string{"set", "rules", "ExpCuts", "HiCuts", "HSM", "EC(MB)", "HC(MB)", "HSM(MB)"}, out)
}

// standardRuleSet loads one named set.
func standardRuleSet(name string) (*rules.RuleSet, error) {
	return ruleSetByName(name)
}
