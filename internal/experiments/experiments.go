// Package experiments regenerates every table and figure of the paper's
// evaluation (§6) plus the ablations DESIGN.md calls out. Each driver
// returns typed rows and a paper-style text rendering; cmd/pcbench and the
// repository benchmarks call these drivers, and EXPERIMENTS.md records
// their output against the paper's numbers.
//
// All drivers are deterministic: rule sets, traces and the NP simulation
// are seeded.
package experiments

import (
	"fmt"
	"strings"

	"repro/internal/memlayout"
	"repro/internal/npsim"
	"repro/internal/nptrace"
	"repro/internal/pktgen"
	"repro/internal/rulegen"
	"repro/internal/rules"
)

// Context carries the shared experiment parameters.
type Context struct {
	// TraceLen is the number of distinct headers whose access programs
	// feed the simulator (cycled to reach Packets).
	TraceLen int
	// Packets is the number of packets each simulation classifies.
	Packets int
	// Seed drives trace generation.
	Seed int64
	// MatchFraction is the rule-directed share of the traces.
	MatchFraction float64
	// PipelineGroup routes the serving experiments through the
	// software-pipelined stage walk at this group size (0 = level-sync,
	// engine.PipelineAuto = GOMAXPROCS-derived). The pipeline sweep
	// ignores it — that experiment sets its own group per cell.
	PipelineGroup int
	// PipelineAffine adds the shard-affine counting-sorted walk order.
	PipelineAffine bool
}

// DefaultContext matches the settings used for EXPERIMENTS.md.
func DefaultContext() Context {
	return Context{TraceLen: 2000, Packets: 25000, Seed: 1, MatchFraction: 0.9}
}

func (c *Context) fillDefaults() {
	d := DefaultContext()
	if c.TraceLen == 0 {
		c.TraceLen = d.TraceLen
	}
	if c.Packets == 0 {
		c.Packets = d.Packets
	}
	if c.MatchFraction == 0 {
		c.MatchFraction = d.MatchFraction
	}
	if c.Seed == 0 {
		c.Seed = d.Seed
	}
}

// tracedClassifier is what every serialized classifier exposes to the
// experiment drivers.
type tracedClassifier interface {
	Name() string
	MemoryBytes() int
	Program(h rules.Header) nptrace.Program
}

// headers generates the experiment trace for a rule set.
func (c Context) headers(rs *rules.RuleSet) ([]rules.Header, error) {
	tr, err := pktgen.Generate(rs, pktgen.Config{
		Count:         c.TraceLen,
		Seed:          c.Seed,
		MatchFraction: c.MatchFraction,
	})
	if err != nil {
		return nil, err
	}
	return tr.Headers, nil
}

// programs records the access programs of cl over the trace.
func programs(cl tracedClassifier, headers []rules.Header) []nptrace.Program {
	out := make([]nptrace.Program, len(headers))
	for i, h := range headers {
		out[i] = cl.Program(h)
	}
	return out
}

// simulate runs programs on the paper's full configuration: 71 threads,
// Table 4 bandwidth headroom.
func (c Context) simulate(progs []nptrace.Program) (npsim.Result, error) {
	cfg := npsim.DefaultConfig()
	cfg.SRAM.Headroom = memlayout.PaperHeadroom
	return npsim.Run(cfg, progs, c.Packets)
}

// standardSets loads the seven named rule sets.
func standardSets() ([]*rules.RuleSet, error) {
	return rulegen.StandardSets()
}

// renderTable formats rows as a fixed-width text table.
func renderTable(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, cell := range r {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	line(header)
	for i := range header {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", widths[i]))
	}
	b.WriteByte('\n')
	for _, r := range rows {
		line(r)
	}
	return b.String()
}

func mb(bytes int) string {
	return fmt.Sprintf("%.2f", float64(bytes)/1e6)
}

func kb(bytes int) string {
	return fmt.Sprintf("%.0f", float64(bytes)/1e3)
}
