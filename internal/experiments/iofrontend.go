package experiments

import (
	"context"
	"fmt"
	"net"
	"time"

	"repro/internal/engine"
	"repro/internal/expcuts"
	"repro/internal/iofront"
	"repro/internal/rulegen"
	"repro/internal/rules"
)

// IOFrontendRow is one rate point of the packet I/O front-end
// experiment: the pcclass-serve / pcload pair run in-process over a
// loopback UDP socket, so the row measures the whole real receive path
// — datagram in, segment assembly, wire decode, sharded streaming
// classification, verdict echo — as round-trip latency quantiles plus
// shed and loss accounting, not just the in-memory classify loop.
type IOFrontendRow struct {
	// RatePPS is the target send rate (0 = unpaced).
	RatePPS int
	// Sent / Replies / Lost are the load generator's wire accounting.
	Sent, Replies, Lost int
	// DecodeErrors counts replies carrying VerdictDecodeError; the CI
	// gate pins this to zero — well-formed traffic must never miscount.
	DecodeErrors int
	// AchievedPPS is the attained send rate; ShedRate the shed fraction
	// of replies.
	AchievedPPS float64
	ShedRate    float64
	// P50Us/P99Us/P999Us/MeanUs are round-trip latency order statistics
	// in microseconds (≈3% histogram resolution).
	P50Us, P99Us, P999Us, MeanUs float64
}

// ioFrontendPackets bounds packets per rate point so the sweep stays
// CI-sized even with a large experiment Context.
const ioFrontendPackets = 8000

// IOFrontend runs the loopback serve/load pair on CR04 ExpCuts, one row
// per target rate (0 = unpaced). A nil rates slice runs the adaptive
// default: an unpaced row to find this host's loopback capacity, then a
// paced row at half that capacity — latency at a fixed fraction of
// measured capacity is portable across hosts, where any absolute pps
// target is meaningless on a box whose syscalls cost 100x another's.
func IOFrontend(ctx Context, rates []int) ([]IOFrontendRow, error) {
	ctx.fillDefaults()
	adaptive := len(rates) == 0
	if adaptive {
		rates = []int{0}
	}
	rs, err := rulegen.Standard("CR04")
	if err != nil {
		return nil, fmt.Errorf("iofrontend: %w", err)
	}
	tree, err := expcuts.New(rs, expcuts.Config{})
	if err != nil {
		return nil, fmt.Errorf("iofrontend: %w", err)
	}
	packets := ctx.Packets
	if packets > ioFrontendPackets {
		packets = ioFrontendPackets
	}
	headers, err := ctx.headers(rs)
	if err != nil {
		return nil, fmt.Errorf("iofrontend: %w", err)
	}

	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		return nil, fmt.Errorf("iofrontend: %w", err)
	}
	serveCtx, cancel := context.WithCancel(context.Background())
	type served struct {
		rep iofront.ServeReport
		err error
	}
	done := make(chan served, 1)
	go func() {
		// 5ms flush, not the 500µs default: each deadline expiry costs a
		// timer wake, which sandboxed and virtualized kernels bill at
		// milliseconds, so a sub-millisecond flush makes trickle-rate
		// serving timer-bound (~300 pps observed under gVisor) instead of
		// traffic-bound. The paced row's p50 reads ≈ the flush interval —
		// that is the batching tax the row exists to measure.
		rep, err := iofront.Serve(serveCtx, conn, tree, iofront.ServerConfig{
			Engine:        engine.Config{},
			FlushInterval: 5 * time.Millisecond,
			Echo:          true,
		})
		done <- served{rep, err}
	}()

	var rows []IOFrontendRow
	var loadErr error
	for ri := 0; ri < len(rates); ri++ {
		rate := rates[ri]
		hs := headers
		if len(hs) > packets {
			hs = hs[:packets]
		} else if len(hs) < packets {
			grown := make([]rules.Header, packets)
			for i := range grown {
				grown[i] = hs[i%len(hs)]
			}
			hs = grown
		}
		rep, err := iofront.RunLoad(context.Background(), iofront.LoadConfig{
			Addr:    conn.LocalAddr().String(),
			Headers: hs,
			Rate:    rate,
		})
		if err != nil {
			loadErr = fmt.Errorf("iofrontend: rate %d: %w", rate, err)
			break
		}
		rows = append(rows, IOFrontendRow{
			RatePPS:      rate,
			Sent:         rep.Sent,
			Replies:      rep.Replies,
			Lost:         rep.Lost,
			DecodeErrors: rep.DecodeErrors,
			AchievedPPS:  rep.AchievedPPS,
			ShedRate:     rep.ShedRate,
			P50Us:        float64(rep.P50.Nanoseconds()) / 1e3,
			P99Us:        float64(rep.P99.Nanoseconds()) / 1e3,
			P999Us:       float64(rep.P999.Nanoseconds()) / 1e3,
			MeanUs:       float64(rep.Mean.Nanoseconds()) / 1e3,
		})
		if adaptive && rate == 0 {
			if half := int(rep.AchievedPPS / 2); half > 0 {
				rates = append(rates, half)
			}
		}
	}

	cancel()
	s := <-done
	conn.Close()
	if loadErr != nil {
		return nil, loadErr
	}
	if s.err != nil {
		return nil, fmt.Errorf("iofrontend: serve: %w", s.err)
	}
	return rows, nil
}

// RenderIOFrontend formats the front-end latency table.
func RenderIOFrontend(rows []IOFrontendRow) string {
	table := make([][]string, len(rows))
	for i, r := range rows {
		rate := "unpaced"
		if r.RatePPS > 0 {
			rate = fmt.Sprintf("%d", r.RatePPS)
		}
		table[i] = []string{
			rate,
			fmt.Sprintf("%d", r.Sent),
			fmt.Sprintf("%.0f", r.AchievedPPS),
			fmt.Sprintf("%.0f", r.P50Us),
			fmt.Sprintf("%.0f", r.P99Us),
			fmt.Sprintf("%.0f", r.P999Us),
			fmt.Sprintf("%.4f", r.ShedRate),
			fmt.Sprintf("%d", r.Lost),
			fmt.Sprintf("%d", r.DecodeErrors),
		}
	}
	return "Packet I/O front end — loopback UDP round-trip latency (CR04, ExpCuts)\n" +
		renderTable([]string{"Rate pps", "Sent", "Achieved", "p50 µs", "p99 µs", "p999 µs", "Shed", "Lost", "DecodeErr"}, table)
}
