package experiments

import (
	"fmt"

	"repro/internal/expcuts"
	"repro/internal/hicuts"
	"repro/internal/hsm"
	"repro/internal/hypercuts"
	"repro/internal/linear"
	"repro/internal/memlayout"
	"repro/internal/nptrace"
	"repro/internal/rfc"
	"repro/internal/rules"
)

// newHSM builds the HSM classifier with defaults.
func newHSM(rs *rules.RuleSet) (*hsm.Classifier, error) {
	return hsm.New(rs, hsm.Config{})
}

// StrideRow is one point of the stride ablation: the w of 2^w cuts per
// node trades tree depth (and so the explicit access bound) against memory.
type StrideRow struct {
	StrideW        uint
	Depth          int
	WorstAccesses  int
	MemoryBytes    int
	ThroughputMbps float64
}

// AblationStride sweeps w ∈ {2, 4, 8} on CR02 (§4.2.1: the paper fixes
// w = 8; smaller strides save memory but deepen the tree).
func AblationStride(ctx Context) ([]StrideRow, error) {
	ctx.fillDefaults()
	rs, err := ruleSetByName("CR02")
	if err != nil {
		return nil, err
	}
	headers, err := ctx.headers(rs)
	if err != nil {
		return nil, err
	}
	var rows []StrideRow
	for _, w := range []uint{2, 4, 8} {
		v := w
		if v > 4 {
			v = 4
		}
		tree, err := expcuts.New(rs, expcuts.Config{StrideW: w, HabsV: v, Headroom: memlayout.PaperHeadroom})
		if err != nil {
			return nil, fmt.Errorf("stride %d: %w", w, err)
		}
		r, err := ctx.simulate(programs(tree, headers))
		if err != nil {
			return nil, err
		}
		rows = append(rows, StrideRow{
			StrideW:        w,
			Depth:          tree.Depth(),
			WorstAccesses:  tree.Stats().WorstCaseAccesses,
			MemoryBytes:    tree.MemoryBytes(),
			ThroughputMbps: r.ThroughputMbps,
		})
	}
	return rows, nil
}

// RenderAblationStride formats the stride ablation.
func RenderAblationStride(rows []StrideRow) string {
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{
			fmt.Sprint(r.StrideW), fmt.Sprint(r.Depth), fmt.Sprint(r.WorstAccesses),
			mb(r.MemoryBytes), fmt.Sprintf("%.0f", r.ThroughputMbps),
		}
	}
	return "Ablation — stride w (CR02): depth/memory/throughput trade\n" +
		renderTable([]string{"w", "depth", "worstAcc", "mem(MB)", "Mbps"}, out)
}

// HABSRow is one point of the HABS-width ablation.
type HABSRow struct {
	HabsV       uint
	MemoryBytes int
}

// AblationHABS sweeps the HABS exponent v on CR02 at w = 8 (§4.2.2: the
// paper packs a 16-bit HABS, v = 4, into the node word; wider strings
// track runs more precisely and store fewer duplicate sub-arrays).
func AblationHABS(ctx Context) ([]HABSRow, error) {
	ctx.fillDefaults()
	rs, err := ruleSetByName("CR02")
	if err != nil {
		return nil, err
	}
	var rows []HABSRow
	for _, v := range []uint{1, 2, 4, 5} {
		tree, err := expcuts.New(rs, expcuts.Config{StrideW: 8, HabsV: v, Headroom: memlayout.PaperHeadroom})
		if err != nil {
			return nil, fmt.Errorf("habs v=%d: %w", v, err)
		}
		rows = append(rows, HABSRow{HabsV: v, MemoryBytes: tree.MemoryBytes()})
	}
	return rows, nil
}

// RenderAblationHABS formats the HABS ablation.
func RenderAblationHABS(rows []HABSRow) string {
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{fmt.Sprint(r.HabsV), fmt.Sprint(1 << r.HabsV), mb(r.MemoryBytes)}
	}
	return "Ablation — HABS width v (CR02, w=8): aggregated memory\n" +
		renderTable([]string{"v", "bits", "mem(MB)"}, out)
}

// PopCountRow compares the hardware POP_COUNT instruction against RISC
// emulation (§5.4).
type PopCountRow struct {
	Variant        string
	CyclesPerOp    uint32
	ThroughputMbps float64
}

// AblationPopCount runs the same ExpCuts lookup under the two
// instruction-selection variants.
func AblationPopCount(ctx Context) ([]PopCountRow, error) {
	ctx.fillDefaults()
	rs, err := ruleSetByName("CR04")
	if err != nil {
		return nil, err
	}
	tree, err := expcuts.New(rs, expcuts.Config{Headroom: memlayout.PaperHeadroom})
	if err != nil {
		return nil, err
	}
	headers, err := ctx.headers(rs)
	if err != nil {
		return nil, err
	}
	var rows []PopCountRow
	for _, variant := range []struct {
		name  string
		costs nptrace.Costs
	}{
		{"POP_COUNT (hardware)", nptrace.DefaultCosts},
		{"RISC emulation", riscCosts()},
	} {
		progs := make([]nptrace.Program, len(headers))
		for i, h := range headers {
			progs[i] = tree.ProgramCosts(h, variant.costs)
		}
		r, err := ctx.simulate(progs)
		if err != nil {
			return nil, err
		}
		rows = append(rows, PopCountRow{
			Variant:        variant.name,
			CyclesPerOp:    variant.costs.PopCount,
			ThroughputMbps: r.ThroughputMbps,
		})
	}
	return rows, nil
}

func riscCosts() nptrace.Costs {
	c := nptrace.DefaultCosts
	c.PopCount = c.PopCountRISC
	return c
}

// RenderAblationPopCount formats the POP_COUNT ablation.
func RenderAblationPopCount(rows []PopCountRow) string {
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{r.Variant, fmt.Sprint(r.CyclesPerOp), fmt.Sprintf("%.0f", r.ThroughputMbps)}
	}
	return "Ablation — POP_COUNT instruction vs RISC emulation (CR04)\n" +
		renderTable([]string{"variant", "cycles/op", "Mbps"}, out)
}

// BinthRow is one point of the HiCuts binth sweep.
type BinthRow struct {
	Binth          int
	MemoryBytes    int
	MaxLeafRules   int
	ThroughputMbps float64
}

// AblationBinth sweeps HiCuts binth ∈ {1, 2, 4, 8, 16} on FW02 (§6.6
// motivates ExpCuts as the binth → 1 limit; small binth needs overlap
// pruning to stay buildable).
func AblationBinth(ctx Context) ([]BinthRow, error) {
	ctx.fillDefaults()
	rs, err := ruleSetByName("FW02")
	if err != nil {
		return nil, err
	}
	headers, err := ctx.headers(rs)
	if err != nil {
		return nil, err
	}
	var rows []BinthRow
	for _, binth := range []int{1, 2, 4, 8, 16} {
		tree, err := hicuts.New(rs, hicuts.Config{
			Binth:        binth,
			PruneCovered: binth <= 2,
			Headroom:     memlayout.PaperHeadroom,
		})
		if err != nil {
			return nil, fmt.Errorf("binth %d: %w", binth, err)
		}
		r, err := ctx.simulate(programs(tree, headers))
		if err != nil {
			return nil, err
		}
		rows = append(rows, BinthRow{
			Binth:          binth,
			MemoryBytes:    tree.MemoryBytes(),
			MaxLeafRules:   tree.Stats().MaxLeafRules,
			ThroughputMbps: r.ThroughputMbps,
		})
	}
	return rows, nil
}

// RenderAblationBinth formats the binth sweep.
func RenderAblationBinth(rows []BinthRow) string {
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{
			fmt.Sprint(r.Binth), mb(r.MemoryBytes),
			fmt.Sprint(r.MaxLeafRules), fmt.Sprintf("%.0f", r.ThroughputMbps),
		}
	}
	return "Ablation — HiCuts binth sweep (FW02)\n" +
		renderTable([]string{"binth", "mem(MB)", "maxLeaf", "Mbps"}, out)
}

// SharingRow is one point of the node-sharing ablation.
type SharingRow struct {
	Mode        string
	Nodes       int
	MemoryBytes int
}

// AblationSharing compares global node sharing (ExpCuts) against
// sibling-only sharing (HiCuts-style pointer aggregation) on FW02.
func AblationSharing(ctx Context) ([]SharingRow, error) {
	ctx.fillDefaults()
	rs, err := ruleSetByName("FW02")
	if err != nil {
		return nil, err
	}
	var rows []SharingRow
	for _, mode := range []expcuts.SharingMode{expcuts.ShareGlobal, expcuts.ShareSiblings} {
		tree, err := expcuts.New(rs, expcuts.Config{Sharing: mode, Headroom: memlayout.PaperHeadroom})
		if err != nil {
			return nil, fmt.Errorf("sharing %v: %w", mode, err)
		}
		rows = append(rows, SharingRow{
			Mode:        mode.String(),
			Nodes:       tree.Stats().Nodes,
			MemoryBytes: tree.MemoryBytes(),
		})
	}
	return rows, nil
}

// RenderAblationSharing formats the sharing ablation.
func RenderAblationSharing(rows []SharingRow) string {
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{r.Mode, fmt.Sprint(r.Nodes), mb(r.MemoryBytes)}
	}
	return "Ablation — node sharing scope (FW02, w=8)\n" +
		renderTable([]string{"mode", "nodes", "mem(MB)"}, out)
}

// ExtendedRow is one row of the extended comparison including RFC and
// linear search.
type ExtendedRow struct {
	Algorithm      string
	ThroughputMbps float64
	MemoryBytes    int
	WorstAccesses  int
}

// Extended compares all five classifiers on one rule set — the paper's
// three, the RFC extension, and the linear-search floor.
func Extended(ctx Context, setName string) ([]ExtendedRow, error) {
	ctx.fillDefaults()
	rs, err := ruleSetByName(setName)
	if err != nil {
		return nil, err
	}
	headers, err := ctx.headers(rs)
	if err != nil {
		return nil, err
	}
	ec, err := expcuts.New(rs, expcuts.Config{Headroom: memlayout.PaperHeadroom})
	if err != nil {
		return nil, err
	}
	hc, err := hicuts.New(rs, hicuts.Config{Headroom: memlayout.PaperHeadroom})
	if err != nil {
		return nil, err
	}
	hsCl, err := newHSM(rs)
	if err != nil {
		return nil, err
	}
	rf, err := rfc.New(rs, rfc.Config{})
	if err != nil {
		return nil, err
	}
	hyper, err := hypercuts.New(rs, hypercuts.Config{Headroom: memlayout.PaperHeadroom})
	if err != nil {
		return nil, err
	}
	ln := linear.New(rs)
	worst := map[string]int{
		"ExpCuts":   ec.Stats().WorstCaseAccesses,
		"HiCuts":    hc.Stats().WorstCaseAccesses,
		"HyperCuts": hyper.Stats().WorstCaseAccesses,
		"HSM":       hsCl.Stats().WorstCaseAccesses,
		"RFC":       rf.Stats().WorstCaseAccesses,
		"Linear":    rs.Len(),
	}
	var rows []ExtendedRow
	for _, cl := range []tracedClassifier{ec, hc, hyper, hsCl, rf, ln} {
		r, err := ctx.simulate(programs(cl, headers))
		if err != nil {
			return nil, err
		}
		rows = append(rows, ExtendedRow{
			Algorithm:      cl.Name(),
			ThroughputMbps: r.ThroughputMbps,
			MemoryBytes:    cl.MemoryBytes(),
			WorstAccesses:  worst[cl.Name()],
		})
	}
	return rows, nil
}

// RenderExtended formats the extended comparison.
func RenderExtended(rows []ExtendedRow, setName string) string {
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{
			r.Algorithm, fmt.Sprintf("%.0f", r.ThroughputMbps),
			mb(r.MemoryBytes), fmt.Sprint(r.WorstAccesses),
		}
	}
	return fmt.Sprintf("Extended comparison — all classifiers on %s\n", setName) +
		renderTable([]string{"algorithm", "Mbps", "mem(MB)", "worstAcc"}, out)
}
