package experiments

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"repro/internal/engine"
	"repro/internal/expcuts"
	"repro/internal/hicuts"
	"repro/internal/hsm"
	"repro/internal/rfc"
	"repro/internal/rulegen"
	"repro/internal/rules"
)

// ServeRow is one algorithm's serving-path throughput comparison:
// the hardened engine driven per-packet (BatchSize 1) versus batched.
type ServeRow struct {
	Algo          string
	PerPacketMpps float64
	BatchedMpps   float64
	Speedup       float64
}

// ServeRuleSize is the rule count of the serving benchmark's ACL set
// (the "1k-rule ACL set" the PR baseline tracks).
const ServeRuleSize = 1000

// serveReps is how many timed runs each configuration gets; the fastest
// is reported, the standard way to suppress scheduler noise.
const serveReps = 5

// servePasses is how many times each timed run traverses its stream.
// A single 25k-packet traversal finishes in single-digit milliseconds on
// the batched path, short enough that one scheduler preemption on a
// shared host halves the reading and best-of-reps still swings by 2x
// between invocations — which is fatal for the benchjson regression
// gates comparing against a tracked baseline. Multiple passes stretch
// each timed window to tens of milliseconds so preemptions amortize.
const servePasses = 8

// ServeRuleSet builds the deterministic 1k-rule core-router ACL set the
// serving benchmark runs against.
func ServeRuleSet(seed int64) (*rules.RuleSet, error) {
	return rulegen.Generate(rulegen.Config{
		Kind: rulegen.CoreRouter, Size: ServeRuleSize, Seed: seed, Name: "ACL1K",
	})
}

// Serve measures engine throughput per-packet versus batched for the four
// main algorithms on the 1k-rule ACL set. batchSize 0 uses the engine
// default. The per-packet baseline is the same engine at BatchSize 1, so
// the comparison isolates batching itself (same workers, same channels,
// same ordering guarantee).
func Serve(ctx Context, batchSize int) ([]ServeRow, error) {
	ctx.fillDefaults()
	if batchSize == 0 {
		batchSize = engine.DefaultBatchSize
	}
	rs, err := ServeRuleSet(ctx.Seed)
	if err != nil {
		return nil, err
	}
	trace, err := ctx.headers(rs)
	if err != nil {
		return nil, err
	}
	hs := make([]rules.Header, ctx.Packets)
	for i := range hs {
		hs[i] = trace[i%len(trace)]
	}

	type algo struct {
		name  string
		build func() (engine.Classifier, error)
	}
	algos := []algo{
		{"ExpCuts", func() (engine.Classifier, error) { return expcuts.New(rs, expcuts.Config{}) }},
		{"HiCuts", func() (engine.Classifier, error) { return hicuts.New(rs, hicuts.Config{}) }},
		{"HSM", func() (engine.Classifier, error) { return hsm.New(rs, hsm.Config{}) }},
		{"RFC", func() (engine.Classifier, error) { return rfc.New(rs, rfc.Config{}) }},
	}

	rows := make([]ServeRow, 0, len(algos))
	for _, a := range algos {
		cl, err := a.build()
		if err != nil {
			return nil, fmt.Errorf("serve: building %s: %w", a.name, err)
		}
		perPacket, err := engineMpps(ctx, cl, hs, 1)
		if err != nil {
			return nil, fmt.Errorf("serve: %s per-packet run: %w", a.name, err)
		}
		batched, err := engineMpps(ctx, cl, hs, batchSize)
		if err != nil {
			return nil, fmt.Errorf("serve: %s batched run: %w", a.name, err)
		}
		rows = append(rows, ServeRow{
			Algo:          a.name,
			PerPacketMpps: perPacket,
			BatchedMpps:   batched,
			Speedup:       batched / perPacket,
		})
	}
	return rows, nil
}

// engineMpps times serveReps windows of servePasses ordered engine runs
// over hs at the given batch size and returns the fastest window in
// Mpkt/s. Each window starts from a forced GC so no window pays the
// allocation debt of the one before it. The context's pipeline knobs
// carry through to the engine, so -pipeline serving comparisons reuse
// this path.
func engineMpps(ctx Context, cl engine.Classifier, hs []rules.Header, batchSize int) (float64, error) {
	cfg := engine.DefaultConfig()
	cfg.BatchSize = batchSize
	cfg.PipelineGroup = ctx.PipelineGroup
	cfg.PipelineAffine = ctx.PipelineAffine
	var best time.Duration
	for rep := 0; rep < serveReps; rep++ {
		runtime.GC()
		start := time.Now()
		for pass := 0; pass < servePasses; pass++ {
			if _, err := engine.RunContext(context.Background(), cl, cfg, hs, func(engine.Result) {}); err != nil {
				return 0, err
			}
		}
		if elapsed := time.Since(start); rep == 0 || elapsed < best {
			best = elapsed
		}
	}
	return float64(len(hs)) * servePasses / best.Seconds() / 1e6, nil
}

// RenderServe formats the serving comparison.
func RenderServe(rows []ServeRow, batchSize int) string {
	if batchSize == 0 {
		batchSize = engine.DefaultBatchSize
	}
	table := make([][]string, len(rows))
	for i, r := range rows {
		table[i] = []string{
			r.Algo,
			fmt.Sprintf("%.2f", r.PerPacketMpps),
			fmt.Sprintf("%.2f", r.BatchedMpps),
			fmt.Sprintf("%.2fx", r.Speedup),
		}
	}
	return fmt.Sprintf("Serving fast path — engine throughput on ACL1K (%d rules), batch=%d\n%s",
		ServeRuleSize, batchSize,
		renderTable([]string{"Algorithm", "Per-packet Mpps", "Batched Mpps", "Speedup"}, table))
}
