package experiments

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/buildgov"
	"repro/internal/engine"
	"repro/internal/faultinject"
	"repro/internal/obs"
	"repro/internal/tenant"
	"repro/internal/update"
)

// TenantRow is one configuration of the multi-tenant isolation
// experiment: the victim tenant's serving throughput and latency with
// and without a hostile co-resident tenant, plus the whole-box
// aggregate when the hostile tenant's (degraded, linear-served) traffic
// shares the stream.
type TenantRow struct {
	Mode string // "solo" or "hostile"
	// VictimMpps is the victim tenant's throughput over its own pure
	// stream — the column the isolation guarantee is about.
	VictimMpps float64
	// VictimNsPerPkt is the same reading as per-packet latency.
	VictimNsPerPkt float64
	// AggregateMpps is whole-box throughput over the mixed stream
	// (victim + a 1/16 share of hostile-tenant packets; on the solo row
	// the stream is pure victim, so it equals VictimMpps).
	AggregateMpps float64
	// UpdatesPerSec is the hostile tenant's sustained delta-churn rate
	// while the victim rows were measured (0 on the solo row).
	UpdatesPerSec float64
	// IsolationRatio is the victim's hostile/solo throughput ratio (set on
	// the hostile row; the acceptance floor is 0.9 — ≤ 10% degradation).
	// It is the median of the per-rep paired ratios, where each rep times
	// the solo and hostile windows back-to-back — NOT the quotient of the
	// two VictimMpps columns, which are each best-of-reps and may come
	// from different reps. The median of paired readings is the stable
	// estimator of interference on a shared host; the quotient of two
	// independently-selected best windows is not.
	IsolationRatio float64
	// VictimAlgo/HostileAlgo are DescribeAlgorithm of each tenant after
	// the row ran: the victim must stay "expcuts", the hostile tenant is
	// pinned to "linear" by its tripped budget.
	VictimAlgo  string
	HostileAlgo string
}

// tenantHostileMix is the hostile share of the mixed (aggregate) stream:
// one hostile packet per tenantHostileMix packets. The hostile tenant
// serves linear over a wildcard storm — orders slower per packet than
// the victim's expcuts — so its share models a noisy-neighbor trickle,
// not an equal partner; the victim columns come from the pure stream.
const tenantHostileMix = 16

// tenantStormRules sizes the hostile tenant's WildcardStorm table.
const tenantStormRules = 160

// tenantReps is how many solo/hostile/mixed rep triples the experiment
// samples. Higher than serveReps because the isolation ratio needs one
// rep where BOTH halves of the pair landed in a quiet host window, and
// each triple only costs a few tens of milliseconds.
const tenantReps = 15

// tenantPasses is how many times each timed measurement runs its stream.
// One pass over a 25k-packet stream is ~4ms of serving — a single
// scheduler preemption on a shared box erases half of it. Twelve passes
// stretch the timed window to ~45ms so preemptions amortize instead of
// deciding the row.
const tenantPasses = 12

// Tenants measures hostile-tenant isolation on the serving path. The
// victim tenant serves the standard ACL1K trace through the tenant
// engine twice: once alone in the registry ("solo"), and once
// co-resident with a hostile tenant ("hostile") — a WildcardStorm table
// whose tripped build budget pins it to the linear rung, with a
// FlappingUpdater goroutine churning its delta layer as fast as the
// manager absorbs (paced only by a 1ms breather) for the whole
// measurement. The victim-Mpps gap between the rows is the total
// control-plane interference tenancy failed to isolate: flow-cache
// pressure, admission-governor contention, allocator and GC noise from
// the churn. The registry's COW snapshots and per-tenant generations
// are why the gap stays inside the ≤ 10% acceptance band.
func Tenants(ctx Context, batchSize, shards int) ([]TenantRow, error) {
	ctx.fillDefaults()
	if batchSize == 0 {
		batchSize = engine.DefaultBatchSize
	}
	victimRS, err := ServeRuleSet(ctx.Seed)
	if err != nil {
		return nil, err
	}
	trace, err := ctx.headers(victimRS)
	if err != nil {
		return nil, err
	}
	storm := faultinject.WildcardStorm("hostile-storm", tenantStormRules, ctx.Seed+7)
	stormTrace, err := ctx.headers(storm)
	if err != nil {
		return nil, err
	}

	const victimID, hostileID = 1, 2
	pure := make([]engine.TenantPacket, ctx.Packets)
	for i := range pure {
		pure[i] = engine.TenantPacket{Tenant: victimID, Header: trace[i%len(trace)]}
	}
	mixed := make([]engine.TenantPacket, ctx.Packets)
	for i := range mixed {
		if i%tenantHostileMix == tenantHostileMix-1 {
			mixed[i] = engine.TenantPacket{Tenant: hostileID, Header: stormTrace[i%len(stormTrace)]}
		} else {
			mixed[i] = engine.TenantPacket{Tenant: victimID, Header: trace[i%len(trace)]}
		}
	}

	cfg := engine.DefaultConfig()
	cfg.BatchSize = batchSize
	cfg.FlowCacheFlows = 1024
	if shards > 0 {
		cfg.Shards = shards
	}

	// serveOnce times tenantPasses consecutive runs of one stream against
	// the registry as a single measurement window. The forced GC first
	// means every window starts from the same heap state: without it the
	// allocation-heavy hostile windows accrue GC debt that the pacer then
	// collects during the NEXT window — systematically taxing whichever
	// mode runs second and skewing the solo/hostile comparison.
	serveOnce := func(reg *tenant.Registry, pkts []engine.TenantPacket) (time.Duration, error) {
		runtime.GC()
		start := time.Now()
		for pass := 0; pass < tenantPasses; pass++ {
			if _, err := engine.RunTenants(context.Background(), reg, cfg, pkts, nil); err != nil {
				return 0, err
			}
		}
		return time.Since(start), nil
	}
	victimCfg := tenant.Config{
		Name:   "victim",
		Update: update.Config{ValidateSamples: -1, CompactThreshold: -1},
	}

	// Solo registry: the victim alone. The solo and hostile rows are
	// measured rep-interleaved below, never in separate windows: on a
	// shared box the load regime shifts on second scales, and measuring
	// the rows back-to-back in each rep is what keeps IsolationRatio a
	// reading of tenancy interference instead of host weather.
	soloReg := tenant.NewRegistry(tenant.Options{})
	soloVictim, err := soloReg.Add(victimID, victimRS, victimCfg)
	if err != nil {
		return nil, fmt.Errorf("tenants: solo victim: %w", err)
	}
	soloAlgo, _ := soloVictim.DescribeAlgorithm()

	// Hostile registry: same victim next to the storm tenant, whose budget
	// cannot fit any tree rung, with delta churn for the whole row.
	reg := tenant.NewRegistry(tenant.Options{Events: obs.NewRing(256)})
	victim, err := reg.Add(victimID, victimRS, victimCfg)
	if err != nil {
		return nil, fmt.Errorf("tenants: victim: %w", err)
	}
	hostile, err := reg.Add(hostileID, storm, tenant.Config{
		Name:   "hostile",
		Budget: &buildgov.Budget{MaxNodes: 48},
		// Auto-compaction stays on (the production config): without it the
		// hostile delta grows all run, ApplyDelta slows from microseconds
		// toward milliseconds, and the churn goroutine's rising duty cycle
		// — not a tenancy leak — eats a core out from under the victim.
		Update:         update.Config{ValidateSamples: -1},
		ShedOnOverload: true,
	})
	if err != nil {
		return nil, fmt.Errorf("tenants: hostile: %w", err)
	}

	pool, err := ServeRuleSet(ctx.Seed + 13)
	if err != nil {
		return nil, err
	}
	// The churn goroutine locks gate per burst; solo reps hold the gate so
	// the churn (which only exists in the hostile scenario) never steals
	// cycles from the solo reading it is being compared against.
	flap := faultinject.NewFlappingUpdater(storm.Rules, pool.Rules[:64], ctx.Seed+21)
	var ops atomic.Uint64
	var gate sync.Mutex
	churnCtx, stopChurn := context.WithCancel(context.Background())
	defer stopChurn()
	var churn sync.WaitGroup
	churn.Add(1)
	var churnErr atomic.Value
	go func() {
		defer churn.Done()
		for churnCtx.Err() == nil {
			gate.Lock()
			burst := flap.NextBurst()
			err := hostile.ApplyDelta(burst)
			gate.Unlock()
			if err != nil {
				churnErr.Store(err)
				return
			}
			ops.Add(uint64(len(burst)))
			// 1ms pacing: a hostile tenant churning ~1k bursts/s is still
			// orders beyond realistic rule-update rates, while keeping the
			// churn goroutine's scheduler share — CPU interference no
			// generation or admission machinery can hide on a small core
			// count — from dominating the isolation reading itself.
			time.Sleep(time.Millisecond)
		}
	}()

	// Each rep measures solo, hostile-pure and hostile-mixed back-to-back.
	// The throughput columns take the best window per mode (the usual
	// best-of-reps estimator); the isolation ratio instead takes the
	// median of per-rep PAIRED ratios, because each rep's solo and
	// hostile windows share one load regime while two best windows from
	// different reps do not.
	var bestSolo, bestHostile, bestMixed time.Duration
	ratios := make([]float64, 0, tenantReps)
	var hostileOps uint64
	var hostileDur time.Duration
	for rep := 0; rep < tenantReps; rep++ {
		gate.Lock()
		dSolo, runErr := serveOnce(soloReg, pure)
		gate.Unlock()
		if runErr != nil {
			return nil, fmt.Errorf("tenants: solo run: %w", runErr)
		}
		o0, t0 := ops.Load(), time.Now()
		dHostile, runErr := serveOnce(reg, pure)
		if runErr == nil {
			var dMixed time.Duration
			dMixed, runErr = serveOnce(reg, mixed)
			if runErr == nil {
				hostileOps += ops.Load() - o0
				hostileDur += time.Since(t0)
				ratios = append(ratios, dSolo.Seconds()/dHostile.Seconds())
				if rep == 0 || dSolo < bestSolo {
					bestSolo = dSolo
				}
				if rep == 0 || dHostile < bestHostile {
					bestHostile = dHostile
				}
				if rep == 0 || dMixed < bestMixed {
					bestMixed = dMixed
				}
				continue
			}
		}
		return nil, fmt.Errorf("tenants: hostile run: %w", runErr)
	}
	stopChurn()
	churn.Wait()
	if cerr, _ := churnErr.Load().(error); cerr != nil {
		return nil, fmt.Errorf("tenants: hostile churn: %w", cerr)
	}

	toMpps := func(d time.Duration) float64 {
		return float64(ctx.Packets) * tenantPasses / d.Seconds() / 1e6
	}
	soloMpps, hostileMpps := toMpps(bestSolo), toMpps(bestHostile)
	sort.Float64s(ratios)
	isolation := ratios[len(ratios)/2]
	vAlgo, _ := victim.DescribeAlgorithm()
	hAlgo, _ := hostile.DescribeAlgorithm()
	return []TenantRow{
		{
			Mode: "solo", VictimMpps: soloMpps, AggregateMpps: soloMpps,
			VictimNsPerPkt: 1e3 / soloMpps, VictimAlgo: soloAlgo,
		},
		{
			Mode: "hostile", VictimMpps: hostileMpps, AggregateMpps: toMpps(bestMixed),
			VictimNsPerPkt: 1e3 / hostileMpps,
			UpdatesPerSec:  float64(hostileOps) / hostileDur.Seconds(),
			IsolationRatio: isolation,
			VictimAlgo:     vAlgo, HostileAlgo: hAlgo,
		},
	}, nil
}

// RenderTenants formats the isolation rows.
func RenderTenants(rows []TenantRow, batchSize, shards int) string {
	if batchSize == 0 {
		batchSize = engine.DefaultBatchSize
	}
	table := make([][]string, len(rows))
	for i, r := range rows {
		iso := "—"
		if r.IsolationRatio > 0 {
			iso = fmt.Sprintf("%.2f", r.IsolationRatio)
		}
		algo := r.VictimAlgo
		if r.HostileAlgo != "" {
			algo += "/" + r.HostileAlgo
		}
		table[i] = []string{
			r.Mode,
			fmt.Sprintf("%.2f", r.VictimMpps),
			fmt.Sprintf("%.0f", r.VictimNsPerPkt),
			fmt.Sprintf("%.2f", r.AggregateMpps),
			fmt.Sprintf("%.0f", r.UpdatesPerSec),
			iso,
			algo,
		}
	}
	return fmt.Sprintf("Hostile-tenant isolation — victim ACL1K (%d rules) vs WildcardStorm(%d), batch=%d, shards=%d\n%s",
		ServeRuleSize, tenantStormRules, batchSize, shards,
		renderTable([]string{"Mode", "Victim Mpps", "Victim ns/pkt", "Aggregate Mpps", "Updates/s", "Isolation", "Algo (victim/hostile)"}, table))
}
