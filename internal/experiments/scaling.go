package experiments

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"repro/internal/engine"
	"repro/internal/expcuts"
	"repro/internal/rules"
)

// ScalingRow is one shard count of the multi-core serving curve, in two
// readings. MeasuredMpps is wall-clock throughput on this host, which
// cannot exceed what GOMAXPROCS cores can deliver — on a 1-core
// container every row measures about the same. CriticalPathMpps is the
// projected throughput with one core per shard: packets divided by the
// busiest shard's classification time. It is the software analogue of
// the paper's microengine utilization model — the flow-hash partition's
// load balance is what the projection actually measures, so it is an
// upper bound that real cores approach only when dispatch and emission
// are not the bottleneck.
type ScalingRow struct {
	Shards           int
	Gomaxprocs       int // GOMAXPROCS actually in effect for this row
	MeasuredMpps     float64
	CriticalPathMpps float64
	// Speedup is CriticalPathMpps over the 1-shard CriticalPathMpps.
	Speedup float64
}

// scalingReps is how many timed runs each shard count gets; more than
// the serve comparison because the per-shard critical path needs more
// samples for a stable minimum on a shared host.
const scalingReps = 11

// ServeScaling measures the sharded engine's scaling curve for batched
// ExpCuts on the 1k-rule ACL set across the given shard counts
// (defaulting to 1, 2, 4, 8). The 1-shard row runs the unsharded
// pipeline, so it is directly comparable to the tracked BENCH_PR3
// batched baseline.
func ServeScaling(ctx Context, batchSize int, shardCounts []int) ([]ScalingRow, error) {
	ctx.fillDefaults()
	if batchSize == 0 {
		batchSize = engine.DefaultBatchSize
	}
	if len(shardCounts) == 0 {
		shardCounts = []int{1, 2, 4, 8}
	}
	rs, err := ServeRuleSet(ctx.Seed)
	if err != nil {
		return nil, err
	}
	trace, err := ctx.headers(rs)
	if err != nil {
		return nil, err
	}
	hs := make([]rules.Header, ctx.Packets)
	for i := range hs {
		hs[i] = trace[i%len(trace)]
	}
	cl, err := expcuts.New(rs, expcuts.Config{})
	if err != nil {
		return nil, fmt.Errorf("scaling: building ExpCuts: %w", err)
	}

	rows := make([]ScalingRow, 0, len(shardCounts))
	var base float64
	for _, shards := range shardCounts {
		if shards < 1 {
			return nil, fmt.Errorf("scaling: invalid shard count %d", shards)
		}
		cfg := engine.DefaultConfig()
		cfg.BatchSize = batchSize
		cfg.Shards = shards
		cfg.PipelineGroup = ctx.PipelineGroup
		cfg.PipelineAffine = ctx.PipelineAffine
		var best time.Duration
		var busiest time.Duration
		for rep := 0; rep < scalingReps; rep++ {
			start := time.Now()
			st, err := engine.RunContext(context.Background(), cl, cfg, hs, func(engine.Result) {})
			if err != nil {
				return nil, fmt.Errorf("scaling: %d-shard run: %w", shards, err)
			}
			if elapsed := time.Since(start); rep == 0 || elapsed < best {
				best = elapsed
			}
			// The critical path takes its own fastest-of-reps: per-batch
			// timing inside a shard absorbs scheduler preemption on an
			// oversubscribed host, so the minimum busiest-shard time across
			// reps is the stable estimator.
			repBusiest := time.Duration(0)
			for _, b := range st.ShardBusy {
				if b > repBusiest {
					repBusiest = b
				}
			}
			if rep == 0 || repBusiest < busiest {
				busiest = repBusiest
			}
		}
		row := ScalingRow{
			Shards:       shards,
			Gomaxprocs:   runtime.GOMAXPROCS(0),
			MeasuredMpps: float64(len(hs)) / best.Seconds() / 1e6,
		}
		if busiest > 0 {
			row.CriticalPathMpps = float64(len(hs)) / busiest.Seconds() / 1e6
		}
		if base == 0 {
			base = row.CriticalPathMpps
		}
		if base > 0 {
			row.Speedup = row.CriticalPathMpps / base
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderScaling formats the shard-scaling curve.
func RenderScaling(rows []ScalingRow, batchSize int) string {
	if batchSize == 0 {
		batchSize = engine.DefaultBatchSize
	}
	table := make([][]string, len(rows))
	for i, r := range rows {
		table[i] = []string{
			fmt.Sprintf("%d", r.Shards),
			fmt.Sprintf("%d", r.Gomaxprocs),
			fmt.Sprintf("%.2f", r.MeasuredMpps),
			fmt.Sprintf("%.2f", r.CriticalPathMpps),
			fmt.Sprintf("%.2fx", r.Speedup),
		}
	}
	return fmt.Sprintf("Multi-core serving — batched ExpCuts on ACL1K (%d rules), batch=%d\n"+
		"(critical-path Mpps projects one core per shard: packets / busiest shard's classify time)\n%s",
		ServeRuleSize, batchSize,
		renderTable([]string{"Shards", "GOMAXPROCS", "Measured Mpps", "Critical-path Mpps", "Speedup"}, table))
}
