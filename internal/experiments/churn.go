package experiments

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/engine"
	"repro/internal/expcuts"
	"repro/internal/rules"
	"repro/internal/update"
)

// ChurnRow is one configuration of the live-update experiment: engine
// serving throughput with a concurrent stream of delta-layer edits, next
// to the sustained edit rate the manager absorbed while serving.
type ChurnRow struct {
	Mode          string  // "quiet" (no edits) or "churn"
	ServingMpps   float64 // engine throughput while the mode ran
	UpdatesPerSec float64 // sustained ApplyDelta ops/sec (0 when quiet)
	Compactions   uint64  // background folds completed during the run
	MaskScans     uint64  // lookups that crossed a delete mask
}

// churnCompactThreshold keeps compactions realistic but frequent enough
// to land inside a benchmark run.
const churnCompactThreshold = 512

// Churn measures the cost of live rule updates on the serving path: the
// same engine + update.Manager stack serves the ACL1K trace twice, once
// quiet and once with an updater goroutine pushing single-op deltas
// (an appended shadow rule flapped in and out — semantically neutral, so
// every run serves identical answers) as fast as the manager absorbs
// them, with background compactions folding the delta mid-run. The gap
// between the two ServingMpps columns is the price of churn; the
// UpdatesPerSec column is the sustained absorption rate paid for it.
func Churn(ctx Context, batchSize, shards int) ([]ChurnRow, error) {
	ctx.fillDefaults()
	if batchSize == 0 {
		batchSize = engine.DefaultBatchSize
	}
	rs, err := ServeRuleSet(ctx.Seed)
	if err != nil {
		return nil, err
	}
	trace, err := ctx.headers(rs)
	if err != nil {
		return nil, err
	}
	hs := make([]rules.Header, ctx.Packets)
	for i := range hs {
		hs[i] = trace[i%len(trace)]
	}

	m, err := update.NewManagerConfig(rs,
		func(r *rules.RuleSet) (update.Classifier, error) {
			return expcuts.New(r, expcuts.Config{})
		},
		update.Config{CompactThreshold: churnCompactThreshold, ValidateSamples: -1})
	if err != nil {
		return nil, err
	}
	cfg := engine.DefaultConfig()
	cfg.BatchSize = batchSize
	if shards > 0 {
		cfg.Shards = shards
	}

	run := func(churn bool) (mpps, ups float64, err error) {
		var bestElapsed time.Duration
		var bestOps uint64
		for rep := 0; rep < serveReps; rep++ {
			var ops atomic.Uint64
			stop := make(chan struct{})
			done := make(chan error, 1)
			if churn {
				go func() {
					dup := rs.Rules[0]
					for {
						select {
						case <-stop:
							done <- nil
							return
						default:
						}
						snap, _ := m.Snapshot()
						n := len(snap)
						if err := m.ApplyDelta([]update.Op{update.InsertAt(n, dup)}); err != nil {
							done <- err
							return
						}
						if err := m.ApplyDelta([]update.Op{update.DeleteAt(n)}); err != nil {
							done <- err
							return
						}
						ops.Add(2)
					}
				}()
			}
			start := time.Now()
			_, runErr := engine.RunContext(context.Background(), m, cfg, hs, func(engine.Result) {})
			elapsed := time.Since(start)
			if churn {
				close(stop)
				if cerr := <-done; cerr != nil && runErr == nil {
					runErr = fmt.Errorf("churn updater: %w", cerr)
				}
			}
			if runErr != nil {
				return 0, 0, runErr
			}
			if rep == 0 || elapsed < bestElapsed {
				bestElapsed = elapsed
				bestOps = ops.Load()
			}
		}
		mpps = float64(len(hs)) / bestElapsed.Seconds() / 1e6
		ups = float64(bestOps) / bestElapsed.Seconds()
		return mpps, ups, nil
	}

	quietMpps, _, err := run(false)
	if err != nil {
		return nil, fmt.Errorf("churn: quiet run: %w", err)
	}
	hBefore := m.Health()
	churnMpps, ups, err := run(true)
	if err != nil {
		return nil, fmt.Errorf("churn: churn run: %w", err)
	}
	if !m.Quiesce(30 * time.Second) {
		return nil, fmt.Errorf("churn: manager did not quiesce after the run")
	}
	hAfter := m.Health()
	return []ChurnRow{
		{Mode: "quiet", ServingMpps: quietMpps},
		{Mode: "churn", ServingMpps: churnMpps, UpdatesPerSec: ups,
			Compactions: hAfter.Compactions - hBefore.Compactions,
			MaskScans:   hAfter.MaskScans - hBefore.MaskScans},
	}, nil
}

// RenderChurn formats the live-update rows.
func RenderChurn(rows []ChurnRow, batchSize, shards int) string {
	if batchSize == 0 {
		batchSize = engine.DefaultBatchSize
	}
	table := make([][]string, len(rows))
	for i, r := range rows {
		table[i] = []string{
			r.Mode,
			fmt.Sprintf("%.2f", r.ServingMpps),
			fmt.Sprintf("%.0f", r.UpdatesPerSec),
			fmt.Sprintf("%d", r.Compactions),
			fmt.Sprintf("%d", r.MaskScans),
		}
	}
	return fmt.Sprintf("Live-update churn — ACL1K (%d rules), batch=%d, shards=%d\n%s",
		ServeRuleSize, batchSize, shards,
		renderTable([]string{"Mode", "Serving Mpps", "Updates/s", "Compactions", "Mask scans"}, table))
}
