package experiments

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/buildgov"
	"repro/internal/engine"
	"repro/internal/expcuts"
	"repro/internal/hsm"
	"repro/internal/linear"
	"repro/internal/rmi"
	"repro/internal/rulegen"
	"repro/internal/rules"
)

// RuleScaleRow is one (algorithm, rule count) cell of the scaling-by-rule-
// count curve — the experiment that turns the repo's single-point Mpps
// numbers into the 100k–1M story of ROADMAP item 1. Builds run under
// buildgov.ScaledBudget for their rule count; a cell whose build trips its
// budget is *kept*, with BuildError set and zero throughput, because
// "this tree cannot be built inside a sane resource envelope at this
// scale" is the result, not a measurement failure — it is precisely the
// NuevoMatch motivation for the learned-index rung.
type RuleScaleRow struct {
	Algo    string
	Rules   int
	RuleSet string
	// BuildMs is wall-clock build time — until success or budget trip.
	BuildMs float64
	// MemoryBytes is the built classifier's resident estimate (0 on
	// build failure).
	MemoryBytes int
	// CriticalPathMpps is packets / busiest shard busy time, minimum
	// across reps (0 on build failure).
	CriticalPathMpps float64
	// BuildError carries the budget trip when the build failed.
	BuildError string
}

// rulescaleReps is the timed-run count per cell; the build dominates the
// cell's cost, so fewer reps than the scaling sweep.
const rulescaleReps = 3

// RuleScaleSizes is the default sweep: the paper's scale, and two orders
// of magnitude beyond it. The 1M point is reachable through the CLI but
// not default — linear's measurement alone takes minutes there.
var RuleScaleSizes = []int{1000, 10000, 100000}

// RuleScaleAlgos is the default algorithm set: both tree shapes the paper
// evaluates, the total linear baseline, and the learned range index.
var RuleScaleAlgos = []string{"expcuts", "hsm", "linear", "rmi"}

// RuleScale measures build time, memory and critical-path Mpps for each
// algorithm at each rule-set size, on the deterministic ACL presets. The
// packet count shrinks with rule count (floor 2000) so the linear
// baseline stays measurable at 100k+ rules.
func RuleScale(ctx Context, sizes []int, algos []string) ([]RuleScaleRow, error) {
	ctx.fillDefaults()
	if len(sizes) == 0 {
		sizes = RuleScaleSizes
	}
	if len(algos) == 0 {
		algos = RuleScaleAlgos
	}
	var rows []RuleScaleRow
	for _, size := range sizes {
		gc := rulegen.LargeForSize(size)
		rs, err := rulegen.Generate(gc)
		if err != nil {
			return nil, fmt.Errorf("rulescale: %w", err)
		}
		trace, err := ctx.headers(rs)
		if err != nil {
			return nil, err
		}
		packets := ctx.Packets
		if size > 0 {
			if scaled := ctx.Packets * 1000 / size; scaled < packets {
				packets = scaled
			}
			if packets < 2000 {
				packets = 2000
			}
		}
		hs := make([]rules.Header, packets)
		for i := range hs {
			hs[i] = trace[i%len(trace)]
		}

		for _, algo := range algos {
			row, err := ruleScaleCell(algo, rs, gc.Name, hs)
			if err != nil {
				return nil, err
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// ruleScaleCell builds one algorithm under the scaled budget and measures
// its engine critical path.
func ruleScaleCell(algo string, rs *rules.RuleSet, setName string, hs []rules.Header) (RuleScaleRow, error) {
	row := RuleScaleRow{Algo: algo, Rules: len(rs.Rules), RuleSet: setName}
	budget := buildgov.ScaledBudget(len(rs.Rules))

	var cl engine.Classifier
	var err error
	start := time.Now()
	switch algo {
	case "expcuts":
		cl, err = expcuts.NewCtx(context.Background(), rs, expcuts.Config{}, budget)
	case "hsm":
		cl, err = hsm.NewCtx(context.Background(), rs, hsm.Config{}, budget)
	case "linear":
		cl = linear.New(rs)
	case "rmi":
		cl, err = rmi.NewCtx(context.Background(), rs, rmi.Config{}, budget)
	default:
		return row, fmt.Errorf("rulescale: unknown algorithm %q (expcuts, hsm, linear, rmi)", algo)
	}
	row.BuildMs = float64(time.Since(start).Microseconds()) / 1000
	if err != nil {
		if !errors.Is(err, buildgov.ErrBudgetExceeded) {
			return row, fmt.Errorf("rulescale: building %s on %s: %w", algo, setName, err)
		}
		row.BuildError = err.Error()
		return row, nil
	}
	if mb, ok := cl.(interface{ MemoryBytes() int }); ok {
		row.MemoryBytes = mb.MemoryBytes()
	}

	cfg := engine.DefaultConfig()
	cfg.Shards = 1
	var busiest time.Duration
	for rep := 0; rep < rulescaleReps; rep++ {
		st, err := engine.RunContext(context.Background(), cl, cfg, hs, func(engine.Result) {})
		if err != nil {
			return row, fmt.Errorf("rulescale: %s run on %s: %w", algo, setName, err)
		}
		repBusiest := time.Duration(0)
		for _, b := range st.ShardBusy {
			if b > repBusiest {
				repBusiest = b
			}
		}
		if rep == 0 || repBusiest < busiest {
			busiest = repBusiest
		}
	}
	if busiest > 0 {
		row.CriticalPathMpps = float64(len(hs)) / busiest.Seconds() / 1e6
	}
	return row, nil
}

// RenderRuleScale formats the scaling-by-rule-count table.
func RenderRuleScale(rows []RuleScaleRow) string {
	table := make([][]string, len(rows))
	for i, r := range rows {
		mpps := fmt.Sprintf("%.2f", r.CriticalPathMpps)
		mem := fmt.Sprintf("%.1f", float64(r.MemoryBytes)/(1<<20))
		if r.BuildError != "" {
			mpps = "—"
			mem = "—"
		}
		table[i] = []string{
			r.RuleSet,
			fmt.Sprintf("%d", r.Rules),
			r.Algo,
			fmt.Sprintf("%.0f", r.BuildMs),
			mem,
			mpps,
			buildOutcome(r),
		}
	}
	return "Scaling by rule count — critical-path Mpps per algorithm (ScaledBudget per cell)\n" +
		renderTable([]string{"Set", "Rules", "Algo", "Build ms", "Mem MiB", "Mpps", "Outcome"}, table)
}

func buildOutcome(r RuleScaleRow) string {
	if r.BuildError == "" {
		return "built"
	}
	return "budget trip"
}
