package experiments

import (
	"strings"
	"testing"
)

// light is a reduced-cost context for tests; the shapes asserted here are
// robust to the smaller trace and packet counts.
var light = Context{TraceLen: 400, Packets: 6000, Seed: 1, MatchFraction: 0.9}

func TestFig6Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full rule-set sweep")
	}
	rows, err := Fig6(light)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("rows = %d, want 7", len(rows))
	}
	for _, r := range rows {
		// The paper's headline: aggregation keeps ~15% of the memory.
		if r.Ratio > 0.5 {
			t.Errorf("%s: aggregation ratio %.2f, want well below 0.5", r.RuleSet, r.Ratio)
		}
		if r.WithAggBytes >= r.WithoutAggBytes {
			t.Errorf("%s: aggregation did not shrink memory", r.RuleSet)
		}
		// §6.3: sparse children at 256 cuts.
		if r.AvgUniqueChildren > 16 {
			t.Errorf("%s: avg unique children %.1f", r.RuleSet, r.AvgUniqueChildren)
		}
		if !r.FitsWith {
			t.Errorf("%s: aggregated tree must fit the 4×8MB SRAM", r.RuleSet)
		}
	}
	text := RenderFig6(rows)
	if !strings.Contains(text, "CR04") {
		t.Error("rendering misses CR04")
	}
}

func TestFig7Shape(t *testing.T) {
	rows, err := Fig7(light)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Fatalf("rows = %d, want 9 (1..9 MEs)", len(rows))
	}
	if rows[0].Threads != 7 || rows[8].Threads != 71 {
		t.Errorf("thread endpoints = %d..%d, want 7..71", rows[0].Threads, rows[8].Threads)
	}
	// Near-linear speedup: monotone, and the 71-thread point well above
	// half the ideal 71/7 ≈ 10.1×.
	for i := 1; i < len(rows); i++ {
		if rows[i].ThroughputMbps <= rows[i-1].ThroughputMbps {
			t.Errorf("throughput not monotone at %d threads", rows[i].Threads)
		}
	}
	if last := rows[8].Speedup; last < 6 {
		t.Errorf("71-thread speedup %.1f, want near-linear (paper: almost linear)", last)
	}
	// The paper's headline: ~7 Gbps at 71 threads.
	if got := rows[8].ThroughputMbps; got < 5500 || got > 9500 {
		t.Errorf("71-thread throughput %.0f Mbps, want in the paper's regime (~7000)", got)
	}
}

func TestFig8Shape(t *testing.T) {
	rows, err := Fig8(light)
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].Rules != 1 || rows[len(rows)-1].Rules != 20 {
		t.Fatalf("rule sweep endpoints wrong: %+v", rows)
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].ThroughputMbps > rows[i-1].ThroughputMbps {
			t.Errorf("throughput not decreasing at N=%d", rows[i].Rules)
		}
	}
	// The paper's observation: beyond 8 rules, throughput < 3 Gbps.
	for _, r := range rows {
		if r.Rules > 8 && r.ThroughputMbps >= 3000 {
			t.Errorf("N=%d: %.0f Mbps, paper says < 3000 beyond 8 rules", r.Rules, r.ThroughputMbps)
		}
	}
}

func TestFig9Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full rule-set sweep")
	}
	rows, err := Fig9(light)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("rows = %d, want 7", len(rows))
	}
	var ecMin, ecMax float64
	for i, r := range rows {
		// ExpCuts wins on every rule set.
		if r.ExpCutsMbps <= r.HiCutsMbps || r.ExpCutsMbps <= r.HSMMbps {
			t.Errorf("%s: ExpCuts (%.0f) should beat HiCuts (%.0f) and HSM (%.0f)",
				r.RuleSet, r.ExpCutsMbps, r.HiCutsMbps, r.HSMMbps)
		}
		// HiCuts never beats HSM by a meaningful margin (the paper's
		// ordering has HSM above HiCuts).
		if r.HiCutsMbps > r.HSMMbps*1.05 {
			t.Errorf("%s: HiCuts (%.0f) above HSM (%.0f)", r.RuleSet, r.HiCutsMbps, r.HSMMbps)
		}
		if i == 0 {
			ecMin, ecMax = r.ExpCutsMbps, r.ExpCutsMbps
		} else {
			if r.ExpCutsMbps < ecMin {
				ecMin = r.ExpCutsMbps
			}
			if r.ExpCutsMbps > ecMax {
				ecMax = r.ExpCutsMbps
			}
		}
	}
	// ExpCuts is stable across rule sets (paper: "no matter how large the
	// rule sets are, ExpCuts obtains stable throughput").
	if ecMax/ecMin > 1.25 {
		t.Errorf("ExpCuts throughput varies %.0f..%.0f; paper reports stability", ecMin, ecMax)
	}
	// HSM decreases from the smallest to the largest set (Θ(log N)).
	if rows[6].HSMMbps >= rows[0].HSMMbps {
		t.Errorf("HSM on CR04 (%.0f) should be below FW01 (%.0f)", rows[6].HSMMbps, rows[0].HSMMbps)
	}
}

func TestTab2Shape(t *testing.T) {
	rows, err := Tab2(light)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].ThroughputMbps <= rows[1].ThroughputMbps {
		t.Errorf("multiprocessing (%.0f) should beat context pipelining (%.0f)",
			rows[0].ThroughputMbps, rows[1].ThroughputMbps)
	}
}

func TestTab4Shape(t *testing.T) {
	rows, err := Tab4(light)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	// The paper's Table 4 lists levels 0~13 (fourteen labels); the w=8
	// tree actually has ⌈104/8⌉ = 13 levels, so the headroom-proportional
	// split lands one level earlier on the last two channels.
	want := []string{"level 0~1", "level 2~6", "level 7~8", "level 9~12"}
	for i, r := range rows {
		if r.Levels != want[i] {
			t.Errorf("channel %d allocation = %q, want %q", i, r.Levels, want[i])
		}
		if r.Headroom+r.Utilization != 1 {
			t.Errorf("channel %d: headroom %v + utilization %v != 1", i, r.Headroom, r.Utilization)
		}
	}
}

func TestTab5Shape(t *testing.T) {
	rows, err := Tab5(light)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].ThroughputMbps < rows[i-1].ThroughputMbps*0.99 {
			t.Errorf("throughput decreased at %d channels", rows[i].Channels)
		}
	}
	// One channel cannot reach 5 Gbps (paper §6.5 point 1); four channels
	// land in the paper's regime.
	if rows[0].ThroughputMbps >= 5800 {
		t.Errorf("1 channel = %.0f Mbps, paper says it cannot reach ~5 Gbps", rows[0].ThroughputMbps)
	}
	if rows[3].ThroughputMbps < 6000 {
		t.Errorf("4 channels = %.0f Mbps, want the paper's ~7 Gbps regime", rows[3].ThroughputMbps)
	}
	if rows[3].ThroughputMbps <= rows[0].ThroughputMbps*1.2 {
		t.Errorf("4 channels (%.0f) should be well above 1 channel (%.0f)",
			rows[3].ThroughputMbps, rows[0].ThroughputMbps)
	}
}

func TestAblationStrideShape(t *testing.T) {
	rows, err := AblationStride(light)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Wider strides: shallower trees, better worst case.
	for i := 1; i < len(rows); i++ {
		if rows[i].Depth >= rows[i-1].Depth {
			t.Errorf("depth not decreasing with stride")
		}
		if rows[i].ThroughputMbps <= rows[i-1].ThroughputMbps {
			t.Errorf("throughput should improve with stride (fewer accesses)")
		}
	}
}

func TestAblationHABSShape(t *testing.T) {
	rows, err := AblationHABS(light)
	if err != nil {
		t.Fatal(err)
	}
	// Wider HABS tracks runs more precisely: memory never increases.
	for i := 1; i < len(rows); i++ {
		if rows[i].MemoryBytes > rows[i-1].MemoryBytes {
			t.Errorf("memory increased from v=%d to v=%d", rows[i-1].HabsV, rows[i].HabsV)
		}
	}
}

func TestAblationPopCountShape(t *testing.T) {
	rows, err := AblationPopCount(light)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	hw, risc := rows[0].ThroughputMbps, rows[1].ThroughputMbps
	if hw <= risc {
		t.Errorf("hardware POP_COUNT (%.0f) should beat RISC emulation (%.0f)", hw, risc)
	}
}

func TestAblationBinthShape(t *testing.T) {
	rows, err := AblationBinth(light)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.ThroughputMbps <= 0 || r.MemoryBytes <= 0 {
			t.Errorf("binth %d: degenerate row %+v", r.Binth, r)
		}
	}
}

func TestAblationSharingShape(t *testing.T) {
	rows, err := AblationSharing(light)
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].Nodes >= rows[1].Nodes {
		t.Errorf("global sharing (%d nodes) should be smaller than sibling-only (%d)",
			rows[0].Nodes, rows[1].Nodes)
	}
}

func TestExtendedShape(t *testing.T) {
	rows, err := Extended(light, "CR01")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 6 algorithms", len(rows))
	}
	byName := map[string]ExtendedRow{}
	for _, r := range rows {
		byName[r.Algorithm] = r
	}
	// Linear search is the floor.
	for _, name := range []string{"ExpCuts", "HiCuts", "HyperCuts", "HSM", "RFC"} {
		if byName[name].ThroughputMbps <= byName["Linear"].ThroughputMbps {
			t.Errorf("%s (%.0f) should beat linear search (%.0f)",
				name, byName[name].ThroughputMbps, byName["Linear"].ThroughputMbps)
		}
	}
	// RFC trades memory for the fewest accesses.
	if byName["RFC"].WorstAccesses >= byName["ExpCuts"].WorstAccesses {
		t.Errorf("RFC worst accesses (%d) should be below ExpCuts (%d)",
			byName["RFC"].WorstAccesses, byName["ExpCuts"].WorstAccesses)
	}
}

func TestRenderersProduceTables(t *testing.T) {
	// Smoke-test every renderer against minimal rows.
	checks := []string{
		RenderFig6([]Fig6Row{{RuleSet: "X", Ratio: 0.15}}),
		RenderFig7([]Fig7Row{{Threads: 7}}),
		RenderFig8([]Fig8Row{{Rules: 1}}),
		RenderFig9([]Fig9Row{{RuleSet: "X"}}),
		RenderTab2([]Tab2Row{{Mapping: "m", BottleneckStage: -1}}),
		RenderTab4([]Tab4Row{{Levels: "level 0~1"}}),
		RenderTab5([]Tab5Row{{Channels: 1}}),
		RenderAblationStride([]StrideRow{{StrideW: 8}}),
		RenderAblationHABS([]HABSRow{{HabsV: 4}}),
		RenderAblationPopCount([]PopCountRow{{Variant: "x"}}),
		RenderAblationBinth([]BinthRow{{Binth: 8}}),
		RenderAblationSharing([]SharingRow{{Mode: "global"}}),
		RenderExtended([]ExtendedRow{{Algorithm: "ExpCuts"}}, "CR01"),
	}
	for i, s := range checks {
		if !strings.Contains(s, "\n") || len(s) < 20 {
			t.Errorf("renderer %d output too small: %q", i, s)
		}
	}
}

func TestServeScalingShape(t *testing.T) {
	if testing.Short() {
		t.Skip("timed serving runs")
	}
	rows, err := ServeScaling(light, 0, []int{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	if rows[0].Shards != 1 || rows[0].Speedup < 0.99 || rows[0].Speedup > 1.01 {
		t.Errorf("1-shard row must anchor the speedup column at 1.0: %+v", rows[0])
	}
	for _, r := range rows {
		if r.MeasuredMpps <= 0 || r.CriticalPathMpps <= 0 || r.Gomaxprocs < 1 {
			t.Errorf("shards=%d: degenerate row %+v", r.Shards, r)
		}
	}
	// The flow-hash partition balances ACL traffic well enough that the
	// critical-path projection grows with the shard count.
	if rows[2].Speedup < 1.5 {
		t.Errorf("4-shard critical-path speedup %.2fx, want meaningful scaling", rows[2].Speedup)
	}
	text := RenderScaling(rows, 0)
	if !strings.Contains(text, "Critical-path") || !strings.Contains(text, "Shards") {
		t.Errorf("rendered table missing columns:\n%s", text)
	}
}

func TestPipelineShape(t *testing.T) {
	if testing.Short() {
		t.Skip("timed serving runs")
	}
	rows, fill, err := Pipeline(light, 0, []int{8, 64}, []int{1, 2}, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 { // (sync + 2 groups) x 2 shard counts
		t.Fatalf("rows = %d, want 6", len(rows))
	}
	for i, r := range rows {
		if r.MeasuredMpps <= 0 || r.CriticalPathMpps <= 0 {
			t.Errorf("row %d degenerate: %+v", i, r)
		}
		if r.Group == 0 && (r.SpeedupVsSync < 0.99 || r.SpeedupVsSync > 1.01) {
			t.Errorf("sync row %d must anchor speedup at 1.0: %+v", i, r)
		}
		if r.Group > 0 && r.SpeedupVsSync <= 0 {
			t.Errorf("pipelined row %d missing speedup: %+v", i, r)
		}
		if r.Affine {
			t.Errorf("row %d affine set with affine=false sweep: %+v", i, r)
		}
	}
	if len(fill) == 0 {
		t.Fatal("no stage-fill histogram from pipelined windows")
	}
	if fill[0] < 0.999 || fill[0] > 1.001 {
		t.Errorf("fill[0] = %.3f, want 1.0", fill[0])
	}
	for l := 1; l < len(fill); l++ {
		if fill[l] > fill[l-1]+1e-9 {
			t.Errorf("stage fill grew at level %d: %.3f -> %.3f", l, fill[l-1], fill[l])
		}
	}
	text := RenderPipeline(rows, fill, 0)
	for _, want := range []string{"sync", "Vs sync", "Stage fill", "L0"} {
		if !strings.Contains(text, want) {
			t.Errorf("rendered sweep missing %q:\n%s", want, text)
		}
	}
}

func TestIOFrontendShape(t *testing.T) {
	if testing.Short() {
		t.Skip("timed loopback serving runs")
	}
	rows, err := IOFrontend(light, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2 (unpaced capacity + half-capacity paced)", len(rows))
	}
	if rows[0].RatePPS != 0 {
		t.Errorf("first row must be the unpaced capacity probe: %+v", rows[0])
	}
	if rows[1].RatePPS <= 0 {
		t.Errorf("second row must be paced at half the measured capacity: %+v", rows[1])
	}
	for i, r := range rows {
		if r.Sent <= 0 || r.AchievedPPS <= 0 {
			t.Errorf("row %d degenerate: %+v", i, r)
		}
		if r.DecodeErrors != 0 {
			t.Errorf("row %d: %d decode errors on well-formed traffic", i, r.DecodeErrors)
		}
		if r.Replies > 0 && (r.P50Us <= 0 || r.P99Us < r.P50Us || r.P999Us < r.P99Us) {
			t.Errorf("row %d: latency quantiles not ordered: %+v", i, r)
		}
	}
	text := RenderIOFrontend(rows)
	for _, want := range []string{"Rate pps", "p50", "p999", "Shed", "unpaced"} {
		if !strings.Contains(text, want) {
			t.Errorf("rendered table missing %q:\n%s", want, text)
		}
	}
}
