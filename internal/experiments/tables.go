package experiments

import (
	"fmt"

	"repro/internal/expcuts"
	"repro/internal/memlayout"
	"repro/internal/npsim"
	"repro/internal/pipeline"
	"repro/internal/rulegen"
	"repro/internal/rules"
)

func ruleSetByName(name string) (*rules.RuleSet, error) {
	return rulegen.Standard(name)
}

// Tab2Row compares the two task-partitioning strategies of Table 2.
type Tab2Row struct {
	Mapping         string
	ThroughputMbps  float64
	BottleneckStage int // -1 for multiprocessing
}

// Tab2 simulates multiprocessing vs context-pipelining for the CR04
// classification stage (Table 2's qualitative comparison, quantified).
func Tab2(ctx Context) ([]Tab2Row, error) {
	ctx.fillDefaults()
	rs, err := ruleSetByName("CR04")
	if err != nil {
		return nil, err
	}
	tree, err := expcuts.New(rs, expcuts.Config{Headroom: memlayout.PaperHeadroom})
	if err != nil {
		return nil, err
	}
	headers, err := ctx.headers(rs)
	if err != nil {
		return nil, err
	}
	progs := programs(tree, headers)
	app := pipeline.DefaultAppConfig()
	mp, err := pipeline.RunMultiprocessing(app, progs, ctx.Packets)
	if err != nil {
		return nil, err
	}
	cp, err := pipeline.RunContextPipelining(app, progs, ctx.Packets)
	if err != nil {
		return nil, err
	}
	return []Tab2Row{
		{Mapping: "multiprocessing", ThroughputMbps: mp.ThroughputMbps, BottleneckStage: -1},
		{Mapping: "context-pipelining", ThroughputMbps: cp.ThroughputMbps, BottleneckStage: cp.BottleneckStage},
	}, nil
}

// RenderTab2 formats Table 2 rows.
func RenderTab2(rows []Tab2Row) string {
	out := make([][]string, len(rows))
	for i, r := range rows {
		stage := "-"
		if r.BottleneckStage >= 0 {
			stage = fmt.Sprint(r.BottleneckStage)
		}
		out[i] = []string{r.Mapping, fmt.Sprintf("%.0f", r.ThroughputMbps), stage}
	}
	return "Table 2 — task partitioning: multiprocessing vs context pipelining (CR04)\n" +
		renderTable([]string{"mapping", "Mbps", "bottleneck stage"}, out)
}

// Tab4Row is one channel row of Table 4: utilization, headroom and the
// decision-tree levels allocated to it.
type Tab4Row struct {
	Channel     int
	Utilization float64
	Headroom    float64
	Levels      string
}

// Tab4 reproduces the memory-allocation table: the CR04 ExpCuts tree's 13
// levels distributed over the four SRAM channels in proportion to
// bandwidth headroom.
func Tab4(ctx Context) ([]Tab4Row, error) {
	ctx.fillDefaults()
	rs, err := ruleSetByName("CR04")
	if err != nil {
		return nil, err
	}
	tree, err := expcuts.New(rs, expcuts.Config{Headroom: memlayout.PaperHeadroom})
	if err != nil {
		return nil, err
	}
	alloc, err := memlayout.AllocateLevels(
		memlayout.UniformDemand(tree.Depth()), memlayout.PaperHeadroom, memlayout.NumChannels)
	if err != nil {
		return nil, err
	}
	rows := make([]Tab4Row, memlayout.NumChannels)
	for c := range rows {
		lo, hi := -1, -1
		for lvl, ch := range alloc {
			if int(ch) == c {
				if lo < 0 {
					lo = lvl
				}
				hi = lvl
			}
		}
		levels := "-"
		if lo >= 0 {
			levels = fmt.Sprintf("level %d~%d", lo, hi)
		}
		rows[c] = Tab4Row{
			Channel:     c,
			Utilization: 1 - memlayout.PaperHeadroom[c],
			Headroom:    memlayout.PaperHeadroom[c],
			Levels:      levels,
		}
	}
	return rows, nil
}

// RenderTab4 formats Table 4 rows.
func RenderTab4(rows []Tab4Row) string {
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{
			fmt.Sprintf("SRAM#%d", r.Channel),
			fmt.Sprintf("%.0f%%", r.Utilization*100),
			fmt.Sprintf("%.0f%%", r.Headroom*100),
			r.Levels,
		}
	}
	return "Table 4 — memory allocation across SRAM channels (CR04 tree levels)\n" +
		renderTable([]string{"channel", "utilization", "headroom", "allocation"}, out)
}

// Tab5Row is one column of Table 5: throughput versus the number of SRAM
// channels holding the ExpCuts tree.
type Tab5Row struct {
	Channels       int
	ThroughputMbps float64
}

// Tab5 sweeps 1..4 SRAM channels on CR04 at 71 threads. Channels are used
// in descending-headroom order — the paper notes its single-channel case
// has 100% bandwidth headroom.
func Tab5(ctx Context) ([]Tab5Row, error) {
	ctx.fillDefaults()
	rs, err := ruleSetByName("CR04")
	if err != nil {
		return nil, err
	}
	headers, err := ctx.headers(rs)
	if err != nil {
		return nil, err
	}
	// Descending-headroom channel order: 100%, 69%, 53%, 44%.
	ordered := memlayout.Headroom{1.00, 0.69, 0.53, 0.44}
	var rows []Tab5Row
	for n := 1; n <= memlayout.NumChannels; n++ {
		tree, err := expcuts.New(rs, expcuts.Config{Channels: n, Headroom: ordered})
		if err != nil {
			return nil, err
		}
		cfg := npsim.DefaultConfig()
		cfg.SRAM.Headroom = ordered
		r, err := npsim.Run(cfg, programs(tree, headers), ctx.Packets)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Tab5Row{Channels: n, ThroughputMbps: r.ThroughputMbps})
	}
	return rows, nil
}

// RenderTab5 formats Table 5 rows.
func RenderTab5(rows []Tab5Row) string {
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{fmt.Sprint(r.Channels), fmt.Sprintf("%.0f", r.ThroughputMbps)}
	}
	return "Table 5 — SRAM channel impact (ExpCuts, CR04, 71 threads)\n" +
		renderTable([]string{"channels", "Mbps"}, out)
}
