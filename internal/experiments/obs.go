package experiments

import (
	"context"
	"fmt"
	"sort"
	"time"

	"repro/internal/engine"
	"repro/internal/expcuts"
	"repro/internal/obs"
	"repro/internal/rules"
)

// OverheadRow is one serving path's throughput with the observability
// layer off versus on. Ratio is on/off: 1.0 means instrumentation is
// free, and the benchjson gate fails the build when it drops below
// 1 - tolerance (2% by default). "Off" is a nil engine.Metrics — the
// exact configuration of an uninstrumented deployment — so the ratio
// prices the whole layer: per-batch counter/histogram updates, the
// flow-cache delta export, and the event ring being armed.
type OverheadRow struct {
	Path    string // "batched-1shard" or "sharded"
	OffMpps float64
	OnMpps  float64
	Ratio   float64
}

// overheadReps is how many off/on pairs each path runs, and
// overheadRank which order statistic of each side's readings becomes
// the verdict (see overheadPairs). 25 pairs keep the whole measurement
// in seconds while sampling each side's fast tail well past the rank.
const (
	overheadReps = 25
	overheadRank = 3
)

// overheadMinPackets floors the trace length of each timed run. Runs of
// a few milliseconds put per-run scheduler noise at the same scale as
// the 2% budget; a million packets keeps each run over ~100ms, long
// enough that both sides sample the same interference mix and their
// fast tails track the same achievable speed.
const overheadMinPackets = 1 << 20

// MetricsOverhead measures what the obs instrumentation costs on the two
// serving paths: the batched unsharded pipeline (the one the BENCH_PR*
// batched rows track) and the sharded engine at the given shard count.
// Both runs use batched ExpCuts on the 1k-rule ACL set; the metrics-on
// runs attach a registered Metrics with a live event ring, exactly as
// pcclass -metrics does.
func MetricsOverhead(ctx Context, batchSize, shards int) ([]OverheadRow, error) {
	ctx.fillDefaults()
	if batchSize == 0 {
		batchSize = engine.DefaultBatchSize
	}
	if shards < 1 {
		shards = 4
	}
	rs, err := ServeRuleSet(ctx.Seed)
	if err != nil {
		return nil, err
	}
	trace, err := ctx.headers(rs)
	if err != nil {
		return nil, err
	}
	// A 2% verdict needs timed runs long enough that per-run scheduler
	// noise is small relative to the signal; the floor keeps each run in
	// the tens-of-milliseconds range regardless of the context default.
	packets := ctx.Packets
	if packets < overheadMinPackets {
		packets = overheadMinPackets
	}
	hs := make([]rules.Header, packets)
	for i := range hs {
		hs[i] = trace[i%len(trace)]
	}
	cl, err := expcuts.New(rs, expcuts.Config{})
	if err != nil {
		return nil, fmt.Errorf("overhead: building ExpCuts: %w", err)
	}

	// The metrics-on configuration mirrors production wiring: a registry
	// holds the collector (so the samples are genuinely reachable from a
	// scrape) and the event ring is armed. Each timed run gets a freshly
	// allocated Metrics: where the counter block lands relative to the
	// classifier's arena decides which cache sets the per-batch updates
	// contend for, and one unlucky allocation held for a whole process
	// would read as phantom overhead in every metrics-on run. Fresh
	// allocations sample many layouts and fastest-of keeps the clean one.
	makeCfg := func(nshards int, instrumented bool) func() engine.Config {
		return func() engine.Config {
			cfg := engine.DefaultConfig()
			cfg.BatchSize = batchSize
			cfg.Shards = nshards
			if instrumented {
				m := engine.NewMetrics(shards)
				m.SetEvents(obs.NewRing(obs.DefaultRingSize))
				m.Register(obs.NewRegistry())
				cfg.Metrics = m
			}
			return cfg
		}
	}

	// Batched 1-shard is the unsharded pipeline the BENCH_PR* batched
	// rows track; sharded exercises the per-shard serve loops, the
	// sequencer and the reorder-held histogram. Both are wall-clock:
	// a shard's busy window deliberately excludes its own recordBatch
	// call, so busy-time ratios would measure nothing — wall time is
	// where instrumentation cost actually lands.
	rows := make([]OverheadRow, 0, 2)
	for _, p := range []struct {
		path   string
		shards int
	}{
		{"batched-1shard", 0},
		{"sharded", shards},
	} {
		off, on, ratio, err := overheadPairs(cl, hs, makeCfg(p.shards, false), makeCfg(p.shards, true))
		if err != nil {
			return nil, fmt.Errorf("overhead: %s: %w", p.path, err)
		}
		rows = append(rows, OverheadRow{Path: p.path, OffMpps: off, OnMpps: on, Ratio: ratio})
	}
	return rows, nil
}

// overheadPairs runs overheadReps interleaved off/on pairs and returns
// each side's overheadRank-th fastest Mpps plus their ratio, the gate's
// verdict. Near-fastest is the estimator that resolves a sub-1% effect
// on a shared CI host: co-tenant interference and frequency drift only
// ever slow a CPU-bound run down, so each side's fast tail converges on
// its true uncontended speed as reps accumulate. (Medians don't — the
// middle sample still carries whatever interference was typical during
// the run.) Taking the overheadRank-th best rather than the single
// fastest discards the one-in-a-run perfectly-quiet outlier that would
// otherwise swing the ratio by a few percent when only one side draws
// it. Interleaving plus alternating which side goes first keeps any
// leftover drift and warm-cache advantage from loading one side's fast
// tail.
func overheadPairs(cl engine.Classifier, hs []rules.Header, cfgOff, cfgOn func() engine.Config) (float64, float64, float64, error) {
	offs := make([]float64, 0, overheadReps)
	ons := make([]float64, 0, overheadReps)
	run := func(mkCfg func() engine.Config, out *[]float64) error {
		cfg := mkCfg() // fresh Metrics allocation, outside the timed window
		start := time.Now()
		if _, err := engine.RunContext(context.Background(), cl, cfg, hs, func(engine.Result) {}); err != nil {
			return err
		}
		*out = append(*out, float64(len(hs))/time.Since(start).Seconds()/1e6)
		return nil
	}
	for rep := 0; rep < overheadReps; rep++ {
		first, second := &offs, &ons
		cfgFirst, cfgSecond := cfgOff, cfgOn
		if rep%2 == 1 {
			first, second = second, first
			cfgFirst, cfgSecond = cfgSecond, cfgFirst
		}
		if err := run(cfgFirst, first); err != nil {
			return 0, 0, 0, err
		}
		if err := run(cfgSecond, second); err != nil {
			return 0, 0, 0, err
		}
	}
	off, on := nearFastest(offs), nearFastest(ons)
	return off, on, on / off, nil
}

// nearFastest returns the overheadRank-th fastest reading.
func nearFastest(vs []float64) float64 {
	sort.Sort(sort.Reverse(sort.Float64Slice(vs)))
	i := overheadRank - 1
	if i >= len(vs) {
		i = len(vs) - 1
	}
	return vs[i]
}

// RenderMetricsOverhead formats the overhead comparison.
func RenderMetricsOverhead(rows []OverheadRow, batchSize, shards int) string {
	if batchSize == 0 {
		batchSize = engine.DefaultBatchSize
	}
	table := make([][]string, len(rows))
	for i, r := range rows {
		table[i] = []string{
			r.Path,
			fmt.Sprintf("%.2f", r.OffMpps),
			fmt.Sprintf("%.2f", r.OnMpps),
			fmt.Sprintf("%.1f%%", 100*(1-r.Ratio)),
		}
	}
	return fmt.Sprintf("Observability overhead — batched ExpCuts on ACL1K (%d rules), batch=%d, %d shards\n%s",
		ServeRuleSize, batchSize, shards,
		renderTable([]string{"Path", "Metrics-off Mpps", "Metrics-on Mpps", "Overhead"}, table))
}
