package rulegen

import (
	"fmt"
	"math/rand"

	"repro/internal/rules"
)

// This file holds the production-scale generator family (ROADMAP item 1).
// The paper's sets top out at 1945 rules; real deployments and the
// NuevoMatch evaluation (PAPERS.md) run at 100k–1M. The ACL kind mimics
// ClassBench acl1-style access lists: rules arrive in *clusters* that share
// one destination prefix, destinations are drawn from a skewed prefix tree
// whose long branches are disjoint across clusters (which is what lets a
// learned range index over destination projections absorb most of the set),
// and a small fraction of short or wildcard destination prefixes provides
// the controlled overlap that real ACLs exhibit.
//
// Generation streams: rules are handed to the caller one at a time in final
// order, so pcgen can encode a 1M-rule set without ever materializing the
// full text encoding. All randomness comes from a single seeded source
// consumed in a fixed order, so the same (kind, size, seed) triple is
// byte-deterministic — guarded by a golden SHA-256 in large_test.go.

// acl1Mix is an odd multiplicative-hash constant (Knuth). Multiplication by
// an odd constant is a bijection mod 2^24, so every cluster gets a distinct
// /24 destination base without tracking a seen-set.
const acl1Mix = 2654435761

// acl1SrcPoolCap bounds the shared source-prefix pool. Real ACLs reuse a
// modest prefix vocabulary no matter how many rules they hold.
const acl1SrcPoolCap = 24000

// Stream generates the configured rule set, handing each rule to emit in
// final order. For the ACL kind generation is incremental — memory stays
// O(source pool), not O(size). Other kinds materialize internally and then
// emit, so Stream is valid (just not cheaper) for every kind. Emission stops
// early if emit returns an error.
func Stream(cfg Config, emit func(rules.Rule) error) error {
	if cfg.Size <= 0 {
		return fmt.Errorf("rulegen: size must be positive, got %d", cfg.Size)
	}
	if cfg.Kind == ACL {
		rng := rand.New(rand.NewSource(cfg.Seed))
		return streamACL(rng, cfg.Size, emit)
	}
	rs, err := Generate(cfg)
	if err != nil {
		return err
	}
	for _, r := range rs.Rules {
		if err := emit(r); err != nil {
			return err
		}
	}
	return nil
}

// streamACL emits exactly n acl1-style rules. Structure:
//
//   - Rules come in clusters sharing one destination prefix. Cluster sizes
//     are skewed small (≈75% singletons) so destination projections are
//     mostly pairwise disjoint.
//   - Each cluster's destination descends from a distinct /24 base obtained
//     by bijectively mixing the cluster ordinal, then extends to /24–/32
//     (disjoint across clusters) or, ~9% of the time, truncates to /16–/23
//     or widens to a wildcard — the controlled-overlap tail.
//   - Members of one cluster take distinct well-known service ports;
//     sources come from a shared skewed prefix pool with a wildcard share.
//
// The rng is consumed in an order that depends only on n, never on the
// emit callback, preserving byte determinism.
func streamACL(rng *rand.Rand, n int, emit func(rules.Rule) error) error {
	poolN := n
	if poolN > acl1SrcPoolCap {
		poolN = acl1SrcPoolCap
	}
	srcPool := genPrefixPool(rng, 8, poolN)

	emitted := 0
	for cluster := 0; emitted < n; cluster++ {
		baseAddr := (uint32(cluster) * acl1Mix & 0xFFFFFF) << 8

		var k int
		switch roll := rng.Intn(100); {
		case roll < 75:
			k = 1
		case roll < 95:
			k = 2
		default:
			k = 3 + rng.Intn(4) // 3..6
		}

		var dst rules.Prefix
		switch roll := rng.Intn(100); {
		case roll < 1:
			// Rare destination wildcard (e.g. anti-spoofing entries).
			dst = rules.Prefix{}
		case roll < 9:
			// Short prefix: overlaps the long branches of other clusters.
			l := uint8(16 + rng.Intn(8)) // 16..23
			dst = rules.Prefix{Addr: baseAddr & hiMask32(uint(l)), Len: l}
		default:
			// Long branch under this cluster's own /24 base — disjoint
			// from every other cluster's long branches by construction.
			var l uint8
			switch r2 := rng.Intn(100); {
			case r2 < 45:
				l = 24
			case r2 < 75:
				l = uint8(25 + rng.Intn(7)) // 25..31
			default:
				l = 32
			}
			addr := baseAddr | rng.Uint32()&loMask32(8)
			dst = rules.Prefix{Addr: addr & hiMask32(uint(l)), Len: l}
		}

		svcBase := rng.Intn(len(wellKnownServices))
		for i := 0; i < k && emitted < n; i++ {
			src := srcPool[rng.Intn(len(srcPool))]
			if rng.Intn(100) < 20 {
				src = rules.Prefix{}
			}
			svc := wellKnownServices[(svcBase+i)%len(wellKnownServices)]
			dpt := rules.PortRange{Lo: svc.port, Hi: svc.port}
			proto := rules.ProtoMatch{Value: svc.proto}
			switch roll := rng.Intn(100); {
			case roll < 6:
				dpt = rules.FullPortRange
				proto = rules.AnyProto
			case roll < 12:
				lo := uint16(1024 + rng.Intn(40000))
				dpt = rules.PortRange{Lo: lo, Hi: lo + uint16(rng.Intn(1000))}
			}
			r := rules.Rule{
				SrcIP:   src,
				DstIP:   dst,
				SrcPort: rules.FullPortRange,
				DstPort: dpt,
				Proto:   proto,
				Action:  rules.Action(2 + rng.Intn(4)),
			}
			if err := emit(r); err != nil {
				return err
			}
			emitted++
		}
	}
	return nil
}

// largeConfigs are the production-scale presets, named after the NuevoMatch
// acl1 seeds. They are deliberately *not* part of standardConfigs: the
// paper-table experiment drivers iterate StandardSets and must keep printing
// the paper's seven rows.
var largeConfigs = []Config{
	{Kind: ACL, Size: 1000, Seed: 0xAC1001, Name: "ACL1_1K"},
	{Kind: ACL, Size: 10000, Seed: 0xAC1010, Name: "ACL1_10K"},
	{Kind: ACL, Size: 100000, Seed: 0xAC1100, Name: "ACL1_100K"},
	{Kind: ACL, Size: 1000000, Seed: 0xAC1F00, Name: "ACL1_1M"},
}

// LargeNames lists the production-scale preset names in size order.
func LargeNames() []string {
	names := make([]string, len(largeConfigs))
	for i, c := range largeConfigs {
		names[i] = c.Name
	}
	return names
}

// Large returns the preset config for a production-scale set name.
func Large(name string) (Config, bool) {
	for _, c := range largeConfigs {
		if c.Name == name {
			return c, true
		}
	}
	return Config{}, false
}

// LargeForSize returns the ACL preset with exactly size rules, or a
// derived config (stable seed) for non-preset sizes. Experiment sweeps use
// this so a 1k point and the ACL1_1K preset are the same bytes.
func LargeForSize(size int) Config {
	for _, c := range largeConfigs {
		if c.Size == size {
			return c
		}
	}
	return Config{Kind: ACL, Size: size, Seed: 0xAC1000 + int64(size), Name: fmt.Sprintf("ACL1_%d", size)}
}
