package rulegen

import (
	"fmt"

	"repro/internal/rules"
)

// StandardName identifies one of the paper's seven named rule sets.
type StandardName string

// The seven rule sets of the paper's evaluation (§6.1), in the order its
// figures present them. Sizes for the FW and smaller CR sets are not given
// in the paper; we use plausible values growing roughly geometrically and
// match the one published size exactly (CR04 = 1945 rules).
var standardConfigs = []Config{
	{Kind: Firewall, Size: 85, Seed: 0xF001, Name: "FW01"},
	{Kind: Firewall, Size: 160, Seed: 0xF002, Name: "FW02"},
	{Kind: Firewall, Size: 310, Seed: 0xF003, Name: "FW03"},
	{Kind: CoreRouter, Size: 460, Seed: 0xC001, Name: "CR01"},
	{Kind: CoreRouter, Size: 920, Seed: 0xC002, Name: "CR02"},
	{Kind: CoreRouter, Size: 1530, Seed: 0xC003, Name: "CR03"},
	{Kind: CoreRouter, Size: 1945, Seed: 0xC004, Name: "CR04"},
}

// StandardNames lists the seven set names in presentation order.
func StandardNames() []string {
	names := make([]string, len(standardConfigs))
	for i, c := range standardConfigs {
		names[i] = c.Name
	}
	return names
}

// StandardConfig resolves a set name — standard (FW01…CR04) or large
// preset (ACL1_1K…ACL1_1M) — to its generation config without building
// the set. Callers that stream rules (pcgen at 100k–1M) use this to avoid
// materializing the whole set before the first byte is written.
func StandardConfig(name string) (Config, bool) {
	for _, c := range standardConfigs {
		if c.Name == name {
			return c, true
		}
	}
	return Large(name)
}

// Standard generates the named standard rule set (FW01…CR04), or one of
// the production-scale presets (ACL1_1K…ACL1_1M). The large presets resolve
// here so every command-line `-ruleset` flag accepts them, but they stay
// out of StandardSets: the paper-table drivers print exactly seven rows.
func Standard(name string) (*rules.RuleSet, error) {
	for _, c := range standardConfigs {
		if c.Name == name {
			return Generate(c)
		}
	}
	if c, ok := Large(name); ok {
		return Generate(c)
	}
	return nil, fmt.Errorf("rulegen: unknown standard rule set %q (have %v and large presets %v)", name, StandardNames(), LargeNames())
}

// StandardSets generates all seven sets in presentation order.
func StandardSets() ([]*rules.RuleSet, error) {
	out := make([]*rules.RuleSet, len(standardConfigs))
	for i, c := range standardConfigs {
		s, err := Generate(c)
		if err != nil {
			return nil, err
		}
		out[i] = s
	}
	return out, nil
}
