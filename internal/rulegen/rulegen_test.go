package rulegen

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/rules"
)

func TestGenerateDeterministic(t *testing.T) {
	cfg := Config{Kind: Firewall, Size: 100, Seed: 7}
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Rules, b.Rules) {
		t.Fatal("same config must generate identical rules")
	}
	c, err := Generate(Config{Kind: Firewall, Size: 100, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Rules, c.Rules) {
		t.Fatal("different seeds should generate different rules")
	}
}

func TestGenerateExactSize(t *testing.T) {
	for _, kind := range []Kind{Firewall, CoreRouter, Random} {
		for _, size := range []int{2, 17, 100, 500} {
			s, err := Generate(Config{Kind: kind, Size: size, Seed: 1})
			if err != nil {
				t.Fatalf("%v/%d: %v", kind, size, err)
			}
			if s.Len() != size {
				t.Errorf("%v/%d: generated %d rules", kind, size, s.Len())
			}
			if err := s.Validate(); err != nil {
				t.Errorf("%v/%d: invalid: %v", kind, size, err)
			}
		}
	}
}

func TestGenerateRejectsBadSize(t *testing.T) {
	if _, err := Generate(Config{Kind: Firewall, Size: 0, Seed: 1}); err == nil {
		t.Error("size 0 should fail")
	}
	if _, err := Generate(Config{Kind: Firewall, Size: -5, Seed: 1}); err == nil {
		t.Error("negative size should fail")
	}
}

func TestFirewallShape(t *testing.T) {
	s, err := Generate(Config{Kind: Firewall, Size: 200, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	st := rules.ComputeStats(s)
	// Firewalls wildcard the source address heavily (inbound service rules).
	if st.WildcardFrac[rules.DimSrcIP] < 0.3 {
		t.Errorf("firewall srcIP wildcard fraction = %.2f, want >= 0.3", st.WildcardFrac[rules.DimSrcIP])
	}
	// Source ports are almost always wildcarded.
	if st.WildcardFrac[rules.DimSrcPort] < 0.9 {
		t.Errorf("firewall srcPort wildcard fraction = %.2f, want >= 0.9", st.WildcardFrac[rules.DimSrcPort])
	}
	// The last rule must be the default deny.
	last := s.Rules[s.Len()-1]
	if !last.SrcIP.IsWildcard() || !last.DstIP.IsWildcard() || last.Action != rules.ActionDeny {
		t.Errorf("last firewall rule should be default deny, got %v", &last)
	}
	// Every header must therefore match something.
	if s.Match(rules.Header{SrcIP: 12345, DstIP: 99999, SrcPort: 1, DstPort: 2, Proto: 200}) < 0 {
		t.Error("default deny should make the policy total")
	}
}

func TestCoreRouterShape(t *testing.T) {
	s, err := Generate(Config{Kind: CoreRouter, Size: 500, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	st := rules.ComputeStats(s)
	// Core-router ACLs are prefix-pair dominated: most rules carry real
	// prefixes on both addresses and wildcard ports.
	if st.WildcardFrac[rules.DimSrcIP] > 0.3 {
		t.Errorf("CR srcIP wildcard fraction = %.2f, want <= 0.3", st.WildcardFrac[rules.DimSrcIP])
	}
	if st.WildcardFrac[rules.DimDstPort] < 0.1 {
		t.Errorf("CR dstPort wildcard fraction = %.2f, want >= 0.1", st.WildcardFrac[rules.DimDstPort])
	}
	// Source ports stay wildcarded; destination ports split between
	// service clusters and pair-wide catch-alls.
	if st.WildcardFrac[rules.DimSrcPort] < 0.95 {
		t.Errorf("CR srcPort wildcard fraction = %.2f, want >= 0.95", st.WildcardFrac[rules.DimSrcPort])
	}
	// Prefix lengths should be concentrated in 12..24.
	mid := 0
	for l := 12; l <= 24; l++ {
		mid += st.PrefixLenHist[0][l]
	}
	if frac := float64(mid) / float64(s.Len()); frac < 0.5 {
		t.Errorf("CR prefix lengths 12–24 cover only %.0f%% of rules", frac*100)
	}
	// No duplicate rules.
	seen := make(map[rules.Rule]bool)
	for _, r := range s.Rules {
		if seen[r] {
			t.Fatalf("duplicate rule generated: %v", &r)
		}
		seen[r] = true
	}
}

func TestStandardSets(t *testing.T) {
	sets, err := StandardSets()
	if err != nil {
		t.Fatal(err)
	}
	wantNames := []string{"FW01", "FW02", "FW03", "CR01", "CR02", "CR03", "CR04"}
	wantSizes := []int{85, 160, 310, 460, 920, 1530, 1945}
	if len(sets) != len(wantNames) {
		t.Fatalf("got %d sets", len(sets))
	}
	for i, s := range sets {
		if s.Name != wantNames[i] {
			t.Errorf("set %d name = %q, want %q", i, s.Name, wantNames[i])
		}
		if s.Len() != wantSizes[i] {
			t.Errorf("%s has %d rules, want %d", s.Name, s.Len(), wantSizes[i])
		}
	}
	// Sizes must be strictly increasing (the figures rely on it).
	for i := 1; i < len(sets); i++ {
		if sets[i].Len() <= sets[i-1].Len() {
			t.Errorf("sizes not increasing at %s", sets[i].Name)
		}
	}
}

func TestStandardByName(t *testing.T) {
	s, err := Standard("CR04")
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 1945 {
		t.Errorf("CR04 has %d rules, want 1945 (the paper's largest set)", s.Len())
	}
	if _, err := Standard("XX99"); err == nil {
		t.Error("unknown name should fail")
	}
}

func TestStandardSetsRoundTripThroughParser(t *testing.T) {
	// Generated sets must survive Write/Parse — they are what cmd/pcgen
	// writes to disk.
	s, err := Standard("FW01")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := rules.Parse("FW01", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s.Rules, back.Rules) {
		t.Fatal("standard set does not round-trip through the text format")
	}
}

func TestPrefixPoolMasksHostBits(t *testing.T) {
	s, err := Generate(Config{Kind: CoreRouter, Size: 300, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range s.Rules {
		for _, p := range []rules.Prefix{r.SrcIP, r.DstIP} {
			sp := p.Span()
			if p.Len > 0 && sp.Lo != p.Addr {
				t.Fatalf("rule %d: prefix %v has host bits set", i, p)
			}
		}
	}
}
