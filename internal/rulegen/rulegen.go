// Package rulegen generates deterministic synthetic rule sets reproducing
// the statistical structure of the paper's proprietary real-life sets
// (firewall sets FW01–FW03 and core-router sets CR01–CR04 from Qi et al.
// [6][22]). The real sets are not public, so this package is the documented
// substitution (DESIGN.md §2): decision-tree and space-mapping behaviour is
// driven by prefix-length distributions, wildcard density and rule overlap,
// all of which the generators control; the published set *names and sizes*
// are preserved so the experiment drivers can print the paper's rows.
//
// Firewall sets are small with heavy wildcarding: protected-server rules
// (wildcard source, narrow destination, well-known service ports), a few
// egress rules, and a trailing default deny. Core-router sets are dominated
// by source/destination prefix pairs drawn from skewed synthetic prefix
// trees, with mostly wildcarded ports — the structure of backbone ACLs.
//
// All generation is seeded; the same (kind, size, seed) triple always yields
// the identical rule set, byte for byte.
package rulegen

import (
	"fmt"
	"math/rand"

	"repro/internal/rules"
)

// Kind selects the statistical family of a generated rule set.
type Kind int

// Rule set families.
const (
	// Firewall mimics enterprise edge ACLs (FW01–FW03).
	Firewall Kind = iota
	// CoreRouter mimics backbone router ACLs (CR01–CR04).
	CoreRouter
	// Random generates unstructured uniform rules; used only by property
	// tests to stress classifiers away from real-life structure.
	Random
	// ACL mimics ClassBench acl1-style access lists at production scale
	// (10k–1M rules): destination prefixes sampled from a skewed prefix
	// tree with controlled cross-cluster overlap, service clusters on a
	// shared prefix, and a reused source-prefix pool. The family is the
	// large-set counterpart of CoreRouter and the workload the learned
	// range index (internal/rmi) is evaluated on; see large.go.
	ACL
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case Firewall:
		return "firewall"
	case CoreRouter:
		return "core-router"
	case Random:
		return "random"
	case ACL:
		return "acl"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Config parameterizes generation.
type Config struct {
	Kind Kind
	// Size is the exact number of rules to produce.
	Size int
	// Seed makes generation deterministic.
	Seed int64
	// Name labels the resulting set; defaults to "<kind>-<size>".
	Name string
}

// Generate produces a rule set per the configuration.
func Generate(cfg Config) (*rules.RuleSet, error) {
	if cfg.Size <= 0 {
		return nil, fmt.Errorf("rulegen: size must be positive, got %d", cfg.Size)
	}
	name := cfg.Name
	if name == "" {
		name = fmt.Sprintf("%s-%d", cfg.Kind, cfg.Size)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	var rs []rules.Rule
	switch cfg.Kind {
	case Firewall:
		rs = genFirewall(rng, cfg.Size)
	case CoreRouter:
		rs = genCoreRouter(rng, cfg.Size)
	case Random:
		rs = genRandom(rng, cfg.Size)
	case ACL:
		rs = make([]rules.Rule, 0, cfg.Size)
		streamACL(rng, cfg.Size, func(r rules.Rule) error {
			rs = append(rs, r)
			return nil
		})
	default:
		return nil, fmt.Errorf("rulegen: unknown kind %v", cfg.Kind)
	}
	set := rules.NewRuleSet(name, rs)
	if err := set.Validate(); err != nil {
		return nil, fmt.Errorf("rulegen: generated invalid set: %w", err)
	}
	return set, nil
}

// wellKnownServices are (port, proto) pairs weighted toward the services
// that dominate real firewall policies.
var wellKnownServices = []struct {
	port  uint16
	proto uint8
}{
	{80, rules.ProtoTCP}, {443, rules.ProtoTCP}, {25, rules.ProtoTCP},
	{22, rules.ProtoTCP}, {21, rules.ProtoTCP}, {110, rules.ProtoTCP},
	{143, rules.ProtoTCP}, {3389, rules.ProtoTCP}, {8080, rules.ProtoTCP},
	{53, rules.ProtoUDP}, {123, rules.ProtoUDP}, {161, rules.ProtoUDP},
	{514, rules.ProtoUDP}, {1812, rules.ProtoUDP},
}

// genFirewall produces n firewall-style rules, ending with a default deny.
func genFirewall(rng *rand.Rand, n int) []rules.Rule {
	// Protected networks: a couple of site prefixes subdivided into
	// server subnets.
	sites := []rules.Prefix{
		{Addr: 0xC0A80000, Len: 16}, // 192.168.0.0/16
		{Addr: 0x0A000000, Len: 8},  // 10.0.0.0/8
		{Addr: 0xAC100000, Len: 12}, // 172.16.0.0/12
	}
	subnet := func() rules.Prefix {
		site := sites[rng.Intn(len(sites))]
		extra := uint8(8 + rng.Intn(3)*8) // /16 -> /24, /8 -> /16 or /24...
		l := site.Len + extra
		if l > 32 {
			l = 32
		}
		// Keep the site's top bits, randomize the next l-site.Len bits,
		// zero the host bits.
		rnd := rng.Uint32()
		mask := hiMask32(uint(l))
		siteMask := hiMask32(uint(site.Len))
		a := (site.Addr & siteMask) | (rnd &^ siteMask & mask)
		return rules.Prefix{Addr: a, Len: l}
	}
	host := func() rules.Prefix {
		p := subnet()
		p.Len = 32
		p.Addr |= rng.Uint32() & loMask32(8)
		return p
	}

	out := make([]rules.Rule, 0, n)
	seen := make(map[rules.Rule]bool)
	add := func(r rules.Rule) bool {
		if len(out) >= n-1 { // reserve one slot for the default rule
			return false
		}
		if seen[r] {
			return true
		}
		seen[r] = true
		out = append(out, r)
		return true
	}

	for len(out) < n-1 {
		switch roll := rng.Intn(100); {
		case roll < 55:
			// Inbound service permit: any source to a server subnet/host
			// on a well-known service.
			svc := wellKnownServices[rng.Intn(len(wellKnownServices))]
			dst := subnet()
			if rng.Intn(3) == 0 {
				dst = host()
			}
			add(rules.Rule{
				SrcIP:   rules.Prefix{},
				DstIP:   dst,
				SrcPort: rules.FullPortRange,
				DstPort: rules.PortRange{Lo: svc.port, Hi: svc.port},
				Proto:   rules.ProtoMatch{Value: svc.proto},
				Action:  rules.ActionPermit,
			})
		case roll < 70:
			// Block rule: a bad external /16–/24 toward anything.
			l := uint8(16 + rng.Intn(2)*8)
			add(rules.Rule{
				SrcIP:   rules.Prefix{Addr: rng.Uint32() & hiMask32(uint(l)), Len: l},
				DstIP:   rules.Prefix{},
				SrcPort: rules.FullPortRange,
				DstPort: rules.FullPortRange,
				Proto:   rules.AnyProto,
				Action:  rules.ActionDeny,
			})
		case roll < 85:
			// Egress rule: internal subnet to anywhere on a port range
			// (ephemeral or a service band).
			var pr rules.PortRange
			if rng.Intn(2) == 0 {
				pr = rules.PortRange{Lo: 1024, Hi: 65535}
			} else {
				lo := uint16(rng.Intn(1000) + 1)
				pr = rules.PortRange{Lo: lo, Hi: lo + uint16(rng.Intn(200))}
			}
			add(rules.Rule{
				SrcIP:   subnet(),
				DstIP:   rules.Prefix{},
				SrcPort: rules.FullPortRange,
				DstPort: pr,
				Proto:   rules.ProtoMatch{Value: rules.ProtoTCP},
				Action:  rules.ActionPermit,
			})
		case roll < 93:
			// Management rule: exact host pair on SSH/SNMP-like ports.
			svc := wellKnownServices[rng.Intn(len(wellKnownServices))]
			add(rules.Rule{
				SrcIP:   host(),
				DstIP:   host(),
				SrcPort: rules.FullPortRange,
				DstPort: rules.PortRange{Lo: svc.port, Hi: svc.port},
				Proto:   rules.ProtoMatch{Value: svc.proto},
				Action:  rules.ActionPermit,
			})
		default:
			// ICMP policy.
			add(rules.Rule{
				SrcIP:   rules.Prefix{},
				DstIP:   subnet(),
				SrcPort: rules.FullPortRange,
				DstPort: rules.FullPortRange,
				Proto:   rules.ProtoMatch{Value: rules.ProtoICMP},
				Action:  rules.Action(rng.Intn(2)), // permit or deny
			})
		}
	}
	// Trailing default deny, as real firewall policies end.
	out = append(out, rules.Rule{
		SrcPort: rules.FullPortRange,
		DstPort: rules.FullPortRange,
		Proto:   rules.AnyProto,
		Action:  rules.ActionDeny,
	})
	return out
}

// genCoreRouter produces n core-router-style rules: prefix-pair dominated,
// drawn from skewed synthetic prefix trees.
func genCoreRouter(rng *rand.Rand, n int) []rules.Rule {
	// Build two prefix pools (sources and destinations) the way backbone
	// tables look: a modest number of /8 roots, each fanned out into
	// subprefixes with lengths concentrated at /16–/24. Real ACLs reuse
	// the same prefixes across many rules, which is what lets decision
	// trees share nodes; the pool is therefore much smaller than the rule
	// count.
	srcPool := genPrefixPool(rng, 6, n)
	dstPool := genPrefixPool(rng, 6, n)

	out := make([]rules.Rule, 0, n)
	seen := make(map[rules.Rule]bool)
	add := func(r rules.Rule) {
		if len(out) < n && !seen[r] {
			seen[r] = true
			out = append(out, r)
		}
	}
	pair := func() (rules.Prefix, rules.Prefix) {
		src := srcPool[rng.Intn(len(srcPool))]
		dst := dstPool[rng.Intn(len(dstPool))]
		switch roll := rng.Intn(100); {
		case roll < 8:
			// Wildcard source (destination-only ACL entry).
			src = rules.Prefix{}
		case roll < 13:
			// Wildcard destination.
			dst = rules.Prefix{}
		}
		return src, dst
	}
	for len(out) < n {
		if rng.Intn(100) < 45 {
			// Service cluster: real ACLs stack several service-specific
			// rules on one prefix pair, usually closed by a pair-wide
			// catch-all. These clusters are what fills decision-tree
			// leaves up to binth.
			src, dst := pair()
			k := 4 + rng.Intn(4)
			for i := 0; i < k; i++ {
				svc := wellKnownServices[rng.Intn(len(wellKnownServices))]
				add(rules.Rule{
					SrcIP:   src,
					DstIP:   dst,
					SrcPort: rules.FullPortRange,
					DstPort: rules.PortRange{Lo: svc.port, Hi: svc.port},
					Proto:   rules.ProtoMatch{Value: svc.proto},
					Action:  rules.Action(2 + rng.Intn(4)),
				})
			}
			add(rules.Rule{
				SrcIP:   src,
				DstIP:   dst,
				SrcPort: rules.FullPortRange,
				DstPort: rules.FullPortRange,
				Proto:   rules.AnyProto,
				Action:  rules.Action(2 + rng.Intn(4)),
			})
			continue
		}
		src, dst := pair()
		r := rules.Rule{
			SrcIP:   src,
			DstIP:   dst,
			SrcPort: rules.FullPortRange,
			DstPort: rules.FullPortRange,
			Proto:   rules.ProtoMatch{Value: rules.ProtoTCP},
			Action:  rules.Action(2 + rng.Intn(4)), // traffic classes
		}
		switch roll := rng.Intn(100); {
		case roll < 20:
			// Exact service port on the destination.
			svc := wellKnownServices[rng.Intn(len(wellKnownServices))]
			r.DstPort = rules.PortRange{Lo: svc.port, Hi: svc.port}
			r.Proto = rules.ProtoMatch{Value: svc.proto}
		case roll < 38:
			// Port band (e.g. P2P ranges that backbone ACLs police).
			lo := uint16(rng.Intn(60000))
			r.DstPort = rules.PortRange{Lo: lo, Hi: lo + uint16(rng.Intn(4000)+1)}
		case roll < 40:
			r.Proto = rules.ProtoMatch{Value: rules.ProtoUDP}
		case roll < 36:
			r.Proto = rules.AnyProto
		}
		add(r)
	}
	return out
}

// genPrefixPool builds a pool of IPv4 prefixes rooted at `roots` random /8s,
// with lengths concentrated at /16–/24 (the published CR prefix-length
// shape). Pool size scales with the rule count.
func genPrefixPool(rng *rand.Rand, roots, n int) []rules.Prefix {
	size := n/3 + 24
	pool := make([]rules.Prefix, 0, size)
	rootAddrs := make([]uint32, roots)
	for i := range rootAddrs {
		rootAddrs[i] = uint32(rng.Intn(223)+1) << 24 // class A–C space
	}
	for len(pool) < size {
		root := rootAddrs[rng.Intn(roots)]
		// Length distribution: strongly clustered at the byte-aligned
		// lengths /16 and /24 with modest tails, as published
		// route-table and ACL studies report.
		var l uint8
		switch roll := rng.Intn(100); {
		case roll < 5:
			l = 8
		case roll < 12:
			l = uint8(12 + rng.Intn(4)) // 12..15
		case roll < 40:
			l = 16
		case roll < 52:
			l = uint8(17 + rng.Intn(7)) // 17..23
		case roll < 90:
			l = 24
		case roll < 96:
			l = uint8(25 + rng.Intn(7)) // 25..31
		default:
			l = 32
		}
		addr := root | rng.Uint32()&loMask32(24)
		pool = append(pool, rules.Prefix{Addr: addr & hiMask32(uint(l)), Len: l})
	}
	return pool
}

// genRandom produces unstructured rules for property testing.
func genRandom(rng *rand.Rand, n int) []rules.Rule {
	out := make([]rules.Rule, n)
	for i := range out {
		out[i] = RandomRule(rng)
	}
	return out
}

// RandomRule draws one uniform unstructured rule. Exported for property
// tests in other packages.
func RandomRule(rng *rand.Rand) rules.Rule {
	randPrefix := func() rules.Prefix {
		l := uint8(rng.Intn(33))
		return rules.Prefix{Addr: rng.Uint32() & hiMask32(uint(l)), Len: l}
	}
	randPorts := func() rules.PortRange {
		switch rng.Intn(3) {
		case 0:
			return rules.FullPortRange
		case 1:
			p := uint16(rng.Intn(65536))
			return rules.PortRange{Lo: p, Hi: p}
		default:
			a, b := uint16(rng.Intn(65536)), uint16(rng.Intn(65536))
			if a > b {
				a, b = b, a
			}
			return rules.PortRange{Lo: a, Hi: b}
		}
	}
	var pm rules.ProtoMatch
	switch rng.Intn(4) {
	case 0:
		pm = rules.AnyProto
	default:
		pm = rules.ProtoMatch{Value: uint8(rng.Intn(256))}
	}
	return rules.Rule{
		SrcIP:   randPrefix(),
		DstIP:   randPrefix(),
		SrcPort: randPorts(),
		DstPort: randPorts(),
		Proto:   pm,
		Action:  rules.Action(rng.Intn(6)),
	}
}

// hiMask32 returns a mask of the top n bits of a 32-bit word.
func hiMask32(n uint) uint32 {
	if n == 0 {
		return 0
	}
	if n >= 32 {
		return ^uint32(0)
	}
	return ^uint32(0) << (32 - n)
}

// loMask32 returns a mask of the low n bits of a 32-bit word.
func loMask32(n uint) uint32 {
	if n >= 32 {
		return ^uint32(0)
	}
	return (uint32(1) << n) - 1
}
