package rulegen

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"testing"

	"repro/internal/rules"
)

// goldenLargeHashes pin the byte encoding of the large presets per
// (kind, size, seed). A failure here means a refactor of the prefix-tree
// sampler changed benchmark inputs: every tracked BENCH_*.json number and
// the golden traces become incomparable. Bump deliberately, never silently.
var goldenLargeHashes = map[string]string{
	"ACL1_1K":   "8b7f73b42507ff7f4ac4a5cde4729393f965149b9e813f429763a4d7eaeb1558",
	"ACL1_100K": "8de2eda2f21c6a577e5d2e7a64198c68a8ca98931686a10253666c3a97d7586b",
}

// hashStreamed streams the preset through the text encoding used by
// RuleSet.Write and returns the SHA-256 of the concatenated lines.
func hashStreamed(t *testing.T, cfg Config) string {
	t.Helper()
	h := sha256.New()
	count := 0
	err := Stream(cfg, func(r rules.Rule) error {
		fmt.Fprintf(h, "%s\n", r.String())
		count++
		return nil
	})
	if err != nil {
		t.Fatalf("Stream(%s): %v", cfg.Name, err)
	}
	if count != cfg.Size {
		t.Fatalf("Stream(%s): emitted %d rules, want exactly %d", cfg.Name, count, cfg.Size)
	}
	return hex.EncodeToString(h.Sum(nil))
}

func TestLargeGoldenHashes(t *testing.T) {
	for name, want := range goldenLargeHashes {
		cfg, ok := Large(name)
		if !ok {
			t.Fatalf("Large(%q): preset missing", name)
		}
		if got := hashStreamed(t, cfg); got != want {
			t.Errorf("%s: generated set hash %s, golden %s — the sampler changed; benchmark inputs are no longer comparable", name, got, want)
		}
	}
}

func TestLargeStreamMatchesGenerate(t *testing.T) {
	cfg, _ := Large("ACL1_1K")
	set, err := Generate(cfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if len(set.Rules) != cfg.Size {
		t.Fatalf("Generate: %d rules, want %d", len(set.Rules), cfg.Size)
	}
	i := 0
	err = Stream(cfg, func(r rules.Rule) error {
		if r != set.Rules[i] {
			return fmt.Errorf("rule %d differs: streamed %v, generated %v", i, r, set.Rules[i])
		}
		i++
		return nil
	})
	if err != nil {
		t.Fatalf("Stream diverges from Generate: %v", err)
	}
	if i != len(set.Rules) {
		t.Fatalf("Stream emitted %d rules, Generate %d", i, len(set.Rules))
	}
}

func TestLargeValidates(t *testing.T) {
	for _, name := range []string{"ACL1_1K", "ACL1_10K"} {
		set, err := Standard(name)
		if err != nil {
			t.Fatalf("Standard(%q): %v", name, err)
		}
		if err := set.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if len(set.Rules) != mustLarge(t, name).Size {
			t.Errorf("%s: size %d, want %d", name, len(set.Rules), mustLarge(t, name).Size)
		}
	}
}

func mustLarge(t *testing.T, name string) Config {
	t.Helper()
	c, ok := Large(name)
	if !ok {
		t.Fatalf("Large(%q) missing", name)
	}
	return c
}

// TestLargeForSize keeps sweep points and presets byte-identical.
func TestLargeForSize(t *testing.T) {
	if got := LargeForSize(100000); got.Name != "ACL1_100K" {
		t.Errorf("LargeForSize(100000) = %+v, want the ACL1_100K preset", got)
	}
	derived := LargeForSize(5000)
	if derived.Size != 5000 || derived.Kind != ACL {
		t.Errorf("LargeForSize(5000) = %+v", derived)
	}
}
