package rfc

import (
	"testing"

	"repro/internal/pktgen"
	"repro/internal/rulegen"
	"repro/internal/rules"
)

func buildSet(t *testing.T, kind rulegen.Kind, size int, seed int64) *rules.RuleSet {
	t.Helper()
	rs, err := rulegen.Generate(rulegen.Config{Kind: kind, Size: size, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return rs
}

func trace(t *testing.T, rs *rules.RuleSet, n int, seed int64) []rules.Header {
	t.Helper()
	tr, err := pktgen.Generate(rs, pktgen.Config{Count: n, Seed: seed, MatchFraction: 0.85})
	if err != nil {
		t.Fatal(err)
	}
	return tr.Headers
}

func TestClassifyMatchesOracle(t *testing.T) {
	for _, tc := range []struct {
		kind rulegen.Kind
		size int
	}{
		{rulegen.Firewall, 85},
		{rulegen.CoreRouter, 200},
		{rulegen.Random, 60},
	} {
		rs := buildSet(t, tc.kind, tc.size, 101)
		c, err := New(rs, Config{})
		if err != nil {
			t.Fatalf("%v/%d: %v", tc.kind, tc.size, err)
		}
		for _, h := range trace(t, rs, 2000, 102) {
			if got, want := c.Classify(h), rs.Match(h); got != want {
				t.Fatalf("%v/%d: Classify(%v) = %d, oracle = %d", tc.kind, tc.size, h, got, want)
			}
		}
	}
}

func TestChunkSpanSplitExactness(t *testing.T) {
	// Prefixes shorter and longer than 16 bits project exactly.
	short := rules.Rule{SrcIP: rules.Prefix{Addr: 0x0A000000, Len: 8},
		SrcPort: rules.FullPortRange, DstPort: rules.FullPortRange, Proto: rules.AnyProto}
	if got := chunkSpan(&short, 0); got != (rules.Span{Lo: 0x0A00, Hi: 0x0AFF}) {
		t.Errorf("hi chunk of /8 = %v", got)
	}
	if got := chunkSpan(&short, 1); got != (rules.Span{Lo: 0, Hi: 0xFFFF}) {
		t.Errorf("lo chunk of /8 = %v", got)
	}
	long := rules.Rule{SrcIP: rules.Prefix{Addr: 0x0A0B0C00, Len: 24},
		SrcPort: rules.FullPortRange, DstPort: rules.FullPortRange, Proto: rules.AnyProto}
	if got := chunkSpan(&long, 0); got != (rules.Span{Lo: 0x0A0B, Hi: 0x0A0B}) {
		t.Errorf("hi chunk of /24 = %v", got)
	}
	if got := chunkSpan(&long, 1); got != (rules.Span{Lo: 0x0C00, Hi: 0x0CFF}) {
		t.Errorf("lo chunk of /24 = %v", got)
	}
}

func TestSerializedLookupMatchesNative(t *testing.T) {
	rs := buildSet(t, rulegen.CoreRouter, 150, 103)
	c, err := New(rs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Verify(trace(t, rs, 2000, 104)); err != nil {
		t.Fatal(err)
	}
}

func TestFixedAccessCount(t *testing.T) {
	rs := buildSet(t, rulegen.Firewall, 100, 105)
	c, err := New(rs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if c.Stats().WorstCaseAccesses != 13 {
		t.Fatalf("worst case = %d, want 13", c.Stats().WorstCaseAccesses)
	}
	for _, h := range trace(t, rs, 300, 106) {
		p := c.Program(h)
		if p.Accesses() != 13 {
			t.Fatalf("RFC lookup used %d accesses, want exactly 13", p.Accesses())
		}
		for _, s := range p.Steps {
			if s.Words != 1 {
				t.Fatalf("access of %d words, want 1", s.Words)
			}
		}
		if p.Result != c.Classify(h) {
			t.Fatalf("program result mismatch")
		}
	}
}

func TestPhase0TablesDominateMemory(t *testing.T) {
	// The memory-for-speed trade: phase-0 alone is 6×2^16+2^8 words.
	rs := buildSet(t, rulegen.Firewall, 50, 107)
	c, err := New(rs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	min := 6*65536 + 256
	if c.Stats().MemoryWords < min {
		t.Errorf("memory %d words below the phase-0 floor %d", c.Stats().MemoryWords, min)
	}
}

func TestChannelRestriction(t *testing.T) {
	rs := buildSet(t, rulegen.Firewall, 60, 108)
	for channels := 1; channels <= 4; channels++ {
		c, err := New(rs, Config{Channels: channels})
		if err != nil {
			t.Fatal(err)
		}
		words := c.Image().ChannelWords()
		for ch := channels; ch < len(words); ch++ {
			if words[ch] != 0 {
				t.Errorf("channels=%d: channel %d has %d words", channels, ch, words[ch])
			}
		}
		if err := c.Verify(trace(t, rs, 200, 109)); err != nil {
			t.Fatalf("channels=%d: %v", channels, err)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	rs := buildSet(t, rulegen.Firewall, 20, 110)
	if _, err := New(rs, Config{Channels: 5}); err == nil {
		t.Error("bad channels should fail")
	}
	if _, err := New(rs, Config{MaxTableEntries: 1}); err == nil {
		t.Error("tiny table cap should fail")
	}
}
