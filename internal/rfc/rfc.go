// Package rfc implements Recursive Flow Classification (Gupta & McKeown,
// SIGCOMM 1999), the other canonical field-independent scheme the paper's
// taxonomy cites (§2). It completes the comparison set as an extension
// beyond the paper's three measured algorithms.
//
// RFC splits the 104-bit header into seven chunks (four 16-bit IP halves,
// two 16-bit ports, the 8-bit protocol). Phase 0 maps each chunk value to
// an equivalence-class ID through a direct-indexed table; later phases
// combine class IDs pairwise through cross-product tables until one final
// table yields the matching rule. A lookup is a fixed sequence of 13
// single-word reads — even fewer than ExpCuts — but phase-0 tables alone
// cost 6 × 2^16 entries, the memory-for-speed trade the paper attributes
// to field-independent schemes.
//
// Because IP fields are prefixes and ports are native 16-bit ranges, every
// chunk projection is exact, so intersecting chunk classes reproduces
// first-match semantics exactly.
package rfc

import (
	"context"
	"fmt"

	"repro/internal/bitset"
	"repro/internal/buildgov"
	"repro/internal/memlayout"
	"repro/internal/nptrace"
	"repro/internal/rules"
)

// numChunks is the number of phase-0 chunks.
const numChunks = 7

// chunkBits gives each chunk's width.
var chunkBits = [numChunks]uint{16, 16, 16, 16, 16, 16, 8}

// chunkOf extracts chunk c from a header.
func chunkOf(h rules.Header, c int) uint32 {
	switch c {
	case 0:
		return h.SrcIP >> 16
	case 1:
		return h.SrcIP & 0xFFFF
	case 2:
		return h.DstIP >> 16
	case 3:
		return h.DstIP & 0xFFFF
	case 4:
		return uint32(h.SrcPort)
	case 5:
		return uint32(h.DstPort)
	case 6:
		return uint32(h.Proto)
	}
	panic(fmt.Sprintf("rfc: invalid chunk %d", c))
}

// chunkSpan projects rule r onto chunk c. For split IP fields the
// projection of span [lo,hi] onto the high half is [lo>>16, hi>>16]; onto
// the low half it is the exact low range when the high half is a single
// value, and the full 16-bit domain otherwise (exact for prefixes).
func chunkSpan(r *rules.Rule, c int) rules.Span {
	switch c {
	case 0:
		s := r.SrcIP.Span()
		return rules.Span{Lo: s.Lo >> 16, Hi: s.Hi >> 16}
	case 1:
		s := r.SrcIP.Span()
		if s.Lo>>16 == s.Hi>>16 {
			return rules.Span{Lo: s.Lo & 0xFFFF, Hi: s.Hi & 0xFFFF}
		}
		return rules.Span{Lo: 0, Hi: 0xFFFF}
	case 2:
		s := r.DstIP.Span()
		return rules.Span{Lo: s.Lo >> 16, Hi: s.Hi >> 16}
	case 3:
		s := r.DstIP.Span()
		if s.Lo>>16 == s.Hi>>16 {
			return rules.Span{Lo: s.Lo & 0xFFFF, Hi: s.Hi & 0xFFFF}
		}
		return rules.Span{Lo: 0, Hi: 0xFFFF}
	case 4:
		return r.SrcPort.Span()
	case 5:
		return r.DstPort.Span()
	case 6:
		return r.Proto.Span()
	}
	panic(fmt.Sprintf("rfc: invalid chunk %d", c))
}

// Config parameterizes RFC construction.
type Config struct {
	// Channels is the number of SRAM channels (1..4).
	Channels int
	// MaxTableEntries caps any single cross-product table.
	MaxTableEntries int
}

// DefaultConfig uses all four channels.
func DefaultConfig() Config {
	return Config{Channels: memlayout.NumChannels, MaxTableEntries: 64 << 20}
}

func (c *Config) fillDefaults() error {
	d := DefaultConfig()
	if c.Channels == 0 {
		c.Channels = d.Channels
	}
	if c.MaxTableEntries == 0 {
		c.MaxTableEntries = d.MaxTableEntries
	}
	if c.Channels < 1 || c.Channels > memlayout.NumChannels {
		return fmt.Errorf("rfc: channels %d out of [1,%d]", c.Channels, memlayout.NumChannels)
	}
	return nil
}

// BuildStats reports table sizes.
type BuildStats struct {
	// Phase0Classes counts equivalence classes per chunk.
	Phase0Classes [numChunks]int
	// MemoryWords is the serialized footprint.
	MemoryWords int
	// WorstCaseAccesses is the fixed lookup cost: 7 phase-0 reads + 6
	// combine reads.
	WorstCaseAccesses int
}

// Classifier is a built RFC classifier.
type Classifier struct {
	cfg   Config
	rs    *rules.RuleSet
	gov   *buildgov.Governor
	stats BuildStats

	chunkTab [numChunks][]uint32 // value -> class ID

	// Combine tables (the reduction tree):
	//   t01 (srcHi,srcLo), t23 (dstHi,dstLo), t45 (sport,dport)
	//   tSrcDst (t01,t23), tPortProto (t45, proto)
	//   tFinal (tSrcDst, tPortProto) -> rule+1
	t01, t23, t45, tSrcDst, tPortProto, tFinal pairTable

	image *memlayout.Image
	lay   [13]place // 7 chunk tables + 6 combine tables
}

type pairTable struct {
	nB   int
	data []uint32
}

func (p *pairTable) at(a, b uint32) uint32 { return p.data[int(a)*p.nB+int(b)] }

type place struct {
	ch   uint8
	base uint32
}

// New builds the RFC tables and their serialized image.
func New(rs *rules.RuleSet, cfg Config) (*Classifier, error) {
	return NewCtx(context.Background(), rs, cfg, nil)
}

// NewCtx is New under governance: phase-0 sweeps and every combine-table
// row cooperatively check ctx and charge estimated bytes against budget
// (nil = ctx only); combine tables are charged before allocation.
func NewCtx(ctx context.Context, rs *rules.RuleSet, cfg Config, budget *buildgov.Budget) (*Classifier, error) {
	if err := cfg.fillDefaults(); err != nil {
		return nil, err
	}
	if err := rs.Validate(); err != nil {
		return nil, err
	}
	c := &Classifier{cfg: cfg, rs: rs, gov: buildgov.Start(ctx, budget)}
	n := rs.Len()

	// Phase 0: per-chunk equivalence classes via segment sweep, then a
	// direct-indexed table per chunk.
	classes := make([][]bitset.Set, numChunks)
	for ch := 0; ch < numChunks; ch++ {
		domain := 1 << chunkBits[ch]
		if err := c.gov.Bytes(int64(domain) * 4); err != nil {
			return nil, err
		}
		// Boundaries where the matching-rule set can change.
		starts := map[uint32]bool{0: true}
		for ri := range rs.Rules {
			sp := chunkSpan(&rs.Rules[ri], ch)
			starts[sp.Lo] = true
			if int(sp.Hi)+1 < domain {
				starts[sp.Hi+1] = true
			}
		}
		in := bitset.NewInterner()
		tab := make([]uint32, domain)
		var cur uint32
		for v := 0; v < domain; v++ {
			if starts[uint32(v)] {
				// One governed row per segment boundary: each costs
				// an O(rules) sweep plus an interned class bitset.
				if err := c.gov.Nodes(1, int64(n/8)+16); err != nil {
					return nil, err
				}
				bs := bitset.New(n)
				for ri := range rs.Rules {
					if chunkSpan(&rs.Rules[ri], ch).Contains(uint32(v)) {
						bs.Add(ri)
					}
				}
				cur = in.Intern(bs)
			}
			tab[v] = cur
		}
		c.chunkTab[ch] = tab
		classes[ch] = make([]bitset.Set, in.Len())
		for id := range classes[ch] {
			classes[ch][id] = in.Class(uint32(id))
		}
		c.stats.Phase0Classes[ch] = in.Len()
	}

	// Combine phases.
	var err error
	var c01, c23, c45, cSD, cPP []bitset.Set
	if c.t01, c01, err = c.cross(classes[0], classes[1]); err != nil {
		return nil, err
	}
	if c.t23, c23, err = c.cross(classes[2], classes[3]); err != nil {
		return nil, err
	}
	if c.t45, c45, err = c.cross(classes[4], classes[5]); err != nil {
		return nil, err
	}
	if c.tSrcDst, cSD, err = c.cross(c01, c23); err != nil {
		return nil, err
	}
	if c.tPortProto, cPP, err = c.cross(c45, classes[6]); err != nil {
		return nil, err
	}
	if c.tFinal, err = c.crossFinal(cSD, cPP); err != nil {
		return nil, err
	}

	c.serialize()
	c.stats.MemoryWords = c.image.TotalWords()
	c.stats.WorstCaseAccesses = numChunks + 6
	return c, nil
}

func (c *Classifier) cross(a, b []bitset.Set) (pairTable, []bitset.Set, error) {
	if len(a)*len(b) > c.cfg.MaxTableEntries {
		return pairTable{}, nil, fmt.Errorf("rfc: table %d×%d exceeds cap %d", len(a), len(b), c.cfg.MaxTableEntries)
	}
	if err := c.gov.Bytes(int64(len(a)) * int64(len(b)) * 4); err != nil {
		return pairTable{}, nil, err
	}
	tab := pairTable{nB: len(b), data: make([]uint32, len(a)*len(b))}
	in := bitset.NewInterner()
	scratch := bitset.New(c.rs.Len())
	for i, bsA := range a {
		if err := c.gov.Nodes(1, 0); err != nil {
			return pairTable{}, nil, err
		}
		for j, bsB := range b {
			// Per-cell poll keeps deadline overshoot at cell granularity
			// even when rows are tens of thousands of cells wide.
			if err := c.gov.Check(); err != nil {
				return pairTable{}, nil, err
			}
			bitset.AndInto(scratch, bsA, bsB)
			tab.data[i*tab.nB+j] = in.Intern(scratch)
		}
	}
	if err := c.gov.Memo(in.Len(), int64(in.Len())*int64(c.rs.Len()/8+16)); err != nil {
		return pairTable{}, nil, err
	}
	out := make([]bitset.Set, in.Len())
	for id := range out {
		out[id] = in.Class(uint32(id))
	}
	return tab, out, nil
}

func (c *Classifier) crossFinal(a, b []bitset.Set) (pairTable, error) {
	if len(a)*len(b) > c.cfg.MaxTableEntries {
		return pairTable{}, fmt.Errorf("rfc: final table %d×%d exceeds cap %d", len(a), len(b), c.cfg.MaxTableEntries)
	}
	if err := c.gov.Bytes(int64(len(a)) * int64(len(b)) * 4); err != nil {
		return pairTable{}, err
	}
	tab := pairTable{nB: len(b), data: make([]uint32, len(a)*len(b))}
	scratch := bitset.New(c.rs.Len())
	for i, bsA := range a {
		if err := c.gov.Nodes(1, 0); err != nil {
			return pairTable{}, err
		}
		for j, bsB := range b {
			if err := c.gov.Check(); err != nil {
				return pairTable{}, err
			}
			bitset.AndInto(scratch, bsA, bsB)
			tab.data[i*tab.nB+j] = uint32(scratch.First() + 1)
		}
	}
	return tab, nil
}

// Classify performs the native lookup.
func (c *Classifier) Classify(h rules.Header) int {
	var cls [numChunks]uint32
	for ch := 0; ch < numChunks; ch++ {
		cls[ch] = c.chunkTab[ch][chunkOf(h, ch)]
	}
	a := c.t01.at(cls[0], cls[1])
	b := c.t23.at(cls[2], cls[3])
	p := c.t45.at(cls[4], cls[5])
	sd := c.tSrcDst.at(a, b)
	pp := c.tPortProto.at(p, cls[6])
	return int(c.tFinal.at(sd, pp)) - 1
}

// ClassifyBatch classifies hs[i] into out[i] (the engine's
// BatchClassifier contract; out must be at least as long as hs). RFC's
// lookup is a fixed 13-read sequence with stack-only scratch, so the loop
// is already allocation-free; the batch form amortizes dispatch and keeps
// the phase-0 chunk tables hot across consecutive packets.
func (c *Classifier) ClassifyBatch(hs []rules.Header, out []int) {
	out = out[:len(hs)]
	for i, h := range hs {
		out[i] = c.Classify(h)
	}
}

// Name identifies the algorithm in reports.
func (c *Classifier) Name() string { return "RFC" }

// Stats returns build statistics.
func (c *Classifier) Stats() BuildStats { return c.stats }

// MemoryBytes returns the serialized footprint.
func (c *Classifier) MemoryBytes() int { return c.image.TotalBytes() }

// Image exposes the serialized SRAM image.
func (c *Classifier) Image() *memlayout.Image { return c.image }

func (c *Classifier) serialize() {
	c.image = memlayout.NewImage()
	next := 0
	spot := func() uint8 {
		ch := uint8(next % c.cfg.Channels)
		next++
		return ch
	}
	for ch := 0; ch < numChunks; ch++ {
		sc := spot()
		c.lay[ch] = place{sc, c.image.Alloc(sc, c.chunkTab[ch])}
	}
	for i, tab := range []*pairTable{&c.t01, &c.t23, &c.t45, &c.tSrcDst, &c.tPortProto, &c.tFinal} {
		sc := spot()
		c.lay[numChunks+i] = place{sc, c.image.Alloc(sc, tab.data)}
	}
}

// Lookup runs the serialized lookup: 13 single-word reads.
func (c *Classifier) Lookup(mem nptrace.Mem, h rules.Header) int {
	costs := nptrace.DefaultCosts
	read := func(slot int, idx uint32) uint32 {
		pl := c.lay[slot]
		mem.Compute(2*costs.ALU + costs.IssueIO)
		return mem.Read(pl.ch, pl.base+idx, 1)[0]
	}
	var cls [numChunks]uint32
	for ch := 0; ch < numChunks; ch++ {
		cls[ch] = read(ch, chunkOf(h, ch))
	}
	a := read(7, cls[0]*uint32(c.t01.nB)+cls[1])
	b := read(8, cls[2]*uint32(c.t23.nB)+cls[3])
	p := read(9, cls[4]*uint32(c.t45.nB)+cls[5])
	sd := read(10, a*uint32(c.tSrcDst.nB)+b)
	pp := read(11, p*uint32(c.tPortProto.nB)+cls[6])
	return int(read(12, sd*uint32(c.tFinal.nB)+pp)) - 1
}

// Program records the access program for one header.
func (c *Classifier) Program(h rules.Header) nptrace.Program {
	rec := nptrace.NewRecorder(c.image)
	return rec.Finish(c.Lookup(rec, h))
}

// Verify cross-checks the serialized lookup against the native one.
func (c *Classifier) Verify(headers []rules.Header) error {
	mem := nptrace.NullMem{R: c.image}
	for _, h := range headers {
		if got, want := c.Lookup(mem, h), c.Classify(h); got != want {
			return fmt.Errorf("rfc: serialized lookup %d != native %d for %v", got, want, h)
		}
	}
	return nil
}
