package bitstring

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestABSRoundTrip(t *testing.T) {
	cases := [][]uint32{
		{5},
		{5, 5, 5, 5},
		{1, 2, 3, 4},
		{7, 7, 8, 8, 8, 9, 7, 7},
		make([]uint32, 256), // all zero: one run
	}
	for _, ptrs := range cases {
		a := CompressABS(ptrs)
		if got := a.Decompress(); !reflect.DeepEqual(got, ptrs) {
			t.Errorf("Decompress(%v) = %v", ptrs, got)
		}
		for n := range ptrs {
			if got := a.At(n); got != ptrs[n] {
				t.Errorf("At(%d) = %d, want %d (ptrs %v)", n, got, ptrs[n], ptrs)
			}
		}
	}
}

func TestABSCompression(t *testing.T) {
	// 256 identical pointers: 8 bit-string words + 1 CPA word.
	a := CompressABS(make([]uint32, 256))
	if len(a.CPA) != 1 {
		t.Errorf("CPA length = %d, want 1", len(a.CPA))
	}
	if a.Words() != 9 {
		t.Errorf("Words = %d, want 9", a.Words())
	}
	// All-distinct pointers: CPA as large as the input.
	ptrs := make([]uint32, 256)
	for i := range ptrs {
		ptrs[i] = uint32(i)
	}
	b := CompressABS(ptrs)
	if len(b.CPA) != 256 {
		t.Errorf("CPA length = %d, want 256", len(b.CPA))
	}
}

func TestHABSPaperExample(t *testing.T) {
	// Figure 3 of the paper: 16 sub-spaces, 4-bit HABS (w=4, v=2, u=2).
	// Sub-spaces 0..3 map to child SS0; 4..15 map to child SS1.
	// Pointer array: [A A A A B B B B B B B B B B B B].
	const A, B = 100, 200
	ptrs := make([]uint32, 16)
	for i := range ptrs {
		if i < 4 {
			ptrs[i] = A
		} else {
			ptrs[i] = B
		}
	}
	h, err := CompressHABS(ptrs, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Sub-arrays: [A A A A] [B B B B] [B B B B] [B B B B] -> bits 1100
	// (paper's orientation; our bit 0 = first sub-array, so 0b0011).
	if h.Bits != 0b0011 {
		t.Errorf("HABS bits = %04b, want 0011", h.Bits)
	}
	if h.SubArrays() != 2 {
		t.Errorf("SubArrays = %d, want 2", h.SubArrays())
	}
	// The paper walks sub-space 9: m=2, j=1, i = popcount(bits 0..2)-1 = 1,
	// pointer = CPA[1<<2+1] = CPA[5], which must be B.
	if got := h.At(9); got != B {
		t.Errorf("At(9) = %d, want %d", got, B)
	}
	if got := h.At(2); got != A {
		t.Errorf("At(2) = %d, want %d", got, A)
	}
	// CPA index 5 specifically holds B (the paper's P5).
	if h.CPA[5] != B {
		t.Errorf("CPA[5] = %d, want %d", h.CPA[5], B)
	}
}

func TestHABSRoundTripExhaustive(t *testing.T) {
	// Every (w, v) configuration the repo supports, random pointer arrays.
	rng := rand.New(rand.NewSource(1))
	for w := uint(1); w <= 8; w++ {
		for v := uint(0); v <= w && v <= MaxV; v++ {
			for trial := 0; trial < 20; trial++ {
				ptrs := make([]uint32, 1<<w)
				// Few distinct values to exercise aggregation.
				vals := []uint32{1, 2, 3}
				run := 0
				var cur uint32
				for i := range ptrs {
					if run == 0 {
						cur = vals[rng.Intn(len(vals))]
						run = 1 + rng.Intn(len(ptrs))
					}
					ptrs[i] = cur
					run--
				}
				h, err := CompressHABS(ptrs, w, v)
				if err != nil {
					t.Fatalf("w=%d v=%d: %v", w, v, err)
				}
				if got := h.Decompress(); !reflect.DeepEqual(got, ptrs) {
					t.Fatalf("w=%d v=%d: decompress mismatch", w, v)
				}
				for n := range ptrs {
					if h.At(n) != ptrs[n] {
						t.Fatalf("w=%d v=%d: At(%d) = %d, want %d", w, v, n, h.At(n), ptrs[n])
					}
				}
			}
		}
	}
}

func TestHABSErrors(t *testing.T) {
	if _, err := CompressHABS(make([]uint32, 16), 5, 2); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := CompressHABS(make([]uint32, 4), 2, 3); err == nil {
		t.Error("v > w should fail")
	}
	if _, err := CompressHABS(make([]uint32, 1<<8), 8, 6); err == nil {
		t.Error("v > MaxV should fail")
	}
}

func TestHABSWordsSparse(t *testing.T) {
	// The motivating observation (§4.2.2): with 256 cuts the child count is
	// small, so the CPA is much smaller than the full array. With a single
	// child, exactly one sub-array is stored.
	h, err := CompressHABS(make([]uint32, 256), 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	if h.Words() != 16 {
		t.Errorf("Words = %d, want 16 (one 16-pointer sub-array)", h.Words())
	}
	if h.Bits != 1 {
		t.Errorf("Bits = %b, want 1", h.Bits)
	}
}

func TestRank(t *testing.T) {
	cases := []struct {
		bs   uint32
		m    uint
		want int
	}{
		{0b0011, 2, 2}, // paper example: bits 0..2 of 1100 (our order 0011)
		{0b0011, 0, 1},
		{0b0011, 3, 2},
		{0xFFFFFFFF, 31, 32},
		{0xFFFFFFFF, 0, 1},
		{0x80000000, 30, 0},
		{0x80000000, 31, 1},
		{0, 31, 0},
	}
	for _, c := range cases {
		if got := Rank(c.bs, c.m); got != c.want {
			t.Errorf("Rank(%#x, %d) = %d, want %d", c.bs, c.m, got, c.want)
		}
	}
}

func TestABSAtMatchesDecompressQuick(t *testing.T) {
	f := func(seed int64, nRuns uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + int(nRuns)
		ptrs := make([]uint32, n)
		for i := range ptrs {
			ptrs[i] = uint32(rng.Intn(4))
		}
		a := CompressABS(ptrs)
		for i := range ptrs {
			if a.At(i) != ptrs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestABSAtPanicsOutOfRange(t *testing.T) {
	a := CompressABS([]uint32{1, 2})
	for _, n := range []int{-1, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("At(%d) should panic", n)
				}
			}()
			a.At(n)
		}()
	}
}
