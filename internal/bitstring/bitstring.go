// Package bitstring implements the pointer-array compression schemes the
// paper builds on: the flat Aggregation Bit String (ABS) with a Compressed
// Pointer Array (CPA), and the paper's Hierarchical Aggregation Bit String
// (HABS), which compresses runs of identical *sub-arrays* of pointers so the
// bit string itself stays small enough to pack into a single 32-bit SRAM
// word next to the node descriptor.
//
// Terminology follows the paper (§4.2.2): a node has 2^w child pointers;
// the HABS has 2^v bits; each bit covers a sub-array of 2^u consecutive
// pointers, with u = w - v. Bit i of the HABS is set iff sub-array i differs
// from sub-array i-1 (bit 0 is always set); each set bit appends its
// sub-array to the CPA. Pointer n is recovered as:
//
//	m := n >> u                                 // sub-array index
//	j := n & (1<<u - 1)                         // offset within sub-array
//	i := popcount(HABS & ((2 << m) - 1)) - 1    // CPA sub-array index
//	ptr := CPA[i<<u+j]
//
// The popcount maps to the IXP2850 POP_COUNT instruction (3 cycles), which
// is what makes the decode affordable on the paper's hardware.
package bitstring

import (
	"fmt"
	"math/bits"
)

// ABS is a flat aggregation bit string over an array of pointers: bit k is
// set iff entry k differs from entry k-1 (bit 0 always set). Unique entries
// are stored in CPA in order of first appearance of each run.
type ABS struct {
	// Bits holds the aggregation bit string packed into 32-bit words,
	// least significant bit of word 0 first (matching SRAM word order).
	Bits []uint32
	// CPA holds one pointer per run of identical entries.
	CPA []uint32
	// N is the length of the original (uncompressed) pointer array.
	N int
}

// CompressABS builds the ABS/CPA encoding of ptrs.
func CompressABS(ptrs []uint32) ABS {
	a := ABS{
		Bits: make([]uint32, (len(ptrs)+31)/32),
		N:    len(ptrs),
	}
	for k, p := range ptrs {
		if k == 0 || p != ptrs[k-1] {
			a.Bits[k/32] |= 1 << (k % 32)
			a.CPA = append(a.CPA, p)
		}
	}
	return a
}

// At recovers entry n of the original pointer array: the rank (number of set
// bits at positions 0..n) indexes the CPA.
func (a ABS) At(n int) uint32 {
	if n < 0 || n >= a.N {
		panic(fmt.Sprintf("bitstring: ABS index %d out of range [0,%d)", n, a.N))
	}
	rank := 0
	word := n / 32
	for w := 0; w < word; w++ {
		rank += bits.OnesCount32(a.Bits[w])
	}
	// Positions 0..n within the final word: n%32+1 low bits.
	last := a.Bits[word] & lowMask(uint(n%32)+1)
	rank += bits.OnesCount32(last)
	return a.CPA[rank-1]
}

// Decompress expands the ABS back to the full pointer array.
func (a ABS) Decompress() []uint32 {
	out := make([]uint32, a.N)
	idx := -1
	for k := 0; k < a.N; k++ {
		if a.Bits[k/32]&(1<<(k%32)) != 0 {
			idx++
		}
		out[k] = a.CPA[idx]
	}
	return out
}

// Words returns the number of 32-bit SRAM words the encoding occupies
// (bit-string words plus CPA words).
func (a ABS) Words() int {
	return len(a.Bits) + len(a.CPA)
}

// HABS is the paper's hierarchical aggregation bit string: a 2^v-bit string
// over 2^(w-v)-pointer sub-arrays. The bit string fits in a uint32 (the
// paper uses 16 bits so it packs into the node word with the cut
// descriptor).
type HABS struct {
	// Bits is the hierarchical aggregation bit string (2^v significant
	// bits, bit 0 = first sub-array, always set).
	Bits uint32
	// CPA holds the unique sub-arrays concatenated: each set bit of Bits
	// contributes 2^u consecutive pointers.
	CPA []uint32
	// W and V are the configuration exponents: 2^W pointers total, 2^V
	// bits in the string. U = W - V.
	W, V uint
}

// MaxV is the largest supported HABS exponent: 2^5 = 32 bits still fits the
// uint32 Bits field. The paper uses V = 4 (16 bits).
const MaxV = 5

// CompressHABS builds the HABS encoding of ptrs, which must have length 2^w.
// v must satisfy v <= w and v <= MaxV.
func CompressHABS(ptrs []uint32, w, v uint) (HABS, error) {
	if v > w {
		return HABS{}, fmt.Errorf("bitstring: v=%d exceeds w=%d", v, w)
	}
	if v > MaxV {
		return HABS{}, fmt.Errorf("bitstring: v=%d exceeds MaxV=%d", v, MaxV)
	}
	if len(ptrs) != 1<<w {
		return HABS{}, fmt.Errorf("bitstring: %d pointers, want 2^%d=%d", len(ptrs), w, 1<<w)
	}
	h := HABS{W: w, V: v}
	u := w - v
	sub := 1 << u
	for i := 0; i < 1<<v; i++ {
		cur := ptrs[i*sub : (i+1)*sub]
		if i == 0 || !equalU32(cur, ptrs[(i-1)*sub:i*sub]) {
			h.Bits |= 1 << i
			h.CPA = append(h.CPA, cur...)
		}
	}
	return h, nil
}

// At recovers pointer n using the paper's 4-step decode. This is the exact
// arithmetic the serialized SRAM lookup performs.
func (h HABS) At(n int) uint32 {
	if n < 0 || n >= 1<<h.W {
		panic(fmt.Sprintf("bitstring: HABS index %d out of range [0,%d)", n, 1<<h.W))
	}
	u := h.W - h.V
	m := uint(n) >> u            // step 1: high v bits
	j := uint32(n) & lowMask(u)  // step 2: low u bits
	i := Rank(h.Bits, m) - 1     // step 3: prefix popcount
	return h.CPA[uint32(i)<<u+j] // step 4: CPA load
}

// Decompress expands the HABS back to the full 2^W pointer array.
func (h HABS) Decompress() []uint32 {
	u := h.W - h.V
	sub := 1 << u
	out := make([]uint32, 1<<h.W)
	idx := -1
	for m := 0; m < 1<<h.V; m++ {
		if h.Bits&(1<<m) != 0 {
			idx++
		}
		copy(out[m*sub:(m+1)*sub], h.CPA[idx*sub:(idx+1)*sub])
	}
	return out
}

// Words returns the number of 32-bit SRAM words the encoding occupies. The
// bit string itself shares the node descriptor word (the paper packs the
// 16-bit HABS with the cutting information in one long-word), so only the
// CPA counts.
func (h HABS) Words() int {
	return len(h.CPA)
}

// SubArrays returns the number of set bits, i.e. distinct consecutive
// sub-arrays stored in the CPA.
func (h HABS) SubArrays() int {
	return bits.OnesCount32(h.Bits)
}

// Rank counts the set bits of bs at positions 0..m inclusive. On the
// IXP2850 this is an AND to mask off the undesired high bits followed by
// POP_COUNT (§5.4 of the paper).
func Rank(bs uint32, m uint) int {
	return bits.OnesCount32(bs & prefixMask(m))
}

// prefixMask returns a mask of bits 0..m inclusive.
func prefixMask(m uint) uint32 {
	if m >= 31 {
		return ^uint32(0)
	}
	return (uint32(2) << m) - 1
}

func lowMask(n uint) uint32 {
	if n >= 32 {
		return ^uint32(0)
	}
	return (uint32(1) << n) - 1
}

func equalU32(a, b []uint32) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
