package pcapio

import (
	"bytes"
	"context"
	"encoding/binary"
	"io"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/expcuts"
	"repro/internal/pktgen"
	"repro/internal/rulegen"
	"repro/internal/rules"
	"repro/internal/wire"
)

// PcapSource must keep satisfying the engine's pull contract without
// this package importing it outside tests.
var _ engine.Source = (*PcapSource)(nil)

func TestSegmentAppendAndPacket(t *testing.T) {
	var s Segment
	pkts := [][]byte{{1, 2, 3}, {}, {4}, bytes.Repeat([]byte{9}, 300)}
	for round := 0; round < 3; round++ {
		s.Reset()
		for _, p := range pkts {
			s.Append(p)
		}
		if s.Count() != len(pkts) {
			t.Fatalf("count %d, want %d", s.Count(), len(pkts))
		}
		for i, p := range pkts {
			if !bytes.Equal(s.Packet(i), p) {
				t.Fatalf("round %d packet %d: %v != %v", round, i, s.Packet(i), p)
			}
		}
	}
}

func TestSegmentGrowCommit(t *testing.T) {
	var s Segment
	buf := s.Grow(10)
	copy(buf, "hello")
	s.Commit(5)
	s.Append([]byte("x"))
	buf = s.Grow(4)
	copy(buf, "hiya")
	s.Commit(4)
	want := []string{"hello", "x", "hiya"}
	for i, w := range want {
		if string(s.Packet(i)) != w {
			t.Fatalf("packet %d = %q, want %q", i, s.Packet(i), w)
		}
	}
	if s.Bytes() != 10 {
		t.Fatalf("bytes = %d, want 10", s.Bytes())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("overcommit did not panic")
		}
	}()
	s.Grow(2)
	s.Commit(3)
}

func TestZeroAllocSegmentAssembly(t *testing.T) {
	var s Segment
	pkt := bytes.Repeat([]byte{0xAB}, wire.FrameSize)
	// Warm the arena to the batch footprint, then every further batch
	// must assemble without touching the heap.
	for i := 0; i < 64; i++ {
		s.Append(pkt)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		s.Reset()
		for i := 0; i < 64; i++ {
			s.Append(pkt)
			buf := s.Grow(len(pkt))
			copy(buf, pkt)
			s.Commit(len(pkt))
		}
	}); allocs != 0 {
		t.Fatalf("warmed segment assembly allocates %v per batch; must be 0", allocs)
	}
}

func traceHeaders(t *testing.T, n int) []rules.Header {
	t.Helper()
	rs, err := rulegen.Generate(rulegen.Config{Kind: rulegen.CoreRouter, Size: 100, Seed: 1001})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := pktgen.Generate(rs, pktgen.Config{Count: n, Seed: 1002, MatchFraction: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	return tr.Headers
}

// onWire is what a header looks like after a BuildFrame/ParseFrame trip:
// protocols other than TCP and UDP carry no transport ports on the wire,
// so they come back with zero ports by design.
func onWire(h rules.Header) rules.Header {
	if h.Proto != rules.ProtoTCP && h.Proto != rules.ProtoUDP {
		h.SrcPort, h.DstPort = 0, 0
	}
	return h
}

func writeCapture(t *testing.T, headers []rules.Header) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i, h := range headers {
		if err := w.WritePacket(uint64(i)*1000, wire.BuildFrame(h)); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

func TestPcapRoundTrip(t *testing.T) {
	headers := traceHeaders(t, 500)
	capture := writeCapture(t, headers)
	r, err := NewReader(bytes.NewReader(capture))
	if err != nil {
		t.Fatal(err)
	}
	var seg Segment
	for i, h := range headers {
		ts, err := r.Next(&seg)
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if ts != uint64(i)*1000 {
			t.Fatalf("record %d: timestamp %d, want %d", i, ts, i*1000)
		}
		got, err := wire.ParseFrame(seg.Packet(i))
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if got != onWire(h) {
			t.Fatalf("record %d: header %+v, want %+v", i, got, onWire(h))
		}
	}
	if _, err := r.Next(&seg); err != io.EOF {
		t.Fatalf("after last record: %v, want io.EOF", err)
	}
}

// bigEndianNanosCapture hand-builds a capture in the byte order and
// timestamp flavor our writer never emits, so the reader's magic
// detection is tested against a foreign file, not our own output.
func bigEndianNanosCapture(frame []byte) []byte {
	var buf bytes.Buffer
	var hdr [pcapFileHeaderLen]byte
	binary.BigEndian.PutUint32(hdr[0:4], magicNsec)
	binary.BigEndian.PutUint16(hdr[4:6], 2)
	binary.BigEndian.PutUint16(hdr[6:8], 4)
	binary.BigEndian.PutUint32(hdr[16:20], 65535)
	binary.BigEndian.PutUint32(hdr[20:24], LinkTypeEthernet)
	buf.Write(hdr[:])
	var rec [pcapRecordHeaderLen]byte
	binary.BigEndian.PutUint32(rec[0:4], 7)          // 7s
	binary.BigEndian.PutUint32(rec[4:8], 123456789)  // +123456789ns
	binary.BigEndian.PutUint32(rec[8:12], uint32(len(frame)))
	binary.BigEndian.PutUint32(rec[12:16], uint32(len(frame)))
	buf.Write(rec[:])
	buf.Write(frame)
	return buf.Bytes()
}

func TestPcapForeignEndiannessAndNanos(t *testing.T) {
	h := rules.Header{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4, Proto: rules.ProtoTCP}
	r, err := NewReader(bytes.NewReader(bigEndianNanosCapture(wire.BuildFrame(h))))
	if err != nil {
		t.Fatal(err)
	}
	var seg Segment
	ts, err := r.Next(&seg)
	if err != nil {
		t.Fatal(err)
	}
	if want := uint64(7*1e9 + 123456789); ts != want {
		t.Fatalf("timestamp %d, want %d", ts, want)
	}
	got, err := wire.ParseFrame(seg.Packet(0))
	if err != nil || got != h {
		t.Fatalf("header %+v (err %v), want %+v", got, err, h)
	}
}

func TestPcapRejectsGarbage(t *testing.T) {
	cases := map[string][]byte{
		"empty":     {},
		"short":     make([]byte, 10),
		"bad-magic": make([]byte, pcapFileHeaderLen),
	}
	for name, data := range cases {
		if _, err := NewReader(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: opened a non-pcap input", name)
		}
	}
	// Wrong link type: valid header, raw-IP capture.
	var hdr [pcapFileHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], magicUsec)
	binary.LittleEndian.PutUint32(hdr[20:24], 101) // LINKTYPE_RAW
	if _, err := NewReader(bytes.NewReader(hdr[:])); err == nil || !strings.Contains(err.Error(), "link type") {
		t.Errorf("raw-IP capture: err = %v, want link type rejection", err)
	}
}

func TestPcapTruncatedRecord(t *testing.T) {
	headers := traceHeaders(t, 3)
	capture := writeCapture(t, headers)
	for _, cut := range []int{ // inside the last record's header, then body
		len(capture) - wire.FrameSize - 4,
		len(capture) - 4,
	} {
		r, err := NewReader(bytes.NewReader(capture[:cut]))
		if err != nil {
			t.Fatal(err)
		}
		var seg Segment
		var lastErr error
		for {
			if _, lastErr = r.Next(&seg); lastErr != nil {
				break
			}
		}
		if lastErr == io.EOF {
			t.Errorf("cut at %d: truncated capture read as clean EOF", cut)
		}
	}
}

func TestPcapHostileCaptureLength(t *testing.T) {
	var buf bytes.Buffer
	if _, err := NewWriter(&buf); err != nil {
		t.Fatal(err)
	}
	capture := buf.Bytes()
	var rec [pcapRecordHeaderLen]byte
	binary.LittleEndian.PutUint32(rec[8:12], MaxSnapLen+1)
	capture = append(capture, rec[:]...)
	r, err := NewReader(bytes.NewReader(capture))
	if err != nil {
		t.Fatal(err)
	}
	var seg Segment
	if _, err := r.Next(&seg); err == nil || err == io.EOF {
		t.Fatalf("hostile capture length read without error (err %v)", err)
	}
}

func TestRequestReplyCodec(t *testing.T) {
	h := rules.Header{SrcIP: 0x0A000001, DstIP: 0xC0A80001, SrcPort: 4242, DstPort: 80, Proto: rules.ProtoUDP}
	frame := wire.BuildFrame(h)
	req := AppendRequest(nil, 0xDEADBEEFCAFE, frame)
	if len(req) != ReqHeaderLen+len(frame) {
		t.Fatalf("request length %d", len(req))
	}
	token, gotFrame, err := ParseRequest(req)
	if err != nil || token != 0xDEADBEEFCAFE || !bytes.Equal(gotFrame, frame) {
		t.Fatalf("request round trip: token %#x err %v", token, err)
	}
	if _, _, err := ParseRequest(req[:ReqHeaderLen-1]); err == nil {
		t.Error("short request accepted")
	}
	if _, _, err := ParseRequest(make([]byte, MaxRequestLen+1)); err == nil {
		t.Error("oversized request accepted")
	}

	var buf [ReplyLen]byte
	reply := PutReply(buf[:], 77, VerdictShed)
	token, verdict, err := ParseReply(reply)
	if err != nil || token != 77 || verdict != VerdictShed {
		t.Fatalf("reply round trip: token %d verdict %d err %v", token, verdict, err)
	}
	for _, v := range []int32{0, 12345, VerdictNoMatch, VerdictDecodeError} {
		_, verdict, err := ParseReply(PutReply(buf[:], 1, v))
		if err != nil || verdict != v {
			t.Fatalf("verdict %d round-tripped to %d (err %v)", v, verdict, err)
		}
	}
	if _, _, err := ParseReply(reply[:ReplyLen-1]); err == nil {
		t.Error("short reply accepted")
	}
}

func TestZeroAllocRequestReplyCodec(t *testing.T) {
	frame := wire.BuildFrame(rules.Header{SrcIP: 1, DstIP: 2, Proto: rules.ProtoTCP})
	reqBuf := make([]byte, 0, MaxRequestLen)
	var replyBuf [ReplyLen]byte
	if allocs := testing.AllocsPerRun(1000, func() {
		req := AppendRequest(reqBuf[:0], 42, frame)
		token, f, err := ParseRequest(req)
		if err != nil {
			t.Fatal(err)
		}
		reply := PutReply(replyBuf[:], token, int32(len(f)))
		if _, _, err := ParseReply(reply); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Fatalf("codec allocates %v per datagram; must be 0", allocs)
	}
}

func TestPcapSourceReplay(t *testing.T) {
	headers := traceHeaders(t, 1000)
	src, err := NewPcapSource(bytes.NewReader(writeCapture(t, headers)))
	if err != nil {
		t.Fatal(err)
	}
	var got []rules.Header
	hs := make([]rules.Header, 64)
	for {
		n, ok := src.Next(hs)
		got = append(got, hs[:n]...)
		if !ok {
			break
		}
	}
	if src.Err() != nil {
		t.Fatal(src.Err())
	}
	if len(got) != len(headers) {
		t.Fatalf("replayed %d of %d headers", len(got), len(headers))
	}
	for i := range headers {
		if got[i] != onWire(headers[i]) {
			t.Fatalf("header %d: %+v, want %+v", i, got[i], onWire(headers[i]))
		}
	}
	if src.Records != uint64(len(headers)) || src.DecodeErrors != 0 {
		t.Fatalf("records %d decode errors %d", src.Records, src.DecodeErrors)
	}
}

func TestPcapSourceSkipsUndecodableRecords(t *testing.T) {
	headers := traceHeaders(t, 100)
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i, h := range headers {
		frame := wire.BuildFrame(h)
		if i%10 == 3 {
			frame[ethHeaderOff()+10] ^= 0xFF // corrupt the IPv4 checksum
		}
		if err := w.WritePacket(0, frame); err != nil {
			t.Fatal(err)
		}
	}
	src, err := NewPcapSource(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	hs := make([]rules.Header, 64)
	for {
		n, ok := src.Next(hs)
		total += n
		if !ok {
			break
		}
	}
	if src.DecodeErrors != 10 {
		t.Fatalf("decode errors %d, want 10", src.DecodeErrors)
	}
	if total != 90 || src.Records != 100 {
		t.Fatalf("decoded %d of %d records", total, src.Records)
	}
}

// ethHeaderOff keeps the corrupt-byte offset readable: the checksum
// byte sits 10 bytes into the IPv4 header, itself 14 bytes in.
func ethHeaderOff() int { return 14 }

func TestZeroAllocPcapSourceNext(t *testing.T) {
	headers := traceHeaders(t, 20000)
	src, err := NewPcapSource(bytes.NewReader(writeCapture(t, headers)))
	if err != nil {
		t.Fatal(err)
	}
	hs := make([]rules.Header, 64)
	// Warm the segment arena on the first batch.
	if n, ok := src.Next(hs); n != 64 || !ok {
		t.Fatalf("warmup pull: %d, %v", n, ok)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		if n, _ := src.Next(hs); n == 0 {
			t.Fatal("capture exhausted during the measurement window")
		}
	}); allocs != 0 {
		t.Fatalf("warmed replay pull allocates %v per batch; the decode path must be 0-alloc", allocs)
	}
}

func TestPcapSourceDrivesEngine(t *testing.T) {
	rs, err := rulegen.Generate(rulegen.Config{Kind: rulegen.CoreRouter, Size: 100, Seed: 1001})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := pktgen.Generate(rs, pktgen.Config{Count: 5000, Seed: 1002, MatchFraction: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	tree, err := expcuts.New(rs, expcuts.Config{})
	if err != nil {
		t.Fatal(err)
	}
	src, err := NewPcapSource(bytes.NewReader(writeCapture(t, tr.Headers)))
	if err != nil {
		t.Fatal(err)
	}
	var next uint64
	st, err := engine.RunStream(context.Background(), tree, engine.Config{Shards: 4, PreserveOrder: true}, src,
		func(r engine.Result) {
			if r.Seq != next {
				t.Fatalf("out of order: %d after %d", r.Seq, next-1)
			}
			next++
			if r.Header != onWire(tr.Headers[r.Seq]) {
				t.Fatalf("packet %d: header %+v, want %+v", r.Seq, r.Header, tr.Headers[r.Seq])
			}
			if want := rs.Match(r.Header); r.Match != want {
				t.Fatalf("packet %d: match %d, oracle %d", r.Seq, r.Match, want)
			}
		})
	if err != nil {
		t.Fatal(err)
	}
	if st.Packets != len(tr.Headers) {
		t.Fatalf("classified %d of %d replayed packets", st.Packets, len(tr.Headers))
	}
}
