// Package pcapio is the packet I/O layer under the classification
// engine: segment-style contiguous packet buffers, a native classic
// libpcap reader/writer (no cgo, no libpcap), the UDP request/reply
// codec the serve/load-gen pair speaks, and a pcap-backed engine
// Source. It turns byte streams — capture files and datagrams — into
// the decoded header batches internal/engine consumes, allocation-free
// on the steady path.
package pcapio

// Segment batches packets in one contiguous byte arena with an offsets
// index — NuevoMatch's receive-side segment layout, and the software
// analogue of the paper's receive-microengine staging buffers: one DMA
// region per batch, not one heap object per packet. Packet i occupies
// data[offsets[i]:offsets[i+1]]; assembling or walking a batch touches
// two slices that both survive Reset, so a warmed Segment assembles
// every subsequent batch with zero allocations.
type Segment struct {
	offsets []int
	data    []byte

	// growing is the in-flight Grow reservation size, -1 when none.
	growing int
}

// Reset empties the segment, keeping its capacity for the next batch.
func (s *Segment) Reset() {
	s.offsets = s.offsets[:0]
	s.data = s.data[:0]
	s.growing = 0
}

// Count returns how many packets the segment holds.
func (s *Segment) Count() int { return len(s.offsets) }

// Bytes returns the total payload bytes across all held packets.
func (s *Segment) Bytes() int { return len(s.data) }

// Packet returns packet i's bytes, aliasing the arena: valid until the
// next Reset, and never to be retained past it.
func (s *Segment) Packet(i int) []byte {
	start := 0
	if i > 0 {
		start = s.offsets[i-1]
	}
	return s.data[start:s.offsets[i]]
}

// Append copies one packet into the arena.
func (s *Segment) Append(pkt []byte) {
	s.data = append(s.data, pkt...)
	s.offsets = append(s.offsets, len(s.data))
}

// Grow reserves max bytes of arena for a packet about to be read in
// place (a recvfrom or a record body read) and returns the scratch to
// read into. The reservation is not a packet until Commit; calling Grow
// again, or Reset, abandons it. The returned slice aliases the arena
// and is invalidated by any other Segment call.
func (s *Segment) Grow(max int) []byte {
	need := len(s.data) + max
	if cap(s.data) < need {
		grown := make([]byte, len(s.data), need)
		copy(grown, s.data)
		s.data = grown
	}
	s.growing = max
	return s.data[len(s.data):need]
}

// Commit finalizes the packet read into the last Grow scratch as n
// bytes long. n must not exceed the Grow reservation.
func (s *Segment) Commit(n int) {
	if n > s.growing {
		panic("pcapio: Commit larger than the Grow reservation")
	}
	s.growing = 0
	s.data = s.data[:len(s.data)+n]
	s.offsets = append(s.offsets, len(s.data))
}
