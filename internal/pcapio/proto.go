package pcapio

import (
	"encoding/binary"
	"fmt"
)

// The UDP wire protocol the serve/load-gen pair speaks, after the l-NIC
// classifier-server split: a request datagram is an 8-byte big-endian
// token followed by a raw Ethernet frame; the reply echoes the token
// with a 4-byte big-endian verdict. The token is opaque to the server —
// the load generator uses the packet index, so one reply simultaneously
// carries the round-trip latency (indexing a send-timestamp array) and
// the classification to check against the oracle.
const (
	// ReqHeaderLen is the token prefix on every request datagram.
	ReqHeaderLen = 8
	// ReplyLen is the exact size of every reply datagram.
	ReplyLen = 12

	// MaxFrameLen bounds the frame a request may carry; with the token
	// prefix it sizes receive buffers.
	MaxFrameLen = 2048
	// MaxRequestLen is the largest well-formed request datagram.
	MaxRequestLen = ReqHeaderLen + MaxFrameLen
)

// Verdicts below zero are statuses; zero and above are matched rule
// indices.
const (
	// VerdictNoMatch reports a well-formed packet no rule matched.
	VerdictNoMatch int32 = -1
	// VerdictDecodeError reports a frame the wire decoder rejected.
	VerdictDecodeError int32 = -2
	// VerdictShed reports a packet dropped under overload before
	// classification.
	VerdictShed int32 = -3
)

// AppendRequest appends a request datagram for frame under token to buf
// and returns the extended slice.
func AppendRequest(buf []byte, token uint64, frame []byte) []byte {
	buf = binary.BigEndian.AppendUint64(buf, token)
	return append(buf, frame...)
}

// ParseRequest splits a request datagram into its token and frame. The
// frame aliases b.
func ParseRequest(b []byte) (token uint64, frame []byte, err error) {
	if len(b) < ReqHeaderLen {
		return 0, nil, fmt.Errorf("pcapio: request of %d bytes is shorter than its %d-byte token", len(b), ReqHeaderLen)
	}
	if len(b) > MaxRequestLen {
		return 0, nil, fmt.Errorf("pcapio: request of %d bytes exceeds the %d-byte maximum", len(b), MaxRequestLen)
	}
	return binary.BigEndian.Uint64(b[:ReqHeaderLen]), b[ReqHeaderLen:], nil
}

// PutReply serializes a reply into buf, which must be at least ReplyLen
// bytes, and returns the ReplyLen-byte datagram.
func PutReply(buf []byte, token uint64, verdict int32) []byte {
	binary.BigEndian.PutUint64(buf[0:8], token)
	binary.BigEndian.PutUint32(buf[8:12], uint32(verdict))
	return buf[:ReplyLen]
}

// ParseReply decodes a reply datagram.
func ParseReply(b []byte) (token uint64, verdict int32, err error) {
	if len(b) != ReplyLen {
		return 0, 0, fmt.Errorf("pcapio: reply of %d bytes, want %d", len(b), ReplyLen)
	}
	return binary.BigEndian.Uint64(b[0:8]), int32(binary.BigEndian.Uint32(b[8:12])), nil
}
