package pcapio

import (
	"io"

	"repro/internal/rules"
	"repro/internal/wire"
)

// PcapSource replays a capture file through the classification engine:
// it satisfies engine.Source structurally (this package does not import
// engine) by batch-reading records into a private Segment arena and
// then decoding the whole segment with wire.ParseFrame — assemble one
// contiguous batch, decode it in place, hand the engine bare headers.
// Undecodable records are counted and skipped, never fatal: a replayed
// capture is input, not ground truth. The steady path is
// allocation-free once the arena has warmed to the batch footprint.
type PcapSource struct {
	r   *Reader
	seg Segment

	// Records counts every record read; DecodeErrors the subset the wire
	// decoder rejected. Their difference is exactly the packets handed to
	// the engine.
	Records      uint64
	DecodeErrors uint64

	err  error
	done bool
}

// NewPcapSource opens a capture stream for replay.
func NewPcapSource(r io.Reader) (*PcapSource, error) {
	pr, err := NewReader(r)
	if err != nil {
		return nil, err
	}
	return &PcapSource{r: pr}, nil
}

// Next assembles up to len(hs) records into the segment and decodes
// them into hs. It fills fully until the capture's tail (modulo skipped
// undecodable records), so engine batches stay full.
func (s *PcapSource) Next(hs []rules.Header) (int, bool) {
	s.seg.Reset()
	for s.seg.Count() < len(hs) && !s.done {
		if _, err := s.r.Next(&s.seg); err != nil {
			s.done = true
			if err != io.EOF {
				s.err = err
			}
		}
	}
	n := 0
	for i := 0; i < s.seg.Count(); i++ {
		s.Records++
		h, err := wire.ParseFrame(s.seg.Packet(i))
		if err != nil {
			s.DecodeErrors++
			continue
		}
		hs[n] = h
		n++
	}
	return n, !s.done
}

// Err reports a mid-file read failure (truncated record, oversized
// capture length); nil after a clean end of file.
func (s *PcapSource) Err() error { return s.err }
