package pcapio

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Classic libpcap capture format, implemented natively: a 24-byte global
// header then a stream of 16-byte-headed records. Both byte orders and
// both timestamp magics are read; writing emits the little-endian
// microsecond flavor every tool accepts. No cgo, no libpcap — the
// format is four integers and discipline.
const (
	magicUsec = 0xa1b2c3d4 // host-order magic, microsecond timestamps
	magicNsec = 0xa1b23c4d // host-order magic, nanosecond timestamps

	pcapFileHeaderLen   = 24
	pcapRecordHeaderLen = 16

	// LinkTypeEthernet is the only link type the decode path understands.
	LinkTypeEthernet = 1

	// MaxSnapLen bounds per-record capture lengths; a record claiming
	// more is a corrupt or hostile file, not a jumbo frame.
	MaxSnapLen = 256 * 1024
)

// Reader streams records out of a classic pcap file.
type Reader struct {
	r     io.Reader
	order binary.ByteOrder
	nanos bool

	linkType uint32
	snapLen  uint32
	hdr      [pcapRecordHeaderLen]byte
	nrec     int
}

// NewReader parses the global header and positions the reader at the
// first record. Only LinkTypeEthernet files are accepted — the decode
// path reads Ethernet II framing, and silently misparsing a raw-IP or
// Linux-SLL capture would be worse than refusing it.
func NewReader(r io.Reader) (*Reader, error) {
	var hdr [pcapFileHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("pcapio: reading pcap file header: %w", err)
	}
	pr := &Reader{r: r}
	switch magic := binary.LittleEndian.Uint32(hdr[0:4]); magic {
	case magicUsec:
		pr.order = binary.LittleEndian
	case magicNsec:
		pr.order, pr.nanos = binary.LittleEndian, true
	default:
		switch magic := binary.BigEndian.Uint32(hdr[0:4]); magic {
		case magicUsec:
			pr.order = binary.BigEndian
		case magicNsec:
			pr.order, pr.nanos = binary.BigEndian, true
		default:
			return nil, fmt.Errorf("pcapio: %#08x is not a pcap magic", magic)
		}
	}
	pr.snapLen = pr.order.Uint32(hdr[16:20])
	pr.linkType = pr.order.Uint32(hdr[20:24])
	if pr.linkType != LinkTypeEthernet {
		return nil, fmt.Errorf("pcapio: link type %d unsupported (want %d, Ethernet)", pr.linkType, LinkTypeEthernet)
	}
	return pr, nil
}

// LinkType returns the capture's link type (always LinkTypeEthernet for
// a successfully opened reader).
func (r *Reader) LinkType() uint32 { return r.linkType }

// Next reads one record's captured bytes into seg (one Grow/Commit
// packet) and returns its timestamp in nanoseconds. io.EOF signals a
// clean end of file; a file ending inside a record is reported as
// io.ErrUnexpectedEOF.
func (r *Reader) Next(seg *Segment) (tsNanos uint64, err error) {
	if _, err := io.ReadFull(r.r, r.hdr[:]); err != nil {
		if err == io.EOF {
			return 0, io.EOF
		}
		return 0, fmt.Errorf("pcapio: record %d header: %w", r.nrec, io.ErrUnexpectedEOF)
	}
	sec := uint64(r.order.Uint32(r.hdr[0:4]))
	frac := uint64(r.order.Uint32(r.hdr[4:8]))
	if r.nanos {
		tsNanos = sec*1e9 + frac
	} else {
		tsNanos = sec*1e9 + frac*1e3
	}
	capLen := r.order.Uint32(r.hdr[8:12])
	if capLen > MaxSnapLen {
		return 0, fmt.Errorf("pcapio: record %d capture length %d exceeds %d", r.nrec, capLen, MaxSnapLen)
	}
	buf := seg.Grow(int(capLen))
	if _, err := io.ReadFull(r.r, buf); err != nil {
		return 0, fmt.Errorf("pcapio: record %d body: %w", r.nrec, io.ErrUnexpectedEOF)
	}
	seg.Commit(int(capLen))
	r.nrec++
	return tsNanos, nil
}

// Writer emits a classic little-endian microsecond pcap file.
type Writer struct {
	w   io.Writer
	hdr [pcapRecordHeaderLen]byte
}

// NewWriter writes the global header (Ethernet link type, 64KiB
// snaplen) and returns a record writer.
func NewWriter(w io.Writer) (*Writer, error) {
	var hdr [pcapFileHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], magicUsec)
	binary.LittleEndian.PutUint16(hdr[4:6], 2)  // version 2.4
	binary.LittleEndian.PutUint16(hdr[6:8], 4)
	binary.LittleEndian.PutUint32(hdr[16:20], 65535)
	binary.LittleEndian.PutUint32(hdr[20:24], LinkTypeEthernet)
	if _, err := w.Write(hdr[:]); err != nil {
		return nil, fmt.Errorf("pcapio: writing pcap file header: %w", err)
	}
	return &Writer{w: w}, nil
}

// WritePacket appends one fully captured frame stamped tsNanos
// nanoseconds since the epoch.
func (w *Writer) WritePacket(tsNanos uint64, frame []byte) error {
	binary.LittleEndian.PutUint32(w.hdr[0:4], uint32(tsNanos/1e9))
	binary.LittleEndian.PutUint32(w.hdr[4:8], uint32(tsNanos%1e9/1e3))
	binary.LittleEndian.PutUint32(w.hdr[8:12], uint32(len(frame)))
	binary.LittleEndian.PutUint32(w.hdr[12:16], uint32(len(frame)))
	if _, err := w.w.Write(w.hdr[:]); err != nil {
		return fmt.Errorf("pcapio: writing record header: %w", err)
	}
	if _, err := w.w.Write(frame); err != nil {
		return fmt.Errorf("pcapio: writing record body: %w", err)
	}
	return nil
}
