// Package pipeline models the paper's *complete* packet-processing
// application (§5, Figure 5): Ethernet receive, packet classification,
// scheduling, and CSIX transmit, mapped onto the IXP2850's sixteen
// microengines (Table 3). The classification stage is the part under test;
// the rest of the application shows up as (a) the microengine budget
// available to classification and (b) the SRAM bandwidth headroom left per
// channel (Table 4), which this package feeds into the NP simulator.
//
// It also implements the two task-partitioning strategies of Table 2:
//
//   - Multiprocessing: every classification ME runs the whole lookup;
//     adding MEs adds threads. This is the mapping the paper uses for its
//     headline numbers.
//   - Context pipelining: the lookup's access program is split into stages,
//     each owned by one ME, with per-packet state passed through scratch
//     rings. Stage imbalance and ring overhead make this mapping slower for
//     classification, which is the paper's argument for multiprocessing.
package pipeline

import (
	"fmt"

	"repro/internal/memlayout"
	"repro/internal/npsim"
	"repro/internal/nptrace"
)

// MERole names a stage of the application.
type MERole string

// Application stages (Figure 5).
const (
	RoleReceive  MERole = "Receive"
	RoleProcess  MERole = "Processing"
	RoleSchedule MERole = "Scheduling"
	RoleTransmit MERole = "Transmit"
)

// MEAllocation is one row of Table 3: how many of the sixteen microengines
// each stage owns.
type MEAllocation struct {
	Role MERole
	MEs  int
}

// AppConfig describes the application mapping.
type AppConfig struct {
	// ClassifyMEs is the number of processing MEs running classification
	// (the paper sweeps 1..9).
	ClassifyMEs int
	// ThreadsPerME is 8 on the IXP2850.
	ThreadsPerME int
	// ReservedThreads are processing threads not used for classification
	// (the paper reserves one for exception packets).
	ReservedThreads int
	// Headroom is the per-channel SRAM bandwidth left over by the
	// non-classification stages (Table 4).
	Headroom memlayout.Headroom
	// NP is the underlying machine model; its Threads and SRAM.Headroom
	// fields are overwritten from the fields above.
	NP npsim.Config
}

// DefaultAppConfig is the paper's full configuration: 9 classification MEs
// × 8 threads − 1 reserved = 71 threads, Table 4 headroom.
func DefaultAppConfig() AppConfig {
	return AppConfig{
		ClassifyMEs:     9,
		ThreadsPerME:    8,
		ReservedThreads: 1,
		Headroom:        memlayout.PaperHeadroom,
		NP:              npsim.DefaultConfig(),
	}
}

// Allocation returns the Table 3 row set for this configuration.
func (c AppConfig) Allocation() []MEAllocation {
	return []MEAllocation{
		{RoleReceive, 2},
		{RoleProcess, c.ClassifyMEs},
		{RoleSchedule, 3},
		{RoleTransmit, 2},
	}
}

// Threads returns the classification thread count (Figure 7's x-axis).
func (c AppConfig) Threads() int {
	return c.ClassifyMEs*c.ThreadsPerME - c.ReservedThreads
}

func (c *AppConfig) fillDefaults() error {
	d := DefaultAppConfig()
	if c.ClassifyMEs == 0 {
		c.ClassifyMEs = d.ClassifyMEs
	}
	if c.ThreadsPerME == 0 {
		c.ThreadsPerME = d.ThreadsPerME
	}
	if c.Headroom == (memlayout.Headroom{}) {
		c.Headroom = d.Headroom
	}
	if c.ClassifyMEs < 1 || c.ClassifyMEs > 9 {
		return fmt.Errorf("pipeline: classify MEs %d out of [1,9] (Table 3 leaves 9 processing MEs)", c.ClassifyMEs)
	}
	if c.Threads() < 1 {
		return fmt.Errorf("pipeline: no classification threads left after reservation")
	}
	return nil
}

// MaxProgramSteps bounds a single access program. A healthy serialized
// classifier issues at most a few hundred SRAM commands per lookup
// (ExpCuts' whole point is a fixed small bound); a program beyond this is
// the product of a corrupted image or a degenerate build that escaped its
// budget, and simulating it would burn unbounded simulator time. The
// bound mirrors buildgov's philosophy: refuse absurd resource consumption
// up front with a typed error instead of discovering it by hanging.
const MaxProgramSteps = 1 << 16

// ValidatePrograms rejects access programs the simulator cannot safely
// run: a step targeting a channel the machine does not have would
// otherwise surface as an index panic deep inside the discrete-event
// core, and a program longer than MaxProgramSteps would stall the
// simulation itself. Both Run entry points call this before simulating.
func ValidatePrograms(programs []nptrace.Program) error {
	for i := range programs {
		if n := len(programs[i].Steps); n > MaxProgramSteps {
			return fmt.Errorf("pipeline: program %d has %d steps (cap %d); refusing to simulate a degenerate access program",
				i, n, MaxProgramSteps)
		}
		for j, s := range programs[i].Steps {
			if int(s.Channel) >= memlayout.NumChannels {
				return fmt.Errorf("pipeline: program %d step %d targets SRAM channel %d (machine has %d)",
					i, j, s.Channel, memlayout.NumChannels)
			}
		}
	}
	return nil
}

// runSim runs the simulator with panic isolation: a corrupted program or
// a simulator bug becomes an error return, not a crashed caller.
func runSim(np npsim.Config, programs []nptrace.Program, packets int) (r npsim.Result, err error) {
	defer func() {
		if p := recover(); p != nil {
			r, err = npsim.Result{}, fmt.Errorf("pipeline: simulator panicked: %v", p)
		}
	}()
	return npsim.Run(np, programs, packets)
}

// RunMultiprocessing simulates the application with the multiprocessing
// mapping: every classification thread executes whole access programs.
func RunMultiprocessing(cfg AppConfig, programs []nptrace.Program, packets int) (npsim.Result, error) {
	if err := cfg.fillDefaults(); err != nil {
		return npsim.Result{}, err
	}
	if err := ValidatePrograms(programs); err != nil {
		return npsim.Result{}, err
	}
	np := cfg.NP
	np.Threads = cfg.Threads()
	np.ThreadsPerME = cfg.ThreadsPerME
	np.SRAM.Headroom = cfg.Headroom
	return runSim(np, programs, packets)
}

// ringOverheadCycles is the per-hop cost of passing packet state between
// pipeline stages through an on-chip scratch ring (put on one side, get on
// the other, plus re-loading per-packet state into local memory).
const ringOverheadCycles = 40

// PipelineResult reports a context-pipelining simulation.
type PipelineResult struct {
	// ThroughputMbps is the pipeline throughput: the slowest stage.
	ThroughputMbps float64
	// BottleneckStage is the index of the slowest stage.
	BottleneckStage int
	// Stages holds each stage's standalone result.
	Stages []npsim.Result
}

// RunContextPipelining simulates the context-pipelining mapping: the access
// program is cut into ClassifyMEs contiguous stages, stage i owning the
// i-th slice of every packet's accesses plus the ring hand-off overhead.
// The pipeline runs at the speed of its slowest stage (Table 2's
// disadvantage: "per-packet state has to be passed from one ME to the
// other").
func RunContextPipelining(cfg AppConfig, programs []nptrace.Program, packets int) (PipelineResult, error) {
	if err := cfg.fillDefaults(); err != nil {
		return PipelineResult{}, err
	}
	if err := ValidatePrograms(programs); err != nil {
		return PipelineResult{}, err
	}
	stages := cfg.ClassifyMEs
	out := PipelineResult{Stages: make([]npsim.Result, stages)}
	best := -1.0
	for s := 0; s < stages; s++ {
		stagePrograms := make([]nptrace.Program, len(programs))
		for i := range programs {
			stagePrograms[i] = stageSlice(&programs[i], s, stages)
		}
		np := cfg.NP
		np.Threads = cfg.ThreadsPerME // one ME per stage
		np.ThreadsPerME = cfg.ThreadsPerME
		np.SRAM.Headroom = cfg.Headroom
		r, err := runSim(np, stagePrograms, packets)
		if err != nil {
			return PipelineResult{}, err
		}
		out.Stages[s] = r
		if best < 0 || r.OfferedMbps < best {
			best = r.OfferedMbps
			out.BottleneckStage = s
		}
	}
	out.ThroughputMbps = best
	if out.ThroughputMbps > cfg.NP.MaxIngressMbps && cfg.NP.MaxIngressMbps > 0 {
		out.ThroughputMbps = cfg.NP.MaxIngressMbps
	}
	return out, nil
}

// stageSlice extracts stage s of the program: its share of the access
// steps, bracketed by ring-get and ring-put overhead (the first stage has
// no get; the last has no put toward another classification ME).
func stageSlice(p *nptrace.Program, s, stages int) nptrace.Program {
	n := len(p.Steps)
	lo := n * s / stages
	hi := n * (s + 1) / stages
	out := nptrace.Program{
		Steps:  append([]nptrace.Step(nil), p.Steps[lo:hi]...),
		Result: p.Result,
	}
	var overhead uint32
	if s > 0 {
		overhead += ringOverheadCycles // ring get
	}
	if s < stages-1 {
		overhead += ringOverheadCycles // ring put
	} else {
		out.FinalCompute += p.FinalCompute
	}
	if len(out.Steps) > 0 {
		out.Steps[0].Compute += overhead
	} else {
		out.FinalCompute += overhead
	}
	return out
}
