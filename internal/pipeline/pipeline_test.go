package pipeline

import (
	"testing"

	"repro/internal/expcuts"
	"repro/internal/memlayout"
	"repro/internal/nptrace"
	"repro/internal/pktgen"
	"repro/internal/rulegen"
)

func testPrograms(t *testing.T) []nptrace.Program {
	t.Helper()
	rs, err := rulegen.Generate(rulegen.Config{Kind: rulegen.CoreRouter, Size: 200, Seed: 55})
	if err != nil {
		t.Fatal(err)
	}
	tree, err := expcuts.New(rs, expcuts.Config{Headroom: memlayout.PaperHeadroom})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := pktgen.Generate(rs, pktgen.Config{Count: 500, Seed: 56, MatchFraction: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	ps := make([]nptrace.Program, len(tr.Headers))
	for i, h := range tr.Headers {
		ps[i] = tree.Program(h)
	}
	return ps
}

func TestAllocationTable(t *testing.T) {
	cfg := DefaultAppConfig()
	alloc := cfg.Allocation()
	total := 0
	for _, a := range alloc {
		total += a.MEs
	}
	if total != 16 {
		t.Errorf("ME allocation sums to %d, want 16 (the IXP2850's ME count)", total)
	}
	if alloc[1].Role != RoleProcess || alloc[1].MEs != 9 {
		t.Errorf("processing allocation = %+v", alloc[1])
	}
}

func TestThreadsFormula(t *testing.T) {
	cfg := DefaultAppConfig()
	if cfg.Threads() != 71 {
		t.Errorf("Threads = %d, want 71 (9 MEs × 8 − 1 reserved)", cfg.Threads())
	}
	cfg.ClassifyMEs = 1
	if cfg.Threads() != 7 {
		t.Errorf("Threads = %d, want 7", cfg.Threads())
	}
}

func TestMultiprocessingScalesWithMEs(t *testing.T) {
	ps := testPrograms(t)
	var prev float64
	for _, mes := range []int{1, 3, 9} {
		cfg := DefaultAppConfig()
		cfg.ClassifyMEs = mes
		r, err := RunMultiprocessing(cfg, ps, 6000)
		if err != nil {
			t.Fatal(err)
		}
		if r.OfferedMbps <= prev {
			t.Errorf("MEs=%d: %.0f Mbps not above previous %.0f", mes, r.OfferedMbps, prev)
		}
		prev = r.OfferedMbps
	}
}

func TestContextPipeliningIsSlower(t *testing.T) {
	// Table 2: for classification, multiprocessing beats context
	// pipelining (ring overhead + stage imbalance).
	ps := testPrograms(t)
	cfg := DefaultAppConfig()
	mp, err := RunMultiprocessing(cfg, ps, 6000)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := RunContextPipelining(cfg, ps, 6000)
	if err != nil {
		t.Fatal(err)
	}
	if cp.ThroughputMbps >= mp.ThroughputMbps {
		t.Errorf("context pipelining (%.0f) should not beat multiprocessing (%.0f)",
			cp.ThroughputMbps, mp.ThroughputMbps)
	}
	if len(cp.Stages) != cfg.ClassifyMEs {
		t.Errorf("stages = %d, want %d", len(cp.Stages), cfg.ClassifyMEs)
	}
	if cp.BottleneckStage < 0 || cp.BottleneckStage >= len(cp.Stages) {
		t.Errorf("bottleneck stage %d out of range", cp.BottleneckStage)
	}
}

func TestStageSliceConservesWork(t *testing.T) {
	ps := testPrograms(t)
	const stages = 5
	for i := range ps {
		total := 0
		var tail uint32
		for s := 0; s < stages; s++ {
			sl := stageSlice(&ps[i], s, stages)
			total += len(sl.Steps)
			tail = sl.FinalCompute
		}
		if total != len(ps[i].Steps) {
			t.Fatalf("program %d: stages carry %d steps, original %d", i, total, len(ps[i].Steps))
		}
		if tail < ps[i].FinalCompute {
			t.Fatalf("program %d: final compute lost", i)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	ps := testPrograms(t)
	cfg := DefaultAppConfig()
	cfg.ClassifyMEs = 10
	if _, err := RunMultiprocessing(cfg, ps, 100); err == nil {
		t.Error("10 classify MEs should be rejected (only 9 processing MEs exist)")
	}
	cfg = DefaultAppConfig()
	cfg.ClassifyMEs = -1
	if _, err := RunContextPipelining(cfg, ps, 100); err == nil {
		t.Error("negative MEs should be rejected")
	}
}

func TestValidateProgramsRefusesDegenerateLength(t *testing.T) {
	ok := nptrace.Program{Steps: make([]nptrace.Step, 64)}
	if err := ValidatePrograms([]nptrace.Program{ok}); err != nil {
		t.Fatalf("64-step program rejected: %v", err)
	}
	huge := nptrace.Program{Steps: make([]nptrace.Step, MaxProgramSteps+1)}
	if err := ValidatePrograms([]nptrace.Program{ok, huge}); err == nil {
		t.Fatal("a program past MaxProgramSteps must be refused before simulation")
	}
	if _, err := RunMultiprocessing(DefaultAppConfig(), []nptrace.Program{huge}, 10); err == nil {
		t.Fatal("RunMultiprocessing must refuse degenerate programs")
	}
}
