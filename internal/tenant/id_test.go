package tenant

import (
	"strconv"
	"testing"
)

func TestParseID(t *testing.T) {
	good := map[string]ID{
		"0":          0,
		"7":          7,
		"4242":       4242,
		"007":        7, // leading zeros are still decimal digits
		"4294967295": 4294967295,
		"0x0":        0,
		"0xFF":       255,
		"0Xff":       255,
		"0xDEADBEEF": 0xDEADBEEF,
	}
	for in, want := range good {
		got, err := ParseID(in)
		if err != nil {
			t.Errorf("ParseID(%q): %v", in, err)
		} else if got != want {
			t.Errorf("ParseID(%q) = %v, want %v", in, got, want)
		}
	}
	bad := []string{
		"", "-1", "+1", " 1", "1 ", "1_000", "0b101", "0o17", "0x", "0X",
		"4294967296", "0x100000000", "abc", "0xzz", "1.5", "1e3", "٣", "12\n",
	}
	for _, in := range bad {
		if got, err := ParseID(in); err == nil {
			t.Errorf("ParseID(%q) = %v, want error", in, got)
		}
	}
}

func TestIDStringRoundTrip(t *testing.T) {
	for _, id := range []ID{0, 1, 255, 1 << 20, 4294967295} {
		back, err := ParseID(id.String())
		if err != nil || back != id {
			t.Errorf("round trip %v -> %q -> %v, %v", id, id.String(), back, err)
		}
	}
}

// FuzzParseID fuzzes the wire-facing ID parser: it must never panic,
// every accepted input must round-trip through the canonical form to the
// same value, and acceptance must agree with a strict reference grammar.
func FuzzParseID(f *testing.F) {
	for _, seed := range []string{
		"0", "1", "4242", "4294967295", "4294967296", "0xFF", "0Xff",
		"0xDEADBEEF", "0x100000000", "", "-1", "+7", "1_0", "0b1", "0o7",
		"0x", " 1", "1 ", "abc", "007", "٣٤", "1.5",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		id, err := ParseID(s)
		if err != nil {
			return
		}
		// Accepted: must round-trip through the canonical decimal form.
		back, err2 := ParseID(id.String())
		if err2 != nil || back != id {
			t.Fatalf("ParseID(%q) = %v, but canonical %q re-parses to %v, %v",
				s, id, id.String(), back, err2)
		}
		// Cross-check against strconv on the digit body.
		digits, base := s, 10
		if len(s) > 1 && s[0] == '0' && (s[1] == 'x' || s[1] == 'X') {
			digits, base = s[2:], 16
		}
		want, refErr := strconv.ParseUint(digits, base, 32)
		if refErr != nil {
			t.Fatalf("ParseID(%q) accepted what strconv rejects: %v", s, refErr)
		}
		if ID(want) != id {
			t.Fatalf("ParseID(%q) = %v, reference says %d", s, id, want)
		}
	})
}
