package tenant

import (
	"repro/internal/obs"
)

// Collect is the obs.Collector for the registry: admission-governor
// series plus the per-tenant serving and health series, every tenant
// series carrying a tenant label. Scrape-path only — the per-tenant
// health reads are the same atomics update.Manager.Health reads, and
// the serving counters are the ones Absorb feeds after each run.
func (r *Registry) Collect(emit func(obs.Sample)) {
	builds, heap := r.adm.Inflight()
	emit(obs.Sample{Name: "pc_tenant_builds_inflight",
		Help: "Builds currently admitted by the global admission budget.",
		Type: "gauge", Value: float64(builds)})
	emit(obs.Sample{Name: "pc_tenant_build_heap_bytes",
		Help: "Aggregate heap reserved by admitted builds.",
		Type: "gauge", Value: float64(heap)})
	emit(obs.Sample{Name: "pc_tenant_builds_waiting",
		Help: "Builds queued behind the global admission budget.",
		Type: "gauge", Value: float64(r.adm.Waiting())})
	emit(obs.Sample{Name: "pc_tenant_builds_admitted_total",
		Help: "Builds admitted by the global admission budget.",
		Type: "counter", Value: float64(r.adm.admitted.Load())})
	emit(obs.Sample{Name: "pc_tenant_builds_queued_total",
		Help: "Builds that had to wait for admission.",
		Type: "counter", Value: float64(r.adm.waited.Load())})
	emit(obs.Sample{Name: "pc_tenant_builds_starved_total",
		Help: "Builds whose admission wait expired (budget-starved).",
		Type: "counter", Value: float64(r.adm.starved.Load())})
	emit(obs.Sample{Name: "pc_tenant_refused_packets_total",
		Help: "Packets offered for tenants not in the registry.",
		Type: "counter", Value: float64(r.refused.Load())})
	emit(obs.Sample{Name: "pc_tenant_count",
		Help: "Registered tenants.",
		Type: "gauge", Value: float64(r.Len())})

	m := *r.live.Load()
	for _, rt := range m {
		lbl := []obs.Label{{Key: "tenant", Value: rt.id.String()}}
		counter := func(name, help string, v uint64) {
			emit(obs.Sample{Name: name, Help: help, Type: "counter", Labels: lbl, Value: float64(v)})
		}
		gauge := func(name, help string, v float64) {
			emit(obs.Sample{Name: name, Help: help, Type: "gauge", Labels: lbl, Value: v})
		}
		counter("pc_tenant_packets_total", "Packets classified for the tenant.", rt.classified.Load())
		counter("pc_tenant_shed_total", "Tenant packets shed under overload or refusal.", rt.shedded.Load())
		counter("pc_tenant_canceled_total", "Tenant packets canceled by run deadlines.", rt.canceled.Load())
		counter("pc_tenant_panics_total", "Tenant packets failed with contained classifier panics.", rt.panicked.Load())
		counter("pc_tenant_offered_total", "Packets offered for the tenant.", rt.offered.Load())

		h := rt.Health()
		gauge("pc_tenant_degradation_level", "Tenant's live ladder rung (0 = preferred builder).", float64(h.DegradationLevel))
		gauge("pc_tenant_generation", "Tenant's live rule-set generation.", float64(h.Generation))
		gauge("pc_tenant_rules", "Tenant's live rule count.", float64(h.Rules))
		gauge("pc_tenant_memory_bytes", "Tenant's live classifier footprint.", float64(h.MemoryBytes))
		counter("pc_tenant_build_trips_total", "Tenant builds aborted by its buildgov budget (or starved of admission).", h.BudgetTrips)
	}
}

// Register registers the registry collector on reg.
func (r *Registry) Register(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.Register(r.Collect)
}
