// Package tenant multiplexes many independent rule tables over one
// serving runtime. Each tenant owns a full update.Manager — its own
// copy-on-write generations, its own degradation ladder, its own
// circuit breakers and build budget — while a Registry maps tenant IDs
// to those managers behind the engine's TenantResolver contract with a
// copy-on-write snapshot map (one atomic load per lookup, no lock on
// the packet path). The only globally shared control structure is the
// build Admission governor, which bounds aggregate build concurrency
// and heap so N tenants rebuilding at once cannot OOM the process, and
// queues the overflow fair-share so no tenant can starve the others.
package tenant

import (
	"fmt"
	"strconv"
)

// ID identifies a tenant. 32 bits wide to match what the wire carries
// (a VLAN/VNI-style tag, not a name): packets enter the engine as
// (tenant, header) pairs and the ID is the whole routing key.
type ID uint32

// ParseID parses a tenant ID from its wire/CLI text form: a decimal
// number, or hex with an 0x/0X prefix. The grammar is deliberately
// strict — no signs, no spaces, no digit separators, no octal/binary
// prefixes, value within 32 bits — because IDs cross trust boundaries
// (config files, management APIs, traces) and every laxity in an ID
// parser eventually becomes two tenants with "different" IDs resolving
// to the same table.
func ParseID(s string) (ID, error) {
	base := 10
	digits := s
	if len(s) > 1 && s[0] == '0' && (s[1] == 'x' || s[1] == 'X') {
		base = 16
		digits = s[2:]
	}
	if digits == "" {
		return 0, fmt.Errorf("tenant: empty ID %q", s)
	}
	for i := 0; i < len(digits); i++ {
		c := digits[i]
		ok := c >= '0' && c <= '9'
		if base == 16 {
			ok = ok || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
		}
		if !ok {
			return 0, fmt.Errorf("tenant: invalid ID %q: bad digit %q", s, c)
		}
	}
	v, err := strconv.ParseUint(digits, base, 32)
	if err != nil {
		return 0, fmt.Errorf("tenant: invalid ID %q: %w", s, err)
	}
	return ID(v), nil
}

// String renders the ID in its canonical decimal form.
func (id ID) String() string { return strconv.FormatUint(uint64(id), 10) }
