package tenant

import (
	"strings"
	"testing"

	"repro/internal/buildgov"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/rules"
	"repro/internal/update"
)

func denyHost(addr uint32) rules.Rule {
	return rules.Rule{
		SrcIP:   rules.Prefix{Addr: addr, Len: 32},
		SrcPort: rules.FullPortRange, DstPort: rules.FullPortRange,
		Proto: rules.AnyProto, Action: rules.ActionDeny,
	}
}

func testRules(n int) *rules.RuleSet {
	rs := make([]rules.Rule, 0, n)
	for i := 0; i < n; i++ {
		rs = append(rs, denyHost(0x0A000000+uint32(i)))
	}
	return rules.NewRuleSet("tenant-test", rs)
}

func addTenant(t *testing.T, r *Registry, id ID, cfg Config) *Runtime {
	t.Helper()
	rt, err := r.Add(id, testRules(32), cfg)
	if err != nil {
		t.Fatalf("Add(%v): %v", id, err)
	}
	return rt
}

func TestRegistryAddRemove(t *testing.T) {
	ring := obs.NewRing(32)
	r := NewRegistry(Options{Events: ring})
	cfg := Config{Update: update.Config{ValidateSamples: -1}}
	a := addTenant(t, r, 1, cfg)
	addTenant(t, r, 2, cfg)

	if r.Len() != 2 {
		t.Fatalf("Len = %d, want 2", r.Len())
	}
	if ids := r.IDs(); len(ids) != 2 || ids[0] != 1 || ids[1] != 2 {
		t.Fatalf("IDs = %v", ids)
	}
	if r.Get(1) != a {
		t.Fatal("Get(1) did not return the added runtime")
	}
	if _, err := r.Add(1, testRules(4), cfg); err == nil {
		t.Fatal("duplicate Add accepted")
	}

	// Each tenant classifies against its own table.
	h := rules.Header{SrcIP: 0x0A000005, DstIP: 1, SrcPort: 2, DstPort: 3, Proto: 6}
	if got := a.Classify(h); got != 5 {
		t.Fatalf("tenant 1 Classify = %d, want 5", got)
	}

	if !r.Remove(2) {
		t.Fatal("Remove(2) = false")
	}
	if r.Remove(2) {
		t.Fatal("Remove(2) twice = true")
	}
	if r.Get(2) != nil || r.Len() != 1 {
		t.Fatalf("tenant 2 still resolvable after Remove (Len=%d)", r.Len())
	}
	evicted := false
	for _, ev := range ring.Snapshot() {
		if ev.Kind == obs.EventTenantEvicted {
			evicted = true
		}
	}
	if !evicted {
		t.Fatal("Remove recorded no tenant-evicted event")
	}
}

// TestRegistryLane: the packet-path lookup contract — resolves added
// tenants, returns untyped nil for unknown ones (the engine compares
// against nil directly), and allocates nothing.
func TestRegistryLane(t *testing.T) {
	r := NewRegistry(Options{})
	rt := addTenant(t, r, 7, Config{ShedOnOverload: true, Update: update.Config{ValidateSamples: -1}})

	if l := r.Lane(7); l == nil {
		t.Fatal("Lane(7) = nil")
	} else if !l.ShedOnOverload() {
		t.Fatal("lane lost ShedOnOverload")
	}
	if l := r.Lane(8); l != nil {
		t.Fatalf("Lane(8) = %v, want untyped nil", l)
	}
	_ = rt

	if n := testing.AllocsPerRun(100, func() {
		if r.Lane(7) == nil {
			t.Fatal("lane vanished")
		}
	}); n != 0 {
		t.Fatalf("Lane allocates %v per call; packet path must be 0", n)
	}
}

// TestRegistryIsolatedDegradation: a hostile tenant's budget trips its
// own ladder to a fallback rung without moving a neighbor off its
// preferred builder — the core isolation claim, at registry level.
func TestRegistryIsolatedDegradation(t *testing.T) {
	r := NewRegistry(Options{Events: obs.NewRing(64)})
	// Victim: generous (nil) budget.
	victim := addTenant(t, r, 1, Config{Update: update.Config{ValidateSamples: -1}})
	// Hostile: a node budget so tight the tree rungs cannot finish.
	hostile := addTenant(t, r, 2, Config{
		Budget: &buildgov.Budget{MaxNodes: 1},
		Update: update.Config{ValidateSamples: -1},
	})

	halgo, hlvl := hostile.DescribeAlgorithm()
	if hlvl == 0 {
		t.Fatalf("hostile tenant stayed on its preferred rung (%s); budget never tripped", halgo)
	}
	if h := hostile.Health(); h.BudgetTrips == 0 {
		t.Fatalf("hostile tenant health records no budget trips: %+v", h)
	}
	valgo, vlvl := victim.DescribeAlgorithm()
	if vlvl != 0 {
		t.Fatalf("victim degraded to %s (level %d) because of a neighbor's budget", valgo, vlvl)
	}
}

func TestRegistryAbsorb(t *testing.T) {
	r := NewRegistry(Options{})
	rt := addTenant(t, r, 3, Config{Update: update.Config{ValidateSamples: -1}})

	ts := engine.TenantStats{Tenants: map[uint32]*engine.TenantBreakdown{
		3: {Total: engine.TenantCounts{Offered: 10, Classified: 7, Shed: 2, Canceled: 1}},
		9: {Total: engine.TenantCounts{Offered: 5}}, // unknown tenant
	}}
	r.Absorb(ts)
	r.Absorb(ts)

	got := rt.Counts()
	want := engine.TenantCounts{Offered: 20, Classified: 14, Shed: 4, Canceled: 2}
	if got != want {
		t.Fatalf("Counts = %+v, want %+v", got, want)
	}
	if r.refused.Load() != 10 {
		t.Fatalf("refused = %d, want 10", r.refused.Load())
	}
}

func TestRegistryCollect(t *testing.T) {
	r := NewRegistry(Options{})
	addTenant(t, r, 4, Config{Update: update.Config{ValidateSamples: -1}})

	byName := map[string]int{}
	sawTenantLabel := false
	r.Collect(func(s obs.Sample) {
		byName[s.Name]++
		for _, l := range s.Labels {
			if l.Key == "tenant" && l.Value == "4" {
				sawTenantLabel = true
			}
		}
		if s.Type != "counter" && s.Type != "gauge" {
			t.Errorf("sample %s has type %q", s.Name, s.Type)
		}
		if !strings.HasPrefix(s.Name, "pc_tenant_") {
			t.Errorf("sample %s outside the pc_tenant_ namespace", s.Name)
		}
	})
	for _, name := range []string{
		"pc_tenant_count", "pc_tenant_builds_inflight", "pc_tenant_packets_total",
		"pc_tenant_degradation_level", "pc_tenant_build_trips_total",
	} {
		if byName[name] == 0 {
			t.Errorf("collector emitted no %s", name)
		}
	}
	if !sawTenantLabel {
		t.Error("no sample carried the tenant label")
	}
}
