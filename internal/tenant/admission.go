package tenant

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/buildgov"
	"repro/internal/obs"
)

// Default global admission bounds. Per-tenant budgets bound what one
// build may cost; these bound how many of those costs the process pays
// at once.
const (
	// DefaultMaxConcurrentBuilds is how many governed builds may run
	// simultaneously across all tenants.
	DefaultMaxConcurrentBuilds = 2
	// DefaultMaxBuildHeapBytes caps the aggregate reserved build heap.
	DefaultMaxBuildHeapBytes = int64(512) << 20
	// DefaultBuildHeapReserve is the per-build heap charge assumed for
	// tenants whose budget does not declare MaxHeapBytes.
	DefaultBuildHeapReserve = int64(64) << 20
)

// StarvedError reports a build that waited on the global admission
// budget until its context expired. It unwraps to
// buildgov.ErrBudgetExceeded on purpose: the ladder treats admission
// starvation exactly like a tripped per-build budget — the attempt is
// not retried (retrying against an exhausted global budget is how
// rebuild storms feed themselves), the rung's breaker records the
// failure, and the ladder falls through toward its final rung, which is
// admission-exempt so the tenant always lands somewhere servable.
type StarvedError struct {
	// Tenant is the starved tenant.
	Tenant ID
	// Builds and HeapBytes snapshot the admission state at expiry.
	Builds    int
	HeapBytes int64
}

func (e *StarvedError) Error() string {
	return fmt.Sprintf("tenant: %v build starved by global admission budget (%d builds, %d heap bytes in flight): %v",
		e.Tenant, e.Builds, e.HeapBytes, buildgov.ErrBudgetExceeded)
}

func (e *StarvedError) Unwrap() error { return buildgov.ErrBudgetExceeded }

// waiter is one queued Acquire.
type waiter struct {
	ready   chan struct{}
	heap    int64
	granted bool
}

// Admission is the global build-admission governor: at most maxBuilds
// concurrent governed builds holding at most maxHeap reserved bytes,
// with per-tenant FIFO queues drained round-robin — the fair-share
// queueing that stops one tenant's rebuild storm from monopolizing the
// build slots that every other tenant's compactions and ladder repairs
// need.
type Admission struct {
	maxBuilds int
	maxHeap   int64
	events    *obs.Ring

	mu       sync.Mutex
	inflight int
	heap     int64
	// queues holds each tenant's waiting Acquires in arrival order;
	// rotor holds exactly the tenants with non-empty queues, in grant
	// rotation order (grant from the front, re-append while non-empty).
	queues map[ID][]*waiter
	rotor  []ID

	admitted obs.Counter
	waited   obs.Counter
	starved  obs.Counter
}

// NewAdmission returns a governor admitting up to maxBuilds concurrent
// builds and maxHeapBytes aggregate reserved heap (<= 0: default for
// maxBuilds, unlimited heap for maxHeapBytes). Budget-starved waits are
// recorded on events as budget-starved.
func NewAdmission(maxBuilds int, maxHeapBytes int64, events *obs.Ring) *Admission {
	if maxBuilds <= 0 {
		maxBuilds = DefaultMaxConcurrentBuilds
	}
	return &Admission{
		maxBuilds: maxBuilds,
		maxHeap:   maxHeapBytes,
		events:    events,
		queues:    make(map[ID][]*waiter),
	}
}

// fitsLocked reports whether a build charging heap bytes can start now.
// An idle governor always admits — a single build whose declared charge
// exceeds maxHeap must still make progress, the same always-attempt
// guarantee the ladder gives its final rung.
func (a *Admission) fitsLocked(heap int64) bool {
	if a.inflight == 0 {
		return true
	}
	if a.inflight >= a.maxBuilds {
		return false
	}
	return a.maxHeap <= 0 || a.heap+heap <= a.maxHeap
}

// Acquire blocks until the build is admitted or ctx expires. The fast
// path (capacity free, nobody queued) is two mutex operations. Passing
// heap <= 0 charges nothing against the heap bound. A context expiry
// returns a *StarvedError (a budget trip to the ladder) and records a
// budget-starved event.
func (a *Admission) Acquire(ctx context.Context, id ID, heap int64) error {
	if heap < 0 {
		heap = 0
	}
	a.mu.Lock()
	// No queue-jumping: capacity goes to the rotor first.
	if len(a.rotor) == 0 && a.fitsLocked(heap) {
		a.inflight++
		a.heap += heap
		a.mu.Unlock()
		a.admitted.Inc()
		return nil
	}
	w := &waiter{ready: make(chan struct{}), heap: heap}
	a.queues[id] = append(a.queues[id], w)
	if len(a.queues[id]) == 1 {
		a.rotor = append(a.rotor, id)
	}
	a.mu.Unlock()
	a.waited.Inc()

	select {
	case <-w.ready:
		a.admitted.Inc()
		return nil
	case <-ctx.Done():
		a.mu.Lock()
		if w.granted {
			// The grant raced the expiry; the slot is ours. Keep it — the
			// builder's own context check will abort the build promptly,
			// and Release will still balance the books.
			a.mu.Unlock()
			a.admitted.Inc()
			return nil
		}
		a.removeLocked(id, w)
		builds, heapNow := a.inflight, a.heap
		a.mu.Unlock()
		a.starved.Inc()
		a.events.Recordf(obs.EventBudgetStarved,
			"tenant %v build starved: %d builds, %d heap bytes in flight", id, builds, heapNow)
		return &StarvedError{Tenant: id, Builds: builds, HeapBytes: heapNow}
	}
}

// Release returns a build's admission (same heap as its Acquire) and
// grants as many queued waiters as now fit, round-robin across tenants.
func (a *Admission) Release(heap int64) {
	if heap < 0 {
		heap = 0
	}
	a.mu.Lock()
	a.inflight--
	a.heap -= heap
	a.pumpLocked()
	a.mu.Unlock()
}

// pumpLocked grants from the rotor while capacity lasts: front tenant's
// oldest waiter, then the tenant rotates to the back — each tenant gets
// one build per rotation no matter how deep its queue is.
func (a *Admission) pumpLocked() {
	for len(a.rotor) > 0 {
		tid := a.rotor[0]
		q := a.queues[tid]
		w := q[0]
		if !a.fitsLocked(w.heap) {
			return
		}
		if len(q) == 1 {
			delete(a.queues, tid)
			a.rotor = a.rotor[1:]
		} else {
			a.queues[tid] = q[1:]
			a.rotor = append(a.rotor[1:], tid)
		}
		w.granted = true
		a.inflight++
		a.heap += w.heap
		close(w.ready)
	}
}

// removeLocked unqueues an expired waiter.
func (a *Admission) removeLocked(id ID, w *waiter) {
	q := a.queues[id]
	for i := range q {
		if q[i] == w {
			q = append(q[:i], q[i+1:]...)
			break
		}
	}
	if len(q) == 0 {
		delete(a.queues, id)
		for i := range a.rotor {
			if a.rotor[i] == id {
				a.rotor = append(a.rotor[:i], a.rotor[i+1:]...)
				break
			}
		}
	} else {
		a.queues[id] = q
	}
}

// Inflight returns the admitted build count and their reserved heap.
func (a *Admission) Inflight() (builds int, heapBytes int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.inflight, a.heap
}

// Waiting returns how many Acquires are currently queued.
func (a *Admission) Waiting() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	n := 0
	for _, q := range a.queues {
		n += len(q)
	}
	return n
}

// Starved returns how many Acquires expired while queued.
func (a *Admission) Starved() uint64 { return a.starved.Load() }
