package tenant

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/buildgov"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/rules"
	"repro/internal/update"
)

// Config configures one tenant.
type Config struct {
	// Name is a human label for reports ("" is fine).
	Name string
	// Ladder names the tenant's degradation ladder rungs, best first
	// (update.LadderFromNames). Empty means the default
	// expcuts→hicuts→hsm→linear.
	Ladder []string
	// Budget governs each of the tenant's builds (nil: bounded only by
	// Update.BuildTimeout). This is the per-tenant half of build
	// isolation: a WildcardStorm tenant trips its own budget, walks its
	// own ladder down and serves linear, while every other tenant's
	// expcuts keeps building under its own untouched budget.
	Budget *buildgov.Budget
	// Update configures the tenant's update.Manager (validation, retry,
	// breaker and compaction knobs). Update.Events defaults to the
	// registry's ring.
	Update update.Config
	// ShedOnOverload picks the tenant's engine overload policy: shed
	// (drop with ErrShed results when the tenant's queue slots are full)
	// or block the dispatcher. Hostile or best-effort tenants should
	// shed; blocking is head-of-line blocking for everyone behind them.
	ShedOnOverload bool
	// BuildHeapBytes is the tenant's per-build charge against the global
	// admission heap budget. 0 derives it from Budget.MaxHeapBytes,
	// falling back to DefaultBuildHeapReserve.
	BuildHeapBytes int64
}

// Runtime is one tenant's serving state: its update.Manager (embedded —
// Apply, ApplyDelta, Rollback, Health, Classify and friends are the
// tenant's own) plus the engine lane contract and per-tenant serving
// counters. A *Runtime is what Registry.Lane hands the engine.
type Runtime struct {
	*update.Manager
	id   ID
	name string
	shed bool

	offered    obs.Counter
	classified obs.Counter
	shedded    obs.Counter
	canceled   obs.Counter
	panicked   obs.Counter
}

// ID returns the tenant's ID.
func (r *Runtime) ID() ID { return r.id }

// Name returns the tenant's human label.
func (r *Runtime) Name() string { return r.name }

// ShedOnOverload implements engine.TenantLane.
func (r *Runtime) ShedOnOverload() bool { return r.shed }

// Counts returns the tenant's lifetime serving counters (absorbed from
// engine.TenantStats by Registry.Absorb).
func (r *Runtime) Counts() engine.TenantCounts {
	return engine.TenantCounts{
		Offered:    r.offered.Load(),
		Classified: r.classified.Load(),
		Shed:       r.shedded.Load(),
		Canceled:   r.canceled.Load(),
		Panicked:   r.panicked.Load(),
	}
}

// Options configures a Registry.
type Options struct {
	// MaxConcurrentBuilds / MaxBuildHeapBytes bound the global admission
	// budget (<= 0: DefaultMaxConcurrentBuilds / DefaultMaxBuildHeapBytes).
	MaxConcurrentBuilds int
	MaxBuildHeapBytes   int64
	// Events is the flight recorder for tenant lifecycle and admission
	// events (tenant-evicted, budget-starved); also the default
	// update.Config.Events for tenants that do not bring their own.
	Events *obs.Ring
}

// Registry maps tenant IDs to runtimes. Lookups on the packet path
// (Lane) read a copy-on-write snapshot map through one atomic load —
// no lock, no allocation — while Add/Remove build a fresh map under a
// mutex and publish it atomically, so registering tenant A never stalls
// a single packet of tenant B.
type Registry struct {
	adm    *Admission
	events *obs.Ring

	mu   sync.Mutex // serializes Add/Remove (writers only)
	live atomic.Pointer[map[uint32]*Runtime]

	refused obs.Counter // packets offered for unknown tenants
}

// NewRegistry returns an empty registry with its admission governor.
func NewRegistry(opts Options) *Registry {
	heap := opts.MaxBuildHeapBytes
	if heap <= 0 {
		heap = DefaultMaxBuildHeapBytes
	}
	r := &Registry{
		adm:    NewAdmission(opts.MaxConcurrentBuilds, heap, opts.Events),
		events: opts.Events,
	}
	empty := make(map[uint32]*Runtime)
	r.live.Store(&empty)
	return r
}

// Admission exposes the registry's global build governor.
func (r *Registry) Admission() *Admission { return r.adm }

// Add registers a tenant over its initial rule set, building the first
// generation through the tenant's ladder (under the tenant's budget and
// the global admission governor — a burst of Adds serializes through
// the same fair-share queue as every other build). Duplicate IDs are
// rejected.
func (r *Registry) Add(id ID, rs *rules.RuleSet, cfg Config) (*Runtime, error) {
	if rt := r.Get(id); rt != nil {
		return nil, fmt.Errorf("tenant: %v already registered", id)
	}
	charge := cfg.BuildHeapBytes
	if charge <= 0 {
		if cfg.Budget != nil && cfg.Budget.MaxHeapBytes > 0 {
			charge = cfg.Budget.MaxHeapBytes
		} else {
			charge = DefaultBuildHeapReserve
		}
	}
	names := cfg.Ladder
	if len(names) == 0 {
		names = []string{"expcuts", "hicuts", "hsm", "linear"}
	}
	rungs, err := update.LadderFromNames(names, cfg.Budget)
	if err != nil {
		return nil, fmt.Errorf("tenant: %v ladder: %w", id, err)
	}
	// Gate every rung but the last behind global admission. The final
	// rung is exempt for the same reason the ladder always attempts it:
	// a tenant starved of build capacity must still land on a servable
	// generation, and the final rung (linear in the default ladder) is
	// the one whose build cannot meaningfully cost heap.
	for i := 0; i < len(rungs)-1; i++ {
		inner := rungs[i].Build
		rungs[i].Build = func(ctx context.Context, rs *rules.RuleSet) (update.Classifier, error) {
			if err := r.adm.Acquire(ctx, id, charge); err != nil {
				return nil, err
			}
			defer r.adm.Release(charge)
			return inner(ctx, rs)
		}
	}
	ucfg := cfg.Update
	if ucfg.Events == nil {
		ucfg.Events = r.events
	}
	mgr, err := update.NewManagerLadder(rs, rungs, ucfg)
	if err != nil {
		return nil, fmt.Errorf("tenant: %v initial build: %w", id, err)
	}
	rt := &Runtime{Manager: mgr, id: id, name: cfg.Name, shed: cfg.ShedOnOverload}

	r.mu.Lock()
	defer r.mu.Unlock()
	cur := *r.live.Load()
	if _, dup := cur[uint32(id)]; dup {
		return nil, fmt.Errorf("tenant: %v already registered", id)
	}
	next := make(map[uint32]*Runtime, len(cur)+1)
	for k, v := range cur {
		next[k] = v
	}
	next[uint32(id)] = rt
	r.live.Store(&next)
	return rt, nil
}

// Remove unregisters a tenant (a tenant-evicted event). In-flight
// batches already holding the runtime finish against it; new batches
// resolve to nil and are refused as unknown.
func (r *Registry) Remove(id ID) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	cur := *r.live.Load()
	if _, ok := cur[uint32(id)]; !ok {
		return false
	}
	next := make(map[uint32]*Runtime, len(cur)-1)
	for k, v := range cur {
		if k != uint32(id) {
			next[k] = v
		}
	}
	r.live.Store(&next)
	r.events.Recordf(obs.EventTenantEvicted, "tenant %v removed from registry", id)
	return true
}

// Get returns the tenant's runtime, or nil.
func (r *Registry) Get(id ID) *Runtime {
	return (*r.live.Load())[uint32(id)]
}

// Lane implements engine.TenantResolver: one atomic load, one map read,
// 0 allocs. Unknown tenants return an untyped nil.
func (r *Registry) Lane(id uint32) engine.TenantLane {
	rt := (*r.live.Load())[id]
	if rt == nil {
		return nil
	}
	return rt
}

// Len returns the number of registered tenants.
func (r *Registry) Len() int { return len(*r.live.Load()) }

// IDs returns the registered tenant IDs, ascending.
func (r *Registry) IDs() []ID {
	m := *r.live.Load()
	ids := make([]ID, 0, len(m))
	for k := range m {
		ids = append(ids, ID(k))
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Absorb folds a run's per-tenant accounting into the runtimes' lifetime
// counters (the tenant-labeled series the registry collector exports).
// Counts for tenants no longer registered land on the registry's
// refused counter so nothing is silently dropped.
func (r *Registry) Absorb(ts engine.TenantStats) {
	m := *r.live.Load()
	for tid, bd := range ts.Tenants {
		rt := m[tid]
		if rt == nil {
			r.refused.Add(bd.Total.Offered)
			continue
		}
		rt.offered.Add(bd.Total.Offered)
		rt.classified.Add(bd.Total.Classified)
		rt.shedded.Add(bd.Total.Shed)
		rt.canceled.Add(bd.Total.Canceled)
		rt.panicked.Add(bd.Total.Panicked)
	}
}
