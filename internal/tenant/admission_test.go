package tenant

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/buildgov"
	"repro/internal/obs"
)

func TestAdmissionFastPath(t *testing.T) {
	a := NewAdmission(2, 0, nil)
	ctx := context.Background()
	if err := a.Acquire(ctx, 1, 1<<20); err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	if err := a.Acquire(ctx, 2, 1<<20); err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	builds, heap := a.Inflight()
	if builds != 2 || heap != 2<<20 {
		t.Fatalf("Inflight = %d, %d; want 2, %d", builds, heap, int64(2<<20))
	}
	a.Release(1 << 20)
	a.Release(1 << 20)
	if builds, heap := a.Inflight(); builds != 0 || heap != 0 {
		t.Fatalf("after releases Inflight = %d, %d; want 0, 0", builds, heap)
	}
}

// TestAdmissionAlwaysAdmitsWhenIdle: a single build whose declared
// charge exceeds the heap bound must still be admitted — the governor's
// analogue of the ladder always attempting its final rung.
func TestAdmissionAlwaysAdmitsWhenIdle(t *testing.T) {
	a := NewAdmission(4, 100, nil)
	if err := a.Acquire(context.Background(), 1, 1000); err != nil {
		t.Fatalf("idle governor refused an oversized build: %v", err)
	}
	// But a second oversized build must wait for the first.
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := a.Acquire(ctx, 2, 1000); err == nil {
		t.Fatal("second oversized build admitted alongside the first")
	}
	a.Release(1000)
}

func TestAdmissionStarvationError(t *testing.T) {
	ring := obs.NewRing(16)
	a := NewAdmission(1, 0, ring)
	if err := a.Acquire(context.Background(), 1, 0); err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	err := a.Acquire(ctx, 2, 0)
	if err == nil {
		t.Fatal("Acquire succeeded past a full governor")
	}
	var se *StarvedError
	if !errors.As(err, &se) || se.Tenant != 2 {
		t.Fatalf("error = %v (%T); want *StarvedError for tenant 2", err, err)
	}
	// The ladder contract: starvation IS a budget trip.
	if !errors.Is(err, buildgov.ErrBudgetExceeded) {
		t.Fatalf("StarvedError does not unwrap to buildgov.ErrBudgetExceeded: %v", err)
	}
	if a.Starved() != 1 {
		t.Fatalf("Starved = %d, want 1", a.Starved())
	}
	found := false
	for _, ev := range ring.Snapshot() {
		if ev.Kind == obs.EventBudgetStarved {
			found = true
		}
	}
	if !found {
		t.Fatal("no budget-starved event recorded")
	}
	if a.Waiting() != 0 {
		t.Fatalf("expired waiter still queued: Waiting = %d", a.Waiting())
	}
	a.Release(0)
}

// TestAdmissionFairShare: tenant 1 floods the queue with builds, tenant
// 2 asks for one. Round-robin must grant tenant 2's single build after
// at most one of tenant 1's, not after all of them.
func TestAdmissionFairShare(t *testing.T) {
	a := NewAdmission(1, 0, nil)
	if err := a.Acquire(context.Background(), 9, 0); err != nil {
		t.Fatalf("Acquire: %v", err)
	}

	const floods = 8
	grants := make(chan ID, floods+1)
	var wg sync.WaitGroup
	acquire := func(id ID) {
		defer wg.Done()
		if err := a.Acquire(context.Background(), id, 0); err != nil {
			t.Errorf("tenant %v: %v", id, err)
			return
		}
		grants <- id
		a.Release(0)
	}
	wg.Add(floods)
	for i := 0; i < floods; i++ {
		go acquire(1)
	}
	// Let the flood queue up before tenant 2 arrives (arrival order is
	// what makes the fairness observable).
	for deadline := time.Now().Add(time.Second); a.Waiting() < floods; {
		if time.Now().After(deadline) {
			t.Fatalf("flood never queued: Waiting = %d", a.Waiting())
		}
		time.Sleep(time.Millisecond)
	}
	wg.Add(1)
	go acquire(2)
	for deadline := time.Now().Add(time.Second); a.Waiting() < floods+1; {
		if time.Now().After(deadline) {
			t.Fatalf("tenant 2 never queued: Waiting = %d", a.Waiting())
		}
		time.Sleep(time.Millisecond)
	}

	a.Release(0) // open the single slot; grants chain via Release
	wg.Wait()
	close(grants)

	pos := -1
	i := 0
	for id := range grants {
		if id == 2 {
			pos = i
		}
		i++
	}
	if pos < 0 {
		t.Fatal("tenant 2 never granted")
	}
	// Fair share: at most one tenant-1 grant may precede tenant 2.
	if pos > 1 {
		t.Fatalf("tenant 2 granted at position %d behind %d tenant-1 builds; fair share allows at most 1", pos, pos)
	}
}

// TestAdmissionHeapBound: builds queue when aggregate reserved heap
// would exceed the bound, and drain as heap frees.
func TestAdmissionHeapBound(t *testing.T) {
	a := NewAdmission(8, 100, nil)
	ctx := context.Background()
	if err := a.Acquire(ctx, 1, 60); err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- a.Acquire(ctx, 2, 60) }()
	select {
	case err := <-done:
		t.Fatalf("second 60-byte build admitted over a 100-byte bound (err=%v)", err)
	case <-time.After(20 * time.Millisecond):
	}
	a.Release(60)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("queued build errored: %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("queued build never granted after heap freed")
	}
	a.Release(60)
}

// TestAdmissionNoQueueJumping: while anyone is queued, a fresh Acquire
// must join the queue even when its own (smaller) charge would fit —
// otherwise a stream of small builds starves the rotor's head forever.
func TestAdmissionNoQueueJumping(t *testing.T) {
	a := NewAdmission(4, 100, nil)
	ctx := context.Background()
	if err := a.Acquire(ctx, 1, 60); err != nil {
		t.Fatal(err)
	}
	// Tenant 2 wants 60: does not fit next to 60/100, queues.
	big := make(chan error, 1)
	go func() { big <- a.Acquire(ctx, 2, 60) }()
	for deadline := time.Now().Add(time.Second); a.Waiting() == 0; {
		if time.Now().After(deadline) {
			t.Fatal("big waiter never queued")
		}
		time.Sleep(time.Millisecond)
	}
	// Tenant 3 wants 10: it WOULD fit (70/100), but the rotor is
	// non-empty, so it must wait its turn behind tenant 2.
	ctx3, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := a.Acquire(ctx3, 3, 10); err == nil {
		t.Fatal("small build jumped the queue past a waiting larger build")
	}
	a.Release(60)
	if err := <-big; err != nil {
		t.Fatalf("queued tenant: %v", err)
	}
	a.Release(60)
}
