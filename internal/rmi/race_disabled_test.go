//go:build !race

package rmi

// See race_enabled_test.go.
const raceEnabled = false
