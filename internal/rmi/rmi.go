// Package rmi implements a NuevoMatch-style learned range index for packet
// classification ("A Computational Approach to Packet Classification",
// PAPERS.md): the rule set is partitioned into a few *independent sets* —
// rules whose projections onto one dimension are pairwise disjoint — each
// indexed by a two-stage range-query-safe recursive model index (RQ-RMI)
// with an exactly verified error bound, plus a *remainder* classifier for
// the model-resistant rules, built through the same budgeted algorithms
// the degradation ladder uses (expcuts → hsm → linear).
//
// A lookup runs, per independent set: one stage-0 linear model, one
// stage-1 linear model, and a binary search over the verified error
// window — a handful of cache lines regardless of rule count. That is the
// scaling story the paper's decision trees lack: at 100k–1M rules a tree
// either blows past its memory budget or loses cache residency, while the
// learned index's resident size stays a small multiple of the rule array.
// First-match semantics are preserved exactly: disjointness means each
// independent set yields at most one full-match candidate, the remainder
// yields at most one, and the result is the minimum original rule index —
// conformance tests hold it equal to the linear oracle on every family.
//
// The package implements the engine's Classifier, BatchClassifier and
// Describer contracts, so it slots into update.NewManagerLadder as a rung
// and inherits shadow-validated swaps, breakers, sharding, pipelined batch
// pooling and tenant dispatch unchanged.
package rmi

import (
	"context"
	"fmt"
	"math"
	"unsafe"

	"repro/internal/buildgov"
	"repro/internal/expcuts"
	"repro/internal/hsm"
	"repro/internal/linear"
	"repro/internal/rules"
)

// Config parameterizes an index build. The zero value is ready for use.
type Config struct {
	// MaxISets bounds how many independent sets are extracted. Each adds
	// a per-packet model probe, so more sets only pay off while they keep
	// absorbing a meaningful rule fraction. Default 4.
	MaxISets int
	// MinISetSize stops extraction once the best remaining candidate set
	// is smaller than this: tiny sets are cheaper to classify inside the
	// remainder than with their own model probe. Default 32. Setting it
	// above the rule count forces the pure-remainder fallback path.
	MinISetSize int
	// SubmodelRules is the target number of keys per stage-1 submodel.
	// Default 64.
	SubmodelRules int
	// RemainderAlgos is the build chain for the remainder classifier,
	// tried in order with the shared budget; a budget trip falls through
	// to the next entry, exactly like ladder rungs. Supported names:
	// expcuts, hsm, linear. Default [expcuts, hsm, linear].
	RemainderAlgos []string
}

func (c *Config) fillDefaults() {
	if c.MaxISets == 0 {
		c.MaxISets = 4
	}
	if c.MinISetSize == 0 {
		c.MinISetSize = 32
	}
	if c.SubmodelRules == 0 {
		c.SubmodelRules = 64
	}
	if len(c.RemainderAlgos) == 0 {
		c.RemainderAlgos = []string{"expcuts", "hsm", "linear"}
	}
}

// classifier is the contract the remainder must satisfy; declared locally
// so rmi does not import update (update imports rmi for its ladder).
type classifier interface {
	Classify(h rules.Header) int
	MemoryBytes() int
}

// Stats describes a built index.
type Stats struct {
	// NumISets is the number of independent sets extracted.
	NumISets int
	// IndexedRules is how many rules the learned models cover.
	IndexedRules int
	// RemainderRules is how many fell through to the remainder.
	RemainderRules int
	// RemainderAlgo names the algorithm that built the remainder
	// ("none" when every rule was indexed).
	RemainderAlgo string
	// Submodels is the total stage-1 submodel count across sets.
	Submodels int
	// MaxErr is the largest verified error bound of any submodel — the
	// worst-case secondary-search window half-width.
	MaxErr int
}

// Index is the built classifier. Immutable after construction and safe
// for concurrent use.
type Index struct {
	rules  []rules.Rule
	isets  []iset
	rem    classifier
	remPos []int32 // remainder-local index → original rule index, increasing
	stats  Stats
	algo   string // precomputed DescribeAlgorithm string
}

const sizeofRule = int(unsafe.Sizeof(rules.Rule{}))

// New builds an index without context or budget governance.
func New(rs *rules.RuleSet, cfg Config) (*Index, error) {
	return NewCtx(context.Background(), rs, cfg, nil)
}

// NewCtx builds an index under a build budget. Extraction and model
// fitting charge the governor; the remainder chain passes the same budget
// to each algorithm it tries, with ladder semantics (a heap/node trip
// falls down the chain, cancellation aborts). Linear as the chain's last
// entry makes the build total for any rule set the budget admits.
func NewCtx(ctx context.Context, rs *rules.RuleSet, cfg Config, budget *buildgov.Budget) (*Index, error) {
	cfg.fillDefaults()
	if err := rs.Validate(); err != nil {
		return nil, fmt.Errorf("rmi: %w", err)
	}
	gov := buildgov.Start(ctx, budget)
	// The index retains the rule array for final-match confirmation;
	// charge it like any other resident structure.
	if err := gov.Bytes(int64(len(rs.Rules) * sizeofRule)); err != nil {
		return nil, err
	}

	sets, remIdx, err := extractISets(rs.Rules, cfg.MaxISets, cfg.MinISetSize, gov)
	if err != nil {
		return nil, err
	}
	x := &Index{rules: rs.Rules, isets: sets}
	for i := range x.isets {
		s := &x.isets[i]
		if err := gov.Nodes(len(s.lo), int64(s.bytes())); err != nil {
			return nil, err
		}
		dimMax := uint32(uint64(1)<<rules.DimBits[s.dim] - 1)
		s.model = fitModel(s.lo, (len(s.lo)-1)/cfg.SubmodelRules+1, dimMax)
		if err := gov.Bytes(int64(s.model.bytes())); err != nil {
			return nil, err
		}
		x.stats.IndexedRules += len(s.lo)
		x.stats.Submodels += s.model.submodels()
		if w := s.model.maxWindow(); w > x.stats.MaxErr {
			x.stats.MaxErr = w
		}
	}
	x.stats.NumISets = len(x.isets)
	x.stats.RemainderRules = len(remIdx)
	x.stats.RemainderAlgo = "none"

	if len(remIdx) > 0 {
		if err := gov.Bytes(int64(len(remIdx) * (4 + sizeofRule))); err != nil {
			return nil, err
		}
		remRules := make([]rules.Rule, len(remIdx))
		x.remPos = make([]int32, len(remIdx))
		for i, ri := range remIdx {
			remRules[i] = rs.Rules[ri]
			x.remPos[i] = ri // remIdx is in original order → increasing
		}
		rrs := rules.NewRuleSet(rs.Name+"+rem", remRules)
		rem, algo, err := buildRemainder(ctx, rrs, cfg.RemainderAlgos, budget)
		if err != nil {
			return nil, err
		}
		x.rem = rem
		x.stats.RemainderAlgo = algo
	}
	x.algo = fmt.Sprintf("rmi[%d sets/%s]", x.stats.NumISets, x.stats.RemainderAlgo)
	return x, nil
}

// buildRemainder tries the chain in order. A build error that is not a
// context cancellation falls through to the next algorithm; linear cannot
// fail.
func buildRemainder(ctx context.Context, rrs *rules.RuleSet, algos []string, budget *buildgov.Budget) (classifier, string, error) {
	var lastErr error
	for _, name := range algos {
		var c classifier
		var err error
		switch name {
		case "expcuts":
			c, err = expcuts.NewCtx(ctx, rrs, expcuts.Config{}, budget)
		case "hsm":
			c, err = hsm.NewCtx(ctx, rrs, hsm.Config{}, budget)
		case "linear":
			c, err = linear.New(rrs), nil
		default:
			return nil, "", fmt.Errorf("rmi: unknown remainder algorithm %q (expcuts, hsm, linear)", name)
		}
		if err == nil {
			return c, name, nil
		}
		lastErr = err
		if ctx.Err() != nil {
			break
		}
	}
	return nil, "", fmt.Errorf("rmi: remainder build failed: %w", lastErr)
}

// Name identifies the algorithm.
func (x *Index) Name() string { return "RQ-RMI" }

// Classify returns the first-match rule index for h, or −1. Allocation
// free: each independent set contributes at most one candidate (its
// intervals are disjoint on the probed dimension and the full 5-tuple is
// confirmed before acceptance), the remainder at most one, and first-match
// semantics reduce to the minimum original index over those candidates.
func (x *Index) Classify(h rules.Header) int {
	best := int32(math.MaxInt32)
	for i := range x.isets {
		if r := x.isets[i].lookup(h, x.rules); r >= 0 && r < best {
			best = r
		}
	}
	if x.rem != nil {
		if p := x.rem.Classify(h); p >= 0 {
			if r := x.remPos[p]; r < best {
				best = r
			}
		}
	}
	if best == math.MaxInt32 {
		return -1
	}
	return int(best)
}

// ClassifyBatch classifies hs into out (parallel slices). Per-packet work
// is already allocation free, so the batched path is a plain loop and
// stays 0 allocs/op.
func (x *Index) ClassifyBatch(hs []rules.Header, out []int) {
	for i := range hs {
		out[i] = x.Classify(hs[i])
	}
}

// MemoryBytes reports the resident footprint: the retained rule array,
// interval arrays and models, the remainder position map, and the
// remainder classifier's own image.
func (x *Index) MemoryBytes() int {
	total := len(x.rules) * sizeofRule
	for i := range x.isets {
		total += x.isets[i].bytes() + x.isets[i].model.bytes()
	}
	total += len(x.remPos) * 4
	if x.rem != nil {
		total += x.rem.MemoryBytes()
	}
	return total
}

// DescribeAlgorithm implements the engine's Describer: the string carries
// the extracted-set count and which algorithm absorbed the remainder; the
// index itself is never a degraded rung, so the level is 0.
func (x *Index) DescribeAlgorithm() (string, int) { return x.algo, 0 }

// Stats returns build statistics.
func (x *Index) Stats() Stats { return x.stats }
