package rmi

import (
	"math"
	"unsafe"
)

// rqModel is a two-stage recursive model index (RMI) over a strictly
// increasing key array: stage 0 is one linear model routing a key to a
// stage-1 submodel; each submodel is a linear fit predicting the key's
// position. The model is range-query safe ("RQ-RMI", NuevoMatch §4): after
// fitting, verify() computes — exactly, not probabilistically — the
// maximum discrepancy per submodel between the rounded prediction and the
// true predecessor position over the *entire* uint32 input domain, so a
// lookup that scans the window [pos−err, pos+err] can never miss.
//
// The exactness argument: truePos(v) = (#keys ≤ v) − 1 is a step function
// constant on segments [key_i, key_{i+1}); the active submodel is constant
// on bucket intervals (stage 0 is monotone because a0 ≥ 0 by
// construction, and float multiplication by a non-negative constant,
// addition, truncation and clamping are all monotone); and within one
// (segment ∩ bucket) region the rounded prediction is a monotone image of
// a linear function, so its extremes sit on the region endpoints. verify()
// therefore evaluates the discrepancy only at region endpoints — every
// key, every key−1, every bucket-start boundary (found by binary search
// over the same bucket() code the lookup runs, so no float-rounding gap),
// its predecessor, and the domain maximum — and takes per-bucket maxima.
// Skewed key distributions (e.g. service-port clusters) can leave one
// bucket with thousands of keys and a linear fit whose verified error is
// in the thousands. fitModel then *nests*: such a bucket's submodel is
// replaced by a whole child rqModel over that bucket's keys, one level
// deep — the "2–3 stage" shape of NuevoMatch's RQ-RMI. Nesting stays
// exact: for v at or above the child's first key the child's own verified
// bounds apply over the entire remaining domain (offset by the bucket's
// key base); for v below the child's first key the predecessor is the
// bucket base − 1 *exactly* (every key of an earlier bucket is < v by
// stage-0 monotonicity), so predict answers with error 0 and no model.
type rqModel struct {
	a0, b0 float64    // stage 0: key → approximate [0,1) position
	first  uint32     // smallest key; below it the predecessor is −1 exactly
	sub    []submodel // stage 1
	err    []int32    // verified max |roundPred − truePos| per submodel
}

// submodel is one stage-1 linear model: position ≈ a·key + b, or — when
// the linear fit verified badly — a nested stage-2 model over the
// bucket's keys, predicting positions relative to base. Predictions are
// clamped to [pLo, pHi], the range the true predecessor position provably
// lies in for any value routed to this bucket (every key of an earlier
// bucket is smaller, every key of a later bucket larger — stage-0
// monotonicity). The clamp is what keeps the verified error small on
// clumped key distributions: without it, the fit's linear extrapolation
// across the bucket's empty value range dominates the bound.
type submodel struct {
	a, b     float64
	pLo, pHi int32
	child    *rqModel
	base     int32
}

// eval is the clamped rounded prediction — the single code path both
// verification and lookups run, so the verified bound is exact by
// construction. Clamping is monotone, preserving the endpoint-evaluation
// argument.
func (s *submodel) eval(v uint32) int {
	p := int(math.Floor(s.a*float64(v) + s.b + 0.5))
	if p < int(s.pLo) {
		p = int(s.pLo)
	}
	if p > int(s.pHi) {
		p = int(s.pHi)
	}
	return p
}

// bucket routes a value to its stage-1 submodel. Monotone nondecreasing in
// v (see the type comment), which both verify() and the empty-bucket
// fallback in fitModel rely on.
func (m *rqModel) bucket(v uint32) int {
	j := int((m.a0*float64(v) + m.b0) * float64(len(m.sub)))
	if j < 0 {
		j = 0
	}
	if j >= len(m.sub) {
		j = len(m.sub) - 1
	}
	return j
}

// predict returns the rounded predicted position of v and the verified
// error bound of the submodel that produced it. The true predecessor
// position of v is always within [pos−e, pos+e]; below the first key the
// answer (−1, 0) is exact.
func (m *rqModel) predict(v uint32) (pos, e int) {
	if v < m.first {
		return -1, 0
	}
	j := m.bucket(v)
	s := &m.sub[j]
	if s.child != nil {
		p, ce := s.child.predict(v)
		return int(s.base) + p, ce
	}
	return s.eval(v), int(m.err[j])
}

// nestErrThreshold is the verified per-submodel error above which a
// bucket is refit with a nested stage-2 model. A window of ±128 is a
// couple of cache lines of interval bounds — past that, one more model
// evaluation is cheaper than the wider secondary search.
const nestErrThreshold = 128

// fitModel builds and verifies a model over keys (strictly increasing,
// non-empty) with the given submodel count. domainMax is the largest
// value a probe can take — the probed dimension's width, not uint32's:
// verifying a 16-bit port model out to 2^32 would charge the linear
// extrapolation far past any reachable probe against the error bound.
func fitModel(keys []uint32, submodels int, domainMax uint32) rqModel {
	return fitModelDepth(keys, submodels, domainMax, 0)
}

func fitModelDepth(keys []uint32, submodels int, domainMax uint32, depth int) rqModel {
	n := len(keys)
	if submodels < 1 {
		submodels = 1
	}
	m := rqModel{first: keys[0], sub: make([]submodel, submodels), err: make([]int32, submodels)}

	minK, maxK := float64(keys[0]), float64(keys[n-1])
	if maxK > minK {
		// Two-point fit through (minK, 0) and (maxK, 1): slope is positive,
		// which is what keeps bucket() monotone.
		m.a0 = 1 / (maxK - minK)
		m.b0 = -minK * m.a0
	} // else: single distinct key; a0 = b0 = 0 routes everything to sub[0]

	// Stage 1: keys fall into contiguous runs per bucket (bucket() is
	// monotone in the key). Least-squares fit each run; single-key runs get
	// a constant; empty buckets get the constant predecessor position of
	// their whole input range, which is exact (err 0) by monotonicity.
	runStart := make([]int, submodels+1)
	start := 0
	for j := 0; j < submodels; j++ {
		runStart[j] = start
		end := start
		for end < n && m.bucket(keys[end]) == j {
			end++
		}
		switch run := end - start; {
		case run == 0:
			m.sub[j] = submodel{a: 0, b: float64(start - 1)}
		case run == 1:
			m.sub[j] = submodel{a: 0, b: float64(start)}
		default:
			m.sub[j] = fitLeastSquares(keys[start:end], start)
		}
		m.sub[j].pLo = int32(start - 1)
		m.sub[j].pHi = int32(end - 1)
		start = end
	}
	runStart[submodels] = n

	m.verify(keys, domainMax)

	// Stage 2: refit badly-verified buckets with a nested model (one
	// level only). predict() ignores the stale linear fit and err entry
	// once child is set; the child carries its own verified bounds.
	if depth < 1 {
		for j := 0; j < submodels; j++ {
			s, e := runStart[j], runStart[j+1]
			if m.err[j] > nestErrThreshold && e-s >= 2 {
				child := fitModelDepth(keys[s:e], (e-s-1)/nestFan+1, domainMax, depth+1)
				m.sub[j] = submodel{child: &child, base: int32(s)}
			}
		}
	}
	return m
}

// nestFan is the keys-per-submodel target of nested stage-2 models.
const nestFan = 64

// maxWindow is the largest verified secondary-search half-width any probe
// of this model can see.
func (m *rqModel) maxWindow() int {
	w := 0
	for j := range m.sub {
		if c := m.sub[j].child; c != nil {
			if cw := c.maxWindow(); cw > w {
				w = cw
			}
		} else if int(m.err[j]) > w {
			w = int(m.err[j])
		}
	}
	return w
}

// bytes estimates the model's resident footprint, nested children
// included.
func (m *rqModel) bytes() int {
	const submodelBytes = int(unsafe.Sizeof(submodel{}))
	b := int(unsafe.Sizeof(rqModel{})) + len(m.sub)*submodelBytes + len(m.err)*4
	for j := range m.sub {
		if m.sub[j].child != nil {
			b += m.sub[j].child.bytes()
		}
	}
	return b
}

// submodels counts stage-1 and nested stage-2 submodels.
func (m *rqModel) submodels() int {
	c := len(m.sub)
	for j := range m.sub {
		if m.sub[j].child != nil {
			c += m.sub[j].child.submodels()
		}
	}
	return c
}

// fitLeastSquares fits position ≈ a·key + b over keys[i] → base+i.
// Keys are centered before accumulating to keep the normal equations
// well-conditioned for tightly clustered uint32 keys.
func fitLeastSquares(keys []uint32, base int) submodel {
	n := float64(len(keys))
	mid := float64(keys[0])/2 + float64(keys[len(keys)-1])/2
	var sx, sy, sxx, sxy float64
	for i, k := range keys {
		x := float64(k) - mid
		y := float64(base + i)
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
	}
	det := n*sxx - sx*sx
	if det == 0 {
		return submodel{a: 0, b: sy / n}
	}
	a := (n*sxy - sx*sy) / det
	b := (sy - a*sx) / n
	// Un-center: a·(v−mid) + b = a·v + (b − a·mid).
	return submodel{a: a, b: b - a*mid}
}

// verify fills m.err with the exact per-submodel worst-case discrepancy
// over probes in [keys[0], domainMax]. See the type comment for why
// endpoint evaluation is sufficient.
func (m *rqModel) verify(keys []uint32, domainMax uint32) {
	n := len(keys)
	msub := len(m.sub)

	cand := make([]uint64, 0, 2*n+2*msub+1)
	for _, k := range keys {
		cand = append(cand, uint64(k))
		if k > 0 {
			cand = append(cand, uint64(k)-1)
		}
	}
	// Bucket starts: smallest v with bucket(v) ≥ j, found by binary search
	// over bucket() itself (monotone). A start of 2^32 means the bucket is
	// unreachable; its candidates are skipped below.
	for j := 1; j < msub; j++ {
		lo, hi := uint64(0), uint64(1)<<32
		for lo < hi {
			mid := (lo + hi) / 2
			if m.bucket(uint32(mid)) >= j {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		cand = append(cand, lo)
		if lo > 0 {
			cand = append(cand, lo-1)
		}
	}
	cand = append(cand, uint64(domainMax))

	first := uint64(keys[0])
	for _, cv := range cand {
		if cv < first || cv > uint64(domainMax) {
			// Below the first key predict() answers (−1, 0) exactly
			// without consulting the fit; above the domain the value is
			// unreachable.
			continue
		}
		v := uint32(cv)
		t := predecessor(keys, v)
		j := m.bucket(v)
		d := m.sub[j].eval(v) - t
		if d < 0 {
			d = -d
		}
		if int32(d) > m.err[j] {
			m.err[j] = int32(d)
		}
	}
}

// predecessor returns the index of the largest key ≤ v, or −1.
func predecessor(keys []uint32, v uint32) int {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if keys[mid] <= v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo - 1
}
