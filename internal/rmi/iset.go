package rmi

import (
	"sort"

	"repro/internal/buildgov"
	"repro/internal/rules"
)

// iset is one independent set (NuevoMatch §3): a group of rules whose
// projections onto a single dimension are pairwise disjoint, stored as
// parallel interval arrays sorted by ascending lo, with an RQ-RMI model
// predicting the predecessor position of a lookup value. Because the
// intervals are disjoint, at most one of them can contain any value — the
// one with the largest lo ≤ v — so a lookup is: predict, scan the verified
// error window for that predecessor, check containment, then confirm the
// full 5-tuple match on the original rule.
type iset struct {
	dim   rules.Dim
	lo    []uint32 // interval starts, strictly increasing
	hi    []uint32 // interval ends,   hi[i] < lo[i+1]
	ridx  []int32  // original rule index per interval
	model rqModel
}

// bytes estimates the resident footprint of the interval arrays (the
// model is charged separately once fitted).
func (s *iset) bytes() int {
	return len(s.lo) * 12
}

// lookup returns the original index of the single rule in this set whose
// dim-interval contains h's field and whose full 5-tuple matches h, or −1.
func (s *iset) lookup(h rules.Header, all []rules.Rule) int32 {
	v := h.Field(s.dim)
	pos, e := s.model.predict(v)
	lo := pos - e
	if lo < 0 {
		lo = 0
	}
	hi := pos + e
	if last := len(s.lo) - 1; hi > last {
		hi = last
	}
	if lo > hi {
		return -1
	}
	// Largest i in [lo, hi] with s.lo[i] ≤ v. The verified bound puts the
	// true predecessor inside the window whenever one exists, so the
	// window edges need no special casing.
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if s.lo[mid] <= v {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	if s.lo[lo] > v || v > s.hi[lo] {
		return -1
	}
	if r := s.ridx[lo]; (&all[r]).Matches(h) {
		return r
	}
	return -1
}

// interval is a rule projection during extraction.
type interval struct {
	lo, hi uint32
	idx    int32
}

// extractISets repeatedly pulls the largest independent set out of the
// remaining rules: for each dimension it computes the maximum set of
// pairwise-disjoint projections (classic greedy interval scheduling —
// sort by interval end, take every interval starting after the last
// selected end), keeps the best dimension, and removes those rules. It
// stops after maxISets rounds or when the best candidate set falls under
// minSize (small sets are not worth a model; the remainder classifier
// absorbs them). Entirely deterministic: ties break on interval bounds
// then original rule index.
func extractISets(rs []rules.Rule, maxISets, minSize int, gov *buildgov.Governor) ([]iset, []int32, error) {
	remaining := make([]int32, len(rs))
	for i := range remaining {
		remaining[i] = int32(i)
	}
	if minSize < 1 {
		minSize = 1
	}

	var sets []iset
	scratch := make([]interval, 0, len(rs))
	for len(sets) < maxISets && len(remaining) >= minSize {
		bestDim := rules.Dim(-1)
		var best []interval
		for d := rules.Dim(0); d < rules.NumDims; d++ {
			if err := gov.Check(); err != nil {
				return nil, nil, err
			}
			ivs := scratch[:0]
			for _, ri := range remaining {
				sp := (&rs[ri]).Span(d)
				ivs = append(ivs, interval{sp.Lo, sp.Hi, ri})
			}
			sort.Slice(ivs, func(a, b int) bool {
				if ivs[a].hi != ivs[b].hi {
					return ivs[a].hi < ivs[b].hi
				}
				if ivs[a].lo != ivs[b].lo {
					return ivs[a].lo < ivs[b].lo
				}
				return ivs[a].idx < ivs[b].idx
			})
			sel := greedyDisjoint(ivs)
			if len(sel) > len(best) {
				bestDim = d
				best = append([]interval(nil), sel...)
			}
		}
		if len(best) < minSize {
			break
		}

		s := iset{
			dim:  bestDim,
			lo:   make([]uint32, len(best)),
			hi:   make([]uint32, len(best)),
			ridx: make([]int32, len(best)),
		}
		for i, iv := range best {
			s.lo[i] = iv.lo
			s.hi[i] = iv.hi
			s.ridx[i] = iv.idx
		}
		if err := gov.Bytes(int64(s.bytes())); err != nil {
			return nil, nil, err
		}
		sets = append(sets, s)

		taken := make(map[int32]bool, len(best))
		for _, iv := range best {
			taken[iv.idx] = true
		}
		next := remaining[:0]
		for _, ri := range remaining {
			if !taken[ri] {
				next = append(next, ri)
			}
		}
		remaining = next
	}
	return sets, remaining, nil
}

// greedyDisjoint selects a maximum pairwise-disjoint subset of intervals
// already sorted by ascending end. Disjoint selection in end order is also
// ascending in start, which is the order iset arrays need.
func greedyDisjoint(ivs []interval) []interval {
	var sel []interval
	started := false
	var lastHi uint32
	for _, iv := range ivs {
		if !started || iv.lo > lastHi {
			sel = append(sel, iv)
			lastHi = iv.hi
			started = true
		}
	}
	return sel
}
