//go:build race

package rmi

// raceEnabled reports whether this test binary was built with -race. The
// zero-allocation gate skips under the race detector (allocation
// accounting is instrumented there); CI enforces it in a non-race pass.
const raceEnabled = true
