package rmi

import (
	"math/rand"
	"testing"

	"repro/internal/pktgen"
	"repro/internal/rulegen"
	"repro/internal/rules"
)

func mustIndex(t *testing.T, rs *rules.RuleSet, cfg Config) *Index {
	t.Helper()
	x, err := New(rs, cfg)
	if err != nil {
		t.Fatalf("New(%s): %v", rs.Name, err)
	}
	return x
}

func oracleCheck(t *testing.T, x *Index, rs *rules.RuleSet, headers []rules.Header) {
	t.Helper()
	bad := 0
	for _, h := range headers {
		if got, want := x.Classify(h), rs.Match(h); got != want {
			if bad++; bad <= 5 {
				t.Errorf("%s: Classify(%v) = %d, oracle %d", rs.Name, h, got, want)
			}
		}
	}
	if bad > 5 {
		t.Errorf("%s: %d total mismatches", rs.Name, bad)
	}
}

func testHeaders(t *testing.T, rs *rules.RuleSet, n int) []rules.Header {
	t.Helper()
	tr, err := pktgen.Generate(rs, pktgen.Config{Count: n, Seed: 77, MatchFraction: 0.85})
	if err != nil {
		t.Fatalf("pktgen: %v", err)
	}
	return tr.Headers
}

func TestOracleAcrossFamilies(t *testing.T) {
	cases := []rulegen.Config{
		{Kind: rulegen.Firewall, Size: 120, Seed: 401},
		{Kind: rulegen.CoreRouter, Size: 240, Seed: 402},
		{Kind: rulegen.Random, Size: 80, Seed: 403},
		{Kind: rulegen.ACL, Size: 2000, Seed: 404},
	}
	for _, gc := range cases {
		rs, err := rulegen.Generate(gc)
		if err != nil {
			t.Fatalf("rulegen: %v", err)
		}
		x := mustIndex(t, rs, Config{})
		oracleCheck(t, x, rs, testHeaders(t, rs, 3000))
	}
}

// TestForcedRemainderFallback drives MinISetSize above the rule count so
// no independent set forms and every rule lands in the remainder — the
// path taken when a rule set is entirely model-resistant.
func TestForcedRemainderFallback(t *testing.T) {
	rs, err := rulegen.Generate(rulegen.Config{Kind: rulegen.CoreRouter, Size: 150, Seed: 405})
	if err != nil {
		t.Fatalf("rulegen: %v", err)
	}
	x := mustIndex(t, rs, Config{MinISetSize: len(rs.Rules) + 1})
	if st := x.Stats(); st.NumISets != 0 || st.RemainderRules != len(rs.Rules) || st.RemainderAlgo == "none" {
		t.Fatalf("expected pure-remainder index, got %+v", st)
	}
	oracleCheck(t, x, rs, testHeaders(t, rs, 2000))
}

// TestISetsAbsorbACL asserts the generator/extractor contract the scaling
// story rests on: acl1-style sets are mostly disjoint on the destination
// dimension, so the learned models — not the remainder — must cover the
// bulk of the rules.
func TestISetsAbsorbACL(t *testing.T) {
	rs, err := rulegen.Generate(rulegen.LargeForSize(10000))
	if err != nil {
		t.Fatalf("rulegen: %v", err)
	}
	x := mustIndex(t, rs, Config{})
	st := x.Stats()
	if st.IndexedRules < len(rs.Rules)*6/10 {
		t.Errorf("independent sets cover %d/%d rules; want ≥60%%: %+v", st.IndexedRules, len(rs.Rules), st)
	}
	if st.NumISets == 0 || st.MaxErr < 0 {
		t.Errorf("degenerate stats: %+v", st)
	}
}

// TestModelErrorBound property-tests the RQ-RMI guarantee directly: for
// random strictly increasing key arrays, the rounded prediction of any
// probe must land within the verified per-submodel bound of the true
// predecessor position whenever that position is ≥ 0.
func TestModelErrorBound(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(3000)
		keys := make([]uint32, 0, n)
		cur := uint64(rng.Intn(1000))
		for len(keys) < n && cur <= 1<<32-1 {
			keys = append(keys, uint32(cur))
			// Mix tiny and huge gaps: clustered keys are the hard case
			// for a linear fit.
			if rng.Intn(4) == 0 {
				cur += uint64(rng.Intn(1 << 24))
			}
			cur += uint64(1 + rng.Intn(64))
		}
		m := fitModel(keys, (len(keys)-1)/64+1, 1<<32-1)
		probe := func(v uint32) {
			tpos := predecessor(keys, v)
			if tpos < 0 {
				return
			}
			pos, e := m.predict(v)
			if d := pos - tpos; d > e || -d > e {
				t.Fatalf("trial %d: v=%d truePos=%d pred=%d err=%d — bound violated", trial, v, tpos, pos, e)
			}
		}
		for _, k := range keys {
			probe(k)
			probe(k + 1)
			if k > 0 {
				probe(k - 1)
			}
		}
		for i := 0; i < 2000; i++ {
			probe(rng.Uint32())
		}
	}
}

// TestBatchZeroAlloc pins the batched path at 0 allocs/op; skipped under
// the race detector, which instruments allocation.
func TestBatchZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting differs under -race")
	}
	rs, err := rulegen.Generate(rulegen.LargeForSize(5000))
	if err != nil {
		t.Fatalf("rulegen: %v", err)
	}
	x := mustIndex(t, rs, Config{})
	hs := testHeaders(t, rs, 256)
	out := make([]int, len(hs))
	x.ClassifyBatch(hs, out) // warm up
	allocs := testing.AllocsPerRun(50, func() {
		x.ClassifyBatch(hs, out)
	})
	if allocs != 0 {
		t.Errorf("ClassifyBatch: %v allocs/op, want 0", allocs)
	}
}
