// Package conformance holds the cross-classifier integration matrix: every
// classifier, on every rule-set family, in both its native and serialized
// lookup paths, must agree exactly with priority linear search. This is the
// repository's strongest correctness statement — any divergence anywhere in
// a builder, a compression step, a serializer or a traced lookup fails
// here.
package conformance

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/expcuts"
	"repro/internal/hicuts"
	"repro/internal/hsm"
	"repro/internal/hypercuts"
	"repro/internal/linear"
	"repro/internal/memlayout"
	"repro/internal/nptrace"
	"repro/internal/pktgen"
	"repro/internal/rfc"
	"repro/internal/rulegen"
	"repro/internal/rules"
)

// classifier is the conformance surface: native lookup plus the recorded
// access program whose Result field is the serialized lookup's answer.
type classifier interface {
	Name() string
	Classify(h rules.Header) int
	Program(h rules.Header) nptrace.Program
}

// builders constructs every classifier variant under test.
var builders = []struct {
	name  string
	build func(rs *rules.RuleSet) (classifier, error)
}{
	{"expcuts-w8", func(rs *rules.RuleSet) (classifier, error) {
		return expcuts.New(rs, expcuts.Config{})
	}},
	{"expcuts-w4", func(rs *rules.RuleSet) (classifier, error) {
		return expcuts.New(rs, expcuts.Config{StrideW: 4})
	}},
	{"expcuts-w2-v2", func(rs *rules.RuleSet) (classifier, error) {
		return expcuts.New(rs, expcuts.Config{StrideW: 2, HabsV: 2})
	}},
	{"expcuts-siblings", func(rs *rules.RuleSet) (classifier, error) {
		return expcuts.New(rs, expcuts.Config{Sharing: expcuts.ShareSiblings})
	}},
	{"expcuts-paper-headroom", func(rs *rules.RuleSet) (classifier, error) {
		return expcuts.New(rs, expcuts.Config{Headroom: memlayout.PaperHeadroom, Channels: 4})
	}},
	{"hicuts-binth8", func(rs *rules.RuleSet) (classifier, error) {
		return hicuts.New(rs, hicuts.Config{})
	}},
	{"hicuts-binth2-pruned", func(rs *rules.RuleSet) (classifier, error) {
		return hicuts.New(rs, hicuts.Config{Binth: 2, PruneCovered: true})
	}},
	{"hicuts-1ch", func(rs *rules.RuleSet) (classifier, error) {
		return hicuts.New(rs, hicuts.Config{Channels: 1})
	}},
	{"hypercuts", func(rs *rules.RuleSet) (classifier, error) {
		return hypercuts.New(rs, hypercuts.Config{})
	}},
	{"hypercuts-binth4", func(rs *rules.RuleSet) (classifier, error) {
		return hypercuts.New(rs, hypercuts.Config{Binth: 4})
	}},
	{"hsm", func(rs *rules.RuleSet) (classifier, error) {
		return hsm.New(rs, hsm.Config{})
	}},
	{"hsm-2ch", func(rs *rules.RuleSet) (classifier, error) {
		return hsm.New(rs, hsm.Config{Channels: 2})
	}},
	{"rfc", func(rs *rules.RuleSet) (classifier, error) {
		return rfc.New(rs, rfc.Config{})
	}},
	{"linear", func(rs *rules.RuleSet) (classifier, error) {
		return linear.New(rs), nil
	}},
}

// families are the rule-set workloads of the matrix.
var families = []struct {
	name string
	kind rulegen.Kind
	size int
}{
	{"firewall", rulegen.Firewall, 120},
	{"core-router", rulegen.CoreRouter, 240},
	{"random", rulegen.Random, 50},
}

// TestMatrixAgainstOracle is the full matrix: 12 classifier variants × 3
// families, 1500 headers each, native and serialized paths.
func TestMatrixAgainstOracle(t *testing.T) {
	for _, fam := range families {
		rs, err := rulegen.Generate(rulegen.Config{Kind: fam.kind, Size: fam.size, Seed: 1009})
		if err != nil {
			t.Fatal(err)
		}
		tr, err := pktgen.Generate(rs, pktgen.Config{Count: 1500, Seed: 1010, MatchFraction: 0.85})
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range builders {
			b := b
			t.Run(fmt.Sprintf("%s/%s", fam.name, b.name), func(t *testing.T) {
				cl, err := b.build(rs)
				if err != nil {
					t.Fatal(err)
				}
				for _, h := range tr.Headers {
					want := rs.Match(h)
					if got := cl.Classify(h); got != want {
						t.Fatalf("native Classify(%v) = %d, oracle %d", h, got, want)
					}
				}
				// Serialized path on a subsample (the programs are the
				// expensive part).
				for _, h := range tr.Headers[:300] {
					p := cl.Program(h)
					if want := rs.Match(h); p.Result != want {
						t.Fatalf("serialized lookup(%v) = %d, oracle %d", h, p.Result, want)
					}
				}
			})
		}
	}
}

// TestQuickRandomPolicies drives testing/quick over whole *policies*:
// random seeds generate random rule sets and random headers; all
// classifiers must agree with the oracle. Catches interactions no curated
// case covers.
func TestQuickRandomPolicies(t *testing.T) {
	f := func(seed int64, headerSeed int64) bool {
		rs, err := rulegen.Generate(rulegen.Config{Kind: rulegen.Random, Size: 25, Seed: seed})
		if err != nil {
			return false
		}
		ec, err := expcuts.New(rs, expcuts.Config{StrideW: 4})
		if err != nil {
			return false
		}
		hc, err := hicuts.New(rs, hicuts.Config{Binth: 4})
		if err != nil {
			return false
		}
		hs, err := hsm.New(rs, hsm.Config{})
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(headerSeed))
		for i := 0; i < 60; i++ {
			h := pktgen.RandomHeader(rng)
			want := rs.Match(h)
			if ec.Classify(h) != want || hc.Classify(h) != want || hs.Classify(h) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestAdversarialRuleSets exercises hand-built corner-case policies that
// have historically broken classifiers of this kind.
func TestAdversarialRuleSets(t *testing.T) {
	full := rules.FullPortRange
	cases := []struct {
		name string
		set  []rules.Rule
	}{
		{"single-wildcard", []rules.Rule{
			{SrcPort: full, DstPort: full, Proto: rules.AnyProto},
		}},
		{"shadowed-rule", []rules.Rule{
			{SrcPort: full, DstPort: full, Proto: rules.AnyProto, Action: rules.ActionPermit},
			{SrcIP: rules.Prefix{Addr: 0x0A000000, Len: 8}, SrcPort: full, DstPort: full, Proto: rules.AnyProto, Action: rules.ActionDeny},
		}},
		{"nested-prefixes", []rules.Rule{
			{SrcIP: rules.Prefix{Addr: 0x0A010200, Len: 24}, SrcPort: full, DstPort: full, Proto: rules.AnyProto},
			{SrcIP: rules.Prefix{Addr: 0x0A010000, Len: 16}, SrcPort: full, DstPort: full, Proto: rules.AnyProto},
			{SrcIP: rules.Prefix{Addr: 0x0A000000, Len: 8}, SrcPort: full, DstPort: full, Proto: rules.AnyProto},
		}},
		{"adjacent-port-ranges", []rules.Rule{
			{SrcPort: full, DstPort: rules.PortRange{Lo: 0, Hi: 1023}, Proto: rules.AnyProto},
			{SrcPort: full, DstPort: rules.PortRange{Lo: 1024, Hi: 49151}, Proto: rules.AnyProto},
			{SrcPort: full, DstPort: rules.PortRange{Lo: 49152, Hi: 65535}, Proto: rules.AnyProto},
		}},
		{"one-point-overlap", []rules.Rule{
			{SrcPort: full, DstPort: rules.PortRange{Lo: 100, Hi: 200}, Proto: rules.AnyProto},
			{SrcPort: full, DstPort: rules.PortRange{Lo: 200, Hi: 300}, Proto: rules.AnyProto},
		}},
		{"domain-edges", []rules.Rule{
			{SrcIP: rules.Prefix{Addr: 0, Len: 32}, SrcPort: full, DstPort: full, Proto: rules.AnyProto},
			{SrcIP: rules.Prefix{Addr: 0xFFFFFFFF, Len: 32}, SrcPort: full, DstPort: full, Proto: rules.AnyProto},
			{SrcPort: rules.PortRange{Lo: 65535, Hi: 65535}, DstPort: full, Proto: rules.AnyProto},
		}},
		{"proto-ladder", []rules.Rule{
			{SrcPort: full, DstPort: full, Proto: rules.ProtoMatch{Value: 0}},
			{SrcPort: full, DstPort: full, Proto: rules.ProtoMatch{Value: 255}},
			{SrcPort: full, DstPort: full, Proto: rules.ProtoMatch{Value: rules.ProtoTCP}},
		}},
	}
	rng := rand.New(rand.NewSource(77))
	for _, tc := range cases {
		rs := rules.NewRuleSet(tc.name, tc.set)
		headers := make([]rules.Header, 0, 400)
		// Probe rule corners and random points.
		for i := range rs.Rules {
			r := &rs.Rules[i]
			b := r.Box()
			headers = append(headers,
				rules.Header{SrcIP: b[0].Lo, DstIP: b[1].Lo, SrcPort: uint16(b[2].Lo), DstPort: uint16(b[3].Lo), Proto: uint8(b[4].Lo)},
				rules.Header{SrcIP: b[0].Hi, DstIP: b[1].Hi, SrcPort: uint16(b[2].Hi), DstPort: uint16(b[3].Hi), Proto: uint8(b[4].Hi)},
			)
		}
		for i := 0; i < 300; i++ {
			headers = append(headers, pktgen.RandomHeader(rng))
		}
		for _, b := range builders {
			cl, err := b.build(rs)
			if err != nil {
				t.Fatalf("%s/%s: %v", tc.name, b.name, err)
			}
			for _, h := range headers {
				want := rs.Match(h)
				if got := cl.Classify(h); got != want {
					t.Fatalf("%s/%s: Classify(%v) = %d, oracle %d", tc.name, b.name, h, got, want)
				}
			}
		}
	}
}

// TestProgramResultsMatchNativeEverywhere asserts the Program.Result field
// (used by the simulator to cross-check runs) equals the native answer for
// every builder on a structured set.
func TestProgramResultsMatchNativeEverywhere(t *testing.T) {
	rs, err := rulegen.Generate(rulegen.Config{Kind: rulegen.Firewall, Size: 90, Seed: 2024})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := pktgen.Generate(rs, pktgen.Config{Count: 400, Seed: 2025, MatchFraction: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range builders {
		cl, err := b.build(rs)
		if err != nil {
			t.Fatalf("%s: %v", b.name, err)
		}
		for _, h := range tr.Headers {
			if p := cl.Program(h); p.Result != cl.Classify(h) {
				t.Fatalf("%s: program result %d != native %d for %v", b.name, p.Result, cl.Classify(h), h)
			}
		}
	}
}
