package conformance

import (
	"fmt"
	"testing"

	"repro/internal/expcuts"
	"repro/internal/faultinject"
	"repro/internal/hicuts"
	"repro/internal/hsm"
	"repro/internal/hypercuts"
	"repro/internal/linear"
	"repro/internal/pktgen"
	"repro/internal/rfc"
	"repro/internal/rulegen"
	"repro/internal/rules"
)

// batchClassifier is the serving fast path's contract
// (engine.BatchClassifier, declared locally like the classifier interface
// above): ClassifyBatch(hs, out) must equal out[i] = Classify(hs[i]).
type batchClassifier interface {
	Name() string
	Classify(h rules.Header) int
	ClassifyBatch(hs []rules.Header, out []int)
}

// batchBuilders is one variant per algorithm — the surface "every
// algorithm's ClassifyBatch agrees with its Classify" is proven over.
var batchBuilders = []struct {
	name  string
	build func(rs *rules.RuleSet) (batchClassifier, error)
}{
	{"expcuts", func(rs *rules.RuleSet) (batchClassifier, error) {
		return expcuts.New(rs, expcuts.Config{})
	}},
	{"expcuts-w4", func(rs *rules.RuleSet) (batchClassifier, error) {
		return expcuts.New(rs, expcuts.Config{StrideW: 4})
	}},
	{"hicuts", func(rs *rules.RuleSet) (batchClassifier, error) {
		return hicuts.New(rs, hicuts.Config{})
	}},
	{"hypercuts", func(rs *rules.RuleSet) (batchClassifier, error) {
		return hypercuts.New(rs, hypercuts.Config{})
	}},
	{"hsm", func(rs *rules.RuleSet) (batchClassifier, error) {
		return hsm.New(rs, hsm.Config{})
	}},
	{"rfc", func(rs *rules.RuleSet) (batchClassifier, error) {
		return rfc.New(rs, rfc.Config{})
	}},
	{"linear", func(rs *rules.RuleSet) (batchClassifier, error) {
		return linear.New(rs), nil
	}},
}

// batchSets mixes structured, random, and pathological rule sets: the
// overlap grid and wildcard storm exercise degenerate trees (heavy
// replication, leaf-at-root shapes) where a batched walk's bookkeeping is
// most likely to diverge from the scalar walk.
func batchSets(t *testing.T) []*rules.RuleSet {
	t.Helper()
	sets := []*rules.RuleSet{
		faultinject.OverlapGrid("overlap-grid-6", 6),
		faultinject.WildcardStorm("wildcard-storm-32", 32, 7),
	}
	for _, cfg := range []rulegen.Config{
		{Kind: rulegen.CoreRouter, Size: 200, Seed: 3001},
		{Kind: rulegen.Random, Size: 40, Seed: 3002},
	} {
		rs, err := rulegen.Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		sets = append(sets, rs)
	}
	return sets
}

// TestBatchMatchesClassify is the batched analogue of the oracle matrix:
// for every algorithm on every workload, ClassifyBatch must reproduce the
// scalar Classify answers exactly, across batch sizes including 1, a
// non-power-of-two, the engine default, and the whole trace at once.
func TestBatchMatchesClassify(t *testing.T) {
	for _, rs := range batchSets(t) {
		tr, err := pktgen.Generate(rs, pktgen.Config{Count: 1000, Seed: 3003, MatchFraction: 0.85})
		if err != nil {
			t.Fatal(err)
		}
		hs := tr.Headers
		for _, b := range batchBuilders {
			b := b
			t.Run(fmt.Sprintf("%s/%s", rs.Name, b.name), func(t *testing.T) {
				cl, err := b.build(rs)
				if err != nil {
					t.Fatal(err)
				}
				want := make([]int, len(hs))
				for i, h := range hs {
					want[i] = cl.Classify(h)
				}
				out := make([]int, len(hs))
				for _, size := range []int{1, 3, 64, len(hs)} {
					for i := range out {
						out[i] = -999 // poison: detects unwritten slots
					}
					for lo := 0; lo < len(hs); lo += size {
						hi := min(lo+size, len(hs))
						cl.ClassifyBatch(hs[lo:hi], out[lo:hi])
					}
					for i := range hs {
						if out[i] != want[i] {
							t.Fatalf("batch size %d: packet %d (%v): ClassifyBatch = %d, Classify = %d",
								size, i, hs[i], out[i], want[i])
						}
					}
				}
			})
		}
	}
}

// TestBatchEmptyAndAliasedSlices pins the contract edges: a zero-length
// batch is a no-op, and out slices longer than hs only have their first
// len(hs) slots written.
func TestBatchEmptyAndAliasedSlices(t *testing.T) {
	rs, err := rulegen.Generate(rulegen.Config{Kind: rulegen.CoreRouter, Size: 50, Seed: 3004})
	if err != nil {
		t.Fatal(err)
	}
	h := rules.Header{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4, Proto: rules.ProtoTCP}
	for _, b := range batchBuilders {
		cl, err := b.build(rs)
		if err != nil {
			t.Fatalf("%s: %v", b.name, err)
		}
		cl.ClassifyBatch(nil, nil) // must not panic
		out := []int{-7, -7, -7}
		cl.ClassifyBatch([]rules.Header{h}, out)
		if out[0] != cl.Classify(h) {
			t.Errorf("%s: out[0] = %d, want %d", b.name, out[0], cl.Classify(h))
		}
		if out[1] != -7 || out[2] != -7 {
			t.Errorf("%s: ClassifyBatch wrote past len(hs): %v", b.name, out)
		}
	}
}
