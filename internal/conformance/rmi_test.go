package conformance

import (
	"context"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/faultinject"
	"repro/internal/pktgen"
	"repro/internal/rmi"
	"repro/internal/rulegen"
	"repro/internal/rules"
	"repro/internal/tenant"
	"repro/internal/update"
)

// rmiSets are the rule-set families the learned-index rung must agree
// with the oracle on. The RQ-RMI index carries disjoint projections only;
// everything else drains to the remainder classifier, so the matrix
// deliberately spans both regimes: the synthetic families index most
// rules, while OverlapGrid (every rule overlaps every other in some
// dimension) and WildcardStorm (near-total wildcards) push nearly the
// whole set through the remainder chain.
var rmiSets = []struct {
	name string
	gen  func() (*rules.RuleSet, error)
}{
	{"firewall", func() (*rules.RuleSet, error) {
		return rulegen.Generate(rulegen.Config{Kind: rulegen.Firewall, Size: 150, Seed: 2501})
	}},
	{"core-router", func() (*rules.RuleSet, error) {
		return rulegen.Generate(rulegen.Config{Kind: rulegen.CoreRouter, Size: 240, Seed: 2502})
	}},
	{"acl", func() (*rules.RuleSet, error) {
		return rulegen.Generate(rulegen.Config{Kind: rulegen.ACL, Size: 400, Seed: 2503})
	}},
	{"overlap-grid", func() (*rules.RuleSet, error) {
		return faultinject.OverlapGrid("overlap-grid", 12), nil
	}},
	{"wildcard-storm", func() (*rules.RuleSet, error) {
		return faultinject.WildcardStorm("wildcard-storm", 160, 2504), nil
	}},
}

// TestRMIServingMatrix: the learned rung's engine output — across batch
// sizes and shard counts — must equal the linear-search oracle on every
// family, including the remainder-heavy pathological sets.
func TestRMIServingMatrix(t *testing.T) {
	for _, s := range rmiSets {
		s := s
		t.Run(s.name, func(t *testing.T) {
			rs, err := s.gen()
			if err != nil {
				t.Fatal(err)
			}
			tr, err := pktgen.Generate(rs, pktgen.Config{Count: 2500, Seed: 2505, MatchFraction: 0.85})
			if err != nil {
				t.Fatal(err)
			}
			oracle := make([]int, len(tr.Headers))
			for i, h := range tr.Headers {
				oracle[i] = rs.Match(h)
			}
			cl, err := rmi.New(rs, rmi.Config{})
			if err != nil {
				t.Fatal(err)
			}
			for _, batch := range []int{0, 1, 64} {
				for _, shards := range []int{1, 2, 5} {
					got := serveMatches(t, cl,
						engine.Config{Shards: shards, BatchSize: batch, PreserveOrder: true},
						tr.Headers, false)
					for i, m := range got {
						if m != oracle[i] {
							t.Fatalf("batch=%d shards=%d seq %d: match %d, oracle %d",
								batch, shards, i, m, oracle[i])
						}
					}
				}
			}
		})
	}
}

// TestRMIForcedRemainderServing pins the index to zero iSets (MinISetSize
// above the set size), so every packet takes the remainder-fallback path,
// and serves that configuration through the sharded engine: the fallback
// chain must be oracle-exact on its own, not just as a backstop for the
// models.
func TestRMIForcedRemainderServing(t *testing.T) {
	rs, err := rulegen.Generate(rulegen.Config{Kind: rulegen.Firewall, Size: 130, Seed: 2511})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := pktgen.Generate(rs, pktgen.Config{Count: 2000, Seed: 2512, MatchFraction: 0.85})
	if err != nil {
		t.Fatal(err)
	}
	cl, err := rmi.New(rs, rmi.Config{MinISetSize: rs.Len() + 1})
	if err != nil {
		t.Fatal(err)
	}
	if st := cl.Stats(); st.NumISets != 0 || st.RemainderRules != rs.Len() {
		t.Fatalf("forced remainder: NumISets=%d RemainderRules=%d, want 0/%d",
			st.NumISets, st.RemainderRules, rs.Len())
	}
	for _, shards := range []int{1, 4} {
		got := serveMatches(t, cl,
			engine.Config{Shards: shards, BatchSize: 32, PreserveOrder: true}, tr.Headers, false)
		for i, m := range got {
			if want := rs.Match(tr.Headers[i]); m != want {
				t.Fatalf("shards=%d seq %d: match %d, oracle %d", shards, i, m, want)
			}
		}
	}
}

// TestRMIPipelinedServing routes the rmi rung through the engine with the
// software-pipelined walk configured. The rung has no staged walk of its
// own, so the engine must fall back to its plain batched path and the
// output must stay oracle-exact — the ladder serves mixed rungs under one
// engine config, and a rung without ClassifyBatchPipelined must not
// change answers when pipelining is on.
func TestRMIPipelinedServing(t *testing.T) {
	rs, err := rulegen.Generate(rulegen.Config{Kind: rulegen.ACL, Size: 300, Seed: 2521})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := pktgen.Generate(rs, pktgen.Config{Count: 2000, Seed: 2522, MatchFraction: 0.85})
	if err != nil {
		t.Fatal(err)
	}
	cl, err := rmi.New(rs, rmi.Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, group := range []int{engine.PipelineAuto, 4} {
		got := serveMatches(t, cl,
			engine.Config{Shards: 2, BatchSize: 64, PipelineGroup: group, PreserveOrder: true},
			tr.Headers, false)
		for i, m := range got {
			if want := rs.Match(tr.Headers[i]); m != want {
				t.Fatalf("group=%d seq %d: match %d, oracle %d", group, i, m, want)
			}
		}
	}
}

// TestRMITenantServing serves two tenants whose ladders lead with the
// learned rung through the shared tenant engine: both must settle on
// rmi at level 0 and answer oracle-exactly for their own rule sets.
func TestRMITenantServing(t *testing.T) {
	aclRules, err := rulegen.Generate(rulegen.Config{Kind: rulegen.ACL, Size: 400, Seed: 2531})
	if err != nil {
		t.Fatal(err)
	}
	fwRules, err := rulegen.Generate(rulegen.Config{Kind: rulegen.Firewall, Size: 140, Seed: 2532})
	if err != nil {
		t.Fatal(err)
	}
	reg := tenant.NewRegistry(tenant.Options{})
	cfg := tenant.Config{
		Ladder: []string{"rmi", "linear"},
		Update: update.Config{ValidateSamples: -1, CompactThreshold: -1},
	}
	const tidA, tidB = 1, 2
	sets := map[uint32]*rules.RuleSet{tidA: aclRules, tidB: fwRules}
	for tid, rs := range sets {
		rt, err := reg.Add(tenant.ID(tid), rs, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if algo, lvl := rt.DescribeAlgorithm(); !strings.HasPrefix(algo, "rmi") || lvl != 0 {
			t.Fatalf("tenant %d serves %q at level %d; want the rmi rung at level 0", tid, algo, lvl)
		}
	}
	var pkts []engine.TenantPacket
	for tid, rs := range sets {
		tr, err := pktgen.Generate(rs, pktgen.Config{Count: 1500, Seed: 2533 + int64(tid), MatchFraction: 0.85})
		if err != nil {
			t.Fatal(err)
		}
		for _, h := range tr.Headers {
			pkts = append(pkts, engine.TenantPacket{Tenant: tid, Header: h})
		}
	}
	served := 0
	_, err = engine.RunTenants(context.Background(), reg, engine.Config{Shards: 3, BatchSize: 32, PreserveOrder: true},
		pkts, func(r engine.TenantResult) {
			if r.Err != nil {
				t.Errorf("tenant %d: unexpected serve error: %v", r.Tenant, r.Err)
				return
			}
			served++
			if want := sets[r.Tenant].Match(r.Header); r.Match != want {
				t.Errorf("tenant %d: match %d, oracle %d", r.Tenant, r.Match, want)
			}
		})
	if err != nil {
		t.Fatal(err)
	}
	if served != len(pkts) {
		t.Fatalf("served %d of %d packets", served, len(pkts))
	}
}
