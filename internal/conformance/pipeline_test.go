package conformance

import (
	"fmt"
	"testing"

	"repro/internal/engine"
	"repro/internal/expcuts"
	"repro/internal/pktgen"
	"repro/internal/rulegen"
	"repro/internal/rules"
	"repro/internal/update"
)

// pipelinedClassifier mirrors engine.PipelinedClassifier locally (like
// batchClassifier above).
type pipelinedClassifier interface {
	Classify(h rules.Header) int
	ClassifyBatchPipelined(hs []rules.Header, out []int, group int, affine bool)
}

// pipelineBuilders are the classifiers exposing the staged walk: ExpCuts
// at both strides, and an update.Manager whose live generation is an
// ExpCuts tree (the shape the engine actually serves).
var pipelineBuilders = []struct {
	name  string
	build func(rs *rules.RuleSet) (pipelinedClassifier, error)
}{
	{"expcuts-w8", func(rs *rules.RuleSet) (pipelinedClassifier, error) {
		return expcuts.New(rs, expcuts.Config{})
	}},
	{"expcuts-w4", func(rs *rules.RuleSet) (pipelinedClassifier, error) {
		return expcuts.New(rs, expcuts.Config{StrideW: 4})
	}},
	{"manager-expcuts", func(rs *rules.RuleSet) (pipelinedClassifier, error) {
		return update.NewManager(rs, func(rs *rules.RuleSet) (update.Classifier, error) {
			return expcuts.New(rs, expcuts.Config{})
		})
	}},
}

// TestPipelinedWalkMatchesOracle: the software-pipelined walk must
// reproduce the linear oracle exactly on every workload — including the
// degenerate OverlapGrid/WildcardStorm trees — across group sizes 1, 3,
// 8 and 64, affine on and off, and odd batch tails.
func TestPipelinedWalkMatchesOracle(t *testing.T) {
	for _, rs := range batchSets(t) {
		tr, err := pktgen.Generate(rs, pktgen.Config{Count: 1000, Seed: 3005, MatchFraction: 0.85})
		if err != nil {
			t.Fatal(err)
		}
		hs := tr.Headers
		oracle := make([]int, len(hs))
		for i, h := range hs {
			oracle[i] = rs.Match(h)
		}
		for _, b := range pipelineBuilders {
			b := b
			t.Run(fmt.Sprintf("%s/%s", rs.Name, b.name), func(t *testing.T) {
				cl, err := b.build(rs)
				if err != nil {
					t.Fatal(err)
				}
				out := make([]int, len(hs))
				for _, group := range []int{1, 3, 8, 64} {
					for _, affine := range []bool{false, true} {
						// Batch splits with odd tails: 7 leaves a
						// 1000%7 tail, len(hs) is one whole-trace call.
						for _, size := range []int{7, 64, len(hs)} {
							for i := range out {
								out[i] = -999 // poison: detects unwritten slots
							}
							for lo := 0; lo < len(hs); lo += size {
								hi := min(lo+size, len(hs))
								cl.ClassifyBatchPipelined(hs[lo:hi], out[lo:hi], group, affine)
							}
							for i := range hs {
								if out[i] != oracle[i] {
									t.Fatalf("group %d affine %v size %d: packet %d (%v): pipelined %d, oracle %d",
										group, affine, size, i, hs[i], out[i], oracle[i])
								}
							}
						}
					}
				}
			})
		}
	}
}

// TestPipelinedServingMatrix: the engine with PipelineGroup enabled must
// serve identically to the oracle at shard counts 1, 3 and 8, with and
// without a flow cache (whose miss sub-batches also ride the staged walk),
// at explicit and auto group sizes.
func TestPipelinedServingMatrix(t *testing.T) {
	rs, err := rulegen.Generate(rulegen.Config{Kind: rulegen.Firewall, Size: 150, Seed: 2301})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := pktgen.Generate(rs, pktgen.Config{Count: 3000, Seed: 2302, MatchFraction: 0.85})
	if err != nil {
		t.Fatal(err)
	}
	oracle := make([]int, len(tr.Headers))
	for i, h := range tr.Headers {
		oracle[i] = rs.Match(h)
	}
	cl, err := expcuts.New(rs, expcuts.Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{1, 3, 8} {
		for _, cfg := range []engine.Config{
			{Shards: shards, PreserveOrder: true, PipelineGroup: 8},
			{Shards: shards, PreserveOrder: true, PipelineGroup: engine.PipelineAuto, PipelineAffine: true},
			{Shards: shards, PreserveOrder: true, PipelineGroup: 64, FlowCacheFlows: 128},
		} {
			cfg := cfg
			name := fmt.Sprintf("shards=%d/group=%d/affine=%v/cache=%d",
				shards, cfg.PipelineGroup, cfg.PipelineAffine, cfg.FlowCacheFlows)
			t.Run(name, func(t *testing.T) {
				got := serveMatches(t, cl, cfg, tr.Headers, false)
				for i, m := range got {
					if m != oracle[i] {
						t.Fatalf("seq %d: match %d, oracle %d", i, m, oracle[i])
					}
				}
			})
		}
	}
}

// TestPipelinedServingNonPipelinedClassifier pins the no-op contract: a
// classifier without a staged walk serves unchanged under PipelineGroup.
func TestPipelinedServingNonPipelinedClassifier(t *testing.T) {
	rs, err := rulegen.Generate(rulegen.Config{Kind: rulegen.CoreRouter, Size: 100, Seed: 2303})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := pktgen.Generate(rs, pktgen.Config{Count: 500, Seed: 2304, MatchFraction: 0.85})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range shardVariants {
		cl, err := v.build(rs)
		if err != nil {
			t.Fatalf("%s: %v", v.name, err)
		}
		got := serveMatches(t, cl,
			engine.Config{Shards: 2, PreserveOrder: true, PipelineGroup: 32}, tr.Headers, false)
		for i, m := range got {
			if want := rs.Match(tr.Headers[i]); m != want {
				t.Fatalf("%s seq %d: match %d, oracle %d", v.name, i, m, want)
			}
		}
	}
}
