package conformance

import (
	"errors"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/expcuts"
	"repro/internal/obs"
	"repro/internal/pktgen"
	"repro/internal/rulegen"
	"repro/internal/rules"
	"repro/internal/update"
)

// TestChurnConformanceAcrossShards is the churn dimension of the matrix:
// randomized insert/delete bursts land through the delta layer between
// (and, for compactions, during) serving runs, and after every burst the
// sharded engine at 1, 3 and 8 shards must agree packet-for-packet with
// the linear oracle over the manager's current snapshot. Rounds also
// interleave compactions folding the delta mid-serve (answer-preserving
// by construction) and rollbacks reverting the latest burst.
func TestChurnConformanceAcrossShards(t *testing.T) {
	rs, err := rulegen.Generate(rulegen.Config{Kind: rulegen.Firewall, Size: 120, Seed: 2201})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := pktgen.Generate(rs, pktgen.Config{Count: 1500, Seed: 2202, MatchFraction: 0.85})
	if err != nil {
		t.Fatal(err)
	}
	pool, err := rulegen.Generate(rulegen.Config{Kind: rulegen.Firewall, Size: 30, Seed: 2203})
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := update.NewManagerConfig(rs,
		func(r *rules.RuleSet) (update.Classifier, error) {
			return expcuts.New(r, expcuts.Config{})
		},
		update.Config{CompactThreshold: -1}) // compactions only where the test places them
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(2204))
	rounds := 8
	if testing.Short() {
		rounds = 3
	}
	for round := 0; round < rounds; round++ {
		snap, _ := mgr.Snapshot()
		n := len(snap)
		var ops []update.Op
		for k := 0; k < 2+rng.Intn(3); k++ {
			if n > 60 && rng.Intn(2) == 0 {
				ops = append(ops, update.DeleteAt(rng.Intn(n)))
				n--
			} else {
				ops = append(ops, update.InsertAt(rng.Intn(n+1), pool.Rules[rng.Intn(pool.Len())]))
				n++
			}
		}
		if err := mgr.ApplyDelta(ops); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if round%4 == 3 {
			if err := mgr.Rollback(); err != nil {
				t.Fatalf("round %d rollback: %v", round, err)
			}
		}

		// The oracle is the linear scan over whatever the manager now
		// serves — including rolled-back rounds.
		cur, gen := mgr.Snapshot()
		oracle := rules.NewRuleSet("oracle", cur)
		want := make([]int, len(tr.Headers))
		for i, h := range tr.Headers {
			want[i] = oracle.Match(h)
		}

		// On compaction rounds the fold runs concurrently with serving:
		// it swaps the tree under the engine mid-stream, but the combined
		// view is answer-preserving, so the oracle must still hold.
		var compacted chan struct{}
		if round%4 == 1 {
			compacted = make(chan struct{})
			go func() {
				defer close(compacted)
				if err := mgr.Compact(); err != nil && !errors.Is(err, update.ErrCompactionConflict) {
					t.Errorf("round %d compact: %v", round, err)
				}
			}()
		}
		for _, shards := range []int{1, 3, 8} {
			got := serveMatches(t, mgr,
				engine.Config{Shards: shards, FlowCacheFlows: 256, PreserveOrder: true},
				tr.Headers, false)
			for i, m := range got {
				if m != want[i] {
					t.Fatalf("round %d gen %d shards=%d seq %d: match %d, oracle %d",
						round, gen, shards, i, m, want[i])
				}
			}
		}
		if compacted != nil {
			<-compacted
		}
	}
	h := mgr.Health()
	if h.DeltaApplies == 0 {
		t.Error("churn rounds never exercised the delta layer")
	}
	if h.Rollbacks == 0 || h.Compactions == 0 {
		t.Errorf("rounds skipped a dimension: %d rollbacks, %d compactions", h.Rollbacks, h.Compactions)
	}
}

// TestChurnSoakWithFailuresAcrossShards serves continuously at several
// shard counts while a churn goroutine drives semantically neutral delta
// edits (a duplicate of rule 0 appended and removed — no answer ever
// changes), compactions, injected compaction failures that trip the
// single rung's circuit breaker, and rollbacks. Run with -race. Every
// emitted match must equal the base oracle no matter which generation,
// delta state or breaker state served it.
func TestChurnSoakWithFailuresAcrossShards(t *testing.T) {
	rs, err := rulegen.Generate(rulegen.Config{Kind: rulegen.Firewall, Size: 100, Seed: 2211})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := pktgen.Generate(rs, pktgen.Config{Count: 2000, Seed: 2212, MatchFraction: 0.85})
	if err != nil {
		t.Fatal(err)
	}
	oracle := make([]int, len(tr.Headers))
	for i, h := range tr.Headers {
		oracle[i] = rs.Match(h)
	}

	var failBuilds atomic.Bool
	ring := obs.NewRing(256)
	mgr, err := update.NewManagerConfig(rs,
		func(r *rules.RuleSet) (update.Classifier, error) {
			if failBuilds.Load() {
				return nil, errors.New("injected compaction build failure")
			}
			return expcuts.New(r, expcuts.Config{})
		},
		update.Config{
			ValidateSamples:  -1,
			MaxBuildAttempts: 1,
			BreakerThreshold: 2,
			BreakerCooldown:  time.Millisecond,
			CompactThreshold: -1,
			Events:           ring,
		})
	if err != nil {
		t.Fatal(err)
	}

	dup := rs.Rules[0]
	const minChurnIters = 12
	stop := make(chan struct{})
	churnDone := make(chan struct{})
	milestone := make(chan struct{}) // closed once every dimension has fired
	go func() {
		defer close(churnDone)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			snap, _ := mgr.Snapshot()
			n := len(snap)
			if err := mgr.ApplyDelta([]update.Op{update.InsertAt(n, dup)}); err != nil {
				t.Errorf("churn %d insert: %v", i, err)
				return
			}
			switch {
			case i%3 == 1:
				// Two consecutive injected failures open the breaker;
				// serving must ride out the trip on (old tree + delta).
				failBuilds.Store(true)
				for k := 0; k < 2; k++ {
					if err := mgr.Compact(); err == nil {
						t.Errorf("churn %d: injected compaction %d unexpectedly succeeded", i, k)
					}
				}
				failBuilds.Store(false)
				time.Sleep(2 * time.Millisecond) // let the breaker half-open
			case i%3 == 2:
				if err := mgr.Compact(); err != nil && !errors.Is(err, update.ErrCompactionConflict) &&
					!errors.Is(err, update.ErrCompactionAborted) {
					// Breaker may still be open from a recent trip; that
					// surfaces as a failed build, which is expected here.
					t.Logf("churn %d compact: %v", i, err)
				}
			}
			if err := mgr.ApplyDelta([]update.Op{update.DeleteAt(n)}); err != nil {
				t.Errorf("churn %d delete: %v", i, err)
				return
			}
			if i%4 == 3 {
				if err := mgr.Rollback(); err != nil {
					t.Errorf("churn %d rollback: %v", i, err)
					return
				}
			}
			if i == minChurnIters {
				close(milestone)
			}
		}
	}()

	for _, shards := range []int{1, 3, 8} {
		got := serveMatches(t, mgr,
			engine.Config{Shards: shards, FlowCacheFlows: 256, PreserveOrder: true},
			tr.Headers, false)
		for i, m := range got {
			if m != oracle[i] {
				t.Fatalf("shards=%d seq %d: match %d under churn, oracle %d", shards, i, m, oracle[i])
			}
		}
	}
	// Keep churning until every dimension (breaker trip, fold, rollback)
	// has fired at least once, then stop.
	select {
	case <-milestone:
	case <-time.After(30 * time.Second):
		t.Fatal("churn goroutine never reached its milestone")
	}
	close(stop)
	<-churnDone
	if !mgr.Quiesce(10 * time.Second) {
		t.Fatal("manager did not quiesce after churn")
	}

	h := mgr.Health()
	if h.DeltaApplies == 0 {
		t.Error("soak never used the delta layer")
	}
	if h.CompactionFailures == 0 {
		t.Error("injected compaction failures never fired")
	}
	if h.Rollbacks == 0 {
		t.Error("soak never rolled back")
	}
	opens := uint64(0)
	for _, kc := range ring.KindCounts() {
		if kc.Kind == obs.EventBreakerOpen {
			opens = kc.Count
		}
	}
	if opens == 0 {
		t.Error("breaker never tripped despite consecutive injected failures")
	}
	t.Logf("soak: %d delta applies, %d compactions, %d failures, %d aborts, %d rollbacks, %d breaker opens",
		h.DeltaApplies, h.Compactions, h.CompactionFailures, h.CompactionAborts, h.Rollbacks, opens)
}
