package conformance

import (
	"fmt"
	"testing"

	"repro/internal/engine"
	"repro/internal/expcuts"
	"repro/internal/faultinject"
	"repro/internal/hicuts"
	"repro/internal/hsm"
	"repro/internal/hypercuts"
	"repro/internal/linear"
	"repro/internal/pktgen"
	"repro/internal/rfc"
	"repro/internal/rulegen"
	"repro/internal/rules"
	"repro/internal/update"
)

// shardVariants are the seven algorithm variants the sharded-serving
// dimension of the matrix covers: one representative configuration per
// algorithm family plus the two ExpCuts strides.
var shardVariants = []struct {
	name  string
	build func(rs *rules.RuleSet) (engine.Classifier, error)
}{
	{"expcuts-w8", func(rs *rules.RuleSet) (engine.Classifier, error) {
		return expcuts.New(rs, expcuts.Config{})
	}},
	{"expcuts-w4", func(rs *rules.RuleSet) (engine.Classifier, error) {
		return expcuts.New(rs, expcuts.Config{StrideW: 4})
	}},
	{"hicuts", func(rs *rules.RuleSet) (engine.Classifier, error) {
		return hicuts.New(rs, hicuts.Config{})
	}},
	{"hypercuts", func(rs *rules.RuleSet) (engine.Classifier, error) {
		return hypercuts.New(rs, hypercuts.Config{})
	}},
	{"hsm", func(rs *rules.RuleSet) (engine.Classifier, error) {
		return hsm.New(rs, hsm.Config{})
	}},
	{"rfc", func(rs *rules.RuleSet) (engine.Classifier, error) {
		return rfc.New(rs, rfc.Config{})
	}},
	{"linear", func(rs *rules.RuleSet) (engine.Classifier, error) {
		return linear.New(rs), nil
	}},
}

// serveMatches runs cl through the engine and returns the per-sequence
// matches (-1 entries for packets that failed), asserting ordered
// emission and exact accounting along the way.
func serveMatches(t *testing.T, cl engine.Classifier, cfg engine.Config, headers []rules.Header, wantErr bool) []int {
	t.Helper()
	got := make([]int, len(headers))
	for i := range got {
		got[i] = -2 // sentinel: never emitted
	}
	failed := 0
	st, err := engine.Run(cl, cfg, headers, func(r engine.Result) {
		if got[r.Seq] != -2 {
			t.Fatalf("seq %d emitted twice", r.Seq)
		}
		if r.Err != nil {
			failed++
			got[r.Seq] = -1
			return
		}
		got[r.Seq] = r.Match
	})
	if wantErr {
		if err == nil {
			t.Fatal("expected a run error from injected faults")
		}
	} else if err != nil {
		t.Fatal(err)
	}
	for i, m := range got {
		if m == -2 {
			t.Fatalf("seq %d never emitted", i)
		}
	}
	if st.Panics != failed {
		t.Fatalf("Stats.Panics = %d but %d failed results emitted", st.Panics, failed)
	}
	if st.Packets+st.Shed+st.Canceled+st.Panics != len(headers) {
		t.Fatalf("accounting: packets %d + shed %d + canceled %d + panics %d != %d",
			st.Packets, st.Shed, st.Canceled, st.Panics, len(headers))
	}
	return got
}

// TestShardedServingMatrix: sharded serving output (any shard count) ==
// 1-shard output == oracle, for all seven algorithm variants.
func TestShardedServingMatrix(t *testing.T) {
	rs, err := rulegen.Generate(rulegen.Config{Kind: rulegen.Firewall, Size: 150, Seed: 2101})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := pktgen.Generate(rs, pktgen.Config{Count: 3000, Seed: 2102, MatchFraction: 0.85})
	if err != nil {
		t.Fatal(err)
	}
	oracle := make([]int, len(tr.Headers))
	for i, h := range tr.Headers {
		oracle[i] = rs.Match(h)
	}
	for _, v := range shardVariants {
		v := v
		t.Run(v.name, func(t *testing.T) {
			cl, err := v.build(rs)
			if err != nil {
				t.Fatal(err)
			}
			base := serveMatches(t, cl,
				engine.Config{Shards: 1, PreserveOrder: true}, tr.Headers, false)
			for i, m := range base {
				if m != oracle[i] {
					t.Fatalf("1-shard seq %d: match %d, oracle %d", i, m, oracle[i])
				}
			}
			for _, shards := range []int{2, 5} {
				sharded := serveMatches(t, cl,
					engine.Config{Shards: shards, PreserveOrder: true}, tr.Headers, false)
				for i, m := range sharded {
					if m != base[i] {
						t.Fatalf("shards=%d seq %d: match %d, 1-shard %d", shards, i, m, base[i])
					}
				}
			}
		})
	}
}

// TestShardedServingUnderPanics: with panics injected across shards,
// non-failed packets must still match the oracle for every variant, and
// failed + classified must cover the trace.
func TestShardedServingUnderPanics(t *testing.T) {
	rs, err := rulegen.Generate(rulegen.Config{Kind: rulegen.CoreRouter, Size: 200, Seed: 2111})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := pktgen.Generate(rs, pktgen.Config{Count: 2000, Seed: 2112, MatchFraction: 0.85})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range shardVariants {
		v := v
		t.Run(v.name, func(t *testing.T) {
			cl, err := v.build(rs)
			if err != nil {
				t.Fatal(err)
			}
			panicky := &faultinject.PanickyClassifier{Inner: cl, EveryN: 131}
			got := serveMatches(t, panicky,
				engine.Config{Shards: 4, PreserveOrder: true}, tr.Headers, true)
			failed := 0
			for i, m := range got {
				if m == -1 {
					failed++
					continue
				}
				if want := rs.Match(tr.Headers[i]); m != want {
					t.Fatalf("seq %d: match %d under panics, oracle %d", i, m, want)
				}
			}
			if failed == 0 {
				t.Fatal("injector fired no panics over 2000 packets")
			}
		})
	}
}

// TestShardedServingUnderHotSwaps serves through an update.Manager while
// semantically neutral swaps land mid-stream, across shard counts and
// with per-shard flow caches enabled: every emitted match must equal the
// oracle regardless of which generation served it.
func TestShardedServingUnderHotSwaps(t *testing.T) {
	rs, err := rulegen.Generate(rulegen.Config{Kind: rulegen.Firewall, Size: 120, Seed: 2121})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := pktgen.Generate(rs, pktgen.Config{Count: 2500, Seed: 2122, MatchFraction: 0.85})
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{1, 4} {
		shards := shards
		t.Run(fmt.Sprintf("shards-%d", shards), func(t *testing.T) {
			mgr, err := update.NewManagerConfig(rs,
				func(rs *rules.RuleSet) (update.Classifier, error) {
					return expcuts.New(rs, expcuts.Config{})
				},
				update.Config{ValidateSamples: -1})
			if err != nil {
				t.Fatal(err)
			}
			stop := make(chan struct{})
			done := make(chan struct{})
			go func() {
				defer close(done)
				dup := rs.Rules[0]
				for {
					select {
					case <-stop:
						return
					default:
					}
					if err := mgr.Apply([]update.Op{update.InsertAt(rs.Len(), dup)}); err != nil {
						t.Errorf("insert: %v", err)
						return
					}
					if err := mgr.Apply([]update.Op{update.DeleteAt(rs.Len())}); err != nil {
						t.Errorf("delete: %v", err)
						return
					}
				}
			}()
			got := serveMatches(t, mgr,
				engine.Config{Shards: shards, FlowCacheFlows: 128, PreserveOrder: true},
				tr.Headers, false)
			close(stop)
			<-done
			for i, m := range got {
				if want := rs.Match(tr.Headers[i]); m != want {
					t.Fatalf("seq %d: match %d under swaps, oracle %d", i, m, want)
				}
			}
		})
	}
}
