package conformance

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/buildgov"
	"repro/internal/engine"
	"repro/internal/faultinject"
	"repro/internal/obs"
	"repro/internal/pktgen"
	"repro/internal/rulegen"
	"repro/internal/rules"
	"repro/internal/tenant"
	"repro/internal/update"
)

// TestHostileTenantIsolation is the multi-tenant dimension of the
// conformance matrix: tenant X is actively hostile — a WildcardStorm
// rule table under a budget so tight every tree rung trips (driving X
// down its own ladder to linear), plus a FlappingUpdater hammering X's
// delta layer from another goroutine throughout serving — while tenants
// Y and Z serve steady tables beside it on the same shards.
//
// The isolation contract under test, at 1, 3 and 8 shards:
//
//   - Y and Z agree packet-for-packet with their own static linear
//     oracles while X churns;
//   - Y and Z stay on their preferred rung ("expcuts", level 0) — X's
//     budget trips are X's alone;
//   - X lands on "linear" with recorded budget trips, keeps serving, and
//     after the storm its snapshot equals the updater's mirror exactly;
//   - per-tenant per-shard accounting identities hold throughout.
func TestHostileTenantIsolation(t *testing.T) {
	ysRules, err := rulegen.Generate(rulegen.Config{Kind: rulegen.Firewall, Size: 120, Seed: 7301})
	if err != nil {
		t.Fatal(err)
	}
	zsRules, err := rulegen.Generate(rulegen.Config{Kind: rulegen.CoreRouter, Size: 100, Seed: 7302})
	if err != nil {
		t.Fatal(err)
	}
	storm := faultinject.WildcardStorm("hostile", 160, 7303)
	pool, err := rulegen.Generate(rulegen.Config{Kind: rulegen.Firewall, Size: 30, Seed: 7304})
	if err != nil {
		t.Fatal(err)
	}

	ring := obs.NewRing(256)
	reg := tenant.NewRegistry(tenant.Options{Events: ring})
	const (
		tidX = 10 // hostile
		tidY = 20 // steady
		tidZ = 30 // steady
	)
	steady := tenant.Config{Update: update.Config{ValidateSamples: -1, CompactThreshold: -1}}
	if _, err := reg.Add(tidY, ysRules, steady); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Add(tidZ, zsRules, steady); err != nil {
		t.Fatal(err)
	}
	hostile, err := reg.Add(tidX, storm, tenant.Config{
		// A node budget the storm cannot fit: expcuts, hicuts and hsm all
		// trip, the final (ungoverned) linear rung serves.
		Budget:         &buildgov.Budget{MaxNodes: 48},
		Update:         update.Config{ValidateSamples: -1, CompactThreshold: -1},
		ShedOnOverload: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if algo, lvl := hostile.DescribeAlgorithm(); algo != "linear" || lvl == 0 {
		t.Fatalf("hostile tenant serves %q at level %d; the storm budget should force linear", algo, lvl)
	}
	if h := hostile.Health(); h.BudgetTrips == 0 {
		t.Fatal("hostile tenant records no budget trips")
	}

	// Traffic: three per-tenant traces interleaved into one stream, with
	// a static linear oracle for the steady tenants.
	traces := map[uint32]*rules.RuleSet{tidY: ysRules, tidZ: zsRules, tidX: storm}
	count := 1200
	if testing.Short() {
		count = 400
	}
	var pkts []engine.TenantPacket
	want := map[uint32][]int{} // steady tenants: oracle match per their packet order
	perTenant := map[uint32][]rules.Header{}
	for tid, rs := range traces {
		tr, err := pktgen.Generate(rs, pktgen.Config{Count: count, Seed: 7305 + int64(tid), MatchFraction: 0.85})
		if err != nil {
			t.Fatal(err)
		}
		perTenant[tid] = tr.Headers
		if tid != tidX {
			ws := make([]int, len(tr.Headers))
			for i, h := range tr.Headers {
				ws[i] = rs.Match(h)
			}
			want[tid] = ws
		}
	}
	seen := map[uint32]int{} // per-tenant packet ordinal at emission
	for i := 0; i < count; i++ {
		for _, tid := range []uint32{tidX, tidY, tidZ} {
			pkts = append(pkts, engine.TenantPacket{Tenant: tid, Header: perTenant[tid][i]})
		}
	}

	// The flapping storm: delta churn on X from its own goroutine for the
	// whole serving phase, paced so two cores still make serving progress.
	flap := faultinject.NewFlappingUpdater(storm.Rules, pool.Rules, 7306)
	churnCtx, stopChurn := context.WithCancel(context.Background())
	var churn sync.WaitGroup
	churn.Add(1)
	go func() {
		defer churn.Done()
		for churnCtx.Err() == nil {
			if err := hostile.ApplyDelta(flap.NextBurst()); err != nil {
				t.Errorf("hostile churn: %v", err)
				return
			}
			time.Sleep(100 * time.Microsecond)
		}
	}()

	for _, shards := range []int{1, 3, 8} {
		for k := range seen {
			delete(seen, k)
		}
		ts, err := engine.RunTenants(context.Background(), reg,
			engine.Config{Shards: shards, FlowCacheFlows: 256, PreserveOrder: true},
			pkts,
			func(r engine.TenantResult) {
				if r.Err != nil {
					t.Fatalf("shards=%d tenant %d seq %d: %v", shards, r.Tenant, r.Seq, r.Err)
				}
				ord := seen[r.Tenant]
				seen[r.Tenant]++
				if ws, ok := want[r.Tenant]; ok && r.Match != ws[ord] {
					t.Fatalf("shards=%d: steady tenant %d packet %d got match %d, oracle %d — hostile neighbor leaked",
						shards, r.Tenant, ord, r.Match, ws[ord])
				}
			})
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		for _, tid := range []uint32{tidX, tidY, tidZ} {
			bd := ts.Tenants[tid]
			if bd == nil {
				t.Fatalf("shards=%d: tenant %d missing from stats", shards, tid)
			}
			var sum engine.TenantCounts
			for si, sc := range bd.Shards {
				if sc.Offered != sc.Classified+sc.Shed+sc.Canceled+sc.Panicked {
					t.Errorf("shards=%d tenant %d shard %d: identity broken: %+v", shards, tid, si, sc)
				}
				sum.Offered += sc.Offered
				sum.Classified += sc.Classified
			}
			if sum.Offered != uint64(count) || bd.Total.Classified != uint64(count) {
				t.Errorf("shards=%d tenant %d: offered %d classified %d, want %d each",
					shards, tid, sum.Offered, bd.Total.Classified, count)
			}
		}
		reg.Absorb(ts)

		// Isolation: the steady tenants never leave their preferred rung.
		for _, tid := range []tenant.ID{tidY, tidZ} {
			rt := reg.Get(tid)
			if algo, lvl := rt.DescribeAlgorithm(); algo != "expcuts" || lvl != 0 {
				t.Errorf("shards=%d: steady tenant %v degraded to %q level %d beside the hostile tenant",
					shards, tid, algo, lvl)
			}
		}
		if algo, _ := hostile.DescribeAlgorithm(); algo != "linear" {
			t.Errorf("shards=%d: hostile tenant on %q, want linear", shards, algo)
		}
	}

	stopChurn()
	churn.Wait()
	if !hostile.Quiesce(10 * time.Second) {
		t.Fatal("hostile tenant never quiesced after the churn stopped")
	}
	live, _ := hostile.Snapshot()
	if err := flap.CheckAccounting(live); err != nil {
		t.Fatalf("hostile tenant's table diverged from the updater's mirror: %v", err)
	}
	// And X, settled, must agree with the linear oracle over its final
	// snapshot — hostile, degraded, churned, but never wrong.
	final := rules.NewRuleSet("hostile-final", live)
	hdrs := perTenant[tidX]
	finalPkts := make([]engine.TenantPacket, len(hdrs))
	for i, h := range hdrs {
		finalPkts[i] = engine.TenantPacket{Tenant: tidX, Header: h}
	}
	_, err = engine.RunTenants(context.Background(), reg,
		engine.Config{Shards: 3, FlowCacheFlows: 256, PreserveOrder: true},
		finalPkts,
		func(r engine.TenantResult) {
			if r.Err != nil {
				t.Fatalf("settled hostile seq %d: %v", r.Seq, r.Err)
			}
			if wantM := final.Match(r.Header); r.Match != wantM {
				t.Fatalf("settled hostile seq %d: match %d, oracle %d", r.Seq, r.Match, wantM)
			}
		})
	if err != nil {
		t.Fatal(err)
	}

	// The lifetime counters the registry absorbed add up across tenants.
	for _, tid := range []tenant.ID{tidX, tidY, tidZ} {
		c := reg.Get(tid).Counts()
		if c.Offered == 0 || c.Classified != c.Offered-c.Shed-c.Canceled-c.Panicked {
			t.Errorf("tenant %v lifetime counters broken: %+v", tid, c)
		}
	}
}

// TestTenantFlappingAcrossRestarts: remove-and-re-add of a serving
// tenant between runs (registry flapping, as opposed to rule flapping)
// must behave like a fresh tenant: the re-added table serves its own
// answers, and in-between the unknown ID is refused as shed, never
// misrouted to a stale lane.
func TestTenantFlappingAcrossRestarts(t *testing.T) {
	rsA, err := rulegen.Generate(rulegen.Config{Kind: rulegen.Firewall, Size: 80, Seed: 7401})
	if err != nil {
		t.Fatal(err)
	}
	rsB, err := rulegen.Generate(rulegen.Config{Kind: rulegen.CoreRouter, Size: 60, Seed: 7402})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := pktgen.Generate(rsA, pktgen.Config{Count: 600, Seed: 7403, MatchFraction: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	reg := tenant.NewRegistry(tenant.Options{Events: obs.NewRing(64)})
	cfg := tenant.Config{Update: update.Config{ValidateSamples: -1}}
	if _, err := reg.Add(5, rsA, cfg); err != nil {
		t.Fatal(err)
	}
	pkts := make([]engine.TenantPacket, len(tr.Headers))
	for i, h := range tr.Headers {
		pkts[i] = engine.TenantPacket{Tenant: 5, Header: h}
	}
	ecfg := engine.Config{Shards: 3, FlowCacheFlows: 128, PreserveOrder: true}

	run := func(oracle *rules.RuleSet, wantRefused bool) {
		t.Helper()
		ts, err := engine.RunTenants(context.Background(), reg, ecfg, pkts,
			func(r engine.TenantResult) {
				if wantRefused {
					if r.Err == nil {
						t.Fatalf("seq %d served while tenant was removed", r.Seq)
					}
					return
				}
				if r.Err != nil {
					t.Fatalf("seq %d: %v", r.Seq, r.Err)
				}
				if wantM := oracle.Match(r.Header); r.Match != wantM {
					t.Fatalf("seq %d: match %d, oracle %d — stale lane after re-add", r.Seq, r.Match, wantM)
				}
			})
		if err != nil {
			t.Fatal(err)
		}
		bd := ts.Tenants[5]
		if wantRefused && bd.Total.Shed != uint64(len(pkts)) {
			t.Fatalf("removed tenant: %+v, want all %d shed", bd.Total, len(pkts))
		}
	}

	run(rsA, false)
	if !reg.Remove(5) {
		t.Fatal("Remove failed")
	}
	run(nil, true)
	if _, err := reg.Add(5, rsB, cfg); err != nil {
		t.Fatal(err)
	}
	run(rsB, false)
}
