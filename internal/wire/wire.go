// Package wire builds and parses the minimum-size Ethernet/IPv4 frames the
// paper's application receives (§5.2: "receives Ethernet frames that carry
// IPv4 packets ... the Layer-2 headers are removed, then packet
// classification is performed"). It gives traces a wire representation:
// pktgen headers become 64-byte frames, and the Rx stage recovers the
// 5-tuple from raw bytes — including the IPv4 header checksum the real
// receive path verifies.
//
// Only what classification needs is implemented: Ethernet II + IPv4 with
// TCP/UDP port extraction. Transport protocols other than TCP and UDP
// classify with zero ports, as 5-tuple classifiers conventionally do.
package wire

import (
	"encoding/binary"
	"fmt"

	"repro/internal/rules"
)

// FrameSize is the minimum Ethernet frame size (without FCS) the paper's
// throughput numbers assume.
const FrameSize = 64

const (
	ethHeaderLen  = 14
	ipv4HeaderLen = 20
	etherTypeIPv4 = 0x0800
)

// BuildFrame serializes the 5-tuple into a 64-byte Ethernet/IPv4 frame:
// Ethernet II header (zero MACs), IPv4 header with valid checksum, and a
// TCP or UDP header carrying the ports when the protocol is TCP/UDP. The
// remainder is zero padding.
func BuildFrame(h rules.Header) []byte {
	f := make([]byte, FrameSize)
	// Ethernet II: destination and source MACs left zero, EtherType IPv4.
	binary.BigEndian.PutUint16(f[12:14], etherTypeIPv4)

	ip := f[ethHeaderLen:]
	ip[0] = 0x45 // version 4, IHL 5
	totalLen := FrameSize - ethHeaderLen
	binary.BigEndian.PutUint16(ip[2:4], uint16(totalLen))
	ip[8] = 64 // TTL
	ip[9] = h.Proto
	binary.BigEndian.PutUint32(ip[12:16], h.SrcIP)
	binary.BigEndian.PutUint32(ip[16:20], h.DstIP)
	binary.BigEndian.PutUint16(ip[10:12], checksum(ip[:ipv4HeaderLen]))

	l4 := ip[ipv4HeaderLen:]
	switch h.Proto {
	case rules.ProtoTCP:
		binary.BigEndian.PutUint16(l4[0:2], h.SrcPort)
		binary.BigEndian.PutUint16(l4[2:4], h.DstPort)
		l4[12] = 5 << 4 // data offset
	case rules.ProtoUDP:
		binary.BigEndian.PutUint16(l4[0:2], h.SrcPort)
		binary.BigEndian.PutUint16(l4[2:4], h.DstPort)
		binary.BigEndian.PutUint16(l4[4:6], uint16(totalLen-ipv4HeaderLen))
	}
	return f
}

// fragOffsetMask extracts the 13-bit fragment offset from the IPv4
// flags/fragment-offset word.
const fragOffsetMask = 0x1FFF

// ParseFrame recovers the 5-tuple from a frame built like BuildFrame (or
// any Ethernet II / IPv4 frame with an intact header). The IPv4 checksum
// is verified; IP options are honoured via the IHL field.
//
// The L4 slice is bounded by the IPv4 TotalLength, never by the frame
// length alone: minimum-size Ethernet frames are padded to 60+ bytes, so
// a datagram whose TotalLength stops short of a transport header (e.g. a
// 20-byte ICMP-less probe claiming protocol TCP) must be rejected rather
// than have its "ports" read out of link-layer padding. Frames whose
// TotalLength exceeds the bytes actually present are truncated captures
// and are rejected the same way.
//
// Fragments: a non-first fragment (fragment offset > 0) carries payload
// bytes where the transport header would sit, so it classifies with zero
// ports — the convention 5-tuple classifiers use — instead of decoding
// payload as ports. A first fragment (offset 0, MF set) carries the real
// transport header and decodes normally.
func ParseFrame(f []byte) (rules.Header, error) {
	if len(f) < ethHeaderLen+ipv4HeaderLen {
		return rules.Header{}, fmt.Errorf("wire: frame of %d bytes is too short", len(f))
	}
	if et := binary.BigEndian.Uint16(f[12:14]); et != etherTypeIPv4 {
		return rules.Header{}, fmt.Errorf("wire: EtherType %#04x is not IPv4", et)
	}
	ip := f[ethHeaderLen:]
	if version := ip[0] >> 4; version != 4 {
		return rules.Header{}, fmt.Errorf("wire: IP version %d", version)
	}
	ihl := int(ip[0]&0x0F) * 4
	if ihl < ipv4HeaderLen || len(ip) < ihl {
		return rules.Header{}, fmt.Errorf("wire: bad IHL %d", ihl)
	}
	if checksum(ip[:ihl]) != 0 {
		return rules.Header{}, fmt.Errorf("wire: IPv4 header checksum mismatch")
	}
	totalLen := int(binary.BigEndian.Uint16(ip[2:4]))
	if totalLen < ihl {
		return rules.Header{}, fmt.Errorf("wire: TotalLength %d shorter than the %d-byte IP header", totalLen, ihl)
	}
	if totalLen > len(ip) {
		return rules.Header{}, fmt.Errorf("wire: TotalLength %d exceeds the %d bytes on the wire", totalLen, len(ip))
	}
	h := rules.Header{
		SrcIP: binary.BigEndian.Uint32(ip[12:16]),
		DstIP: binary.BigEndian.Uint32(ip[16:20]),
		Proto: ip[9],
	}
	if h.Proto == rules.ProtoTCP || h.Proto == rules.ProtoUDP {
		if fragOffset := binary.BigEndian.Uint16(ip[6:8]) & fragOffsetMask; fragOffset > 0 {
			// Non-first fragment: the bytes at ihl are payload, not a
			// transport header. Zero ports, like any 5-tuple classifier.
			return h, nil
		}
		// The transport header must fit inside the datagram TotalLength
		// describes, not merely inside the (padded) frame.
		if totalLen < ihl+4 {
			return rules.Header{}, fmt.Errorf("wire: TotalLength %d leaves no room for a transport header after the %d-byte IP header", totalLen, ihl)
		}
		l4 := ip[ihl:totalLen]
		h.SrcPort = binary.BigEndian.Uint16(l4[0:2])
		h.DstPort = binary.BigEndian.Uint16(l4[2:4])
	}
	return h, nil
}

// checksum computes the RFC 791 ones-complement header checksum; over a
// header with a correct checksum field it returns 0.
func checksum(b []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(b); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(b[i : i+2]))
	}
	if len(b)%2 == 1 {
		sum += uint32(b[len(b)-1]) << 8
	}
	for sum>>16 != 0 {
		sum = sum&0xFFFF + sum>>16
	}
	return ^uint16(sum)
}

// BuildTrace serializes every header of a trace into frames.
func BuildTrace(headers []rules.Header) [][]byte {
	out := make([][]byte, len(headers))
	for i, h := range headers {
		out[i] = BuildFrame(h)
	}
	return out
}

// ParseTrace parses frames back into headers, failing on the first
// malformed frame.
func ParseTrace(frames [][]byte) ([]rules.Header, error) {
	out := make([]rules.Header, len(frames))
	for i, f := range frames {
		h, err := ParseFrame(f)
		if err != nil {
			return nil, fmt.Errorf("wire: frame %d: %w", i, err)
		}
		out[i] = h
	}
	return out, nil
}
