package wire

import (
	"encoding/binary"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/pktgen"
	"repro/internal/rules"
)

func TestRoundTripTCPUDP(t *testing.T) {
	f := func(src, dst uint32, sp, dp uint16, udp bool) bool {
		proto := uint8(rules.ProtoTCP)
		if udp {
			proto = rules.ProtoUDP
		}
		in := rules.Header{SrcIP: src, DstIP: dst, SrcPort: sp, DstPort: dp, Proto: proto}
		frame := BuildFrame(in)
		if len(frame) != FrameSize {
			return false
		}
		out, err := ParseFrame(frame)
		return err == nil && out == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestRoundTripOtherProtocols(t *testing.T) {
	// Non-TCP/UDP protocols carry no ports on the wire; the parsed header
	// has zero ports by convention.
	in := rules.Header{SrcIP: 1, DstIP: 2, SrcPort: 99, DstPort: 100, Proto: rules.ProtoICMP}
	out, err := ParseFrame(BuildFrame(in))
	if err != nil {
		t.Fatal(err)
	}
	want := in
	want.SrcPort, want.DstPort = 0, 0
	if out != want {
		t.Errorf("parsed %v, want %v", out, want)
	}
}

func TestChecksumIsValidAndChecked(t *testing.T) {
	h := rules.Header{SrcIP: 0x0A000001, DstIP: 0x0B000002, SrcPort: 1, DstPort: 2, Proto: rules.ProtoTCP}
	frame := BuildFrame(h)
	// The embedded checksum must verify.
	if _, err := ParseFrame(frame); err != nil {
		t.Fatal(err)
	}
	// Corrupt one IP header byte: parsing must fail.
	frame[ethHeaderLen+15] ^= 0x01
	if _, err := ParseFrame(frame); err == nil {
		t.Error("corrupted header parsed successfully")
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	good := BuildFrame(rules.Header{Proto: rules.ProtoTCP})
	cases := map[string]func() []byte{
		"short": func() []byte { return good[:20] },
		"wrong-ethertype": func() []byte {
			f := append([]byte(nil), good...)
			binary.BigEndian.PutUint16(f[12:14], 0x86DD)
			return f
		},
		"wrong-version": func() []byte {
			f := append([]byte(nil), good...)
			f[ethHeaderLen] = 0x65
			return f
		},
		"bad-ihl": func() []byte {
			f := append([]byte(nil), good...)
			f[ethHeaderLen] = 0x42 // IHL 2 (8 bytes) < 20
			return f
		},
	}
	for name, build := range cases {
		if _, err := ParseFrame(build()); err == nil {
			t.Errorf("%s: malformed frame parsed successfully", name)
		}
	}
}

func TestIPOptionsHonored(t *testing.T) {
	// Hand-build a frame with IHL 6 (one option word); ports must be
	// found after the options.
	h := rules.Header{SrcIP: 7, DstIP: 8, SrcPort: 1234, DstPort: 80, Proto: rules.ProtoTCP}
	f := make([]byte, FrameSize)
	binary.BigEndian.PutUint16(f[12:14], etherTypeIPv4)
	ip := f[ethHeaderLen:]
	ip[0] = 0x46 // IHL 6
	ip[9] = h.Proto
	binary.BigEndian.PutUint32(ip[12:16], h.SrcIP)
	binary.BigEndian.PutUint32(ip[16:20], h.DstIP)
	// ip[20:24] is the option word (zeros = EOL padding).
	binary.BigEndian.PutUint16(ip[10:12], checksum(ip[:24]))
	l4 := ip[24:]
	binary.BigEndian.PutUint16(l4[0:2], h.SrcPort)
	binary.BigEndian.PutUint16(l4[2:4], h.DstPort)

	out, err := ParseFrame(f)
	if err != nil {
		t.Fatal(err)
	}
	if out != h {
		t.Errorf("parsed %v, want %v", out, h)
	}
}

func TestTraceRoundTripAndClassification(t *testing.T) {
	// Build frames from a generated trace, parse them back, and confirm
	// classification agrees on the parsed headers (for TCP/UDP traffic,
	// which the generator dominates).
	rs := rules.NewRuleSet("wire", []rules.Rule{
		{SrcPort: rules.FullPortRange, DstPort: rules.PortRange{Lo: 80, Hi: 80},
			Proto: rules.ProtoMatch{Value: rules.ProtoTCP}},
		{SrcPort: rules.FullPortRange, DstPort: rules.FullPortRange, Proto: rules.AnyProto},
	})
	rng := rand.New(rand.NewSource(5))
	headers := make([]rules.Header, 500)
	for i := range headers {
		headers[i] = pktgen.RandomHeader(rng)
	}
	frames := BuildTrace(headers)
	parsed, err := ParseTrace(frames)
	if err != nil {
		t.Fatal(err)
	}
	for i := range headers {
		h := headers[i]
		if h.Proto != rules.ProtoTCP && h.Proto != rules.ProtoUDP {
			h.SrcPort, h.DstPort = 0, 0 // ports are not on the wire
		}
		if parsed[i] != h {
			t.Fatalf("frame %d: parsed %v, want %v", i, parsed[i], h)
		}
		if rs.Match(parsed[i]) != rs.Match(h) {
			t.Fatalf("frame %d: classification changed across the wire", i)
		}
	}
}
