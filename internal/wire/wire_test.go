package wire

import (
	"encoding/binary"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/pktgen"
	"repro/internal/rules"
)

func TestRoundTripTCPUDP(t *testing.T) {
	f := func(src, dst uint32, sp, dp uint16, udp bool) bool {
		proto := uint8(rules.ProtoTCP)
		if udp {
			proto = rules.ProtoUDP
		}
		in := rules.Header{SrcIP: src, DstIP: dst, SrcPort: sp, DstPort: dp, Proto: proto}
		frame := BuildFrame(in)
		if len(frame) != FrameSize {
			return false
		}
		out, err := ParseFrame(frame)
		return err == nil && out == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestRoundTripOtherProtocols(t *testing.T) {
	// Non-TCP/UDP protocols carry no ports on the wire; the parsed header
	// has zero ports by convention.
	in := rules.Header{SrcIP: 1, DstIP: 2, SrcPort: 99, DstPort: 100, Proto: rules.ProtoICMP}
	out, err := ParseFrame(BuildFrame(in))
	if err != nil {
		t.Fatal(err)
	}
	want := in
	want.SrcPort, want.DstPort = 0, 0
	if out != want {
		t.Errorf("parsed %v, want %v", out, want)
	}
}

func TestChecksumIsValidAndChecked(t *testing.T) {
	h := rules.Header{SrcIP: 0x0A000001, DstIP: 0x0B000002, SrcPort: 1, DstPort: 2, Proto: rules.ProtoTCP}
	frame := BuildFrame(h)
	// The embedded checksum must verify.
	if _, err := ParseFrame(frame); err != nil {
		t.Fatal(err)
	}
	// Corrupt one IP header byte: parsing must fail.
	frame[ethHeaderLen+15] ^= 0x01
	if _, err := ParseFrame(frame); err == nil {
		t.Error("corrupted header parsed successfully")
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	good := BuildFrame(rules.Header{Proto: rules.ProtoTCP})
	cases := map[string]func() []byte{
		"short": func() []byte { return good[:20] },
		"wrong-ethertype": func() []byte {
			f := append([]byte(nil), good...)
			binary.BigEndian.PutUint16(f[12:14], 0x86DD)
			return f
		},
		"wrong-version": func() []byte {
			f := append([]byte(nil), good...)
			f[ethHeaderLen] = 0x65
			return f
		},
		"bad-ihl": func() []byte {
			f := append([]byte(nil), good...)
			f[ethHeaderLen] = 0x42 // IHL 2 (8 bytes) < 20
			return f
		},
	}
	for name, build := range cases {
		if _, err := ParseFrame(build()); err == nil {
			t.Errorf("%s: malformed frame parsed successfully", name)
		}
	}
}

func TestIPOptionsHonored(t *testing.T) {
	// Hand-build a frame with IHL 6 (one option word); ports must be
	// found after the options.
	h := rules.Header{SrcIP: 7, DstIP: 8, SrcPort: 1234, DstPort: 80, Proto: rules.ProtoTCP}
	f := optionsFrame(h, 0)
	out, err := ParseFrame(f)
	if err != nil {
		t.Fatal(err)
	}
	if out != h {
		t.Errorf("parsed %v, want %v", out, h)
	}
}

// optionsFrame hand-builds a frame with IHL 6 (one option word of EOL
// padding) and the given fragment flags/offset word, with a correct
// checksum and a TotalLength covering header + transport words.
func optionsFrame(h rules.Header, flagsFrag uint16) []byte {
	f := make([]byte, FrameSize)
	binary.BigEndian.PutUint16(f[12:14], etherTypeIPv4)
	ip := f[ethHeaderLen:]
	ip[0] = 0x46 // IHL 6
	binary.BigEndian.PutUint16(ip[2:4], uint16(FrameSize-ethHeaderLen))
	binary.BigEndian.PutUint16(ip[6:8], flagsFrag)
	ip[9] = h.Proto
	binary.BigEndian.PutUint32(ip[12:16], h.SrcIP)
	binary.BigEndian.PutUint32(ip[16:20], h.DstIP)
	binary.BigEndian.PutUint16(ip[10:12], checksum(ip[:24]))
	l4 := ip[24:]
	binary.BigEndian.PutUint16(l4[0:2], h.SrcPort)
	binary.BigEndian.PutUint16(l4[2:4], h.DstPort)
	return f
}

// setTotalLen rewrites the frame's IPv4 TotalLength and re-checksums the
// header so only the length validation, not the checksum, is under test.
func setTotalLen(f []byte, totalLen int) {
	ip := f[ethHeaderLen:]
	ihl := int(ip[0]&0x0F) * 4
	binary.BigEndian.PutUint16(ip[2:4], uint16(totalLen))
	binary.BigEndian.PutUint16(ip[10:12], 0)
	binary.BigEndian.PutUint16(ip[10:12], checksum(ip[:ihl]))
}

// setFragment rewrites the frame's flags/fragment-offset word (offset in
// 8-byte units) and re-checksums the header.
func setFragment(f []byte, flagsFrag uint16) {
	ip := f[ethHeaderLen:]
	ihl := int(ip[0]&0x0F) * 4
	binary.BigEndian.PutUint16(ip[6:8], flagsFrag)
	binary.BigEndian.PutUint16(ip[10:12], 0)
	binary.BigEndian.PutUint16(ip[10:12], checksum(ip[:ihl]))
}

// TestTotalLengthBoundsTransportDecode covers the padding bug: an IPv4
// datagram whose TotalLength stops short of a transport header must be
// rejected, never have its ports read out of Ethernet padding — even
// when the padding bytes are crafted to look like plausible ports.
func TestTotalLengthBoundsTransportDecode(t *testing.T) {
	base := rules.Header{SrcIP: 0x0A000001, DstIP: 0xC0A80001, SrcPort: 443, DstPort: 8443, Proto: rules.ProtoTCP}
	cases := []struct {
		name     string
		proto    uint8
		totalLen int
		wantErr  bool
	}{
		{"tcp-header-only-datagram", rules.ProtoTCP, 20, true},      // TotalLength == IHL: no room for ports
		{"tcp-two-byte-l4", rules.ProtoTCP, 22, true},               // room for SrcPort only
		{"udp-header-only-datagram", rules.ProtoUDP, 20, true},      // same for UDP
		{"tcp-minimal-l4", rules.ProtoTCP, 24, false},               // exactly ihl+4: ports decode
		{"icmp-header-only", rules.ProtoICMP, 20, false},            // no ports wanted: fine
		{"total-shorter-than-header", rules.ProtoTCP, 8, true},      // TotalLength < IHL
		{"total-beyond-frame", rules.ProtoTCP, FrameSize + 1, true}, // truncated capture
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h := base
			h.Proto = tc.proto
			f := BuildFrame(h)
			// Fill the padding beyond the claimed datagram with bytes that
			// decode as attractive-looking ports; the parser must never
			// see them.
			for i := ethHeaderLen + tc.totalLen; i >= 0 && i < len(f); i++ {
				f[i] = 0x35 // 0x3535 = port 13621
			}
			setTotalLen(f, tc.totalLen)
			got, err := ParseFrame(f)
			if tc.wantErr {
				if err == nil {
					t.Fatalf("TotalLength %d parsed successfully as %+v; want rejection", tc.totalLen, got)
				}
				return
			}
			if err != nil {
				t.Fatalf("TotalLength %d: %v", tc.totalLen, err)
			}
			want := h
			if h.Proto != rules.ProtoTCP && h.Proto != rules.ProtoUDP {
				want.SrcPort, want.DstPort = 0, 0
			}
			if got != want {
				t.Fatalf("parsed %+v, want %+v (poison padding leaked into the decode)", got, want)
			}
		})
	}
}

// TestFragmentsClassifyWithZeroPorts covers the fragment bug: a non-first
// fragment's payload starts where the transport header would, so decoding
// ports from it reads arbitrary payload bytes. Such frames must classify
// with zero ports; first fragments (offset 0, MF set) carry the real
// transport header and must decode normally.
func TestFragmentsClassifyWithZeroPorts(t *testing.T) {
	const moreFragments = 0x2000 // MF flag in the flags/frag-offset word
	base := rules.Header{SrcIP: 0x01020304, DstIP: 0x05060708, SrcPort: 31337, DstPort: 53, Proto: rules.ProtoTCP}
	cases := []struct {
		name      string
		proto     uint8
		flagsFrag uint16
		wantPorts bool
	}{
		{"tcp-unfragmented", rules.ProtoTCP, 0, true},
		{"tcp-first-fragment", rules.ProtoTCP, moreFragments, true}, // offset 0: real header present
		{"tcp-second-fragment", rules.ProtoTCP, moreFragments | 1, false},
		{"tcp-last-fragment", rules.ProtoTCP, 185, false}, // offset 185*8, MF clear
		{"udp-second-fragment", rules.ProtoUDP, moreFragments | 1, false},
		{"udp-max-offset", rules.ProtoUDP, 0x1FFF, false},
		{"tcp-dont-fragment", rules.ProtoTCP, 0x4000, true}, // DF alone never hides the header
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h := base
			h.Proto = tc.proto
			f := BuildFrame(h)
			setFragment(f, tc.flagsFrag)
			got, err := ParseFrame(f)
			if err != nil {
				t.Fatal(err)
			}
			want := h
			if !tc.wantPorts {
				want.SrcPort, want.DstPort = 0, 0
			}
			if got != want {
				t.Fatalf("flags/frag %#04x: parsed %+v, want %+v", tc.flagsFrag, got, want)
			}
		})
	}
}

// TestFragmentWithIPOptions combines both corner cases: IHL > 5 and a
// non-zero fragment offset. The option words must be skipped and the
// payload-after-options still must not be decoded as ports.
func TestFragmentWithIPOptions(t *testing.T) {
	h := rules.Header{SrcIP: 9, DstIP: 10, SrcPort: 7777, DstPort: 8888, Proto: rules.ProtoUDP}
	// Non-first fragment with options: ports must come back zero.
	f := optionsFrame(h, 0x2000|2)
	got, err := ParseFrame(f)
	if err != nil {
		t.Fatal(err)
	}
	want := h
	want.SrcPort, want.DstPort = 0, 0
	if got != want {
		t.Fatalf("fragment with options parsed %+v, want %+v", got, want)
	}
	// First fragment with options: ports decode from after the options.
	f = optionsFrame(h, 0x2000)
	got, err = ParseFrame(f)
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Fatalf("first fragment with options parsed %+v, want %+v", got, h)
	}
	// Options eating the whole datagram: IHL 6 but TotalLength 24 leaves
	// no transport bytes for a UDP datagram — reject.
	f = optionsFrame(h, 0)
	setTotalLen(f, 24)
	if parsed, err := ParseFrame(f); err == nil {
		t.Fatalf("options+short TotalLength parsed as %+v; want rejection", parsed)
	}
}

func TestTraceRoundTripAndClassification(t *testing.T) {
	// Build frames from a generated trace, parse them back, and confirm
	// classification agrees on the parsed headers (for TCP/UDP traffic,
	// which the generator dominates).
	rs := rules.NewRuleSet("wire", []rules.Rule{
		{SrcPort: rules.FullPortRange, DstPort: rules.PortRange{Lo: 80, Hi: 80},
			Proto: rules.ProtoMatch{Value: rules.ProtoTCP}},
		{SrcPort: rules.FullPortRange, DstPort: rules.FullPortRange, Proto: rules.AnyProto},
	})
	rng := rand.New(rand.NewSource(5))
	headers := make([]rules.Header, 500)
	for i := range headers {
		headers[i] = pktgen.RandomHeader(rng)
	}
	frames := BuildTrace(headers)
	parsed, err := ParseTrace(frames)
	if err != nil {
		t.Fatal(err)
	}
	for i := range headers {
		h := headers[i]
		if h.Proto != rules.ProtoTCP && h.Proto != rules.ProtoUDP {
			h.SrcPort, h.DstPort = 0, 0 // ports are not on the wire
		}
		if parsed[i] != h {
			t.Fatalf("frame %d: parsed %v, want %v", i, parsed[i], h)
		}
		if rs.Match(parsed[i]) != rs.Match(h) {
			t.Fatalf("frame %d: classification changed across the wire", i)
		}
	}
}
