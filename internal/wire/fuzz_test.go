package wire

import (
	"testing"

	"repro/internal/rules"
)

// FuzzParseFrame asserts the decode path is total: arbitrary bytes —
// truncated frames, bit-flipped headers, lying IHL fields, short or
// overlong TotalLengths, fragment offsets — either parse or return an
// error. It must never panic or index out of range.
func FuzzParseFrame(f *testing.F) {
	// Seed with well-formed frames across protocols...
	seeds := []rules.Header{
		{SrcIP: 0x0A000001, DstIP: 0xC0A80001, SrcPort: 1234, DstPort: 80, Proto: rules.ProtoTCP},
		{SrcIP: 0xFFFFFFFF, DstIP: 0, SrcPort: 0, DstPort: 65535, Proto: rules.ProtoUDP},
		{SrcIP: 1, DstIP: 2, Proto: 1}, // ICMP: no ports
		{},
	}
	for _, h := range seeds {
		f.Add(BuildFrame(h))
	}
	// ...and degenerate inputs.
	f.Add([]byte{})
	f.Add([]byte{0x45})
	f.Add(make([]byte, 13))
	f.Add(make([]byte, FrameSize))
	// A frame whose IHL claims options beyond the buffer.
	bad := BuildFrame(seeds[0])
	bad[14] = 0x4F // IHL 15 -> 60-byte header
	f.Add(bad)
	// TotalLength corner cases: a datagram claiming to end inside its own
	// IP header, one ending exactly at the header (no transport bytes for
	// a TCP frame), one two bytes into the transport header, and ones
	// claiming more bytes than the frame carries (truncated captures).
	for _, totalLen := range []int{8, 20, 22, FrameSize - ethHeaderLen + 1, 0xFFFF} {
		short := BuildFrame(seeds[0])
		setTotalLen(short, totalLen)
		f.Add(short)
	}
	// Fragment corner cases: first fragment (MF, offset 0), a non-first
	// TCP fragment, the maximum offset, DF alone, and a fragmented frame
	// with IP options.
	for _, flagsFrag := range []uint16{0x2000, 0x2001, 0x1FFF, 0x4000} {
		frag := BuildFrame(seeds[1])
		setFragment(frag, flagsFrag)
		f.Add(frag)
	}
	f.Add(optionsFrame(seeds[0], 0x2000|3))
	// Fragmented with a TotalLength stopping at the IP header: both
	// validations interact.
	both := BuildFrame(seeds[0])
	setFragment(both, 0x2002)
	setTotalLen(both, 20)
	f.Add(both)

	f.Fuzz(func(t *testing.T, data []byte) {
		h, err := ParseFrame(data)
		if err != nil {
			return
		}
		// A frame that parses must re-serialize into a frame that parses
		// to the same 5-tuple (BuildFrame normalizes, so only the tuple
		// round-trips, not the raw bytes).
		h2, err := ParseFrame(BuildFrame(h))
		if err != nil {
			t.Fatalf("rebuilt frame failed to parse: %v", err)
		}
		if h2 != h {
			t.Fatalf("5-tuple changed across rebuild: %+v -> %+v", h, h2)
		}
	})
}
