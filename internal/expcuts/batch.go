package expcuts

import (
	"math/bits"
	"sync"

	"repro/internal/rules"
)

// batchScratch is the per-call scratch of ClassifyBatch, recycled through
// a pool so the steady-state batch path allocates nothing. Only the packed
// keys need scratch space: the per-packet tree position is carried in the
// caller's out slice itself (a ref fits an int), so no second array is
// touched in the hot loop.
type batchScratch struct {
	keys []rules.Key
}

var batchPool = sync.Pool{New: func() any { return new(batchScratch) }}

// maxPooledBatch caps how large a scratch buffer the batch pools retain, in
// packets. Scratch grown past this by a one-off jumbo batch is dropped on
// Put instead of pinned in the pool forever (the engine's own batches are
// bounded well below this; only direct callers can exceed it).
const maxPooledBatch = 4096

// release returns the scratch to the pool unless a jumbo batch grew it past
// the retention cap.
func (sc *batchScratch) release() {
	if cap(sc.keys) > maxPooledBatch {
		sc.keys = nil
	}
	batchPool.Put(sc)
}

// ClassifyBatch classifies hs[i] into out[i] (the engine's BatchClassifier
// contract; out must be at least as long as hs). It computes every packet's
// 104-bit key up front, then walks the flat node arena level-synchronously:
// all packets advance through level 0 before any packet touches level 1, so
// a node's HABS word and CPA sub-arrays that several packets traverse are
// hot in cache when the second packet arrives instead of evicted by an
// unrelated full-depth walk. The fixed stride makes the levels line up
// exactly — the batched analogue of the paper's explicit-depth guarantee
// (every packet finishes in at most ⌈104/w⌉ rounds).
//
// The steady state performs zero heap allocations; answers are identical
// to per-packet Classify.
func (t *Tree) ClassifyBatch(hs []rules.Header, out []int) {
	n := len(hs)
	out = out[:n]
	if n == 0 {
		return
	}
	if t.root < 0 {
		// Degenerate tree: the root is itself a leaf.
		m := decodeRef(t.root)
		for i := range out {
			out[i] = m
		}
		return
	}
	sc := batchPool.Get().(*batchScratch)
	keys := sc.keys
	if cap(keys) < n {
		keys = make([]rules.Key, n)
	}
	keys = keys[:n]
	for i, h := range hs {
		keys[i] = h.Key()
	}

	w := t.cfg.StrideW
	u := w - t.cfg.HabsV
	lowU := uint32(1)<<u - 1
	habs, cpaBase, cpa := t.ar.habs, t.ar.cpaBase, t.ar.cpa
	for i := range out {
		out[i] = int(t.root)
	}
	active := n
	for pos := uint(0); active > 0 && pos < rules.KeyBits; pos += w {
		for i := 0; i < n; i++ {
			r := ref(out[i])
			if r < 0 {
				continue
			}
			c := keys[i].Bits(pos, w)
			rank := uint32(bits.OnesCount64(habs[r]&(uint64(2)<<(c>>u)-1))) - 1
			r = cpa[cpaBase[r]+rank<<u+(c&lowU)]
			out[i] = int(r)
			if r < 0 {
				active--
			}
		}
	}
	for i := range out {
		out[i] = decodeRef(ref(out[i]))
	}

	sc.keys = keys
	sc.release()
}

// decodeRef converts a terminal ref to the Classify return convention.
func decodeRef(r ref) int {
	if r == refNoMatch {
		return -1
	}
	return refRule(r)
}
