package expcuts

// reorderLevelMajor renumbers t.nodes into BFS level-major order: all level-0
// nodes first, then level 1, and so on, preserving the original id order
// within each level. After the reorder the arena built over t.nodes has every
// level's habs/cpaBase entries (and, because buildArena appends CPA sub-arrays
// in node order, its cpa words) contiguous — the software analogue of the
// paper's per-level SRAM banks, and what makes the pipelined walk's next-level
// lines predictable instead of scattered across the build's recursion order.
//
// The serialized image is byte-identical to the pre-reorder layout: serialize
// groups nodes by level and, within a level, emits them in ascending id order.
// A stable level-major sort changes neither the per-level membership nor the
// within-level relative order, so every node lands at the same image offset.
// TestReorderImageByteIdentical pins this down against a build with the
// reorder disabled.
func (t *Tree) reorderLevelMajor() {
	if len(t.nodes) == 0 {
		return
	}
	depth := t.Depth()
	t.levelOff = make([]int32, depth+1)
	for _, n := range t.nodes {
		t.levelOff[n.level+1]++
	}
	for l := 0; l < depth; l++ {
		t.levelOff[l+1] += t.levelOff[l]
	}
	next := make([]int32, depth)
	copy(next, t.levelOff[:depth])
	remap := make([]ref, len(t.nodes))
	for id, n := range t.nodes {
		remap[id] = next[n.level]
		next[n.level]++
	}
	reordered := make([]*node, len(t.nodes))
	for id, n := range t.nodes {
		reordered[remap[id]] = n
		for i, p := range n.ptrs {
			if p >= 0 {
				n.ptrs[i] = remap[p]
			}
		}
	}
	t.nodes = reordered
	if t.root >= 0 {
		t.root = remap[t.root]
	}
}
