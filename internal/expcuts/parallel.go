package expcuts

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/buildgov"
	"repro/internal/rules"
)

// buildParallel constructs the tree with cfg.BuildWorkers builder
// goroutines. The root's 2^w cells are statically partitioned into
// contiguous chunks — one worker per chunk, each with its own node slice,
// memo scope and signature scratch — so workers share no mutable state
// except the governor and the MaxNodes counter, both atomic. After the
// join, the worker node slices are concatenated in worker order with a
// single ref-offset remap pass, and the root node is assembled last
// (matching the sequential build's root-last ordering).
//
// The static partition makes the result deterministic for a fixed worker
// count. It classifies identically to a sequential build but is not
// node-for-node identical: ShareGlobal deduplication happens within each
// worker rather than across the whole tree, so a parallel tree may hold
// more (never fewer-matching) nodes. Budget exactness is unaffected —
// every appended node and memo entry is charged exactly once, and a trip
// by any worker is sticky for all of them, which is what bounds a tripped
// build's unwind time under fan-out.
func (t *Tree) buildParallel(gov *buildgov.Governor, count *atomic.Int64, all []int32, workers int) (ref, error) {
	// Root terminal cases, mirroring the top of builder.build.
	box := rules.FullBox()
	for k, ri := range all {
		if t.rs.Rules[ri].Box().Covers(box) {
			all = all[:k+1]
			break
		}
	}
	if len(all) == 0 {
		return refNoMatch, nil
	}
	if t.rs.Rules[all[0]].Box().Covers(box) {
		return refLeaf(int(all[0])), nil
	}

	w := t.cfg.StrideW
	dim := dimOfBit(0)
	cells := 1 << w
	log2cw := uint(rules.DimBits[dim]) - w
	cellRules := make([][]int32, cells)
	boxLo := box[dim].Lo
	for _, ri := range all {
		clip, ok := t.rs.Rules[ri].Span(dim).Intersect(box[dim])
		if !ok {
			continue
		}
		lo := int(uint64(clip.Lo-boxLo) >> log2cw)
		hi := int(uint64(clip.Hi-boxLo) >> log2cw)
		for c := lo; c <= hi; c++ {
			cellRules[c] = append(cellRules[c], ri)
		}
	}

	if workers > cells {
		workers = cells
	}
	type chunk struct {
		b        *builder
		lo, hi   int   // root cell range [lo, hi)
		children []ref // worker-local refs for those cells
		err      error
	}
	chunks := make([]*chunk, workers)
	var wg sync.WaitGroup
	for k := 0; k < workers; k++ {
		cb := &builder{t: t, mode: t.cfg.Sharing, gov: gov, count: count}
		if cb.mode == ShareGlobal {
			cb.memo = make(map[string]ref)
		}
		ck := &chunk{b: cb, lo: k * cells / workers, hi: (k + 1) * cells / workers}
		ck.children = make([]ref, ck.hi-ck.lo)
		chunks[k] = ck
		wg.Add(1)
		go func() {
			defer wg.Done()
			// ShareSiblings scope: the root's children in this chunk
			// share one memo (the sequential build shares across all 2^w
			// siblings; per-chunk scoping only reduces deduplication).
			childMemo := cb.memo
			if cb.mode == ShareSiblings {
				childMemo = make(map[string]ref)
			}
			for c := ck.lo; c < ck.hi; c++ {
				cellBox := box
				cellBox[dim] = rules.Span{
					Lo: boxLo + uint32(uint64(c)<<log2cw),
					Hi: boxLo + uint32(uint64(c+1)<<log2cw) - 1,
				}
				r, err := cb.build(w, cellBox, cellRules[c], childMemo)
				if err != nil {
					ck.err = err
					return
				}
				ck.children[c-ck.lo] = r
			}
		}()
	}
	wg.Wait()

	// Prefer the governor's sticky error so every caller of a tripped
	// build sees the same *BudgetError regardless of which worker(s) also
	// failed for secondary reasons.
	if err := gov.Err(); err != nil {
		return 0, err
	}
	for _, ck := range chunks {
		if ck.err != nil {
			return 0, ck.err
		}
	}

	// Merge: concatenate worker node slices in worker order, remapping
	// worker-local node refs by each worker's base offset.
	total := 0
	offsets := make([]ref, workers)
	for k, ck := range chunks {
		offsets[k] = ref(total)
		total += len(ck.b.nodes)
	}
	t.nodes = make([]*node, 0, total+1)
	for k, ck := range chunks {
		off := offsets[k]
		for _, n := range ck.b.nodes {
			if off != 0 {
				for i, p := range n.ptrs {
					if p >= 0 {
						n.ptrs[i] = p + off
					}
				}
			}
			t.nodes = append(t.nodes, n)
		}
	}

	root := &node{level: 0, ptrs: make([]ref, cells)}
	for k, ck := range chunks {
		for i, r := range ck.children {
			if r >= 0 {
				r += offsets[k]
			}
			root.ptrs[ck.lo+i] = r
		}
	}
	if int(count.Add(1)) > t.cfg.MaxNodes {
		return 0, fmt.Errorf("expcuts: node budget %d exhausted (rule set %q, w=%d, sharing %v)",
			t.cfg.MaxNodes, t.rs.Name, w, t.cfg.Sharing)
	}
	if err := gov.Nodes(1, int64(cells)*8+nodeOverheadBytes); err != nil {
		return 0, err
	}
	id := ref(len(t.nodes))
	t.nodes = append(t.nodes, root)
	return id, nil
}
