package expcuts

import (
	"testing"

	"repro/internal/pktgen"
	"repro/internal/rulegen"
	"repro/internal/rules"
)

func buildSet(t *testing.T, kind rulegen.Kind, size int, seed int64) *rules.RuleSet {
	t.Helper()
	rs, err := rulegen.Generate(rulegen.Config{Kind: kind, Size: size, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return rs
}

func trace(t *testing.T, rs *rules.RuleSet, n int, seed int64) []rules.Header {
	t.Helper()
	tr, err := pktgen.Generate(rs, pktgen.Config{Count: n, Seed: seed, MatchFraction: 0.85})
	if err != nil {
		t.Fatal(err)
	}
	return tr.Headers
}

func TestClassifyMatchesOracle(t *testing.T) {
	for _, tc := range []struct {
		kind rulegen.Kind
		size int
	}{
		{rulegen.Firewall, 85},
		{rulegen.Firewall, 310},
		{rulegen.CoreRouter, 300},
		{rulegen.Random, 60},
	} {
		rs := buildSet(t, tc.kind, tc.size, 61)
		tree, err := New(rs, Config{})
		if err != nil {
			t.Fatalf("%v/%d: %v", tc.kind, tc.size, err)
		}
		for _, h := range trace(t, rs, 2000, 62) {
			if got, want := tree.Classify(h), rs.Match(h); got != want {
				t.Fatalf("%v/%d: Classify(%v) = %d, oracle = %d", tc.kind, tc.size, h, got, want)
			}
		}
	}
}

func TestAllStridesMatchOracle(t *testing.T) {
	rs := buildSet(t, rulegen.Firewall, 120, 63)
	headers := trace(t, rs, 800, 64)
	for _, w := range []uint{1, 2, 4, 8} {
		tree, err := New(rs, Config{StrideW: w})
		if err != nil {
			t.Fatalf("w=%d: %v", w, err)
		}
		if got, want := tree.Depth(), int(104/w); got != want {
			t.Errorf("w=%d: depth %d, want %d", w, got, want)
		}
		for _, h := range headers {
			if got, want := tree.Classify(h), rs.Match(h); got != want {
				t.Fatalf("w=%d: Classify(%v) = %d, oracle = %d", w, h, got, want)
			}
		}
		if err := tree.Verify(headers[:200]); err != nil {
			t.Fatalf("w=%d: %v", w, err)
		}
	}
}

func TestHabsVariants(t *testing.T) {
	rs := buildSet(t, rulegen.CoreRouter, 150, 65)
	headers := trace(t, rs, 500, 66)
	for _, v := range []uint{1, 2, 4, 5} {
		tree, err := New(rs, Config{StrideW: 8, HabsV: v})
		if err != nil {
			t.Fatalf("v=%d: %v", v, err)
		}
		if err := tree.Verify(headers); err != nil {
			t.Fatalf("v=%d: %v", v, err)
		}
	}
}

func TestSerializedLookupMatchesNative(t *testing.T) {
	rs := buildSet(t, rulegen.CoreRouter, 400, 67)
	tree, err := New(rs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.Verify(trace(t, rs, 3000, 68)); err != nil {
		t.Fatal(err)
	}
}

func TestFullTreeMatchesAggregated(t *testing.T) {
	rs := buildSet(t, rulegen.Firewall, 150, 69)
	tree, err := New(rs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	full, err := tree.Full()
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range trace(t, rs, 1000, 70) {
		want := tree.Classify(h)
		p := full.Program(h)
		if p.Result != want {
			t.Fatalf("full lookup %d != native %d for %v", p.Result, want, h)
		}
		// Full variant: exactly one access per level walked, all 1 word.
		if p.Accesses() > tree.Depth() {
			t.Fatalf("full lookup used %d accesses, depth %d", p.Accesses(), tree.Depth())
		}
	}
}

func TestAggregationShrinksMemory(t *testing.T) {
	rs := buildSet(t, rulegen.CoreRouter, 300, 71)
	tree, err := New(rs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	st := tree.Stats()
	if st.MemoryWordsAggregated >= st.MemoryWordsFull {
		t.Errorf("aggregated %d words >= full %d words; HABS should compress",
			st.MemoryWordsAggregated, st.MemoryWordsFull)
	}
	ratio := float64(st.MemoryWordsAggregated) / float64(st.MemoryWordsFull)
	if ratio > 0.6 {
		t.Errorf("aggregation ratio %.2f; paper reports ~0.15", ratio)
	}
	// The stats estimate must equal the real serialized image.
	if st.MemoryWordsAggregated != tree.Image().TotalWords() {
		t.Errorf("stats words %d != image words %d", st.MemoryWordsAggregated, tree.Image().TotalWords())
	}
	full, err := tree.Full()
	if err != nil {
		t.Fatal(err)
	}
	if st.MemoryWordsFull != full.Image().TotalWords() {
		t.Errorf("stats full words %d != full image words %d", st.MemoryWordsFull, full.Image().TotalWords())
	}
}

func TestSparseChildren(t *testing.T) {
	// §4.2.2/§6.3: with 256 cuts the average number of distinct children
	// per node is small (the paper observes < 10).
	rs := buildSet(t, rulegen.CoreRouter, 500, 72)
	tree, err := New(rs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if avg := tree.Stats().AvgUniqueChildren; avg >= 16 {
		t.Errorf("average unique children = %.1f, want the paper's sparse regime", avg)
	}
}

func TestExplicitWorstCaseBound(t *testing.T) {
	rs := buildSet(t, rulegen.CoreRouter, 350, 73)
	tree, err := New(rs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	bound := tree.Stats().WorstCaseAccesses
	if bound != 2*13 {
		t.Fatalf("worst-case bound = %d, want 26 for w=8", bound)
	}
	for _, h := range trace(t, rs, 2000, 74) {
		p := tree.Program(h)
		if p.Accesses() > bound {
			t.Fatalf("program used %d accesses, explicit bound %d", p.Accesses(), bound)
		}
		for _, s := range p.Steps {
			if s.Words != 1 {
				t.Fatalf("ExpCuts access of %d words; every access must be single-word", s.Words)
			}
		}
	}
}

func TestSharingAblation(t *testing.T) {
	rs := buildSet(t, rulegen.Firewall, 100, 75)
	sib, err := New(rs, Config{Sharing: ShareSiblings})
	if err != nil {
		t.Fatal(err)
	}
	global, err := New(rs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if global.Stats().Nodes >= sib.Stats().Nodes {
		t.Errorf("global sharing: %d nodes, sibling-only: %d nodes — global should shrink the tree",
			global.Stats().Nodes, sib.Stats().Nodes)
	}
	// Both must classify identically.
	for _, h := range trace(t, rs, 800, 76) {
		if global.Classify(h) != sib.Classify(h) {
			t.Fatalf("sharing mode changed classification for %v", h)
		}
	}
}

func TestShareNoneIsInfeasibleBeyondToySets(t *testing.T) {
	// ShareNone still works for exact-match rules (each level narrows to
	// one live cell, so the expansion stays linear)...
	exact := func(src, dst uint32, dp uint16) rules.Rule {
		return rules.Rule{
			SrcIP:   rules.Prefix{Addr: src, Len: 32},
			DstIP:   rules.Prefix{Addr: dst, Len: 32},
			SrcPort: rules.PortRange{Lo: 7, Hi: 7},
			DstPort: rules.PortRange{Lo: dp, Hi: dp},
			Proto:   rules.ProtoMatch{Value: rules.ProtoTCP},
		}
	}
	rs := rules.NewRuleSet("points", []rules.Rule{
		exact(0x0A000001, 0x0B000001, 80),
		exact(0x0A000002, 0x0B000002, 443),
		exact(0xC0A80101, 0x08080808, 53),
	})
	tree, err := New(rs, Config{Sharing: ShareNone})
	if err != nil {
		t.Fatal(err)
	}
	hit := rules.Header{SrcIP: 0x0A000002, DstIP: 0x0B000002, SrcPort: 7, DstPort: 443, Proto: rules.ProtoTCP}
	if got := tree.Classify(hit); got != 1 {
		t.Fatalf("ShareNone Classify = %d, want 1", got)
	}
	for _, h := range trace(t, rs, 200, 83) {
		if got, want := tree.Classify(h), rs.Match(h); got != want {
			t.Fatalf("ShareNone Classify(%v) = %d, oracle %d", h, got, want)
		}
	}
	if err := tree.Verify([]rules.Header{hit}); err != nil {
		t.Fatal(err)
	}
	// ...but a realistic firewall set exhausts any sane node budget: the
	// wildcard dimensions multiply the expansion (this is why aggregation
	// is the core of the paper).
	fw := buildSet(t, rulegen.Firewall, 50, 84)
	if _, err := New(fw, Config{Sharing: ShareNone, MaxNodes: 1 << 16}); err == nil {
		t.Error("ShareNone on a firewall set should exhaust the node budget")
	}
}

func TestChannelRestriction(t *testing.T) {
	rs := buildSet(t, rulegen.Firewall, 90, 77)
	for channels := 1; channels <= 4; channels++ {
		tree, err := New(rs, Config{Channels: channels})
		if err != nil {
			t.Fatal(err)
		}
		words := tree.Image().ChannelWords()
		for c := channels; c < len(words); c++ {
			if words[c] != 0 {
				t.Errorf("channels=%d: channel %d has %d words", channels, c, words[c])
			}
		}
		if err := tree.Verify(trace(t, rs, 300, 78)); err != nil {
			t.Fatalf("channels=%d: %v", channels, err)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	rs := buildSet(t, rulegen.Firewall, 20, 79)
	bad := []Config{
		{StrideW: 3},           // does not divide field widths
		{StrideW: 16},          // straddles the proto field
		{StrideW: 2, HabsV: 3}, // v > w
		{Channels: 7},
	}
	for i, cfg := range bad {
		if _, err := New(rs, cfg); err == nil {
			t.Errorf("config %d should be rejected", i)
		}
	}
}

func TestMaxNodesCap(t *testing.T) {
	rs := buildSet(t, rulegen.CoreRouter, 200, 80)
	if _, err := New(rs, Config{MaxNodes: 5}); err == nil {
		t.Error("tiny node budget should fail construction")
	}
}

func TestSingleRuleTrees(t *testing.T) {
	// A single wildcard rule: the root itself resolves to a leaf.
	rs := rules.NewRuleSet("wild", []rules.Rule{
		{SrcPort: rules.FullPortRange, DstPort: rules.FullPortRange, Proto: rules.AnyProto},
	})
	tree, err := New(rs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if tree.Stats().Nodes != 0 {
		t.Errorf("wildcard rule built %d nodes, want 0", tree.Stats().Nodes)
	}
	if got := tree.Classify(rules.Header{SrcIP: 1}); got != 0 {
		t.Errorf("Classify = %d, want 0", got)
	}
	p := tree.Program(rules.Header{})
	if p.Accesses() != 0 || p.Result != 0 {
		t.Errorf("leaf-root program: %v", &p)
	}

	// A single narrow rule: deep chain, both outcomes correct.
	rs2 := rules.NewRuleSet("host", []rules.Rule{
		{
			SrcIP:   rules.Prefix{Addr: 0x0A010203, Len: 32},
			DstIP:   rules.Prefix{Addr: 0x0B040506, Len: 32},
			SrcPort: rules.PortRange{Lo: 1000, Hi: 1000},
			DstPort: rules.PortRange{Lo: 80, Hi: 80},
			Proto:   rules.ProtoMatch{Value: rules.ProtoTCP},
		},
	})
	tree2, err := New(rs2, Config{})
	if err != nil {
		t.Fatal(err)
	}
	hit := rules.Header{SrcIP: 0x0A010203, DstIP: 0x0B040506, SrcPort: 1000, DstPort: 80, Proto: rules.ProtoTCP}
	if got := tree2.Classify(hit); got != 0 {
		t.Errorf("exact hit = %d, want 0", got)
	}
	miss := hit
	miss.DstPort = 81
	if got := tree2.Classify(miss); got != -1 {
		t.Errorf("near miss = %d, want -1", got)
	}
	if err := tree2.Verify([]rules.Header{hit, miss}); err != nil {
		t.Fatal(err)
	}
}

func TestDuplicateRulesResolveToHighestPriority(t *testing.T) {
	r := rules.Rule{
		SrcIP:   rules.Prefix{Addr: 0x0A000000, Len: 8},
		SrcPort: rules.FullPortRange,
		DstPort: rules.FullPortRange,
		Proto:   rules.AnyProto,
	}
	rs := rules.NewRuleSet("dups", []rules.Rule{r, r, r})
	tree, err := New(rs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if got := tree.Classify(rules.Header{SrcIP: 0x0A000001}); got != 0 {
		t.Errorf("Classify = %d, want 0", got)
	}
}

func TestRandomRuleSetsProperty(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		rs, err := rulegen.Generate(rulegen.Config{Kind: rulegen.Random, Size: 40, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		tree, err := New(rs, Config{StrideW: 4})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		headers := trace(t, rs, 400, seed+300)
		for _, h := range headers {
			if got, want := tree.Classify(h), rs.Match(h); got != want {
				t.Fatalf("seed %d: Classify(%v) = %d, oracle %d", seed, h, got, want)
			}
		}
		if err := tree.Verify(headers); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}
